// Quickstart: build the paper's composite load value predictor, run a
// workload through the baseline out-of-order core with and without it,
// and print the headline metrics (speedup, coverage, accuracy).
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/stats"
	"repro/internal/trace"
)

func main() {
	const insts = 200_000
	workload, _ := trace.ByName("coremark")

	// 1. Baseline: the Table III out-of-order core, no value prediction.
	baseline := cpu.New(cpu.DefaultConfig(), nil).Run(workload.Build(insts), workload.Name, "baseline")
	fmt.Printf("baseline   IPC %.3f  (%d loads)\n", baseline.IPC(), baseline.Loads)

	// 2. The composite predictor: LVP + SAP + CVP + CAP, 256 entries
	// each (the paper's 9.6KB configuration), filtered by a 64-entry
	// PC-AM accuracy monitor.
	composite := core.NewComposite(core.CompositeConfig{
		Entries: core.HomogeneousEntries(256),
		Seed:    42,
		AM:      core.NewPCAM(64),
	})
	fmt.Printf("composite  storage %.2fKB\n", composite.StorageKB())

	// 3. Same workload, same core, with the predictor plugged into the
	// fetch stage.
	run := cpu.New(cpu.DefaultConfig(), cpu.NewCompositeEngine(composite)).
		Run(workload.Build(insts), workload.Name, "composite")

	fmt.Printf("with VP    IPC %.3f  speedup %+.2f%%\n", run.IPC(), stats.Speedup(run, baseline))
	fmt.Printf("           coverage %.1f%% of loads, accuracy %.4f\n", run.Coverage(), run.Accuracy())
	fmt.Printf("           flushes: value=%d branch=%d memorder=%d\n",
		run.VPFlushes, run.BranchFlushes, run.MemOrderFlushes)

	// 4. Which components did the work?
	st := composite.Stats()
	fmt.Println("per-component delivered predictions:")
	for c := core.Component(0); c < core.NumComponents; c++ {
		fmt.Printf("  %-3v used=%6d  correct=%6d  incorrect=%d\n",
			c, st.UsedBy[c], st.CorrectBy[c], st.IncorrectBy[c])
	}
}
