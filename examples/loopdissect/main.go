// Loopdissect walks through the paper's Listing-1 example (Section
// IV-C): an outer loop that memsets an N-element array and an inner
// loop that reads it back. Each of the four component predictors is
// driven over the loop in isolation with immediate training, and the
// program reports when each one starts predicting in every outer
// iteration — the complementary-training-latency story behind the
// paper's Table V.
//
//	go run ./examples/loopdissect [-n 16] [-outers 8]
package main

import (
	"flag"
	"fmt"

	"repro/internal/branch"
	"repro/internal/core"
	"repro/internal/trace"
)

func main() {
	n := flag.Int("n", 16, "inner loop trip count (N)")
	outers := flag.Int("outers", 8, "outer iterations to report")
	flag.Parse()

	fmt.Printf("Listing 1: for (o..) { memset(A,0,%d*4); for (i=0..%d) a += A[i]; }\n\n", *n, *n)

	preds := []core.Predictor{
		core.NewLVP(1024, 7),
		core.NewSAP(1024, 7),
		core.NewCVP(1024, 7),
		core.NewCAP(1024, 7),
	}

	fmt.Printf("%-5s", "")
	for o := 1; o <= *outers; o++ {
		fmt.Printf("  o=%-3d", o)
	}
	fmt.Println()

	for _, p := range preds {
		first := dissect(p, *n, *outers)
		fmt.Printf("%-5s", p.Component())
		for o := 1; o <= *outers; o++ {
			if v, ok := first[o]; ok {
				fmt.Printf("  %-5d", v)
			} else {
				fmt.Printf("  %-5s", "-")
			}
		}
		fmt.Println()
	}
	fmt.Println("\ncells: inner-loop loads completed before the first prediction")
	fmt.Println("       of that outer iteration ('-' = never predicted)")
}

// dissect runs one predictor over the Listing-1 stream with immediate
// training and returns, per outer iteration, the inner index of its
// first prediction.
func dissect(p core.Predictor, n, outers int) map[int]int {
	gen := trace.NewListing1(uint64(outers+2)*uint64(n)*8, n)
	var hist branch.History
	var loadPath uint64
	first := make(map[int]int)
	outer, inner := 1, 0
	var in trace.Inst
	for gen.Next(&in) && outer <= outers {
		if in.IsBranch() {
			hist.Update(in.PC, in.Taken)
			continue
		}
		if in.Op != trace.OpLoad {
			continue
		}
		probe := core.Probe{PC: in.PC, BranchHist: hist.Global, LoadPath: loadPath}
		if _, ok := p.Predict(probe); ok {
			if _, seen := first[outer]; !seen {
				first[outer] = inner
			}
		}
		p.Train(core.Outcome{
			PC: in.PC, BranchHist: hist.Global, LoadPath: loadPath,
			Addr: in.Addr, Size: in.Size, Value: in.Value,
		})
		loadPath = (loadPath << 6) ^ ((in.PC >> 2) & 0xFFF)
		if inner++; inner == n {
			inner = 0
			outer++
		}
	}
	return first
}
