// Customworkload shows how to drive the simulator with your own
// instruction stream: implement trace.Generator, hand it to the
// pipeline, and compare predictors on it.
//
// The example program is a unit-conversion loop over a linked list of
// sensor records allocated back-to-back in memory — serialized pointer
// chasing with perfectly strided addresses, the pattern where address
// prediction shines.
//
//	go run ./examples/customworkload
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/eves"
	"repro/internal/mem"
	"repro/internal/stats"
	"repro/internal/trace"
)

// sensorList is a hand-written trace.Generator: a loop that walks a
// linked list of 64-byte records, loads a payload field from each, and
// accumulates it.
type sensorList struct {
	memory  *mem.Backing
	nodes   int
	cur     uint64
	emitted uint64
	limit   uint64
	buf     []trace.Inst
	pos     int
	inited  bool
}

const (
	listBase = uint64(0x2000_0000)
	nodeSize = 64
	loopPC   = uint64(0x40_0000)
)

func newSensorList(nodes int, limit uint64) *sensorList {
	return &sensorList{memory: mem.NewBacking(99), nodes: nodes, limit: limit, cur: listBase}
}

func (g *sensorList) Mem() *mem.Backing { return g.memory }

func (g *sensorList) Next(out *trace.Inst) bool {
	if g.emitted >= g.limit {
		return false
	}
	if g.pos >= len(g.buf) {
		g.buf = g.buf[:0]
		g.pos = 0
		g.emit()
	}
	*out = g.buf[g.pos]
	g.pos++
	g.emitted++
	return true
}

func (g *sensorList) emit() {
	const (
		rPtr = trace.Reg(1)
		rVal = trace.Reg(2)
		rAcc = trace.Reg(3)
	)
	push := func(i trace.Inst) { g.buf = append(g.buf, i) }

	if !g.inited {
		// Allocate the list: node i links to node i+1 (sequential
		// allocation), with a payload at offset 16.
		for i := 0; i < g.nodes; i++ {
			node := listBase + uint64(i)*nodeSize
			next := listBase + uint64((i+1)%g.nodes)*nodeSize
			g.memory.Write(node, 8, next)
			g.memory.Write(node+16, 8, uint64(1000+i))
			initPC := loopPC + 0x1000 + uint64(i%8)*8
			push(trace.Inst{PC: initPC, Op: trace.OpStore, Src1: rPtr, Addr: node, Size: 8, Value: next, Lat: 1})
			push(trace.Inst{PC: initPC + 4, Op: trace.OpStore, Src1: rPtr, Addr: node + 16, Size: 8, Value: uint64(1000 + i), Lat: 1})
		}
		g.inited = true
	}

	// while (p) { acc += p->payload; p = p->next; }
	payload := g.memory.Read(g.cur+16, 8)
	next := g.memory.Read(g.cur, 8)
	push(trace.Inst{PC: loopPC, Op: trace.OpLoad, Dst: rVal, Src1: rPtr, Addr: g.cur + 16, Size: 8, Value: payload, Lat: 1})
	push(trace.Inst{PC: loopPC + 4, Op: trace.OpALU, Dst: rAcc, Src1: rAcc, Src2: rVal, Lat: 1})
	push(trace.Inst{PC: loopPC + 8, Op: trace.OpLoad, Dst: rPtr, Src1: rPtr, Addr: g.cur, Size: 8, Value: next, Lat: 1})
	push(trace.Inst{PC: loopPC + 12, Op: trace.OpBranch, Src1: rPtr, Taken: true, Target: loopPC, Lat: 1})
	g.cur = next
}

func main() {
	const insts = 150_000
	const nodes = 192 // 12KB list: L1-resident, so PAQ probes hit

	run := func(name string, engine cpu.Engine) stats.Run {
		return cpu.New(cpu.DefaultConfig(), engine).Run(newSensorList(nodes, insts), "sensorlist", name)
	}

	base := run("baseline", nil)
	fmt.Printf("%-22s IPC %.3f\n", "baseline", base.IPC())

	report := func(name string, engine cpu.Engine) {
		r := run(name, engine)
		fmt.Printf("%-22s IPC %.3f  speedup %+7.2f%%  coverage %5.1f%%  accuracy %.4f\n",
			name, r.IPC(), stats.Speedup(r, base), r.Coverage(), r.Accuracy())
	}

	report("composite (9.6KB)", cpu.NewCompositeEngine(core.NewComposite(core.CompositeConfig{
		Entries: core.HomogeneousEntries(256), Seed: 1, AM: core.NewPCAM(64),
	})))
	report("SAP alone (1K)", cpu.NewCompositeEngine(core.NewComposite(func() core.CompositeConfig {
		var e [core.NumComponents]int
		e[core.CompSAP] = 1024
		return core.CompositeConfig{Entries: e, Seed: 1}
	}())))
	report("EVES (32KB)", eves.New(eves.Config{BudgetKB: 32, Seed: 1}))

	fmt.Println("\nThe list nodes are allocated sequentially, so the traversal's")
	fmt.Println("addresses stride even though the dependence chain is serial:")
	fmt.Println("address predictors break the chain, while a value-only")
	fmt.Println("predictor like EVES cannot learn the ever-changing pointers.")
}
