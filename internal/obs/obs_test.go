package obs

import (
	"fmt"
	"io"
	"log/slog"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs_total", "jobs", "state", "done")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	// Same name+labels returns the same counter.
	if r.Counter("jobs_total", "jobs", "state", "done") != c {
		t.Fatal("re-registration returned a different counter")
	}
	// Different label value is a different series.
	c2 := r.Counter("jobs_total", "jobs", "state", "failed")
	if c2 == c {
		t.Fatal("distinct labels returned the same counter")
	}

	g := r.Gauge("queue_depth", "depth")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
}

func TestGaugeFunc(t *testing.T) {
	r := NewRegistry()
	insts := r.Counter("sim_instructions_total", "instructions")
	secs := 0.0
	r.GaugeFunc("sim_mips", "derived throughput", func() float64 {
		if secs <= 0 {
			return 0
		}
		return float64(insts.Value()) / 1e6 / secs
	})

	render := func() string {
		var b strings.Builder
		r.WriteTo(&b)
		return b.String()
	}
	if out := render(); !strings.Contains(out, "# TYPE sim_mips gauge") || !strings.Contains(out, "sim_mips 0") {
		t.Errorf("initial render missing zero gauge:\n%s", out)
	}

	// The function is re-evaluated at every scrape.
	insts.Add(3_000_000)
	secs = 2
	if out := render(); !strings.Contains(out, "sim_mips 1.5") {
		t.Errorf("derived gauge not recomputed at scrape:\n%s", out)
	}

	// Re-registration keeps the first function.
	r.GaugeFunc("sim_mips", "derived throughput", func() float64 { return -1 })
	if out := render(); !strings.Contains(out, "sim_mips 1.5") {
		t.Errorf("re-registration replaced the gauge function:\n%s", out)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "latency", []float64{1, 10, 100})
	for _, x := range []float64{0.5, 5, 5, 50, 500} {
		h.Observe(x)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if h.Sum() != 560.5 {
		t.Fatalf("sum = %g, want 560.5", h.Sum())
	}
	var b strings.Builder
	r.WriteTo(&b)
	out := b.String()
	for _, want := range []string{
		`lat_bucket{le="1"} 1`,
		`lat_bucket{le="10"} 3`,
		`lat_bucket{le="100"} 4`,
		`lat_bucket{le="+Inf"} 5`,
		`lat_sum 560.5`,
		`lat_count 5`,
		"# TYPE lat histogram",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "help text a", "k", `va"l`).Add(3)
	r.Gauge("b", "help text b").Set(-2)
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content-type = %q", ct)
	}
	var b strings.Builder
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP a_total help text a",
		"# TYPE a_total counter",
		`a_total{k="va\"l"} 3`,
		"# TYPE b gauge",
		"b -2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	h := r.Histogram("h", "", []float64{1, 2, 4})
	g := r.Gauge("g", "")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(j % 5))
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Value())
	}
	if g.Value() != 8000 {
		t.Fatalf("gauge = %d, want 8000", g.Value())
	}
	if h.Count() != 8000 {
		t.Fatalf("histogram count = %d, want 8000", h.Count())
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", "escaping", "v", `quote " backslash \ newline `+"\n"+` done`).Inc()

	var b strings.Builder
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	want := `esc_total{v="quote \" backslash \\ newline \n done"} 1`
	if !strings.Contains(out, want) {
		t.Fatalf("output missing %q:\n%s", want, out)
	}
	// The rendered value must stay one exposition line: a raw newline in
	// a label value corrupts every line after it.
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !strings.HasPrefix(line, "esc_total") && !strings.HasPrefix(line, "obs_dropped_series_total") {
			t.Fatalf("stray exposition line %q:\n%s", line, out)
		}
	}
}

func TestHistogramWithLabels(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "latency", []float64{1, 2}, "worker", `w"1`)
	h.Observe(0.5)
	h.Observe(1.5)
	h.Observe(9)

	var b strings.Builder
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`lat_seconds_bucket{worker="w\"1",le="1"} 1`,
		`lat_seconds_bucket{worker="w\"1",le="2"} 2`,
		`lat_seconds_bucket{worker="w\"1",le="+Inf"} 3`,
		`lat_seconds_sum{worker="w\"1"} 11`,
		`lat_seconds_count{worker="w\"1"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestConcurrentRegisterWhileScrape(t *testing.T) {
	r := NewRegistry()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				r.Counter("reg_total", "r", "g", fmt.Sprintf("%d-%d", g, i%50)).Inc()
				r.Histogram("reg_h", "rh", []float64{1}, "g", fmt.Sprintf("%d-%d", g, i%50)).Observe(1)
			}
		}(g)
	}
	for i := 0; i < 200; i++ {
		if _, err := r.WriteTo(io.Discard); err != nil {
			t.Fatalf("scrape %d: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
}

func TestSeriesCap(t *testing.T) {
	r := NewRegistry()
	r.SetMaxSeries(4) // 1 slot already used by obs_dropped_series_total
	var kept []*Counter
	for i := 0; i < 10; i++ {
		kept = append(kept, r.Counter("capped_total", "c", "i", fmt.Sprintf("%d", i)))
	}
	// Every caller still gets a usable instrument.
	for _, c := range kept {
		c.Inc()
	}
	// Re-registering a retained series returns the same instrument, and
	// does not count as a new drop.
	if r.Counter("capped_total", "c", "i", "0") != kept[0] {
		t.Fatal("re-registration of retained series returned a new counter")
	}

	var b strings.Builder
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if got := strings.Count(out, "capped_total{"); got != 3 {
		t.Fatalf("rendered %d capped_total series, want 3:\n%s", got, out)
	}
	if !strings.Contains(out, "obs_dropped_series_total 7") {
		t.Fatalf("output missing obs_dropped_series_total 7:\n%s", out)
	}
}

func TestHandlerLogsWriteError(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "x").Inc()
	var buf strings.Builder
	r.SetLogger(slog.New(slog.NewTextHandler(&buf, nil)))

	req := httptest.NewRequest("GET", "/metrics", nil)
	r.Handler().ServeHTTP(failingWriter{httptest.NewRecorder()}, req)
	if !strings.Contains(buf.String(), "metrics scrape truncated") {
		t.Fatalf("handler did not log the write failure; log: %q", buf.String())
	}
}

type failingWriter struct{ *httptest.ResponseRecorder }

func (failingWriter) Write([]byte) (int, error) { return 0, io.ErrClosedPipe }

// WriteString shadows the recorder's promoted StringWriter so
// io.WriteString cannot route around the failing Write.
func (failingWriter) WriteString(string) (int, error) { return 0, io.ErrClosedPipe }
