package obs

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs_total", "jobs", "state", "done")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	// Same name+labels returns the same counter.
	if r.Counter("jobs_total", "jobs", "state", "done") != c {
		t.Fatal("re-registration returned a different counter")
	}
	// Different label value is a different series.
	c2 := r.Counter("jobs_total", "jobs", "state", "failed")
	if c2 == c {
		t.Fatal("distinct labels returned the same counter")
	}

	g := r.Gauge("queue_depth", "depth")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
}

func TestGaugeFunc(t *testing.T) {
	r := NewRegistry()
	insts := r.Counter("sim_instructions_total", "instructions")
	secs := 0.0
	r.GaugeFunc("sim_mips", "derived throughput", func() float64 {
		if secs <= 0 {
			return 0
		}
		return float64(insts.Value()) / 1e6 / secs
	})

	render := func() string {
		var b strings.Builder
		r.WriteTo(&b)
		return b.String()
	}
	if out := render(); !strings.Contains(out, "# TYPE sim_mips gauge") || !strings.Contains(out, "sim_mips 0") {
		t.Errorf("initial render missing zero gauge:\n%s", out)
	}

	// The function is re-evaluated at every scrape.
	insts.Add(3_000_000)
	secs = 2
	if out := render(); !strings.Contains(out, "sim_mips 1.5") {
		t.Errorf("derived gauge not recomputed at scrape:\n%s", out)
	}

	// Re-registration keeps the first function.
	r.GaugeFunc("sim_mips", "derived throughput", func() float64 { return -1 })
	if out := render(); !strings.Contains(out, "sim_mips 1.5") {
		t.Errorf("re-registration replaced the gauge function:\n%s", out)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "latency", []float64{1, 10, 100})
	for _, x := range []float64{0.5, 5, 5, 50, 500} {
		h.Observe(x)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if h.Sum() != 560.5 {
		t.Fatalf("sum = %g, want 560.5", h.Sum())
	}
	var b strings.Builder
	r.WriteTo(&b)
	out := b.String()
	for _, want := range []string{
		`lat_bucket{le="1"} 1`,
		`lat_bucket{le="10"} 3`,
		`lat_bucket{le="100"} 4`,
		`lat_bucket{le="+Inf"} 5`,
		`lat_sum 560.5`,
		`lat_count 5`,
		"# TYPE lat histogram",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "help text a", "k", `va"l`).Add(3)
	r.Gauge("b", "help text b").Set(-2)
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content-type = %q", ct)
	}
	var b strings.Builder
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP a_total help text a",
		"# TYPE a_total counter",
		`a_total{k="va\"l"} 3`,
		"# TYPE b gauge",
		"b -2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	h := r.Histogram("h", "", []float64{1, 2, 4})
	g := r.Gauge("g", "")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(j % 5))
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Value())
	}
	if g.Value() != 8000 {
		t.Fatalf("gauge = %d, want 8000", g.Value())
	}
	if h.Count() != 8000 {
		t.Fatalf("histogram count = %d, want 8000", h.Count())
	}
}
