package tsdb

import (
	"sync"
	"time"
)

// Defaults for Options fields left zero.
const (
	DefaultScrapeInterval = 5 * time.Second
	DefaultRetention      = 15 * time.Minute
	DefaultMaxSeries      = 8192
	DefaultLookback       = 5 * time.Minute
)

// Options configures a DB.
type Options struct {
	// ScrapeInterval is the expected sampling cadence. It sizes the
	// per-series ring (Retention/ScrapeInterval points) and is the
	// collector's default ticker period.
	ScrapeInterval time.Duration
	// Retention is the window of history each series keeps. Older
	// points fall off the ring as new ones arrive.
	Retention time.Duration
	// MaxSeries caps distinct series (the label-cardinality bound).
	// Past the cap new series are dropped and counted, mirroring the
	// obs registry's own cap.
	MaxSeries int
	// Lookback bounds how stale a point may be and still answer an
	// instant query, Prometheus-style staleness.
	Lookback time.Duration
}

func (o Options) withDefaults() Options {
	if o.ScrapeInterval <= 0 {
		o.ScrapeInterval = DefaultScrapeInterval
	}
	if o.Retention <= 0 {
		o.Retention = DefaultRetention
	}
	if o.MaxSeries <= 0 {
		o.MaxSeries = DefaultMaxSeries
	}
	if o.Lookback <= 0 {
		o.Lookback = DefaultLookback
	}
	return o
}

// Point is one sample: unix-millisecond timestamp and value.
type Point struct {
	T int64   `json:"t"`
	V float64 `json:"v"`
}

// series is one stored time series: identity plus a fixed-capacity
// ring of points in append order.
type series struct {
	name   string
	labels []string // sorted flat pairs
	ring   []Point
	head   int // next write slot
	count  int // filled slots, <= len(ring)
}

func (s *series) push(p Point) {
	s.ring[s.head] = p
	s.head = (s.head + 1) % len(s.ring)
	if s.count < len(s.ring) {
		s.count++
	}
}

// pointsIn appends the series' points with from <= T <= to, oldest
// first, to dst. Windows are closed on both ends: with coarse scrape
// cadences the sample landing exactly on the window edge must count,
// or a [1×interval] window never holds two points.
func (s *series) pointsIn(from, to int64, dst []Point) []Point {
	start := s.head - s.count
	if start < 0 {
		start += len(s.ring)
	}
	for i := 0; i < s.count; i++ {
		p := s.ring[(start+i)%len(s.ring)]
		if p.T >= from && p.T <= to {
			dst = append(dst, p)
		}
	}
	return dst
}

// last returns the newest point with T in [from, to].
func (s *series) last(from, to int64) (Point, bool) {
	start := s.head - s.count
	if start < 0 {
		start += len(s.ring)
	}
	for i := s.count - 1; i >= 0; i-- {
		p := s.ring[(start+i)%len(s.ring)]
		if p.T <= to {
			if p.T >= from {
				return p, true
			}
			return Point{}, false // points only get older from here
		}
	}
	return Point{}, false
}

// DB is the embedded time-series store: a map from series identity
// (name + sorted labels) to a fixed-size point ring. All methods are
// safe for concurrent use.
type DB struct {
	mu      sync.Mutex
	opt     Options
	cap     int // ring capacity per series
	series  map[string]*series
	order   []string
	dropped uint64
}

// New returns an empty DB.
func New(opt Options) *DB {
	opt = opt.withDefaults()
	n := int(opt.Retention/opt.ScrapeInterval) + 1
	if n < 2 {
		n = 2
	}
	return &DB{opt: opt, cap: n, series: make(map[string]*series)}
}

// Options returns the DB's effective (defaulted) options.
func (db *DB) Options() Options { return db.opt }

// Append records every sample in fams at time now, with extra label
// pairs (e.g. worker="w-001") merged into each sample's label set.
// This is the federation hook: the same worker exposition lands under
// distinct series per worker label.
func (db *DB) Append(now time.Time, fams []Family, extra ...string) {
	t := now.UnixMilli()
	db.mu.Lock()
	defer db.mu.Unlock()
	for _, f := range fams {
		for _, s := range f.Samples {
			db.appendLocked(t, s.Name, s.Value, mergeLabels(s.Labels, extra))
		}
	}
}

// AppendSample records a single point (labels need not be sorted).
// Used for synthesized series like the collector's up{...}.
func (db *DB) AppendSample(now time.Time, name string, value float64, labels ...string) {
	ls := append([]string(nil), labels...)
	sortLabelPairs(ls)
	db.mu.Lock()
	db.appendLocked(now.UnixMilli(), name, value, ls)
	db.mu.Unlock()
}

func (db *DB) appendLocked(t int64, name string, value float64, labels []string) {
	key := name + renderLabels(labels)
	s, ok := db.series[key]
	if !ok {
		if len(db.series) >= db.opt.MaxSeries {
			db.dropped++
			return
		}
		s = &series{name: name, labels: labels, ring: make([]Point, db.cap)}
		db.series[key] = s
		db.order = append(db.order, key)
	}
	s.push(Point{T: t, V: value})
}

// mergeLabels merges extra (unsorted pairs) into base (sorted pairs),
// returning a new sorted slice. Extra pairs win on key collision is
// not needed here — scraped payloads never carry the federation label
// — so duplicates are simply both kept if they ever occur.
func mergeLabels(base, extra []string) []string {
	if len(extra) == 0 {
		return base
	}
	out := make([]string, 0, len(base)+len(extra))
	out = append(out, base...)
	out = append(out, extra...)
	sortLabelPairs(out)
	return out
}

// SeriesCount returns the number of distinct stored series.
func (db *DB) SeriesCount() int {
	db.mu.Lock()
	defer db.mu.Unlock()
	return len(db.series)
}

// DroppedSeries returns how many appends were rejected by the
// cardinality cap.
func (db *DB) DroppedSeries() uint64 {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.dropped
}

// Matcher is one label equality constraint in a selector.
type Matcher struct {
	Key string
	Val string
}

// matches reports whether the series' sorted label pairs satisfy every
// matcher (subset semantics: extra series labels are fine).
func matches(labels []string, ms []Matcher) bool {
	for _, m := range ms {
		found := false
		for i := 0; i+1 < len(labels); i += 2 {
			if labels[i] == m.Key && labels[i+1] == m.Val {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// selectSeries returns matching series in insertion order. Caller
// holds db.mu.
func (db *DB) selectLocked(name string, ms []Matcher) []*series {
	var out []*series
	for _, key := range db.order {
		s := db.series[key]
		if s.name == name && matches(s.labels, ms) {
			out = append(out, s)
		}
	}
	return out
}

// labelMap converts sorted flat pairs to a map for JSON responses.
func labelMap(pairs []string) map[string]string {
	if len(pairs) == 0 {
		return nil
	}
	m := make(map[string]string, len(pairs)/2)
	for i := 0; i+1 < len(pairs); i += 2 {
		m[pairs[i]] = pairs[i+1]
	}
	return m
}
