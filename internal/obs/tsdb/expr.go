package tsdb

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"
)

// The query grammar is a deliberately small subset of PromQL:
//
//	expr     = selector                      latest point (staleness-bounded)
//	         | "rate"  "(" selector window ")"     per-second counter rate
//	         | "avg"   "(" selector window ")"     over-time aggregates
//	         | "max"   "(" selector window ")"
//	         | "min"   "(" selector window ")"
//	         | "sum"   "(" selector window ")"
//	         | "quantile" "(" q "," selector window ")"  histogram quantile
//	selector = name [ "{" k=\"v\" {"," k=\"v\"} "}" ]
//	window   = "[" duration "]"              e.g. [30s], [5m]
//
// rate() is counter-reset aware (a decrease restarts accumulation from
// the post-reset value, as in Prometheus). quantile() takes the
// histogram family name and estimates the q-quantile from per-bucket
// increases over the window using Prometheus' linear interpolation
// within the owning bucket. Alert rules extend expr with a comparison:
// `expr op number` where op is one of > >= < <= == !=.

// Expr is a parsed query expression.
type Expr struct {
	Fn       string // "", "rate", "avg", "max", "min", "sum", "quantile"
	Q        float64
	Metric   string
	Matchers []Matcher
	Window   time.Duration
}

// String re-renders the expression canonically.
func (e Expr) String() string {
	var b strings.Builder
	if e.Fn != "" {
		b.WriteString(e.Fn)
		b.WriteByte('(')
		if e.Fn == "quantile" {
			fmt.Fprintf(&b, "%g, ", e.Q)
		}
	}
	b.WriteString(e.Metric)
	if len(e.Matchers) > 0 {
		b.WriteByte('{')
		for i, m := range e.Matchers {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%s=%q", m.Key, m.Val)
		}
		b.WriteByte('}')
	}
	if e.Window > 0 {
		fmt.Fprintf(&b, "[%s]", e.Window)
	}
	if e.Fn != "" {
		b.WriteByte(')')
	}
	return b.String()
}

// CmpExpr is an expression compared against a threshold — the alert
// rule form.
type CmpExpr struct {
	Expr      Expr
	Op        string
	Threshold float64
}

func (c CmpExpr) String() string {
	return fmt.Sprintf("%s %s %g", c.Expr, c.Op, c.Threshold)
}

// breached reports whether value v violates the comparison.
func (c CmpExpr) breached(v float64) bool {
	switch c.Op {
	case ">":
		return v > c.Threshold
	case ">=":
		return v >= c.Threshold
	case "<":
		return v < c.Threshold
	case "<=":
		return v <= c.Threshold
	case "==":
		return v == c.Threshold
	case "!=":
		return v != c.Threshold
	}
	return false
}

type exprParser struct {
	s   string
	pos int
}

// ParseExpr parses a query expression.
func ParseExpr(s string) (Expr, error) {
	p := &exprParser{s: s}
	e, err := p.expr()
	if err != nil {
		return Expr{}, err
	}
	p.ws()
	if p.pos != len(p.s) {
		return Expr{}, fmt.Errorf("trailing input %q in expression %q", p.s[p.pos:], s)
	}
	return e, nil
}

// ParseCmp parses `expr op number` (the alert rule grammar).
func ParseCmp(s string) (CmpExpr, error) {
	p := &exprParser{s: s}
	e, err := p.expr()
	if err != nil {
		return CmpExpr{}, err
	}
	p.ws()
	op := ""
	for _, cand := range []string{">=", "<=", "==", "!=", ">", "<"} {
		if strings.HasPrefix(p.s[p.pos:], cand) {
			op = cand
			p.pos += len(cand)
			break
		}
	}
	if op == "" {
		return CmpExpr{}, fmt.Errorf("alert expression %q needs a comparison (> >= < <= == !=)", s)
	}
	p.ws()
	start := p.pos
	for p.pos < len(p.s) && !isSpace(p.s[p.pos]) {
		p.pos++
	}
	th, err := strconv.ParseFloat(p.s[start:p.pos], 64)
	if err != nil {
		return CmpExpr{}, fmt.Errorf("bad threshold %q in %q", p.s[start:p.pos], s)
	}
	p.ws()
	if p.pos != len(p.s) {
		return CmpExpr{}, fmt.Errorf("trailing input %q in %q", p.s[p.pos:], s)
	}
	return CmpExpr{Expr: e, Op: op, Threshold: th}, nil
}

func isSpace(c byte) bool { return c == ' ' || c == '\t' }

func (p *exprParser) ws() {
	for p.pos < len(p.s) && isSpace(p.s[p.pos]) {
		p.pos++
	}
}

func (p *exprParser) ident() string {
	start := p.pos
	for p.pos < len(p.s) {
		c := p.s[p.pos]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(p.pos > start && c >= '0' && c <= '9')
		if !ok {
			break
		}
		p.pos++
	}
	return p.s[start:p.pos]
}

func (p *exprParser) expect(c byte) error {
	p.ws()
	if p.pos >= len(p.s) || p.s[p.pos] != c {
		return fmt.Errorf("expected %q at offset %d in %q", string(c), p.pos, p.s)
	}
	p.pos++
	return nil
}

func (p *exprParser) expr() (Expr, error) {
	p.ws()
	id := p.ident()
	if id == "" {
		return Expr{}, fmt.Errorf("expected metric name or function at offset %d in %q", p.pos, p.s)
	}
	switch id {
	case "rate", "avg", "max", "min", "sum", "quantile":
		// Function application only when followed by '(' — a metric
		// could not legally be named one of these anyway (too short
		// for our conventions), but be precise.
		save := p.pos
		p.ws()
		if p.pos < len(p.s) && p.s[p.pos] == '(' {
			p.pos++
			return p.call(id)
		}
		p.pos = save
	}
	return p.selector(id, false)
}

func (p *exprParser) call(fn string) (Expr, error) {
	e := Expr{Fn: fn}
	if fn == "quantile" {
		p.ws()
		start := p.pos
		for p.pos < len(p.s) && (p.s[p.pos] == '.' || (p.s[p.pos] >= '0' && p.s[p.pos] <= '9')) {
			p.pos++
		}
		q, err := strconv.ParseFloat(p.s[start:p.pos], 64)
		if err != nil || q < 0 || q > 1 {
			return Expr{}, fmt.Errorf("quantile argument must be a number in [0,1] at offset %d in %q", start, p.s)
		}
		e.Q = q
		if err := p.expect(','); err != nil {
			return Expr{}, err
		}
	}
	p.ws()
	id := p.ident()
	if id == "" {
		return Expr{}, fmt.Errorf("expected metric name at offset %d in %q", p.pos, p.s)
	}
	sel, err := p.selector(id, true)
	if err != nil {
		return Expr{}, err
	}
	e.Metric, e.Matchers, e.Window = sel.Metric, sel.Matchers, sel.Window
	if err := p.expect(')'); err != nil {
		return Expr{}, err
	}
	return e, nil
}

// selector parses the matchers and (when needWindow) the [duration]
// range suffix after a metric name.
func (p *exprParser) selector(name string, needWindow bool) (Expr, error) {
	e := Expr{Metric: name}
	p.ws()
	if p.pos < len(p.s) && p.s[p.pos] == '{' {
		end := strings.IndexByte(p.s[p.pos:], '}')
		if end < 0 {
			return Expr{}, fmt.Errorf("unterminated matcher set in %q", p.s)
		}
		inner := p.s[p.pos+1 : p.pos+end]
		p.pos += end + 1
		if strings.TrimSpace(inner) != "" {
			pairs, err := parseLabels(inner)
			if err != nil {
				return Expr{}, err
			}
			for i := 0; i+1 < len(pairs); i += 2 {
				e.Matchers = append(e.Matchers, Matcher{Key: pairs[i], Val: pairs[i+1]})
			}
		}
		p.ws()
	}
	if p.pos < len(p.s) && p.s[p.pos] == '[' {
		end := strings.IndexByte(p.s[p.pos:], ']')
		if end < 0 {
			return Expr{}, fmt.Errorf("unterminated window in %q", p.s)
		}
		d, err := time.ParseDuration(p.s[p.pos+1 : p.pos+end])
		if err != nil || d <= 0 {
			return Expr{}, fmt.Errorf("bad window %q in %q", p.s[p.pos+1:p.pos+end], p.s)
		}
		e.Window = d
		p.pos += end + 1
	}
	if needWindow && e.Window == 0 {
		return Expr{}, fmt.Errorf("function over %q needs a [window] in %q", name, p.s)
	}
	if !needWindow && e.Window != 0 {
		return Expr{}, fmt.Errorf("bare selector %q cannot take a window (wrap it in a function) in %q", name, p.s)
	}
	return e, nil
}

// InstantResult is one series' value at an instant.
type InstantResult struct {
	Labels map[string]string `json:"labels,omitempty"`
	Value  float64           `json:"value"`
}

// SeriesResult is one series' values over a range query.
type SeriesResult struct {
	Labels map[string]string `json:"labels,omitempty"`
	Points []Point           `json:"points"`
}

// Eval evaluates e at instant `at`. Series with no usable data in the
// window (or past the staleness lookback, for bare selectors) are
// omitted. Results are sorted by label set.
func (db *DB) Eval(e Expr, at time.Time) []InstantResult {
	db.mu.Lock()
	defer db.mu.Unlock()
	type keyed struct {
		key string
		r   InstantResult
	}
	var out []keyed
	t := at.UnixMilli()
	switch e.Fn {
	case "quantile":
		for _, g := range db.bucketGroupsLocked(e, t) {
			if v, ok := bucketQuantile(e.Q, g.buckets); ok {
				out = append(out, keyed{renderLabels(g.labels), InstantResult{labelMap(g.labels), v}})
			}
		}
	default:
		for _, s := range db.selectLocked(e.Metric, e.Matchers) {
			if v, ok := evalSeries(e, s, t, db.opt.Lookback); ok {
				out = append(out, keyed{renderLabels(s.labels), InstantResult{labelMap(s.labels), v}})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].key < out[j].key })
	res := make([]InstantResult, len(out))
	for i, k := range out {
		res[i] = k.r
	}
	return res
}

// EvalRange evaluates e at each step in [start, end], producing one
// point series per matched label set.
func (db *DB) EvalRange(e Expr, start, end time.Time, step time.Duration) []SeriesResult {
	if step <= 0 {
		step = db.opt.ScrapeInterval
	}
	acc := make(map[string]*SeriesResult)
	var order []string
	for t := start; !t.After(end); t = t.Add(step) {
		for _, r := range db.Eval(e, t) {
			key := renderLabels(flattenLabels(r.Labels))
			sr, ok := acc[key]
			if !ok {
				sr = &SeriesResult{Labels: r.Labels}
				acc[key] = sr
				order = append(order, key)
			}
			sr.Points = append(sr.Points, Point{T: t.UnixMilli(), V: r.Value})
		}
	}
	sort.Strings(order)
	out := make([]SeriesResult, 0, len(order))
	for _, k := range order {
		out = append(out, *acc[k])
	}
	return out
}

func flattenLabels(m map[string]string) []string {
	if len(m) == 0 {
		return nil
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]string, 0, 2*len(keys))
	for _, k := range keys {
		out = append(out, k, m[k])
	}
	return out
}

// evalSeries evaluates a non-quantile expression over one series at
// unix-milli t.
func evalSeries(e Expr, s *series, t int64, lookback time.Duration) (float64, bool) {
	if e.Fn == "" {
		p, ok := s.last(t-lookback.Milliseconds(), t)
		return p.V, ok
	}
	pts := s.pointsIn(t-e.Window.Milliseconds(), t, nil)
	switch e.Fn {
	case "rate":
		inc, ok := increase(pts)
		if !ok {
			return 0, false
		}
		return inc / e.Window.Seconds(), true
	case "avg", "sum", "max", "min":
		if len(pts) == 0 {
			return 0, false
		}
		sum, mx, mn := 0.0, pts[0].V, pts[0].V
		for _, p := range pts {
			sum += p.V
			mx = math.Max(mx, p.V)
			mn = math.Min(mn, p.V)
		}
		switch e.Fn {
		case "avg":
			return sum / float64(len(pts)), true
		case "sum":
			return sum, true
		case "max":
			return mx, true
		default:
			return mn, true
		}
	}
	return 0, false
}

// increase sums the positive deltas across pts, treating a decrease as
// a counter reset (the post-reset value counts in full, as the counter
// restarted from zero). Needs at least two points.
func increase(pts []Point) (float64, bool) {
	if len(pts) < 2 {
		return 0, false
	}
	inc := 0.0
	for i := 1; i < len(pts); i++ {
		d := pts[i].V - pts[i-1].V
		if d >= 0 {
			inc += d
		} else {
			inc += pts[i].V
		}
	}
	return inc, true
}

// bucketGroup is one histogram instance: the label set minus `le`, and
// the per-bucket increase over the window keyed by upper bound.
type bucketGroup struct {
	labels  []string
	buckets []bucketInc
}

type bucketInc struct {
	le  float64
	inc float64
}

// bucketGroupsLocked gathers `<metric>_bucket` series matching e,
// groups them by label set (minus le), and computes each bucket's
// increase over the window ending at t. Caller holds db.mu.
func (db *DB) bucketGroupsLocked(e Expr, t int64) []bucketGroup {
	groups := make(map[string]*bucketGroup)
	var order []string
	for _, s := range db.selectLocked(e.Metric+"_bucket", e.Matchers) {
		var le string
		rest := make([]string, 0, len(s.labels))
		for i := 0; i+1 < len(s.labels); i += 2 {
			if s.labels[i] == "le" {
				le = s.labels[i+1]
				continue
			}
			rest = append(rest, s.labels[i], s.labels[i+1])
		}
		bound, err := parseBound(le)
		if err != nil {
			continue
		}
		pts := s.pointsIn(t-e.Window.Milliseconds(), t, nil)
		inc, ok := increase(pts)
		if !ok {
			continue
		}
		key := renderLabels(rest)
		g, exists := groups[key]
		if !exists {
			g = &bucketGroup{labels: rest}
			groups[key] = g
			order = append(order, key)
		}
		g.buckets = append(g.buckets, bucketInc{le: bound, inc: inc})
	}
	out := make([]bucketGroup, 0, len(order))
	for _, k := range order {
		g := groups[k]
		sort.Slice(g.buckets, func(i, j int) bool { return g.buckets[i].le < g.buckets[j].le })
		out = append(out, *g)
	}
	return out
}

func parseBound(le string) (float64, error) {
	if le == "+Inf" {
		return math.Inf(1), nil
	}
	return strconv.ParseFloat(le, 64)
}

// bucketQuantile estimates the q-quantile from cumulative per-bucket
// increases, Prometheus histogram_quantile style: find the bucket
// holding the q*total-th observation and interpolate linearly between
// its bounds (the lowest bucket interpolates from zero; the +Inf
// bucket answers with the highest finite bound).
func bucketQuantile(q float64, buckets []bucketInc) (float64, bool) {
	// Without a +Inf bucket the total is unknown; exposition always
	// carries one.
	if len(buckets) == 0 || !math.IsInf(buckets[len(buckets)-1].le, 1) {
		return 0, false
	}
	total := buckets[len(buckets)-1].inc
	if total <= 0 {
		return 0, false
	}
	rank := q * total
	prevCum, prevBound := 0.0, 0.0
	for i, b := range buckets {
		if b.inc >= rank || i == len(buckets)-1 {
			if math.IsInf(b.le, 1) {
				return prevBound, true
			}
			width := b.le - prevBound
			span := b.inc - prevCum
			if span <= 0 || width <= 0 {
				return b.le, true
			}
			return prevBound + width*(rank-prevCum)/span, true
		}
		prevCum, prevBound = b.inc, b.le
	}
	return 0, false
}
