package tsdb

import (
	"fmt"
	"strings"
)

// LintIssue is one metrics-conventions violation.
type LintIssue struct {
	Family  string
	Problem string
}

func (i LintIssue) String() string {
	return fmt.Sprintf("%s: %s", i.Family, i.Problem)
}

// LintOptions tunes the linter.
type LintOptions struct {
	// MaxSeriesPerFamily flags label-cardinality blowups (0 = default
	// 512). The obs registry has its own global cap; this catches a
	// single family eating most of it.
	MaxSeriesPerFamily int
}

// Lint checks parsed exposition families against the repo's metric
// naming conventions (a practical subset of Prometheus' own rules):
//
//   - metric and label names must be well-formed
//   - counters end in _total; gauges and histograms must not
//   - histograms carry a base unit suffix (_seconds or _bytes)
//   - every typed family has HELP text
//   - no duplicate series within a family
//   - no family exceeds the per-family series cap
func Lint(fams []Family, opt LintOptions) []LintIssue {
	maxSeries := opt.MaxSeriesPerFamily
	if maxSeries <= 0 {
		maxSeries = 512
	}
	var issues []LintIssue
	add := func(fam, format string, args ...any) {
		issues = append(issues, LintIssue{Family: fam, Problem: fmt.Sprintf(format, args...)})
	}
	for _, f := range fams {
		if !validMetricName(f.Name) {
			add(f.Name, "invalid metric name")
			continue
		}
		switch f.Kind {
		case "counter":
			if !strings.HasSuffix(f.Name, "_total") {
				add(f.Name, "counter must end in _total")
			}
		case "gauge":
			if strings.HasSuffix(f.Name, "_total") {
				add(f.Name, "gauge must not end in _total (reserved for counters)")
			}
		case "histogram":
			if strings.HasSuffix(f.Name, "_total") {
				add(f.Name, "histogram must not end in _total (reserved for counters)")
			}
			if !strings.HasSuffix(f.Name, "_seconds") && !strings.HasSuffix(f.Name, "_bytes") {
				add(f.Name, "histogram needs a base unit suffix (_seconds or _bytes)")
			}
		case "untyped":
			add(f.Name, "family has no TYPE line")
		}
		if f.Help == "" && f.Kind != "untyped" {
			add(f.Name, "family has no HELP text")
		}
		seen := make(map[string]bool, len(f.Samples))
		nSeries := 0
		for _, s := range f.Samples {
			for i := 0; i+1 < len(s.Labels); i += 2 {
				if !validLabelName(s.Labels[i]) {
					add(f.Name, "invalid label name %q", s.Labels[i])
				}
			}
			key := s.Name + renderLabels(s.Labels)
			if seen[key] {
				add(f.Name, "duplicate series %s", key)
			}
			seen[key] = true
			// Histogram bucket lines are one series per le; count
			// series at the instance granularity (_count lines).
			if f.Kind != "histogram" || strings.HasSuffix(s.Name, "_count") {
				nSeries++
			}
		}
		if nSeries > maxSeries {
			add(f.Name, "label cardinality blowup: %d series (cap %d)", nSeries, maxSeries)
		}
	}
	return issues
}
