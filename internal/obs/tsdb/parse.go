// Package tsdb is an embedded, dependency-free time-series layer over
// the obs metrics registry: a Prometheus text-exposition parser, a
// fixed-size ring-buffer store with a label-cardinality cap, a small
// query grammar (instant and range selectors, rate(), over-time
// aggregates, histogram quantile estimation), a multi-target scrape
// collector (local registries and remote /metrics endpoints alike,
// which is what makes cluster-wide federation one code path), an SLO
// alert rule engine, and a metrics-conventions linter.
//
// Everything here runs on the serving side, off the simulator hot
// path: the pipeline publishes through the existing lock-free obs
// instruments and the seqlock progress probe; the tsdb only ever reads
// rendered exposition text on its own ticker.
package tsdb

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Sample is one series sample within a family: a concrete series name
// (for histograms this carries the _bucket/_sum/_count suffix), a
// sorted flat label list (key, value pairs), and the value.
type Sample struct {
	Name   string
	Labels []string
	Value  float64
}

// Family is one metric family from an exposition payload.
type Family struct {
	Name    string
	Help    string
	Kind    string // "counter", "gauge", "histogram", "untyped"
	Samples []Sample
}

// ParseExposition parses Prometheus text exposition format (version
// 0.0.4): # HELP / # TYPE comment lines, sample lines with optional
// label sets and optional trailing millisecond timestamps (ignored —
// the collector stamps its own scrape time). Samples with no TYPE line
// are grouped into an "untyped" family. Errors carry 1-based line
// numbers.
func ParseExposition(r io.Reader) ([]Family, error) {
	var (
		fams  []Family
		index = map[string]int{} // family name -> fams index
	)
	family := func(name string) *Family {
		if i, ok := index[name]; ok {
			return &fams[i]
		}
		index[name] = len(fams)
		fams = append(fams, Family{Name: name, Kind: "untyped"})
		return &fams[len(fams)-1]
	}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			rest := strings.TrimSpace(line[1:])
			switch {
			case strings.HasPrefix(rest, "HELP "):
				parts := strings.SplitN(rest[len("HELP "):], " ", 2)
				f := family(parts[0])
				if len(parts) == 2 {
					f.Help = parts[1]
				}
			case strings.HasPrefix(rest, "TYPE "):
				parts := strings.SplitN(rest[len("TYPE "):], " ", 2)
				if len(parts) != 2 {
					return nil, fmt.Errorf("line %d: malformed TYPE comment %q", lineno, line)
				}
				switch parts[1] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return nil, fmt.Errorf("line %d: unknown metric type %q", lineno, parts[1])
				}
				family(parts[0]).Kind = parts[1]
			}
			continue // other comments are ignored
		}
		name, labels, value, err := parseSampleLine(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineno, err)
		}
		f := family(familyOf(name, index))
		f.Samples = append(f.Samples, Sample{Name: name, Labels: labels, Value: value})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return fams, nil
}

// familyOf maps a sample's series name to its family name: histogram
// (and summary) series render as <family>_bucket/_sum/_count, so a
// suffixed name whose trimmed base is a known family belongs there.
func familyOf(name string, index map[string]int) string {
	if _, ok := index[name]; ok {
		return name
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suffix)
		if base != name {
			if _, ok := index[base]; ok {
				return base
			}
		}
	}
	return name
}

// parseSampleLine parses `name{k="v",...} value [timestamp]`.
func parseSampleLine(line string) (name string, labels []string, value float64, err error) {
	rest := line
	i := strings.IndexAny(rest, "{ \t")
	if i < 0 {
		return "", nil, 0, fmt.Errorf("sample line %q has no value", line)
	}
	name = rest[:i]
	if !validMetricName(name) {
		return "", nil, 0, fmt.Errorf("invalid metric name %q", name)
	}
	rest = rest[i:]
	if rest[0] == '{' {
		end, err := labelSetEnd(rest)
		if err != nil {
			return "", nil, 0, err
		}
		labels, err = parseLabels(rest[1:end])
		if err != nil {
			return "", nil, 0, err
		}
		rest = rest[end+1:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", nil, 0, fmt.Errorf("sample line %q: expected value [timestamp]", line)
	}
	value, err = strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return "", nil, 0, fmt.Errorf("bad sample value %q: %v", fields[0], err)
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return "", nil, 0, fmt.Errorf("bad sample timestamp %q", fields[1])
		}
	}
	return name, labels, value, nil
}

// labelSetEnd finds the index of the closing '}' of a label set that
// starts at s[0] == '{', respecting quoted values with escapes.
func labelSetEnd(s string) (int, error) {
	inQuote := false
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if inQuote {
				i++ // skip escaped char
			}
		case '"':
			inQuote = !inQuote
		case '}':
			if !inQuote {
				return i, nil
			}
		}
	}
	return 0, fmt.Errorf("unterminated label set in %q", s)
}

// parseLabels parses the interior of a label set (`k="v",k2="v2"`)
// into a sorted flat pair list.
func parseLabels(s string) ([]string, error) {
	var labels []string
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return nil, fmt.Errorf("label pair %q has no '='", s)
		}
		key := strings.TrimSpace(s[:eq])
		if !validLabelName(key) {
			return nil, fmt.Errorf("invalid label name %q", key)
		}
		s = strings.TrimSpace(s[eq+1:])
		if len(s) == 0 || s[0] != '"' {
			return nil, fmt.Errorf("label %q value is not quoted", key)
		}
		// Find the closing quote, honoring backslash escapes.
		end := -1
		for i := 1; i < len(s); i++ {
			if s[i] == '\\' {
				i++
				continue
			}
			if s[i] == '"' {
				end = i
				break
			}
		}
		if end < 0 {
			return nil, fmt.Errorf("label %q value is unterminated", key)
		}
		val, err := strconv.Unquote(s[:end+1])
		if err != nil {
			return nil, fmt.Errorf("label %q value %s: %v", key, s[:end+1], err)
		}
		labels = append(labels, key, val)
		s = strings.TrimSpace(s[end+1:])
		if len(s) > 0 {
			if s[0] != ',' {
				return nil, fmt.Errorf("expected ',' between labels, got %q", s)
			}
			s = strings.TrimSpace(s[1:])
		}
	}
	sortLabelPairs(labels)
	return labels, nil
}

// sortLabelPairs sorts a flat (key, value) pair list by key, then
// value, in place.
func sortLabelPairs(pairs []string) {
	if len(pairs) <= 2 {
		return
	}
	type kv struct{ k, v string }
	kvs := make([]kv, 0, len(pairs)/2)
	for i := 0; i+1 < len(pairs); i += 2 {
		kvs = append(kvs, kv{pairs[i], pairs[i+1]})
	}
	sort.Slice(kvs, func(a, b int) bool {
		if kvs[a].k != kvs[b].k {
			return kvs[a].k < kvs[b].k
		}
		return kvs[a].v < kvs[b].v
	})
	for i, p := range kvs {
		pairs[2*i], pairs[2*i+1] = p.k, p.v
	}
}

// renderLabels renders a flat pair list as `{k="v",...}` ("" if empty).
func renderLabels(pairs []string) string {
	if len(pairs) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i+1 < len(pairs); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", pairs[i], pairs[i+1])
	}
	b.WriteByte('}')
	return b.String()
}

// RenderExposition writes families back out in exposition format. Used
// by the lint round-trip test: parse(render(parse(x))) must equal
// parse(x).
func RenderExposition(w io.Writer, fams []Family) error {
	var b strings.Builder
	for _, f := range fams {
		if f.Help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.Name, f.Help)
		}
		if f.Kind != "untyped" {
			fmt.Fprintf(&b, "# TYPE %s %s\n", f.Name, f.Kind)
		}
		for _, s := range f.Samples {
			fmt.Fprintf(&b, "%s%s %s\n", s.Name, renderLabels(s.Labels), formatValue(s.Value))
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}
