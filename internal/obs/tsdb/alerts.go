package tsdb

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"
)

// Rule is one declarative SLO alert: a comparison expression over the
// tsdb, held for ForSeconds before firing.
type Rule struct {
	Name       string `json:"name"`
	Expr       string `json:"expr"`
	ForSeconds int    `json:"for_seconds,omitempty"`
	Severity   string `json:"severity,omitempty"` // info | warn | page
	Summary    string `json:"summary,omitempty"`

	cmp CmpExpr
}

// RuleSet is the -alerts-file document.
type RuleSet struct {
	IntervalSeconds int    `json:"interval_seconds,omitempty"` // evaluation cadence, default 5
	Webhook         string `json:"webhook,omitempty"`          // optional notification POST target
	Rules           []Rule `json:"rules"`
}

// Interval returns the evaluation cadence.
func (rs *RuleSet) Interval() time.Duration {
	if rs.IntervalSeconds <= 0 {
		return 5 * time.Second
	}
	return time.Duration(rs.IntervalSeconds) * time.Second
}

// LoadRules reads and validates an alert rules file.
func LoadRules(path string) (*RuleSet, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	rs, err := ParseRules(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rs, nil
}

// ParseRules parses and validates a rules document: every rule needs a
// unique name and a parseable comparison expression; severities are
// constrained to the known ladder.
func ParseRules(data []byte) (*RuleSet, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var rs RuleSet
	if err := dec.Decode(&rs); err != nil {
		return nil, fmt.Errorf("bad alert rules: %w", err)
	}
	if len(rs.Rules) == 0 {
		return nil, fmt.Errorf("alert rules file has no rules")
	}
	seen := make(map[string]bool, len(rs.Rules))
	for i := range rs.Rules {
		r := &rs.Rules[i]
		if r.Name == "" {
			return nil, fmt.Errorf("rule %d has no name", i)
		}
		if seen[r.Name] {
			return nil, fmt.Errorf("duplicate rule name %q", r.Name)
		}
		seen[r.Name] = true
		cmp, err := ParseCmp(r.Expr)
		if err != nil {
			return nil, fmt.Errorf("rule %q: %w", r.Name, err)
		}
		r.cmp = cmp
		if r.ForSeconds < 0 {
			return nil, fmt.Errorf("rule %q: for_seconds must be >= 0", r.Name)
		}
		switch r.Severity {
		case "", "info", "warn", "page":
		default:
			return nil, fmt.Errorf("rule %q: unknown severity %q (want info, warn, or page)", r.Name, r.Severity)
		}
	}
	return &rs, nil
}

// Alert lifecycle states.
const (
	AlertInactive = "inactive"
	AlertPending  = "pending" // breaching, inside the for_seconds hold
	AlertFiring   = "firing"
	AlertResolved = "resolved"
)

// AlertStatus is one rule's externally visible state on GET /v1/alerts.
type AlertStatus struct {
	Name      string            `json:"name"`
	Expr      string            `json:"expr"`
	Severity  string            `json:"severity,omitempty"`
	Summary   string            `json:"summary,omitempty"`
	State     string            `json:"state"`
	Since     time.Time         `json:"since,omitempty"`
	Value     float64           `json:"value,omitempty"`
	Breaching []BreachingSeries `json:"breaching,omitempty"`
}

// BreachingSeries is one label set currently violating a rule.
type BreachingSeries struct {
	Labels map[string]string `json:"labels,omitempty"`
	Value  float64           `json:"value"`
}

// Notification describes a state transition handed to the log, the
// webhook, and the in-process OnTransition hook (the flight-recorder
// dump trigger).
type Notification struct {
	Rule     string    `json:"rule"`
	State    string    `json:"state"` // firing | resolved
	Severity string    `json:"severity,omitempty"`
	Summary  string    `json:"summary,omitempty"`
	Expr     string    `json:"expr"`
	Value    float64   `json:"value"`
	Time     time.Time `json:"time"`
}

type alertState struct {
	state     string
	since     time.Time
	value     float64
	breaching []BreachingSeries
}

// Alerter evaluates a RuleSet against a DB on a ticker and tracks
// firing state. Evaluate is exposed with an explicit clock for
// deterministic tests.
type Alerter struct {
	db      *DB
	rules   *RuleSet
	log     *slog.Logger
	client  *http.Client
	service string

	// OnTransition, when set, runs synchronously on every firing or
	// resolved transition (after logging, before the webhook).
	OnTransition func(Notification)

	mu     sync.Mutex
	states map[string]*alertState
	wg     sync.WaitGroup // in-flight webhook posts
}

// NewAlerter builds an alerter; rules must be pre-validated (from
// LoadRules/ParseRules). service tags log lines and webhook payloads.
func NewAlerter(db *DB, rules *RuleSet, log *slog.Logger, service string) *Alerter {
	if log == nil {
		log = slog.Default()
	}
	a := &Alerter{
		db:      db,
		rules:   rules,
		log:     log,
		client:  &http.Client{Timeout: 5 * time.Second},
		service: service,
		states:  make(map[string]*alertState, len(rules.Rules)),
	}
	for _, r := range rules.Rules {
		a.states[r.Name] = &alertState{state: AlertInactive}
	}
	return a
}

// Evaluate runs every rule once at the given time.
func (a *Alerter) Evaluate(now time.Time) {
	var notify []Notification
	a.mu.Lock()
	for i := range a.rules.Rules {
		r := &a.rules.Rules[i]
		st := a.states[r.Name]
		results := a.db.Eval(r.cmp.Expr, now)
		var breaching []BreachingSeries
		worst := 0.0
		for _, res := range results {
			if r.cmp.breached(res.Value) {
				breaching = append(breaching, BreachingSeries{Labels: res.Labels, Value: res.Value})
				if len(breaching) == 1 || moreExtreme(r.cmp.Op, res.Value, worst) {
					worst = res.Value
				}
			}
		}
		st.breaching = breaching
		if len(breaching) > 0 {
			st.value = worst
			switch st.state {
			case AlertInactive, AlertResolved:
				st.state, st.since = AlertPending, now
				if r.ForSeconds == 0 {
					st.state = AlertFiring
					notify = append(notify, a.notification(r, AlertFiring, worst, now))
				}
			case AlertPending:
				if now.Sub(st.since) >= time.Duration(r.ForSeconds)*time.Second {
					st.state = AlertFiring
					notify = append(notify, a.notification(r, AlertFiring, worst, now))
				}
			case AlertFiring:
				// stay firing, value refreshed above
			}
		} else {
			switch st.state {
			case AlertPending:
				st.state, st.since = AlertInactive, now
			case AlertFiring:
				st.state, st.since = AlertResolved, now
				notify = append(notify, a.notification(r, AlertResolved, st.value, now))
			}
		}
	}
	a.mu.Unlock()
	for _, n := range notify {
		a.dispatch(n)
	}
}

func moreExtreme(op string, v, cur float64) bool {
	switch op {
	case "<", "<=":
		return v < cur
	default:
		return v > cur
	}
}

func (a *Alerter) notification(r *Rule, state string, value float64, now time.Time) Notification {
	return Notification{
		Rule: r.Name, State: state, Severity: r.Severity,
		Summary: r.Summary, Expr: r.Expr, Value: value, Time: now,
	}
}

// dispatch logs the transition, runs the in-process hook, and posts
// the webhook (best-effort, async).
func (a *Alerter) dispatch(n Notification) {
	if n.State == AlertFiring {
		a.log.Warn("alert firing", "rule", n.Rule, "severity", n.Severity,
			"expr", n.Expr, "value", n.Value, "summary", n.Summary)
	} else {
		a.log.Info("alert resolved", "rule", n.Rule, "value", n.Value)
	}
	if a.OnTransition != nil {
		a.OnTransition(n)
	}
	if a.rules.Webhook == "" {
		return
	}
	a.wg.Add(1)
	go func() {
		defer a.wg.Done()
		body, _ := json.Marshal(map[string]any{"service": a.service, "alert": n})
		resp, err := a.client.Post(a.rules.Webhook, "application/json", bytes.NewReader(body))
		if err != nil {
			a.log.Warn("alert webhook failed", "rule", n.Rule, "err", err)
			return
		}
		resp.Body.Close()
		if resp.StatusCode >= 300 {
			a.log.Warn("alert webhook rejected", "rule", n.Rule, "status", resp.StatusCode)
		}
	}()
}

// Run evaluates on the rule set's cadence until ctx is canceled, then
// waits for in-flight webhook posts.
func (a *Alerter) Run(ctx context.Context) {
	tick := time.NewTicker(a.rules.Interval())
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			a.wg.Wait()
			return
		case now := <-tick.C:
			a.Evaluate(now)
		}
	}
}

// FiringCount returns the number of rules currently firing — exported
// back into the registry as <service>_alerts_firing.
func (a *Alerter) FiringCount() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	n := 0
	for _, st := range a.states {
		if st.state == AlertFiring {
			n++
		}
	}
	return n
}

// Alerts snapshots every rule's status, sorted by name.
func (a *Alerter) Alerts() []AlertStatus {
	a.mu.Lock()
	out := make([]AlertStatus, 0, len(a.rules.Rules))
	for _, r := range a.rules.Rules {
		st := a.states[r.Name]
		out = append(out, AlertStatus{
			Name: r.Name, Expr: r.Expr, Severity: r.Severity, Summary: r.Summary,
			State: st.state, Since: st.since, Value: st.value,
			Breaching: append([]BreachingSeries(nil), st.breaching...),
		})
	}
	a.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
