package tsdb

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"
	"testing"
	"time"
)

var t0 = time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)

func newTestDB() *DB {
	return New(Options{ScrapeInterval: time.Second, Retention: 10 * time.Minute})
}

func almostEqual(a, b float64) bool {
	return math.Abs(a-b) < 1e-9
}

func TestParseExposition(t *testing.T) {
	input := `# HELP lvpd_jobs_total Jobs by terminal state.
# TYPE lvpd_jobs_total counter
lvpd_jobs_total{state="done"} 12
lvpd_jobs_total{state="failed"} 3
# TYPE lvpd_queue_depth gauge
lvpd_queue_depth 5
# HELP lvpd_http_request_duration_seconds HTTP latency.
# TYPE lvpd_http_request_duration_seconds histogram
lvpd_http_request_duration_seconds_bucket{route="/v1/jobs",le="0.1"} 4
lvpd_http_request_duration_seconds_bucket{route="/v1/jobs",le="+Inf"} 6
lvpd_http_request_duration_seconds_sum{route="/v1/jobs"} 1.25
lvpd_http_request_duration_seconds_count{route="/v1/jobs"} 6
untyped_thing 1 1700000000000
`
	fams, err := ParseExposition(strings.NewReader(input))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	byName := map[string]Family{}
	for _, f := range fams {
		byName[f.Name] = f
	}
	jt := byName["lvpd_jobs_total"]
	if jt.Kind != "counter" || len(jt.Samples) != 2 {
		t.Fatalf("lvpd_jobs_total = %+v", jt)
	}
	if jt.Help != "Jobs by terminal state." {
		t.Fatalf("help = %q", jt.Help)
	}
	if jt.Samples[0].Labels[0] != "state" || jt.Samples[0].Labels[1] != "done" {
		t.Fatalf("labels = %v", jt.Samples[0].Labels)
	}
	h := byName["lvpd_http_request_duration_seconds"]
	if h.Kind != "histogram" || len(h.Samples) != 4 {
		t.Fatalf("histogram family = %+v", h)
	}
	for _, s := range h.Samples {
		if !strings.HasPrefix(s.Name, "lvpd_http_request_duration_seconds") {
			t.Fatalf("histogram sample in wrong family: %q", s.Name)
		}
	}
	if byName["untyped_thing"].Kind != "untyped" {
		t.Fatalf("untyped family = %+v", byName["untyped_thing"])
	}
}

func TestParseExpositionErrors(t *testing.T) {
	cases := []string{
		"metric",                        // no value
		"metric{a=\"b\" 1",              // unterminated labels
		"metric{a=b} 1",                 // unquoted value
		"metric nope",                   // bad value
		"1metric 2",                     // bad name
		"# TYPE m frobnicator\nm 1",     // unknown type
		"metric{a=\"b\"} 1 not-a-stamp", // bad timestamp
	}
	for _, c := range cases {
		if _, err := ParseExposition(strings.NewReader(c)); err == nil {
			t.Errorf("ParseExposition(%q) = nil error, want failure", c)
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	input := `# HELP a_total Things.
# TYPE a_total counter
a_total{q="x \"quoted\" \\ back",z="2"} 7
# TYPE b_seconds histogram
b_seconds_bucket{le="0.5"} 1
b_seconds_bucket{le="+Inf"} 2
b_seconds_sum 3.5
b_seconds_count 2
`
	fams, err := ParseExposition(strings.NewReader(input))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	var buf strings.Builder
	if err := RenderExposition(&buf, fams); err != nil {
		t.Fatalf("render: %v", err)
	}
	again, err := ParseExposition(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("reparse rendered output: %v\n%s", err, buf.String())
	}
	if fmt.Sprintf("%+v", fams) != fmt.Sprintf("%+v", again) {
		t.Fatalf("round trip diverged:\n%+v\nvs\n%+v", fams, again)
	}
}

func TestParseExprTable(t *testing.T) {
	good := map[string]string{
		"lvpd_queue_depth":                                       "lvpd_queue_depth",
		`lvpd_jobs_total{state="failed"}`:                        `lvpd_jobs_total{state="failed"}`,
		"rate(lvpd_jobs_total[5m])":                              "rate(lvpd_jobs_total[5m0s])",
		`rate(lvpd_jobs_total{state="done"}[90s])`:               `rate(lvpd_jobs_total{state="done"}[1m30s])`,
		"avg( lvpd_queue_depth [60s] )":                          "avg(lvpd_queue_depth[1m0s])",
		"quantile(0.99, lvpd_http_request_duration_seconds[5m])": "quantile(0.99, lvpd_http_request_duration_seconds[5m0s])",
		"max(up[30s])":                                           "max(up[30s])",
	}
	for in, want := range good {
		e, err := ParseExpr(in)
		if err != nil {
			t.Errorf("ParseExpr(%q): %v", in, err)
			continue
		}
		if e.String() != want {
			t.Errorf("ParseExpr(%q).String() = %q, want %q", in, e.String(), want)
		}
	}
	bad := []string{
		"",
		"rate(lvpd_jobs_total)",     // missing window
		"lvpd_jobs_total[5m]",       // bare selector with window
		"rate(lvpd_jobs_total[5m]",  // unterminated call
		"quantile(1.5, h[5m])",      // q out of range
		"quantile(h[5m])",           // missing q
		"rate(lvpd_jobs_total[0s])", // zero window
		"frobnicate(lvpd_jobs[5m])", // unknown fn parses as selector; trailing junk
		`m{a="b"} extra`,            // trailing input
		`m{a=}`,                     // bad matcher
	}
	for _, in := range bad {
		if _, err := ParseExpr(in); err == nil {
			t.Errorf("ParseExpr(%q) = nil error, want failure", in)
		}
	}
}

func TestParseCmp(t *testing.T) {
	c, err := ParseCmp("avg(lvpd_queue_depth[60s]) > 48")
	if err != nil {
		t.Fatalf("ParseCmp: %v", err)
	}
	if c.Op != ">" || c.Threshold != 48 {
		t.Fatalf("cmp = %+v", c)
	}
	if !c.breached(49) || c.breached(48) {
		t.Fatalf("breached semantics wrong")
	}
	for _, bad := range []string{"lvpd_queue_depth", "lvpd_queue_depth > ", "lvpd_queue_depth > x", "a > 1 zz"} {
		if _, err := ParseCmp(bad); err == nil {
			t.Errorf("ParseCmp(%q) = nil error, want failure", bad)
		}
	}
}

// TestRateHandComputed pins rate() against a hand-computed series:
// counter at 0, 100, 250 over 20s → increase 250, rate 12.5/s. With a
// mid-window reset (0, 100, 30) the post-reset value counts in full:
// increase 130, rate 6.5/s.
func TestRateHandComputed(t *testing.T) {
	db := newTestDB()
	db.AppendSample(t0, "c_total", 0)
	db.AppendSample(t0.Add(10*time.Second), "c_total", 100)
	db.AppendSample(t0.Add(20*time.Second), "c_total", 250)

	e, err := ParseExpr("rate(c_total[20s])")
	if err != nil {
		t.Fatal(err)
	}
	res := db.Eval(e, t0.Add(20*time.Second))
	if len(res) != 1 || !almostEqual(res[0].Value, 12.5) {
		t.Fatalf("rate = %+v, want 12.5", res)
	}

	db.AppendSample(t0, "r_total", 0)
	db.AppendSample(t0.Add(10*time.Second), "r_total", 100)
	db.AppendSample(t0.Add(20*time.Second), "r_total", 30) // reset
	e2, _ := ParseExpr("rate(r_total[20s])")
	res = db.Eval(e2, t0.Add(20*time.Second))
	if len(res) != 1 || !almostEqual(res[0].Value, 6.5) {
		t.Fatalf("reset-aware rate = %+v, want 6.5", res)
	}

	// A single point in the window is not enough to compute a rate.
	db.AppendSample(t0, "one_total", 5)
	e3, _ := ParseExpr("rate(one_total[20s])")
	if res := db.Eval(e3, t0.Add(5*time.Second)); len(res) != 0 {
		t.Fatalf("single-point rate = %+v, want no result", res)
	}
}

// TestQuantileHandComputed pins histogram quantile estimation: bucket
// increases 10 (le 0.1), 30 (le 0.5), 40 (le 1), 40 (+Inf) → total 40.
// p50: rank 20, owning bucket (0.1, 0.5], interpolated
// 0.1 + 0.4*(20-10)/(30-10) = 0.3. p95: rank 38, owning bucket
// (0.5, 1]: 0.5 + 0.5*(38-30)/(40-30) = 0.9. p25: rank 10, first
// bucket interpolates from 0: 0.1*10/10 = 0.1.
func TestQuantileHandComputed(t *testing.T) {
	db := newTestDB()
	add := func(at time.Time, le string, v float64) {
		db.AppendSample(at, "lat_seconds_bucket", v, "le", le)
	}
	// Cumulative bucket counts at t0 (all zero) and t0+60s.
	for _, le := range []string{"0.1", "0.5", "1", "+Inf"} {
		add(t0, le, 0)
	}
	add(t0.Add(time.Minute), "0.1", 10)
	add(t0.Add(time.Minute), "0.5", 30)
	add(t0.Add(time.Minute), "1", 40)
	add(t0.Add(time.Minute), "+Inf", 40)

	for _, tc := range []struct {
		q    float64
		want float64
	}{
		{0.5, 0.3},
		{0.95, 0.9},
		{0.25, 0.1},
	} {
		e, err := ParseExpr(fmt.Sprintf("quantile(%g, lat_seconds[60s])", tc.q))
		if err != nil {
			t.Fatal(err)
		}
		res := db.Eval(e, t0.Add(time.Minute))
		if len(res) != 1 || !almostEqual(res[0].Value, tc.want) {
			t.Fatalf("quantile(%g) = %+v, want %g", tc.q, res, tc.want)
		}
	}

	// Rank beyond the last finite bucket answers the highest finite
	// bound (observations past it are unbounded).
	add(t0.Add(2*time.Minute), "0.1", 10)
	add(t0.Add(2*time.Minute), "0.5", 30)
	add(t0.Add(2*time.Minute), "1", 40)
	add(t0.Add(2*time.Minute), "+Inf", 50) // 10 observations above 1s
	e, _ := ParseExpr("quantile(0.99, lat_seconds[60s])")
	res := db.Eval(e, t0.Add(2*time.Minute))
	if len(res) != 1 || !almostEqual(res[0].Value, 1) {
		t.Fatalf("overflow quantile = %+v, want 1", res)
	}
}

// TestQuantileGroupsByInstance checks per-group estimation: two routes'
// histograms evaluate independently, keyed by their non-le labels.
func TestQuantileGroupsByInstance(t *testing.T) {
	db := newTestDB()
	add := func(at time.Time, route, le string, v float64) {
		db.AppendSample(at, "lat_seconds_bucket", v, "route", route, "le", le)
	}
	for _, le := range []string{"1", "+Inf"} {
		add(t0, "a", le, 0)
		add(t0, "b", le, 0)
	}
	add(t0.Add(time.Minute), "a", "1", 10)
	add(t0.Add(time.Minute), "a", "+Inf", 10)
	add(t0.Add(time.Minute), "b", "1", 0)
	add(t0.Add(time.Minute), "b", "+Inf", 10)
	e, _ := ParseExpr("quantile(0.5, lat_seconds[60s])")
	res := db.Eval(e, t0.Add(time.Minute))
	if len(res) != 2 {
		t.Fatalf("results = %+v, want 2 groups", res)
	}
	for _, r := range res {
		switch r.Labels["route"] {
		case "a":
			if !almostEqual(r.Value, 0.5) {
				t.Fatalf("route a p50 = %g, want 0.5", r.Value)
			}
		case "b":
			if !almostEqual(r.Value, 1) { // all observations above 1s
				t.Fatalf("route b p50 = %g, want 1", r.Value)
			}
		default:
			t.Fatalf("unexpected group %+v", r)
		}
	}
}

func TestOverTimeAggregates(t *testing.T) {
	db := newTestDB()
	for i, v := range []float64{2, 4, 9, 5} {
		db.AppendSample(t0.Add(time.Duration(i)*time.Second), "g", v)
	}
	at := t0.Add(3 * time.Second)
	for fn, want := range map[string]float64{"avg": 5, "max": 9, "min": 2, "sum": 20} {
		e, _ := ParseExpr(fmt.Sprintf("%s(g[10s])", fn))
		res := db.Eval(e, at)
		if len(res) != 1 || !almostEqual(res[0].Value, want) {
			t.Fatalf("%s = %+v, want %g", fn, res, want)
		}
	}
}

func TestInstantLookbackAndMatchers(t *testing.T) {
	db := newTestDB()
	db.AppendSample(t0, "g", 7, "w", "a")
	db.AppendSample(t0, "g", 9, "w", "b")

	e, _ := ParseExpr(`g{w="a"}`)
	res := db.Eval(e, t0.Add(time.Minute))
	if len(res) != 1 || res[0].Value != 7 {
		t.Fatalf("matcher eval = %+v", res)
	}
	// Past the staleness lookback the point no longer answers.
	if res := db.Eval(e, t0.Add(DefaultLookback+time.Minute)); len(res) != 0 {
		t.Fatalf("stale eval = %+v, want empty", res)
	}
	// Unmatched matcher yields nothing.
	e2, _ := ParseExpr(`g{w="zzz"}`)
	if res := db.Eval(e2, t0.Add(time.Second)); len(res) != 0 {
		t.Fatalf("unmatched eval = %+v", res)
	}
}

func TestEvalRange(t *testing.T) {
	db := newTestDB()
	for i := 0; i <= 60; i++ {
		db.AppendSample(t0.Add(time.Duration(i)*time.Second), "c_total", float64(i*10))
	}
	e, _ := ParseExpr("rate(c_total[30s])")
	res := db.EvalRange(e, t0.Add(30*time.Second), t0.Add(60*time.Second), 10*time.Second)
	if len(res) != 1 {
		t.Fatalf("range results = %+v", res)
	}
	if len(res[0].Points) != 4 {
		t.Fatalf("points = %+v, want 4 steps", res[0].Points)
	}
	for _, p := range res[0].Points {
		if !almostEqual(p.V, 10) { // steady 10/s counter
			t.Fatalf("rate point = %+v, want 10", p)
		}
	}
}

func TestRetentionRing(t *testing.T) {
	db := New(Options{ScrapeInterval: time.Second, Retention: 10 * time.Second})
	for i := 0; i < 100; i++ {
		db.AppendSample(t0.Add(time.Duration(i)*time.Second), "g", float64(i))
	}
	// Ring capacity is retention/interval + 1 = 11: only the last 11
	// points survive.
	e, _ := ParseExpr("min(g[1000s])")
	res := db.Eval(e, t0.Add(100*time.Second))
	if len(res) != 1 || !almostEqual(res[0].Value, 89) {
		t.Fatalf("oldest retained = %+v, want 89", res)
	}
}

func TestCardinalityCap(t *testing.T) {
	db := New(Options{ScrapeInterval: time.Second, Retention: time.Minute, MaxSeries: 3})
	for i := 0; i < 10; i++ {
		db.AppendSample(t0, "g", 1, "i", fmt.Sprint(i))
	}
	if db.SeriesCount() != 3 {
		t.Fatalf("series = %d, want 3", db.SeriesCount())
	}
	if db.DroppedSeries() != 7 {
		t.Fatalf("dropped = %d, want 7", db.DroppedSeries())
	}
}

func TestCollectorUpSeries(t *testing.T) {
	db := newTestDB()
	healthy := true
	col := &Collector{DB: db, Targets: func() []Target {
		return []Target{
			{Key: "self", Scrape: func(context.Context) ([]Family, error) {
				return []Family{{Name: "g", Kind: "gauge", Samples: []Sample{{Name: "g", Value: 42}}}}, nil
			}},
			{Key: "worker/w-001", Labels: []string{"worker", "w-001"}, Scrape: func(context.Context) ([]Family, error) {
				if healthy {
					return []Family{{Name: "g", Kind: "gauge", Samples: []Sample{{Name: "g", Value: 7}}}}, nil
				}
				return nil, errors.New("connection refused")
			}},
		}
	}}
	col.ScrapeOnce(context.Background(), t0)

	e, _ := ParseExpr(`up{worker="w-001"}`)
	res := db.Eval(e, t0)
	if len(res) != 1 || res[0].Value != 1 {
		t.Fatalf("up after healthy scrape = %+v", res)
	}
	eg, _ := ParseExpr(`g{worker="w-001"}`)
	if res := db.Eval(eg, t0); len(res) != 1 || res[0].Value != 7 {
		t.Fatalf("federated g = %+v", res)
	}

	healthy = false
	col.ScrapeOnce(context.Background(), t0.Add(time.Second))
	if res := db.Eval(e, t0.Add(time.Second)); len(res) != 1 || res[0].Value != 0 {
		t.Fatalf("up after failed scrape = %+v", res)
	}
	st, ok := col.StatusByKey("worker/w-001")
	if !ok || st.Healthy || st.LastError == "" {
		t.Fatalf("status = %+v", st)
	}
	if st.LastSuccess != t0 {
		t.Fatalf("last success = %v, want %v", st.LastSuccess, t0)
	}
	// The healthy target is unaffected.
	if st, _ := col.StatusByKey("self"); !st.Healthy {
		t.Fatalf("self status = %+v", st)
	}
}

func TestAlerterLifecycle(t *testing.T) {
	db := newTestDB()
	rs, err := ParseRules([]byte(`{
		"rules": [
			{"name": "deep-queue", "expr": "q > 10", "for_seconds": 10, "severity": "warn"},
			{"name": "instant", "expr": "q > 100"}
		]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	var transitions []Notification
	a := NewAlerter(db, rs, nil, "lvpd")
	a.OnTransition = func(n Notification) { transitions = append(transitions, n) }

	// Below threshold: inactive.
	db.AppendSample(t0, "q", 5)
	a.Evaluate(t0)
	if got := stateOf(t, a, "deep-queue"); got != AlertInactive {
		t.Fatalf("state = %q, want inactive", got)
	}

	// Breach: pending during the for_seconds hold.
	db.AppendSample(t0.Add(time.Second), "q", 50)
	a.Evaluate(t0.Add(time.Second))
	if got := stateOf(t, a, "deep-queue"); got != AlertPending {
		t.Fatalf("state = %q, want pending", got)
	}
	if len(transitions) != 0 {
		t.Fatalf("notified during hold: %+v", transitions)
	}

	// Still breaching after the hold: firing.
	db.AppendSample(t0.Add(12*time.Second), "q", 60)
	a.Evaluate(t0.Add(12 * time.Second))
	if got := stateOf(t, a, "deep-queue"); got != AlertFiring {
		t.Fatalf("state = %q, want firing", got)
	}
	if a.FiringCount() != 1 {
		t.Fatalf("firing count = %d", a.FiringCount())
	}
	if len(transitions) != 1 || transitions[0].State != AlertFiring || transitions[0].Rule != "deep-queue" {
		t.Fatalf("transitions = %+v", transitions)
	}
	if transitions[0].Value != 60 {
		t.Fatalf("fired value = %g, want 60", transitions[0].Value)
	}

	// Recovery: resolved, with a notification.
	db.AppendSample(t0.Add(20*time.Second), "q", 1)
	a.Evaluate(t0.Add(20 * time.Second))
	if got := stateOf(t, a, "deep-queue"); got != AlertResolved {
		t.Fatalf("state = %q, want resolved", got)
	}
	if a.FiringCount() != 0 {
		t.Fatalf("firing count after resolve = %d", a.FiringCount())
	}
	if len(transitions) != 2 || transitions[1].State != AlertResolved {
		t.Fatalf("transitions = %+v", transitions)
	}

	// A pending alert that recovers before the hold expires goes back
	// to inactive without notifying.
	db.AppendSample(t0.Add(30*time.Second), "q", 99)
	a.Evaluate(t0.Add(30 * time.Second))
	db.AppendSample(t0.Add(32*time.Second), "q", 1)
	a.Evaluate(t0.Add(32 * time.Second))
	if got := stateOf(t, a, "deep-queue"); got != AlertInactive {
		t.Fatalf("state = %q, want inactive after short blip", got)
	}
	if len(transitions) != 2 {
		t.Fatalf("blip notified: %+v", transitions)
	}
}

func stateOf(t *testing.T, a *Alerter, rule string) string {
	t.Helper()
	for _, st := range a.Alerts() {
		if st.Name == rule {
			return st.State
		}
	}
	t.Fatalf("no rule %q", rule)
	return ""
}

func TestParseRulesValidation(t *testing.T) {
	bad := []string{
		`{}`,
		`{"rules": []}`,
		`{"rules": [{"expr": "q > 1"}]}`, // no name
		`{"rules": [{"name": "a", "expr": "q >"}]}`,                                   // bad expr
		`{"rules": [{"name": "a", "expr": "q"}]}`,                                     // no comparison
		`{"rules": [{"name": "a", "expr": "q > 1"}, {"name": "a", "expr": "q > 2"}]}`, // dup
		`{"rules": [{"name": "a", "expr": "q > 1", "for_seconds": -1}]}`,              // bad hold
		`{"rules": [{"name": "a", "expr": "q > 1", "severity": "meh"}]}`,              // bad severity
		`{"unknown_field": 1, "rules": [{"name": "a", "expr": "q > 1"}]}`,             // strict decode
	}
	for _, b := range bad {
		if _, err := ParseRules([]byte(b)); err == nil {
			t.Errorf("ParseRules(%s) = nil error, want failure", b)
		}
	}
	rs, err := ParseRules([]byte(`{"interval_seconds": 2, "rules": [{"name": "a", "expr": "rate(c_total[60s]) >= 0.5"}]}`))
	if err != nil {
		t.Fatalf("valid rules rejected: %v", err)
	}
	if rs.Interval() != 2*time.Second {
		t.Fatalf("interval = %v", rs.Interval())
	}
}

func TestLint(t *testing.T) {
	clean := []Family{
		{Name: "lvpd_jobs_total", Kind: "counter", Help: "Jobs.", Samples: []Sample{{Name: "lvpd_jobs_total", Value: 1}}},
		{Name: "lvpd_queue_depth", Kind: "gauge", Help: "Depth.", Samples: []Sample{{Name: "lvpd_queue_depth", Value: 1}}},
		{Name: "lvpd_wal_fsync_seconds", Kind: "histogram", Help: "Fsync.", Samples: []Sample{
			{Name: "lvpd_wal_fsync_seconds_bucket", Labels: []string{"le", "+Inf"}, Value: 1},
			{Name: "lvpd_wal_fsync_seconds_sum", Value: 0.1},
			{Name: "lvpd_wal_fsync_seconds_count", Value: 1},
		}},
	}
	if issues := Lint(clean, LintOptions{}); len(issues) != 0 {
		t.Fatalf("clean exposition flagged: %v", issues)
	}
	dirty := []Family{
		{Name: "requests", Kind: "counter", Help: "x", Samples: nil},  // counter w/o _total
		{Name: "depth_total", Kind: "gauge", Help: "x", Samples: nil}, // gauge with _total
		{Name: "latency", Kind: "histogram", Help: "x", Samples: nil}, // histogram w/o unit
		{Name: "helpless_total", Kind: "counter", Samples: nil},       // no help
		{Name: "untyped_thing", Kind: "untyped", Samples: nil},        // no TYPE
		{Name: "dup_total", Kind: "counter", Help: "x", Samples: []Sample{
			{Name: "dup_total", Value: 1}, {Name: "dup_total", Value: 2},
		}},
	}
	issues := Lint(dirty, LintOptions{})
	if len(issues) != 6 {
		t.Fatalf("issues = %v, want 6", issues)
	}

	// Cardinality blowup.
	blown := Family{Name: "big", Kind: "gauge", Help: "x"}
	for i := 0; i < 600; i++ {
		blown.Samples = append(blown.Samples, Sample{Name: "big", Labels: []string{"i", fmt.Sprint(i)}, Value: 1})
	}
	if issues := Lint([]Family{blown}, LintOptions{}); len(issues) != 1 ||
		!strings.Contains(issues[0].Problem, "cardinality") {
		t.Fatalf("blowup issues = %v", issues)
	}
}
