package tsdb

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"
)

// Target is one scrape source. Key identifies it across ticks (status
// tracking); Labels are merged into every sample it produces (the
// federation worker label); Scrape fetches and parses one exposition.
type Target struct {
	Key    string
	Labels []string
	Scrape func(ctx context.Context) ([]Family, error)
}

// RegistryTarget scrapes a local obs registry by rendering its
// exposition into a buffer and parsing it back — one code path with
// remote scrapes, so federation and self-sampling behave identically.
func RegistryTarget(key string, reg interface {
	WriteTo(io.Writer) (int64, error)
}, labels ...string) Target {
	return Target{Key: key, Labels: labels, Scrape: func(ctx context.Context) ([]Family, error) {
		var buf bytes.Buffer
		if _, err := reg.WriteTo(&buf); err != nil {
			return nil, err
		}
		return ParseExposition(&buf)
	}}
}

// HTTPTarget scrapes a remote /metrics endpoint.
func HTTPTarget(key, url string, client *http.Client, timeout time.Duration, labels ...string) Target {
	if client == nil {
		client = http.DefaultClient
	}
	return Target{Key: key, Labels: labels, Scrape: func(ctx context.Context) ([]Family, error) {
		if timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, timeout)
			defer cancel()
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
		if err != nil {
			return nil, err
		}
		resp, err := client.Do(req)
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("scrape %s: status %d", url, resp.StatusCode)
		}
		return ParseExposition(io.LimitReader(resp.Body, 16<<20))
	}}
}

// TargetStatus is one target's scrape health.
type TargetStatus struct {
	Key         string    `json:"key"`
	LastScrape  time.Time `json:"last_scrape"`
	LastSuccess time.Time `json:"last_success,omitempty"`
	LastError   string    `json:"last_error,omitempty"`
	Healthy     bool      `json:"healthy"`
}

// Collector periodically scrapes a dynamic target set into a DB. Each
// tick it also synthesizes an `up{...}` series per target (1 scraped,
// 0 failed) so staleness is queryable like any other metric.
type Collector struct {
	DB       *DB
	Interval time.Duration
	// Targets returns the current scrape set; re-evaluated each tick
	// so workers joining or draining mid-flight are picked up.
	Targets func() []Target
	// OnScrape, when set, runs after each tick's scrapes — the flight
	// recorder's sampling hook.
	OnScrape func(now time.Time)

	mu       sync.Mutex
	statuses map[string]*TargetStatus
}

// ScrapeOnce runs one collection pass at the given time. Exposed (with
// an explicit clock) so tests drive collection deterministically.
func (c *Collector) ScrapeOnce(ctx context.Context, now time.Time) {
	var targets []Target
	if c.Targets != nil {
		targets = c.Targets()
	}
	for _, t := range targets {
		fams, err := t.Scrape(ctx)
		up := 0.0
		if err == nil {
			c.DB.Append(now, fams, t.Labels...)
			up = 1
		}
		c.DB.AppendSample(now, "up", up, t.Labels...)
		c.mu.Lock()
		if c.statuses == nil {
			c.statuses = make(map[string]*TargetStatus)
		}
		st, ok := c.statuses[t.Key]
		if !ok {
			st = &TargetStatus{Key: t.Key}
			c.statuses[t.Key] = st
		}
		st.LastScrape = now
		st.Healthy = err == nil
		if err == nil {
			st.LastSuccess = now
			st.LastError = ""
		} else {
			st.LastError = err.Error()
		}
		c.mu.Unlock()
	}
	if c.OnScrape != nil {
		c.OnScrape(now)
	}
}

// Run scrapes on a ticker until ctx is canceled.
func (c *Collector) Run(ctx context.Context) {
	iv := c.Interval
	if iv <= 0 {
		iv = c.DB.Options().ScrapeInterval
	}
	tick := time.NewTicker(iv)
	defer tick.Stop()
	c.ScrapeOnce(ctx, time.Now())
	for {
		select {
		case <-ctx.Done():
			return
		case now := <-tick.C:
			c.ScrapeOnce(ctx, now)
		}
	}
}

// Statuses returns every known target's scrape health, sorted by key.
func (c *Collector) Statuses() []TargetStatus {
	c.mu.Lock()
	out := make([]TargetStatus, 0, len(c.statuses))
	for _, st := range c.statuses {
		out = append(out, *st)
	}
	c.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// StatusByKey returns one target's scrape health.
func (c *Collector) StatusByKey(key string) (TargetStatus, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	st, ok := c.statuses[key]
	if !ok {
		return TargetStatus{}, false
	}
	return *st, true
}
