package tsdb

import (
	"encoding/json"
	"net/http"
	"strconv"
	"time"
)

// HandleQuery serves GET /v1/metrics/query against db.
//
// Parameters:
//
//	q        expression (required), e.g. rate(lvpd_jobs_total[5m])
//	time_ms  instant query evaluation time (default: now)
//	start_ms, end_ms, step_ms
//	         range query bounds; presence of start_ms+end_ms selects
//	         range mode (step defaults to the scrape interval)
//
// extra, when non-nil, is merged into the response object — the
// coordinator uses it to annotate fleet scrape health per worker.
func HandleQuery(db *DB, w http.ResponseWriter, r *http.Request, extra map[string]any) {
	q := r.URL.Query().Get("q")
	if q == "" {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "missing q parameter"})
		return
	}
	e, err := ParseExpr(q)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	resp := map[string]any{"query": e.String()}
	for k, v := range extra {
		resp[k] = v
	}

	startMS, hasStart := queryInt(r, "start_ms")
	endMS, hasEnd := queryInt(r, "end_ms")
	if hasStart || hasEnd {
		if !hasStart || !hasEnd || endMS < startMS {
			writeJSON(w, http.StatusBadRequest, map[string]string{
				"error": "range query needs start_ms <= end_ms"})
			return
		}
		stepMS, _ := queryInt(r, "step_ms")
		resp["results"] = orEmptySeries(db.EvalRange(e,
			time.UnixMilli(startMS), time.UnixMilli(endMS),
			time.Duration(stepMS)*time.Millisecond))
		writeJSON(w, http.StatusOK, resp)
		return
	}

	at := time.Now()
	if tms, ok := queryInt(r, "time_ms"); ok {
		at = time.UnixMilli(tms)
	}
	resp["results"] = orEmptyInstant(db.Eval(e, at))
	writeJSON(w, http.StatusOK, resp)
}

// orEmptyInstant / orEmptySeries keep "results" a JSON array (never
// null) so curl | jq pipelines and the CI smoke don't special-case.
func orEmptyInstant(rs []InstantResult) []InstantResult {
	if rs == nil {
		return []InstantResult{}
	}
	return rs
}

func orEmptySeries(rs []SeriesResult) []SeriesResult {
	if rs == nil {
		return []SeriesResult{}
	}
	return rs
}

// HandleAlerts serves GET /v1/alerts. A nil alerter (no -alerts-file)
// reports alerting disabled with an empty list rather than a 404, so
// dashboards can poll unconditionally.
func HandleAlerts(a *Alerter, w http.ResponseWriter, r *http.Request) {
	if a == nil {
		writeJSON(w, http.StatusOK, map[string]any{"enabled": false, "alerts": []AlertStatus{}})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"enabled": true,
		"firing":  a.FiringCount(),
		"alerts":  a.Alerts(),
	})
}

func queryInt(r *http.Request, key string) (int64, bool) {
	s := r.URL.Query().Get(key)
	if s == "" {
		return 0, false
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}
