// Package obs is a minimal, dependency-free observability layer for the
// serving side of the repo: an atomic counter/gauge/histogram registry
// with Prometheus text-format exposition. It implements just enough of
// the exposition format (HELP/TYPE lines, labels, cumulative histogram
// buckets) for standard scrapers; it is not a general metrics library.
//
// All metric operations are lock-free after registration and safe for
// concurrent use; registration itself takes a registry-wide mutex and is
// idempotent (registering the same name+labels twice returns the same
// metric).
package obs

import (
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a metric that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (which may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram counts observations into cumulative buckets, Prometheus
// style. Bounds are the inclusive upper edges of each bucket; a +Inf
// bucket is implicit.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // one per bound, plus +Inf at the end
	sum    atomic.Uint64   // float64 bits, CAS-accumulated
	count  atomic.Uint64
}

// Observe records one sample.
func (h *Histogram) Observe(x float64) {
	i := sort.SearchFloat64s(h.bounds, x)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + x)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// DefBuckets are default latency buckets in seconds, spanning fast
// cache hits (~ms) through long simulations (minutes).
var DefBuckets = []float64{
	.001, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10, 30, 60, 120,
}

// metric is one registered time series: a family name, an optional
// label set, and the backing instrument.
type metric struct {
	labels string // rendered `{k="v",...}` or ""
	c      *Counter
	g      *Gauge
	h      *Histogram
	fg     func() float64 // derived gauge, evaluated at scrape time
}

// family groups series sharing a metric name.
type family struct {
	name   string
	help   string
	kind   string // "counter", "gauge", "histogram"
	series []*metric
}

// DefaultMaxSeries bounds the number of distinct time series a registry
// accepts. Unbounded label cardinality is the classic way a metrics
// layer eats a process: one label value per job ID and the scrape
// payload grows without limit. Past the cap, new series still return
// working instruments but are not rendered, and obs_dropped_series_total
// counts them.
const DefaultMaxSeries = 8192

// Registry holds registered metrics and renders them in Prometheus text
// format. The zero value is not usable; call NewRegistry.
type Registry struct {
	mu        sync.Mutex
	families  map[string]*family
	order     []string
	nSeries   int
	maxSeries int
	dropped   *Counter
	log       *slog.Logger
}

// NewRegistry returns an empty registry with the default series cap.
func NewRegistry() *Registry {
	r := &Registry{families: make(map[string]*family), maxSeries: DefaultMaxSeries}
	r.dropped = r.Counter("obs_dropped_series_total",
		"Series rejected by the registry-wide label-cardinality cap.")
	return r
}

// SetMaxSeries replaces the series cap (n <= 0 means unlimited).
// Already-registered series are kept either way.
func (r *Registry) SetMaxSeries(n int) {
	r.mu.Lock()
	r.maxSeries = n
	r.mu.Unlock()
}

// SetLogger sets the logger used to report scrape write failures; nil
// reverts to slog.Default().
func (r *Registry) SetLogger(log *slog.Logger) {
	r.mu.Lock()
	r.log = log
	r.mu.Unlock()
}

func (r *Registry) logger() *slog.Logger {
	r.mu.Lock()
	log := r.log
	r.mu.Unlock()
	if log == nil {
		return slog.Default()
	}
	return log
}

// Labels is an ordered label set: pairs of key, value.
type Labels []string

func (l Labels) render() string {
	if len(l) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i+1 < len(l); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l[i], l[i+1])
	}
	b.WriteByte('}')
	return b.String()
}

// lookup finds or creates the series for name+labels. init runs under
// the registry mutex so instruments are fully built before any scrape
// can observe the series. Past the series cap, the returned metric is
// detached: it works as an instrument but is never rendered.
func (r *Registry) lookup(name, help, kind string, labels Labels, init func(*metric)) *metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	ls := labels.render()
	f, ok := r.families[name]
	if ok {
		if f.kind != kind {
			panic(fmt.Sprintf("obs: metric %q registered as %s and %s", name, f.kind, kind))
		}
		for _, m := range f.series {
			if m.labels == ls {
				init(m)
				return m
			}
		}
	}
	m := &metric{labels: ls}
	init(m)
	if r.maxSeries > 0 && r.nSeries >= r.maxSeries {
		if r.dropped != nil {
			r.dropped.Inc()
		}
		return m
	}
	if !ok {
		f = &family{name: name, help: help, kind: kind}
		r.families[name] = f
		r.order = append(r.order, name)
	}
	f.series = append(f.series, m)
	r.nSeries++
	return m
}

// Counter registers (or fetches) a counter.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	m := r.lookup(name, help, "counter", Labels(labels), func(m *metric) {
		if m.c == nil {
			m.c = &Counter{}
		}
	})
	return m.c
}

// Gauge registers (or fetches) a gauge.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	m := r.lookup(name, help, "gauge", Labels(labels), func(m *metric) {
		if m.g == nil {
			m.g = &Gauge{}
		}
	})
	return m.g
}

// GaugeFunc registers a gauge whose value is computed by fn at scrape
// time. Use it for metrics derived from other instruments (ratios,
// rates); fn must be safe for concurrent use. Re-registering the same
// name+labels keeps the first fn.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...string) {
	r.lookup(name, help, "gauge", Labels(labels), func(m *metric) {
		if m.fg == nil && m.g == nil {
			m.fg = fn
		}
	})
}

// CounterFunc registers a counter whose value is computed by fn at
// scrape time. Use it for cumulative values maintained elsewhere (an
// artifact store's hit count, say) so the exposition carries the
// correct counter TYPE and downstream rate() works. fn must be
// monotonically non-decreasing and safe for concurrent use.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...string) {
	r.lookup(name, help, "counter", Labels(labels), func(m *metric) {
		if m.fg == nil && m.c == nil {
			m.fg = fn
		}
	})
}

// Histogram registers (or fetches) a histogram with the given bucket
// bounds (nil = DefBuckets).
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...string) *Histogram {
	m := r.lookup(name, help, "histogram", Labels(labels), func(m *metric) {
		if m.h == nil {
			b := bounds
			if b == nil {
				b = DefBuckets
			}
			bs := make([]float64, len(b))
			copy(bs, b)
			sort.Float64s(bs)
			m.h = &Histogram{bounds: bs, counts: make([]atomic.Uint64, len(bs)+1)}
		}
	})
	return m.h
}

// famSnapshot is a scrape-time copy of one family: the series slice is
// copied under the registry mutex so concurrent registration (which
// appends to family.series) cannot race the render loop.
type famSnapshot struct {
	name   string
	help   string
	kind   string
	series []*metric
}

// WriteTo renders every registered metric in Prometheus text format, in
// registration order.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	r.mu.Lock()
	fams := make([]famSnapshot, 0, len(r.order))
	for _, name := range r.order {
		f := r.families[name]
		fams = append(fams, famSnapshot{
			name:   f.name,
			help:   f.help,
			kind:   f.kind,
			series: append([]*metric(nil), f.series...),
		})
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, f.help)
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		for _, m := range f.series {
			switch f.kind {
			case "counter":
				if m.fg != nil {
					fmt.Fprintf(&b, "%s%s %g\n", f.name, m.labels, m.fg())
				} else {
					fmt.Fprintf(&b, "%s%s %d\n", f.name, m.labels, m.c.Value())
				}
			case "gauge":
				if m.fg != nil {
					fmt.Fprintf(&b, "%s%s %g\n", f.name, m.labels, m.fg())
				} else {
					fmt.Fprintf(&b, "%s%s %d\n", f.name, m.labels, m.g.Value())
				}
			case "histogram":
				writeHistogram(&b, f.name, m)
			}
		}
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

func writeHistogram(b *strings.Builder, name string, m *metric) {
	h := m.h
	// Re-render the label set with le appended per bucket.
	base := strings.TrimSuffix(strings.TrimPrefix(m.labels, "{"), "}")
	bucketLabels := func(le string) string {
		if base == "" {
			return fmt.Sprintf("{le=%q}", le)
		}
		return fmt.Sprintf("{%s,le=%q}", base, le)
	}
	var cum uint64
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(b, "%s_bucket%s %d\n", name, bucketLabels(formatBound(bound)), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(b, "%s_bucket%s %d\n", name, bucketLabels("+Inf"), cum)
	fmt.Fprintf(b, "%s_sum%s %g\n", name, m.labels, h.Sum())
	fmt.Fprintf(b, "%s_count%s %d\n", name, m.labels, h.Count())
}

// formatBound renders a bucket bound the way Prometheus clients do:
// minimal decimal representation.
func formatBound(f float64) string {
	return fmt.Sprintf("%g", f)
}

// Handler returns an http.Handler serving the registry in Prometheus
// text format (for mounting at /metrics). A write failure mid-scrape
// (usually the scraper hanging up) leaves the payload truncated; the
// handler logs it so the truncation is visible rather than silent.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if n, err := r.WriteTo(w); err != nil {
			r.logger().Warn("metrics scrape truncated",
				"written_bytes", n, "err", err, "remote", req.RemoteAddr)
		}
	})
}
