// Package obs is a minimal, dependency-free observability layer for the
// serving side of the repo: an atomic counter/gauge/histogram registry
// with Prometheus text-format exposition. It implements just enough of
// the exposition format (HELP/TYPE lines, labels, cumulative histogram
// buckets) for standard scrapers; it is not a general metrics library.
//
// All metric operations are lock-free after registration and safe for
// concurrent use; registration itself takes a registry-wide mutex and is
// idempotent (registering the same name+labels twice returns the same
// metric).
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a metric that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (which may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram counts observations into cumulative buckets, Prometheus
// style. Bounds are the inclusive upper edges of each bucket; a +Inf
// bucket is implicit.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // one per bound, plus +Inf at the end
	sum    atomic.Uint64   // float64 bits, CAS-accumulated
	count  atomic.Uint64
}

// Observe records one sample.
func (h *Histogram) Observe(x float64) {
	i := sort.SearchFloat64s(h.bounds, x)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + x)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// DefBuckets are default latency buckets in seconds, spanning fast
// cache hits (~ms) through long simulations (minutes).
var DefBuckets = []float64{
	.001, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10, 30, 60, 120,
}

// metric is one registered time series: a family name, an optional
// label set, and the backing instrument.
type metric struct {
	labels string // rendered `{k="v",...}` or ""
	c      *Counter
	g      *Gauge
	h      *Histogram
	fg     func() float64 // derived gauge, evaluated at scrape time
}

// family groups series sharing a metric name.
type family struct {
	name   string
	help   string
	kind   string // "counter", "gauge", "histogram"
	series []*metric
}

// Registry holds registered metrics and renders them in Prometheus text
// format. The zero value is not usable; call NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Labels is an ordered label set: pairs of key, value.
type Labels []string

func (l Labels) render() string {
	if len(l) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i+1 < len(l); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l[i], l[i+1])
	}
	b.WriteByte('}')
	return b.String()
}

func (r *Registry) lookup(name, help, kind string, labels Labels) *metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind}
		r.families[name] = f
		r.order = append(r.order, name)
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %s and %s", name, f.kind, kind))
	}
	ls := labels.render()
	for _, m := range f.series {
		if m.labels == ls {
			return m
		}
	}
	m := &metric{labels: ls}
	f.series = append(f.series, m)
	return m
}

// Counter registers (or fetches) a counter.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	m := r.lookup(name, help, "counter", Labels(labels))
	if m.c == nil {
		m.c = &Counter{}
	}
	return m.c
}

// Gauge registers (or fetches) a gauge.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	m := r.lookup(name, help, "gauge", Labels(labels))
	if m.g == nil {
		m.g = &Gauge{}
	}
	return m.g
}

// GaugeFunc registers a gauge whose value is computed by fn at scrape
// time. Use it for metrics derived from other instruments (ratios,
// rates); fn must be safe for concurrent use. Re-registering the same
// name+labels keeps the first fn.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...string) {
	m := r.lookup(name, help, "gauge", Labels(labels))
	if m.fg == nil && m.g == nil {
		m.fg = fn
	}
}

// Histogram registers (or fetches) a histogram with the given bucket
// bounds (nil = DefBuckets).
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...string) *Histogram {
	m := r.lookup(name, help, "histogram", Labels(labels))
	if m.h == nil {
		if bounds == nil {
			bounds = DefBuckets
		}
		b := make([]float64, len(bounds))
		copy(b, bounds)
		sort.Float64s(b)
		m.h = &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
	}
	return m.h
}

// WriteTo renders every registered metric in Prometheus text format, in
// registration order.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.order))
	for _, name := range r.order {
		fams = append(fams, r.families[name])
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, f.help)
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		for _, m := range f.series {
			switch f.kind {
			case "counter":
				fmt.Fprintf(&b, "%s%s %d\n", f.name, m.labels, m.c.Value())
			case "gauge":
				if m.fg != nil {
					fmt.Fprintf(&b, "%s%s %g\n", f.name, m.labels, m.fg())
				} else {
					fmt.Fprintf(&b, "%s%s %d\n", f.name, m.labels, m.g.Value())
				}
			case "histogram":
				writeHistogram(&b, f.name, m)
			}
		}
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

func writeHistogram(b *strings.Builder, name string, m *metric) {
	h := m.h
	// Re-render the label set with le appended per bucket.
	base := strings.TrimSuffix(strings.TrimPrefix(m.labels, "{"), "}")
	bucketLabels := func(le string) string {
		if base == "" {
			return fmt.Sprintf("{le=%q}", le)
		}
		return fmt.Sprintf("{%s,le=%q}", base, le)
	}
	var cum uint64
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(b, "%s_bucket%s %d\n", name, bucketLabels(formatBound(bound)), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(b, "%s_bucket%s %d\n", name, bucketLabels("+Inf"), cum)
	fmt.Fprintf(b, "%s_sum%s %g\n", name, m.labels, h.Sum())
	fmt.Fprintf(b, "%s_count%s %d\n", name, m.labels, h.Count())
}

// formatBound renders a bucket bound the way Prometheus clients do:
// minimal decimal representation.
func formatBound(f float64) string {
	return fmt.Sprintf("%g", f)
}

// Handler returns an http.Handler serving the registry in Prometheus
// text format (for mounting at /metrics).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WriteTo(w)
	})
}
