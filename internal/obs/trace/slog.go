package trace

import (
	"context"
	"log/slog"
)

// LogHandler decorates another slog handler with trace_id/span_id
// attributes taken from the log call's context, correlating log lines
// with the trace that produced them.
type LogHandler struct {
	inner slog.Handler
}

// NewLogHandler wraps inner with trace correlation.
func NewLogHandler(inner slog.Handler) *LogHandler { return &LogHandler{inner: inner} }

func (h *LogHandler) Enabled(ctx context.Context, level slog.Level) bool {
	return h.inner.Enabled(ctx, level)
}

func (h *LogHandler) Handle(ctx context.Context, rec slog.Record) error {
	if sc := ContextSpanContext(ctx); sc.Valid() {
		rec.AddAttrs(slog.String("trace_id", sc.TraceID), slog.String("span_id", sc.SpanID))
	}
	return h.inner.Handle(ctx, rec)
}

func (h *LogHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return &LogHandler{inner: h.inner.WithAttrs(attrs)}
}

func (h *LogHandler) WithGroup(name string) slog.Handler {
	return &LogHandler{inner: h.inner.WithGroup(name)}
}
