// Package trace is a minimal, dependency-free distributed tracing layer
// for the serving side of the repo: spans with IDs, parent links, and
// attributes, recorded into a fixed-size lock-free ring; W3C traceparent
// propagation over HTTP; and export as Chrome trace-event JSON that
// Perfetto (ui.perfetto.dev) and chrome://tracing load directly.
//
// It implements just enough of distributed tracing for the lvpd fleet —
// one trace covering coordinator dispatch, worker job lifecycle, and
// pipeline runs — and is not a general tracing library. Spans are owned
// by one goroutine until End, which publishes them into the recorder's
// ring with a single atomic store; recording never blocks and never
// takes a lock, so it is safe on request paths.
package trace

import (
	"context"
	"encoding/hex"
	"strings"
	"sync/atomic"
	"time"
)

// Attr is one span attribute (string key/value; values are rendered
// into the Chrome export's args).
type Attr struct {
	Key   string
	Value string
}

// String builds an Attr.
func String(key, value string) Attr { return Attr{Key: key, Value: value} }

// SpanContext identifies a position in a trace: the trace ID shared by
// every span of the trace and the ID of one span within it. The zero
// value is "no context" (Valid reports false).
type SpanContext struct {
	TraceID string // 32 lowercase hex digits
	SpanID  string // 16 lowercase hex digits
}

// Valid reports whether the context names a real trace position.
func (sc SpanContext) Valid() bool {
	return len(sc.TraceID) == 32 && len(sc.SpanID) == 16 &&
		sc.TraceID != strings.Repeat("0", 32) && sc.SpanID != strings.Repeat("0", 16)
}

// Traceparent renders the context as a W3C traceparent header value
// (version 00, sampled flag set).
func (sc SpanContext) Traceparent() string {
	return "00-" + sc.TraceID + "-" + sc.SpanID + "-01"
}

// ParseTraceparent parses a W3C traceparent header value. Only version
// 00 is accepted; the sampled flag is ignored (everything the fleet
// sees is recorded).
func ParseTraceparent(h string) (SpanContext, bool) {
	parts := strings.Split(strings.TrimSpace(h), "-")
	if len(parts) != 4 || parts[0] != "00" || len(parts[1]) != 32 || len(parts[2]) != 16 {
		return SpanContext{}, false
	}
	if !isHex(parts[1]) || !isHex(parts[2]) {
		return SpanContext{}, false
	}
	sc := SpanContext{TraceID: strings.ToLower(parts[1]), SpanID: strings.ToLower(parts[2])}
	if !sc.Valid() {
		return SpanContext{}, false
	}
	return sc, true
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') && (c < 'A' || c > 'F') {
			return false
		}
	}
	return true
}

// Span is one timed operation within a trace. A span is mutated only by
// the goroutine that started it, until End publishes it to the
// recorder; recorded spans are immutable.
type Span struct {
	Name     string
	TraceID  string
	SpanID   string
	ParentID string // empty for root spans
	Start    time.Time
	End      time.Time
	Attrs    []Attr

	rec   *Recorder
	ended atomic.Bool
}

// Context returns the span's position for propagation (traceparent
// injection, parenting child spans across API boundaries).
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return SpanContext{TraceID: s.TraceID, SpanID: s.SpanID}
}

// SetAttr appends an attribute. Must only be called by the span's owner
// before Finish.
func (s *Span) SetAttr(key, value string) {
	if s == nil || s.ended.Load() {
		return
	}
	s.Attrs = append(s.Attrs, Attr{Key: key, Value: value})
}

// Finish stamps the end time and publishes the span into its recorder's
// ring. Finishing twice is a no-op.
func (s *Span) Finish() {
	if s == nil || s.ended.Swap(true) {
		return
	}
	s.End = time.Now()
	if s.rec != nil {
		s.rec.record(s)
	}
}

// idState seeds span/trace ID generation: a process-unique counter
// whirled through SplitMix64. IDs are unique within a process and
// collision-resistant across the fleet (the counter is seeded from the
// process start time).
var idState atomic.Uint64

func init() {
	idState.Store(uint64(time.Now().UnixNano()))
}

func nextID() uint64 {
	for {
		z := idState.Add(0x9E3779B97F4A7C15)
		z ^= z >> 30
		z *= 0xBF58476D1CE4E5B9
		z ^= z >> 27
		z *= 0x94D049BB133111EB
		z ^= z >> 31
		if z != 0 {
			return z
		}
	}
}

func hex64(v uint64) string {
	var b [8]byte
	for i := 7; i >= 0; i-- {
		b[i] = byte(v)
		v >>= 8
	}
	return hex.EncodeToString(b[:])
}

// NewTraceID returns a fresh 128-bit trace ID as 32 hex digits.
func NewTraceID() string { return hex64(nextID()) + hex64(nextID()) }

// NewSpanID returns a fresh 64-bit span ID as 16 hex digits.
func NewSpanID() string { return hex64(nextID()) }

// ctxKey keys the span stored in a context.
type ctxKey struct{}

// remoteKey keys a remote parent SpanContext stored in a context (a
// propagated traceparent that has no local Span object).
type remoteKey struct{}

// ContextWithSpan returns ctx carrying span; children started from the
// returned context parent onto it.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	return context.WithValue(ctx, ctxKey{}, s)
}

// SpanFromContext returns the span carried by ctx, or nil.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}

// ContextWithRemote returns ctx carrying a remote parent context (e.g.
// a parsed traceparent, or a span context saved across a queue hop).
// Spans started from the returned context join sc's trace.
func ContextWithRemote(ctx context.Context, sc SpanContext) context.Context {
	if !sc.Valid() {
		return ctx
	}
	return context.WithValue(ctx, remoteKey{}, sc)
}

// ContextSpanContext returns the propagation context carried by ctx: the
// local span's if one is present, else any remote parent.
func ContextSpanContext(ctx context.Context) SpanContext {
	if s := SpanFromContext(ctx); s != nil {
		return s.Context()
	}
	sc, _ := ctx.Value(remoteKey{}).(SpanContext)
	return sc
}

// Recorder keeps the most recent finished spans in a fixed-size ring.
// Recording is lock-free (one atomic increment plus one atomic pointer
// store); readers snapshot the ring without blocking writers. The zero
// value is not usable; call NewRecorder.
type Recorder struct {
	service string
	slots   []atomic.Pointer[Span]
	next    atomic.Uint64
}

// DefaultCapacity is the span ring size NewRecorder uses for capacity
// <= 0.
const DefaultCapacity = 4096

// NewRecorder returns a recorder labelled with the service name that
// appears as the process name in Chrome exports.
func NewRecorder(service string, capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	if service == "" {
		service = "lvpd"
	}
	return &Recorder{service: service, slots: make([]atomic.Pointer[Span], capacity)}
}

// Service returns the recorder's process label.
func (r *Recorder) Service() string { return r.service }

// StartSpan starts a span named name, parented on the context's span
// (local or remote) when one is present, and returns the child context
// carrying it. Always pair with span.Finish().
func (r *Recorder) StartSpan(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	s := &Span{
		Name:   name,
		SpanID: NewSpanID(),
		Start:  time.Now(),
		Attrs:  attrs,
		rec:    r,
	}
	if parent := ContextSpanContext(ctx); parent.Valid() {
		s.TraceID = parent.TraceID
		s.ParentID = parent.SpanID
	} else {
		s.TraceID = NewTraceID()
	}
	return ContextWithSpan(ctx, s), s
}

// record publishes a finished span into the ring, overwriting the
// oldest entry once full.
func (r *Recorder) record(s *Span) {
	idx := r.next.Add(1) - 1
	r.slots[idx%uint64(len(r.slots))].Store(s)
}

// Spans snapshots every retained span, oldest first.
func (r *Recorder) Spans() []*Span {
	n := r.next.Load()
	cap64 := uint64(len(r.slots))
	start := uint64(0)
	if n > cap64 {
		start = n - cap64
	}
	out := make([]*Span, 0, cap64)
	for i := start; i < n; i++ {
		if s := r.slots[i%cap64].Load(); s != nil {
			out = append(out, s)
		}
	}
	return out
}

// TraceSpans returns the retained spans of one trace, oldest first.
func (r *Recorder) TraceSpans(traceID string) []*Span {
	var out []*Span
	for _, s := range r.Spans() {
		if s.TraceID == traceID {
			out = append(out, s)
		}
	}
	return out
}
