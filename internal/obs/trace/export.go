package trace

import (
	"encoding/json"
	"hash/fnv"
	"io"
	"net/http"
	"sort"
	"time"
)

// Event is one Chrome trace-event JSON object. The exporter emits "X"
// (complete) events for spans and "M" (metadata) events naming the
// process, which is the minimal vocabulary Perfetto needs to render a
// trace with named tracks.
type Event struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`            // microseconds
	Dur  int64          `json:"dur,omitempty"` // microseconds, X events
	Pid  uint32         `json:"pid"`
	Tid  uint64         `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the JSON-object flavour of the Chrome trace format
// (the array flavour lacks room for metadata).
type chromeTrace struct {
	TraceEvents []Event `json:"traceEvents"`
}

// servicePid derives a stable per-service pid so spans from different
// processes land on different named tracks when merged into one export.
func servicePid(service string) uint32 {
	h := fnv.New32a()
	io.WriteString(h, service)
	p := h.Sum32() & 0x7FFFFFFF
	if p == 0 {
		p = 1
	}
	return p
}

// spanTid derives a per-span tid. Chrome "X" events on the same
// pid/tid row must not overlap in time; giving each span its own row
// sidesteps that entirely and still renders a readable flame view in
// Perfetto (rows are grouped by pid).
func spanTid(spanID string) uint64 {
	h := fnv.New64a()
	io.WriteString(h, spanID)
	return h.Sum64()
}

// ChromeEvents converts spans recorded under service into trace
// events, including the process_name metadata event.
func ChromeEvents(service string, spans []*Span) []Event {
	if len(spans) == 0 {
		return nil
	}
	pid := servicePid(service)
	events := make([]Event, 0, len(spans)+1)
	events = append(events, Event{
		Name: "process_name",
		Ph:   "M",
		Pid:  pid,
		Args: map[string]any{"name": service},
	})
	for _, s := range spans {
		args := map[string]any{
			"trace_id": s.TraceID,
			"span_id":  s.SpanID,
		}
		if s.ParentID != "" {
			args["parent_id"] = s.ParentID
		}
		for _, a := range s.Attrs {
			args[a.Key] = a.Value
		}
		dur := s.End.Sub(s.Start).Microseconds()
		if dur < 1 {
			dur = 1
		}
		events = append(events, Event{
			Name: s.Name,
			Cat:  service,
			Ph:   "X",
			Ts:   s.Start.UnixMicro(),
			Dur:  dur,
			Pid:  pid,
			Tid:  spanTid(s.SpanID),
			Args: args,
		})
	}
	return events
}

// WriteChrome writes events as a Chrome trace-event JSON object.
func WriteChrome(w io.Writer, events []Event) error {
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].Ph == "M" != (events[j].Ph == "M") {
			return events[i].Ph == "M"
		}
		return events[i].Ts < events[j].Ts
	})
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(chromeTrace{TraceEvents: events})
}

// TraceSummary is one entry in the recent-traces index.
type TraceSummary struct {
	TraceID string    `json:"trace_id"`
	Root    string    `json:"root"` // name of the earliest span (the root when retained)
	Spans   int       `json:"spans"`
	Start   time.Time `json:"start"`
	DurMS   float64   `json:"dur_ms"` // earliest start to latest end among retained spans
}

// Summaries indexes the retained spans by trace, most recent first.
func (r *Recorder) Summaries() []TraceSummary {
	type agg struct {
		root      string
		rootIsTop bool
		spans     int
		start     time.Time
		end       time.Time
	}
	byID := make(map[string]*agg)
	var order []string
	for _, s := range r.Spans() {
		a := byID[s.TraceID]
		if a == nil {
			a = &agg{start: s.Start, end: s.End}
			byID[s.TraceID] = a
			order = append(order, s.TraceID)
		}
		a.spans++
		// Prefer a true root span's name; otherwise keep the earliest.
		if s.ParentID == "" && !a.rootIsTop {
			a.root, a.rootIsTop = s.Name, true
		} else if a.root == "" || (!a.rootIsTop && s.Start.Before(a.start)) {
			a.root = s.Name
		}
		if s.Start.Before(a.start) {
			a.start = s.Start
		}
		if s.End.After(a.end) {
			a.end = s.End
		}
	}
	out := make([]TraceSummary, 0, len(order))
	for i := len(order) - 1; i >= 0; i-- {
		id := order[i]
		a := byID[id]
		out = append(out, TraceSummary{
			TraceID: id,
			Root:    a.root,
			Spans:   a.spans,
			Start:   a.start,
			DurMS:   float64(a.end.Sub(a.start).Microseconds()) / 1e3,
		})
	}
	return out
}

// IndexHandler serves the recent-traces index as JSON.
func (r *Recorder) IndexHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{"traces": r.Summaries()})
	})
}

// ExportHandler serves one trace as Chrome trace-event JSON, looking
// the trace ID up in the request's {id} path value.
func (r *Recorder) ExportHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		id := req.PathValue("id")
		spans := r.TraceSpans(id)
		if len(spans) == 0 {
			http.Error(w, `{"error":"no spans for trace"}`, http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		WriteChrome(w, ChromeEvents(r.service, spans))
	})
}
