package trace

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestTraceparentRoundTrip(t *testing.T) {
	sc := SpanContext{TraceID: NewTraceID(), SpanID: NewSpanID()}
	if !sc.Valid() {
		t.Fatalf("generated context invalid: %+v", sc)
	}
	hdr := sc.Traceparent()
	got, ok := ParseTraceparent(hdr)
	if !ok || got != sc {
		t.Fatalf("round trip %q: got %+v ok=%v, want %+v", hdr, got, ok, sc)
	}
}

func TestParseTraceparentRejects(t *testing.T) {
	bad := []string{
		"",
		"00-abc-def-01",
		"01-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01", // wrong version
		"00-0af7651916cd43dd8448eb211c80319x-b7ad6b7169203331-01", // non-hex
		"00-00000000000000000000000000000000-b7ad6b7169203331-01", // zero trace id
		"00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01", // zero span id
	}
	for _, h := range bad {
		if _, ok := ParseTraceparent(h); ok {
			t.Errorf("ParseTraceparent(%q) accepted, want reject", h)
		}
	}
	// Uppercase hex is tolerated and canonicalised.
	sc, ok := ParseTraceparent("00-0AF7651916CD43DD8448EB211C80319C-B7AD6B7169203331-01")
	if !ok || sc.TraceID != "0af7651916cd43dd8448eb211c80319c" {
		t.Fatalf("uppercase traceparent: got %+v ok=%v", sc, ok)
	}
}

func TestIDUniqueness(t *testing.T) {
	seen := make(map[string]bool, 10000)
	for i := 0; i < 10000; i++ {
		id := NewSpanID()
		if len(id) != 16 {
			t.Fatalf("span id %q has length %d", id, len(id))
		}
		if seen[id] {
			t.Fatalf("duplicate span id %q after %d draws", id, i)
		}
		seen[id] = true
	}
}

func TestSpanParenting(t *testing.T) {
	rec := NewRecorder("test", 16)
	ctx, root := rec.StartSpan(context.Background(), "root")
	ctx2, child := rec.StartSpan(ctx, "child")
	_, grand := rec.StartSpan(ctx2, "grandchild")

	if root.ParentID != "" {
		t.Errorf("root has parent %q", root.ParentID)
	}
	if child.TraceID != root.TraceID || child.ParentID != root.SpanID {
		t.Errorf("child not parented on root: %+v vs %+v", child, root)
	}
	if grand.TraceID != root.TraceID || grand.ParentID != child.SpanID {
		t.Errorf("grandchild not parented on child")
	}

	grand.Finish()
	child.Finish()
	root.Finish()

	spans := rec.TraceSpans(root.TraceID)
	if len(spans) != 3 {
		t.Fatalf("recorded %d spans, want 3", len(spans))
	}
}

func TestRemoteParenting(t *testing.T) {
	rec := NewRecorder("test", 16)
	remote := SpanContext{TraceID: NewTraceID(), SpanID: NewSpanID()}
	ctx := ContextWithRemote(context.Background(), remote)
	_, s := rec.StartSpan(ctx, "local")
	if s.TraceID != remote.TraceID || s.ParentID != remote.SpanID {
		t.Fatalf("span %+v not parented on remote %+v", s, remote)
	}
}

func TestRecorderRingOverwrite(t *testing.T) {
	rec := NewRecorder("test", 4)
	for i := 0; i < 10; i++ {
		_, s := rec.StartSpan(context.Background(), fmt.Sprintf("s%d", i))
		s.Finish()
	}
	spans := rec.Spans()
	if len(spans) != 4 {
		t.Fatalf("ring retained %d spans, want 4", len(spans))
	}
	for i, s := range spans {
		if want := fmt.Sprintf("s%d", 6+i); s.Name != want {
			t.Errorf("slot %d = %q, want %q", i, s.Name, want)
		}
	}
}

func TestDoubleFinishRecordsOnce(t *testing.T) {
	rec := NewRecorder("test", 8)
	_, s := rec.StartSpan(context.Background(), "once")
	s.Finish()
	s.Finish()
	if got := len(rec.Spans()); got != 1 {
		t.Fatalf("double finish recorded %d spans, want 1", got)
	}
}

func TestConcurrentRecording(t *testing.T) {
	rec := NewRecorder("test", 64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				_, s := rec.StartSpan(context.Background(), "work")
				s.SetAttr("i", "x")
				s.Finish()
				rec.Spans() // concurrent reads
			}
		}()
	}
	wg.Wait()
	if got := len(rec.Spans()); got != 64 {
		t.Fatalf("full ring holds %d spans, want 64", got)
	}
}

func TestChromeExport(t *testing.T) {
	rec := NewRecorder("lvpd-test", 16)
	ctx, root := rec.StartSpan(context.Background(), "sweep", String("points", "3"))
	_, child := rec.StartSpan(ctx, "dispatch")
	child.Finish()
	root.Finish()

	var buf bytes.Buffer
	if err := WriteChrome(&buf, ChromeEvents(rec.Service(), rec.TraceSpans(root.TraceID))); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	var out struct {
		TraceEvents []Event `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, buf.String())
	}
	var meta, complete int
	for _, ev := range out.TraceEvents {
		switch ev.Ph {
		case "M":
			meta++
			if ev.Args["name"] != "lvpd-test" {
				t.Errorf("process_name = %v", ev.Args["name"])
			}
		case "X":
			complete++
			if ev.Dur < 1 {
				t.Errorf("event %q has dur %d < 1", ev.Name, ev.Dur)
			}
			if ev.Args["trace_id"] != root.TraceID {
				t.Errorf("event %q trace_id = %v", ev.Name, ev.Args["trace_id"])
			}
		}
	}
	if meta != 1 || complete != 2 {
		t.Fatalf("export has %d metadata + %d complete events, want 1 + 2", meta, complete)
	}
}

func TestExportHandlers(t *testing.T) {
	rec := NewRecorder("test", 16)
	_, s := rec.StartSpan(context.Background(), "job")
	s.Finish()

	mux := http.NewServeMux()
	mux.Handle("GET /debug/traces", rec.IndexHandler())
	mux.Handle("GET /debug/traces/{id}", rec.ExportHandler())
	ts := httptest.NewServer(mux)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	var idx struct {
		Traces []TraceSummary `json:"traces"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&idx); err != nil {
		t.Fatalf("index decode: %v", err)
	}
	resp.Body.Close()
	if len(idx.Traces) != 1 || idx.Traces[0].TraceID != s.TraceID {
		t.Fatalf("index = %+v, want 1 entry for %s", idx.Traces, s.TraceID)
	}

	resp, err = http.Get(ts.URL + "/debug/traces/" + s.TraceID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("export status %d", resp.StatusCode)
	}

	resp2, err := http.Get(ts.URL + "/debug/traces/deadbeef")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown trace status %d, want 404", resp2.StatusCode)
	}
}

func TestMiddleware(t *testing.T) {
	rec := NewRecorder("test", 16)
	var sawCtx SpanContext
	h := rec.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sawCtx = ContextSpanContext(r.Context())
	}))
	ts := httptest.NewServer(h)
	defer ts.Close()

	// GET passes through untraced.
	resp, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.Header.Get(TraceIDHeader) != "" {
		t.Errorf("GET response carries %s", TraceIDHeader)
	}
	if len(rec.Spans()) != 0 {
		t.Fatalf("GET recorded %d spans", len(rec.Spans()))
	}

	// POST with a traceparent joins the remote trace.
	parent := SpanContext{TraceID: NewTraceID(), SpanID: NewSpanID()}
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs", strings.NewReader("{}"))
	req.Header.Set(TraceparentHeader, parent.Traceparent())
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(TraceIDHeader); got != parent.TraceID {
		t.Errorf("%s = %q, want parent trace %q", TraceIDHeader, got, parent.TraceID)
	}
	if sawCtx.TraceID != parent.TraceID {
		t.Errorf("handler ctx trace %q, want %q", sawCtx.TraceID, parent.TraceID)
	}
	spans := rec.TraceSpans(parent.TraceID)
	if len(spans) != 1 || spans[0].ParentID != parent.SpanID {
		t.Fatalf("middleware spans = %+v, want 1 parented on %s", spans, parent.SpanID)
	}
}

func TestInject(t *testing.T) {
	rec := NewRecorder("test", 16)
	ctx, s := rec.StartSpan(context.Background(), "client")
	req, _ := http.NewRequestWithContext(ctx, http.MethodPost, "http://example/v1/jobs", nil)
	Inject(req)
	got, ok := ParseTraceparent(req.Header.Get(TraceparentHeader))
	if !ok || got != s.Context() {
		t.Fatalf("injected %q, want %+v", req.Header.Get(TraceparentHeader), s.Context())
	}

	// No trace in context: header stays unset.
	req2, _ := http.NewRequest(http.MethodPost, "http://example/v1/jobs", nil)
	Inject(req2)
	if req2.Header.Get(TraceparentHeader) != "" {
		t.Fatal("Inject set traceparent without a trace in context")
	}
}

func TestLogHandler(t *testing.T) {
	var buf bytes.Buffer
	log := slog.New(NewLogHandler(slog.NewJSONHandler(&buf, nil)))

	rec := NewRecorder("test", 16)
	ctx, s := rec.StartSpan(context.Background(), "job")
	log.InfoContext(ctx, "inside span")
	log.Info("outside span")
	s.Finish()

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d log lines", len(lines))
	}
	var first, second map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(lines[1]), &second); err != nil {
		t.Fatal(err)
	}
	if first["trace_id"] != s.TraceID || first["span_id"] != s.SpanID {
		t.Errorf("traced line missing ids: %v", first)
	}
	if _, ok := second["trace_id"]; ok {
		t.Errorf("untraced line has trace_id: %v", second)
	}
}
