package trace

import "net/http"

// TraceparentHeader is the W3C propagation header the fleet uses.
const TraceparentHeader = "traceparent"

// TraceIDHeader is the response header the middleware sets so clients
// learn the trace ID assigned to their request.
const TraceIDHeader = "X-Trace-Id"

// Middleware wraps next so that mutating requests (anything but GET and
// HEAD) run inside a span recorded in r, parented on an incoming
// traceparent header when present. Read-only requests pass through
// untouched: health probes and status polls arrive at a rate that would
// otherwise wash real work out of the span ring.
func (r *Recorder) Middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method == http.MethodGet || req.Method == http.MethodHead {
			next.ServeHTTP(w, req)
			return
		}
		ctx := req.Context()
		if sc, ok := ParseTraceparent(req.Header.Get(TraceparentHeader)); ok {
			ctx = ContextWithRemote(ctx, sc)
		}
		ctx, span := r.StartSpan(ctx, req.Method+" "+req.URL.Path,
			String("http.method", req.Method),
			String("http.path", req.URL.Path))
		defer span.Finish()
		w.Header().Set(TraceIDHeader, span.TraceID)
		next.ServeHTTP(w, req.WithContext(ctx))
	})
}

// Inject copies the context's span position into req's traceparent
// header; a no-op when ctx carries no trace.
func Inject(req *http.Request) {
	if sc := ContextSpanContext(req.Context()); sc.Valid() {
		req.Header.Set(TraceparentHeader, sc.Traceparent())
	}
}
