// Package eves reimplements the EVES predictor — winner of the first
// Championship Value Prediction (CVP-1) — as the paper's comparison
// baseline (Section V-G). EVES combines:
//
//   - E-VTAGE: a tagged-geometric value predictor (an enhanced VTAGE)
//     with an untagged PC-indexed base table, and
//   - E-Stride: a stride *value* predictor that accounts for the number
//     of in-flight occurrences of the load.
//
// Both components predict values directly (no data cache probing), so
// EVES cannot exploit address-predictable loads whose values change —
// the structural gap the composite's SAP/CAP components fill.
package eves

import "repro/internal/core"

// Config sizes the predictor. Budgets follow the paper's comparison
// points: 8KB, 32KB, and effectively infinite.
type Config struct {
	BudgetKB int // <= 0 means "infinite" (limit-study tables)
	Seed     uint64
}

const (
	// Storage accounting (bits/entry), following the CVP-1 write-up's
	// ballpark: E-VTAGE entries carry a 64-bit value, tag, confidence
	// and usefulness; E-Stride entries carry last value, stride and
	// confidence.
	vtageTaggedBits = 64 + 13 + 3 + 1
	vtageBaseBits   = 64 + 3
	estrideBits     = 64 + 20 + 3 + 13

	numTagged = 6
)

// historyLens are E-VTAGE's geometric history lengths.
var historyLens = [numTagged]uint{2, 5, 11, 17, 27, 40}

type vtageEntry struct {
	valid  bool
	tag    uint16
	value  uint64
	conf   uint8
	useful uint8
}

type baseEntry struct {
	value uint64
	conf  uint8
	valid bool
}

type strideEntry struct {
	valid       bool
	tag         uint16
	lastValue   uint64
	stride      int64
	strideValid bool
	conf        uint8
}

// EVES is the full predictor. It implements the pipeline's Engine
// interface (Probe/Train/Instret) so it can be plugged into the core
// model directly.
type EVES struct {
	cfg Config

	base     []baseEntry
	baseMask uint64
	tagged   [numTagged][]vtageEntry
	tagMask  uint64

	stride     []strideEntry
	strideMask uint64

	// Per-load record ring: Probe hands the pipeline a handle into it,
	// Train dereferences the handle (see cpu.Engine's record contract).
	recs    []lookup
	recNext uint64

	rng *core.XorShift64
}

// recRingSize mirrors cpu.RecRingSize (not imported, to keep this
// package's dependency on the pipeline one-directional): records must
// outlive the pipeline's training backlog, bounded by the ROB.
const recRingSize = 4096

// vtage confidence threshold (saturating 3-bit counter, probabilistic
// increments giving a high effective confidence).
const vtageConfMax = 7

// strideConfMax is E-Stride's confidence ceiling.
const strideConfMax = 7

// New builds an EVES predictor with the given budget.
func New(cfg Config) *EVES {
	e := &EVES{cfg: cfg, rng: core.NewXorShift64(core.SplitMix64(cfg.Seed ^ 0xE7E5))}
	var baseEntries, taggedEntries, strideEntries int
	if cfg.BudgetKB <= 0 {
		baseEntries, taggedEntries, strideEntries = 1<<20, 1<<18, 1<<20
	} else {
		bits := cfg.BudgetKB * 1024 * 8
		// Budget split: half to the tagged tables, a quarter to the
		// base table, a quarter to E-Stride.
		taggedEntries = pow2Floor(bits / 2 / numTagged / vtageTaggedBits)
		baseEntries = pow2Floor(bits / 4 / vtageBaseBits)
		strideEntries = pow2Floor(bits / 4 / estrideBits)
	}
	e.base = make([]baseEntry, baseEntries)
	e.baseMask = uint64(baseEntries - 1)
	for i := range e.tagged {
		e.tagged[i] = make([]vtageEntry, taggedEntries)
	}
	e.tagMask = uint64(taggedEntries - 1)
	e.stride = make([]strideEntry, strideEntries)
	e.strideMask = uint64(strideEntries - 1)
	e.recs = make([]lookup, recRingSize)
	return e
}

func pow2Floor(n int) int {
	if n < 1 {
		return 1
	}
	p := 1
	for p*2 <= n {
		p *= 2
	}
	return p
}

// StorageKB reports the configured hardware budget.
func (e *EVES) StorageKB() float64 {
	bits := len(e.base)*vtageBaseBits + len(e.stride)*estrideBits
	for i := range e.tagged {
		bits += len(e.tagged[i]) * vtageTaggedBits
	}
	return float64(bits) / 8 / 1024
}

func mix(words ...uint64) uint64 {
	h := uint64(0x9E3779B97F4A7C15)
	for _, w := range words {
		h ^= w
		h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9
		h = (h ^ (h >> 27)) * 0x94D049BB133111EB
		h ^= h >> 31
	}
	return h
}

func (e *EVES) taggedIndex(i int, pc, hist uint64) (int, uint16) {
	sample := hist & ((uint64(1) << historyLens[i]) - 1)
	h := mix(pc>>2, sample, uint64(i))
	return int(h & e.tagMask), uint16((h >> 40) & 0x1FFF)
}

// lookup is the per-load record carried from Probe to Train.
type lookup struct {
	provider    int // tagged table index, -1 = base, -2 = none
	providerIdx int
	providerTag uint16
	basePred    bool
	stridePred  bool
	strideVal   uint64
	vtageVal    uint64
	vtageConf   bool
	used        bool
	usedVal     uint64
}

// Probe implements the Engine Probe hook.
func (e *EVES) Probe(p core.Probe) (uint64, core.Prediction, bool) {
	h := e.recNext
	e.recNext++
	lk := &e.recs[h&(recRingSize-1)]
	*lk = lookup{provider: -2}

	// E-VTAGE: longest-history tagged hit, else base table.
	for i := numTagged - 1; i >= 0; i-- {
		idx, tag := e.taggedIndex(i, p.PC, p.BranchHist)
		ent := &e.tagged[i][idx]
		if ent.valid && ent.tag == tag {
			lk.provider = i
			lk.providerIdx = idx
			lk.providerTag = tag
			lk.vtageVal = ent.value
			lk.vtageConf = ent.conf >= vtageConfMax
			break
		}
	}
	if lk.provider == -2 {
		b := &e.base[(p.PC>>2)&e.baseMask]
		if b.valid {
			lk.provider = -1
			lk.vtageVal = b.value
			lk.vtageConf = b.conf >= vtageConfMax
		}
	}

	// E-Stride.
	sIdx := (p.PC >> 2) & e.strideMask
	sTag := uint16(mix(p.PC>>2) & 0x1FFF)
	s := &e.stride[sIdx]
	if s.valid && s.tag == sTag && s.strideValid && s.conf >= strideConfMax {
		lk.stridePred = true
		lk.strideVal = s.lastValue + uint64(int64(p.Inflight+1)*s.stride)
	}

	// Selection: E-VTAGE first (it subsumes last-value behaviour),
	// E-Stride for strided values.
	switch {
	case lk.vtageConf:
		lk.used = true
		lk.usedVal = lk.vtageVal
	case lk.stridePred:
		lk.used = true
		lk.usedVal = lk.strideVal
	}
	if !lk.used {
		return h, core.Prediction{}, false
	}
	return h, core.Prediction{
		Kind:   core.KindValue,
		Source: core.CompLVP, // value-kind; component tag unused by the pipeline
		Value:  lk.usedVal,
	}, true
}

// Train implements the Engine Train hook.
func (e *EVES) Train(o core.Outcome, rec uint64, _ core.AddrResolver) {
	e.trainVTAGE(o, &e.recs[rec&(recRingSize-1)])
	e.trainStride(o)
}

func (e *EVES) trainVTAGE(o core.Outcome, lk *lookup) {
	// Update the provider (or base) entry.
	mispredictedConf := false
	if lk != nil && lk.provider >= 0 {
		ent := &e.tagged[lk.provider][lk.providerIdx]
		if ent.valid && ent.tag == lk.providerTag {
			if ent.value == o.Value {
				if ent.conf < vtageConfMax && e.rng.Chance(confProb(ent.conf)) {
					ent.conf++
				}
				ent.useful = 1
			} else {
				mispredictedConf = lk.vtageConf
				if ent.conf > 0 {
					ent.conf = 0
				} else {
					ent.value = o.Value
					ent.useful = 0
				}
			}
		}
	} else {
		b := &e.base[(o.PC>>2)&e.baseMask]
		if !b.valid {
			*b = baseEntry{value: o.Value, valid: true}
		} else if b.value == o.Value {
			if b.conf < vtageConfMax && e.rng.Chance(confProb(b.conf)) {
				b.conf++
			}
		} else {
			mispredictedConf = lk != nil && lk.provider == -1 && lk.vtageConf
			b.value = o.Value
			b.conf = 0
		}
	}

	// Allocate in a longer-history table when the prediction was wrong
	// (or there was no provider at all).
	wrong := lk == nil || lk.provider == -2 ||
		(lk.provider >= -1 && lk.vtageVal != o.Value)
	if !wrong && !mispredictedConf {
		return
	}
	start := 0
	if lk != nil && lk.provider >= 0 {
		start = lk.provider + 1
	}
	for i := start; i < numTagged; i++ {
		idx, tag := e.taggedIndex(i, o.PC, o.BranchHist)
		ent := &e.tagged[i][idx]
		if !ent.valid || ent.useful == 0 {
			*ent = vtageEntry{valid: true, tag: tag, value: o.Value}
			break
		}
		if e.rng.Chance(4) {
			ent.useful = 0
		}
	}
}

func (e *EVES) trainStride(o core.Outcome) {
	sIdx := (o.PC >> 2) & e.strideMask
	sTag := uint16(mix(o.PC>>2) & 0x1FFF)
	s := &e.stride[sIdx]
	if !s.valid || s.tag != sTag {
		*s = strideEntry{valid: true, tag: sTag, lastValue: o.Value}
		return
	}
	delta := int64(o.Value) - int64(s.lastValue)
	const strideLimit = 1 << 19
	fits := delta > -strideLimit && delta < strideLimit
	switch {
	case fits && s.strideValid && delta == s.stride:
		if s.conf < strideConfMax && e.rng.Chance(confProb(s.conf)) {
			s.conf++
		}
	case fits:
		s.stride = delta
		s.strideValid = true
		s.conf = 0
	default:
		s.strideValid = false
		s.conf = 0
	}
	s.lastValue = o.Value
}

// confProb returns the FPC increment denominator for confidence level c
// (an exponential ramp toward high effective confidence, as EVES uses
// probabilistic confidence updates).
func confProb(c uint8) uint32 {
	probs := [...]uint32{1, 1, 2, 4, 8, 16, 32}
	if int(c) < len(probs) {
		return probs[c]
	}
	return 32
}

// Instret implements the Engine epoch hook (EVES has no epochs).
func (e *EVES) Instret(uint64) {}

// ResetState clears all predictor state.
func (e *EVES) ResetState() {
	clear(e.base)
	for i := range e.tagged {
		clear(e.tagged[i])
	}
	clear(e.stride)
	e.rng.Reset()
}
