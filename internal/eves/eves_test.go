package eves

import (
	"testing"

	"repro/internal/core"
)

func trainN(e *EVES, o core.Outcome, n int) {
	for i := 0; i < n; i++ {
		rec, _, _ := e.Probe(core.Probe{PC: o.PC, BranchHist: o.BranchHist})
		e.Train(o, rec, nil)
	}
}

func TestEVESLearnsConstantValue(t *testing.T) {
	e := New(Config{BudgetKB: 32, Seed: 1})
	o := core.Outcome{PC: 0x40, Value: 0xABCD}
	trainN(e, o, 400)
	_, pred, ok := e.Probe(core.Probe{PC: o.PC})
	if !ok {
		t.Fatal("EVES not confident after 400 stable observations")
	}
	if pred.Kind != core.KindValue || pred.Value != 0xABCD {
		t.Errorf("prediction = %+v", pred)
	}
}

func TestEVESLearnsStridedValue(t *testing.T) {
	e := New(Config{BudgetKB: 32, Seed: 1})
	// A strided value sequence (e.g. a loop induction variable spilled
	// and reloaded): E-Stride must capture it.
	for i := 0; i < 400; i++ {
		o := core.Outcome{PC: 0x80, Value: uint64(1000 + i*24)}
		rec, _, _ := e.Probe(core.Probe{PC: o.PC})
		e.Train(o, rec, nil)
	}
	_, pred, ok := e.Probe(core.Probe{PC: 0x80})
	if !ok {
		t.Fatal("EVES not confident on strided values")
	}
	want := uint64(1000 + 400*24)
	if pred.Value != want {
		t.Errorf("strided prediction = %d, want %d", pred.Value, want)
	}
}

func TestEVESStrideInflightAdjustment(t *testing.T) {
	e := New(Config{BudgetKB: 32, Seed: 1})
	for i := 0; i < 400; i++ {
		o := core.Outcome{PC: 0x80, Value: uint64(i * 8)}
		rec, _, _ := e.Probe(core.Probe{PC: o.PC})
		e.Train(o, rec, nil)
	}
	_, p0, ok0 := e.Probe(core.Probe{PC: 0x80, Inflight: 0})
	_, p3, ok3 := e.Probe(core.Probe{PC: 0x80, Inflight: 3})
	if !ok0 || !ok3 {
		t.Fatal("not confident")
	}
	if p3.Value != p0.Value+3*8 {
		t.Errorf("inflight adjustment: %d vs %d", p0.Value, p3.Value)
	}
}

func TestEVESContextValues(t *testing.T) {
	e := New(Config{BudgetKB: 32, Seed: 1})
	histA, histB := uint64(0b1101), uint64(0b0010)
	for i := 0; i < 400; i++ {
		for _, c := range []struct {
			h uint64
			v uint64
		}{{histA, 111}, {histB, 222}} {
			o := core.Outcome{PC: 0x40, BranchHist: c.h, Value: c.v}
			rec, _, _ := e.Probe(core.Probe{PC: o.PC, BranchHist: c.h})
			e.Train(o, rec, nil)
		}
	}
	_, pa, okA := e.Probe(core.Probe{PC: 0x40, BranchHist: histA})
	_, pb, okB := e.Probe(core.Probe{PC: 0x40, BranchHist: histB})
	if !okA || pa.Value != 111 {
		t.Errorf("history A: ok=%v v=%d", okA, pa.Value)
	}
	if !okB || pb.Value != 222 {
		t.Errorf("history B: ok=%v v=%d", okB, pb.Value)
	}
}

func TestEVESNeverConfidentOnNoise(t *testing.T) {
	e := New(Config{BudgetKB: 32, Seed: 1})
	rng := core.NewXorShift64(9)
	delivered := 0
	for i := 0; i < 5000; i++ {
		o := core.Outcome{PC: 0x40, Value: rng.Next()}
		rec, _, ok := e.Probe(core.Probe{PC: o.PC})
		if ok {
			delivered++
		}
		e.Train(o, rec, nil)
	}
	if delivered > 50 {
		t.Errorf("EVES delivered %d predictions on random values", delivered)
	}
}

func TestEVESBudgets(t *testing.T) {
	small := New(Config{BudgetKB: 8, Seed: 1})
	big := New(Config{BudgetKB: 32, Seed: 1})
	if small.StorageKB() > 8.01 {
		t.Errorf("8KB config uses %.2fKB", small.StorageKB())
	}
	if big.StorageKB() > 32.01 {
		t.Errorf("32KB config uses %.2fKB", big.StorageKB())
	}
	if big.StorageKB() <= small.StorageKB() {
		t.Error("32KB config not larger than 8KB config")
	}
	inf := New(Config{BudgetKB: 0, Seed: 1})
	if inf.StorageKB() < 1000 {
		t.Error("infinite config suspiciously small")
	}
}

func TestEVESCapacityPressure(t *testing.T) {
	// The small budget must lose coverage relative to the big one when
	// tracking many static loads.
	cover := func(budget int) int {
		e := New(Config{BudgetKB: budget, Seed: 1})
		delivered := 0
		for round := 0; round < 150; round++ {
			for pc := uint64(0); pc < 600; pc++ {
				o := core.Outcome{PC: 0x1000 + pc*4, Value: pc * 3}
				rec, _, ok := e.Probe(core.Probe{PC: o.PC})
				if ok {
					delivered++
				}
				e.Train(o, rec, nil)
			}
		}
		return delivered
	}
	small, big := cover(8), cover(32)
	if small >= big {
		t.Errorf("8KB coverage %d >= 32KB coverage %d", small, big)
	}
}

func TestEVESValueChangeRetrains(t *testing.T) {
	e := New(Config{BudgetKB: 32, Seed: 1})
	o := core.Outcome{PC: 0x40, Value: 1}
	trainN(e, o, 400)
	o.Value = 2
	trainN(e, o, 400)
	_, pred, ok := e.Probe(core.Probe{PC: o.PC})
	if !ok || pred.Value != 2 {
		t.Errorf("after change: ok=%v v=%d, want 2", ok, pred.Value)
	}
}

func TestEVESResetState(t *testing.T) {
	e := New(Config{BudgetKB: 32, Seed: 1})
	o := core.Outcome{PC: 0x40, Value: 1}
	trainN(e, o, 400)
	e.ResetState()
	if _, _, ok := e.Probe(core.Probe{PC: o.PC}); ok {
		t.Error("confidence survived reset")
	}
}

func TestEVESDeterminism(t *testing.T) {
	run := func() (uint64, bool) {
		e := New(Config{BudgetKB: 8, Seed: 5})
		o := core.Outcome{PC: 0x40, Value: 7}
		trainN(e, o, 100)
		_, p, ok := e.Probe(core.Probe{PC: o.PC})
		return p.Value, ok
	}
	v1, ok1 := run()
	v2, ok2 := run()
	if v1 != v2 || ok1 != ok2 {
		t.Error("same-seed EVES runs diverged")
	}
}
