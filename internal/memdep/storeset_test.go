package memdep

import "testing"

func TestNoDependenceWithoutTraining(t *testing.T) {
	p := New(DefaultConfig())
	p.StoreFetched(0x100, 1)
	if _, ok := p.LoadDependence(0x200); ok {
		t.Error("untrained load predicted dependent")
	}
}

func TestViolationCreatesDependence(t *testing.T) {
	p := New(DefaultConfig())
	loadPC, storePC := uint64(0x200), uint64(0x100)
	p.Violation(loadPC, storePC)
	p.StoreFetched(storePC, 42)
	seq, ok := p.LoadDependence(loadPC)
	if !ok || seq != 42 {
		t.Errorf("dependence = (%d, %v), want (42, true)", seq, ok)
	}
}

func TestStoreExecutedClearsDependence(t *testing.T) {
	p := New(DefaultConfig())
	p.Violation(0x200, 0x100)
	p.StoreFetched(0x100, 42)
	p.StoreExecuted(0x100, 42)
	if _, ok := p.LoadDependence(0x200); ok {
		t.Error("dependence survived store execution")
	}
}

func TestStoreExecutedOnlyClearsOwnSeq(t *testing.T) {
	p := New(DefaultConfig())
	p.Violation(0x200, 0x100)
	p.StoreFetched(0x100, 42)
	p.StoreFetched(0x100, 50) // newer instance
	p.StoreExecuted(0x100, 42)
	seq, ok := p.LoadDependence(0x200)
	if !ok || seq != 50 {
		t.Errorf("dependence = (%d, %v), want newest store (50, true)", seq, ok)
	}
}

func TestSetMergeRule(t *testing.T) {
	p := New(DefaultConfig())
	p.Violation(0x200, 0x100) // set 1
	p.Violation(0x300, 0x110) // set 2
	// Now a violation between members of both sets merges them (lower
	// ID wins).
	p.Violation(0x200, 0x110)
	// A store from the old set 2 must now satisfy loads of set 1.
	p.StoreFetched(0x110, 7)
	if seq, ok := p.LoadDependence(0x200); !ok || seq != 7 {
		t.Errorf("merged-set dependence = (%d, %v)", seq, ok)
	}
}

func TestViolationWithExistingLoadSet(t *testing.T) {
	p := New(DefaultConfig())
	p.Violation(0x200, 0x100)
	p.Violation(0x200, 0x140) // load has a set; store joins it
	p.StoreFetched(0x140, 9)
	if seq, ok := p.LoadDependence(0x200); !ok || seq != 9 {
		t.Errorf("dependence = (%d, %v)", seq, ok)
	}
}

func TestStats(t *testing.T) {
	p := New(DefaultConfig())
	p.Violation(0x200, 0x100)
	p.StoreFetched(0x100, 1)
	p.LoadDependence(0x200)
	st := p.StatsSnapshot()
	if st.Violations != 1 || st.Dependences != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestReset(t *testing.T) {
	p := New(DefaultConfig())
	p.Violation(0x200, 0x100)
	p.StoreFetched(0x100, 1)
	p.Reset()
	if _, ok := p.LoadDependence(0x200); ok {
		t.Error("dependence survived reset")
	}
	if p.StatsSnapshot() != (Stats{}) {
		t.Error("stats survived reset")
	}
}

func TestConfigValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(Config{SSITEntries: 100})
}

func TestMergeTransitivityProperty(t *testing.T) {
	// After chaining violations a-b, b-c, c-d ... all PCs share one set:
	// a store from any member satisfies a load from any other.
	p := New(DefaultConfig())
	pcs := []uint64{0x100, 0x200, 0x300, 0x400, 0x500}
	for i := 0; i+1 < len(pcs); i++ {
		p.Violation(pcs[i], pcs[i+1])
	}
	for _, storePC := range pcs {
		p.StoreFetched(storePC, 77)
		for _, loadPC := range pcs {
			if seq, ok := p.LoadDependence(loadPC); !ok || seq != 77 {
				t.Fatalf("load %#x does not wait for store %#x after merges", loadPC, storePC)
			}
		}
		p.StoreExecuted(storePC, 77)
	}
}
