// Package memdep implements a store-set memory dependence predictor in
// the style of the Alpha 21264 / Chrysos & Emer, as used by the paper's
// baseline core (Table III). Loads that have previously conflicted with
// a store are forced to wait for that store instead of speculating past
// it; ordering violations train the predictor by merging the load and
// store into one store set.
package memdep

// Config sizes the predictor tables.
type Config struct {
	SSITEntries int // store-set ID table entries (PC-indexed)
}

// DefaultConfig returns a 4K-entry SSIT, in line with the 21264's
// store-wait table scale.
func DefaultConfig() Config { return Config{SSITEntries: 4096} }

// Predictor is the store-set dependence predictor. It tracks, per
// static PC, membership in a "store set"; a load whose PC shares a set
// with an in-flight store must wait for that store.
type Predictor struct {
	ssit   []uint32 // 0 = no set; otherwise set ID
	mask   uint64
	nextID uint32
	lfst   map[uint32]lfstEntry // last fetched store per set
	stats  Stats
}

type lfstEntry struct {
	seq   uint64 // instruction sequence number of the store
	valid bool
}

// Stats counts predictor activity.
type Stats struct {
	Violations  uint64 // ordering violations observed (trainings)
	Dependences uint64 // loads forced to wait on a predicted store
}

// New builds a predictor from cfg.
func New(cfg Config) *Predictor {
	n := cfg.SSITEntries
	if n <= 0 || n&(n-1) != 0 {
		panic("memdep: SSIT entries must be a positive power of two")
	}
	return &Predictor{
		ssit: make([]uint32, n),
		mask: uint64(n - 1),
		lfst: make(map[uint32]lfstEntry),
	}
}

func (p *Predictor) slot(pc uint64) *uint32 {
	return &p.ssit[(pc>>2)&p.mask]
}

// StoreFetched records that the store at storePC with sequence number
// seq has entered the window. If the store belongs to a set, it becomes
// that set's last fetched store.
func (p *Predictor) StoreFetched(storePC, seq uint64) {
	id := *p.slot(storePC)
	if id == 0 {
		return
	}
	p.lfst[id] = lfstEntry{seq: seq, valid: true}
}

// StoreExecuted clears the set's last-fetched-store entry once the
// store at seq has executed (younger loads no longer need to wait).
func (p *Predictor) StoreExecuted(storePC, seq uint64) {
	id := *p.slot(storePC)
	if id == 0 {
		return
	}
	if e, ok := p.lfst[id]; ok && e.valid && e.seq == seq {
		delete(p.lfst, id)
	}
}

// LoadDependence returns the sequence number of the store the load at
// loadPC must wait for, if any.
func (p *Predictor) LoadDependence(loadPC uint64) (storeSeq uint64, ok bool) {
	id := *p.slot(loadPC)
	if id == 0 {
		return 0, false
	}
	e, exists := p.lfst[id]
	if !exists || !e.valid {
		return 0, false
	}
	p.stats.Dependences++
	return e.seq, true
}

// Violation trains the predictor after a load issued before an older
// conflicting store: the load and store PCs are merged into one store
// set (the lower existing ID wins, per the store-set merge rule).
func (p *Predictor) Violation(loadPC, storePC uint64) {
	p.stats.Violations++
	ls, ss := p.slot(loadPC), p.slot(storePC)
	switch {
	case *ls == 0 && *ss == 0:
		p.nextID++
		*ls = p.nextID
		*ss = p.nextID
	case *ls == 0:
		*ls = *ss
	case *ss == 0:
		*ss = *ls
	case *ls < *ss:
		*ss = *ls
	default:
		*ls = *ss
	}
}

// StatsSnapshot returns the counters.
func (p *Predictor) StatsSnapshot() Stats { return p.stats }

// Reset clears all predictor state.
func (p *Predictor) Reset() {
	clear(p.ssit)
	clear(p.lfst) // keep the map's storage for pooled reuse
	p.nextID = 0
	p.stats = Stats{}
}
