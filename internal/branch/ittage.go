package branch

import "slices"

// ITTAGEConfig describes an ITTAGE indirect target predictor.
type ITTAGEConfig struct {
	BaseEntries   int
	TaggedEntries int
	TagBits       uint
	HistoryLens   []uint
}

// Equal reports whether two configurations describe the same predictor
// (history-length slices compared by content). Allocation-free, for
// hot-path callers that would otherwise reach for reflect.DeepEqual.
func (c ITTAGEConfig) Equal(o ITTAGEConfig) bool {
	return c.BaseEntries == o.BaseEntries &&
		c.TaggedEntries == o.TaggedEntries &&
		c.TagBits == o.TagBits &&
		slices.Equal(c.HistoryLens, o.HistoryLens)
}

// DefaultITTAGEConfig approximates the paper's "32KB ITTAGE predictor".
func DefaultITTAGEConfig() ITTAGEConfig {
	return ITTAGEConfig{
		BaseEntries:   2048,
		TaggedEntries: 512,
		TagBits:       11,
		HistoryLens:   []uint{4, 10, 22, 48},
	}
}

type ittageEntry struct {
	valid  bool
	tag    uint16
	target uint64
	conf   uint8 // 2-bit
	useful uint8 // 1-bit
}

// ITTAGE predicts indirect branch targets with the TAGE principle:
// a PC-indexed base table of last targets plus tagged tables indexed by
// geometric samples of global history.
type ITTAGE struct {
	cfg    ITTAGEConfig
	base   []uint64
	tables [][]ittageEntry
	stats  Stats

	provider    int
	providerIdx int
	providerTag uint16
	lastPred    uint64

	// Per-table index/tag caches, filled by Predict and consumed by
	// Update (same shared-hash-chain scheme as TAGE; Predict/Update
	// alternate with identical (pc, hist)).
	idxCache []int32
	tagCache []uint16
}

// NewITTAGE builds an ITTAGE predictor from cfg.
func NewITTAGE(cfg ITTAGEConfig) *ITTAGE {
	if cfg.BaseEntries <= 0 || cfg.BaseEntries&(cfg.BaseEntries-1) != 0 {
		panic("branch: base entries must be a power of two")
	}
	if cfg.TaggedEntries <= 0 || cfg.TaggedEntries&(cfg.TaggedEntries-1) != 0 {
		panic("branch: tagged entries must be a power of two")
	}
	t := &ITTAGE{cfg: cfg, base: make([]uint64, cfg.BaseEntries)}
	for range cfg.HistoryLens {
		t.tables = append(t.tables, make([]ittageEntry, cfg.TaggedEntries))
	}
	t.idxCache = make([]int32, len(cfg.HistoryLens))
	t.tagCache = make([]uint16, len(cfg.HistoryLens))
	return t
}

// Predict returns the predicted target for an indirect branch at pc.
// Predict/Update alternate with identical (pc, hist); every visited
// table's index/tag is derived from a shared hash chain and cached for
// Update, bit-identical to hashing each from scratch.
func (t *ITTAGE) Predict(pc, hist uint64) uint64 {
	t.stats.Lookups++
	t.provider = -1
	pred := t.base[(pc>>2)&uint64(t.cfg.BaseEntries-1)]
	hPC := mixRound(mixInit, pc>>2)
	idxMask := uint64(t.cfg.TaggedEntries - 1)
	tagMask := uint64(1)<<t.cfg.TagBits - 1
	for i := len(t.tables) - 1; i >= 0; i-- {
		sample := hist & ((uint64(1) << t.cfg.HistoryLens[i]) - 1)
		hSample := mixRound(hPC, sample)
		idx := int(mixRound(hSample, uint64(i)+77) & idxMask)
		tag := uint16(mixRound(hSample, uint64(i)^0x5555) & tagMask)
		t.idxCache[i], t.tagCache[i] = int32(idx), tag
		e := &t.tables[i][idx]
		if e.valid && e.tag == tag && e.conf >= 1 {
			t.provider = i
			t.providerIdx = idx
			t.providerTag = tag
			pred = e.target
			break
		}
	}
	t.lastPred = pred
	return pred
}

// Update trains the predictor with the branch's actual target.
func (t *ITTAGE) Update(pc, hist uint64, target uint64) {
	mispred := t.lastPred != target
	if mispred {
		t.stats.Mispredicts++
	}
	baseIdx := (pc >> 2) & uint64(t.cfg.BaseEntries-1)
	t.base[baseIdx] = target
	if t.provider >= 0 {
		e := &t.tables[t.provider][t.providerIdx]
		if e.valid && e.tag == t.providerTag {
			if e.target == target {
				if e.conf < 3 {
					e.conf++
				}
				e.useful = 1
			} else {
				if e.conf > 0 {
					e.conf--
				} else {
					e.target = target
					e.useful = 0
				}
			}
		}
	}
	if mispred {
		// Allocate in a longer-history table (indices/tags from
		// Predict's cache; tables above the provider are always
		// visited).
		for i := t.provider + 1; i < len(t.tables); i++ {
			e := &t.tables[i][t.idxCache[i]]
			if !e.valid || e.useful == 0 {
				*e = ittageEntry{valid: true, tag: t.tagCache[i], target: target, conf: 1}
				break
			}
			e.useful = 0
		}
	}
}

// StatsSnapshot returns lookup/mispredict counters.
func (t *ITTAGE) StatsSnapshot() Stats { return t.stats }

// Reset clears all predictor state.
func (t *ITTAGE) Reset() {
	clear(t.base)
	for i := range t.tables {
		clear(t.tables[i])
	}
	t.stats = Stats{}
	t.provider = -1
}
