package branch

import "slices"

// ITTAGEConfig describes an ITTAGE indirect target predictor.
type ITTAGEConfig struct {
	BaseEntries   int
	TaggedEntries int
	TagBits       uint
	HistoryLens   []uint
}

// Equal reports whether two configurations describe the same predictor
// (history-length slices compared by content). Allocation-free, for
// hot-path callers that would otherwise reach for reflect.DeepEqual.
func (c ITTAGEConfig) Equal(o ITTAGEConfig) bool {
	return c.BaseEntries == o.BaseEntries &&
		c.TaggedEntries == o.TaggedEntries &&
		c.TagBits == o.TagBits &&
		slices.Equal(c.HistoryLens, o.HistoryLens)
}

// DefaultITTAGEConfig approximates the paper's "32KB ITTAGE predictor".
func DefaultITTAGEConfig() ITTAGEConfig {
	return ITTAGEConfig{
		BaseEntries:   2048,
		TaggedEntries: 512,
		TagBits:       11,
		HistoryLens:   []uint{4, 10, 22, 48},
	}
}

type ittageEntry struct {
	valid  bool
	tag    uint16
	target uint64
	conf   uint8 // 2-bit
	useful uint8 // 1-bit
}

// ITTAGE predicts indirect branch targets with the TAGE principle:
// a PC-indexed base table of last targets plus tagged tables indexed by
// geometric samples of global history.
type ITTAGE struct {
	cfg    ITTAGEConfig
	base   []uint64
	tables [][]ittageEntry
	stats  Stats

	provider    int
	providerIdx int
	providerTag uint16
	lastPred    uint64
}

// NewITTAGE builds an ITTAGE predictor from cfg.
func NewITTAGE(cfg ITTAGEConfig) *ITTAGE {
	if cfg.BaseEntries <= 0 || cfg.BaseEntries&(cfg.BaseEntries-1) != 0 {
		panic("branch: base entries must be a power of two")
	}
	if cfg.TaggedEntries <= 0 || cfg.TaggedEntries&(cfg.TaggedEntries-1) != 0 {
		panic("branch: tagged entries must be a power of two")
	}
	t := &ITTAGE{cfg: cfg, base: make([]uint64, cfg.BaseEntries)}
	for range cfg.HistoryLens {
		t.tables = append(t.tables, make([]ittageEntry, cfg.TaggedEntries))
	}
	return t
}

func (t *ITTAGE) tableIndex(i int, pc, hist uint64) int {
	sample := hist & ((uint64(1) << t.cfg.HistoryLens[i]) - 1)
	return int(mix(pc>>2, sample, uint64(i)+77) & uint64(t.cfg.TaggedEntries-1))
}

func (t *ITTAGE) tableTag(i int, pc, hist uint64) uint16 {
	sample := hist & ((uint64(1) << t.cfg.HistoryLens[i]) - 1)
	return uint16(mix(pc>>2, sample, uint64(i)^0x5555) & ((1 << t.cfg.TagBits) - 1))
}

// Predict returns the predicted target for an indirect branch at pc.
func (t *ITTAGE) Predict(pc, hist uint64) uint64 {
	t.stats.Lookups++
	t.provider = -1
	pred := t.base[(pc>>2)&uint64(t.cfg.BaseEntries-1)]
	for i := len(t.tables) - 1; i >= 0; i-- {
		idx := t.tableIndex(i, pc, hist)
		tag := t.tableTag(i, pc, hist)
		e := &t.tables[i][idx]
		if e.valid && e.tag == tag && e.conf >= 1 {
			t.provider = i
			t.providerIdx = idx
			t.providerTag = tag
			pred = e.target
			break
		}
	}
	t.lastPred = pred
	return pred
}

// Update trains the predictor with the branch's actual target.
func (t *ITTAGE) Update(pc, hist uint64, target uint64) {
	mispred := t.lastPred != target
	if mispred {
		t.stats.Mispredicts++
	}
	baseIdx := (pc >> 2) & uint64(t.cfg.BaseEntries-1)
	t.base[baseIdx] = target
	if t.provider >= 0 {
		e := &t.tables[t.provider][t.providerIdx]
		if e.valid && e.tag == t.providerTag {
			if e.target == target {
				if e.conf < 3 {
					e.conf++
				}
				e.useful = 1
			} else {
				if e.conf > 0 {
					e.conf--
				} else {
					e.target = target
					e.useful = 0
				}
			}
		}
	}
	if mispred {
		// Allocate in a longer-history table.
		for i := t.provider + 1; i < len(t.tables); i++ {
			idx := t.tableIndex(i, pc, hist)
			e := &t.tables[i][idx]
			if !e.valid || e.useful == 0 {
				*e = ittageEntry{valid: true, tag: t.tableTag(i, pc, hist), target: target, conf: 1}
				break
			}
			e.useful = 0
		}
	}
}

// StatsSnapshot returns lookup/mispredict counters.
func (t *ITTAGE) StatsSnapshot() Stats { return t.stats }

// Reset clears all predictor state.
func (t *ITTAGE) Reset() {
	clear(t.base)
	for i := range t.tables {
		clear(t.tables[i])
	}
	t.stats = Stats{}
	t.provider = -1
}
