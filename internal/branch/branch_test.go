package branch

import "testing"

// runTAGE feeds a deterministic branch stream through predict/update and
// returns the misprediction rate over the last half (after warmup).
func runTAGE(t *TAGE, n int, outcome func(i int, hist uint64) bool) float64 {
	var h History
	warm := n / 2
	lookups, wrong := 0, 0
	pc := uint64(0x4000)
	for i := 0; i < n; i++ {
		taken := outcome(i, h.Global)
		pred := t.Predict(pc, h.Global)
		t.Update(pc, h.Global, taken)
		if i >= warm {
			lookups++
			if pred != taken {
				wrong++
			}
		}
		h.Update(pc, taken)
	}
	if lookups == 0 {
		return 0
	}
	return float64(wrong) / float64(lookups)
}

func TestTAGEAlwaysTaken(t *testing.T) {
	p := NewTAGE(DefaultTAGEConfig())
	rate := runTAGE(p, 2000, func(int, uint64) bool { return true })
	if rate > 0.01 {
		t.Errorf("always-taken misprediction rate %.3f", rate)
	}
}

func TestTAGEAlternating(t *testing.T) {
	p := NewTAGE(DefaultTAGEConfig())
	rate := runTAGE(p, 4000, func(i int, _ uint64) bool { return i%2 == 0 })
	if rate > 0.05 {
		t.Errorf("alternating pattern misprediction rate %.3f", rate)
	}
}

func TestTAGELearnsLongPattern(t *testing.T) {
	// Period-7 pattern requires history: a bimodal predictor would sit
	// near the bias rate (3/7 ≈ 43% wrong for pattern with 4 takens).
	pattern := []bool{true, true, false, true, false, false, true}
	p := NewTAGE(DefaultTAGEConfig())
	rate := runTAGE(p, 20000, func(i int, _ uint64) bool { return pattern[i%len(pattern)] })
	if rate > 0.05 {
		t.Errorf("period-7 pattern misprediction rate %.3f, want < 0.05", rate)
	}
}

func TestTAGEHistoryCorrelated(t *testing.T) {
	// Outcome equals the branch outcome 3 steps ago — pure history
	// correlation, invisible to PC-only prediction.
	p := NewTAGE(DefaultTAGEConfig())
	rate := runTAGE(p, 20000, func(i int, hist uint64) bool { return (hist>>2)&1 == 1 })
	if rate > 0.05 {
		t.Errorf("history-correlated misprediction rate %.3f", rate)
	}
}

func TestTAGEDistinctBranches(t *testing.T) {
	p := NewTAGE(DefaultTAGEConfig())
	var h History
	wrong, total := 0, 0
	for i := 0; i < 20000; i++ {
		pc := uint64(0x4000 + (i%8)*4)
		taken := i%8 < 4 // each PC has a fixed direction
		pred := p.Predict(pc, h.Global)
		p.Update(pc, h.Global, taken)
		if i > 10000 {
			total++
			if pred != taken {
				wrong++
			}
		}
		h.Update(pc, taken)
	}
	if rate := float64(wrong) / float64(total); rate > 0.02 {
		t.Errorf("per-PC-biased misprediction rate %.3f", rate)
	}
}

func TestTAGEStats(t *testing.T) {
	p := NewTAGE(DefaultTAGEConfig())
	p.Predict(0x40, 0)
	p.Update(0x40, 0, true)
	st := p.StatsSnapshot()
	if st.Lookups != 1 {
		t.Errorf("lookups = %d", st.Lookups)
	}
	if Stats.Rate(Stats{}) != 0 {
		t.Error("empty stats rate should be 0")
	}
}

func TestTAGEReset(t *testing.T) {
	p := NewTAGE(DefaultTAGEConfig())
	runTAGE(p, 1000, func(int, uint64) bool { return true })
	p.Reset()
	if p.StatsSnapshot().Lookups != 0 {
		t.Error("stats survived reset")
	}
}

func TestTAGEConfigValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on non-power-of-two entries")
		}
	}()
	NewTAGE(TAGEConfig{BaseEntries: 100, TaggedEntries: 64, TagBits: 8, HistoryLens: []uint{4}})
}

func TestITTAGEMonomorphic(t *testing.T) {
	p := NewITTAGE(DefaultITTAGEConfig())
	var h History
	wrong := 0
	for i := 0; i < 1000; i++ {
		pred := p.Predict(0x40, h.Global)
		p.Update(0x40, h.Global, 0x9000)
		if i > 10 && pred != 0x9000 {
			wrong++
		}
		h.Update(0x40, true)
	}
	if wrong > 0 {
		t.Errorf("monomorphic indirect mispredicted %d times after warmup", wrong)
	}
}

func TestITTAGEHistoryCorrelatedTargets(t *testing.T) {
	// Target alternates with a period-4 history pattern.
	p := NewITTAGE(DefaultITTAGEConfig())
	var h History
	targets := []uint64{0x9000, 0x9100, 0x9200, 0x9300}
	wrong, total := 0, 0
	for i := 0; i < 20000; i++ {
		want := targets[i%4]
		pred := p.Predict(0x40, h.Global)
		p.Update(0x40, h.Global, want)
		if i > 10000 {
			total++
			if pred != want {
				wrong++
			}
		}
		// Encode the phase into the history so ITTAGE can see it.
		h.Update(0x40, i%4 < 2)
		h.Update(0x44, i%2 == 0)
	}
	if rate := float64(wrong) / float64(total); rate > 0.10 {
		t.Errorf("history-correlated indirect misprediction rate %.3f", rate)
	}
}

func TestITTAGEReset(t *testing.T) {
	p := NewITTAGE(DefaultITTAGEConfig())
	p.Predict(0x40, 0)
	p.Update(0x40, 0, 0x9000)
	p.Reset()
	if p.StatsSnapshot().Lookups != 0 {
		t.Error("stats survived reset")
	}
	if got := p.Predict(0x40, 0); got != 0 {
		t.Errorf("base table survived reset: %#x", got)
	}
}

func TestITTAGEConfigValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewITTAGE(ITTAGEConfig{BaseEntries: 7, TaggedEntries: 8, TagBits: 8, HistoryLens: []uint{4}})
}

func TestRASLIFO(t *testing.T) {
	r := NewRAS(16)
	r.Push(0x100)
	r.Push(0x200)
	r.Push(0x300)
	if got := r.Pop(); got != 0x300 {
		t.Errorf("pop = %#x, want 0x300", got)
	}
	if got := r.Pop(); got != 0x200 {
		t.Errorf("pop = %#x, want 0x200", got)
	}
	if r.Depth() != 1 {
		t.Errorf("depth = %d, want 1", r.Depth())
	}
}

func TestRASUnderflow(t *testing.T) {
	r := NewRAS(4)
	if got := r.Pop(); got != 0 {
		t.Errorf("empty pop = %#x, want 0", got)
	}
	if r.Depth() != 0 {
		t.Error("depth went negative")
	}
}

func TestRASOverflowWrapsOldest(t *testing.T) {
	r := NewRAS(2)
	r.Push(0x100)
	r.Push(0x200)
	r.Push(0x300) // overwrites 0x100
	if got := r.Pop(); got != 0x300 {
		t.Errorf("pop = %#x", got)
	}
	if got := r.Pop(); got != 0x200 {
		t.Errorf("pop = %#x", got)
	}
	// The overwritten entry is gone; a further pop underflows.
	if got := r.Pop(); got != 0 {
		t.Errorf("pop past overwritten entry = %#x, want 0", got)
	}
}

func TestRASDefaultSize(t *testing.T) {
	r := NewRAS(0)
	for i := 0; i < 16; i++ {
		r.Push(uint64(i))
	}
	if r.Depth() != 16 {
		t.Errorf("default RAS depth = %d, want 16", r.Depth())
	}
}

func TestHistoryUpdate(t *testing.T) {
	var h History
	h.Update(0x40, true)
	h.Update(0x44, false)
	h.Update(0x48, true)
	if h.Global&0x7 != 0b101 {
		t.Errorf("global history = %b, want ...101", h.Global&0x7)
	}
	var h2 History
	h2.Update(0x40, true)
	h2.Update(0x48, false)
	h2.Update(0x44, true)
	if h.Path == h2.Path {
		t.Error("path history insensitive to branch PC order")
	}
}
