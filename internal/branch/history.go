package branch

// History holds the speculative branch history registers maintained by
// the front end: the global taken/not-taken history consumed by TAGE
// and CVP, and a path history mixing branch PCs, consumed by ITTAGE.
type History struct {
	// Global is the outcome history, newest bit in bit 0 (1 = taken).
	Global uint64

	// Path folds the PCs of recent branches, newest first.
	Path uint64
}

// Update shifts a branch's outcome and PC into the histories.
func (h *History) Update(pc uint64, taken bool) {
	h.Global <<= 1
	if taken {
		h.Global |= 1
	}
	h.Path = (h.Path << 3) ^ ((pc >> 2) & 0x3F)
}

// RAS is the 16-entry return address stack of the baseline core
// (Table III). It is a circular stack: pushing beyond capacity
// overwrites the oldest entry, and popping an empty stack returns zero,
// as a real RAS would mispredict.
type RAS struct {
	entries []uint64
	top     int
	depth   int
}

// NewRAS builds a return address stack with n entries.
func NewRAS(n int) *RAS {
	if n <= 0 {
		n = 16
	}
	return &RAS{entries: make([]uint64, n)}
}

// Push records a call's return address.
func (r *RAS) Push(retAddr uint64) {
	r.top = (r.top + 1) % len(r.entries)
	r.entries[r.top] = retAddr
	if r.depth < len(r.entries) {
		r.depth++
	}
}

// Pop predicts the target of a return. An underflowed stack returns 0.
func (r *RAS) Pop() uint64 {
	if r.depth == 0 {
		return 0
	}
	v := r.entries[r.top]
	r.top = (r.top - 1 + len(r.entries)) % len(r.entries)
	r.depth--
	return v
}

// Depth reports the number of live entries.
func (r *RAS) Depth() int { return r.depth }

// Reset empties the stack.
func (r *RAS) Reset() {
	r.top = 0
	r.depth = 0
	clear(r.entries)
}
