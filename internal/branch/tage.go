// Package branch implements the baseline core's branch prediction
// (paper Table III): a TAGE conditional branch predictor, an ITTAGE
// indirect target predictor, a 16-entry return address stack, and the
// global/path history registers the context-aware value predictors
// consume.
package branch

import "slices"

// TAGEConfig describes a TAGE predictor.
type TAGEConfig struct {
	BaseEntries   int    // bimodal base predictor entries
	TaggedEntries int    // entries per tagged table
	TagBits       uint   // partial tag width in tagged tables
	HistoryLens   []uint // geometric global-history lengths, shortest first
	UseAltBits    uint   // width of the use-alt-on-newly-allocated counter
	Seed          uint64
}

// Equal reports whether two configurations describe the same predictor
// (history-length slices compared by content). Allocation-free, for
// hot-path callers that would otherwise reach for reflect.DeepEqual.
func (c TAGEConfig) Equal(o TAGEConfig) bool {
	return c.BaseEntries == o.BaseEntries &&
		c.TaggedEntries == o.TaggedEntries &&
		c.TagBits == o.TagBits &&
		c.UseAltBits == o.UseAltBits &&
		c.Seed == o.Seed &&
		slices.Equal(c.HistoryLens, o.HistoryLens)
}

// DefaultTAGEConfig approximates the paper's "state-of-art 32KB TAGE
// predictor": a 16K-entry bimodal base plus six tagged tables with
// geometric histories.
func DefaultTAGEConfig() TAGEConfig {
	return TAGEConfig{
		BaseEntries:   16384,
		TaggedEntries: 1024,
		TagBits:       11,
		HistoryLens:   []uint{5, 9, 15, 25, 44, 76},
		UseAltBits:    4,
		Seed:          0x7A6E,
	}
}

type tageEntry struct {
	valid  bool
	tag    uint16
	ctr    int8  // signed 3-bit counter: >= 0 predicts taken
	useful uint8 // 2-bit usefulness
}

// TAGE is a TAgged GEometric-history-length conditional branch
// predictor (Seznec). Prediction comes from the longest-history tagged
// table with a matching tag, falling back to a bimodal base table.
type TAGE struct {
	cfg    TAGEConfig
	base   []int8 // 2-bit bimodal counters
	tables [][]tageEntry
	useAlt int8
	rng    rngState
	stats  Stats

	// last prediction metadata, captured by Predict for Update
	provider    int // table index, -1 = base
	providerIdx int
	providerTag uint16
	altPred     bool
	provPred    bool
	provWeak    bool

	// Per-table index/tag caches, filled by Predict for every table it
	// visits and consumed by Update. Predict/Update alternate with
	// identical (pc, hist) — see Predict's contract — and Predict's
	// descending scan always visits every table Update's allocation and
	// decay paths touch (tables above the provider), so Update never
	// recomputes a hash.
	idxCache []int32
	tagCache []uint16
}

// Stats counts branch predictor outcomes.
type Stats struct {
	Lookups     uint64
	Mispredicts uint64
}

// Rate returns the misprediction rate.
func (s Stats) Rate() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.Mispredicts) / float64(s.Lookups)
}

type rngState uint64

func (r *rngState) next() uint64 {
	s := uint64(*r)
	s ^= s >> 12
	s ^= s << 25
	s ^= s >> 27
	*r = rngState(s)
	return s * 0x2545F4914F6CDD1D
}

// NewTAGE builds a TAGE predictor from cfg.
func NewTAGE(cfg TAGEConfig) *TAGE {
	if cfg.BaseEntries <= 0 || cfg.BaseEntries&(cfg.BaseEntries-1) != 0 {
		panic("branch: base entries must be a power of two")
	}
	if cfg.TaggedEntries <= 0 || cfg.TaggedEntries&(cfg.TaggedEntries-1) != 0 {
		panic("branch: tagged entries must be a power of two")
	}
	t := &TAGE{cfg: cfg, base: make([]int8, cfg.BaseEntries), rng: rngState(cfg.Seed | 1)}
	for range cfg.HistoryLens {
		t.tables = append(t.tables, make([]tageEntry, cfg.TaggedEntries))
	}
	t.idxCache = make([]int32, len(cfg.HistoryLens))
	t.tagCache = make([]uint16, len(cfg.HistoryLens))
	return t
}

// mixInit is the mix chain's initial state.
const mixInit = uint64(0x9E3779B97F4A7C15)

// mixRound absorbs one word into the mix chain (the splitmix64
// finalizer applied to h^w). The historical hash mix(a, b, c) is
// exactly mixRound(mixRound(mixRound(mixInit, a), b), c), so hot paths
// that hash many values sharing a common prefix (every TAGE table
// hashes the same pc, and a table's index and tag hashes share pc and
// history sample) absorb the shared words once and fork the chain,
// producing bit-identical hashes at a fraction of the rounds.
func mixRound(h, w uint64) uint64 {
	h ^= w
	h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9
	h = (h ^ (h >> 27)) * 0x94D049BB133111EB
	return h ^ (h >> 31)
}

// Predict returns the taken/not-taken prediction for a conditional
// branch at pc under global history hist. The provider metadata is
// retained for the next Update call; Predict/Update must alternate per
// branch with identical (pc, hist), as they do in the fetch/execute
// pipeline. Each visited table's index and tag come from one shared
// hash chain (the pc round is absorbed once, the history-sample round
// once per table) and are cached for Update — bit-identical to hashing
// (pc, sample, salt) from scratch per lookup, at under half the rounds.
func (t *TAGE) Predict(pc, hist uint64) bool {
	t.stats.Lookups++
	t.provider = -1
	baseIdx := int((pc >> 2) & uint64(t.cfg.BaseEntries-1))
	basePred := t.base[baseIdx] >= 0
	pred, alt := basePred, basePred
	found := 0
	hPC := mixRound(mixInit, pc>>2)
	idxMask := uint64(t.cfg.TaggedEntries - 1)
	tagMask := uint64(1)<<t.cfg.TagBits - 1
	for i := len(t.tables) - 1; i >= 0; i-- {
		sample := hist
		if t.cfg.HistoryLens[i] < 64 {
			sample = hist & ((uint64(1) << t.cfg.HistoryLens[i]) - 1)
		}
		hSample := mixRound(hPC, sample)
		idx := int(mixRound(hSample, uint64(i)) & idxMask)
		tag := uint16(mixRound(hSample, uint64(i)^0xABCD) & tagMask)
		t.idxCache[i], t.tagCache[i] = int32(idx), tag
		e := &t.tables[i][idx]
		if !e.valid || e.tag != tag {
			continue
		}
		found++
		if found == 1 {
			t.provider = i
			t.providerIdx = idx
			t.providerTag = tag
			pred = e.ctr >= 0
			t.provWeak = e.ctr == 0 || e.ctr == -1
		} else {
			alt = e.ctr >= 0
			break
		}
	}
	if found < 2 {
		alt = basePred
	}
	t.altPred = alt
	t.provPred = pred
	// Newly allocated entries are unreliable: optionally trust altpred.
	if t.provider >= 0 && t.provWeak && t.useAlt >= 0 {
		pred = alt
	}
	return pred
}

// Update trains the predictor with the actual outcome of the branch
// whose prediction was just produced by Predict with identical (pc,
// hist).
func (t *TAGE) Update(pc, hist uint64, taken bool) {
	finalPred := t.provPred
	if t.provider >= 0 && t.provWeak && t.useAlt >= 0 {
		finalPred = t.altPred
	}
	if finalPred != taken {
		t.stats.Mispredicts++
	}

	baseIdx := int((pc >> 2) & uint64(t.cfg.BaseEntries-1))
	if t.provider < 0 {
		t.base[baseIdx] = bump2(t.base[baseIdx], taken)
	} else {
		e := &t.tables[t.provider][t.providerIdx]
		if e.valid && e.tag == t.providerTag {
			// Track whether trusting altpred over a weak provider pays.
			if t.provWeak && t.provPred != t.altPred {
				if t.altPred == taken {
					t.useAlt = clampAdd(t.useAlt, 1, int8(1<<(t.cfg.UseAltBits-1))-1)
				} else {
					t.useAlt = clampAdd(t.useAlt, -1, int8(1<<(t.cfg.UseAltBits-1))-1)
				}
			}
			e.ctr = bump3(e.ctr, taken)
			if t.provPred == taken && t.provPred != t.altPred {
				if e.useful < 3 {
					e.useful++
				}
			}
		}
		// Provider's own counter also updates the base slowly when it
		// disagrees, keeping the base usable as altpred.
		if t.altPred != taken {
			t.base[baseIdx] = bump2(t.base[baseIdx], taken)
		}
	}

	// Allocate a longer-history entry on a misprediction. Indices and
	// tags come from Predict's per-table cache (same (pc, hist) by the
	// Predict/Update contract; every table above the provider was
	// visited and cached).
	if finalPred != taken && t.provider < len(t.tables)-1 {
		start := t.provider + 1
		allocated := false
		for i := start; i < len(t.tables); i++ {
			e := &t.tables[i][t.idxCache[i]]
			if !e.valid || e.useful == 0 {
				*e = tageEntry{valid: true, tag: t.tagCache[i]}
				if taken {
					e.ctr = 0
				} else {
					e.ctr = -1
				}
				allocated = true
				break
			}
		}
		if !allocated {
			// Decay usefulness so future allocations can succeed.
			for i := start; i < len(t.tables); i++ {
				if e := &t.tables[i][t.idxCache[i]]; e.useful > 0 {
					e.useful--
				}
			}
		}
	}
}

// StatsSnapshot returns lookup/mispredict counters.
func (t *TAGE) StatsSnapshot() Stats { return t.stats }

// Reset clears all predictor state.
func (t *TAGE) Reset() {
	clear(t.base)
	for i := range t.tables {
		clear(t.tables[i])
	}
	t.useAlt = 0
	t.stats = Stats{}
	t.provider = -1
}

// bump2 saturates a 2-bit signed counter in [-2, 1].
func bump2(c int8, up bool) int8 {
	if up {
		if c < 1 {
			return c + 1
		}
		return c
	}
	if c > -2 {
		return c - 1
	}
	return c
}

// bump3 saturates a 3-bit signed counter in [-4, 3].
func bump3(c int8, up bool) int8 {
	if up {
		if c < 3 {
			return c + 1
		}
		return c
	}
	if c > -4 {
		return c - 1
	}
	return c
}

func clampAdd(v, d, lim int8) int8 {
	n := v + d
	if n > lim {
		return lim
	}
	if n < -lim-1 {
		return -lim - 1
	}
	return n
}
