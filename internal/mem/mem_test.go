package mem

import (
	"testing"
	"testing/quick"
)

func TestBackingReadAfterWrite(t *testing.T) {
	b := NewBacking(1)
	b.Write(0x1000, 8, 0x1122334455667788)
	if got := b.Read(0x1000, 8); got != 0x1122334455667788 {
		t.Errorf("read = %#x", got)
	}
}

func TestBackingPartialWidths(t *testing.T) {
	b := NewBacking(1)
	b.Write(0x1000, 8, 0x1122334455667788)
	if got := b.Read(0x1000, 4); got != 0x55667788 {
		t.Errorf("4-byte read = %#x, want 0x55667788", got)
	}
	if got := b.Read(0x1004, 4); got != 0x11223344 {
		t.Errorf("upper 4-byte read = %#x, want 0x11223344", got)
	}
	if got := b.Read(0x1000, 1); got != 0x88 {
		t.Errorf("byte read = %#x, want 0x88", got)
	}
	b.Write(0x1002, 2, 0xBEEF)
	if got := b.Read(0x1000, 8); got != 0x11223344BEEF7788 {
		t.Errorf("merged read = %#x, want 0x11223344BEEF7788", got)
	}
}

func TestBackingStraddlesWords(t *testing.T) {
	b := NewBacking(1)
	b.Write(0x1006, 4, 0xAABBCCDD)
	if got := b.Read(0x1006, 4); got != 0xAABBCCDD {
		t.Errorf("straddling read = %#x", got)
	}
}

func TestBackingColdFillStableAndSeeded(t *testing.T) {
	a := NewBacking(7)
	if a.Read(0x5000, 8) != a.Read(0x5000, 8) {
		t.Error("cold fill not stable across reads")
	}
	b := NewBacking(8)
	if a.Read(0x5000, 8) == b.Read(0x5000, 8) {
		t.Error("different seeds produced identical fill (unlikely)")
	}
	c := NewBacking(7)
	if a.Read(0x5000, 8) != c.Read(0x5000, 8) {
		t.Error("same seed produced different fill")
	}
}

func TestBackingClone(t *testing.T) {
	a := NewBacking(7)
	a.Write(0x10, 8, 42)
	b := a.Clone()
	b.Write(0x10, 8, 99)
	if a.Read(0x10, 8) != 42 {
		t.Error("clone writes leaked into original")
	}
	if b.Read(0x10, 8) != 99 {
		t.Error("clone lost its own write")
	}
	if b.Read(0x7777, 8) != a.Read(0x7777, 8) {
		t.Error("clone fill differs from original")
	}
}

func TestBackingSizeClamp(t *testing.T) {
	b := NewBacking(1)
	b.Write(0x0, 0, 0xFF) // size 0 clamps to 8
	if got := b.Read(0x0, 0); got != 0xFF {
		t.Errorf("size-0 read = %#x", got)
	}
}

// Property: read(write(x)) == x for all aligned sizes.
func TestBackingWriteReadProperty(t *testing.T) {
	b := NewBacking(3)
	err := quick.Check(func(addr uint32, val uint64, szSel uint8) bool {
		size := uint8(1) << (szSel % 4)
		a := uint64(addr)
		b.Write(a, size, val)
		mask := ^uint64(0)
		if size < 8 {
			mask = (uint64(1) << (size * 8)) - 1
		}
		return b.Read(a, size) == val&mask
	}, &quick.Config{MaxCount: 500})
	if err != nil {
		t.Error(err)
	}
}

func TestCacheHitAfterFill(t *testing.T) {
	c := NewCache(CacheConfig{Name: "t", SizeBytes: 1 << 12, LineBytes: 64, Ways: 4, Latency: 2})
	if c.Lookup(0x1000) {
		t.Error("hit in empty cache")
	}
	c.Fill(0x1000)
	if !c.Lookup(0x1000) {
		t.Error("miss after fill")
	}
	if !c.Lookup(0x1030) {
		t.Error("same line, different offset missed")
	}
	if c.Lookup(0x2000) {
		t.Error("different line hit")
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 2 {
		t.Errorf("stats = %+v, want 2 hits / 2 misses", st)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// 2-way, 2 sets, 64B lines → addresses with the same set bits
	// conflict after two fills.
	c := NewCache(CacheConfig{Name: "t", SizeBytes: 256, LineBytes: 64, Ways: 2, Latency: 1})
	a, b, d := uint64(0x0000), uint64(0x0080), uint64(0x0100) // same set (bit 6 = set)
	c.Fill(a)
	c.Fill(b)
	c.Lookup(a) // a is now MRU
	c.Fill(d)   // evicts b (LRU)
	if !c.Peek(a) {
		t.Error("MRU line evicted")
	}
	if c.Peek(b) {
		t.Error("LRU line survived")
	}
	if !c.Peek(d) {
		t.Error("filled line missing")
	}
	if c.Stats().Evictions != 1 {
		t.Errorf("evictions = %d, want 1", c.Stats().Evictions)
	}
}

func TestCachePeekDoesNotDisturb(t *testing.T) {
	c := NewCache(CacheConfig{Name: "t", SizeBytes: 256, LineBytes: 64, Ways: 2, Latency: 1})
	c.Fill(0x0)
	before := c.Stats()
	c.Peek(0x0)
	c.Peek(0x4000)
	if c.Stats() != before {
		t.Error("Peek changed statistics")
	}
}

func TestCacheFillIdempotent(t *testing.T) {
	c := NewCache(CacheConfig{Name: "t", SizeBytes: 256, LineBytes: 64, Ways: 2, Latency: 1})
	c.Fill(0x40)
	c.Fill(0x40)
	if c.Stats().Fills != 1 {
		t.Errorf("refill counted as new fill: %d", c.Stats().Fills)
	}
}

func TestCacheFlush(t *testing.T) {
	c := NewCache(CacheConfig{Name: "t", SizeBytes: 256, LineBytes: 64, Ways: 2, Latency: 1})
	c.Fill(0x40)
	c.Flush()
	if c.Peek(0x40) {
		t.Error("line survived flush")
	}
}

func TestCacheGeometryValidation(t *testing.T) {
	bad := []CacheConfig{
		{SizeBytes: 0, LineBytes: 64, Ways: 1},
		{SizeBytes: 100, LineBytes: 64, Ways: 1}, // non-power-of-two sets
		{SizeBytes: 256, LineBytes: 0, Ways: 1},
	}
	for i, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			NewCache(cfg)
		}()
	}
}

func TestCacheHitRate(t *testing.T) {
	var s CacheStats
	if s.HitRate() != 1 {
		t.Error("empty stats hit rate should be 1")
	}
	s.Hits, s.Misses = 3, 1
	if s.HitRate() != 0.75 {
		t.Errorf("hit rate = %v", s.HitRate())
	}
}

func TestTLBHitMiss(t *testing.T) {
	tlb := NewTLB(DefaultTLBConfig())
	if lat := tlb.Access(0x1000); lat == 0 {
		t.Error("first access should miss and pay the walk")
	}
	if lat := tlb.Access(0x1500); lat != 0 {
		t.Error("same-page access missed")
	}
	if lat := tlb.Access(0x2000); lat == 0 {
		t.Error("new page should miss")
	}
	st := tlb.Stats()
	if st.Hits != 1 || st.Misses != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestTLBCapacityEviction(t *testing.T) {
	cfg := TLBConfig{Entries: 8, Ways: 2, PageBytes: 4096, WalkLatency: 10}
	tlb := NewTLB(cfg)
	// Touch many pages mapping to the same set to force evictions.
	for i := uint64(0); i < 64; i++ {
		tlb.Access(i * 4096 * 4) // stride of 4 sets keeps hitting set 0
	}
	if tlb.Stats().Evictions == 0 {
		t.Error("no TLB evictions under conflict pressure")
	}
}

func TestTLBFlush(t *testing.T) {
	tlb := NewTLB(DefaultTLBConfig())
	tlb.Access(0x1000)
	tlb.Flush()
	if lat := tlb.Access(0x1000); lat == 0 {
		t.Error("translation survived flush")
	}
}

func TestPrefetcherDetectsStride(t *testing.T) {
	p := NewStridePrefetcher(64, 2)
	pc := uint64(0x40)
	var out []uint64
	for i := uint64(0); i < 8; i++ {
		out = p.Observe(pc, 0x1000+i*64)
	}
	if len(out) != 2 {
		t.Fatalf("prefetches = %d, want 2", len(out))
	}
	if out[0] != 0x1000+8*64 || out[1] != 0x1000+9*64 {
		t.Errorf("prefetch addrs = %#x, %#x", out[0], out[1])
	}
}

func TestPrefetcherIgnoresIrregular(t *testing.T) {
	p := NewStridePrefetcher(64, 2)
	pc := uint64(0x40)
	addrs := []uint64{0x1000, 0x5000, 0x2000, 0x9000, 0x100, 0x7800}
	var out []uint64
	for _, a := range addrs {
		out = p.Observe(pc, a)
	}
	if len(out) != 0 {
		t.Errorf("prefetched on irregular stream: %v", out)
	}
}

func TestPrefetcherZeroStrideSilent(t *testing.T) {
	p := NewStridePrefetcher(64, 2)
	for i := 0; i < 10; i++ {
		if out := p.Observe(0x40, 0x1000); len(out) != 0 {
			t.Fatal("prefetched on zero stride")
		}
	}
}

func TestHierarchyLatencyLadder(t *testing.T) {
	cfg := DefaultHierarchyConfig()
	cfg.PrefetchEnabled = false
	h := NewHierarchy(cfg)
	addr := uint64(0x12340)
	first := h.DataAccess(0x40, addr)
	if first < cfg.MemLatency {
		t.Errorf("cold access latency %d < memory latency %d", first, cfg.MemLatency)
	}
	second := h.DataAccess(0x40, addr)
	if second != cfg.L1D.Latency {
		t.Errorf("warm access latency %d, want L1D %d", second, cfg.L1D.Latency)
	}
}

func TestHierarchyFillPropagation(t *testing.T) {
	cfg := DefaultHierarchyConfig()
	cfg.PrefetchEnabled = false
	h := NewHierarchy(cfg)
	addr := uint64(0x98765400)
	h.DataAccess(0x40, addr)
	if !h.L1D.Peek(addr) || !h.L2.Peek(addr) || !h.L3.Peek(addr) {
		t.Error("miss did not fill all levels")
	}
}

func TestHierarchyL2HitAfterL1Eviction(t *testing.T) {
	cfg := DefaultHierarchyConfig()
	cfg.PrefetchEnabled = false
	// Tiny L1 so we can evict it quickly.
	cfg.L1D = CacheConfig{Name: "L1D", SizeBytes: 128, LineBytes: 64, Ways: 1, Latency: 2}
	h := NewHierarchy(cfg)
	a := uint64(0x10000)
	h.DataAccess(0x40, a)
	h.DataAccess(0x40, a+128) // same L1 set (2 sets × 64B), evicts a
	lat := h.DataAccess(0x40, a)
	if lat != cfg.L2.Latency {
		t.Errorf("latency after L1 eviction = %d, want L2 %d", lat, cfg.L2.Latency)
	}
}

func TestHierarchyProbeD(t *testing.T) {
	cfg := DefaultHierarchyConfig()
	cfg.PrefetchEnabled = false
	h := NewHierarchy(cfg)
	addr := uint64(0x4440)
	if _, hit := h.ProbeD(addr); hit {
		t.Error("probe hit cold cache")
	}
	// Probe must not allocate (prefetch on PAQ miss is disabled).
	if h.L1D.Peek(addr) {
		t.Error("ProbeD allocated a line")
	}
	h.DataAccess(0x40, addr)
	lat, hit := h.ProbeD(addr)
	if !hit || lat != cfg.L1D.Latency {
		t.Errorf("probe after fill: hit=%v lat=%d", hit, lat)
	}
}

func TestHierarchyInstAccess(t *testing.T) {
	cfg := DefaultHierarchyConfig()
	h := NewHierarchy(cfg)
	pc := uint64(0x400000)
	if lat := h.InstAccess(pc); lat < cfg.MemLatency {
		t.Errorf("cold fetch latency %d", lat)
	}
	if lat := h.InstAccess(pc); lat != cfg.L1I.Latency {
		t.Errorf("warm fetch latency %d, want %d", lat, cfg.L1I.Latency)
	}
}

func TestHierarchyPrefetchHidesStrideLatency(t *testing.T) {
	cfg := DefaultHierarchyConfig()
	h := NewHierarchy(cfg)
	misses := 0
	for i := uint64(0); i < 64; i++ {
		lat := h.DataAccess(0x40, 0x100000+i*64)
		if lat > cfg.L1D.Latency {
			misses++
		}
	}
	// Without prefetching every access is a cold miss (64 distinct
	// lines); with it the tail of the stream must hit.
	if misses > 16 {
		t.Errorf("stride stream saw %d slow accesses; prefetcher ineffective", misses)
	}
}

func TestHierarchyFlush(t *testing.T) {
	h := NewHierarchy(DefaultHierarchyConfig())
	h.DataAccess(0x40, 0x1234)
	h.Flush()
	if h.L1D.Peek(0x1234) {
		t.Error("L1D line survived hierarchy flush")
	}
	if h.L1D.Stats().Hits+h.L1D.Stats().Misses == 0 {
		t.Error("stats should persist across Flush (they describe the run)")
	}
}

// Property: a filled line is always resident until an eviction, for
// arbitrary addresses.
func TestCacheFillPeekProperty(t *testing.T) {
	c := NewCache(CacheConfig{Name: "t", SizeBytes: 1 << 14, LineBytes: 64, Ways: 4, Latency: 1})
	err := quick.Check(func(addr uint64) bool {
		c.Fill(addr)
		return c.Peek(addr)
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Error(err)
	}
}

// Property: TLB accesses to the same page back-to-back always hit the
// second time.
func TestTLBSamePageProperty(t *testing.T) {
	tlb := NewTLB(DefaultTLBConfig())
	err := quick.Check(func(addr uint64, off uint16) bool {
		tlb.Access(addr)
		page := addr &^ 4095
		return tlb.Access(page|uint64(off)&4095) == 0
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Error(err)
	}
}
