// Package mem models the baseline core's memory system (paper Table
// III): a sparse backing memory with deterministic contents, a
// three-level cache hierarchy with 64B/128B lines, a 512-entry 8-way
// TLB, and a stride-based hardware prefetcher.
//
// The backing memory doubles as the architectural memory image for the
// synthetic workloads: generators write program data through it and read
// load values from it, so that address-predicting value predictors
// (SAP, CAP) — which obtain speculative values by probing the data cache
// at a predicted address — observe values consistent with what the loads
// themselves return.
package mem

import (
	"math/bits"
	"sort"
)

// Page geometry: 64KB pages of 8-byte words. Pages are the unit of
// materialization and of copying between images.
const (
	pageWordsLog = 13 // 8192 words = 64KB of data per page
	pageWords    = 1 << pageWordsLog
	pageWordMask = pageWords - 1

	// arenaChunkPages is how many pages one arena chunk holds. Pages are
	// handed out from chunks so a growing image performs one allocation
	// per chunk, not one per page, and page pointers stay stable (chunks
	// are never reallocated, only appended).
	arenaChunkPages = 8
)

// page is one 64KB span of the image: fully materialized word contents
// plus a written-word bitmap. The words array always holds the correct
// current contents for every word in the page — unwritten words carry
// their deterministic fill values, installed when the page materializes
// — so reads are plain array loads with no per-word validity check. The
// bitmap exists only for Footprint accounting (distinct words written).
type page struct {
	words   [pageWords]uint64
	written [pageWords / 64]uint64
}

// Backing is a sparse, byte-addressable memory. Locations never written
// return a deterministic pseudo-random fill derived from the address and
// the seed, so "cold" data is stable across reads but uncorrelated
// between addresses (an unwritten region behaves like initialized,
// unpredictable program data).
//
// Storage is flat-paged: the image is a set of lazily-materialized 64KB
// pages found through an open-addressed page table with a last-page
// memo, replacing the former map[uint64]uint64 word store (one hashed
// map lookup per access) with a shift, a compare, and an indexed load on
// the hot path.
type Backing struct {
	seed uint64

	// Open-addressed page table: keys holds pageNum+1 (0 = empty slot),
	// pages the corresponding page pointers. Power-of-two sized, grown
	// at 3/4 load.
	keys  []uint64
	pages []*page
	used  int

	// Last-page memo: the vast majority of accesses touch the same page
	// as their predecessor.
	memoKey  uint64 // pageNum+1, 0 = no memo
	memoPage *page

	// Arena: pages are carved out of append-only chunks. nAlloc counts
	// pages handed out; resetting it recycles every chunk's storage.
	chunks [][]page
	nAlloc int

	footprint int // distinct words written (Footprint)
}

// NewBacking returns an empty backing memory with the given fill seed.
func NewBacking(seed uint64) *Backing {
	return &Backing{seed: seed}
}

// fill produces the deterministic contents of an unwritten 8-byte word.
func (b *Backing) fill(wordIdx uint64) uint64 {
	z := wordIdx*0x9E3779B97F4A7C15 + b.seed
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// pageFor returns the materialized page holding wordIdx, or nil when
// the page has never been written.
func (b *Backing) pageFor(wordIdx uint64) *page {
	key := (wordIdx >> pageWordsLog) + 1
	if key == b.memoKey {
		return b.memoPage
	}
	if b.used == 0 {
		return nil
	}
	mask := uint64(len(b.keys) - 1)
	for slot := mix64(key) & mask; ; slot = (slot + 1) & mask {
		switch b.keys[slot] {
		case key:
			b.memoKey, b.memoPage = key, b.pages[slot]
			return b.memoPage
		case 0:
			return nil
		}
	}
}

// ensurePage returns the page holding wordIdx, materializing it (every
// word set to its fill value) on first touch.
func (b *Backing) ensurePage(wordIdx uint64) *page {
	if p := b.pageFor(wordIdx); p != nil {
		return p
	}
	p := b.newPage()
	base := wordIdx &^ uint64(pageWordMask)
	for i := range p.words {
		p.words[i] = b.fill(base + uint64(i))
	}
	key := (wordIdx >> pageWordsLog) + 1
	b.insert(key, p)
	b.memoKey, b.memoPage = key, p
	return p
}

// newPage hands out the next arena page (recycled after a reset, so
// the written bitmap is cleared here; callers overwrite every word).
func (b *Backing) newPage() *page {
	ci, idx := b.nAlloc/arenaChunkPages, b.nAlloc%arenaChunkPages
	if ci == len(b.chunks) {
		b.chunks = append(b.chunks, make([]page, arenaChunkPages))
	}
	p := &b.chunks[ci][idx]
	b.nAlloc++
	p.written = [pageWords / 64]uint64{}
	return p
}

// insert adds (key, p) to the page table, growing it as needed.
func (b *Backing) insert(key uint64, p *page) {
	if 4*(b.used+1) > 3*len(b.keys) {
		b.grow()
	}
	mask := uint64(len(b.keys) - 1)
	slot := mix64(key) & mask
	for b.keys[slot] != 0 {
		slot = (slot + 1) & mask
	}
	b.keys[slot] = key
	b.pages[slot] = p
	b.used++
}

func (b *Backing) grow() {
	n := 2 * len(b.keys)
	if n < 16 {
		n = 16
	}
	oldKeys, oldPages := b.keys, b.pages
	b.keys = make([]uint64, n)
	b.pages = make([]*page, n)
	mask := uint64(n - 1)
	for i, k := range oldKeys {
		if k == 0 {
			continue
		}
		slot := mix64(k) & mask
		for b.keys[slot] != 0 {
			slot = (slot + 1) & mask
		}
		b.keys[slot] = k
		b.pages[slot] = oldPages[i]
	}
}

// mix64 scrambles page-table keys (splitmix64 finalizer).
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// word returns the current contents of the 8-byte word containing addr.
func (b *Backing) word(wordIdx uint64) uint64 {
	if p := b.pageFor(wordIdx); p != nil {
		return p.words[wordIdx&pageWordMask]
	}
	return b.fill(wordIdx)
}

// Read returns size bytes at addr, zero-extended, little-endian. Reads
// may straddle an 8-byte word boundary. The access touches at most two
// words rather than one per byte; a word in a materialized page is a
// single indexed load.
func (b *Backing) Read(addr uint64, size uint8) uint64 {
	if size == 0 || size > 8 {
		size = 8
	}
	w0 := addr >> 3
	off := (addr & 7) * 8
	nbits := uint64(size) * 8
	v := b.word(w0) >> off
	if off+nbits > 64 {
		v |= b.word(w0+1) << (64 - off)
	}
	if nbits < 64 {
		v &= (uint64(1) << nbits) - 1
	}
	return v
}

// setWord stores a full word, materializing its page and maintaining
// the footprint count.
func (b *Backing) setWord(wordIdx, val uint64) {
	p := b.ensurePage(wordIdx)
	i := wordIdx & pageWordMask
	p.words[i] = val
	if bit := uint64(1) << (i & 63); p.written[i>>6]&bit == 0 {
		p.written[i>>6] |= bit
		b.footprint++
	}
}

// Write stores the low size bytes of val at addr, little-endian,
// touching at most two words.
func (b *Backing) Write(addr uint64, size uint8, val uint64) {
	if size == 0 || size > 8 {
		size = 8
	}
	w0 := addr >> 3
	off := (addr & 7) * 8
	nbits := uint64(size) * 8
	if nbits < 64 {
		val &= (uint64(1) << nbits) - 1
	}
	n0 := nbits // bits landing in the first word
	if n0 > 64-off {
		n0 = 64 - off
	}
	mask0 := ^uint64(0)
	if n0 < 64 {
		mask0 = (uint64(1) << n0) - 1
	}
	b.setWord(w0, b.word(w0)&^(mask0<<off)|(val&mask0)<<off)
	if rem := nbits - n0; rem > 0 {
		maskR := (uint64(1) << rem) - 1
		b.setWord(w0+1, b.word(w0+1)&^maskR|(val>>n0)&maskR)
	}
}

// Footprint reports the number of 8-byte words explicitly written.
func (b *Backing) Footprint() int { return b.footprint }

// Seed returns the fill seed: the value that determines the contents of
// every never-written word. Two backings with equal seeds and equal
// written words hold identical images.
func (b *Backing) Seed() uint64 { return b.seed }

// WrittenWords calls fn for every explicitly written word, in ascending
// word-index order, with the word's current contents. Together with
// Seed this is a complete serialization of the image: replaying the
// (wordIdx, val) pairs over NewBacking(Seed()) reconstructs it exactly.
// Trace ingestion uses this to embed a non-trivial start-of-run image
// in an artifact (a live synthetic workload starts with an empty
// footprint, but an external trace's pre-image does not).
func (b *Backing) WrittenWords(fn func(wordIdx, val uint64)) {
	type entry struct {
		base uint64
		p    *page
	}
	pages := make([]entry, 0, b.used)
	for i, k := range b.keys {
		if k != 0 {
			pages = append(pages, entry{base: (k - 1) << pageWordsLog, p: b.pages[i]})
		}
	}
	sort.Slice(pages, func(i, j int) bool { return pages[i].base < pages[j].base })
	for _, e := range pages {
		for wi, bm := range e.p.written {
			for bm != 0 {
				idx := uint64(wi)<<6 + uint64(bits.TrailingZeros64(bm))
				fn(e.base+idx, e.p.words[idx])
				bm &= bm - 1
			}
		}
	}
}

// Clone returns an independent copy sharing the same fill function.
// The simulator clones the workload's architectural memory so that its
// own copy (updated at store commit) can diverge from the generator's.
func (b *Backing) Clone() *Backing {
	c := &Backing{}
	c.CopyFrom(b)
	return c
}

// CopyFrom makes b an independent copy of src (seed and contents),
// reusing b's page storage — the allocation-free counterpart of Clone
// for pooled pipelines. Copying is page-granular: one table copy plus
// one 64KB memcpy per materialized page, instead of the former per-word
// map rebuild.
func (b *Backing) CopyFrom(src *Backing) {
	b.seed = src.seed
	b.footprint = src.footprint
	b.memoKey, b.memoPage = 0, nil
	b.nAlloc = 0
	b.used = 0
	// Rebuild into b's existing table when it is at least as large as
	// src's: a pooled image that grew past its source (stores to pages
	// outside the workload image) keeps its capacity instead of
	// shrink-then-regrow reallocating every run.
	n := len(b.keys)
	if n < len(src.keys) {
		n = len(src.keys)
	}
	if len(b.keys) != n {
		b.keys = make([]uint64, n)
		b.pages = make([]*page, n)
	} else {
		clear(b.keys)
		for i := range b.pages {
			b.pages[i] = nil
		}
	}
	if n == 0 {
		return
	}
	mask := uint64(n - 1)
	for i, k := range src.keys {
		if k == 0 {
			continue
		}
		p := b.newPage()
		*p = *src.pages[i]
		slot := mix64(k) & mask
		for b.keys[slot] != 0 {
			slot = (slot + 1) & mask
		}
		b.keys[slot] = k
		b.pages[slot] = p
		b.used++
	}
}

// Reset discards all written data, keeping table and arena storage for
// reuse.
func (b *Backing) Reset() {
	clear(b.keys)
	for i := range b.pages {
		b.pages[i] = nil
	}
	b.used = 0
	b.memoKey, b.memoPage = 0, nil
	b.footprint = 0
	b.nAlloc = 0
}

// PageCount reports the number of materialized 64KB pages (for memory
// accounting in tests and tools).
func (b *Backing) PageCount() int { return b.used }
