// Package mem models the baseline core's memory system (paper Table
// III): a sparse backing memory with deterministic contents, a
// three-level cache hierarchy with 64B/128B lines, a 512-entry 8-way
// TLB, and a stride-based hardware prefetcher.
//
// The backing memory doubles as the architectural memory image for the
// synthetic workloads: generators write program data through it and read
// load values from it, so that address-predicting value predictors
// (SAP, CAP) — which obtain speculative values by probing the data cache
// at a predicted address — observe values consistent with what the loads
// themselves return.
package mem

// Backing is a sparse, byte-addressable memory. Locations never written
// return a deterministic pseudo-random fill derived from the address and
// the seed, so "cold" data is stable across reads but uncorrelated
// between addresses (an unwritten region behaves like initialized,
// unpredictable program data).
type Backing struct {
	words map[uint64]uint64 // keyed by addr >> 3
	seed  uint64
}

// NewBacking returns an empty backing memory with the given fill seed.
func NewBacking(seed uint64) *Backing {
	return &Backing{words: make(map[uint64]uint64), seed: seed}
}

// fill produces the deterministic contents of an unwritten 8-byte word.
func (b *Backing) fill(wordIdx uint64) uint64 {
	z := wordIdx*0x9E3779B97F4A7C15 + b.seed
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// word returns the current contents of the 8-byte word containing addr.
func (b *Backing) word(wordIdx uint64) uint64 {
	if w, ok := b.words[wordIdx]; ok {
		return w
	}
	return b.fill(wordIdx)
}

// Read returns size bytes at addr, zero-extended, little-endian. Reads
// may straddle an 8-byte word boundary. The access touches at most two
// words (one or two map lookups) rather than one per byte.
func (b *Backing) Read(addr uint64, size uint8) uint64 {
	if size == 0 || size > 8 {
		size = 8
	}
	w0 := addr >> 3
	off := (addr & 7) * 8
	nbits := uint64(size) * 8
	v := b.word(w0) >> off
	if off+nbits > 64 {
		v |= b.word(w0+1) << (64 - off)
	}
	if nbits < 64 {
		v &= (uint64(1) << nbits) - 1
	}
	return v
}

// Write stores the low size bytes of val at addr, little-endian,
// touching at most two words.
func (b *Backing) Write(addr uint64, size uint8, val uint64) {
	if size == 0 || size > 8 {
		size = 8
	}
	w0 := addr >> 3
	off := (addr & 7) * 8
	nbits := uint64(size) * 8
	if nbits < 64 {
		val &= (uint64(1) << nbits) - 1
	}
	n0 := nbits // bits landing in the first word
	if n0 > 64-off {
		n0 = 64 - off
	}
	mask0 := ^uint64(0)
	if n0 < 64 {
		mask0 = (uint64(1) << n0) - 1
	}
	b.words[w0] = b.word(w0)&^(mask0<<off) | (val&mask0)<<off
	if rem := nbits - n0; rem > 0 {
		maskR := (uint64(1) << rem) - 1
		b.words[w0+1] = b.word(w0+1)&^maskR | (val>>n0)&maskR
	}
}

// Footprint reports the number of 8-byte words explicitly written.
func (b *Backing) Footprint() int { return len(b.words) }

// Clone returns an independent copy sharing the same fill function.
// The simulator clones the workload's architectural memory so that its
// own copy (updated at store commit) can diverge from the generator's.
func (b *Backing) Clone() *Backing {
	c := &Backing{words: make(map[uint64]uint64, len(b.words)), seed: b.seed}
	for k, v := range b.words {
		c.words[k] = v
	}
	return c
}

// CopyFrom makes b an independent copy of src (seed and contents),
// reusing b's map storage — the allocation-free counterpart of Clone
// for pooled pipelines.
func (b *Backing) CopyFrom(src *Backing) {
	b.seed = src.seed
	clear(b.words)
	for k, v := range src.words {
		b.words[k] = v
	}
}

// Reset discards all written data.
func (b *Backing) Reset() { clear(b.words) }
