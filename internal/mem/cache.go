package mem

import "math/bits"

// CacheConfig describes one cache level.
type CacheConfig struct {
	Name      string
	SizeBytes int
	LineBytes int
	Ways      int
	Latency   int // access latency in cycles on a hit at this level
}

// CacheStats counts accesses per cache.
type CacheStats struct {
	Hits      uint64
	Misses    uint64
	Fills     uint64
	Evictions uint64
}

// Accesses returns hits + misses.
func (s CacheStats) Accesses() uint64 { return s.Hits + s.Misses }

// HitRate returns the hit fraction, or 1 for an untouched cache.
func (s CacheStats) HitRate() float64 {
	if s.Accesses() == 0 {
		return 1
	}
	return float64(s.Hits) / float64(s.Accesses())
}

// cacheLine is one way of one set. A line is valid when its gen matches
// the cache's current generation: Flush invalidates the whole cache by
// bumping the generation instead of clearing every line (the L3 alone
// is 64K lines, a 1.5MB memclr per pooled-pipeline reset).
type cacheLine struct {
	gen     uint64
	tag     uint64
	lastUse uint64
}

// Cache is a set-associative cache with true-LRU replacement. Only tags
// are modeled; data always comes from the backing memory (the hierarchy
// model determines latency, not contents). Lines are stored flat (set-
// major), not as per-set slices: one indexed sub-slice per access
// instead of a pointer chase.
type Cache struct {
	cfg      CacheConfig
	lines    []cacheLine // nSets × Ways, set-major
	ways     int
	setShift uint
	setMask  uint64
	tagShift uint
	gen      uint64
	clock    uint64
	stats    CacheStats

	// Last-hit memo: consecutive accesses to the same line (the common
	// case for the fetch stream and clustered data) skip the set scan.
	// A memo hit replays the scan's exact side effects — clock tick, LRU
	// refresh of the (unique) matching way, hit count — so behavior is
	// bit-identical to scanning. Only Fill mutates tags, so Fill and
	// Flush are the only invalidation points.
	memoLine uint64
	memoWay  *cacheLine
}

// NewCache builds a cache from cfg. Size, line size and ways must yield
// a power-of-two set count.
func NewCache(cfg CacheConfig) *Cache {
	if cfg.LineBytes <= 0 || cfg.Ways <= 0 || cfg.SizeBytes <= 0 {
		panic("mem: invalid cache geometry")
	}
	if cfg.SizeBytes%(cfg.LineBytes*cfg.Ways) != 0 {
		panic("mem: cache size must be a multiple of line size × ways")
	}
	nSets := cfg.SizeBytes / cfg.LineBytes / cfg.Ways
	if nSets == 0 || nSets&(nSets-1) != 0 {
		panic("mem: cache set count must be a positive power of two")
	}
	return &Cache{
		cfg:      cfg,
		lines:    make([]cacheLine, nSets*cfg.Ways),
		ways:     cfg.Ways,
		setShift: uint(bits.TrailingZeros(uint(cfg.LineBytes))),
		setMask:  uint64(nSets - 1),
		tagShift: uint(bits.Len64(uint64(nSets - 1))),
		gen:      1, // zero-valued lines are invalid
	}
}

// Config returns the cache's configuration.
func (c *Cache) Config() CacheConfig { return c.cfg }

// Stats returns a snapshot of the cache's counters.
func (c *Cache) Stats() CacheStats { return c.stats }

// set returns the ways of addr's set and the line tag.
func (c *Cache) set(addr uint64) ([]cacheLine, uint64) {
	line := addr >> c.setShift
	base := int(line&c.setMask) * c.ways
	return c.lines[base : base+c.ways], line >> c.tagShift
}

// Lookup probes the cache without allocating on a miss. It updates LRU
// state and hit/miss counters.
func (c *Cache) Lookup(addr uint64) bool {
	c.clock++
	if addr>>c.setShift == c.memoLine && c.memoWay != nil {
		c.memoWay.lastUse = c.clock
		c.stats.Hits++
		return true
	}
	set, tag := c.set(addr)
	for w := range set {
		l := &set[w]
		if l.gen == c.gen && l.tag == tag {
			l.lastUse = c.clock
			c.stats.Hits++
			c.memoLine, c.memoWay = addr>>c.setShift, l
			return true
		}
	}
	c.stats.Misses++
	return false
}

// Peek reports whether addr is resident without disturbing LRU state or
// counters (used by the PAQ probe model and by tests).
func (c *Cache) Peek(addr uint64) bool {
	if addr>>c.setShift == c.memoLine && c.memoWay != nil {
		return true
	}
	set, tag := c.set(addr)
	for w := range set {
		if set[w].gen == c.gen && set[w].tag == tag {
			return true
		}
	}
	return false
}

// Fill installs the line containing addr, evicting the LRU way if
// needed. Filling an already-resident line just refreshes its LRU
// position.
func (c *Cache) Fill(addr uint64) {
	c.clock++
	set, tag := c.set(addr)
	victim := 0
	for w := range set {
		l := &set[w]
		if l.gen == c.gen && l.tag == tag {
			l.lastUse = c.clock
			return
		}
		if l.gen != c.gen {
			victim = w
			break
		}
		if l.lastUse < set[victim].lastUse {
			victim = w
		}
	}
	if set[victim].gen == c.gen {
		c.stats.Evictions++
	}
	set[victim] = cacheLine{gen: c.gen, tag: tag, lastUse: c.clock}
	c.stats.Fills++
	c.memoWay = nil // the victim may have been the memoized way
}

// Flush invalidates the entire cache (constant-time: the line
// generation advances past every resident line).
func (c *Cache) Flush() {
	c.gen++
	c.clock = 0
	c.memoWay = nil
}

// Reset flushes the cache and zeroes its statistics, restoring the
// just-constructed state.
func (c *Cache) Reset() {
	c.Flush()
	c.stats = CacheStats{}
}
