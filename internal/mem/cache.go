package mem

import "math/bits"

// CacheConfig describes one cache level.
type CacheConfig struct {
	Name      string
	SizeBytes int
	LineBytes int
	Ways      int
	Latency   int // access latency in cycles on a hit at this level
}

// CacheStats counts accesses per cache.
type CacheStats struct {
	Hits      uint64
	Misses    uint64
	Fills     uint64
	Evictions uint64
}

// Accesses returns hits + misses.
func (s CacheStats) Accesses() uint64 { return s.Hits + s.Misses }

// HitRate returns the hit fraction, or 1 for an untouched cache.
func (s CacheStats) HitRate() float64 {
	if s.Accesses() == 0 {
		return 1
	}
	return float64(s.Hits) / float64(s.Accesses())
}

type cacheLine struct {
	valid   bool
	tag     uint64
	lastUse uint64
}

// Cache is a set-associative cache with true-LRU replacement. Only tags
// are modeled; data always comes from the backing memory (the hierarchy
// model determines latency, not contents).
type Cache struct {
	cfg      CacheConfig
	sets     [][]cacheLine
	setShift uint
	setMask  uint64
	clock    uint64
	stats    CacheStats
}

// NewCache builds a cache from cfg. Size, line size and ways must yield
// a power-of-two set count.
func NewCache(cfg CacheConfig) *Cache {
	if cfg.LineBytes <= 0 || cfg.Ways <= 0 || cfg.SizeBytes <= 0 {
		panic("mem: invalid cache geometry")
	}
	if cfg.SizeBytes%(cfg.LineBytes*cfg.Ways) != 0 {
		panic("mem: cache size must be a multiple of line size × ways")
	}
	nSets := cfg.SizeBytes / cfg.LineBytes / cfg.Ways
	if nSets == 0 || nSets&(nSets-1) != 0 {
		panic("mem: cache set count must be a positive power of two")
	}
	c := &Cache{
		cfg:      cfg,
		sets:     make([][]cacheLine, nSets),
		setShift: uint(bits.TrailingZeros(uint(cfg.LineBytes))),
		setMask:  uint64(nSets - 1),
	}
	for i := range c.sets {
		c.sets[i] = make([]cacheLine, cfg.Ways)
	}
	return c
}

// Config returns the cache's configuration.
func (c *Cache) Config() CacheConfig { return c.cfg }

// Stats returns a snapshot of the cache's counters.
func (c *Cache) Stats() CacheStats { return c.stats }

func (c *Cache) indexTag(addr uint64) (int, uint64) {
	line := addr >> c.setShift
	return int(line & c.setMask), line >> uint(bits.Len64(c.setMask))
}

// Lookup probes the cache without allocating on a miss. It updates LRU
// state and hit/miss counters.
func (c *Cache) Lookup(addr uint64) bool {
	c.clock++
	idx, tag := c.indexTag(addr)
	for w := range c.sets[idx] {
		l := &c.sets[idx][w]
		if l.valid && l.tag == tag {
			l.lastUse = c.clock
			c.stats.Hits++
			return true
		}
	}
	c.stats.Misses++
	return false
}

// Peek reports whether addr is resident without disturbing LRU state or
// counters (used by the PAQ probe model and by tests).
func (c *Cache) Peek(addr uint64) bool {
	idx, tag := c.indexTag(addr)
	for w := range c.sets[idx] {
		l := &c.sets[idx][w]
		if l.valid && l.tag == tag {
			return true
		}
	}
	return false
}

// Fill installs the line containing addr, evicting the LRU way if
// needed. Filling an already-resident line just refreshes its LRU
// position.
func (c *Cache) Fill(addr uint64) {
	c.clock++
	idx, tag := c.indexTag(addr)
	victim := 0
	for w := range c.sets[idx] {
		l := &c.sets[idx][w]
		if l.valid && l.tag == tag {
			l.lastUse = c.clock
			return
		}
		if !l.valid {
			victim = w
			break
		}
		if l.lastUse < c.sets[idx][victim].lastUse {
			victim = w
		}
	}
	if c.sets[idx][victim].valid {
		c.stats.Evictions++
	}
	c.sets[idx][victim] = cacheLine{valid: true, tag: tag, lastUse: c.clock}
	c.stats.Fills++
}

// Flush invalidates the entire cache.
func (c *Cache) Flush() {
	for i := range c.sets {
		clear(c.sets[i])
	}
	c.clock = 0
}

// Reset flushes the cache and zeroes its statistics, restoring the
// just-constructed state.
func (c *Cache) Reset() {
	c.Flush()
	c.stats = CacheStats{}
}
