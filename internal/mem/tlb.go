package mem

// TLBConfig describes the translation lookaside buffer (Table III:
// 512-entry, 8-way set-associative).
type TLBConfig struct {
	Entries     int
	Ways        int
	PageBytes   int
	WalkLatency int // page-walk penalty on a miss, in cycles
}

// DefaultTLBConfig returns the baseline core's TLB parameters.
func DefaultTLBConfig() TLBConfig {
	return TLBConfig{Entries: 512, Ways: 8, PageBytes: 4096, WalkLatency: 24}
}

// tlbEntry is valid when its gen matches the TLB's current generation
// (same constant-time-flush scheme as cacheLine).
type tlbEntry struct {
	gen     uint64
	tag     uint64
	lastUse uint64
}

// TLB is a set-associative translation lookaside buffer. As with the
// caches, only residency and latency are modeled; the simulator uses
// virtual addresses throughout. Entries are stored flat (set-major).
type TLB struct {
	cfg      TLBConfig
	entries  []tlbEntry // nSets × Ways, set-major
	ways     int
	setMask  uint64
	shift    uint
	tagShift uint
	gen      uint64
	clock    uint64
	stats    CacheStats

	// Last-hit memo (same exact-replay scheme as Cache.Lookup's): only
	// the miss-install path mutates entries, so it is the only
	// invalidation point besides Flush.
	memoPage  uint64
	memoEntry *tlbEntry
}

// NewTLB builds a TLB from cfg.
func NewTLB(cfg TLBConfig) *TLB {
	nSets := cfg.Entries / cfg.Ways
	if nSets <= 0 || nSets&(nSets-1) != 0 {
		panic("mem: TLB set count must be a positive power of two")
	}
	shift := uint(0)
	for (1 << shift) < cfg.PageBytes {
		shift++
	}
	return &TLB{
		cfg:      cfg,
		entries:  make([]tlbEntry, nSets*cfg.Ways),
		ways:     cfg.Ways,
		setMask:  uint64(nSets - 1),
		shift:    shift,
		tagShift: uint(len64(uint64(nSets - 1))),
		gen:      1, // zero-valued entries are invalid
	}
}

// Stats returns hit/miss counters.
func (t *TLB) Stats() CacheStats { return t.stats }

// Access translates addr: it returns the added latency (zero on a hit,
// the walk penalty on a miss) and installs the translation.
func (t *TLB) Access(addr uint64) int {
	t.clock++
	page := addr >> t.shift
	if page == t.memoPage && t.memoEntry != nil {
		t.memoEntry.lastUse = t.clock
		t.stats.Hits++
		return 0
	}
	base := int(page&t.setMask) * t.ways
	set := t.entries[base : base+t.ways]
	tag := page >> t.tagShift
	victim := 0
	for w := range set {
		e := &set[w]
		if e.gen == t.gen && e.tag == tag {
			e.lastUse = t.clock
			t.stats.Hits++
			t.memoPage, t.memoEntry = page, e
			return 0
		}
		if e.gen != t.gen {
			victim = w
		} else if set[victim].gen == t.gen && e.lastUse < set[victim].lastUse {
			victim = w
		}
	}
	t.stats.Misses++
	if set[victim].gen == t.gen {
		t.stats.Evictions++
	}
	set[victim] = tlbEntry{gen: t.gen, tag: tag, lastUse: t.clock}
	t.stats.Fills++
	t.memoEntry = nil // the victim may have been the memoized entry
	return t.cfg.WalkLatency
}

// Flush invalidates all translations (constant-time generation bump).
func (t *TLB) Flush() {
	t.gen++
	t.memoEntry = nil
}

// Reset flushes the TLB and zeroes its statistics, restoring the
// just-constructed state.
func (t *TLB) Reset() {
	t.Flush()
	t.clock = 0
	t.stats = CacheStats{}
}

func len64(v uint64) int {
	n := 0
	for v != 0 {
		v >>= 1
		n++
	}
	return n
}
