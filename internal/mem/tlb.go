package mem

// TLBConfig describes the translation lookaside buffer (Table III:
// 512-entry, 8-way set-associative).
type TLBConfig struct {
	Entries     int
	Ways        int
	PageBytes   int
	WalkLatency int // page-walk penalty on a miss, in cycles
}

// DefaultTLBConfig returns the baseline core's TLB parameters.
func DefaultTLBConfig() TLBConfig {
	return TLBConfig{Entries: 512, Ways: 8, PageBytes: 4096, WalkLatency: 24}
}

type tlbEntry struct {
	valid   bool
	tag     uint64
	lastUse uint64
}

// TLB is a set-associative translation lookaside buffer. As with the
// caches, only residency and latency are modeled; the simulator uses
// virtual addresses throughout.
type TLB struct {
	cfg     TLBConfig
	sets    [][]tlbEntry
	setMask uint64
	shift   uint
	clock   uint64
	stats   CacheStats
}

// NewTLB builds a TLB from cfg.
func NewTLB(cfg TLBConfig) *TLB {
	nSets := cfg.Entries / cfg.Ways
	if nSets <= 0 || nSets&(nSets-1) != 0 {
		panic("mem: TLB set count must be a positive power of two")
	}
	shift := uint(0)
	for (1 << shift) < cfg.PageBytes {
		shift++
	}
	t := &TLB{cfg: cfg, sets: make([][]tlbEntry, nSets), setMask: uint64(nSets - 1), shift: shift}
	for i := range t.sets {
		t.sets[i] = make([]tlbEntry, cfg.Ways)
	}
	return t
}

// Stats returns hit/miss counters.
func (t *TLB) Stats() CacheStats { return t.stats }

// Access translates addr: it returns the added latency (zero on a hit,
// the walk penalty on a miss) and installs the translation.
func (t *TLB) Access(addr uint64) int {
	t.clock++
	page := addr >> t.shift
	idx := int(page & t.setMask)
	tag := page >> uint(len64(t.setMask))
	victim := 0
	for w := range t.sets[idx] {
		e := &t.sets[idx][w]
		if e.valid && e.tag == tag {
			e.lastUse = t.clock
			t.stats.Hits++
			return 0
		}
		if !e.valid {
			victim = w
		} else if t.sets[idx][victim].valid && e.lastUse < t.sets[idx][victim].lastUse {
			victim = w
		}
	}
	t.stats.Misses++
	if t.sets[idx][victim].valid {
		t.stats.Evictions++
	}
	t.sets[idx][victim] = tlbEntry{valid: true, tag: tag, lastUse: t.clock}
	t.stats.Fills++
	return t.cfg.WalkLatency
}

// Flush invalidates all translations.
func (t *TLB) Flush() {
	for i := range t.sets {
		clear(t.sets[i])
	}
}

// Reset flushes the TLB and zeroes its statistics, restoring the
// just-constructed state.
func (t *TLB) Reset() {
	t.Flush()
	t.stats = CacheStats{}
}

func len64(v uint64) int {
	n := 0
	for v != 0 {
		v >>= 1
		n++
	}
	return n
}
