package mem

// StridePrefetcher is the baseline core's stride-based hardware data
// prefetcher (Table III). It keeps a small PC-indexed table of recent
// load addresses; when a load PC exhibits a stable line-granular stride,
// the prefetcher requests the next few lines ahead of the demand stream.
type StridePrefetcher struct {
	entries  []pfEntry
	mask     uint64
	tagShift uint
	degree   int
	stats    PrefetchStats
	out      []uint64 // reused Observe result buffer
}

type pfEntry struct {
	valid    bool
	tag      uint32
	lastAddr uint64
	stride   int64
	conf     uint8
}

// PrefetchStats counts prefetcher activity.
type PrefetchStats struct {
	Issued uint64
}

// NewStridePrefetcher builds a prefetcher with a power-of-two entry
// table and the given prefetch degree (lines fetched ahead).
func NewStridePrefetcher(entries, degree int) *StridePrefetcher {
	if entries <= 0 || entries&(entries-1) != 0 {
		panic("mem: prefetcher entries must be a positive power of two")
	}
	if degree < 1 {
		degree = 1
	}
	return &StridePrefetcher{
		entries:  make([]pfEntry, entries),
		mask:     uint64(entries - 1),
		tagShift: uint(len64(uint64(entries - 1))),
		degree:   degree,
		out:      make([]uint64, 0, degree),
	}
}

// Stats returns the prefetcher counters.
func (p *StridePrefetcher) Stats() PrefetchStats { return p.stats }

// Observe trains on a demand access and returns the addresses to
// prefetch (possibly none). The caller fills those lines into the cache
// hierarchy. The returned slice is reused by the next Observe call and
// must be consumed before then.
func (p *StridePrefetcher) Observe(pc, addr uint64) []uint64 {
	idx := (pc >> 2) & p.mask
	tag := uint32(pc >> 2 >> p.tagShift)
	e := &p.entries[idx]
	if !e.valid || e.tag != tag {
		*e = pfEntry{valid: true, tag: tag, lastAddr: addr}
		return nil
	}
	stride := int64(addr) - int64(e.lastAddr)
	switch {
	case stride == e.stride && stride != 0:
		if e.conf < 3 {
			e.conf++
		}
	case stride == 0:
		// Repeated address: neither confirm nor break the stride.
	default:
		e.stride = stride
		e.conf = 0
	}
	e.lastAddr = addr
	if e.conf < 2 || e.stride == 0 {
		return nil
	}
	out := p.out[:0]
	for i := 1; i <= p.degree; i++ {
		out = append(out, uint64(int64(addr)+e.stride*int64(i)))
	}
	p.out = out
	p.stats.Issued += uint64(len(out))
	return out
}

// Reset clears all prefetcher state.
func (p *StridePrefetcher) Reset() {
	clear(p.entries)
	p.stats = PrefetchStats{}
}
