package mem

import (
	"math/rand"
	"testing"
)

// mapBacking is the original map-backed implementation, kept verbatim
// as the reference model for differential testing: the flat-page
// Backing must be observationally identical to it (reads, footprint,
// straddling behavior, cold-fill values).
type mapBacking struct {
	words map[uint64]uint64
	seed  uint64
}

func newMapBacking(seed uint64) *mapBacking {
	return &mapBacking{words: make(map[uint64]uint64), seed: seed}
}

func (b *mapBacking) fill(wordIdx uint64) uint64 {
	z := wordIdx*0x9E3779B97F4A7C15 + b.seed
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (b *mapBacking) word(wordIdx uint64) uint64 {
	if w, ok := b.words[wordIdx]; ok {
		return w
	}
	return b.fill(wordIdx)
}

func (b *mapBacking) Read(addr uint64, size uint8) uint64 {
	if size == 0 || size > 8 {
		size = 8
	}
	w0 := addr >> 3
	off := (addr & 7) * 8
	nbits := uint64(size) * 8
	v := b.word(w0) >> off
	if off+nbits > 64 {
		v |= b.word(w0+1) << (64 - off)
	}
	if nbits < 64 {
		v &= (uint64(1) << nbits) - 1
	}
	return v
}

func (b *mapBacking) Write(addr uint64, size uint8, val uint64) {
	if size == 0 || size > 8 {
		size = 8
	}
	w0 := addr >> 3
	off := (addr & 7) * 8
	nbits := uint64(size) * 8
	if nbits < 64 {
		val &= (uint64(1) << nbits) - 1
	}
	n0 := nbits
	if n0 > 64-off {
		n0 = 64 - off
	}
	mask0 := ^uint64(0)
	if n0 < 64 {
		mask0 = (uint64(1) << n0) - 1
	}
	b.words[w0] = b.word(w0)&^(mask0<<off) | (val&mask0)<<off
	if rem := nbits - n0; rem > 0 {
		maskR := (uint64(1) << rem) - 1
		b.words[w0+1] = b.word(w0+1)&^maskR | (val>>n0)&maskR
	}
}

func (b *mapBacking) Footprint() int { return len(b.words) }

// pageBytes is the page data span in bytes, for boundary arithmetic in
// the tests below.
const pageBytes = pageWords * 8

// TestBackingPageBoundaryStraddles exercises reads and writes that
// straddle word boundaries exactly at page edges, where the two words
// of one access live in different pages (including one materialized,
// one cold).
func TestBackingPageBoundaryStraddles(t *testing.T) {
	for _, base := range []uint64{pageBytes, 3 * pageBytes, 7 * pageBytes} {
		b := NewBacking(0xFEED)
		ref := newMapBacking(0xFEED)
		// Straddle the boundary: 4 bytes before, 4 after.
		addr := base - 4
		b.Write(addr, 8, 0x1122334455667788)
		ref.Write(addr, 8, 0x1122334455667788)
		for sz := uint8(1); sz <= 8; sz++ {
			for d := uint64(0); d < 16; d++ {
				a := base - 8 + d
				if got, want := b.Read(a, sz), ref.Read(a, sz); got != want {
					t.Fatalf("base %#x read(%#x,%d) = %#x, want %#x", base, a, sz, got, want)
				}
			}
		}
		if b.Footprint() != ref.Footprint() {
			t.Fatalf("footprint %d != ref %d", b.Footprint(), ref.Footprint())
		}
		// Write only into the cold side; the warm side must be untouched.
		b.Write(base+pageBytes, 2, 0xBEEF)
		ref.Write(base+pageBytes, 2, 0xBEEF)
		if got, want := b.Read(base-8, 8), ref.Read(base-8, 8); got != want {
			t.Fatalf("warm side disturbed: %#x != %#x", got, want)
		}
	}
}

// TestBackingColdFillMatchesReference checks that never-written words,
// in and out of materialized pages, return the reference fill.
func TestBackingColdFillMatchesReference(t *testing.T) {
	b := NewBacking(42)
	ref := newMapBacking(42)
	// Materialize one page with a single write…
	b.Write(pageBytes+8, 8, 7)
	ref.Write(pageBytes+8, 8, 7)
	// …then sample cold words inside that page and far outside it.
	addrs := []uint64{0, 8, pageBytes, pageBytes + 16, pageBytes + pageBytes/2,
		2*pageBytes - 8, 100 * pageBytes, 1 << 40}
	for _, a := range addrs {
		for _, sz := range []uint8{1, 2, 4, 8} {
			if got, want := b.Read(a, sz), ref.Read(a, sz); got != want {
				t.Fatalf("cold read(%#x,%d) = %#x, want %#x", a, sz, got, want)
			}
		}
	}
}

// TestBackingCopyFromAcrossPages checks CopyFrom with a multi-page
// source, including subsequent divergence of the two images.
func TestBackingCopyFromAcrossPages(t *testing.T) {
	src := NewBacking(9)
	for i := uint64(0); i < 5; i++ {
		src.Write(i*pageBytes+i*8, 8, i+1)
	}
	dst := NewBacking(1234) // different seed, existing contents
	dst.Write(99, 4, 0xAA)

	dst.CopyFrom(src)
	if dst.Footprint() != src.Footprint() {
		t.Fatalf("footprint %d != %d after CopyFrom", dst.Footprint(), src.Footprint())
	}
	for i := uint64(0); i < 5; i++ {
		if got := dst.Read(i*pageBytes+i*8, 8); got != i+1 {
			t.Fatalf("page %d: got %#x", i, got)
		}
	}
	// Cold fill must now follow src's seed.
	srcCold := src.Read(10*pageBytes, 8)
	if got := dst.Read(10*pageBytes, 8); got != srcCold {
		t.Fatalf("cold fill after CopyFrom = %#x, want %#x", got, srcCold)
	}
	// Divergence: writes to dst must not leak into src.
	dst.Write(0, 8, 0xD00D)
	if src.Read(0, 8) == 0xD00D {
		t.Fatal("CopyFrom aliased page storage")
	}
}

// TestBackingCopyFromReuse checks the pooled pattern: repeated CopyFrom
// into the same Backing from different sources stays correct as arena
// pages are recycled.
func TestBackingCopyFromReuse(t *testing.T) {
	dst := NewBacking(0)
	for round := uint64(1); round <= 4; round++ {
		src := NewBacking(round)
		ref := newMapBacking(round)
		for i := uint64(0); i < 3*round; i++ {
			a := i * (pageBytes / 2)
			src.Write(a, 8, round<<32|i)
			ref.Write(a, 8, round<<32|i)
		}
		dst.CopyFrom(src)
		for i := uint64(0); i < 3*round; i++ {
			a := i * (pageBytes / 2)
			if got, want := dst.Read(a, 8), ref.Read(a, 8); got != want {
				t.Fatalf("round %d read(%#x) = %#x, want %#x", round, a, got, want)
			}
		}
		if dst.Footprint() != ref.Footprint() {
			t.Fatalf("round %d footprint %d != %d", round, dst.Footprint(), ref.Footprint())
		}
	}
}

// TestBackingResetRecycles checks Reset drops contents and footprint
// while recycled pages do not leak prior data.
func TestBackingResetRecycles(t *testing.T) {
	b := NewBacking(5)
	ref := newMapBacking(5)
	b.Write(64, 8, ^uint64(0))
	b.Reset()
	if b.Footprint() != 0 {
		t.Fatalf("footprint %d after Reset", b.Footprint())
	}
	if got, want := b.Read(64, 8), ref.Read(64, 8); got != want {
		t.Fatalf("read after Reset = %#x, want cold fill %#x", got, want)
	}
	// Re-materializing the same page must behave like a fresh image.
	b.Write(72, 1, 3)
	ref.Write(72, 1, 3)
	if got, want := b.Read(64, 8), ref.Read(64, 8); got != want {
		t.Fatalf("neighbor word after recycle = %#x, want %#x", got, want)
	}
	if b.Footprint() != 1 {
		t.Fatalf("footprint %d after one word", b.Footprint())
	}
}

// TestBackingRandomDifferential drives the flat-page implementation and
// the map reference with an identical random operation stream and
// demands identical observations throughout.
func TestBackingRandomDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	b := NewBacking(0xABCDEF)
	ref := newMapBacking(0xABCDEF)
	// Mix tight clusters (page locality) with page starts and a bounded
	// far region; writes stay within the far region so the test bounds
	// how many pages it materializes, while reads also roam the full
	// 64-bit space (cold reads never materialize).
	randAddr := func() uint64 {
		switch rng.Intn(3) {
		case 0:
			return uint64(rng.Intn(4 * pageBytes))
		case 1:
			return uint64(rng.Intn(64)) * pageBytes // page starts
		default:
			return uint64(rng.Intn(1 << 22)) // 4MB far region
		}
	}
	for i := 0; i < 100_000; i++ {
		addr := randAddr()
		size := uint8(rng.Intn(10)) // includes 0 and 9 (clamped to 8)
		if rng.Intn(2) == 0 {
			v := rng.Uint64()
			b.Write(addr, size, v)
			ref.Write(addr, size, v)
		} else {
			if rng.Intn(8) == 0 {
				addr = rng.Uint64() >> uint(rng.Intn(24)) // roaming cold read
			}
			if got, want := b.Read(addr, size), ref.Read(addr, size); got != want {
				t.Fatalf("op %d: read(%#x,%d) = %#x, want %#x", i, addr, size, got, want)
			}
		}
	}
	if b.Footprint() != ref.Footprint() {
		t.Fatalf("footprint %d != ref %d", b.Footprint(), ref.Footprint())
	}
	// Clone equivalence on the final state.
	c := b.Clone()
	for i := 0; i < 10_000; i++ {
		addr := randAddr()
		if got, want := c.Read(addr, 8), ref.Read(addr, 8); got != want {
			t.Fatalf("clone read(%#x) = %#x, want %#x", addr, got, want)
		}
	}
}

// FuzzBackingReadWriteEquivalence fuzzes single write-then-read pairs
// against the map reference, covering straddles at arbitrary offsets.
func FuzzBackingReadWriteEquivalence(f *testing.F) {
	f.Add(uint64(0), uint8(8), uint64(1), uint64(4), uint8(4))
	f.Add(uint64(pageBytes-4), uint8(8), ^uint64(0), uint64(pageBytes-1), uint8(2))
	f.Add(uint64(13), uint8(3), uint64(0xCAFE), uint64(12), uint8(8))
	f.Fuzz(func(t *testing.T, wAddr uint64, wSize uint8, val uint64, rAddr uint64, rSize uint8) {
		b := NewBacking(0x5EED)
		ref := newMapBacking(0x5EED)
		b.Write(wAddr, wSize, val)
		ref.Write(wAddr, wSize, val)
		if got, want := b.Read(rAddr, rSize), ref.Read(rAddr, rSize); got != want {
			t.Fatalf("read(%#x,%d) = %#x, want %#x", rAddr, rSize, got, want)
		}
		if b.Footprint() != ref.Footprint() {
			t.Fatalf("footprint %d != %d", b.Footprint(), ref.Footprint())
		}
	})
}
