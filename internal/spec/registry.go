package spec

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/eves"
)

// This file is the single registry from specs to simulator objects:
// MachineSpec → cpu.Config and PredictorSpec → engine. Every layer
// (expt runners, the daemon, the CLIs) builds engines only through
// here, so epoch scaling and family semantics cannot diverge between
// callers — the bug class this registry replaced (figs.go built
// unscaled 1M-instruction M-AM epochs while expt.Context scaled them
// to the run length).

// Config materializes the machine: the Table III baseline with the
// spec's deltas applied.
func (m MachineSpec) Config() cpu.Config {
	cfg := cpu.DefaultConfig()
	apply := func(dst *int, v int) {
		if v != 0 {
			*dst = v
		}
	}
	apply(&cfg.FetchWidth, m.FetchWidth)
	apply(&cfg.FetchToExec, m.FetchToExec)
	apply(&cfg.IssueWidth, m.IssueWidth)
	apply(&cfg.CommitWidth, m.CommitWidth)
	apply(&cfg.LSLanes, m.LSLanes)
	apply(&cfg.ROB, m.ROB)
	apply(&cfg.IQ, m.IQ)
	apply(&cfg.LDQ, m.LDQ)
	apply(&cfg.STQ, m.STQ)
	apply(&cfg.StoreForwardLat, m.StoreForwardLat)
	if m.PAQDepth != nil {
		cfg.PAQDepth = *m.PAQDepth
	}
	if m.PAQPrefetchOnMiss != nil {
		cfg.PAQPrefetchOnMiss = *m.PAQPrefetchOnMiss
	}
	if m.SuppressStoreConflicts != nil {
		cfg.SuppressStoreConflicts = *m.SuppressStoreConflicts
	}
	cfg.ReplayRecovery = m.ReplayRecovery
	apply(&cfg.ReplayPenalty, m.ReplayPenalty)
	if m.L1DKB != 0 {
		cfg.Hierarchy.L1D.SizeBytes = m.L1DKB << 10
	}
	if m.L2KB != 0 {
		cfg.Hierarchy.L2.SizeBytes = m.L2KB << 10
	}
	if m.L3KB != 0 {
		cfg.Hierarchy.L3.SizeBytes = m.L3KB << 10
	}
	apply(&cfg.Hierarchy.MemLatency, m.MemLatency)
	apply(&cfg.Hierarchy.PrefetchDegree, m.PrefetchDegree)
	if m.PrefetchEnabled != nil {
		cfg.Hierarchy.PrefetchEnabled = *m.PrefetchEnabled
	}
	if n := m.NumContexts(); n > 1 {
		cfg.Contexts = n
		if m.Interleave == InterleaveBlock {
			cfg.SMTQuantum = blockQuantum
		}
	}
	return cfg
}

// EpochInstrs scales the paper's one-million-instruction epochs (M-AM,
// table fusion) to the run length: the paper simulates 100M
// instructions per workload, so epoch-based machinery keeps the same
// epochs-per-run proportion here, floored so throttling decisions still
// happen on very short runs.
func EpochInstrs(insts uint64) uint64 {
	e := insts / 20
	if e < 2000 {
		e = 2000
	}
	return e
}

// Monitor builds the accuracy monitor for the mode, with epoch-based
// variants scaled to the run length. Returns nil for none.
func (m AMMode) Monitor(insts uint64) core.AccuracyMonitor {
	switch m {
	case AMM:
		return core.NewMAMEpoch(EpochInstrs(insts))
	case AMPC:
		return core.NewPCAM(64)
	case AMPCInf:
		return core.NewPCAM(0)
	}
	return nil
}

// CompositeConfig lowers a composite-family predictor spec to the core
// configuration for one run of the given length. The spec must be
// normalized and of a composite family (composite or a single
// component); other families are a caller bug.
func CompositeConfig(p PredictorSpec, insts, seed uint64) core.CompositeConfig {
	switch p.Family {
	case FamilyNone, FamilyEVES:
		panic("spec: CompositeConfig called for family " + string(p.Family))
	}
	cfg := core.CompositeConfig{
		Entries:        p.Entries,
		Seed:           seed,
		AM:             p.AM.Monitor(insts),
		SmartTraining:  p.SmartTraining,
		ValuePoolSlots: p.ValuePoolSlots,
	}
	if p.Fusion {
		cfg.Fusion = &core.FusionConfig{
			EpochInstrs:    EpochInstrs(insts) / 2,
			UsedPerKilo:    20,
			ClassifyEpochs: 5,
			CycleEpochs:    25,
		}
	}
	return cfg
}

// NewEngine builds a fresh engine for a normalized predictor spec:
// nil (no value prediction) for the none family, a composite for the
// composite families, EVES for eves. insts scales epoch-based
// machinery; seed drives predictor randomness. Engines are stateful
// and single-threaded — build one per run.
func NewEngine(p PredictorSpec, insts, seed uint64) (cpu.Engine, error) {
	switch p.Family {
	case FamilyNone:
		return nil, nil
	case FamilyEVES:
		kb := p.BudgetKB
		if kb < 0 {
			kb = 0 // eves spells "infinite" as 0
		}
		return eves.New(eves.Config{BudgetKB: kb, Seed: seed}), nil
	case FamilyLVP, FamilySAP, FamilyCVP, FamilyCAP, FamilyComposite:
		return cpu.NewCompositeEngine(core.NewComposite(CompositeConfig(p, insts, seed))), nil
	}
	return nil, fmt.Errorf("unknown predictor family %q", p.Family)
}

// StorageKB returns the predictor's storage budget in KB, without
// building it: the composite component-table accounting, or the EVES
// budget (-1 budgets report 0, "unbounded"). The spec must be
// normalized.
func StorageKB(p PredictorSpec) float64 {
	switch p.Family {
	case FamilyNone:
		return 0
	case FamilyEVES:
		if p.BudgetKB < 0 {
			return 0
		}
		return float64(p.BudgetKB)
	}
	bits := p.Entries[core.CompLVP]*core.LVPBitsPerEntry +
		p.Entries[core.CompSAP]*core.SAPBitsPerEntry +
		p.Entries[core.CompCVP]*core.CVPBitsPerEntry +
		p.Entries[core.CompCAP]*core.CAPBitsPerEntry
	return float64(bits) / 8 / 1024
}
