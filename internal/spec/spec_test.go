package spec

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/mem"
	"repro/internal/trace"
)

func intp(v int) *int    { return &v }
func boolp(v bool) *bool { return &v }

// norm normalizes a copy and returns it.
func norm(s Sim) Sim {
	s.Normalize(Defaults{})
	return s
}

func TestJSONRoundTrip(t *testing.T) {
	sims := []Sim{
		{}, // zero spec is valid JSON too
		{
			Machine: MachineSpec{
				ROB: 512, IQ: 128, PAQDepth: intp(0),
				PAQPrefetchOnMiss: boolp(false), ReplayRecovery: true,
				L1DKB: 32, MemLatency: 400, PrefetchEnabled: boolp(false),
			},
			Predictor: PredictorSpec{
				Family:  FamilyComposite,
				Entries: [core.NumComponents]int{64, 256, 128, 64},
				AM:      AMM, SmartTraining: true,
			},
			Workload: WorkloadSpec{Name: "gcc2k", Insts: 1_000_000},
			Run:      RunSpec{Seed: 42},
		},
		{Predictor: PredictorSpec{Family: FamilyEVES, BudgetKB: -1}},
	}
	for i, sim := range sims {
		b, err := json.Marshal(sim)
		if err != nil {
			t.Fatalf("sim %d: marshal: %v", i, err)
		}
		var back Sim
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatalf("sim %d: unmarshal: %v", i, err)
		}
		if !reflect.DeepEqual(sim, back) {
			t.Errorf("sim %d: round trip changed the spec:\n%+v\n%+v", i, sim, back)
		}
	}
}

// TestNormalizeCanonicalizes verifies that equivalent spellings
// normalize to the same canonical spec (and therefore hash).
func TestNormalizeCanonicalizes(t *testing.T) {
	w := WorkloadSpec{Name: "gcc2k", Insts: 20_000}
	cases := []struct {
		name string
		a, b Sim
	}{
		{"defaults spelled out vs omitted",
			Sim{Workload: w},
			Sim{
				Machine:   MachineSpec{ROB: 224, IQ: 97, L1DKB: 64, PAQDepth: intp(24), PrefetchEnabled: boolp(true)},
				Predictor: PredictorSpec{Family: FamilyComposite, EntriesPer: 1024, AM: AMPC},
				Workload:  w,
			}},
		{"best sugar vs explicit composite",
			Sim{Predictor: PredictorSpec{Family: FamilyBest}, Workload: w},
			Sim{Predictor: PredictorSpec{Family: FamilyComposite, AM: AMPC, Fusion: true}, Workload: w}},
		{"entries_per vs per-component entries",
			Sim{Predictor: PredictorSpec{EntriesPer: 256}, Workload: w},
			Sim{Predictor: PredictorSpec{Entries: core.HomogeneousEntries(256)}, Workload: w}},
		{"eves default budget",
			Sim{Predictor: PredictorSpec{Family: FamilyEVES}, Workload: w},
			Sim{Predictor: PredictorSpec{Family: FamilyEVES, BudgetKB: 32}, Workload: w}},
		{"eves negative budgets collapse to -1",
			Sim{Predictor: PredictorSpec{Family: FamilyEVES, BudgetKB: -5}, Workload: w},
			Sim{Predictor: PredictorSpec{Family: FamilyEVES, BudgetKB: -1}, Workload: w}},
		{"single family ignores other slots' sizing sugar",
			Sim{Predictor: PredictorSpec{Family: FamilyLVP}, Workload: w},
			Sim{Predictor: PredictorSpec{Family: FamilyLVP, EntriesPer: 1024}, Workload: w}},
		{"none family erases everything else",
			Sim{Predictor: PredictorSpec{Family: FamilyNone}, Workload: w},
			Sim{Predictor: PredictorSpec{Family: FamilyNone, EntriesPer: 512, AM: AMM, Fusion: true, BudgetKB: 8}, Workload: w}},
	}
	for _, c := range cases {
		na, nb := norm(c.a), norm(c.b)
		if !reflect.DeepEqual(na, nb) {
			t.Errorf("%s: normalized specs differ:\n%+v\n%+v", c.name, na, nb)
		}
		if na.CanonicalHash() != nb.CanonicalHash() {
			t.Errorf("%s: canonical hashes differ", c.name)
		}
		// Normalization must be idempotent or hashes drift.
		again := na
		again.Normalize(Defaults{})
		if !reflect.DeepEqual(na, again) {
			t.Errorf("%s: Normalize is not idempotent: %+v vs %+v", c.name, na, again)
		}
	}
}

// TestCanonicalHashIgnoresJSONKeyOrder decodes two differently-ordered
// encodings of one spec and checks they share a canonical hash.
func TestCanonicalHashIgnoresJSONKeyOrder(t *testing.T) {
	a := `{"workload":{"name":"gcc2k","insts":20000},"predictor":{"am":"pc","family":"composite"},"machine":{"rob":512,"iq":128}}`
	b := `{"machine":{"iq":128,"rob":512},"predictor":{"family":"composite","am":"pc"},"workload":{"insts":20000,"name":"gcc2k"}}`
	var sa, sb Sim
	if err := json.Unmarshal([]byte(a), &sa); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(b), &sb); err != nil {
		t.Fatal(err)
	}
	sa.Normalize(Defaults{})
	sb.Normalize(Defaults{})
	if sa.CanonicalHash() != sb.CanonicalHash() {
		t.Error("differently-ordered encodings of one spec hash differently")
	}
}

func TestCanonicalHashDistinguishes(t *testing.T) {
	base := norm(Sim{Workload: WorkloadSpec{Name: "gcc2k", Insts: 20_000}})
	mutations := []func(*Sim){
		func(s *Sim) { s.Machine.ROB = 512 },
		func(s *Sim) { s.Machine.PAQDepth = intp(0) },
		func(s *Sim) { s.Machine.PrefetchEnabled = boolp(false) },
		func(s *Sim) { s.Predictor.Entries[core.CompSAP] = 2048 },
		func(s *Sim) { s.Predictor.AM = AMM },
		func(s *Sim) { s.Predictor.Fusion = true },
		func(s *Sim) { s.Workload.Name = "mcf" },
		func(s *Sim) { s.Workload.Insts = 40_000 },
		func(s *Sim) { s.Run.Seed = 7 },
	}
	seen := map[string]int{base.CanonicalHash(): -1}
	for i, mut := range mutations {
		s := base
		mut(&s)
		s.Normalize(Defaults{})
		h := s.CanonicalHash()
		if prev, dup := seen[h]; dup {
			t.Errorf("mutation %d collides with %d", i, prev)
		}
		seen[h] = i
	}
}

func TestDefaultsFillAndClamp(t *testing.T) {
	s := Sim{Workload: WorkloadSpec{Name: "gcc2k"}}
	s.Normalize(Defaults{Insts: 200_000, MaxInsts: 5_000_000, Seed: 0xC0FFEE})
	if s.Workload.Insts != 200_000 || s.Run.Seed != 0xC0FFEE {
		t.Errorf("defaults not filled: %+v", s)
	}
	s = Sim{Workload: WorkloadSpec{Name: "gcc2k", Insts: 10_000_000}}
	s.Normalize(Defaults{Insts: 200_000, MaxInsts: 5_000_000})
	if s.Workload.Insts != 5_000_000 {
		t.Errorf("budget not clamped: %d", s.Workload.Insts)
	}
}

// TestCanonical proves the Canonical helper is the idempotency key the
// distributed layers rely on: equivalent spellings share a key, the
// receiver is untouched, canonicalization is idempotent, and invalid
// specs never receive a key.
func TestCanonical(t *testing.T) {
	d := Defaults{Insts: 200_000, Seed: 0xC0FFEE}
	flat := Sim{Workload: WorkloadSpec{Name: "gcc2k"}}
	spelled := Sim{
		Workload:  WorkloadSpec{Name: "gcc2k", Insts: 200_000},
		Predictor: PredictorSpec{Family: FamilyComposite, EntriesPer: 1024, AM: AMPC},
		Run:       RunSpec{Seed: 0xC0FFEE},
	}
	n1, h1, err := flat.Canonical(d)
	if err != nil {
		t.Fatalf("Canonical: %v", err)
	}
	n2, h2, err := spelled.Canonical(d)
	if err != nil {
		t.Fatalf("Canonical: %v", err)
	}
	if h1 != h2 {
		t.Errorf("equivalent spellings got different keys: %s vs %s", h1, h2)
	}
	if !reflect.DeepEqual(n1, n2) {
		t.Errorf("equivalent spellings canonicalized differently:\n%+v\n%+v", n1, n2)
	}
	if spelled.Predictor.EntriesPer != 1024 {
		t.Error("Canonical mutated its receiver")
	}
	// Idempotent: canonicalizing the canonical form is a fixed point.
	n3, h3, err := n1.Canonical(d)
	if err != nil || h3 != h1 || !reflect.DeepEqual(n3, n1) {
		t.Errorf("Canonical is not idempotent: hash %s vs %s, err %v", h3, h1, err)
	}
	// Invalid specs get an error and no key.
	if _, h, err := (Sim{Workload: WorkloadSpec{Name: "nope"}}).Canonical(d); err == nil || h != "" {
		t.Errorf("invalid spec: hash=%q err=%v, want empty hash and an error", h, err)
	}
}

func TestValidationErrors(t *testing.T) {
	cases := []struct {
		name string
		sim  Sim
		want string // substring of the error; "" = valid
	}{
		{"valid default", Sim{Workload: WorkloadSpec{Name: "gcc2k"}}, ""},
		{"unknown workload", Sim{Workload: WorkloadSpec{Name: "nope"}}, "unknown workload"},
		{"unknown family", Sim{Predictor: PredictorSpec{Family: "quantum"}, Workload: WorkloadSpec{Name: "gcc2k"}}, "unknown predictor family"},
		{"unknown am", Sim{Predictor: PredictorSpec{AM: "psychic"}, Workload: WorkloadSpec{Name: "gcc2k"}}, "unknown accuracy monitor"},
		{"negative entries", Sim{Predictor: PredictorSpec{Entries: [core.NumComponents]int{-1, 0, 0, 0}}, Workload: WorkloadSpec{Name: "gcc2k"}}, "entries must be"},
		{"fusion with value pool", Sim{Predictor: PredictorSpec{Fusion: true, ValuePoolSlots: 64}, Workload: WorkloadSpec{Name: "gcc2k"}}, "incompatible"},
		{"negative rob", Sim{Machine: MachineSpec{ROB: -4}, Workload: WorkloadSpec{Name: "gcc2k"}}, "rob must be"},
		{"negative paq", Sim{Machine: MachineSpec{PAQDepth: intp(-1)}, Workload: WorkloadSpec{Name: "gcc2k"}}, "paq_depth"},
		{"non-power-of-two cache sets", Sim{Machine: MachineSpec{L1DKB: 100}, Workload: WorkloadSpec{Name: "gcc2k"}}, "power-of-two"},
		{"cache not multiple of line*ways", Sim{Machine: MachineSpec{L3KB: 3}, Workload: WorkloadSpec{Name: "gcc2k"}}, "multiple of"},
	}
	for _, c := range cases {
		sim := c.sim
		sim.Normalize(Defaults{Insts: 20_000})
		err := sim.Validate()
		switch {
		case c.want == "" && err != nil:
			t.Errorf("%s: unexpected error %v", c.name, err)
		case c.want != "" && err == nil:
			t.Errorf("%s: validation passed, want error containing %q", c.name, c.want)
		case c.want != "" && !strings.Contains(err.Error(), c.want):
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestMachineSpecConfig(t *testing.T) {
	def := MachineSpec{}.Config()
	if !reflect.DeepEqual(def, cpu.DefaultConfig()) {
		t.Errorf("zero machine is not the Table III default:\n%+v\n%+v", def, cpu.DefaultConfig())
	}
	paq := 0
	pf := false
	m := MachineSpec{
		ROB: 512, LSLanes: 1, PAQDepth: &paq, PrefetchEnabled: &pf,
		ReplayRecovery: true, L1DKB: 32, MemLatency: 400,
	}
	cfg := m.Config()
	if cfg.ROB != 512 || cfg.LSLanes != 1 || cfg.PAQDepth != 0 || !cfg.ReplayRecovery {
		t.Errorf("deltas not applied: %+v", cfg)
	}
	if cfg.Hierarchy.L1D.SizeBytes != 32<<10 || cfg.Hierarchy.MemLatency != 400 || cfg.Hierarchy.PrefetchEnabled {
		t.Errorf("hierarchy deltas not applied: %+v", cfg.Hierarchy)
	}
	// Untouched fields keep Table III.
	if cfg.IQ != cpu.DefaultConfig().IQ || cfg.Hierarchy.L2.SizeBytes != cpu.DefaultConfig().Hierarchy.L2.SizeBytes {
		t.Errorf("unset fields drifted from the default: %+v", cfg)
	}
	if (MachineSpec{}).Hash() != "" {
		t.Error("default machine hash is not empty")
	}
	if (MachineSpec{ROB: 224}).Hash() != "" {
		t.Error("default-restating machine hash is not empty")
	}
	if m.Hash() == "" {
		t.Error("non-default machine hashes empty")
	}
}

func TestEpochInstrs(t *testing.T) {
	if got := EpochInstrs(100_000_000); got != 5_000_000 {
		t.Errorf("EpochInstrs(100M) = %d, want 5M (paper proportion)", got)
	}
	if got := EpochInstrs(1_000); got != 2000 {
		t.Errorf("EpochInstrs(1k) = %d, want the 2000 floor", got)
	}
}

func TestNewEngineFamilies(t *testing.T) {
	mk := func(p PredictorSpec) PredictorSpec {
		p.Normalize()
		return p
	}
	if eng, err := NewEngine(mk(PredictorSpec{Family: FamilyNone}), 20_000, 1); err != nil || eng != nil {
		t.Errorf("none family: engine=%v err=%v, want nil/nil", eng, err)
	}
	for _, fam := range []Family{FamilyLVP, FamilySAP, FamilyCVP, FamilyCAP, FamilyComposite, FamilyEVES} {
		eng, err := NewEngine(mk(PredictorSpec{Family: fam}), 20_000, 1)
		if err != nil || eng == nil {
			t.Errorf("family %s: engine=%v err=%v", fam, eng, err)
		}
	}
	if _, err := NewEngine(PredictorSpec{Family: "quantum"}, 20_000, 1); err == nil {
		t.Error("unknown family built an engine")
	}
}

func TestStorageKB(t *testing.T) {
	p := PredictorSpec{Family: FamilyComposite, Entries: core.HomogeneousEntries(1024)}
	want := core.NewComposite(core.CompositeConfig{Entries: p.Entries, Seed: 1}).StorageKB()
	if got := StorageKB(p); got != want {
		t.Errorf("composite storage = %g, want %g (core accounting)", got, want)
	}
	if got := StorageKB(PredictorSpec{Family: FamilyEVES, BudgetKB: 32}); got != 32 {
		t.Errorf("eves storage = %g, want 32", got)
	}
	if got := StorageKB(PredictorSpec{Family: FamilyEVES, BudgetKB: -1}); got != 0 {
		t.Errorf("infinite eves storage = %g, want 0", got)
	}
	if got := StorageKB(PredictorSpec{Family: FamilyNone}); got != 0 {
		t.Errorf("none storage = %g, want 0", got)
	}
}

func TestPresets(t *testing.T) {
	names := PresetNames()
	if len(names) == 0 {
		t.Fatal("no presets")
	}
	if !sortedStrings(names) {
		t.Errorf("preset names not sorted: %v", names)
	}
	for _, n := range names {
		sim, ok := Preset(n)
		if !ok {
			t.Fatalf("preset %q vanished", n)
		}
		if PresetDescription(n) == "" {
			t.Errorf("preset %q has no description", n)
		}
		sim.Normalize(Defaults{Insts: 20_000})
		if err := sim.ValidateConfig(); err != nil {
			t.Errorf("preset %q does not validate: %v", n, err)
		}
	}
	// table3 is the zero spec by another name.
	table3, _ := Preset("table3")
	if norm(table3).CanonicalHash() != norm(Sim{}).CanonicalHash() {
		t.Error("table3 preset differs from the zero spec")
	}
	if _, ok := Preset("no-such"); ok {
		t.Error("unknown preset resolved")
	}
}

func sortedStrings(s []string) bool {
	for i := 1; i < len(s); i++ {
		if s[i] < s[i-1] {
			return false
		}
	}
	return true
}

// TestSMTSpecNormalization pins the hash-stability contract of the SMT
// fields: a spec that spells out the single-context default must hash
// identically to a pre-SMT spec, and equivalent SMT spellings collapse.
func TestSMTSpecNormalization(t *testing.T) {
	w := WorkloadSpec{Name: "gcc2k", Insts: 20_000}
	cases := []struct {
		name string
		a, b Sim
	}{
		{"contexts 1 is the single-context default",
			Sim{Workload: w},
			Sim{Machine: MachineSpec{Contexts: 1}, Workload: w}},
		{"interleave meaningless single-context",
			Sim{Workload: w},
			Sim{Machine: MachineSpec{Contexts: 1, Interleave: InterleaveBlock}, Workload: w}},
		{"rr is the default interleave",
			Sim{Machine: MachineSpec{Contexts: 4}, Workload: w},
			Sim{Machine: MachineSpec{Contexts: 4, Interleave: InterleaveRR}, Workload: w}},
		{"homogeneous names collapse to the bare name",
			Sim{Machine: MachineSpec{Contexts: 2}, Workload: w},
			Sim{Machine: MachineSpec{Contexts: 2}, Workload: WorkloadSpec{
				Name: "gcc2k", Names: []string{"gcc2k", "gcc2k"}, Insts: 20_000}}},
		{"name filled from names[0]",
			Sim{Machine: MachineSpec{Contexts: 2}, Workload: WorkloadSpec{
				Name: "gcc2k", Names: []string{"gcc2k", "mcf"}, Insts: 20_000}},
			Sim{Machine: MachineSpec{Contexts: 2}, Workload: WorkloadSpec{
				Names: []string{"gcc2k", "mcf"}, Insts: 20_000}}},
	}
	for _, c := range cases {
		na, nb := norm(c.a), norm(c.b)
		if !reflect.DeepEqual(na, nb) {
			t.Errorf("%s: normalized specs differ:\n%+v\n%+v", c.name, na, nb)
		}
		if na.CanonicalHash() != nb.CanonicalHash() {
			t.Errorf("%s: canonical hashes differ", c.name)
		}
		again := na
		again.Normalize(Defaults{})
		if !reflect.DeepEqual(na, again) {
			t.Errorf("%s: Normalize is not idempotent: %+v vs %+v", c.name, na, again)
		}
	}
	// The context count and the mix must change the hash.
	base := norm(Sim{Workload: w}).CanonicalHash()
	smt2 := norm(Sim{Machine: MachineSpec{Contexts: 2}, Workload: w})
	if smt2.CanonicalHash() == base {
		t.Error("2-context spec hashes like the single-context spec")
	}
	mix := norm(Sim{Machine: MachineSpec{Contexts: 2}, Workload: WorkloadSpec{
		Names: []string{"gcc2k", "mcf"}, Insts: 20_000}})
	if mix.CanonicalHash() == smt2.CanonicalHash() {
		t.Error("heterogeneous mix hashes like the homogeneous spec")
	}
	if (MachineSpec{Contexts: 2}).Hash() == (MachineSpec{}).Hash() {
		t.Error("SMT machine hash matches the baseline machine (baseline caches would collide)")
	}
}

func TestSMTSpecValidation(t *testing.T) {
	cases := []struct {
		name string
		sim  Sim
		want string
	}{
		{"valid smt4", Sim{Machine: MachineSpec{Contexts: 4}, Workload: WorkloadSpec{Name: "gcc2k"}}, ""},
		{"valid mix", Sim{Machine: MachineSpec{Contexts: 2},
			Workload: WorkloadSpec{Names: []string{"gcc2k", "mcf"}}}, ""},
		{"too many contexts", Sim{Machine: MachineSpec{Contexts: 99}, Workload: WorkloadSpec{Name: "gcc2k"}}, "contexts"},
		{"negative contexts", Sim{Machine: MachineSpec{Contexts: -1}, Workload: WorkloadSpec{Name: "gcc2k"}}, "contexts"},
		{"unknown interleave", Sim{Machine: MachineSpec{Contexts: 2, Interleave: "magic"}, Workload: WorkloadSpec{Name: "gcc2k"}}, "interleave"},
		{"names wrong length", Sim{Machine: MachineSpec{Contexts: 4},
			Workload: WorkloadSpec{Names: []string{"gcc2k", "mcf"}}}, "entries"},
		{"names on single-context", Sim{
			Workload: WorkloadSpec{Names: []string{"gcc2k", "mcf"}}}, "entries"},
		{"unknown name in mix", Sim{Machine: MachineSpec{Contexts: 2},
			Workload: WorkloadSpec{Names: []string{"gcc2k", "nope"}}}, "unknown workload"},
		{"name disagrees with names[0]", Sim{Machine: MachineSpec{Contexts: 2},
			Workload: WorkloadSpec{Name: "mcf", Names: []string{"gcc2k", "mcf"}}}, "disagrees"},
	}
	for _, c := range cases {
		sim := c.sim
		sim.Normalize(Defaults{Insts: 20_000})
		err := sim.Validate()
		switch {
		case c.want == "" && err != nil:
			t.Errorf("%s: unexpected error %v", c.name, err)
		case c.want != "" && err == nil:
			t.Errorf("%s: validation passed, want error containing %q", c.name, c.want)
		case c.want != "" && !strings.Contains(err.Error(), c.want):
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestSMTSpecConfigAndStreams(t *testing.T) {
	m := MachineSpec{Contexts: 4}
	cfg := m.Config()
	if cfg.Contexts != 4 || cfg.SMTQuantum != 0 {
		t.Errorf("rr smt4 config: contexts=%d quantum=%d", cfg.Contexts, cfg.SMTQuantum)
	}
	m.Interleave = InterleaveBlock
	if cfg := m.Config(); cfg.SMTQuantum != blockQuantum {
		t.Errorf("block interleave quantum = %d, want %d", cfg.SMTQuantum, blockQuantum)
	}
	// Single-context specs must produce exactly the default config so
	// pooled pipelines are shared with pre-SMT callers.
	if got := (MachineSpec{}).Config(); !reflect.DeepEqual(got, cpu.DefaultConfig()) {
		t.Errorf("zero machine config drifted: %+v", got)
	}

	sim := norm(Sim{Machine: MachineSpec{Contexts: 2}, Workload: WorkloadSpec{Name: "gcc2k", Insts: 20_000}})
	if got := sim.ContextWorkloads(); !reflect.DeepEqual(got, []string{"gcc2k", "gcc2k"}) {
		t.Errorf("homogeneous ContextWorkloads = %v", got)
	}
	if got := sim.ContextStreams(); !reflect.DeepEqual(got, []string{"gcc2k", "gcc2k#1"}) {
		t.Errorf("homogeneous ContextStreams = %v", got)
	}
	if got := sim.WorkloadLabel(); got != "gcc2k" {
		t.Errorf("homogeneous label = %q", got)
	}
	mix := norm(Sim{Machine: MachineSpec{Contexts: 2}, Workload: WorkloadSpec{
		Names: []string{"gcc2k", "mcf"}, Insts: 20_000}})
	if got := mix.ContextStreams(); !reflect.DeepEqual(got, []string{"gcc2k", "mcf#1"}) {
		t.Errorf("mix ContextStreams = %v", got)
	}
	if got := mix.WorkloadLabel(); got != "gcc2k+mcf" {
		t.Errorf("mix label = %q", got)
	}
	sc := norm(Sim{Workload: WorkloadSpec{Name: "gcc2k", Insts: 20_000}})
	if got := sc.ContextStreams(); !reflect.DeepEqual(got, []string{"gcc2k"}) {
		t.Errorf("single-context ContextStreams = %v", got)
	}
}

func TestSMTPresets(t *testing.T) {
	for name, want := range map[string]int{"smt2": 2, "smt4": 4} {
		sim, ok := Preset(name)
		if !ok {
			t.Fatalf("preset %q missing", name)
		}
		sim.Workload = WorkloadSpec{Name: "gcc2k"}
		n, _, err := sim.Canonical(Defaults{Insts: 20_000})
		if err != nil {
			t.Fatalf("preset %q: %v", name, err)
		}
		if n.Machine.NumContexts() != want {
			t.Errorf("preset %q simulates %d contexts, want %d", name, n.Machine.NumContexts(), want)
		}
	}
}

// TestValidateExternalWorkload proves specs referencing an uploaded
// trace by content address ("ext:<hash>") resolve through the same
// registry path as synthetic workloads: validation fails while the
// trace is unknown and passes once it is registered.
func TestValidateExternalWorkload(t *testing.T) {
	const name = "ext:specvalidate"
	sim := Sim{Workload: WorkloadSpec{Name: name}}
	sim.Normalize(Defaults{Insts: 1_000})
	if err := sim.Validate(); err == nil {
		t.Fatal("unregistered external workload validated")
	}

	rep := trace.NewReplay(
		[]trace.Inst{{PC: 1, Op: trace.OpALU, Dst: 1, Lat: 1}},
		mem.NewBacking(0))
	if _, err := trace.RegisterExternal(name, rep, true); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { trace.UnregisterExternal(name) })

	if err := sim.Validate(); err != nil {
		t.Fatalf("registered external workload failed validation: %v", err)
	}
	// External traces hash like any workload name: same content, same
	// canonical spec hash.
	if sim.CanonicalHash() == "" {
		t.Fatal("external spec has no canonical hash")
	}
}
