// Package spec defines the declarative simulation specification shared
// by every layer of the system: the CLIs compile their flags into it,
// the daemon accepts it over the wire (and normalizes legacy flat
// requests into it), and the experiment runners express their
// configuration points with it. A Sim is serializable (JSON),
// validated, and canonically hashable, so equivalent requests — however
// they were spelled — map to the same cache entry and the same engine.
//
// The spec is a *delta* encoding: every zero field means "the paper's
// default" (Table III for the machine, the evaluation defaults for the
// predictor), so the zero value of Sim plus a workload name is a
// complete, valid simulation. Normalize canonicalizes a spec in place
// (filling defaults, folding sugar families like "best" into their
// composite expansion, and erasing fields that restate defaults);
// CanonicalHash then hashes the canonical JSON encoding, which is
// deterministic because Go marshals struct fields in declaration order.
package spec

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/trace"
)

// Family names a predictor family. The sugar family "best" (the
// paper's fully-optimized composite: PC-AM throttling plus table
// fusion) is canonicalized by Normalize into its composite expansion,
// so "best" and the equivalent explicit composite hash identically.
type Family string

// The predictor families.
const (
	FamilyNone      Family = "none"
	FamilyLVP       Family = "lvp"
	FamilySAP       Family = "sap"
	FamilyCVP       Family = "cvp"
	FamilyCAP       Family = "cap"
	FamilyComposite Family = "composite"
	FamilyBest      Family = "best"
	FamilyEVES      Family = "eves"
)

// families is the acceptance set for validation.
var families = map[Family]bool{
	FamilyNone: true, FamilyLVP: true, FamilySAP: true, FamilyCVP: true,
	FamilyCAP: true, FamilyComposite: true, FamilyBest: true, FamilyEVES: true,
}

// Component returns the core component a single-component family
// models, and whether the family is single-component.
func (f Family) Component() (core.Component, bool) {
	switch f {
	case FamilyLVP:
		return core.CompLVP, true
	case FamilySAP:
		return core.CompSAP, true
	case FamilyCVP:
		return core.CompCVP, true
	case FamilyCAP:
		return core.CompCAP, true
	}
	return 0, false
}

// AMMode selects the composite's accuracy monitor (Section V-B).
type AMMode string

// The accuracy monitor modes. The empty string is normalized to the
// family's default (PC-AM(64) for composites, none for single
// components, matching the evaluation's defaults).
const (
	AMNone  AMMode = "none"
	AMM     AMMode = "m"     // M-AM, epoch-based, scaled to the run length
	AMPC    AMMode = "pc"    // PC-AM with 64 entries
	AMPCInf AMMode = "pcinf" // PC-AM, infinite (limit study)
)

var amModes = map[AMMode]bool{AMNone: true, AMM: true, AMPC: true, AMPCInf: true}

// MachineSpec describes the simulated core as deltas over the paper's
// Table III baseline: every zero (or nil) field keeps the default noted
// in its comment. Pointer fields distinguish "unset" from a meaningful
// zero/false (e.g. PAQDepth 0 = unbounded).
type MachineSpec struct {
	// Front end and widths.
	FetchWidth  int `json:"fetch_width,omitempty"`   // 4
	FetchToExec int `json:"fetch_to_exec,omitempty"` // 13 cycles
	IssueWidth  int `json:"issue_width,omitempty"`   // 8
	CommitWidth int `json:"commit_width,omitempty"`  // 8
	LSLanes     int `json:"ls_lanes,omitempty"`      // 2

	// Window sizes.
	ROB int `json:"rob,omitempty"` // 224
	IQ  int `json:"iq,omitempty"`  // 97
	LDQ int `json:"ldq,omitempty"` // 72
	STQ int `json:"stq,omitempty"` // 56

	StoreForwardLat int `json:"store_forward_lat,omitempty"` // 4 cycles

	// Value-prediction plumbing (DESIGN.md §5a).
	PAQDepth               *int  `json:"paq_depth,omitempty"`                // 24; 0 = unbounded
	PAQPrefetchOnMiss      *bool `json:"paq_prefetch_on_miss,omitempty"`     // true
	SuppressStoreConflicts *bool `json:"suppress_store_conflicts,omitempty"` // true
	ReplayRecovery         bool  `json:"replay_recovery,omitempty"`          // false (paper: flush)
	ReplayPenalty          int   `json:"replay_penalty,omitempty"`           // 12 cycles

	// Hierarchy knobs (geometry beyond sizes keeps Table III).
	L1DKB           int   `json:"l1d_kb,omitempty"`           // 64
	L2KB            int   `json:"l2_kb,omitempty"`            // 512
	L3KB            int   `json:"l3_kb,omitempty"`            // 8192
	MemLatency      int   `json:"mem_latency,omitempty"`      // 200 cycles
	PrefetchDegree  int   `json:"prefetch_degree,omitempty"`  // 4
	PrefetchEnabled *bool `json:"prefetch_enabled,omitempty"` // true

	// SMT (DESIGN.md §14). Contexts is the hardware context count; 0 and
	// 1 both mean the paper's single-context core and normalize to 0, so
	// existing specs hash unchanged. Interleave picks the fetch
	// interleave policy: "rr" (the default, one instruction per context
	// per turn) or "block" (64-instruction quanta, coarser sharing).
	Contexts   int    `json:"contexts,omitempty"`
	Interleave string `json:"interleave,omitempty"`
}

// The interleave policies and the block policy's quantum.
const (
	InterleaveRR    = "rr"
	InterleaveBlock = "block"

	blockQuantum = 64
)

// Normalize erases fields that restate a Table III default, so a spec
// that spells out the baseline hashes identically to the zero spec.
func (m *MachineSpec) Normalize() {
	zeroIf(&m.FetchWidth, 4)
	zeroIf(&m.FetchToExec, 13)
	zeroIf(&m.IssueWidth, 8)
	zeroIf(&m.CommitWidth, 8)
	zeroIf(&m.LSLanes, 2)
	zeroIf(&m.ROB, 224)
	zeroIf(&m.IQ, 97)
	zeroIf(&m.LDQ, 72)
	zeroIf(&m.STQ, 56)
	zeroIf(&m.StoreForwardLat, 4)
	if m.PAQDepth != nil && *m.PAQDepth == 24 {
		m.PAQDepth = nil
	}
	nilIfBool(&m.PAQPrefetchOnMiss, true)
	nilIfBool(&m.SuppressStoreConflicts, true)
	zeroIf(&m.ReplayPenalty, 12)
	zeroIf(&m.L1DKB, 64)
	zeroIf(&m.L2KB, 512)
	zeroIf(&m.L3KB, 8192)
	zeroIf(&m.MemLatency, 200)
	zeroIf(&m.PrefetchDegree, 4)
	nilIfBool(&m.PrefetchEnabled, true)
	zeroIf(&m.Contexts, 1)
	if m.Contexts <= 1 {
		// Interleave policy is meaningless on a single-context core.
		m.Interleave = ""
	} else if m.Interleave == InterleaveRR {
		m.Interleave = ""
	}
}

// NumContexts returns the simulated hardware context count (at least 1).
func (m MachineSpec) NumContexts() int {
	if m.Contexts <= 1 {
		return 1
	}
	return m.Contexts
}

func zeroIf(v *int, def int) {
	if *v == def {
		*v = 0
	}
}

func nilIfBool(v **bool, def bool) {
	if *v != nil && **v == def {
		*v = nil
	}
}

// IsDefault reports whether the (normalized) machine is the Table III
// baseline.
func (m MachineSpec) IsDefault() bool {
	n := m
	n.Normalize()
	return n == MachineSpec{}
}

// Hash returns a short canonical hash of the machine deltas; the
// default machine hashes to the empty string (so cache keys for the
// baseline machine stay stable across spec versions).
func (m MachineSpec) Hash() string {
	n := m
	n.Normalize()
	if n == (MachineSpec{}) {
		return ""
	}
	return hashJSON(n)
}

// Validate rejects machine deltas the core model cannot simulate.
func (m MachineSpec) Validate() error {
	for _, f := range []struct {
		name string
		v    int
	}{
		{"fetch_width", m.FetchWidth}, {"fetch_to_exec", m.FetchToExec},
		{"issue_width", m.IssueWidth}, {"commit_width", m.CommitWidth},
		{"ls_lanes", m.LSLanes}, {"rob", m.ROB}, {"iq", m.IQ},
		{"ldq", m.LDQ}, {"stq", m.STQ}, {"store_forward_lat", m.StoreForwardLat},
		{"replay_penalty", m.ReplayPenalty}, {"mem_latency", m.MemLatency},
		{"prefetch_degree", m.PrefetchDegree},
	} {
		if f.v < 0 {
			return fmt.Errorf("machine: %s must be >= 0", f.name)
		}
	}
	if m.PAQDepth != nil && *m.PAQDepth < 0 {
		return fmt.Errorf("machine: paq_depth must be >= 0 (0 = unbounded)")
	}
	// Cache sizes must keep a power-of-two set count with Table III
	// geometry (64B/128B lines, 4/8/16 ways).
	for _, c := range []struct {
		name           string
		kb, line, ways int
	}{
		{"l1d_kb", m.L1DKB, 64, 4},
		{"l2_kb", m.L2KB, 128, 8},
		{"l3_kb", m.L3KB, 128, 16},
	} {
		if c.kb == 0 {
			continue
		}
		if c.kb < 0 {
			return fmt.Errorf("machine: %s must be > 0", c.name)
		}
		bytes := c.kb << 10
		if bytes%(c.line*c.ways) != 0 {
			return fmt.Errorf("machine: %s (%dKB) must be a multiple of line size × ways (%dB)", c.name, c.kb, c.line*c.ways)
		}
		sets := bytes / c.line / c.ways
		if sets&(sets-1) != 0 {
			return fmt.Errorf("machine: %s (%dKB) must give a power-of-two set count, got %d sets", c.name, c.kb, sets)
		}
	}
	if m.Contexts < 0 || m.Contexts > MaxContexts {
		return fmt.Errorf("machine: contexts must be in [0, %d]", MaxContexts)
	}
	switch m.Interleave {
	case "", InterleaveRR, InterleaveBlock:
	default:
		return fmt.Errorf("machine: unknown interleave policy %q (want rr|block)", m.Interleave)
	}
	return nil
}

// MaxContexts bounds the simulated SMT width. Eight covers every
// shipped SMT design with headroom; the bound mostly protects the
// per-context ring allocations from absurd sweep axes.
const MaxContexts = 8

// PredictorSpec describes the load value predictor: a family plus the
// composite's per-component sizing and filter/optimization knobs, or
// the EVES storage budget.
type PredictorSpec struct {
	// Family is one of none|lvp|sap|cvp|cap|composite|best|eves
	// ("" = composite).
	Family Family `json:"family,omitempty"`

	// Entries sizes the component tables [LVP, SAP, CVP, CAP]. All
	// zeros selects 1024 entries per present component.
	Entries [core.NumComponents]int `json:"entries"`

	// EntriesPer is scalar sugar: N entries for every component of a
	// composite (or the single component of a single family). Normalize
	// expands it into Entries and clears it.
	EntriesPer int `json:"entries_per,omitempty"`

	// AM selects the accuracy monitor ("" = pc for composites, none for
	// single components).
	AM AMMode `json:"am,omitempty"`

	// SmartTraining enables the selective training policy (Section V-D).
	SmartTraining bool `json:"smart_training,omitempty"`

	// Fusion enables dynamic table fusion (Section V-E), with epochs
	// scaled to the run length like the accuracy monitors.
	Fusion bool `json:"fusion,omitempty"`

	// ValuePoolSlots switches LVP/CVP to the decoupled shared value
	// array of Section III-B with this many 64-bit slots (0 = direct
	// per-entry values). Incompatible with fusion.
	ValuePoolSlots int `json:"value_pool_slots,omitempty"`

	// BudgetKB is the EVES storage budget in KB (eves family only;
	// 0 = 32, any negative value = infinite, canonicalized to -1).
	BudgetKB int `json:"budget_kb,omitempty"`
}

// Normalize canonicalizes the predictor: defaults are filled, the
// "best" sugar family is expanded, sizing sugar is resolved, and
// fields meaningless for the family are erased so equivalent specs
// hash identically.
func (p *PredictorSpec) Normalize() {
	if p.Family == "" {
		p.Family = FamilyComposite
	}
	if p.Family == FamilyBest {
		p.Family = FamilyComposite
		p.AM = AMPC
		p.Fusion = true
	}
	switch p.Family {
	case FamilyNone:
		*p = PredictorSpec{Family: FamilyNone}
		return
	case FamilyEVES:
		kb := p.BudgetKB
		if kb == 0 {
			kb = 32
		}
		if kb < 0 {
			kb = -1
		}
		*p = PredictorSpec{Family: FamilyEVES, BudgetKB: kb}
		return
	}
	// Composite families (including the four single-component ones).
	p.BudgetKB = 0
	per := p.EntriesPer
	p.EntriesPer = 0
	if comp, ok := p.Family.Component(); ok {
		n := p.Entries[comp]
		if per > 0 {
			n = per
		}
		if n == 0 {
			n = 1024
		}
		p.Entries = [core.NumComponents]int{}
		p.Entries[comp] = n
		if p.AM == "" {
			p.AM = AMNone
		}
		return
	}
	// Full composite.
	if per > 0 {
		p.Entries = core.HomogeneousEntries(per)
	}
	if p.Entries == ([core.NumComponents]int{}) {
		p.Entries = core.HomogeneousEntries(1024)
	}
	if p.AM == "" {
		p.AM = AMPC
	}
}

// Validate rejects unknown families/modes and inconsistent knobs. Call
// after Normalize.
func (p PredictorSpec) Validate() error {
	if !families[p.Family] {
		return fmt.Errorf("unknown predictor family %q (want none|lvp|sap|cvp|cap|composite|best|eves)", p.Family)
	}
	for _, n := range p.Entries {
		if n < 0 {
			return fmt.Errorf("entries must be >= 0")
		}
	}
	if p.EntriesPer < 0 {
		return fmt.Errorf("entries_per must be >= 0")
	}
	if p.ValuePoolSlots < 0 {
		return fmt.Errorf("value_pool_slots must be >= 0")
	}
	if p.AM != "" && !amModes[p.AM] {
		return fmt.Errorf("unknown accuracy monitor %q (want none|m|pc|pcinf)", p.AM)
	}
	if p.Fusion && p.ValuePoolSlots > 0 {
		return fmt.Errorf("table fusion is incompatible with shared value arrays")
	}
	return nil
}

// WorkloadSpec names the workload and its instruction budget.
type WorkloadSpec struct {
	// Name is a workload from trace.Workloads (see GET /v1/workloads),
	// or an uploaded external trace referenced by content address as
	// "ext:<hash>" (see POST /v1/workloads and internal/tracein). Both
	// kinds resolve through the same registry, so spec hashing, the
	// result warehouse, and sweep idempotency treat them identically —
	// the hash pins the exact trace content, making results keyed by
	// this spec reproducible across processes that hold the same trace.
	// On a multi-context machine it is the workload every context runs
	// (each on its own independently-seeded stream) unless Names assigns
	// them individually; external traces are a single recording, so
	// salted context streams replay lockstep copies (DESIGN.md §15).
	Name string `json:"name"`

	// Names assigns one workload per hardware context, for heterogeneous
	// SMT mixes. When set, its length must equal the machine's context
	// count and Names[0] must equal Name (Normalize enforces both: it
	// fills Name from Names[0], and collapses a homogeneous Names back to
	// the bare Name so equivalent spellings hash identically).
	Names []string `json:"names,omitempty"`

	// Insts is the per-context instruction budget (0 = the caller's
	// default). A multi-context run simulates Insts instructions on
	// every context.
	Insts uint64 `json:"insts,omitempty"`
}

// RunSpec holds per-run knobs that change the result without changing
// what is being measured.
type RunSpec struct {
	// Seed drives all predictor randomness (0 = the caller's default).
	Seed uint64 `json:"seed,omitempty"`
}

// Sim is the complete declarative description of one simulation.
type Sim struct {
	Machine   MachineSpec   `json:"machine"`
	Predictor PredictorSpec `json:"predictor"`
	Workload  WorkloadSpec  `json:"workload"`
	Run       RunSpec       `json:"run"`
}

// Defaults supplies the caller's environment-level defaults applied by
// Normalize: a zero Defaults leaves zero budget/seed fields in place.
type Defaults struct {
	// Insts fills Workload.Insts when zero.
	Insts uint64

	// MaxInsts clamps Workload.Insts when positive.
	MaxInsts uint64

	// Seed fills Run.Seed when zero.
	Seed uint64
}

// Normalize canonicalizes the spec in place under the given defaults.
// Normalization is idempotent: normalizing a normalized spec is a
// no-op, so hashes computed after Normalize are stable.
func (s *Sim) Normalize(d Defaults) {
	s.Machine.Normalize()
	s.Predictor.Normalize()
	if len(s.Workload.Names) > 0 {
		if s.Workload.Name == "" {
			s.Workload.Name = s.Workload.Names[0]
		}
		homogeneous := true
		for _, n := range s.Workload.Names {
			if n != s.Workload.Name {
				homogeneous = false
				break
			}
		}
		if homogeneous {
			s.Workload.Names = nil
		}
	}
	if s.Workload.Insts == 0 {
		s.Workload.Insts = d.Insts
	}
	if d.MaxInsts > 0 && s.Workload.Insts > d.MaxInsts {
		s.Workload.Insts = d.MaxInsts
	}
	if s.Run.Seed == 0 {
		s.Run.Seed = d.Seed
	}
}

// Validate rejects specs the system cannot simulate. Call after
// Normalize.
func (s Sim) Validate() error {
	if _, ok := trace.ByName(s.Workload.Name); !ok {
		return fmt.Errorf("unknown workload %q", s.Workload.Name)
	}
	for _, n := range s.Workload.Names {
		if _, ok := trace.ByName(n); !ok {
			return fmt.Errorf("unknown workload %q", n)
		}
	}
	if len(s.Workload.Names) > 0 {
		if got, want := len(s.Workload.Names), s.Machine.NumContexts(); got != want {
			return fmt.Errorf("workload names %d entries for a %d-context machine", got, want)
		}
		if s.Workload.Names[0] != s.Workload.Name {
			return fmt.Errorf("workload name %q disagrees with names[0] %q", s.Workload.Name, s.Workload.Names[0])
		}
	}
	return s.ValidateConfig()
}

// ContextWorkloads returns the per-context workload names, one per
// hardware context: the explicit Names assignment, or Name replicated
// across every context. The spec must be normalized.
func (s Sim) ContextWorkloads() []string {
	n := s.Machine.NumContexts()
	if len(s.Workload.Names) == n {
		return s.Workload.Names
	}
	names := make([]string, n)
	for i := range names {
		names[i] = s.Workload.Name
	}
	return names
}

// ContextStreams returns the per-context stream names: context i runs
// stream trace.StreamName(workload_i, i), so every context — including
// two contexts of the same workload — executes an independently-seeded
// stream, with context 0 on the canonical single-context stream.
func (s Sim) ContextStreams() []string {
	names := s.ContextWorkloads()
	streams := make([]string, len(names))
	for i, n := range names {
		streams[i] = trace.StreamName(n, i)
	}
	return streams
}

// WorkloadLabel returns the run label of the spec's workload mix: the
// bare workload name single-context and for homogeneous SMT mixes,
// "a+b+c" for heterogeneous ones.
func (s Sim) WorkloadLabel() string {
	if len(s.Workload.Names) == 0 {
		return s.Workload.Name
	}
	label := s.Workload.Names[0]
	for _, n := range s.Workload.Names[1:] {
		label += "+" + n
	}
	return label
}

// ValidateConfig validates everything except the workload name, for
// callers simulating recorded traces instead of named workloads.
func (s Sim) ValidateConfig() error {
	if err := s.Predictor.Validate(); err != nil {
		return err
	}
	return s.Machine.Validate()
}

// CanonicalHash returns the spec's canonical identity: a short hex hash
// of the canonical JSON encoding. The receiver must already be
// normalized (Normalize makes equivalent spellings encode identically;
// Go marshals struct fields in declaration order, so the encoding is
// deterministic regardless of how the incoming JSON ordered its keys).
func (s Sim) CanonicalHash() string {
	return hashJSON(s)
}

// Canonical normalizes and validates a copy of s under defaults d,
// returning the canonical spec and its hash. The hash is the system's
// idempotency key: any two nodes that canonicalize the same simulation
// — a retry after a timeout, a re-dispatch after a worker death, a
// duplicate point inside a sweep — arrive at the same key and therefore
// the same cache entry, so executing a spec more than once is always
// safe and the results are interchangeable.
func (s Sim) Canonical(d Defaults) (Sim, string, error) {
	n := s
	n.Normalize(d)
	if err := n.Validate(); err != nil {
		return n, "", err
	}
	return n, n.CanonicalHash(), nil
}

func hashJSON(v any) string {
	b, err := json.Marshal(v)
	if err != nil {
		// Unreachable: specs contain only marshalable fields.
		panic("spec: canonical marshal failed: " + err.Error())
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:8])
}

// preset is one named point of the paper's evaluation matrix.
type preset struct {
	desc string
	sim  Sim
}

// presets maps preset names to specs. Machine defaults are Table III
// throughout; the composite entries come from the Table VI winners.
var presets = map[string]preset{
	"table3": {
		desc: "Table III machine, default composite (PC-AM, 1K entries/component)",
		sim:  Sim{Predictor: PredictorSpec{Family: FamilyComposite}},
	},
	"best-9.6KB": {
		desc: "the paper's headline 9.6KB composite: Table VI 1K-budget winner + PC-AM + fusion",
		sim: Sim{Predictor: PredictorSpec{
			Family:  FamilyBest,
			Entries: [core.NumComponents]int{256, 256, 256, 256},
		}},
	},
	"best-3.6KB": {
		desc: "the Table VI 512-budget winner + PC-AM + fusion",
		sim: Sim{Predictor: PredictorSpec{
			Family:  FamilyBest,
			Entries: [core.NumComponents]int{64, 256, 128, 64},
		}},
	},
	"eves-8KB": {
		desc: "EVES (CVP-1 winner) at the paper's 8KB comparison point",
		sim:  Sim{Predictor: PredictorSpec{Family: FamilyEVES, BudgetKB: 8}},
	},
	"eves-32KB": {
		desc: "EVES (CVP-1 winner) at the paper's 32KB comparison point",
		sim:  Sim{Predictor: PredictorSpec{Family: FamilyEVES, BudgetKB: 32}},
	},
	"eves-inf": {
		desc: "EVES with unbounded storage (limit study)",
		sim:  Sim{Predictor: PredictorSpec{Family: FamilyEVES, BudgetKB: -1}},
	},
	"smt2": {
		desc: "2-context SMT core, default composite shared across contexts",
		sim: Sim{
			Machine:   MachineSpec{Contexts: 2},
			Predictor: PredictorSpec{Family: FamilyComposite},
		},
	},
	"smt4": {
		desc: "4-context SMT core, default composite shared across contexts",
		sim: Sim{
			Machine:   MachineSpec{Contexts: 4},
			Predictor: PredictorSpec{Family: FamilyComposite},
		},
	},
}

// Preset returns the named preset spec (not yet normalized), if it
// exists. Preset specs leave the workload unset; callers fill it in.
func Preset(name string) (Sim, bool) {
	p, ok := presets[name]
	return p.sim, ok
}

// PresetNames lists the preset names, sorted.
func PresetNames() []string {
	names := make([]string, 0, len(presets))
	for n := range presets {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// PresetDescription returns the one-line description of a preset.
func PresetDescription(name string) string { return presets[name].desc }
