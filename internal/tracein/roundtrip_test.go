package tracein_test

import (
	"bytes"
	"testing"

	"repro/internal/cpu"
	"repro/internal/spec"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/tracein"
)

// TestRoundTripGoldenRuns is the subsystem's end-to-end fidelity gate:
// a synthetic workload exported to the external trace format, converted
// back, and simulated must produce a bit-identical stats.Run to the
// live generator — for the baseline and for predictors that lean on
// every part of the stream (register dependences, branch outcomes, and
// the memory image the address predictors probe through the D-cache).
// A divergence means the format or the converter changed simulation
// semantics, not just plumbing.
func TestRoundTripGoldenRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates 18 runs")
	}
	const (
		insts = 20_000
		seed  = 0xC0FFEE
	)
	predictors := map[string]spec.PredictorSpec{
		"baseline":  {Family: spec.FamilyNone},
		"composite": {Family: spec.FamilyComposite},
		"eves":      {Family: spec.FamilyEVES},
	}

	for _, name := range []string{"gcc2k", "mcf", "xalancbmk"} {
		w, ok := trace.ByName(name)
		if !ok {
			t.Fatalf("unknown workload %q", name)
		}
		var buf bytes.Buffer
		if _, err := tracein.Encode(&buf, w.Build(insts)); err != nil {
			t.Fatalf("%s: encode: %v", name, err)
		}
		rep, info, err := tracein.Convert(bytes.NewReader(buf.Bytes()), 0)
		if err != nil {
			t.Fatalf("%s: convert: %v", name, err)
		}
		if info.BackfilledBytes != 0 {
			t.Fatalf("%s: round trip backfilled %d bytes; fill seed not carried", name, info.BackfilledBytes)
		}
		for label, ps := range predictors {
			sim := spec.Sim{Predictor: ps}
			sim.Normalize(spec.Defaults{Insts: insts})
			mkEngine := func() cpu.Engine {
				if sim.Predictor.Family == spec.FamilyNone {
					return nil
				}
				eng, err := spec.NewEngine(sim.Predictor, insts, seed)
				if err != nil {
					t.Fatalf("%s/%s: engine: %v", name, label, err)
				}
				return eng
			}
			want := runOnce(w.Build(insts), name, label, mkEngine())
			got := runOnce(rep.Cursor(), name, label, mkEngine())
			if want != got {
				t.Errorf("%s/%s: replayed trace diverges from live generator:\nlive   %+v\nreplay %+v",
					name, label, want, got)
			}
		}
	}
}

func runOnce(gen trace.Generator, name, label string, eng cpu.Engine) stats.Run {
	p := cpu.Acquire(cpu.DefaultConfig(), eng)
	defer cpu.Release(p)
	return p.Run(gen, name, label)
}

// BenchmarkTraceinDecode measures the steady-state record decode loop —
// the path every uploaded trace streams through — at one record per op.
// The gate is 0 allocs/op: Record is a fixed-size value, Next reads
// through a reused scratch buffer, and Reset reuses the gzip window and
// the buffered reader, so per-record decode touches the heap not at
// all (gzip's per-block table setup amortizes to zero across a file's
// tens of thousands of records).
func BenchmarkTraceinDecode(b *testing.B) {
	const insts = 20_000
	w, ok := trace.ByName("gcc2k")
	if !ok {
		b.Fatal("unknown workload gcc2k")
	}
	var buf bytes.Buffer
	if _, err := tracein.Encode(&buf, w.Build(insts)); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()

	br := bytes.NewReader(data)
	rd, err := tracein.NewReader(br)
	if err != nil {
		b.Fatal(err)
	}
	var rec tracein.Record
	// Warmup: one full pass so lazily-grown internals reach steady
	// state before the measured region.
	for rd.Next(&rec) {
	}
	if err := rd.Err(); err != nil {
		b.Fatal(err)
	}
	br.Reset(data)
	if err := rd.Reset(br); err != nil {
		b.Fatal(err)
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !rd.Next(&rec) {
			if err := rd.Err(); err != nil {
				b.Fatal(err)
			}
			br.Reset(data)
			if err := rd.Reset(br); err != nil {
				b.Fatal(err)
			}
			if !rd.Next(&rec) {
				b.Fatal("empty trace on rewind")
			}
		}
	}
}
