// Package tracein ingests external instruction traces: a CVP-1-style
// binary trace format (the substrate the EVES championship predictor
// was built on), a streaming decoder that keeps the repository's
// zero-allocation hot-path discipline, and a converter that turns a
// trace file into the recorded workload streams the rest of the system
// (spec registry, artifact store, daemon, cluster) already understands.
//
// # Container
//
// A trace file is a single gzip stream holding a fixed 26-byte header
// followed by the record payload:
//
//	offset size  field
//	0      4     magic "LVPX"
//	4      2     version (little-endian u16, currently 1)
//	6      8     instruction count (little-endian u64)
//	14     8     memory fill seed (little-endian u64; 0 = unknown)
//	22     4     CRC-32C of the uncompressed record payload (LE u32)
//
// The fill seed is a fidelity hint for tools that re-export traces from
// this repository's synthetic workloads: it lets the converter seed the
// reconstructed memory image identically to the original generator, so
// a synthetic workload survives an encode/decode round trip
// bit-identically (including the fill values SAP/CAP D-cache probes
// observe at addresses the trace itself never touches). Traces captured
// from real programs carry 0 and accept the documented substitution
// caveat (DESIGN.md §15).
//
// # Records
//
// One record per instruction, fixed-width little-endian fields gated by
// the class and an aux bitfield — the field set mirrors the CVP-1
// per-instruction shape (PC, instruction class, source/destination
// registers, effective address + access size + memory value, branch
// direction + target):
//
//	u64 PC
//	u8  class          CVP-1 instruction class (0-7, below)
//	u8  aux            bit 0    subtype: call/return variant of the
//	                            unconditional branch classes
//	                   bits 1-3 memory-ordering flags (atomic,
//	                            exclusive, ordered)
//	                   bit 4    latency byte trails the record
//	                   bit 5    destination register byte present
//	                   bits 6-7 source register count (0-3)
//	[u8 dst]           if aux bit 5
//	nSrc × u8          source register ids
//	u64 EA, u8 size,   loads and stores only; stores carry the stored
//	u64 value          value (a deliberate extension over strict CVP-1,
//	                   which derives it — the converter needs store data
//	                   to keep the memory image consistent)
//	u8 taken, u64 tgt  branch classes only
//	[u8 lat]           if aux bit 4: intrinsic execute latency
package tracein

import (
	"bufio"
	"compress/gzip"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// CVP-1 instruction classes.
const (
	ClassALU            = 0
	ClassLoad           = 1
	ClassStore          = 2
	ClassCondBranch     = 3
	ClassUncondDirect   = 4
	ClassUncondIndirect = 5
	ClassFP             = 6
	ClassSlowALU        = 7

	// NumClasses bounds the class byte; anything >= is a decode error.
	NumClasses = 8
)

// Container constants.
const (
	Magic   = "LVPX"
	Version = 1

	headerLen = 26

	// maxSrcRegs is the per-record source-register capacity (2 bits in
	// aux). CVP-1 traces can carry more; the converter folds extras away
	// and counts them.
	maxSrcRegs = 3

	// maxRecordLen is the widest possible record: header fields plus
	// every optional group present.
	maxRecordLen = 10 + 1 + maxSrcRegs + 17 + 9 + 1
)

// aux bitfield layout.
const (
	auxSubOp    = 1 << 0
	auxFlagsSh  = 1
	auxFlagsMsk = 0x7
	auxHasLat   = 1 << 4
	auxHasDst   = 1 << 5
	auxNSrcSh   = 6
)

// crcTable is the Castagnoli polynomial, matching the repository's WAL
// framing (hardware-accelerated on amd64/arm64).
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Decode errors. Reader.Err wraps these so callers can classify
// failures without string matching.
var (
	ErrBadMagic    = errors.New("tracein: bad magic")
	ErrBadVersion  = errors.New("tracein: unsupported version")
	ErrBadClass    = errors.New("tracein: record class out of range")
	ErrChecksum    = errors.New("tracein: payload checksum mismatch")
	ErrTruncated   = errors.New("tracein: truncated trace")
	ErrTrailing    = errors.New("tracein: trailing bytes after final record")
	ErrEmptyTrace  = errors.New("tracein: trace holds no instructions")
	ErrTraceTooBig = errors.New("tracein: trace exceeds instruction limit")
)

// Header is the decoded container header.
type Header struct {
	Version  uint16
	Count    uint64 // instruction records in the payload
	Seed     uint64 // memory fill seed hint (0 = unknown)
	Checksum uint32 // CRC-32C of the uncompressed payload
}

// Record is one decoded instruction record. It is a fixed-size value —
// no slices, no pointers — so the decode loop stays allocation-free.
type Record struct {
	PC     uint64
	EA     uint64
	Value  uint64
	Target uint64
	Class  uint8
	SubOp  uint8 // 1 = call (uncond direct) / return (uncond indirect)
	Flags  uint8 // memory-ordering flag bits (trace.Flags layout)
	HasDst bool
	Dst    uint8
	NSrc   uint8
	Src    [maxSrcRegs]uint8
	Size   uint8
	Taken  bool
	Lat    uint8 // 0 = class default
}

// IsMem reports whether the record's class carries the EA/size/value
// group.
func (r *Record) IsMem() bool { return r.Class == ClassLoad || r.Class == ClassStore }

// IsBranch reports whether the record's class carries the taken/target
// group.
func (r *Record) IsBranch() bool {
	return r.Class == ClassCondBranch || r.Class == ClassUncondDirect || r.Class == ClassUncondIndirect
}

// Reader is a streaming trace decoder. Open with NewReader, then call
// Next until it returns false; Err reports whether the stream ended
// cleanly (count reached, checksum verified) or failed. After the
// initial open, Reset lets a consumer re-decode another (or the same)
// stream without new allocations — the gzip window, the buffered
// reader, and the scratch buffer are all reused, which is what keeps
// the steady-state decode path at zero allocations per record.
type Reader struct {
	zr      *gzip.Reader
	br      *bufio.Reader
	hdr     Header
	n       uint64 // records decoded so far
	crc     uint32 // running payload CRC
	err     error
	done    bool
	scratch [maxRecordLen]byte
}

// NewReader opens a trace stream and decodes its header.
func NewReader(r io.Reader) (*Reader, error) {
	d := &Reader{}
	if err := d.Reset(r); err != nil {
		return nil, err
	}
	return d, nil
}

// Reset re-points the reader at a new stream and decodes its header,
// reusing all internal buffers.
func (d *Reader) Reset(r io.Reader) error {
	if d.zr == nil {
		zr, err := gzip.NewReader(r)
		if err != nil {
			return fmt.Errorf("tracein: gzip: %w", err)
		}
		d.zr = zr
	} else if err := d.zr.Reset(r); err != nil {
		return fmt.Errorf("tracein: gzip: %w", err)
	}
	if d.br == nil {
		d.br = bufio.NewReaderSize(d.zr, 64<<10)
	} else {
		d.br.Reset(d.zr)
	}
	d.n, d.crc, d.err, d.done = 0, 0, nil, false

	h := d.scratch[:headerLen]
	if _, err := io.ReadFull(d.br, h); err != nil {
		return fmt.Errorf("tracein: reading header: %w", noEOF(err))
	}
	if string(h[:4]) != Magic {
		return ErrBadMagic
	}
	d.hdr = Header{
		Version:  binary.LittleEndian.Uint16(h[4:6]),
		Count:    binary.LittleEndian.Uint64(h[6:14]),
		Seed:     binary.LittleEndian.Uint64(h[14:22]),
		Checksum: binary.LittleEndian.Uint32(h[22:26]),
	}
	if d.hdr.Version != Version {
		return fmt.Errorf("%w %d", ErrBadVersion, d.hdr.Version)
	}
	return nil
}

// Header returns the decoded container header.
func (d *Reader) Header() Header { return d.hdr }

// Err returns the first decode error, nil after a clean end of stream.
func (d *Reader) Err() error { return d.err }

// Decoded returns the number of records decoded so far.
func (d *Reader) Decoded() uint64 { return d.n }

// Next decodes the next record. It returns false at end of stream or on
// error (check Err). The call is allocation-free.
func (d *Reader) Next(rec *Record) bool {
	if d.done || d.err != nil {
		return false
	}
	if d.n == d.hdr.Count {
		d.finish()
		return false
	}
	// Fixed prefix: PC, class, aux.
	head := d.scratch[:10]
	if _, err := io.ReadFull(d.br, head); err != nil {
		d.fail(err)
		return false
	}
	d.crc = crc32.Update(d.crc, crcTable, head)
	rec.PC = binary.LittleEndian.Uint64(head[0:8])
	rec.Class = head[8]
	aux := head[9]
	if rec.Class >= NumClasses {
		d.err = fmt.Errorf("%w: class %d at record %d", ErrBadClass, rec.Class, d.n)
		return false
	}
	rec.SubOp = aux & auxSubOp
	rec.Flags = (aux >> auxFlagsSh) & auxFlagsMsk
	rec.HasDst = aux&auxHasDst != 0
	rec.NSrc = aux >> auxNSrcSh
	rec.Dst, rec.Lat, rec.Size, rec.Taken = 0, 0, 0, false
	rec.EA, rec.Value, rec.Target = 0, 0, 0
	rec.Src = [maxSrcRegs]uint8{}

	// Everything after aux has a length fully determined by (class,
	// aux); read it in one piece.
	n := int(rec.NSrc)
	if rec.HasDst {
		n++
	}
	if rec.IsMem() {
		n += 17
	}
	if rec.IsBranch() {
		n += 9
	}
	if aux&auxHasLat != 0 {
		n++
	}
	body := d.scratch[:n]
	if n > 0 {
		if _, err := io.ReadFull(d.br, body); err != nil {
			d.fail(err)
			return false
		}
		d.crc = crc32.Update(d.crc, crcTable, body)
	}
	p := 0
	if rec.HasDst {
		rec.Dst = body[p]
		p++
	}
	for i := 0; i < int(rec.NSrc); i++ {
		rec.Src[i] = body[p]
		p++
	}
	if rec.IsMem() {
		rec.EA = binary.LittleEndian.Uint64(body[p : p+8])
		rec.Size = body[p+8]
		rec.Value = binary.LittleEndian.Uint64(body[p+9 : p+17])
		p += 17
	}
	if rec.IsBranch() {
		rec.Taken = body[p] != 0
		rec.Target = binary.LittleEndian.Uint64(body[p+1 : p+9])
		p += 9
	}
	if aux&auxHasLat != 0 {
		rec.Lat = body[p]
	}
	d.n++
	return true
}

// finish runs the end-of-stream checks: payload checksum and clean
// framing (no trailing bytes inside the gzip stream).
func (d *Reader) finish() {
	d.done = true
	if d.crc != d.hdr.Checksum {
		d.err = fmt.Errorf("%w: payload %08x, header %08x", ErrChecksum, d.crc, d.hdr.Checksum)
		return
	}
	if _, err := d.br.ReadByte(); err == nil {
		d.err = ErrTrailing
	}
}

func (d *Reader) fail(err error) {
	d.err = fmt.Errorf("tracein: record %d: %w", d.n, noEOF(err))
}

// noEOF converts io.EOF into the unambiguous truncation error: inside a
// record (or header), a clean EOF still means the file is short.
func noEOF(err error) error {
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return ErrTruncated
	}
	return err
}

// appendRecord serializes rec onto dst in the wire layout.
func appendRecord(dst []byte, rec *Record) []byte {
	var aux uint8
	aux |= rec.SubOp & auxSubOp
	aux |= (rec.Flags & auxFlagsMsk) << auxFlagsSh
	if rec.Lat != 0 {
		aux |= auxHasLat
	}
	if rec.HasDst {
		aux |= auxHasDst
	}
	aux |= rec.NSrc << auxNSrcSh
	dst = binary.LittleEndian.AppendUint64(dst, rec.PC)
	dst = append(dst, rec.Class, aux)
	if rec.HasDst {
		dst = append(dst, rec.Dst)
	}
	for i := 0; i < int(rec.NSrc); i++ {
		dst = append(dst, rec.Src[i])
	}
	if rec.IsMem() {
		dst = binary.LittleEndian.AppendUint64(dst, rec.EA)
		dst = append(dst, rec.Size)
		dst = binary.LittleEndian.AppendUint64(dst, rec.Value)
	}
	if rec.IsBranch() {
		taken := byte(0)
		if rec.Taken {
			taken = 1
		}
		dst = append(dst, taken)
		dst = binary.LittleEndian.AppendUint64(dst, rec.Target)
	}
	if rec.Lat != 0 {
		dst = append(dst, rec.Lat)
	}
	return dst
}

// writeContainer frames an already-built payload as a complete trace
// file: header + payload inside one gzip stream.
func writeContainer(w io.Writer, count, seed uint64, payload []byte) error {
	zw := gzip.NewWriter(w)
	var hdr [headerLen]byte
	copy(hdr[:4], Magic)
	binary.LittleEndian.PutUint16(hdr[4:6], Version)
	binary.LittleEndian.PutUint64(hdr[6:14], count)
	binary.LittleEndian.PutUint64(hdr[14:22], seed)
	binary.LittleEndian.PutUint32(hdr[22:26], crc32.Checksum(payload, crcTable))
	if _, err := zw.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := zw.Write(payload); err != nil {
		return err
	}
	return zw.Close()
}
