package tracein

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"

	"repro/internal/mem"
	"repro/internal/trace"
)

// This file turns decoded trace records into the repository's native
// stream form: a trace.Replay (instruction slice + architecturally
// consistent start-of-run memory image) that registers as an external
// workload and flows through the artifact store, spec validation, and
// the cluster exactly like a recorded synthetic stream.
//
// # Instruction mapping
//
// CVP-1 classes map onto the micro-op vocabulary the pipeline model
// executes:
//
//	class            op         notes
//	alu              OpALU      latency byte honored, default 1
//	load             OpLoad     EA/size/value carried through
//	store            OpStore    EA/size/value carried through
//	condBranch       OpBranch   taken/target carried through
//	uncondDirect     OpJump     subtype 1 → OpCall
//	uncondIndirect   OpIndirect subtype 1 → OpRet
//	fp               OpALU      decode-only; default latency 3
//	slowAlu          OpALU      decode-only; default latency 12
//
// The encoder never emits fp/slowAlu (the internal Op vocabulary folds
// them into OpALU with an explicit latency), so an encode/decode round
// trip is exact; foreign traces using those classes decode to ALU ops
// with representative latencies.
//
// Register ids fold into the model's 32-register file: ids below
// NumRegs map identically (so round trips are exact), larger ids fold
// to 1+(id mod 31), preserving "same id ⇒ same register" within the
// folded range so dependence chains survive even when absolute names
// do not. Records carrying more than two sources keep the first two
// (the micro-op has two source slots) and the converter counts the
// drops in Info.
//
// # Memory image reconstruction
//
// The pipeline's address predictors (SAP/CAP) probe the simulated
// D-cache, so replayed loads must observe a memory image consistent
// with the values the trace says they returned. The converter rebuilds
// a start-of-run pre-image by walking the trace with a shadow image:
//
//   - Every byte touched by a processed load or store is pinned: its
//     shadow content is now architectural history and may not change.
//   - A load whose unpinned bytes already match the shadow (fill values
//     or earlier writes) just pins them.
//   - A load whose unpinned bytes disagree backfills those bytes into
//     both the pre-image and the shadow, then pins them — the value
//     existed before the trace began.
//   - A load that disagrees on a pinned byte is architecturally
//     inconsistent (the trace contradicts its own earlier accesses);
//     the converter keeps the recorded value (the trace is the ground
//     truth for what the load returned) and counts it.
//
// Stores write the shadow and pin, never the pre-image.
type Info struct {
	Header Header
	Insts  uint64
	// Classes counts records per CVP-1 class.
	Classes [NumClasses]uint64
	// BackfilledBytes is how many pre-image bytes were reconstructed
	// from load values (bytes the fill seed did not already explain).
	BackfilledBytes uint64
	// InconsistentLoads counts loads whose value contradicts a pinned
	// byte of architectural history. Nonzero means the source trace is
	// internally inconsistent; replay keeps the recorded load values.
	InconsistentLoads uint64
	// DroppedSrcRegs counts source-register ids beyond the micro-op's
	// two source slots.
	DroppedSrcRegs uint64
	// FootprintWords is the reconstructed pre-image size in 8-byte
	// words (what a version-2 LVPT artifact will carry explicitly).
	FootprintWords int
}

// Hash returns the content address of a trace file: the first eight
// bytes, hex encoded, of the SHA-256 of the raw file bytes. The
// derived workload name is trace.ExternalPrefix + Hash.
func Hash(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:8])
}

// WorkloadName returns the registry stream name for a trace file's
// content ("ext:<hash>").
func WorkloadName(data []byte) string {
	return trace.ExternalPrefix + Hash(data)
}

// Convert decodes a complete trace stream into a replayable recording
// and its reconstruction report. maxInsts bounds the accepted
// instruction count (0 = unbounded); the header count is checked before
// any record is materialized, so a hostile header cannot balloon
// memory.
func Convert(r io.Reader, maxInsts uint64) (*trace.Replay, *Info, error) {
	rd, err := NewReader(r)
	if err != nil {
		return nil, nil, err
	}
	hdr := rd.Header()
	if hdr.Count == 0 {
		return nil, nil, ErrEmptyTrace
	}
	if maxInsts > 0 && hdr.Count > maxInsts {
		return nil, nil, fmt.Errorf("%w: %d instructions, limit %d", ErrTraceTooBig, hdr.Count, maxInsts)
	}

	info := &Info{Header: hdr}
	image := mem.NewBacking(hdr.Seed)  // reconstructed pre-image
	shadow := mem.NewBacking(hdr.Seed) // current architectural memory
	pinned := make(map[uint64]uint8)   // wordIdx → mask of pinned bytes

	insts := make([]trace.Inst, 0, hdr.Count)
	var rec Record
	for rd.Next(&rec) {
		info.Classes[rec.Class]++
		var in trace.Inst
		info.DroppedSrcRegs += uint64(recordToInst(&rec, &in))

		switch in.Op {
		case trace.OpLoad:
			size := effSize(in.Size)
			want := in.Value
			if size < 8 {
				want &= (uint64(1) << (8 * uint64(size))) - 1
			}
			inconsistent := false
			for i := uint8(0); i < size; i++ {
				a := in.Addr + uint64(i)
				wb := a >> 3
				bit := uint8(1) << (a & 7)
				wantB := uint64(byte(want >> (8 * i)))
				curB := shadow.Read(a, 1)
				if pinned[wb]&bit != 0 {
					if curB != wantB {
						inconsistent = true
					}
					continue
				}
				if curB != wantB {
					image.Write(a, 1, wantB)
					shadow.Write(a, 1, wantB)
					info.BackfilledBytes++
				}
				pinned[wb] |= bit
			}
			if inconsistent {
				info.InconsistentLoads++
			}
		case trace.OpStore:
			size := effSize(in.Size)
			shadow.Write(in.Addr, size, in.Value)
			for i := uint8(0); i < size; i++ {
				a := in.Addr + uint64(i)
				pinned[a>>3] |= uint8(1) << (a & 7)
			}
		}
		insts = append(insts, in)
	}
	if err := rd.Err(); err != nil {
		return nil, nil, err
	}
	info.Insts = rd.Decoded()
	info.FootprintWords = image.Footprint()
	return trace.NewReplay(insts, image), info, nil
}

// ConvertBytes converts an in-memory trace file and derives its
// content-addressed workload name in one step.
func ConvertBytes(data []byte, maxInsts uint64) (string, *trace.Replay, *Info, error) {
	rep, info, err := Convert(bytes.NewReader(data), maxInsts)
	if err != nil {
		return "", nil, nil, err
	}
	return WorkloadName(data), rep, info, nil
}

// Encode drains gen into w as a trace file and returns the number of
// instructions written. The header records the generator's memory fill
// seed, so re-importing a synthetic workload's trace reconstructs the
// identical memory image (zero backfill) and round-trips runs
// bit-identically. Any start-of-stream pre-image footprint is not
// carried by the format — the load values in the records let Convert
// reconstruct it on the other side.
func Encode(w io.Writer, gen trace.Generator) (uint64, error) {
	seed := gen.Mem().Seed()
	var (
		payload []byte
		count   uint64
		in      trace.Inst
		rec     Record
	)
	for gen.Next(&in) {
		instToRecord(&in, &rec)
		payload = appendRecord(payload, &rec)
		count++
	}
	if err := writeContainer(w, count, seed, payload); err != nil {
		return 0, err
	}
	return count, nil
}

// effSize normalizes an access size the way mem.Backing does: 0 and
// anything over 8 mean a full word.
func effSize(size uint8) uint8 {
	if size == 0 || size > 8 {
		return 8
	}
	return size
}

// mapReg folds an external register id into the model's register file.
// Ids below NumRegs map identically; larger ids fold to 1+(id mod 31),
// never landing on the zero/none register.
func mapReg(e uint8) trace.Reg {
	if e < trace.NumRegs {
		return trace.Reg(e)
	}
	return trace.Reg(1 + e%31)
}

// recordToInst maps a decoded record onto a micro-op, returning how
// many source registers were dropped for exceeding the two source
// slots.
func recordToInst(rec *Record, in *trace.Inst) int {
	*in = trace.Inst{PC: rec.PC, Lat: 1, Flags: trace.Flags(rec.Flags)}
	if rec.HasDst {
		in.Dst = mapReg(rec.Dst)
	}
	if rec.NSrc > 0 {
		in.Src1 = mapReg(rec.Src[0])
	}
	if rec.NSrc > 1 {
		in.Src2 = mapReg(rec.Src[1])
	}
	dropped := 0
	if rec.NSrc > 2 {
		dropped = int(rec.NSrc) - 2
	}
	switch rec.Class {
	case ClassALU:
		in.Op = trace.OpALU
	case ClassSlowALU:
		in.Op = trace.OpALU
		in.Lat = 12
	case ClassFP:
		in.Op = trace.OpALU
		in.Lat = 3
	case ClassLoad:
		in.Op = trace.OpLoad
		in.Addr, in.Size, in.Value = rec.EA, rec.Size, rec.Value
	case ClassStore:
		in.Op = trace.OpStore
		in.Addr, in.Size, in.Value = rec.EA, rec.Size, rec.Value
	case ClassCondBranch:
		in.Op = trace.OpBranch
		in.Taken, in.Target = rec.Taken, rec.Target
	case ClassUncondDirect:
		in.Op = trace.OpJump
		if rec.SubOp == 1 {
			in.Op = trace.OpCall
		}
		in.Taken, in.Target = rec.Taken, rec.Target
	case ClassUncondIndirect:
		in.Op = trace.OpIndirect
		if rec.SubOp == 1 {
			in.Op = trace.OpRet
		}
		in.Taken, in.Target = rec.Taken, rec.Target
	}
	if rec.Lat != 0 {
		in.Lat = rec.Lat
	}
	return dropped
}

// instToRecord maps a micro-op onto the wire record. Internal register
// ids are below NumRegs, so the identity mapping holds on both sides
// and round trips are exact.
func instToRecord(in *trace.Inst, rec *Record) {
	*rec = Record{PC: in.PC, Flags: uint8(in.Flags) & auxFlagsMsk}
	if in.Dst != 0 {
		rec.HasDst = true
		rec.Dst = uint8(in.Dst)
	}
	// Trailing-zero trimming only: an explicit none in the first slot
	// with a live second slot must keep its position.
	if in.Src2 != 0 {
		rec.NSrc = 2
		rec.Src[0], rec.Src[1] = uint8(in.Src1), uint8(in.Src2)
	} else if in.Src1 != 0 {
		rec.NSrc = 1
		rec.Src[0] = uint8(in.Src1)
	}
	switch in.Op {
	case trace.OpALU:
		rec.Class = ClassALU
	case trace.OpLoad:
		rec.Class = ClassLoad
		rec.EA, rec.Size, rec.Value = in.Addr, in.Size, in.Value
	case trace.OpStore:
		rec.Class = ClassStore
		rec.EA, rec.Size, rec.Value = in.Addr, in.Size, in.Value
	case trace.OpBranch:
		rec.Class = ClassCondBranch
		rec.Taken, rec.Target = in.Taken, in.Target
	case trace.OpJump:
		rec.Class = ClassUncondDirect
		rec.Taken, rec.Target = in.Taken, in.Target
	case trace.OpCall:
		rec.Class = ClassUncondDirect
		rec.SubOp = 1
		rec.Taken, rec.Target = in.Taken, in.Target
	case trace.OpIndirect:
		rec.Class = ClassUncondIndirect
		rec.Taken, rec.Target = in.Taken, in.Target
	case trace.OpRet:
		rec.Class = ClassUncondIndirect
		rec.SubOp = 1
		rec.Taken, rec.Target = in.Taken, in.Target
	}
	if in.Lat > 1 {
		rec.Lat = in.Lat
	}
}
