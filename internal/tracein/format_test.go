package tracein

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"testing"
)

// container builds a trace file from raw payload bytes, optionally
// forcing a wrong checksum or count, so tests can construct both valid
// and precisely-corrupted inputs.
func container(t testing.TB, count, seed uint64, payload []byte, badCRC bool) []byte {
	return containerTrailing(t, count, seed, payload, nil, badCRC)
}

// containerTrailing additionally appends bytes after the records, NOT
// covered by the header checksum — the framing violation the decoder's
// end-of-stream check must catch.
func containerTrailing(t testing.TB, count, seed uint64, payload, trailing []byte, badCRC bool) []byte {
	t.Helper()
	crc := crc32.Checksum(payload, crcTable)
	if badCRC {
		crc ^= 0xDEADBEEF
	}
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	var hdr [headerLen]byte
	copy(hdr[:4], Magic)
	binary.LittleEndian.PutUint16(hdr[4:6], Version)
	binary.LittleEndian.PutUint64(hdr[6:14], count)
	binary.LittleEndian.PutUint64(hdr[14:22], seed)
	binary.LittleEndian.PutUint32(hdr[22:26], crc)
	if _, err := zw.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	if _, err := zw.Write(payload); err != nil {
		t.Fatal(err)
	}
	if _, err := zw.Write(trailing); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// errAny marks robustness cases where any decode error is acceptable —
// e.g. byte-level truncation, which can surface as our truncation
// sentinel or as a flate corruption error depending on where the cut
// lands.
var errAny = errors.New("any error")

// sampleRecords returns a payload exercising every class and optional
// field group.
func sampleRecords(t testing.TB) ([]byte, []Record) {
	t.Helper()
	recs := []Record{
		{PC: 0x1000, Class: ClassALU, HasDst: true, Dst: 3, NSrc: 2, Src: [3]uint8{1, 2}},
		{PC: 0x1004, Class: ClassALU, Lat: 12, HasDst: true, Dst: 4, NSrc: 1, Src: [3]uint8{3}},
		{PC: 0x1008, Class: ClassLoad, HasDst: true, Dst: 5, NSrc: 1, Src: [3]uint8{4},
			EA: 0x8000, Size: 8, Value: 0x1122334455667788},
		{PC: 0x100c, Class: ClassStore, NSrc: 2, Src: [3]uint8{5, 4}, EA: 0x8010, Size: 4, Value: 0xCAFE},
		{PC: 0x1010, Class: ClassCondBranch, NSrc: 1, Src: [3]uint8{5}, Taken: true, Target: 0x1000},
		{PC: 0x1014, Class: ClassUncondDirect, SubOp: 1, Taken: true, Target: 0x2000},
		{PC: 0x1018, Class: ClassUncondIndirect, NSrc: 1, Src: [3]uint8{30}, Taken: true, Target: 0x1020},
		{PC: 0x101c, Class: ClassUncondIndirect, SubOp: 1, Taken: true, Target: 0x1018},
		{PC: 0x1020, Class: ClassFP, HasDst: true, Dst: 7, NSrc: 3, Src: [3]uint8{1, 2, 3}},
		{PC: 0x1024, Class: ClassSlowALU, HasDst: true, Dst: 8, Flags: 0x5},
		{PC: 0x1028, Class: ClassLoad, HasDst: true, Dst: 9, EA: 0xFFFF_FFFF_FFFF_FFF0, Size: 2, Value: 0xBEEF},
	}
	var payload []byte
	for i := range recs {
		payload = appendRecord(payload, &recs[i])
	}
	return payload, recs
}

func TestRecordRoundTrip(t *testing.T) {
	payload, want := sampleRecords(t)
	data := container(t, uint64(len(want)), 0xABCD, payload, false)

	rd, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	hdr := rd.Header()
	if hdr.Count != uint64(len(want)) || hdr.Seed != 0xABCD || hdr.Version != Version {
		t.Fatalf("header mismatch: %+v", hdr)
	}
	var got []Record
	var rec Record
	for rd.Next(&rec) {
		got = append(got, rec)
	}
	if err := rd.Err(); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("record %d:\n got %+v\nwant %+v", i, got[i], want[i])
		}
	}
}

func TestReaderReset(t *testing.T) {
	payload, want := sampleRecords(t)
	data := container(t, uint64(len(want)), 7, payload, false)
	rd, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	var rec Record
	for rd.Next(&rec) {
	}
	if err := rd.Err(); err != nil {
		t.Fatal(err)
	}
	// Second pass over the same reader via Reset.
	if err := rd.Reset(bytes.NewReader(data)); err != nil {
		t.Fatal(err)
	}
	n := 0
	for rd.Next(&rec) {
		n++
	}
	if err := rd.Err(); err != nil {
		t.Fatal(err)
	}
	if n != len(want) {
		t.Fatalf("after Reset decoded %d records, want %d", n, len(want))
	}
}

func TestReaderRobustness(t *testing.T) {
	payload, recs := sampleRecords(t)
	valid := container(t, uint64(len(recs)), 0, payload, false)

	gz := func(b []byte) []byte {
		var buf bytes.Buffer
		zw := gzip.NewWriter(&buf)
		zw.Write(b)
		zw.Close()
		return buf.Bytes()
	}

	cases := []struct {
		name    string
		data    []byte
		openErr error // expected from NewReader; nil = open succeeds
		iterErr error // expected from Err() after draining; nil = clean
	}{
		{"not gzip", []byte("definitely not a gzip stream"), nil, nil},
		{"bad magic", gz([]byte("NOPE when a header should be")), ErrBadMagic, nil},
		{"truncated header", gz([]byte(Magic + "\x01\x00")), ErrTruncated, nil},
		{"wrong version", func() []byte {
			d := make([]byte, headerLen)
			copy(d, Magic)
			binary.LittleEndian.PutUint16(d[4:6], 99)
			return gz(d)
		}(), ErrBadVersion, nil},
		{"zero instructions", container(t, 0, 0, nil, false), nil, nil},
		{"checksum mismatch", container(t, uint64(len(recs)), 0, payload, true), nil, ErrChecksum},
		{"truncated payload", container(t, uint64(len(recs))+3, 0, payload, false), nil, ErrTruncated},
		{"trailing bytes", containerTrailing(t, uint64(len(recs)), 0, payload, []byte{0xAA}, false), nil, ErrTrailing},
		{"bad class", container(t, 1, 0, appendRecord(nil, &Record{Class: NumClasses}), false), nil, ErrBadClass},
		{"truncated mid-stream", valid[:len(valid)/2], nil, errAny},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rd, err := NewReader(bytes.NewReader(tc.data))
			if tc.openErr != nil {
				if !errors.Is(err, tc.openErr) {
					t.Fatalf("NewReader err = %v, want %v", err, tc.openErr)
				}
				return
			}
			if tc.name == "not gzip" {
				if err == nil {
					t.Fatal("NewReader accepted non-gzip input")
				}
				return
			}
			if err != nil {
				t.Fatalf("NewReader: %v", err)
			}
			var rec Record
			for rd.Next(&rec) {
			}
			if tc.iterErr == nil {
				if err := rd.Err(); err != nil {
					t.Fatalf("Err() = %v, want clean end", err)
				}
				return
			}
			err = rd.Err()
			if tc.iterErr == errAny {
				if err == nil {
					t.Fatal("Err() = nil, want a decode error")
				}
				return
			}
			if !errors.Is(err, tc.iterErr) {
				t.Fatalf("Err() = %v, want %v", err, tc.iterErr)
			}
		})
	}
}

// FuzzReader feeds arbitrary bytes through the full decode loop: the
// decoder must reject garbage with an error, never a panic, and must
// never read past its record bounds.
func FuzzReader(f *testing.F) {
	payload, recs := sampleRecords(f)
	f.Add(container(f, uint64(len(recs)), 1, payload, false))
	f.Add(container(f, uint64(len(recs)), 1, payload, true))
	f.Add(container(f, 0, 0, nil, false))
	f.Add([]byte(Magic))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		rd, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		var rec Record
		for rd.Next(&rec) {
		}
		_ = rd.Err()
	})
}
