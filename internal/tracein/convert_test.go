package tracein

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/mem"
	"repro/internal/trace"
)

// TestEncodeConvertExact proves a synthetic workload survives the
// encode → convert round trip exactly: same instruction stream, zero
// backfill (the header's fill seed already explains every load value),
// and a pre-image whose seed matches the live generator's.
func TestEncodeConvertExact(t *testing.T) {
	const insts = 5_000
	for _, name := range []string{"gcc2k", "mcf", "xalancbmk"} {
		w, ok := trace.ByName(name)
		if !ok {
			t.Fatalf("unknown workload %q", name)
		}
		var buf bytes.Buffer
		n, err := Encode(&buf, w.Build(insts))
		if err != nil {
			t.Fatalf("%s: encode: %v", name, err)
		}
		rep, info, err := Convert(bytes.NewReader(buf.Bytes()), 0)
		if err != nil {
			t.Fatalf("%s: convert: %v", name, err)
		}
		if info.Insts != n || uint64(rep.Len()) != n {
			t.Fatalf("%s: converted %d/%d instructions, encoded %d", name, info.Insts, rep.Len(), n)
		}
		if info.BackfilledBytes != 0 || info.FootprintWords != 0 {
			t.Errorf("%s: round trip should need no backfill, got %d bytes (%d words)",
				name, info.BackfilledBytes, info.FootprintWords)
		}
		if info.InconsistentLoads != 0 || info.DroppedSrcRegs != 0 {
			t.Errorf("%s: round trip reported inconsistencies: %+v", name, info)
		}
		if got, want := rep.Mem().Seed(), trace.FillSeed(name); got != want {
			t.Errorf("%s: pre-image seed %#x, want fill seed %#x", name, got, want)
		}
		gen := w.Build(insts)
		var live, conv trace.Inst
		for i := 0; gen.Next(&live); i++ {
			if !rep.Next(&conv) {
				t.Fatalf("%s: converted stream ended at %d", name, i)
			}
			if live != conv {
				t.Fatalf("%s: instruction %d diverges:\nlive %+v\nconv %+v", name, i, live, conv)
			}
		}
	}
}

// TestConvertBackfill hand-builds a trace whose load values cannot come
// from the fill seed, and checks the reconstructed pre-image supplies
// them while respecting architectural history.
func TestConvertBackfill(t *testing.T) {
	fill := mem.NewBacking(42)
	surprising := ^fill.Read(0x8000, 8) // differs from fill in every byte

	recs := []Record{
		// Load of a value the seed cannot explain: must backfill.
		{PC: 1, Class: ClassLoad, HasDst: true, Dst: 1, EA: 0x8000, Size: 8, Value: surprising},
		// Same location again, same value: consistent, no new backfill.
		{PC: 2, Class: ClassLoad, HasDst: true, Dst: 2, EA: 0x8000, Size: 8, Value: surprising},
		// Store pins new contents...
		{PC: 3, Class: ClassStore, NSrc: 1, Src: [3]uint8{1}, EA: 0x8000, Size: 8, Value: 7},
		// ...and a later load contradicting the store is inconsistent.
		{PC: 4, Class: ClassLoad, HasDst: true, Dst: 3, EA: 0x8000, Size: 8, Value: 9},
		// A load matching the fill seed needs no backfill.
		{PC: 5, Class: ClassLoad, HasDst: true, Dst: 4, EA: 0x9000, Size: 8, Value: fill.Read(0x9000, 8)},
	}
	var payload []byte
	for i := range recs {
		payload = appendRecord(payload, &recs[i])
	}
	data := container(t, uint64(len(recs)), 42, payload, false)

	rep, info, err := Convert(bytes.NewReader(data), 0)
	if err != nil {
		t.Fatal(err)
	}
	if info.BackfilledBytes != 8 {
		t.Errorf("BackfilledBytes = %d, want 8 (one surprising word)", info.BackfilledBytes)
	}
	if info.InconsistentLoads != 1 {
		t.Errorf("InconsistentLoads = %d, want 1", info.InconsistentLoads)
	}
	if got := rep.Mem().Read(0x8000, 8); got != surprising {
		t.Errorf("pre-image[0x8000] = %#x, want backfilled %#x", got, surprising)
	}
	if got := rep.Mem().Read(0x9000, 8); got != fill.Read(0x9000, 8) {
		t.Errorf("pre-image[0x9000] = %#x, want fill value", got)
	}
	// The pre-image is start-of-run state: the store must NOT be in it.
	if info.FootprintWords != 1 {
		t.Errorf("FootprintWords = %d, want 1 (only the backfilled word)", info.FootprintWords)
	}
}

// TestConvertRegisterFolding checks foreign register ids fold into the
// 32-register file deterministically and extra sources are counted.
func TestConvertRegisterFolding(t *testing.T) {
	recs := []Record{
		{PC: 1, Class: ClassALU, HasDst: true, Dst: 200, NSrc: 3, Src: [3]uint8{40, 31, 99}},
	}
	var payload []byte
	payload = appendRecord(payload, &recs[0])
	data := container(t, 1, 0, payload, false)

	rep, info, err := Convert(bytes.NewReader(data), 0)
	if err != nil {
		t.Fatal(err)
	}
	if info.DroppedSrcRegs != 1 {
		t.Errorf("DroppedSrcRegs = %d, want 1", info.DroppedSrcRegs)
	}
	var in trace.Inst
	if !rep.Next(&in) {
		t.Fatal("empty conversion")
	}
	if in.Dst != trace.Reg(1+200%31) {
		t.Errorf("Dst = %d, want folded %d", in.Dst, 1+200%31)
	}
	if in.Src1 != trace.Reg(1+40%31) || in.Src2 != 31 {
		t.Errorf("sources = %d,%d; want %d,31", in.Src1, in.Src2, 1+40%31)
	}
	if in.Dst == 0 || in.Src1 == 0 {
		t.Error("folded registers must never land on the zero register")
	}
}

// TestConvertDefaults checks the decode-only classes get representative
// latencies and the size/value normalization holds.
func TestConvertDefaults(t *testing.T) {
	recs := []Record{
		{PC: 1, Class: ClassFP, HasDst: true, Dst: 1},
		{PC: 2, Class: ClassSlowALU, HasDst: true, Dst: 2},
		{PC: 3, Class: ClassALU, HasDst: true, Dst: 3},
	}
	var payload []byte
	for i := range recs {
		payload = appendRecord(payload, &recs[i])
	}
	data := container(t, uint64(len(recs)), 0, payload, false)
	rep, _, err := Convert(bytes.NewReader(data), 0)
	if err != nil {
		t.Fatal(err)
	}
	var in trace.Inst
	for _, want := range []uint8{3, 12, 1} {
		if !rep.Next(&in) {
			t.Fatal("stream ended early")
		}
		if in.Op != trace.OpALU || in.Lat != want {
			t.Errorf("pc %#x: op=%v lat=%d, want alu lat=%d", in.PC, in.Op, in.Lat, want)
		}
	}
}

func TestConvertLimits(t *testing.T) {
	payload, recs := sampleRecords(t)
	data := container(t, uint64(len(recs)), 0, payload, false)

	if _, _, err := Convert(bytes.NewReader(data), 2); !errors.Is(err, ErrTraceTooBig) {
		t.Errorf("maxInsts=2: err = %v, want ErrTraceTooBig", err)
	}
	if _, _, err := Convert(bytes.NewReader(container(t, 0, 0, nil, false)), 0); !errors.Is(err, ErrEmptyTrace) {
		t.Errorf("empty trace: err = %v, want ErrEmptyTrace", err)
	}
	if _, _, err := Convert(bytes.NewReader(data), uint64(len(recs))); err != nil {
		t.Errorf("at the limit: %v", err)
	}
}

func TestWorkloadName(t *testing.T) {
	data := []byte("some trace bytes")
	name := WorkloadName(data)
	if !trace.IsExternalName(name) {
		t.Fatalf("WorkloadName(%q) = %q, not an external name", data, name)
	}
	if name != trace.ExternalPrefix+Hash(data) {
		t.Fatalf("name %q does not embed the content hash", name)
	}
	if len(Hash(data)) != 16 {
		t.Fatalf("Hash length %d, want 16 hex chars", len(Hash(data)))
	}
}
