package expt

import (
	"testing"

	"repro/internal/core"
	"repro/internal/spec"
)

// sampleNames picks a stratified subset of the pool for quicker sweeps.
func sampleNames(n int) []string {
	var all []string
	for _, w := range NewContext(Options{Insts: 1}).Pool() {
		all = append(all, w.Name)
	}
	if n >= len(all) {
		return all
	}
	out := make([]string, 0, n)
	step := float64(len(all)) / float64(n)
	for i := 0; i < n; i++ {
		out = append(out, all[int(float64(i)*step)])
	}
	return out
}

// TestComponentAccuracyTuning verifies the paper's central tuning
// premise: every component predictor, in isolation, delivers ≈99%
// accuracy on the workload mix (Section III-B).
func TestComponentAccuracyTuning(t *testing.T) {
	ctx := NewContext(Options{Insts: 60_000, Workloads: sampleNames(12)})
	for _, comp := range allComponents {
		a := Summarize(ctx.PerWorkload("acc", ctx.SingleFactory(comp, 1024)))
		if a.Accuracy < 0.99 {
			t.Errorf("%v accuracy = %.4f, want >= 0.99", comp, a.Accuracy)
		}
		if a.Coverage <= 0 {
			t.Errorf("%v coverage = %.1f%%", comp, a.Coverage)
		}
	}
}

// TestCompositeCoverageExceedsComponents: the composite's coverage must
// exceed every component's at equal per-component sizing (the paper's
// complementarity result).
func TestCompositeCoverageExceedsComponents(t *testing.T) {
	ctx := NewContext(Options{Insts: 60_000, Workloads: sampleNames(12)})
	compAgg := Summarize(ctx.PerWorkload("comp", ctx.CompositeFactory(core.HomogeneousEntries(256), spec.AMPC, false, false)))
	for _, comp := range allComponents {
		a := Summarize(ctx.PerWorkload("single", ctx.SingleFactory(comp, 1024)))
		if compAgg.Coverage <= a.Coverage {
			t.Errorf("composite coverage %.1f%% <= %v coverage %.1f%%", compAgg.Coverage, comp, a.Coverage)
		}
	}
}

// TestCompositeBeatsEVES reproduces the Figure 11 headline on a sample:
// more coverage and at least comparable speedup against EVES at a
// larger budget.
func TestCompositeBeatsEVES(t *testing.T) {
	ctx := NewContext(Options{Insts: 60_000, Workloads: sampleNames(12)})
	_, big := fig11Configs()
	comp := Summarize(ctx.PerWorkload("comp", ctx.BestComposite(big)))
	ev := Summarize(ctx.PerWorkload("eves", EVESFactory(32)))
	if comp.Coverage < 1.5*ev.Coverage {
		t.Errorf("composite coverage %.1f%% < 1.5 × EVES %.1f%%", comp.Coverage, ev.Coverage)
	}
	if comp.Speedup < ev.Speedup {
		t.Errorf("composite speedup %.2f%% < EVES %.2f%%", comp.Speedup, ev.Speedup)
	}
}
