// Package expt contains one runner per table and figure of the paper's
// evaluation (Tables IV-VI, Figures 2-12). Each runner simulates the
// workload pool under the relevant predictor configurations and renders
// the same rows/series the paper reports.
//
// Results are aggregated with the paper's conventions: arithmetic
// averages for rates and coverage, geometric averages for IPC-derived
// speedups (Section II-A).
package expt

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/spec"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Options configures an experiment context.
type Options struct {
	// Insts is the per-workload instruction budget (the paper uses
	// 100M-instruction simpoints; the default here is 100k, scaled for
	// quick runs — pass more via cmd/experiments -insts for tighter
	// aggregates).
	Insts uint64

	// Workloads restricts the pool (default: all 85).
	Workloads []string

	// Seed drives all predictor randomness.
	Seed uint64

	// Parallel is the worker count (default GOMAXPROCS).
	Parallel int

	// Traces, when non-nil, supplies recorded workload streams from a
	// content-addressed artifact store: each run replays a shared
	// recording instead of regenerating the stream, and replays engage
	// the pipeline's slice fast path. Nil keeps live generation.
	Traces *trace.ArtifactStore
}

// Context caches baseline runs and fans simulation jobs out over a
// worker pool. It is safe for concurrent use.
type Context struct {
	insts  uint64
	seed   uint64
	pool   []trace.Workload
	par    int
	traces *trace.ArtifactStore

	mu           sync.Mutex
	baselines    map[string]stats.Run
	smtBaselines map[string]SMTResult
	inflight     map[string]chan struct{}
}

// NewContext builds a context from opts. It panics on an unknown
// workload name; services handling untrusted input should use
// NewContextErr instead.
func NewContext(opts Options) *Context {
	c, err := NewContextErr(opts)
	if err != nil {
		panic(err.Error())
	}
	return c
}

// NewContextErr builds a context from opts, reporting unknown workload
// names as an error instead of panicking.
func NewContextErr(opts Options) (*Context, error) {
	c := &Context{
		insts:  opts.Insts,
		seed:   opts.Seed,
		par:    opts.Parallel,
		traces: opts.Traces,
	}
	if c.insts == 0 {
		c.insts = 100_000
	}
	if c.seed == 0 {
		c.seed = 0xC0FFEE
	}
	if c.par <= 0 {
		c.par = runtime.GOMAXPROCS(0)
	}
	if len(opts.Workloads) == 0 {
		c.pool = trace.Workloads()
	} else {
		for _, name := range opts.Workloads {
			w, ok := trace.ByName(name)
			if !ok {
				return nil, fmt.Errorf("expt: unknown workload %q", name)
			}
			c.pool = append(c.pool, w)
		}
	}
	c.baselines = make(map[string]stats.Run)
	c.smtBaselines = make(map[string]SMTResult)
	c.inflight = make(map[string]chan struct{})
	return c, nil
}

// Insts returns the per-workload instruction budget.
func (c *Context) Insts() uint64 { return c.insts }

// Seed returns the context seed.
func (c *Context) Seed() uint64 { return c.seed }

// Pool returns the workload pool.
func (c *Context) Pool() []trace.Workload { return c.pool }

// Baseline simulates (or returns the cached) no-VP run for w.
func (c *Context) Baseline(w trace.Workload) stats.Run {
	return c.BaselineCtx(context.Background(), w)
}

// HasBaseline reports whether the named workload's Table III baseline
// is already cached (i.e. BaselineCtx would return without simulating).
func (c *Context) HasBaseline(name string) bool {
	return c.HasBaselineMachine(name, spec.MachineSpec{})
}

// HasBaselineMachine reports whether the named workload's baseline on
// machine m is already cached.
func (c *Context) HasBaselineMachine(name string, m spec.MachineSpec) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.baselines[baselineKey(name, m)]
	return ok
}

// baselineKey identifies a baseline run: the workload name, suffixed
// with the machine's canonical hash when it deviates from Table III.
func baselineKey(name string, m spec.MachineSpec) string {
	if h := m.Hash(); h != "" {
		return name + "@" + h
	}
	return name
}

// BaselineCtx simulates (or returns the cached) no-VP run for w on the
// Table III machine.
func (c *Context) BaselineCtx(ctx context.Context, w trace.Workload) stats.Run {
	return c.BaselineMachineCtx(ctx, w, spec.MachineSpec{})
}

// BaselineMachineCtx simulates (or returns the cached) no-VP run for w
// on the machine described by m. The baseline for each (workload,
// machine) pair is simulated at most once: concurrent callers for the
// same uncached pair wait for the in-flight run instead of recomputing
// it. Aborted runs (ctx cancelled mid-simulation) are returned to the
// caller but never cached.
func (c *Context) BaselineMachineCtx(ctx context.Context, w trace.Workload, m spec.MachineSpec) stats.Run {
	return c.BaselineMachineProgressCtx(ctx, w, m, nil, 0)
}

// BaselineMachineProgressCtx is BaselineMachineCtx with a live progress
// slot: when this caller ends up simulating the baseline (cache miss,
// no other run in flight), the pipeline publishes a snapshot into pr
// every `every` instructions. Callers answered from the cache or from
// another caller's in-flight run observe no publications — the slot
// reports whatever it last held.
func (c *Context) BaselineMachineProgressCtx(ctx context.Context, w trace.Workload, m spec.MachineSpec, pr *cpu.Progress, every int) stats.Run {
	key := baselineKey(w.Name, m)
	for {
		c.mu.Lock()
		if r, ok := c.baselines[key]; ok {
			c.mu.Unlock()
			return r
		}
		if ch, ok := c.inflight[key]; ok {
			c.mu.Unlock()
			select {
			case <-ch:
				continue // re-check the cache; the run may have aborted
			case <-ctx.Done():
				return stats.Run{Workload: w.Name, Config: "base", Aborted: true}
			}
		}
		ch := make(chan struct{})
		c.inflight[key] = ch
		c.mu.Unlock()

		p := cpu.Acquire(m.Config(), nil)
		if pr != nil {
			// Attach after Acquire: the pool's Reset detaches slots.
			p.SetProgress(pr, every)
		}
		r := p.RunCtx(ctx, c.gen(w), w.Name, "base")
		cpu.Release(p)
		c.mu.Lock()
		delete(c.inflight, key)
		if !r.Aborted {
			c.baselines[key] = r
		}
		c.mu.Unlock()
		close(ch)
		return r
	}
}

// EngineFactory builds a fresh engine per run (engines are stateful and
// single-threaded).
type EngineFactory func(workloadSeed uint64) cpu.Engine

// RunOne simulates workload w with a fresh engine.
func (c *Context) RunOne(w trace.Workload, config string, mk EngineFactory) stats.Run {
	return c.RunOneCtx(context.Background(), w, config, mk)
}

// RunOneCtx simulates workload w with a fresh engine under ctx;
// cancellation aborts the run within one check interval.
func (c *Context) RunOneCtx(ctx context.Context, w trace.Workload, config string, mk EngineFactory) stats.Run {
	return c.RunEngineCtx(ctx, w, config, mk(c.EngineSeed(w)))
}

// EngineSeed returns the per-workload engine seed derived from the
// context seed — the seed RunOne hands to its factory. Exposed so
// callers that need to keep the engine (e.g. to inspect per-component
// statistics after the run) can build it themselves.
func (c *Context) EngineSeed(w trace.Workload) uint64 {
	return core.SplitMix64(c.seed ^ hashName(w.Name))
}

// RunEngineCtx simulates workload w with the supplied engine under ctx
// on the Table III machine. The engine must be fresh (engines are
// stateful and single-threaded). Pipelines come from the package pool,
// so repeated runs reuse the hierarchy, branch predictors, and
// scheduling rings.
func (c *Context) RunEngineCtx(ctx context.Context, w trace.Workload, config string, eng cpu.Engine) stats.Run {
	return c.RunEngineCfgCtx(ctx, w, config, eng, cpu.DefaultConfig())
}

// RunEngineCfgCtx is RunEngineCtx with an explicit core configuration
// (e.g. one materialized from a spec.MachineSpec).
func (c *Context) RunEngineCfgCtx(ctx context.Context, w trace.Workload, config string, eng cpu.Engine, cfg cpu.Config) stats.Run {
	return c.RunEngineCfgProgressCtx(ctx, w, config, eng, cfg, nil, 0)
}

// RunEngineCfgProgressCtx is RunEngineCfgCtx with a live progress slot:
// the pipeline publishes a snapshot (run counters plus the engine's
// per-component telemetry) into pr every `every` instructions. Pass a
// nil pr for no probe; every <= 0 selects cpu.DefaultProgressInterval.
func (c *Context) RunEngineCfgProgressCtx(ctx context.Context, w trace.Workload, config string, eng cpu.Engine, cfg cpu.Config, pr *cpu.Progress, every int) stats.Run {
	p := cpu.Acquire(cfg, eng)
	defer cpu.Release(p)
	if pr != nil {
		// Attach after Acquire: the pool's Reset detaches slots.
		p.SetProgress(pr, every)
	}
	return p.RunCtx(ctx, c.gen(w), w.Name, config)
}

// gen returns the instruction source for one run of w: a cursor over
// the shared recorded artifact when the context has a trace store
// (repeat runs replay one recording instead of regenerating the
// stream), a fresh live generator otherwise. A store failure falls
// back to live generation — a trace cache must never fail a run.
func (c *Context) gen(w trace.Workload) trace.Generator {
	if c.traces != nil {
		if cur, err := c.traces.Cursor(w.Name, c.insts); err == nil {
			return cur
		}
	}
	return w.Build(c.insts)
}

// PerWorkload runs the engine configuration on every pool workload in
// parallel and returns per-workload (run, baseline) pairs in pool
// order.
func (c *Context) PerWorkload(config string, mk EngineFactory) []Pair {
	return c.PerWorkloadCtx(context.Background(), config, mk)
}

// PerWorkloadCtx is PerWorkload under a context: cancelling ctx aborts
// the in-flight simulations and marks their pairs' runs Aborted.
func (c *Context) PerWorkloadCtx(ctx context.Context, config string, mk EngineFactory) []Pair {
	out := make([]Pair, len(c.pool))
	c.forEach(func(i int, w trace.Workload) {
		base := c.BaselineCtx(ctx, w)
		run := c.RunOneCtx(ctx, w, config, mk)
		out[i] = Pair{Workload: w.Name, Run: run, Base: base}
	})
	return out
}

// Pair couples a configured run with its baseline.
type Pair struct {
	Workload string
	Run      stats.Run
	Base     stats.Run
}

// Speedup returns the pair's speedup percentage.
func (p Pair) Speedup() float64 { return stats.Speedup(p.Run, p.Base) }

// Aggregate summarizes a set of pairs with the paper's conventions.
type Aggregate struct {
	Speedup  float64 // geometric-mean IPC gain, percent
	Coverage float64 // arithmetic mean coverage, percent
	Accuracy float64 // arithmetic mean accuracy
}

// Summarize aggregates pairs. Pairs containing an aborted run (either
// side) are skipped: stats.Run documents that aborted runs cover an
// arbitrary prefix and must not be aggregated.
func Summarize(pairs []Pair) Aggregate {
	ratios := make([]float64, 0, len(pairs))
	var cov, acc float64
	var n float64
	for _, p := range pairs {
		if p.Run.Aborted || p.Base.Aborted {
			continue
		}
		if b := p.Base.IPC(); b > 0 {
			ratios = append(ratios, p.Run.IPC()/b)
		}
		cov += p.Run.Coverage()
		acc += p.Run.Accuracy()
		n++
	}
	if n == 0 {
		return Aggregate{}
	}
	return Aggregate{
		Speedup:  stats.GeoMeanSpeedup(ratios),
		Coverage: cov / n,
		Accuracy: acc / n,
	}
}

// AvgSpeedup runs a configuration over the pool and returns the
// aggregate speedup.
func (c *Context) AvgSpeedup(config string, mk EngineFactory) float64 {
	return Summarize(c.PerWorkload(config, mk)).Speedup
}

// forEach fans f out over the pool with the context's parallelism.
func (c *Context) forEach(f func(i int, w trace.Workload)) {
	sem := make(chan struct{}, c.par)
	var wg sync.WaitGroup
	for i, w := range c.pool {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, w trace.Workload) {
			defer wg.Done()
			defer func() { <-sem }()
			f(i, w)
		}(i, w)
	}
	wg.Wait()
}

func hashName(s string) uint64 {
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	return h
}

// Engine factories used across experiments. All of them delegate to
// the spec registry (internal/spec), the single place that maps
// predictor descriptions to engines — epoch-based machinery (M-AM,
// table fusion) is scaled to the context's run length there.

// Factory builds an engine factory for a normalized predictor spec.
// It is the one bridge from declarative specs to runnable engines; the
// convenience factories below are thin wrappers over it.
func (c *Context) Factory(p spec.PredictorSpec) EngineFactory {
	return func(seed uint64) cpu.Engine {
		eng, err := spec.NewEngine(p, c.insts, seed)
		if err != nil {
			// Unreachable for specs built by the wrappers below;
			// services validate untrusted specs before reaching here.
			panic("expt: " + err.Error())
		}
		return eng
	}
}

// CompositeFactory builds a composite engine factory (AM/fusion epochs
// scaled to the context's run length).
func (c *Context) CompositeFactory(entries [core.NumComponents]int, am spec.AMMode, smart, fusion bool) EngineFactory {
	return c.Factory(spec.PredictorSpec{
		Family:        spec.FamilyComposite,
		Entries:       entries,
		AM:            am,
		SmartTraining: smart,
		Fusion:        fusion,
	})
}

// SingleFactory builds an engine with one component predictor of the
// given size (Figure 3's configurations).
func (c *Context) SingleFactory(comp core.Component, entries int) EngineFactory {
	var e [core.NumComponents]int
	e[comp] = entries
	return c.CompositeFactory(e, spec.AMNone, false, false)
}

// EVESFactory builds an EVES engine with the given budget (0 =
// infinite).
func EVESFactory(budgetKB int) EngineFactory {
	return func(seed uint64) cpu.Engine {
		// BudgetKB passes through un-normalized, so 0 keeps its legacy
		// "infinite" meaning here (spec.Normalize would read 0 as "use
		// the 32KB default").
		eng, err := spec.NewEngine(spec.PredictorSpec{Family: spec.FamilyEVES, BudgetKB: budgetKB}, 0, seed)
		if err != nil {
			panic("expt: " + err.Error())
		}
		return eng
	}
}

// BestComposite is the best-performing optimized composite used by
// Figures 10-12: PC-AM(64) throttling, heterogeneous sizing, and table
// fusion. Smart training is evaluated separately (Figures 7-8) but is
// excluded here: under this substrate's phase structure it reduced
// performance (see EXPERIMENTS.md), and the paper's "maximum benefit"
// configuration is whichever optimization set wins.
func (c *Context) BestComposite(entries [core.NumComponents]int) EngineFactory {
	return c.CompositeFactory(entries, spec.AMPC, false, true)
}

// CompositeStorageKB computes the storage of a composite configuration
// without building predictors for a run.
func CompositeStorageKB(entries [core.NumComponents]int) float64 {
	return spec.StorageKB(spec.PredictorSpec{Family: spec.FamilyComposite, Entries: entries})
}

// RunSim runs a full normalized spec — predictor and machine — over
// the pool in parallel and returns per-workload pairs against the
// spec's machine's own baseline. The instruction budget and seed come
// from the context, not the spec's workload/run sections; config
// labels the runs.
func (c *Context) RunSim(sim spec.Sim, config string) []Pair {
	mk := c.Factory(sim.Predictor)
	cfg := sim.Machine.Config()
	out := make([]Pair, len(c.pool))
	c.forEach(func(i int, w trace.Workload) {
		base := c.BaselineMachineCtx(context.Background(), w, sim.Machine)
		run := base
		if sim.Predictor.Family != spec.FamilyNone {
			run = c.RunEngineCfgCtx(context.Background(), w, config, mk(c.EngineSeed(w)), cfg)
		}
		out[i] = Pair{Workload: w.Name, Run: run, Base: base}
	})
	return out
}
