package expt

import (
	"fmt"
	"sort"

	"repro/internal/branch"
	"repro/internal/core"
	"repro/internal/spec"
	"repro/internal/trace"
)

// TableIV renders the component predictor parameters (paper Table IV).
func TableIV(*Context) Result {
	t := &table{header: []string{
		"Predictor", "Predicts", "Context", "Tables", "bits/entry",
		"Conf bits", "Threshold", "Effective", "FPC vector", "Histories",
	}}
	for _, row := range core.TableIV() {
		ctx := "agnostic"
		if row.ContextAware {
			ctx = "aware"
		}
		hist := "-"
		if len(row.HistoryLens) > 0 {
			hist = fmt.Sprint(row.HistoryLens)
		}
		t.add(
			row.Component.String(), row.Predicts.String(), ctx,
			fmt.Sprint(row.Tables), fmt.Sprint(row.BitsPerEntry),
			fmt.Sprint(row.ConfBits), fmt.Sprint(row.ConfThreshold),
			fmt.Sprint(row.EffectiveConf), fmt.Sprint(row.FPCVector), hist,
		)
	}
	return Result{
		ID:    "TableIV",
		Title: "Predictor parameters (99% accuracy tuning)",
		Lines: t.lines(),
	}
}

// tableVOuters are the outer-loop iterations reported (1-based, as in
// the paper's Table V columns).
var tableVOuters = []int{1, 2, 3, 4, 5, 6, 17, 65}

// TableVInnerN is the Listing-1 inner trip count used for Table V.
const TableVInnerN = 16

// TableV measures, for each component predictor in isolation (no
// aliasing, immediate training), how many inner-loop loads of Listing 1
// must complete before the predictor's first prediction in each outer
// iteration. A dash means no prediction in that outer iteration; zero
// means a prediction on the first inner iteration (paper Table V).
func TableV(ctx *Context) Result {
	preds := []core.Predictor{
		core.NewLVP(1024, ctx.Seed()),
		core.NewSAP(1024, ctx.Seed()),
		core.NewCVP(1024, ctx.Seed()),
		core.NewCAP(1024, ctx.Seed()),
	}
	results := make(map[core.Component]map[int]int) // outer -> first inner idx
	for _, p := range preds {
		results[p.Component()] = tableVMeasure(p, ctx.Insts())
	}

	t := &table{header: append([]string{"Predictor"}, func() []string {
		h := make([]string, len(tableVOuters))
		for i, o := range tableVOuters {
			h[i] = fmt.Sprintf("o=%d", o)
		}
		return h
	}()...)}
	for _, p := range preds {
		row := []string{p.Component().String()}
		for _, o := range tableVOuters {
			if v, ok := results[p.Component()][o]; ok {
				row = append(row, fmt.Sprint(v))
			} else {
				row = append(row, "-")
			}
		}
		t.add(row...)
	}
	return Result{
		ID:    "TableV",
		Title: fmt.Sprintf("Listing-1 loads completed before first prediction (N=%d, no aliasing)", TableVInnerN),
		Lines: t.lines(),
	}
}

// tableVMeasure drives one predictor over the Listing-1 stream with
// immediate training and perfect (unaliased) tables.
func tableVMeasure(p core.Predictor, insts uint64) map[int]int {
	gen := trace.NewListing1(insts, TableVInnerN)
	var hist branch.History
	var loadPath uint64
	first := make(map[int]int)
	outer, inner := 1, 0
	var in trace.Inst
	for gen.Next(&in) {
		switch {
		case in.Op == trace.OpLoad:
			probe := core.Probe{PC: in.PC, BranchHist: hist.Global, LoadPath: loadPath}
			if _, ok := p.Predict(probe); ok {
				if _, seen := first[outer]; !seen {
					first[outer] = inner
				}
			}
			p.Train(core.Outcome{
				PC: in.PC, BranchHist: hist.Global, LoadPath: loadPath,
				Addr: in.Addr, Size: in.Size, Value: in.Value,
			})
			loadPath = (loadPath << 6) ^ ((in.PC >> 2) & 0xFFF)
			inner++
			if inner == TableVInnerN {
				inner = 0
				outer++
				if outer > tableVOuters[len(tableVOuters)-1] {
					return first
				}
			}
		case in.IsBranch():
			hist.Update(in.PC, in.Taken)
		}
	}
	return first
}

// hetGrid is the per-component size grid of the Table VI exploration
// (the paper sweeps 0-1K entries independently).
var hetGrid = []int{0, 32, 64, 128, 256, 512, 1024}

// hetBuckets are the total-entry budgets reported in Table VI.
var hetBuckets = []int{256, 512, 1024, 2048, 4096}

// HetConfig is one heterogeneous allocation candidate.
type HetConfig struct {
	Entries [core.NumComponents]int
	Speedup float64
}

// TableVI reruns the heterogeneous sizing exploration: for each total
// budget it evaluates every grid allocation summing to the budget and
// reports the winner, its storage, and its gain over the homogeneous
// allocation (paper Table VI). The sweep cost is O(valid combos ×
// pool), so contexts for TableVI typically use a workload subsample.
func TableVI(ctx *Context) Result {
	t := &table{header: []string{
		"Total", "Speedup", "LVP", "SAP", "CVP", "CAP", "Storage", "Speedup/KB", "vs Homog", "comment",
	}}
	for _, bucket := range hetBuckets {
		combos := hetCombos(bucket)
		best := HetConfig{Speedup: -1e9}
		var homog HetConfig
		homogEntries := core.HomogeneousEntries(bucket / 4)
		for _, entries := range combos {
			sp := ctx.AvgSpeedup(fmt.Sprintf("het%v", entries), ctx.CompositeFactory(entries, spec.AMPC, false, false))
			hc := HetConfig{Entries: entries, Speedup: sp}
			if sp > best.Speedup {
				best = hc
			}
			if entries == homogEntries {
				homog = hc
			}
		}
		kb := CompositeStorageKB(best.Entries)
		comment := ""
		if best.Entries == homogEntries {
			comment = "homogeneous was best"
		}
		vsHomog := 0.0
		if homog.Speedup != 0 {
			vsHomog = 100 * (best.Speedup/homog.Speedup - 1)
		}
		t.add(
			fmt.Sprint(bucket), pct(best.Speedup),
			fmt.Sprint(best.Entries[core.CompLVP]), fmt.Sprint(best.Entries[core.CompSAP]),
			fmt.Sprint(best.Entries[core.CompCVP]), fmt.Sprint(best.Entries[core.CompCAP]),
			fmt.Sprintf("%.2fKB", kb), fmt.Sprintf("%.3f%%/KB", best.Speedup/kb),
			fmt.Sprintf("%+.0f%%", vsHomog), comment,
		)
	}
	return Result{
		ID:    "TableVI",
		Title: "Heterogeneous composite sizing exploration",
		Lines: t.lines(),
	}
}

// hetCombos enumerates grid allocations summing exactly to total.
// To keep the sweep tractable it requires every present component to be
// a grid size and skips allocations that leave fewer than two
// components (the paper found all winners keep all four).
func hetCombos(total int) [][core.NumComponents]int {
	var out [][core.NumComponents]int
	for _, l := range hetGrid {
		for _, s := range hetGrid {
			for _, c := range hetGrid {
				for _, a := range hetGrid {
					if l+s+c+a != total {
						continue
					}
					present := 0
					for _, v := range []int{l, s, c, a} {
						if v > 0 {
							present++
						}
					}
					if present < 2 {
						continue
					}
					var e [core.NumComponents]int
					e[core.CompLVP], e[core.CompSAP] = l, s
					e[core.CompCVP], e[core.CompCAP] = c, a
					out = append(out, e)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		for k := 0; k < int(core.NumComponents); k++ {
			if out[i][k] != out[j][k] {
				return out[i][k] < out[j][k]
			}
		}
		return false
	})
	return out
}

// PaperHetWinners returns the paper's Table VI winning allocations
// (LVP, SAP, CVP, CAP), used by Figures 10-12 as the heterogeneous
// configurations without re-running the full sweep.
func PaperHetWinners() map[int][core.NumComponents]int {
	mk := func(l, s, c, a int) [core.NumComponents]int {
		var e [core.NumComponents]int
		e[core.CompLVP], e[core.CompSAP], e[core.CompCVP], e[core.CompCAP] = l, s, c, a
		return e
	}
	return map[int][core.NumComponents]int{
		4096: mk(1024, 1024, 1024, 1024),
		2048: mk(256, 1024, 512, 256),
		1024: mk(256, 256, 256, 256),
		512:  mk(64, 256, 128, 64),
		256:  mk(32, 32, 128, 64),
	}
}
