package expt

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/spec"
)

func tinyCtx() *Context {
	return NewContext(Options{Insts: 20_000, Workloads: sampleNames(4)})
}

func TestRegistryIDsUniqueAndResolvable(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range Registry() {
		if seen[e.ID] {
			t.Errorf("duplicate experiment ID %s", e.ID)
		}
		seen[e.ID] = true
		got, ok := ByID(e.ID)
		if !ok || got.Title != e.Title {
			t.Errorf("ByID(%s) mismatch", e.ID)
		}
		if e.Run == nil {
			t.Errorf("%s has no runner", e.ID)
		}
	}
	if _, ok := ByID("nope"); ok {
		t.Error("ByID accepted an unknown ID")
	}
	if len(IDs()) != len(Registry()) {
		t.Error("IDs() length mismatch")
	}
	if len(Describe()) != len(Registry()) {
		t.Error("Describe() length mismatch")
	}
}

func TestTableIVStatic(t *testing.T) {
	res := TableIV(nil)
	if res.ID != "TableIV" {
		t.Errorf("ID = %s", res.ID)
	}
	text := strings.Join(res.Lines, "\n")
	for _, want := range []string{"LVP", "SAP", "CVP", "CAP", "81", "77", "67", "64", "16"} {
		if !strings.Contains(text, want) {
			t.Errorf("Table IV missing %q:\n%s", want, text)
		}
	}
}

func TestTableVShape(t *testing.T) {
	ctx := NewContext(Options{Insts: 40_000, Workloads: sampleNames(1)})
	res := TableV(ctx)
	text := strings.Join(res.Lines, "\n")
	// SAP retrains each outer iteration but predicts within every one;
	// LVP needs ~64 observations (4 outers at N=16) before its first
	// prediction; CAP's load-path model never fires on Listing 1 (see
	// EXPERIMENTS.md).
	if !strings.Contains(text, "LVP") || !strings.Contains(text, "SAP") {
		t.Fatalf("missing rows:\n%s", text)
	}
	lines := res.Lines
	var lvpRow string
	for _, l := range lines {
		if strings.HasPrefix(l, "LVP") {
			lvpRow = l
		}
	}
	cells := strings.Fields(lvpRow)
	if len(cells) < 4 {
		t.Fatalf("LVP row malformed: %q", lvpRow)
	}
	if cells[1] != "-" {
		t.Errorf("LVP predicted in outer 1 (%q); needs ~64 observations", cells[1])
	}
}

func TestHetCombosSumAndPresence(t *testing.T) {
	for _, bucket := range hetBuckets {
		combos := hetCombos(bucket)
		if len(combos) == 0 {
			t.Errorf("no combos for bucket %d", bucket)
		}
		seen := map[[core.NumComponents]int]bool{}
		for _, c := range combos {
			sum, present := 0, 0
			for _, v := range c {
				sum += v
				if v > 0 {
					present++
				}
			}
			if sum != bucket {
				t.Errorf("combo %v sums to %d, want %d", c, sum, bucket)
			}
			if present < 2 {
				t.Errorf("combo %v has fewer than two components", c)
			}
			if seen[c] {
				t.Errorf("duplicate combo %v", c)
			}
			seen[c] = true
		}
	}
}

func TestPaperHetWinnersStorage(t *testing.T) {
	w := PaperHetWinners()
	// The paper's 1024-entry homogeneous winner is its 9.56KB
	// configuration.
	kb := CompositeStorageKB(w[1024])
	if kb < 9.3 || kb > 9.8 {
		t.Errorf("1024-winner storage = %.2fKB, want ≈ 9.56KB", kb)
	}
	for total, entries := range w {
		sum := 0
		for _, v := range entries {
			sum += v
		}
		if sum != total {
			t.Errorf("winner for %d sums to %d", total, sum)
		}
	}
}

func TestRenderAlignment(t *testing.T) {
	tb := &table{header: []string{"A", "Blong", "C"}}
	tb.add("x", "y", "z")
	tb.add("longer", "v", "w")
	lines := tb.lines()
	if len(lines) != 4 {
		t.Fatalf("lines = %d, want header+sep+2", len(lines))
	}
	if !strings.Contains(lines[1], "---") {
		t.Error("missing separator")
	}
}

func TestResultString(t *testing.T) {
	r := Result{ID: "X", Title: "t", Lines: []string{"a", "b"}}
	s := r.String()
	if !strings.Contains(s, "=== X — t ===") || !strings.Contains(s, "a\nb\n") {
		t.Errorf("render: %q", s)
	}
}

func TestContextDefaults(t *testing.T) {
	ctx := NewContext(Options{})
	if ctx.Insts() != 100_000 || ctx.Seed() == 0 {
		t.Error("defaults not applied")
	}
	if len(ctx.Pool()) != 85 {
		t.Errorf("default pool = %d", len(ctx.Pool()))
	}
	defer func() {
		if recover() == nil {
			t.Error("unknown workload should panic")
		}
	}()
	NewContext(Options{Workloads: []string{"bogus"}})
}

func TestBaselineCached(t *testing.T) {
	ctx := tinyCtx()
	w := ctx.Pool()[0]
	a := ctx.Baseline(w)
	b := ctx.Baseline(w)
	if a != b {
		t.Error("baseline cache returned different runs")
	}
}

func TestPerWorkloadOrderAndDeterminism(t *testing.T) {
	ctx := tinyCtx()
	mk := ctx.CompositeFactory(core.HomogeneousEntries(64), spec.AMPC, false, false)
	a := ctx.PerWorkload("det", mk)
	b := ctx.PerWorkload("det", mk)
	if len(a) != len(ctx.Pool()) {
		t.Fatalf("pairs = %d", len(a))
	}
	for i := range a {
		if a[i].Workload != ctx.Pool()[i].Name {
			t.Errorf("pair %d out of order", i)
		}
		if a[i].Run != b[i].Run {
			t.Errorf("%s: non-deterministic run", a[i].Workload)
		}
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if Summarize(nil) != (Aggregate{}) {
		t.Error("empty summarize should be zero")
	}
}

func TestFig2SmallPool(t *testing.T) {
	res := Fig2(tinyCtx())
	if len(res.Lines) < 3 {
		t.Fatalf("Fig2 output too short: %v", res.Lines)
	}
	if !strings.Contains(res.Lines[2], "%") {
		t.Error("Fig2 row missing percentages")
	}
}

func TestFig6OrderingOnSample(t *testing.T) {
	// The AM ordering (PC-AM >= no-AM accuracy) must hold even on a
	// small sample.
	ctx := NewContext(Options{Insts: 40_000, Workloads: sampleNames(6)})
	noAM := Summarize(ctx.PerWorkload("a", ctx.CompositeFactory(core.HomogeneousEntries(256), spec.AMNone, false, false)))
	pcAM := Summarize(ctx.PerWorkload("b", ctx.CompositeFactory(core.HomogeneousEntries(256), spec.AMPC, false, false)))
	if pcAM.Accuracy < noAM.Accuracy {
		t.Errorf("PC-AM accuracy %.4f < no-AM %.4f", pcAM.Accuracy, noAM.Accuracy)
	}
}

func TestCompositeStorageKBMatchesComposite(t *testing.T) {
	entries := core.HomogeneousEntries(256)
	c := core.NewComposite(core.CompositeConfig{Entries: entries, Seed: 1})
	if got, want := CompositeStorageKB(entries), c.StorageKB(); got != want {
		t.Errorf("storage mismatch: %f vs %f", got, want)
	}
}

func TestBar(t *testing.T) {
	if bar(5, 10, 10) != "#####" {
		t.Errorf("bar(5,10,10) = %q", bar(5, 10, 10))
	}
	if bar(0, 10, 10) != "" || bar(5, 0, 10) != "" {
		t.Error("zero cases must render empty")
	}
	if bar(100, 10, 10) != "##########" {
		t.Error("bar must clamp to width")
	}
	if bar(0.01, 10, 10) != "#" {
		t.Error("tiny positive values render one mark")
	}
}
