package expt

import (
	"fmt"
	"sort"
)

// Runner regenerates one paper table or figure.
type Runner func(*Context) Result

// Experiment couples a runner with metadata.
type Experiment struct {
	ID    string
	Title string
	Heavy bool // sweeps that benefit from a reduced workload pool
	Run   Runner
}

// Registry lists every reproducible experiment, in paper order.
func Registry() []Experiment {
	return []Experiment{
		{ID: "tableiv", Title: "Table IV: predictor parameters", Run: TableIV},
		{ID: "tablev", Title: "Table V: Listing-1 training latency", Run: TableV},
		{ID: "tablevi", Title: "Table VI: heterogeneous sizing exploration", Heavy: true, Run: TableVI},
		{ID: "fig2", Title: "Figure 2: load breakdown by pattern", Run: Fig2},
		{ID: "fig3", Title: "Figure 3: component speedup vs size", Heavy: true, Run: Fig3},
		{ID: "fig4", Title: "Figure 4: prediction overlap", Run: Fig4},
		{ID: "fig5", Title: "Figure 5: composite vs best component", Heavy: true, Run: Fig5},
		{ID: "fig6", Title: "Figure 6: accuracy monitors", Run: Fig6},
		{ID: "fig7", Title: "Figure 7: smart training overlap reduction", Heavy: true, Run: Fig7},
		{ID: "fig8", Title: "Figure 8: smart training speedup", Heavy: true, Run: Fig8},
		{ID: "fig9", Title: "Figure 9: table fusion speedup", Heavy: true, Run: Fig9},
		{ID: "fig10", Title: "Figure 10: combined benefit vs best component", Heavy: true, Run: Fig10},
		{ID: "fig11", Title: "Figure 11: composite vs EVES", Run: Fig11},
		{ID: "fig12", Title: "Figure 12: per-workload composite vs EVES", Run: Fig12},
		{ID: "ablations", Title: "Extension: mechanism ablations", Heavy: true, Run: Ablations},
		{ID: "sharedpool", Title: "Extension: decoupled shared value arrays", Heavy: true, Run: SharedPool},
		{ID: "vpsec", Title: "Extension: fault detection via predictor overlap", Heavy: true, Run: VPsec},
		{ID: "windowsweep", Title: "Extension: benefit vs OoO window size", Heavy: true, Run: WindowSweep},
	}
}

// ByID returns the registered experiment with the given ID.
func ByID(id string) (Experiment, bool) {
	for _, e := range Registry() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs returns all experiment IDs, sorted.
func IDs() []string {
	var ids []string
	for _, e := range Registry() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return ids
}

// Describe returns a one-line description per experiment.
func Describe() []string {
	var out []string
	for _, e := range Registry() {
		heavy := ""
		if e.Heavy {
			heavy = " (heavy sweep)"
		}
		out = append(out, fmt.Sprintf("%-8s %s%s", e.ID, e.Title, heavy))
	}
	return out
}
