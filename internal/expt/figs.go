package expt

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/oracle"
	"repro/internal/spec"
	"repro/internal/trace"
)

// componentSizes is the per-predictor sweep of Figure 3.
var componentSizes = []int{64, 128, 256, 512, 1024, 2048, 4096}

// compositeTotals is the total-entry sweep of Figures 5 and 7-9.
var compositeTotals = []int{256, 512, 1024, 2048, 4096}

// allComponents lists the four components in the paper's Table I order.
var allComponents = []core.Component{core.CompLVP, core.CompSAP, core.CompCVP, core.CompCAP}

// Fig2 classifies every workload's loads with the infinite-resource
// oracle and reports the Pattern-1/2/3 breakdown (paper Figure 2).
func Fig2(ctx *Context) Result {
	type row struct {
		cls     oracle.Classification
		profile string
	}
	rows := make([]row, len(ctx.Pool()))
	ctx.forEach(func(i int, w trace.Workload) {
		rows[i] = row{cls: oracle.Classify(w.Build(ctx.Insts()), 0), profile: w.Profile}
	})

	var total [4]uint64
	var loads uint64
	perProfile := map[string]*[4]uint64{}
	profLoads := map[string]uint64{}
	for _, r := range rows {
		for p := oracle.Pattern1; p <= oracle.Pattern3; p++ {
			total[p] += r.cls.Dynamic[p]
		}
		loads += r.cls.TotalLoads
		pp := perProfile[r.profile]
		if pp == nil {
			pp = &[4]uint64{}
			perProfile[r.profile] = pp
		}
		for p := oracle.Pattern1; p <= oracle.Pattern3; p++ {
			pp[p] += r.cls.Dynamic[p]
		}
		profLoads[r.profile] += r.cls.TotalLoads
	}

	t := &table{header: []string{"Scope", "Pattern-1 (LVP)", "Pattern-2 (SAP)", "Pattern-3 (CVP/CAP)"}}
	frac := func(n, d uint64) string {
		if d == 0 {
			return "-"
		}
		return pctu(100 * float64(n) / float64(d))
	}
	t.add("all workloads", frac(total[1], loads), frac(total[2], loads), frac(total[3], loads))
	profiles := make([]string, 0, len(perProfile))
	for p := range perProfile {
		profiles = append(profiles, p)
	}
	sort.Strings(profiles)
	for _, p := range profiles {
		pp := perProfile[p]
		t.add("  "+p, frac(pp[1], profLoads[p]), frac(pp[2], profLoads[p]), frac(pp[3], profLoads[p]))
	}
	return Result{ID: "Fig2", Title: "Load breakdown by pattern (infinite-resource oracle)", Lines: t.lines()}
}

// Fig3 sweeps each component predictor in isolation over table sizes
// and reports the average speedup (paper Figure 3).
func Fig3(ctx *Context) Result {
	vals := make([][]float64, len(componentSizes))
	maxSp := 0.0
	for i, size := range componentSizes {
		vals[i] = make([]float64, len(allComponents))
		for j, comp := range allComponents {
			sp := ctx.AvgSpeedup(fmt.Sprintf("%v-%d", comp, size), ctx.SingleFactory(comp, size))
			vals[i][j] = sp
			if sp > maxSp {
				maxSp = sp
			}
		}
	}
	t := &table{header: append([]string{"Entries"}, componentNames()...)}
	for i, size := range componentSizes {
		row := []string{fmt.Sprint(size)}
		for _, sp := range vals[i] {
			row = append(row, pct(sp))
		}
		t.add(row...)
	}
	lines := t.lines()
	lines = append(lines, "")
	for j, comp := range allComponents {
		lines = append(lines, fmt.Sprintf("%v speedup by size:", comp))
		for i, size := range componentSizes {
			lines = append(lines, fmt.Sprintf("  %5d |%s %s", size, bar(vals[i][j], maxSp, 40), pct(vals[i][j])))
		}
	}
	return Result{ID: "Fig3", Title: "Component predictor speedup vs table size", Lines: lines}
}

func componentNames() []string {
	names := make([]string, len(allComponents))
	for i, c := range allComponents {
		names[i] = c.String()
	}
	return names
}

// compositeAggregate runs a composite configuration over the pool and
// sums the per-workload composite statistics. Predictors are built
// through the spec registry, so epoch-based machinery (M-AM, fusion)
// is scaled to the run length exactly as in the factory-driven
// experiments — this path previously built unscaled paper-epoch
// monitors and diverged from Context.CompositeFactory.
func (c *Context) compositeAggregate(config string, entries [core.NumComponents]int, am spec.AMMode, smart, fusion bool) (core.CompositeStats, []Pair) {
	var agg core.CompositeStats
	pairs := make([]Pair, len(c.pool))
	comps := make([]*core.Composite, len(c.pool))
	ps := spec.PredictorSpec{
		Family:        spec.FamilyComposite,
		Entries:       entries,
		AM:            am,
		SmartTraining: smart,
		Fusion:        fusion,
	}
	c.forEach(func(i int, w trace.Workload) {
		base := c.Baseline(w)
		comp := core.NewComposite(spec.CompositeConfig(ps, c.insts, core.SplitMix64(c.seed^hashName(w.Name))))
		p := cpu.Acquire(cpu.DefaultConfig(), cpu.NewCompositeEngine(comp))
		run := p.Run(w.Build(c.insts), w.Name, config)
		cpu.Release(p)
		pairs[i] = Pair{Workload: w.Name, Run: run, Base: base}
		comps[i] = comp
	})
	for _, comp := range comps {
		st := comp.Stats()
		agg.Probes += st.Probes
		agg.PredictedLoads += st.PredictedLoads
		agg.UsedPredictions += st.UsedPredictions
		agg.UsedMispredictions += st.UsedMispredictions
		agg.TrainEvents += st.TrainEvents
		agg.TrainedComponents += st.TrainedComponents
		agg.SAPInvalidations += st.SAPInvalidations
		for k := range st.ConfidentHistogram {
			agg.ConfidentHistogram[k] += st.ConfidentHistogram[k]
		}
		for k := core.Component(0); k < core.NumComponents; k++ {
			agg.SoleConfident[k] += st.SoleConfident[k]
			agg.UsedBy[k] += st.UsedBy[k]
			agg.CorrectBy[k] += st.CorrectBy[k]
			agg.IncorrectBy[k] += st.IncorrectBy[k]
		}
	}
	return agg, pairs
}

// Fig4 reports how many components are simultaneously confident per
// predicted load for the 1K-entry composite (paper Figure 4).
func Fig4(ctx *Context) Result {
	st, _ := ctx.compositeAggregate("fig4", core.HomogeneousEntries(1024), spec.AMNone, false, false)
	t := &table{header: []string{"Bucket", "% of predicted loads"}}
	denom := float64(st.PredictedLoads)
	if denom == 0 {
		denom = 1
	}
	for _, comp := range allComponents {
		t.add(fmt.Sprintf("one prediction, by %v", comp),
			pctu(100*float64(st.SoleConfident[comp])/denom))
	}
	for n := 2; n <= 4; n++ {
		t.add(fmt.Sprintf("%d predictions", n),
			pctu(100*float64(st.ConfidentHistogram[n])/denom))
	}
	multi := st.ConfidentHistogram[2] + st.ConfidentHistogram[3] + st.ConfidentHistogram[4]
	t.add("multi-component overlap", pctu(100*float64(multi)/denom))
	return Result{ID: "Fig4", Title: "Predicted loads by number of confident components (1K entries)", Lines: t.lines()}
}

// Fig5 compares the homogeneous composite against the best single
// component at equal total entries (paper Figure 5).
func Fig5(ctx *Context) Result {
	t := &table{header: []string{"Total entries", "Composite", "Best component", "Composite vs best"}}
	for _, total := range compositeTotals {
		comp := ctx.AvgSpeedup(fmt.Sprintf("comp-%d", total),
			ctx.CompositeFactory(core.HomogeneousEntries(total/4), spec.AMNone, false, false))
		best, bestName := -1e9, ""
		for _, c := range allComponents {
			sp := ctx.AvgSpeedup(fmt.Sprintf("%v-%d", c, total), ctx.SingleFactory(c, total))
			if sp > best {
				best, bestName = sp, c.String()
			}
		}
		t.add(fmt.Sprint(total), pct(comp), fmt.Sprintf("%s (%s)", pct(best), bestName), pct(comp-best))
	}
	return Result{ID: "Fig5", Title: "Homogeneous composite vs best component (equal total entries)", Lines: t.lines()}
}

// Fig6 measures the accuracy monitor variants on the 1K composite
// (paper Figure 6).
func Fig6(ctx *Context) Result {
	entries := core.HomogeneousEntries(1024)
	t := &table{header: []string{"Configuration", "Speedup", "Coverage", "Accuracy"}}
	for _, cfg := range []struct {
		name string
		am   spec.AMMode
	}{
		{"composite (no AM)", spec.AMNone},
		{"composite + M-AM", spec.AMM},
		{"composite + PC-AM(64)", spec.AMPC},
		{"composite + PC-AM(inf)", spec.AMPCInf},
	} {
		pairs := ctx.PerWorkload("fig6-"+cfg.name, ctx.CompositeFactory(entries, cfg.am, false, false))
		a := Summarize(pairs)
		t.add(cfg.name, pct(a.Speedup), pctu(a.Coverage), fmt.Sprintf("%.4f", a.Accuracy))
	}
	return Result{ID: "Fig6", Title: "Accuracy monitor throttling (1K-entry composite)", Lines: t.lines()}
}

// Fig7 contrasts prediction overlap and training work with and without
// smart training (paper Figure 7).
func Fig7(ctx *Context) Result {
	t := &table{header: []string{"Total entries", "Policy", "1 pred", "2 preds", "3 preds", "4 preds", "avg trained"}}
	for _, total := range compositeTotals {
		entries := core.HomogeneousEntries(total / 4)
		for _, mode := range []struct {
			name  string
			smart bool
		}{{"train-all", false}, {"smart", true}} {
			st, _ := ctx.compositeAggregate(fmt.Sprintf("fig7-%d-%s", total, mode.name), entries, spec.AMPC, mode.smart, false)
			denom := float64(st.PredictedLoads)
			if denom == 0 {
				denom = 1
			}
			avg := 0.0
			if st.TrainEvents > 0 {
				avg = float64(st.TrainedComponents) / float64(st.TrainEvents)
			}
			t.add(fmt.Sprint(total), mode.name,
				pctu(100*float64(st.ConfidentHistogram[1])/denom),
				pctu(100*float64(st.ConfidentHistogram[2])/denom),
				pctu(100*float64(st.ConfidentHistogram[3])/denom),
				pctu(100*float64(st.ConfidentHistogram[4])/denom),
				fmt.Sprintf("%.2f", avg))
		}
	}
	return Result{ID: "Fig7", Title: "Prediction overlap and training work, train-all vs smart training", Lines: t.lines()}
}

// Fig8 measures the speedup contribution of smart training across
// composite sizes (paper Figure 8).
func Fig8(ctx *Context) Result {
	t := &table{header: []string{"Total entries", "Train-all", "Smart training", "Delta"}}
	for _, total := range compositeTotals {
		entries := core.HomogeneousEntries(total / 4)
		off := ctx.AvgSpeedup(fmt.Sprintf("fig8-off-%d", total), ctx.CompositeFactory(entries, spec.AMPC, false, false))
		on := ctx.AvgSpeedup(fmt.Sprintf("fig8-on-%d", total), ctx.CompositeFactory(entries, spec.AMPC, true, false))
		t.add(fmt.Sprint(total), pct(off), pct(on), pct(on-off))
	}
	return Result{ID: "Fig8", Title: "Speedup from smart training", Lines: t.lines()}
}

// Fig9 measures the speedup contribution of table fusion across
// composite sizes (paper Figure 9).
func Fig9(ctx *Context) Result {
	t := &table{header: []string{"Total entries", "No fusion", "Fusion", "Delta"}}
	for _, total := range compositeTotals {
		entries := core.HomogeneousEntries(total / 4)
		off := ctx.AvgSpeedup(fmt.Sprintf("fig9-off-%d", total), ctx.CompositeFactory(entries, spec.AMPC, true, false))
		on := ctx.AvgSpeedup(fmt.Sprintf("fig9-on-%d", total), ctx.CompositeFactory(entries, spec.AMPC, true, true))
		t.add(fmt.Sprint(total), pct(off), pct(on), pct(on-off))
	}
	return Result{ID: "Fig9", Title: "Speedup from table fusion", Lines: t.lines()}
}

// Fig10 combines all optimizations and compares the best composite
// against the best single component at comparable storage budgets
// (paper Figure 10: the composite wins by >50% at every size).
func Fig10(ctx *Context) Result {
	winners := PaperHetWinners()
	t := &table{header: []string{"Budget", "Storage", "Composite (all opts)", "Best component", "Gain"}}
	totals := make([]int, 0, len(winners))
	for total := range winners {
		totals = append(totals, total)
	}
	sort.Ints(totals)
	for _, total := range totals {
		entries := winners[total]
		kb := CompositeStorageKB(entries)
		comp := ctx.AvgSpeedup(fmt.Sprintf("fig10-comp-%d", total), ctx.BestComposite(entries))
		best, bestName := -1e9, ""
		for _, c := range allComponents {
			// Size the lone component to the same storage budget.
			bits := kb * 8192
			per := componentBits(c)
			n := pow2Floor(int(bits) / per)
			sp := ctx.AvgSpeedup(fmt.Sprintf("fig10-%v-%d", c, total), ctx.SingleFactory(c, n))
			if sp > best {
				best, bestName = sp, c.String()
			}
		}
		gain := "n/a"
		if best > 0 {
			gain = fmt.Sprintf("%+.0f%%", 100*(comp/best-1))
		}
		t.add(fmt.Sprint(total), fmt.Sprintf("%.2fKB", kb), pct(comp),
			fmt.Sprintf("%s (%s)", pct(best), bestName), gain)
	}
	return Result{ID: "Fig10", Title: "Best composite vs best component by storage budget", Lines: t.lines()}
}

func componentBits(c core.Component) int {
	switch c {
	case core.CompLVP:
		return core.LVPBitsPerEntry
	case core.CompSAP:
		return core.SAPBitsPerEntry
	case core.CompCVP:
		return core.CVPBitsPerEntry
	default:
		return core.CAPBitsPerEntry
	}
}

func pow2Floor(n int) int {
	if n < 1 {
		return 1
	}
	p := 1
	for p*2 <= n {
		p *= 2
	}
	return p
}

// fig11Configs returns the comparison points of Figure 11.
func fig11Configs() (small, big [core.NumComponents]int) {
	w := PaperHetWinners()
	return w[512], w[1024]
}

// Fig11 compares the composite predictor against EVES at the paper's
// budget points (paper Figure 11: the composite more than doubles
// EVES's coverage and delivers >50% more speedup).
func Fig11(ctx *Context) Result {
	small, big := fig11Configs()
	t := &table{header: []string{"Predictor", "Storage", "Speedup", "Coverage", "Accuracy"}}
	type cfg struct {
		name    string
		storage string
		mk      EngineFactory
	}
	cfgs := []cfg{
		{"Composite", fmt.Sprintf("%.1fKB", CompositeStorageKB(small)), ctx.BestComposite(small)},
		{"Composite", fmt.Sprintf("%.1fKB", CompositeStorageKB(big)), ctx.BestComposite(big)},
		{"EVES", "8KB", EVESFactory(8)},
		{"EVES", "32KB", EVESFactory(32)},
		{"EVES", "inf", EVESFactory(0)},
	}
	aggs := make([]Aggregate, len(cfgs))
	for i, c := range cfgs {
		aggs[i] = Summarize(ctx.PerWorkload("fig11-"+c.name+c.storage, c.mk))
		t.add(c.name, c.storage, pct(aggs[i].Speedup), pctu(aggs[i].Coverage), fmt.Sprintf("%.4f", aggs[i].Accuracy))
	}
	// Relative comparison (Figure 11b / 12 headline numbers).
	rel := func(a, b Aggregate) (string, string) {
		sp, cov := "n/a", "n/a"
		if b.Speedup > 0 {
			sp = fmt.Sprintf("%+.0f%%", 100*(a.Speedup/b.Speedup-1))
		}
		if b.Coverage > 0 {
			cov = fmt.Sprintf("%+.0f%%", 100*(a.Coverage/b.Coverage-1))
		}
		return sp, cov
	}
	lines := t.lines()
	sp, cov := rel(aggs[0], aggs[2])
	lines = append(lines, fmt.Sprintf("composite %s vs EVES 8KB:  speedup %s, coverage %s", cfgs[0].storage, sp, cov))
	sp, cov = rel(aggs[1], aggs[3])
	lines = append(lines, fmt.Sprintf("composite %s vs EVES 32KB: speedup %s, coverage %s", cfgs[1].storage, sp, cov))
	return Result{ID: "Fig11", Title: "Composite vs EVES (CVP-1 winner)", Lines: lines}
}

// Fig12 reports the per-workload speedup and coverage comparison of
// the 9.6KB composite against 32KB EVES (paper Figure 12).
func Fig12(ctx *Context) Result {
	_, big := fig11Configs()
	comp := ctx.PerWorkload("fig12-composite", ctx.BestComposite(big))
	ev := ctx.PerWorkload("fig12-eves", EVESFactory(32))

	t := &table{header: []string{"Workload", "Comp speedup", "EVES speedup", "Comp coverage", "EVES coverage"}}
	compWins, evesWins := 0, 0
	for i := range comp {
		cs, es := comp[i].Speedup(), ev[i].Speedup()
		if cs > es+0.05 {
			compWins++
		} else if es > cs+0.05 {
			evesWins++
		}
		t.add(comp[i].Workload, pct(cs), pct(es),
			pctu(comp[i].Run.Coverage()), pctu(ev[i].Run.Coverage()))
	}
	ca, ea := Summarize(comp), Summarize(ev)
	lines := t.lines()
	lines = append(lines,
		fmt.Sprintf("average: composite %s / %.1f%% coverage, EVES %s / %.1f%% coverage",
			pct(ca.Speedup), ca.Coverage, pct(ea.Speedup), ea.Coverage),
		fmt.Sprintf("composite wins %d workloads, EVES wins %d (of %d)", compWins, evesWins, len(comp)))
	return Result{ID: "Fig12", Title: "Per-workload: composite (9.6KB) vs EVES (32KB)", Lines: lines}
}
