package expt

import (
	"context"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/spec"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Multi-context (SMT) execution. A spec with Machine.Contexts > 1 runs
// one independently-seeded instruction stream per hardware context on a
// single pipeline whose predictors, caches, and TLBs are shared (see
// DESIGN.md §14); the result is the machine-wide merged run plus the
// per-context runs. Baselines are cached like single-context baselines:
// the machine hash covers the context count and interleave policy, and
// the key covers the workload mix, so an SMT baseline can never collide
// with a single-context one.

// SMTResult couples the merged run of a multi-context simulation with
// its per-context runs (context i's run at Per[i]).
type SMTResult struct {
	Merged stats.Run
	Per    []stats.Run
}

// Aborted reports whether the simulation was cut short.
func (r SMTResult) Aborted() bool { return r.Merged.Aborted }

// EngineSeedLabel returns the engine seed for a workload-mix label,
// derived from the context seed exactly like EngineSeed derives
// per-workload seeds. A homogeneous mix's label is the bare workload
// name, so a 1-context SMT run seeds identically to the plain run.
func (c *Context) EngineSeedLabel(label string) uint64 {
	return core.SplitMix64(c.seed ^ hashName(label))
}

// genStream returns the instruction source for one context's stream:
// a cursor over the shared recorded artifact when the context has a
// trace store, a live generator otherwise. The stream name must resolve
// (callers run validated specs); unknown streams panic.
func (c *Context) genStream(stream string, insts uint64) trace.Generator {
	if c.traces != nil {
		if cur, err := c.traces.Cursor(stream, insts); err == nil {
			return cur
		}
	}
	g, ok := trace.BuildStream(stream, insts)
	if !ok {
		panic("expt: unknown stream " + stream)
	}
	return g
}

// RunSMTCtx simulates a normalized multi-context spec with the supplied
// fresh engine and returns the merged and per-context runs. The
// instruction budget is the context's per-context budget; config labels
// every run.
func (c *Context) RunSMTCtx(ctx context.Context, sim spec.Sim, config string, eng cpu.Engine) SMTResult {
	return c.RunSMTProgressCtx(ctx, sim, config, eng, nil, nil, 0)
}

// RunSMTProgressCtx is RunSMTCtx with live progress: pr receives the
// machine-wide aggregate snapshot and rows[i] context i's own snapshot,
// every `every` instructions (nil slots publish nothing).
func (c *Context) RunSMTProgressCtx(ctx context.Context, sim spec.Sim, config string, eng cpu.Engine, pr *cpu.Progress, rows []*cpu.Progress, every int) SMTResult {
	streams := sim.ContextStreams()
	gens := make([]trace.Generator, len(streams))
	for i, s := range streams {
		gens[i] = c.genStream(s, c.insts)
	}
	p := cpu.Acquire(sim.Machine.Config(), eng)
	defer cpu.Release(p)
	if pr != nil {
		// Attach after Acquire: the pool's Reset detaches slots.
		p.SetProgress(pr, every)
	}
	if len(rows) > 0 {
		p.SetProgressRows(rows, every)
	}
	merged := p.RunSMTCtx(ctx, gens, sim.ContextWorkloads(), sim.WorkloadLabel(), config)
	per := make([]stats.Run, p.NumContexts())
	for i := range per {
		per[i] = p.ContextRun(i)
	}
	return SMTResult{Merged: merged, Per: per}
}

// HasSMTBaseline reports whether the spec's (mix, machine) baseline is
// already cached.
func (c *Context) HasSMTBaseline(sim spec.Sim) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.smtBaselines[baselineKey(sim.WorkloadLabel(), sim.Machine)]
	return ok
}

// SMTBaselineCtx simulates (or returns the cached) no-VP run of the
// spec's workload mix on the spec's machine. Like single-context
// baselines, each (mix, machine) pair is simulated at most once, with
// concurrent callers waiting on the in-flight run, and aborted runs are
// returned but never cached.
func (c *Context) SMTBaselineCtx(ctx context.Context, sim spec.Sim) SMTResult {
	return c.SMTBaselineProgressCtx(ctx, sim, nil, nil, 0)
}

// SMTBaselineProgressCtx is SMTBaselineCtx with live progress slots,
// published only when this caller ends up simulating the baseline.
func (c *Context) SMTBaselineProgressCtx(ctx context.Context, sim spec.Sim, pr *cpu.Progress, rows []*cpu.Progress, every int) SMTResult {
	key := baselineKey(sim.WorkloadLabel(), sim.Machine)
	for {
		c.mu.Lock()
		if r, ok := c.smtBaselines[key]; ok {
			c.mu.Unlock()
			return r
		}
		if ch, ok := c.inflight[key]; ok {
			c.mu.Unlock()
			select {
			case <-ch:
				continue // re-check the cache; the run may have aborted
			case <-ctx.Done():
				return SMTResult{Merged: stats.Run{Workload: sim.WorkloadLabel(), Config: "base", Aborted: true}}
			}
		}
		ch := make(chan struct{})
		c.inflight[key] = ch
		c.mu.Unlock()

		r := c.RunSMTProgressCtx(ctx, sim, "base", nil, pr, rows, every)
		c.mu.Lock()
		delete(c.inflight, key)
		if !r.Aborted() {
			c.smtBaselines[key] = r
		}
		c.mu.Unlock()
		close(ch)
		return r
	}
}
