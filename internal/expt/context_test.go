package expt

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/spec"
	"repro/internal/stats"
)

func TestSummarizeEmptyNonNil(t *testing.T) {
	if Summarize([]Pair{}) != (Aggregate{}) {
		t.Fatal("Summarize of an empty (non-nil) slice should be the zero aggregate")
	}
}

func TestSummarizeSkipsZeroIPCBaselines(t *testing.T) {
	mk := func(insts, cycles uint64, loads, pred, correct uint64) stats.Run {
		return stats.Run{
			Instructions: insts, Cycles: cycles,
			Loads: loads, PredictedLoads: pred, CorrectPredicted: correct,
		}
	}
	pairs := []Pair{
		// 10% faster than baseline.
		{Workload: "a", Run: mk(1000, 500, 100, 50, 50), Base: mk(1000, 550, 100, 0, 0)},
		// Zero-IPC baseline: must not contribute to the speedup mean,
		// but still counts in the coverage/accuracy averages.
		{Workload: "b", Run: mk(1000, 500, 100, 100, 100), Base: stats.Run{}},
	}
	agg := Summarize(pairs)
	want := 100 * (float64(1000)/500/(float64(1000)/550) - 1)
	if diff := agg.Speedup - want; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("Speedup = %g, want %g (zero-IPC baseline must be skipped)", agg.Speedup, want)
	}
	if agg.Coverage != 75 { // (50% + 100%) / 2
		t.Errorf("Coverage = %g, want 75", agg.Coverage)
	}
	if agg.Accuracy != 1 {
		t.Errorf("Accuracy = %g, want 1", agg.Accuracy)
	}
}

func TestSummarizeSkipsAbortedRuns(t *testing.T) {
	mk := func(insts, cycles uint64, loads, pred, correct uint64) stats.Run {
		return stats.Run{
			Instructions: insts, Cycles: cycles,
			Loads: loads, PredictedLoads: pred, CorrectPredicted: correct,
		}
	}
	good := Pair{Workload: "a", Run: mk(1000, 500, 100, 50, 50), Base: mk(1000, 550, 100, 0, 0)}
	abortedRun := good
	abortedRun.Workload = "b"
	abortedRun.Run.Aborted = true
	abortedRun.Run.Cycles = 1 // absurd prefix metrics that would skew every mean
	abortedBase := good
	abortedBase.Workload = "c"
	abortedBase.Base.Aborted = true
	abortedBase.Base.Cycles = 1

	want := Summarize([]Pair{good})
	got := Summarize([]Pair{good, abortedRun, abortedBase})
	if got != want {
		t.Errorf("aborted pairs leaked into the aggregate: got %+v, want %+v", got, want)
	}
	if all := Summarize([]Pair{abortedRun, abortedBase}); all != (Aggregate{}) {
		t.Errorf("all-aborted input should aggregate to zero, got %+v", all)
	}
}

func TestNewContextErrUnknownWorkload(t *testing.T) {
	_, err := NewContextErr(Options{Workloads: []string{"no-such-workload"}})
	if err == nil {
		t.Fatal("NewContextErr accepted an unknown workload")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("NewContext did not panic on an unknown workload")
		}
	}()
	NewContext(Options{Workloads: []string{"no-such-workload"}})
}

// TestBaselineSingleflight exercises the duplicated-baseline fix: many
// concurrent callers for the same uncached workload must agree on one
// result (the race detector guards the bookkeeping).
func TestBaselineSingleflight(t *testing.T) {
	c := NewContext(Options{Insts: 20_000})
	w := c.Pool()[0]
	const callers = 8
	results := make([]stats.Run, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = c.Baseline(w)
		}(i)
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if results[i] != results[0] {
			t.Fatalf("caller %d got a different baseline: %+v vs %+v", i, results[i], results[0])
		}
	}
	if !c.HasBaseline(w.Name) {
		t.Fatal("baseline not cached after concurrent calls")
	}
}

// TestBaselineWaitsForInflight pins the singleflight contract directly:
// a caller that finds an in-flight marker blocks until it clears, then
// returns the cached run instead of recomputing.
func TestBaselineWaitsForInflight(t *testing.T) {
	c := NewContext(Options{Insts: 20_000})
	w := c.Pool()[0]
	ch := make(chan struct{})
	c.mu.Lock()
	c.inflight[w.Name] = ch
	c.mu.Unlock()

	got := make(chan stats.Run, 1)
	go func() { got <- c.BaselineCtx(context.Background(), w) }()
	select {
	case r := <-got:
		t.Fatalf("second caller did not wait for the in-flight run; got %+v", r)
	case <-time.After(50 * time.Millisecond):
	}

	want := stats.Run{Workload: w.Name, Config: "base", Instructions: 42, Cycles: 21}
	c.mu.Lock()
	c.baselines[w.Name] = want
	delete(c.inflight, w.Name)
	c.mu.Unlock()
	close(ch)

	if r := <-got; r != want {
		t.Fatalf("waiter recomputed instead of using the cached run: %+v", r)
	}
}

func TestBaselineCtxCancelledWaiter(t *testing.T) {
	c := NewContext(Options{Insts: 20_000})
	w := c.Pool()[0]
	c.mu.Lock()
	c.inflight[w.Name] = make(chan struct{}) // never closed
	c.mu.Unlock()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := c.BaselineCtx(ctx, w)
	if !r.Aborted {
		t.Fatalf("cancelled waiter returned a non-aborted run: %+v", r)
	}
}

func TestBaselineAbortedNotCached(t *testing.T) {
	c := NewContext(Options{Insts: 200_000})
	w := c.Pool()[0]
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := c.BaselineCtx(ctx, w)
	if !r.Aborted {
		t.Fatal("baseline under a cancelled context not aborted")
	}
	if c.HasBaseline(w.Name) {
		t.Fatal("aborted baseline was cached")
	}
	// A later call with a live context simulates and caches normally.
	r2 := c.Baseline(w)
	if r2.Aborted || r2.Instructions == 0 {
		t.Fatalf("recovery run after abort looks wrong: %+v", r2)
	}
	if !c.HasBaseline(w.Name) {
		t.Fatal("complete baseline not cached")
	}
}

func TestPerWorkloadCtxCancelled(t *testing.T) {
	c := NewContext(Options{Insts: 500_000, Workloads: sampleNames(3)})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	pairs := c.PerWorkloadCtx(ctx, "composite", c.CompositeFactory([4]int{64, 64, 64, 64}, spec.AMNone, false, false))
	if el := time.Since(start); el > 10*time.Second {
		t.Fatalf("cancelled PerWorkloadCtx took %v", el)
	}
	for _, p := range pairs {
		if !p.Run.Aborted {
			t.Fatalf("pair %q not marked aborted", p.Workload)
		}
	}
}
