package expt

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/spec"
)

// SharedPool evaluates the storage optimization the paper defers at the
// end of Section III-B: decoupling LVP/CVP's value arrays into one
// shared, reference-counted pool. For each pool size it reports the
// storage saved against the direct 1K-entry composite and the coverage/
// speedup cost of pool pressure.
func SharedPool(ctx *Context) Result {
	entries := core.HomogeneousEntries(256) // the 9.6KB configuration
	poolSpec := func(slots int) spec.PredictorSpec {
		return spec.PredictorSpec{
			Family:         spec.FamilyComposite,
			Entries:        entries,
			AM:             spec.AMPC,
			ValuePoolSlots: slots,
		}
	}
	storageKB := func(slots int) float64 {
		return core.NewComposite(core.CompositeConfig{
			Entries: entries, Seed: 1, ValuePoolSlots: slots,
		}).StorageKB()
	}
	directKB := storageKB(0)
	dir := Summarize(ctx.PerWorkload("pool-direct", ctx.Factory(poolSpec(0))))

	t := &table{header: []string{"Configuration", "Storage", "Saved", "Speedup", "Coverage", "Accuracy"}}
	t.add("direct value arrays", fmt.Sprintf("%.2fKB", directKB), "-",
		pct(dir.Speedup), pctu(dir.Coverage), fmt.Sprintf("%.4f", dir.Accuracy))

	for _, slots := range []int{16, 48, 128, 256} {
		kb := storageKB(slots)
		a := Summarize(ctx.PerWorkload(fmt.Sprintf("pool-%d", slots), ctx.Factory(poolSpec(slots))))
		t.add(fmt.Sprintf("shared pool, %d slots", slots),
			fmt.Sprintf("%.2fKB", kb),
			fmt.Sprintf("%.1f%%", 100*(1-kb/directKB)),
			pct(a.Speedup), pctu(a.Coverage), fmt.Sprintf("%.4f", a.Accuracy))
	}
	return Result{
		ID:    "SharedPool",
		Title: "Extension: decoupled shared value arrays (Section III-B optimization)",
		Lines: t.lines(),
	}
}
