package expt

import (
	"testing"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/eves"
	"repro/internal/spec"
	"repro/internal/stats"
	"repro/internal/trace"
)

// TestSpecGoldenParity freezes the pre-spec engine constructions (the
// literal core/eves calls the experiment layer used before the spec
// registry existed) and proves the default spec.Sim path produces
// bit-identical stats.Run values for the composite, best, and EVES
// configurations on three workloads. A divergence here means the
// registry changed simulation semantics, not just plumbing.
func TestSpecGoldenParity(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates 18 runs")
	}
	const insts = 20_000
	ctx := NewContext(Options{
		Insts:     insts,
		Workloads: []string{"gcc2k", "mcf", "xalancbmk"},
	})

	// The pre-refactor epoch scaling: insts/20 floored at 2000.
	legacyEpoch := uint64(insts) / 20
	if legacyEpoch < 2000 {
		legacyEpoch = 2000
	}

	legacy := map[string]func(seed uint64) cpu.Engine{
		// Default composite: homogeneous 1K tables, PC-AM(64).
		"composite": func(seed uint64) cpu.Engine {
			return cpu.NewCompositeEngine(core.NewComposite(core.CompositeConfig{
				Entries: core.HomogeneousEntries(1024),
				Seed:    seed,
				AM:      core.NewPCAM(64),
			}))
		},
		// Best: composite + PC-AM(64) + scaled table fusion, no smart
		// training (see BestComposite's doc comment).
		"best": func(seed uint64) cpu.Engine {
			return cpu.NewCompositeEngine(core.NewComposite(core.CompositeConfig{
				Entries: core.HomogeneousEntries(1024),
				Seed:    seed,
				AM:      core.NewPCAM(64),
				Fusion: &core.FusionConfig{
					EpochInstrs:    legacyEpoch / 2,
					UsedPerKilo:    20,
					ClassifyEpochs: 5,
					CycleEpochs:    25,
				},
			}))
		},
		"eves": func(seed uint64) cpu.Engine {
			return eves.New(eves.Config{BudgetKB: 32, Seed: seed})
		},
	}

	specs := map[string]spec.Sim{
		"composite": {}, // the zero spec IS the default composite
		"best":      {Predictor: spec.PredictorSpec{Family: spec.FamilyBest}},
		"eves":      {Predictor: spec.PredictorSpec{Family: spec.FamilyEVES}},
	}

	for name, mkLegacy := range legacy {
		sim := specs[name]
		sim.Normalize(spec.Defaults{Insts: insts})
		if err := sim.ValidateConfig(); err != nil {
			t.Fatalf("%s: spec does not validate: %v", name, err)
		}
		mkSpec := ctx.Factory(sim.Predictor)
		for _, w := range ctx.Pool() {
			seed := ctx.EngineSeed(w)
			want := runOnce(ctx, w, name, mkLegacy(seed))
			got := runOnce(ctx, w, name, mkSpec(seed))
			if want != got {
				t.Errorf("%s/%s: spec path diverges from the frozen pre-spec construction:\nlegacy %+v\nspec   %+v",
					name, w.Name, want, got)
			}
		}
	}
}

// runOnce simulates one (workload, engine) run on the Table III machine
// outside the pipeline pool's engine-factory plumbing, so both sides of
// the parity check go through the identical code path.
func runOnce(ctx *Context, w trace.Workload, config string, eng cpu.Engine) stats.Run {
	p := cpu.Acquire(cpu.DefaultConfig(), eng)
	defer cpu.Release(p)
	return p.Run(w.Build(ctx.Insts()), w.Name, config)
}
