package expt

import (
	"context"
	"testing"

	"repro/internal/spec"
	"repro/internal/trace"
)

func smtSim(t *testing.T, contexts int, names ...string) spec.Sim {
	t.Helper()
	sim := spec.Sim{
		Machine:  spec.MachineSpec{Contexts: contexts},
		Workload: spec.WorkloadSpec{Names: names},
	}
	n, _, err := sim.Canonical(spec.Defaults{Insts: 10_000})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestRunSMTDeterministicAcrossTraceSources(t *testing.T) {
	sim := smtSim(t, 2, "gcc2k", "mcf")
	c := NewContext(Options{Insts: 10_000, Workloads: []string{"gcc2k"}})
	mk := c.Factory(sim.Predictor)
	seed := c.EngineSeedLabel(sim.WorkloadLabel())
	live := c.RunSMTCtx(context.Background(), sim, "smt", mk(seed))

	// The same spec replayed from recorded artifacts must match.
	store, err := trace.NewArtifactStore(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	ct := NewContext(Options{Insts: 10_000, Workloads: []string{"gcc2k"}, Traces: store})
	replayed := ct.RunSMTCtx(context.Background(), sim, "smt", mk(seed))
	if live.Merged != replayed.Merged {
		t.Fatalf("artifact-replayed SMT run diverged:\n got: %+v\nwant: %+v", replayed.Merged, live.Merged)
	}
	for i := range live.Per {
		if live.Per[i] != replayed.Per[i] {
			t.Fatalf("context %d diverged:\n got: %+v\nwant: %+v", i, replayed.Per[i], live.Per[i])
		}
	}
	if st := store.Stats(); st.Generated != 2 {
		t.Errorf("store generated %d artifacts, want 2 (one per context stream)", st.Generated)
	}
}

func TestSMTBaselineCachedPerMixAndMachine(t *testing.T) {
	c := NewContext(Options{Insts: 10_000, Workloads: []string{"gcc2k"}})
	sim := smtSim(t, 2, "gcc2k", "gcc2k")
	a := c.SMTBaselineCtx(context.Background(), sim)
	b := c.SMTBaselineCtx(context.Background(), sim)
	if a.Merged != b.Merged || len(a.Per) != 2 {
		t.Fatalf("cached SMT baseline diverged:\n%+v\n%+v", a, b)
	}
	// The single-context baseline of the same workload must live under a
	// different key — the SMT baseline's contention must not leak into it.
	w, _ := trace.ByName("gcc2k")
	solo := c.Baseline(w)
	if solo == a.Merged {
		t.Error("single-context baseline equals the 2-context merged baseline")
	}
	if solo.Instructions != 10_000 || a.Merged.Instructions != 20_000 {
		t.Errorf("budgets wrong: solo=%d merged=%d", solo.Instructions, a.Merged.Instructions)
	}
	// A 4-context baseline of the same mix label is keyed by its machine.
	sim4 := smtSim(t, 4, "gcc2k", "gcc2k", "gcc2k", "gcc2k")
	d := c.SMTBaselineCtx(context.Background(), sim4)
	if d.Merged == a.Merged {
		t.Error("4-context baseline collided with the 2-context cache entry")
	}
}
