package expt

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/trace"
	"repro/internal/vpsec"
)

// VPsec evaluates the fault-attack countermeasure of the paper's
// footnote 4 over the workload pool: load values are corrupted at a
// configured rate on their way to the detector, which overrules them
// when a quorum of confident predictors agrees on a different value.
// The sweep reports detection rate, exact-correction rate, and false
// positives per million clean loads for several attack intensities.
func VPsec(ctx *Context) Result {
	t := &table{header: []string{
		"Fault rate", "Loads checked", "Detection", "Exact correction", "FP per 1M clean",
	}}
	for _, rate := range []uint32{1000, 100, 20} {
		var agg vpsec.Stats
		stats := make([]vpsec.Stats, len(ctx.Pool()))
		rate := rate
		ctx.forEach(func(i int, w trace.Workload) {
			stats[i] = vpsecRun(w, ctx.Insts(), ctx.Seed(), rate)
		})
		for _, s := range stats {
			agg.Checked += s.Checked
			agg.FaultsInjected += s.FaultsInjected
			agg.Detected += s.Detected
			agg.Corrected += s.Corrected
			agg.Missed += s.Missed
			agg.FalsePositives += s.FalsePositives
		}
		correction := 0.0
		if agg.Detected > 0 {
			correction = float64(agg.Corrected) / float64(agg.Detected)
		}
		t.add(
			fmt.Sprintf("1/%d", rate),
			fmt.Sprint(agg.Checked),
			pctu(100*agg.DetectionRate()),
			pctu(100*correction),
			fmt.Sprintf("%.1f", 1e6*agg.FalsePositiveRate()),
		)
	}
	return Result{
		ID:    "VPsec",
		Title: "Extension: fault detection via predictor overlap (footnote 4)",
		Lines: t.lines(),
	}
}

// vpsecRun drives the composite functionally over one workload with
// fault injection on observed load values. Detection is only possible
// on loads the predictors know (a quorum exists), so the detection rate
// is bounded by multi-predictor coverage — the overlap of Figure 4 is
// exactly VPsec's protection surface.
func vpsecRun(w trace.Workload, insts, seed uint64, rate uint32) vpsec.Stats {
	comp := core.NewComposite(core.CompositeConfig{
		Entries: core.HomogeneousEntries(256),
		Seed:    core.SplitMix64(seed ^ hashName(w.Name)),
	})
	det := vpsec.New(vpsec.DefaultConfig())
	inj := vpsec.NewInjector(rate, seed^0xFA017)

	gen := w.Build(insts)
	mem := gen.Mem()
	resolve := func(addr uint64, size uint8) (uint64, bool) {
		return mem.Read(addr, size), true
	}

	var hist, loadPath uint64
	var in trace.Inst
	warmup := insts / 2
	var n uint64
	for gen.Next(&in) {
		n++
		if in.IsBranch() {
			hist <<= 1
			if in.Taken {
				hist |= 1
			}
			continue
		}
		if in.Op != trace.OpLoad || in.Flags.NoPredict() {
			continue
		}
		lk := comp.Probe(core.Probe{PC: in.PC, BranchHist: hist, LoadPath: loadPath})
		loadPath = (loadPath << 6) ^ ((in.PC >> 2) & 0xFFF)
		observed, injected := inj.Corrupt(in.Value)
		if n > warmup {
			det.Record(det.Check(&lk, observed, in.Size, resolve), injected, in.Value)
		}
		o := core.Outcome{
			PC: in.PC, BranchHist: hist, LoadPath: loadPath,
			Addr: in.Addr, Size: in.Size, Value: in.Value,
		}
		comp.Train(o, &lk, core.Validate(&lk, o, resolve))
	}
	return det.Stats()
}
