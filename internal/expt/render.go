package expt

import (
	"fmt"
	"strings"
)

// Result is a rendered experiment: a paper table or figure regenerated
// as text rows.
type Result struct {
	ID    string
	Title string
	Lines []string
}

// String implements fmt.Stringer.
func (r Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s — %s ===\n", r.ID, r.Title)
	for _, l := range r.Lines {
		b.WriteString(l)
		b.WriteByte('\n')
	}
	return b.String()
}

// table renders aligned columns.
type table struct {
	header []string
	rows   [][]string
}

func (t *table) add(cells ...string) {
	t.rows = append(t.rows, cells)
}

func (t *table) lines() []string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	format := func(cells []string) string {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[min(i, len(widths)-1)], c)
		}
		return strings.TrimRight(b.String(), " ")
	}
	out := []string{format(t.header)}
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	out = append(out, format(sep))
	for _, row := range t.rows {
		out = append(out, format(row))
	}
	return out
}

func pct(v float64) string  { return fmt.Sprintf("%+.2f%%", v) }
func pctu(v float64) string { return fmt.Sprintf("%.1f%%", v) }

// bar renders a proportional ASCII bar for a non-negative value against
// a maximum, used to give the figure outputs their visual shape.
func bar(v, max float64, width int) string {
	if max <= 0 || v <= 0 {
		return ""
	}
	n := int(v / max * float64(width))
	if n > width {
		n = width
	}
	if n == 0 {
		n = 1
	}
	return strings.Repeat("#", n)
}
