package expt

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/spec"
	"repro/internal/trace"
)

// Ablations quantifies the design choices DESIGN.md calls out: each row
// disables one mechanism of the full system (the 9.6KB best composite on
// the Table III core) and reports the aggregate impact. It extends the
// paper with the sensitivity study its Section V motivates.
func Ablations(ctx *Context) Result {
	_, big := fig11Configs()
	mk := ctx.BestComposite(big)

	rows := []struct {
		name string
		cfg  func() cpu.Config
		eng  EngineFactory
	}{
		{"full system", cpu.DefaultConfig, mk},
		{"- PAQ prefetch on probe miss", func() cpu.Config {
			c := cpu.DefaultConfig()
			c.PAQPrefetchOnMiss = false
			return c
		}, mk},
		{"- store-conflict suppression", func() cpu.Config {
			c := cpu.DefaultConfig()
			c.SuppressStoreConflicts = false
			return c
		}, mk},
		{"replay recovery (vs flush)", func() cpu.Config {
			c := cpu.DefaultConfig()
			c.ReplayRecovery = true
			return c
		}, mk},
		{"PAQ depth 8 (vs 24)", func() cpu.Config {
			c := cpu.DefaultConfig()
			c.PAQDepth = 8
			return c
		}, mk},
		{"PAQ unbounded", func() cpu.Config {
			c := cpu.DefaultConfig()
			c.PAQDepth = 0
			return c
		}, mk},
		{"- accuracy monitor", cpu.DefaultConfig, ctx.CompositeFactory(big, spec.AMNone, false, true)},
		{"- table fusion", cpu.DefaultConfig, ctx.CompositeFactory(big, spec.AMPC, false, false)},
		{"- address predictors (LVP+CVP)", cpu.DefaultConfig, func() EngineFactory {
			var e [core.NumComponents]int
			e[core.CompLVP] = big[core.CompLVP]
			e[core.CompCVP] = big[core.CompCVP]
			return ctx.CompositeFactory(e, spec.AMPC, false, false)
		}()},
		{"- value predictors (SAP+CAP)", cpu.DefaultConfig, func() EngineFactory {
			var e [core.NumComponents]int
			e[core.CompSAP] = big[core.CompSAP]
			e[core.CompCAP] = big[core.CompCAP]
			return ctx.CompositeFactory(e, spec.AMPC, false, false)
		}()},
	}

	t := &table{header: []string{"Configuration", "Speedup", "Coverage", "Accuracy"}}
	for _, row := range rows {
		agg := Summarize(ctx.perWorkloadCfg(row.name, row.cfg(), row.eng))
		t.add(row.name, pct(agg.Speedup), pctu(agg.Coverage), fmt.Sprintf("%.4f", agg.Accuracy))
	}
	return Result{
		ID:    "Ablations",
		Title: "Mechanism ablations on the 9.6KB composite",
		Lines: t.lines(),
	}
}

// perWorkloadCfg is PerWorkload with an explicit core configuration.
// The baseline for speedup uses the same core configuration so each row
// isolates the predictor-side mechanism.
func (c *Context) perWorkloadCfg(config string, coreCfg cpu.Config, mk EngineFactory) []Pair {
	out := make([]Pair, len(c.pool))
	c.forEach(func(i int, w trace.Workload) {
		p := cpu.Acquire(coreCfg, nil)
		base := p.Run(w.Build(c.insts), w.Name, "base")
		eng := mk(core.SplitMix64(c.seed ^ hashName(w.Name)))
		p.Reset(coreCfg, eng)
		run := p.Run(w.Build(c.insts), w.Name, config)
		cpu.Release(p)
		out[i] = Pair{Workload: w.Name, Run: run, Base: base}
	})
	return out
}

// WindowSweep measures how the composite's benefit scales with the
// out-of-order window: the paper motivates value prediction by the
// growth of scheduling windows (Section I), and this extension
// quantifies the interaction — smaller windows hide less load latency,
// larger windows extract more MLP on their own.
func WindowSweep(ctx *Context) Result {
	_, big := fig11Configs()
	mk := ctx.CompositeFactory(big, spec.AMPC, false, false)
	t := &table{header: []string{"ROB", "IQ", "LDQ/STQ", "Baseline IPC", "Speedup", "Coverage"}}
	for _, scale := range []struct {
		name     string
		rob, iq  int
		ldq, stq int
	}{
		{"half", 112, 48, 36, 28},
		{"Skylake (Table III)", 224, 97, 72, 56},
		{"double", 448, 194, 144, 112},
		{"quad", 896, 388, 288, 224},
	} {
		cfg := cpu.DefaultConfig()
		cfg.ROB, cfg.IQ, cfg.LDQ, cfg.STQ = scale.rob, scale.iq, scale.ldq, scale.stq
		pairs := ctx.perWorkloadCfg("win-"+scale.name, cfg, mk)
		agg := Summarize(pairs)
		baseIPC := 0.0
		for _, p := range pairs {
			baseIPC += p.Base.IPC()
		}
		baseIPC /= float64(len(pairs))
		t.add(fmt.Sprintf("%d (%s)", scale.rob, scale.name), fmt.Sprint(scale.iq),
			fmt.Sprintf("%d/%d", scale.ldq, scale.stq),
			fmt.Sprintf("%.3f", baseIPC), pct(agg.Speedup), pctu(agg.Coverage))
	}
	return Result{
		ID:    "WindowSweep",
		Title: "Extension: composite benefit vs out-of-order window size",
		Lines: t.lines(),
	}
}
