package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestIPC(t *testing.T) {
	r := Run{Instructions: 1000, Cycles: 500}
	if r.IPC() != 2 {
		t.Errorf("IPC = %v", r.IPC())
	}
	if (Run{}).IPC() != 0 {
		t.Error("zero-cycle IPC should be 0")
	}
}

func TestCoverage(t *testing.T) {
	r := Run{Loads: 200, PredictedLoads: 50}
	if r.Coverage() != 25 {
		t.Errorf("coverage = %v", r.Coverage())
	}
	if (Run{}).Coverage() != 0 {
		t.Error("no-loads coverage should be 0")
	}
}

func TestAccuracy(t *testing.T) {
	r := Run{PredictedLoads: 100, CorrectPredicted: 99}
	if r.Accuracy() != 0.99 {
		t.Errorf("accuracy = %v", r.Accuracy())
	}
	if (Run{}).Accuracy() != 1 {
		t.Error("no-prediction accuracy should be 1")
	}
}

func TestSpeedup(t *testing.T) {
	base := Run{Instructions: 1000, Cycles: 1000}
	faster := Run{Instructions: 1000, Cycles: 800}
	if got := Speedup(faster, base); math.Abs(got-25) > 1e-9 {
		t.Errorf("speedup = %v, want 25", got)
	}
	if got := Speedup(base, base); got != 0 {
		t.Errorf("self speedup = %v", got)
	}
	if got := Speedup(faster, Run{}); got != 0 {
		t.Errorf("zero-base speedup = %v", got)
	}
}

func TestSpeedupSign(t *testing.T) {
	err := quick.Check(func(c1, c2 uint32) bool {
		a := Run{Instructions: 1000, Cycles: uint64(c1%100000) + 1}
		b := Run{Instructions: 1000, Cycles: uint64(c2%100000) + 1}
		sp := Speedup(a, b)
		switch {
		case a.Cycles < b.Cycles:
			return sp > 0
		case a.Cycles > b.Cycles:
			return sp < 0
		default:
			return sp == 0
		}
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("empty mean")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("mean = %v", got)
	}
}

func TestGeoMeanSpeedup(t *testing.T) {
	if GeoMeanSpeedup(nil) != 0 {
		t.Error("empty geomean")
	}
	// Two ratios 1.21 and 1.0 → geomean = 1.1 → +10%.
	got := GeoMeanSpeedup([]float64{1.21, 1.0})
	if math.Abs(got-10) > 1e-9 {
		t.Errorf("geomean speedup = %v, want 10", got)
	}
	// Non-positive ratios are skipped, not fatal.
	got = GeoMeanSpeedup([]float64{-1, 0, 1.21, 1.0})
	if math.Abs(got-10) > 1e-9 {
		t.Errorf("geomean with junk = %v, want 10", got)
	}
	if GeoMeanSpeedup([]float64{0}) != 0 {
		t.Error("all-junk geomean should be 0")
	}
}

func TestGeoMeanBelowArithmeticForSpread(t *testing.T) {
	ratios := []float64{1.5, 1.0, 1.0, 1.0}
	geo := GeoMeanSpeedup(ratios)
	arith := 100 * (Mean(ratios) - 1)
	if geo >= arith {
		t.Errorf("geomean %v >= arithmetic %v", geo, arith)
	}
}

func TestRunString(t *testing.T) {
	r := Run{Workload: "mcf", Config: "composite", Instructions: 10, Cycles: 5,
		Loads: 4, PredictedLoads: 2, CorrectPredicted: 2}
	s := r.String()
	for _, want := range []string{"mcf", "composite", "IPC=2.000", "coverage=50.0%"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q: %s", want, s)
		}
	}
}
