// Package stats provides the run metrics and aggregation helpers used
// throughout the evaluation: IPC, speedup, coverage, accuracy, and the
// paper's averaging conventions (arithmetic mean for rates, geometric
// mean for IPC-derived quantities).
package stats

import (
	"fmt"
	"math"
)

// Run captures the outcome of simulating one workload under one
// configuration.
type Run struct {
	Workload     string
	Config       string
	Instructions uint64
	Cycles       uint64

	Loads            uint64 // dynamic loads eligible for prediction
	PredictedLoads   uint64 // loads with a delivered prediction
	CorrectPredicted uint64 // delivered predictions that validated correct
	VPFlushes        uint64 // value-misprediction recovery flushes
	BranchFlushes    uint64 // branch-misprediction redirects
	MemOrderFlushes  uint64 // memory-ordering violation flushes

	// Aborted marks a run cut short by context cancellation: the counts
	// above cover only the instructions simulated before the abort, so
	// the run must not be cached or aggregated as a complete result.
	Aborted bool
}

// IPC returns instructions per cycle.
func (r Run) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Instructions) / float64(r.Cycles)
}

// Coverage returns the percentage of loads with a delivered prediction,
// the paper's coverage metric.
func (r Run) Coverage() float64 {
	if r.Loads == 0 {
		return 0
	}
	return 100 * float64(r.PredictedLoads) / float64(r.Loads)
}

// Accuracy returns the fraction of delivered predictions that were
// correct (the paper tunes all predictors to ≈ 0.99).
func (r Run) Accuracy() float64 {
	if r.PredictedLoads == 0 {
		return 1
	}
	return float64(r.CorrectPredicted) / float64(r.PredictedLoads)
}

// Speedup returns the relative IPC gain of r over base as a percentage
// (e.g. 4.5 means 4.5% faster).
func Speedup(r, base Run) float64 {
	if base.IPC() == 0 {
		return 0
	}
	return 100 * (r.IPC()/base.IPC() - 1)
}

// Mean returns the arithmetic mean, the paper's default aggregate.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// GeoMeanSpeedup aggregates per-workload IPC ratios geometrically (the
// paper uses geometric averaging for IPC) and returns the aggregate
// speedup percentage.
func GeoMeanSpeedup(ratios []float64) float64 {
	if len(ratios) == 0 {
		return 0
	}
	logSum := 0.0
	n := 0
	for _, r := range ratios {
		if r <= 0 {
			continue
		}
		logSum += math.Log(r)
		n++
	}
	if n == 0 {
		return 0
	}
	return 100 * (math.Exp(logSum/float64(n)) - 1)
}

// Accumulate folds r into the machine-wide aggregate dst: counters are
// summed, Cycles takes the maximum (the contexts of an SMT run share
// wall-clock cycles — the machine is done when its slowest context is),
// and an aborted contributor marks the aggregate aborted. dst keeps its
// own Workload/Config labels. Allocation-free, so the pipeline's SMT
// hot path can merge per-context runs in place.
func Accumulate(dst *Run, r Run) {
	dst.Instructions += r.Instructions
	if r.Cycles > dst.Cycles {
		dst.Cycles = r.Cycles
	}
	dst.Loads += r.Loads
	dst.PredictedLoads += r.PredictedLoads
	dst.CorrectPredicted += r.CorrectPredicted
	dst.VPFlushes += r.VPFlushes
	dst.BranchFlushes += r.BranchFlushes
	dst.MemOrderFlushes += r.MemOrderFlushes
	dst.Aborted = dst.Aborted || r.Aborted
}

// Merge aggregates the per-context runs of one SMT simulation into a
// machine-wide summary labeled workload/config. See Accumulate for the
// merge semantics.
func Merge(workload, config string, runs []Run) Run {
	m := Run{Workload: workload, Config: config}
	for _, r := range runs {
		Accumulate(&m, r)
	}
	return m
}

// String implements fmt.Stringer with the headline numbers.
func (r Run) String() string {
	return fmt.Sprintf("%s/%s: IPC=%.3f coverage=%.1f%% accuracy=%.4f flushes(vp=%d br=%d mo=%d)",
		r.Workload, r.Config, r.IPC(), r.Coverage(), r.Accuracy(),
		r.VPFlushes, r.BranchFlushes, r.MemOrderFlushes)
}
