package prof

import (
	"os"
	"path/filepath"
	"testing"
)

func TestStartWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.out")
	mem := filepath.Join(dir, "mem.out")
	stop, err := Start(cpu, mem)
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU and heap so the profiles have samples to record.
	sink := 0
	buf := make([]byte, 1<<20)
	for i := range buf {
		sink += int(buf[i]) + i
	}
	_ = sink
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s not written: %v", p, err)
		}
		if st.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
}

func TestStartNoopWhenUnset(t *testing.T) {
	stop, err := Start("", "")
	if err != nil {
		t.Fatal(err)
	}
	if stop == nil {
		t.Fatal("stop function is nil")
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
}

func TestStartBadPath(t *testing.T) {
	if _, err := Start(filepath.Join(t.TempDir(), "no", "such", "dir", "cpu.out"), ""); err == nil {
		t.Fatal("Start accepted an uncreatable CPU profile path")
	}
}
