// Package prof wires the conventional -cpuprofile/-memprofile flags
// into a command: Start begins a CPU profile, and the returned stop
// function ends it and writes a heap profile. Both commands in this
// repo share it so profiling a slow sweep is one flag away:
//
//	lvpsim -workload gcc2k -insts 2000000 -cpuprofile cpu.out
//	experiments -run fig5 -memprofile mem.out
//	go tool pprof cpu.out
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins profiling according to the two (possibly empty) output
// paths. The returned stop function must run once at exit: it stops
// the CPU profile and writes the heap profile after a final GC so the
// snapshot reflects live memory, not collectible garbage. stop is
// never nil, even when both paths are empty.
func Start(cpuProfile, memProfile string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuProfile != "" {
		cpuFile, err = os.Create(cpuProfile)
		if err != nil {
			return nil, fmt.Errorf("creating CPU profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("starting CPU profile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("closing CPU profile: %w", err)
			}
		}
		if memProfile != "" {
			f, err := os.Create(memProfile)
			if err != nil {
				return fmt.Errorf("creating heap profile: %w", err)
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				f.Close()
				return fmt.Errorf("writing heap profile: %w", err)
			}
			if err := f.Close(); err != nil {
				return fmt.Errorf("closing heap profile: %w", err)
			}
		}
		return nil
	}, nil
}
