package cluster

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"

	otrace "repro/internal/obs/trace"
	"repro/internal/server"
)

// workerWaitSlice is how long a dispatch loop sleeps when no worker is
// currently dispatchable (all quarantined, drained, or saturated)
// before looking again. Points wait indefinitely for capacity — a fleet
// that is temporarily empty recovers as soon as a worker registers.
const workerWaitSlice = 20 * time.Millisecond

// runPoint is one point's dispatch state machine, run on its own
// goroutine:
//
//	pending -> dispatch to least-loaded worker -> done
//	   ^          | failure: backoff+jitter, bounded retries
//	   |          | steal: worker quarantined/drained, free re-dispatch
//	   +----------+ otherwise -> failed
//
// Every dispatch submits the same canonical spec, so workers answer
// repeats from their result caches and the coordinator can retry
// without double-counting work.
func (c *Coordinator) runPoint(sw *sweep, pt *point) {
	defer c.runners.Done()
	fails := 0
	steals := 0
	// Steals are free (the point did nothing wrong), but bounded so a
	// fleet that keeps collapsing mid-job cannot loop a point forever.
	maxSteals := 4 * (c.cfg.PointRetries + 1)
	for {
		if c.lifeCtx.Err() != nil {
			// Not persisted: an accepted point the shutdown abandons is
			// still owed, and the WAL re-dispatches it on restart.
			c.abandonPoint(sw, pt, "coordinator shutting down")
			return
		}
		att := c.acquireWorker()
		if att == nil {
			select {
			case <-c.lifeCtx.Done():
			case <-time.After(workerWaitSlice):
			}
			continue
		}
		c.notePointRunning(sw, pt, att.w)
		res, err := c.attemptOnce(sw, att, pt)
		stolen := c.releaseAttempt(att)
		if err == nil {
			c.cache.Put(pt.hash, res)
			c.settlePoint(sw, pt, &res, "")
			return
		}

		var perm *permanentError
		if errors.As(err, &perm) {
			c.settlePoint(sw, pt, nil, err.Error())
			return
		}
		if stolen {
			steals++
			c.mStolen.Inc()
			att.w.mStolen.Inc()
			c.mu.Lock()
			pt.steals = steals
			c.mu.Unlock()
			if steals > maxSteals {
				c.settlePoint(sw, pt, nil, fmt.Sprintf("re-dispatched %d times off dying workers: %v", steals, err))
				return
			}
			// No backoff: the worker died, the point is innocent.
			continue
		}
		fails++
		if fails > c.cfg.PointRetries {
			c.settlePoint(sw, pt, nil, fmt.Sprintf("gave up after %d attempts: %v", fails, err))
			return
		}
		c.mRetried.Inc()
		att.w.mRetried.Inc()
		c.log.Info("point retrying", "sweep", sw.id, "spec", pt.hash,
			"attempt", fails, "worker", att.w.id, "err", err)
		select {
		case <-c.lifeCtx.Done():
		case <-time.After(backoffDelay(c.cfg.BackoffBase, c.cfg.BackoffMax, fails)):
		}
	}
}

// backoffDelay returns the delay before retry number `fails` (1-based):
// base doubled per failure, capped at max, jittered to 50–150% so
// simultaneous failures do not re-dispatch in lockstep.
func backoffDelay(base, max time.Duration, fails int) time.Duration {
	shift := fails - 1
	if shift > 20 {
		shift = 20
	}
	d := base << uint(shift)
	if d > max || d <= 0 {
		d = max
	}
	jittered := time.Duration(float64(d) * (0.5 + rand.Float64()))
	if jittered <= 0 {
		jittered = base
	}
	return jittered
}

// acquireWorker reserves a dispatch slot on the least-loaded active
// worker (ties broken by reported queue depth, then id) and returns the
// attempt handle, or nil when nothing is dispatchable.
func (c *Coordinator) acquireWorker() *attempt {
	c.mu.Lock()
	defer c.mu.Unlock()
	var best *worker
	for _, w := range c.workers {
		if w.state != WorkerActive || w.inflight >= c.cfg.WorkerSlots {
			continue
		}
		if best == nil {
			best = w
			continue
		}
		switch {
		case w.inflight != best.inflight:
			if w.inflight < best.inflight {
				best = w
			}
		case w.health.QueueDepth != best.health.QueueDepth:
			if w.health.QueueDepth < best.health.QueueDepth {
				best = w
			}
		case w.id < best.id:
			best = w
		}
	}
	if best == nil {
		return nil
	}
	ctx, cancel := context.WithCancel(c.lifeCtx)
	att := &attempt{w: best, ctx: ctx, cancel: cancel}
	best.attempts[att] = struct{}{}
	best.inflight++
	best.mInflight.Set(int64(best.inflight))
	best.mDispatched.Inc()
	c.mDispatched.Inc()
	c.mInflight.Add(1)
	return att
}

// releaseAttempt returns the attempt's slot and reports whether the
// attempt was stolen (cancelled by quarantine or drain rather than
// failing on its own).
func (c *Coordinator) releaseAttempt(att *attempt) bool {
	att.cancel()
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(att.w.attempts, att)
	att.w.inflight--
	att.w.mInflight.Set(int64(att.w.inflight))
	c.mInflight.Add(-1)
	return att.stolen
}

// attemptOnce runs one dispatch attempt end to end: submit the point's
// canonical spec, then poll the job until it settles, the attempt
// deadline passes, or the attempt is cancelled. Worker blame
// (circuit-breaker accounting) is applied here; the caller only
// classifies the returned error as permanent, stolen, or retryable.
// The attempt runs inside a "dispatch" span parented on the sweep's
// root span; the submit POST carries its traceparent, so the worker's
// job/baseline/run spans join the same trace.
func (c *Coordinator) attemptOnce(sw *sweep, att *attempt, pt *point) (server.RunResult, error) {
	ctx, cancel := context.WithTimeout(att.ctx, c.cfg.PointDeadline)
	defer cancel()
	ctx, span := c.tracer.StartSpan(otrace.ContextWithSpan(ctx, sw.span), "dispatch",
		otrace.String("spec", pt.hash),
		otrace.String("worker", att.w.id),
		otrace.String("worker_url", att.w.url))
	start := time.Now()
	defer func() {
		att.w.mDispatchDur.Observe(time.Since(start).Seconds())
		span.Finish()
	}()
	cl := c.workerClient(att.w.url, sw)

	sim := pt.sim
	st, err := cl.submitJob(ctx, server.JobRequest{Spec: &sim})
	if err != nil {
		c.classifyAttemptError(att, err)
		return server.RunResult{}, err
	}
	for {
		switch st.State {
		case server.StateDone:
			if st.Result == nil {
				err := &workerError{fmt.Errorf("job %s done without a result", st.ID)}
				c.noteWorkerFailure(att.w, err)
				return server.RunResult{}, err
			}
			c.noteWorkerSuccess(att.w, nil)
			return *st.Result, nil
		case server.StateFailed, server.StateCanceled:
			// The worker is healthy — it answered — but the job did not
			// survive (per-job timeout, local cancel). Retryable
			// without blaming the worker.
			return server.RunResult{}, fmt.Errorf("worker %s reported job %s %s: %s", att.w.id, st.ID, st.State, st.Error)
		}
		select {
		case <-ctx.Done():
			// Deadline or steal. Release the worker's slot promptly and
			// try to stop the abandoned job so the worker does not burn
			// cycles on a point the coordinator re-dispatched.
			if st.ID != "" {
				go func(id string) {
					bg, bgCancel := context.WithTimeout(context.Background(), c.cfg.HealthTimeout)
					defer bgCancel()
					_ = cl.cancelJob(bg, id)
				}(st.ID)
			}
			err := ctx.Err()
			if !att.stolen && errors.Is(err, context.DeadlineExceeded) {
				// The worker sat on the job past the attempt deadline.
				c.noteWorkerFailure(att.w, err)
			}
			return server.RunResult{}, fmt.Errorf("attempt on %s aborted: %w", att.w.id, err)
		case <-time.After(c.cfg.PollInterval):
		}
		st, err = cl.getJob(ctx, st.ID)
		if err != nil {
			c.classifyAttemptError(att, err)
			return server.RunResult{}, err
		}
		if st.Progress != nil {
			// Re-export the worker's live view through the sweep status.
			c.mu.Lock()
			pt.progress = st.Progress
			c.mu.Unlock()
		}
	}
}

// classifyAttemptError applies circuit-breaker accounting for one
// failed exchange: transport errors and 5xx blame the worker; 429 and
// permanent spec rejections prove the worker alive.
func (c *Coordinator) classifyAttemptError(att *attempt, err error) {
	var we *workerError
	switch {
	case errors.As(err, &we):
		if att.stolen {
			return // the cancel itself caused the failure
		}
		c.noteWorkerFailure(att.w, err)
	case errors.Is(err, errShed):
		c.noteWorkerSuccess(att.w, nil)
	default:
		var perm *permanentError
		if errors.As(err, &perm) {
			c.noteWorkerSuccess(att.w, nil)
		}
	}
}

// notePointRunning records a dispatch in the sweep state.
func (c *Coordinator) notePointRunning(sw *sweep, pt *point, w *worker) {
	c.mu.Lock()
	defer c.mu.Unlock()
	pt.state = PointRunning
	pt.workerID = w.id
	pt.attempts++
}

// settlePoint finalizes a point as done (res != nil) or failed, and
// records the settlement durably.
func (c *Coordinator) settlePoint(sw *sweep, pt *point, res *server.RunResult, errMsg string) {
	done := c.markSettled(sw, pt, res, errMsg)
	c.persistPoint(sw, pt, res, errMsg, done)
	if res != nil {
		if ctr := c.mTenantPoints[sw.tenant]; ctr != nil {
			ctr.Inc()
		}
	}
}

// abandonPoint finalizes a point the shutdown cancelled WITHOUT
// persisting: the WAL keeps owing it, so the next start re-dispatches.
func (c *Coordinator) abandonPoint(sw *sweep, pt *point, errMsg string) {
	c.markSettled(sw, pt, nil, errMsg)
}

// markSettled applies a point's terminal transition to the in-memory
// sweep state and reports whether it was the sweep's last open point.
func (c *Coordinator) markSettled(sw *sweep, pt *point, res *server.RunResult, errMsg string) bool {
	c.mu.Lock()
	pt.finished = time.Now()
	pt.progress = nil
	if res != nil {
		pt.state = PointDone
		pt.result = res
		pt.errMsg = ""
	} else {
		pt.state = PointFailed
		pt.errMsg = errMsg
	}
	done := sw.terminalLocked()
	st := sw.statusLocked(false)
	c.mu.Unlock()
	if done {
		sw.span.Finish()
	}

	if res != nil {
		c.mPtsDone.Inc()
	} else {
		c.mPtsFailed.Inc()
		c.log.Warn("point failed", "sweep", sw.id, "spec", pt.hash, "err", errMsg)
	}
	if done {
		c.log.Info("sweep complete", "sweep", sw.id, "total", st.Total,
			"unique", st.Unique, "done", st.Done, "failed", st.Failed,
			"cached", st.Cached, "deduped", st.Deduped)
	}
	return done
}
