package cluster

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"

	"repro/internal/server"
	"repro/internal/store"
	"repro/internal/trace"
	"repro/internal/tracein"
)

// encodeTrace returns a tracein container holding the first n
// instructions of a synthetic workload — the test stand-in for a real
// CVP-1 trace file.
func encodeTrace(t *testing.T, workload string, n uint64) []byte {
	t.Helper()
	w, ok := trace.ByName(workload)
	if !ok {
		t.Fatalf("unknown workload %s", workload)
	}
	var buf bytes.Buffer
	if _, err := tracein.Encode(&buf, w.Build(n)); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestClusterExternalTraceSweep is the uploaded-trace acceptance test:
// a trace file POSTed to the coordinator becomes a sweepable workload —
// the coordinator pre-ships the converted recording to every worker, no
// node ever generates the stream live (there is no generator to fall
// back to for real traces), and the results land in the warehouse
// attributed to the external workload.
func TestClusterExternalTraceSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second cluster simulation")
	}
	const insts = 20_000
	workers := make([]string, 2)
	for i := range workers {
		ts, _ := newWorker(t)
		workers[i] = ts.URL
	}
	cfg := fastConfig()
	cfg.TraceCacheDir = t.TempDir()
	cfg.DataDir = t.TempDir()
	coord, coordTS := newCoordinator(t, cfg)
	for _, url := range workers {
		resp, body := postJSON(t, coordTS.URL+"/v1/cluster/workers", map[string]string{"url": url})
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("register: %d: %s", resp.StatusCode, body)
		}
	}

	data := encodeTrace(t, "gcc2k", insts)
	resp, err := http.Post(coordTS.URL+"/v1/workloads", "application/octet-stream", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	var up server.WorkloadUpload
	if err := json.NewDecoder(resp.Body).Decode(&up); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload: status %d, want 201", resp.StatusCode)
	}
	t.Cleanup(func() { trace.UnregisterExternal(up.Workload) })
	if up.Insts != insts || up.BackfilledBytes != 0 {
		t.Fatalf("upload report: %+v", up)
	}

	req := server.SweepRequest{
		Template: server.JobRequest{Insts: insts},
		Axes: server.SweepAxes{
			Workloads:  []string{up.Workload},
			Predictors: []string{"lvp", "sap"},
		},
	}
	sresp, body := postJSON(t, coordTS.URL+"/v1/sweeps", req)
	if sresp.StatusCode != http.StatusAccepted {
		t.Fatalf("sweep submit: %d: %s", sresp.StatusCode, body)
	}
	var st SweepStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	done := waitSweepDone(t, coord, st.ID)
	if done.Done != 2 || done.Failed != 0 {
		t.Fatalf("sweep finished with done=%d failed=%d", done.Done, done.Failed)
	}

	// The coordinator converted the upload once and shipped the
	// recording to both workers; nothing was ever generated live.
	coordText := metricsOf(t, coordTS.URL)
	wantMetricLine(t, coordText, "lvpc_trace_uploads_total 1", "coordinator")
	wantMetricLine(t, coordText, "lvpc_trace_artifacts_generated_total 0", "coordinator")
	wantMetricLine(t, coordText, "lvpc_trace_artifacts_shipped_total 2", "coordinator")
	for i, url := range workers {
		text := metricsOf(t, url)
		who := "worker " + string(rune('A'+i))
		wantMetricLine(t, text, "lvpd_trace_artifact_generated_total 0", who)
		wantMetricLine(t, text, "lvpd_trace_artifact_received_total 1", who)
	}

	// Both results were retained, attributed to the external workload
	// and selectable by provenance.
	recs := coord.st.Warehouse().List(store.Filter{Source: "external"})
	if len(recs) != 2 {
		t.Fatalf("warehouse external records = %d, want 2", len(recs))
	}
	for _, rec := range recs {
		if rec.Workload != up.Workload {
			t.Fatalf("warehouse workload = %q, want %q", rec.Workload, up.Workload)
		}
	}
	if n := len(coord.st.Warehouse().List(store.Filter{Source: "synthetic"})); n != 0 {
		t.Fatalf("warehouse synthetic records = %d, want 0", n)
	}
}
