package cluster

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	otrace "repro/internal/obs/trace"
	"repro/internal/server"
)

// newProbedWorker is newWorker with a fast progress cadence so the
// coordinator's dispatch polls can observe mid-run snapshots.
func newProbedWorker(t *testing.T) *httptest.Server {
	t.Helper()
	srv, err := server.New(server.Config{
		Workers:          2,
		QueueDepth:       64,
		CacheSize:        256,
		DefaultInsts:     20_000,
		ProgressInterval: 2048,
		Logger:           quietLogger(),
	})
	if err != nil {
		t.Fatalf("worker config: %v", err)
	}
	srv.Start()
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	})
	return ts
}

// TestClusterTraceEndToEnd drives a 3-worker sweep submitted with a
// traceparent header and asserts the whole execution lands in ONE
// trace: the sweep joins the submitter's trace ID, the coordinator's
// merged /debug/traces/{id} export contains coordinator spans (sweep,
// dispatch) AND worker spans (job, baseline, run), per-point progress
// is re-exported through the sweep status mid-run, readiness flips with
// fleet state, and dispatch latency lands in the per-worker histogram.
func TestClusterTraceEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second cluster simulation")
	}
	coord, cts := newCoordinator(t, fastConfig())

	// No workers yet: live but not ready.
	resp, err := http.Get(cts.URL + "/readyz")
	if err != nil {
		t.Fatalf("readyz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz with no workers = %d, want 503", resp.StatusCode)
	}

	for i := 0; i < 3; i++ {
		w := newProbedWorker(t)
		if _, _, err := coord.RegisterWorker(context.Background(), w.URL); err != nil {
			t.Fatalf("register worker %d: %v", i, err)
		}
	}
	resp, err = http.Get(cts.URL + "/readyz")
	if err != nil {
		t.Fatalf("readyz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz with active workers = %d, want 200", resp.StatusCode)
	}

	// Submit with an explicit traceparent, as an external tracing client
	// would.
	const parentTrace = "11112222333344445555666677778888"
	body, _ := json.Marshal(server.SweepRequest{
		Template: server.JobRequest{Workload: "gcc2k", Predictor: "composite", Insts: 1_500_000},
		Axes:     server.SweepAxes{Seeds: []uint64{1, 2, 3}},
	})
	req, _ := http.NewRequest(http.MethodPost, cts.URL+"/v1/sweeps", strings.NewReader(string(body)))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(otrace.TraceparentHeader, "00-"+parentTrace+"-aaaabbbbccccdddd-01")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST /v1/sweeps: %v", err)
	}
	var st SweepStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode sweep status: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d, want 202", resp.StatusCode)
	}
	if st.TraceID != parentTrace {
		t.Fatalf("sweep TraceID = %q, want the submitted traceparent %q", st.TraceID, parentTrace)
	}

	// Follow the sweep live; the running points should re-export their
	// workers' progress snapshots at least once.
	progressSeen := false
	deadline := time.Now().Add(90 * time.Second)
	for {
		var cur SweepStatus
		getJSON(t, cts.URL+"/v1/sweeps/"+st.ID, &cur)
		for _, pt := range cur.Points {
			if pt.Progress != nil && pt.Progress.Instructions > 0 {
				progressSeen = true
			}
		}
		if cur.State == "done" {
			if cur.Done != 3 || cur.Failed != 0 {
				t.Fatalf("sweep finished done=%d failed=%d, want 3/0", cur.Done, cur.Failed)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("sweep did not finish: %+v", cur)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !progressSeen {
		t.Fatalf("no point ever re-exported worker progress through the sweep status")
	}

	// The merged export must hold coordinator AND worker spans of the
	// one trace.
	resp, err = http.Get(cts.URL + "/debug/traces/" + parentTrace)
	if err != nil {
		t.Fatalf("GET merged trace: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("merged trace = %d: %s", resp.StatusCode, b)
	}
	var chrome struct {
		TraceEvents []otrace.Event `json:"traceEvents"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&chrome); err != nil {
		t.Fatalf("merged trace is not Chrome trace-event JSON: %v", err)
	}
	counts := map[string]int{}
	for _, ev := range chrome.TraceEvents {
		if ev.Ph == "X" {
			counts[ev.Name]++
		}
	}
	for _, want := range []string{"POST /v1/sweeps", "sweep", "dispatch", "job", "baseline", "run"} {
		if counts[want] == 0 {
			t.Errorf("merged trace missing %q span (have %v)", want, counts)
		}
	}
	if counts["dispatch"] < 3 || counts["job"] < 3 {
		t.Errorf("want >=3 dispatch and job spans for 3 points, have %v", counts)
	}

	// Dispatch wall time must land in the per-worker histogram.
	resp, err = http.Get(cts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET metrics: %v", err)
	}
	mb, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(mb), `lvpc_worker_dispatch_seconds_count{worker=`) {
		t.Errorf("metrics missing lvpc_worker_dispatch_seconds per-worker series")
	}
}
