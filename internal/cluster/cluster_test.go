package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/server"
)

func quietLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// newWorker starts a stock lvpd worker over httptest and returns its
// base URL plus the underlying server (so tests can kill the HTTP
// front-end while cleanly draining the job engine afterwards).
func newWorker(t *testing.T) (*httptest.Server, *server.Server) {
	t.Helper()
	srv, err := server.New(server.Config{
		Workers:      2,
		QueueDepth:   64,
		CacheSize:    256,
		DefaultInsts: 20_000,
		Logger:       quietLogger(),
	})
	if err != nil {
		t.Fatalf("worker config: %v", err)
	}
	srv.Start()
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	})
	return ts, srv
}

// fastConfig returns coordinator knobs scaled for tests: millisecond
// probe/poll periods and a sub-second quarantine cycle.
func fastConfig() Config {
	return Config{
		DefaultInsts:   20_000,
		WorkerSlots:    2,
		PointDeadline:  30 * time.Second,
		PointRetries:   8,
		BackoffBase:    5 * time.Millisecond,
		BackoffMax:     50 * time.Millisecond,
		PollInterval:   3 * time.Millisecond,
		HealthInterval: 15 * time.Millisecond,
		// Generous probe timeout: on a starved single-CPU runner a busy
		// worker can take hundreds of ms to answer /healthz, and a too-
		// tight bound quarantines healthy workers into a steal storm.
		// Dead-worker tests are unaffected (connection refused is
		// immediate regardless of timeout).
		HealthTimeout:      2 * time.Second,
		QuarantineAfter:    2,
		QuarantineCooldown: 200 * time.Millisecond,
		Logger:             quietLogger(),
	}
}

func newCoordinator(t *testing.T, cfg Config) (*Coordinator, *httptest.Server) {
	t.Helper()
	coord, err := New(cfg)
	if err != nil {
		t.Fatalf("coordinator config: %v", err)
	}
	coord.Start()
	ts := httptest.NewServer(coord.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = coord.Shutdown(ctx)
	})
	return coord, ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	return resp, out
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET %s: %d: %s", url, resp.StatusCode, b)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("GET %s: decode: %v", url, err)
	}
}

// metricValue sums the samples of one metric family in Prometheus text
// exposition, labeled series included.
func metricValue(t *testing.T, metrics, name string) float64 {
	t.Helper()
	var sum float64
	for _, line := range strings.Split(metrics, "\n") {
		if !strings.HasPrefix(line, name) {
			continue
		}
		rest := line[len(name):]
		if !strings.HasPrefix(rest, " ") && !strings.HasPrefix(rest, "{") {
			continue // a longer metric name sharing the prefix
		}
		fields := strings.Fields(line)
		v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err != nil {
			t.Fatalf("unparseable sample %q: %v", line, err)
		}
		sum += v
	}
	return sum
}

// stripNondeterminism zeroes the two RunResult fields that depend on
// wall-clock scheduling (simulated-instruction accounting shifts with
// baseline cache warm-up order; MIPS is a timing measurement). Every
// other field is a pure function of the canonical spec.
func stripNondeterminism(r server.RunResult) server.RunResult {
	r.SimInstructions = 0
	r.SimMIPS = 0
	return r
}

// sweep64 is the integration sweep: 4 workloads x 4 predictors x
// 2 table sizes x 2 seeds = 64 unique points.
func sweep64() server.SweepRequest {
	return server.SweepRequest{
		Template: server.JobRequest{Insts: 20_000},
		Axes: server.SweepAxes{
			Workloads:  []string{"gcc2k", "mcf", "sjeng", "povray"},
			Predictors: []string{"lvp", "sap", "cvp", "composite"},
			EntriesPer: []int{256, 512},
			Seeds:      []uint64{1, 2},
		},
	}
}

// TestClusterSweepFaultTolerance is the end-to-end acceptance test:
// a coordinator with three workers runs a 64-point sweep, one worker
// is killed mid-sweep, and the sweep must still complete with every
// point's result bit-identical to single-node execution, with the
// retries and the quarantine visible in the metrics.
func TestClusterSweepFaultTolerance(t *testing.T) {
	workers := make([]*httptest.Server, 3)
	for i := range workers {
		workers[i], _ = newWorker(t)
	}
	_, coordTS := newCoordinator(t, fastConfig())

	for _, w := range workers {
		resp, body := postJSON(t, coordTS.URL+"/v1/cluster/workers", map[string]string{"url": w.URL})
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("register: %d: %s", resp.StatusCode, body)
		}
	}

	resp, body := postJSON(t, coordTS.URL+"/v1/sweeps", sweep64())
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("sweep submit: %d: %s", resp.StatusCode, body)
	}
	var submitted SweepStatus
	if err := json.Unmarshal(body, &submitted); err != nil {
		t.Fatalf("sweep submit decode: %v", err)
	}
	if submitted.Total != 64 || submitted.Unique != 64 {
		t.Fatalf("expected 64 unique points, got total=%d unique=%d", submitted.Total, submitted.Unique)
	}

	sweepURL := coordTS.URL + "/v1/sweeps/" + submitted.ID

	// Let the sweep make real progress, then kill one worker hard:
	// open connections die mid-poll and the port stops answering.
	victim := workers[1]
	deadline := time.Now().Add(120 * time.Second)
	for {
		var st SweepStatus
		getJSON(t, sweepURL, &st)
		if st.Done >= 10 {
			break
		}
		if st.State == "done" {
			t.Fatalf("sweep finished before the fault was injected (done=%d failed=%d)", st.Done, st.Failed)
		}
		if time.Now().After(deadline) {
			t.Fatalf("sweep made no progress: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
	victim.CloseClientConnections()
	victim.Close()

	var final SweepStatus
	for {
		getJSON(t, sweepURL, &final)
		if final.State == "done" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("sweep did not finish after worker death: %+v", final)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if final.Done != 64 || final.Failed != 0 {
		t.Fatalf("sweep should survive a worker death: done=%d failed=%d", final.Done, final.Failed)
	}

	// The fault must be visible in the coordinator's metrics...
	mresp, err := http.Get(coordTS.URL + "/metrics")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	metrics := string(mbody)
	if q := metricValue(t, metrics, "lvpc_workers_quarantined_total"); q < 1 {
		t.Errorf("expected at least one quarantine, got %v", q)
	}
	retried := metricValue(t, metrics, "lvpc_points_retried_total")
	stolen := metricValue(t, metrics, "lvpc_points_stolen_total")
	if retried+stolen < 1 {
		t.Errorf("expected retries or steals after worker death, got retried=%v stolen=%v", retried, stolen)
	}

	// ...and in the worker registry.
	var wl struct {
		Workers []WorkerStatus `json:"workers"`
	}
	getJSON(t, coordTS.URL+"/v1/cluster/workers", &wl)
	var victimState string
	for _, w := range wl.Workers {
		if w.URL == victim.URL {
			victimState = w.State
		}
	}
	if victimState != WorkerQuarantined {
		t.Errorf("dead worker should be quarantined, got %q", victimState)
	}

	// Every point's result must be bit-identical to single-node
	// execution of the same sweep, keyed by spec hash.
	single := singleNodeResults(t, sweep64())
	for _, pt := range final.Points {
		if pt.State != PointDone || pt.Result == nil {
			t.Fatalf("point %s not done: state=%s err=%s", pt.SpecHash, pt.State, pt.Error)
		}
		want, ok := single[pt.SpecHash]
		if !ok {
			t.Fatalf("single-node run has no result for %s", pt.SpecHash)
		}
		got := stripNondeterminism(*pt.Result)
		if !reflect.DeepEqual(got, stripNondeterminism(want)) {
			t.Errorf("point %s diverged from single-node execution:\n cluster: %+v\n single:  %+v",
				pt.SpecHash, got, want)
		}
	}
}

// singleNodeResults runs the sweep on one fresh lvpd and returns every
// point's result keyed by spec hash.
func singleNodeResults(t *testing.T, req server.SweepRequest) map[string]server.RunResult {
	t.Helper()
	srv, err := server.New(server.Config{
		Workers:      4,
		QueueDepth:   128,
		CacheSize:    256,
		DefaultInsts: 20_000,
		Logger:       quietLogger(),
	})
	if err != nil {
		t.Fatalf("single-node config: %v", err)
	}
	srv.Start()
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	})

	resp, body := postJSON(t, ts.URL+"/v1/sweeps", req)
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		t.Fatalf("single-node sweep: %d: %s", resp.StatusCode, body)
	}
	var sr server.SweepResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatalf("single-node sweep decode: %v", err)
	}
	if sr.Rejected != 0 {
		t.Fatalf("single-node sweep shed %d points; raise the queue depth", sr.Rejected)
	}

	results := make(map[string]server.RunResult, len(sr.Jobs))
	deadline := time.Now().Add(120 * time.Second)
	for _, job := range sr.Jobs {
		for {
			var st server.JobStatus
			getJSON(t, ts.URL+"/v1/jobs/"+job.ID, &st)
			if st.State == server.StateDone {
				results[st.SpecHash] = *st.Result
				break
			}
			if st.State == server.StateFailed || st.State == server.StateCanceled {
				t.Fatalf("single-node job %s %s: %s", st.ID, st.State, st.Error)
			}
			if time.Now().After(deadline) {
				t.Fatalf("single-node job %s stuck in %s", st.ID, st.State)
			}
			time.Sleep(3 * time.Millisecond)
		}
	}
	return results
}

func TestSweepDedupAndCacheReuse(t *testing.T) {
	workerTS, _ := newWorker(t)
	coord, coordTS := newCoordinator(t, fastConfig())
	if _, _, err := coord.RegisterWorker(context.Background(), workerTS.URL); err != nil {
		t.Fatalf("register: %v", err)
	}

	req := server.SweepRequest{
		Template: server.JobRequest{Workload: "gcc2k", Predictor: "lvp", Insts: 20_000},
		Axes:     server.SweepAxes{Seeds: []uint64{7, 7}}, // same hash twice
	}
	st, err := coord.StartSweep(context.Background(), req)
	if err != nil {
		t.Fatalf("StartSweep: %v", err)
	}
	if st.Total != 2 || st.Unique != 1 || st.Deduped != 1 {
		t.Fatalf("duplicate points should collapse: %+v", st)
	}

	deadline := time.Now().Add(60 * time.Second)
	for {
		got, ok := coord.SweepStatusByID(st.ID, false)
		if !ok {
			t.Fatalf("sweep %s vanished", st.ID)
		}
		if got.State == "done" {
			if got.Done != 1 || got.Failed != 0 {
				t.Fatalf("sweep failed: %+v", got)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("sweep stuck: %+v", got)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Resubmitting the same sweep is answered from the shared cache
	// without dispatching: HTTP 200 (not 202), already done.
	resp, body := postJSON(t, coordTS.URL+"/v1/sweeps", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cached resubmit should return 200, got %d: %s", resp.StatusCode, body)
	}
	var again SweepStatus
	if err := json.Unmarshal(body, &again); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if again.State != "done" || again.Cached != 1 {
		t.Fatalf("resubmit should be fully cached: %+v", again)
	}
}

func TestRegisterWorkerValidationAndReactivation(t *testing.T) {
	workerTS, _ := newWorker(t)
	coord, coordTS := newCoordinator(t, fastConfig())
	ctx := context.Background()

	for _, bad := range []string{"", "not a url", "ftp://example.com", "/relative"} {
		if _, _, err := coord.RegisterWorker(ctx, bad); err == nil {
			t.Errorf("RegisterWorker(%q) should fail", bad)
		}
	}
	// A dialable-looking URL that answers nothing fails its probe.
	if _, _, err := coord.RegisterWorker(ctx, "http://127.0.0.1:1"); err == nil {
		t.Error("unreachable worker should fail its registration probe")
	}

	st, created, err := coord.RegisterWorker(ctx, workerTS.URL)
	if err != nil || !created || st.State != WorkerActive {
		t.Fatalf("first registration: st=%+v created=%v err=%v", st, created, err)
	}

	// Draining parks the worker; re-registering the same URL
	// reactivates the same entry instead of minting a new id.
	drained, ok := coord.DrainWorker(st.ID)
	if !ok || drained.State != WorkerDrained {
		t.Fatalf("drain: st=%+v ok=%v", drained, ok)
	}
	re, created, err := coord.RegisterWorker(ctx, workerTS.URL)
	if err != nil || created || re.ID != st.ID || re.State != WorkerActive {
		t.Fatalf("reactivation: st=%+v created=%v err=%v", re, created, err)
	}

	// The HTTP surface maps the same failures: bad body 400,
	// unreachable worker 502, unknown drain target 404.
	resp, _ := postJSON(t, coordTS.URL+"/v1/cluster/workers", map[string]string{"url": "ftp://nope"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad scheme should 400, got %d", resp.StatusCode)
	}
	resp, _ = postJSON(t, coordTS.URL+"/v1/cluster/workers", map[string]string{"url": "http://127.0.0.1:1"})
	if resp.StatusCode != http.StatusBadGateway {
		t.Errorf("unreachable worker should 502, got %d", resp.StatusCode)
	}
	dreq, _ := http.NewRequest(http.MethodDelete, coordTS.URL+"/v1/cluster/workers/w-999", nil)
	dresp, err := http.DefaultClient.Do(dreq)
	if err != nil {
		t.Fatalf("drain request: %v", err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown worker drain should 404, got %d", dresp.StatusCode)
	}
}

func TestBackoffDelayBounds(t *testing.T) {
	base, max := 100*time.Millisecond, 5*time.Second
	for fails := 1; fails <= 40; fails++ {
		for i := 0; i < 20; i++ {
			d := backoffDelay(base, max, fails)
			if d <= 0 {
				t.Fatalf("fails=%d: nonpositive delay %v", fails, d)
			}
			if d > time.Duration(1.5*float64(max)) {
				t.Fatalf("fails=%d: delay %v above jittered cap", fails, d)
			}
		}
	}
	// First retry jitters around the base: 50-150%.
	for i := 0; i < 50; i++ {
		d := backoffDelay(base, max, 1)
		if d < base/2 || d > 3*base/2 {
			t.Fatalf("first retry delay %v outside 50-150%% of base", d)
		}
	}
}

func TestClusterConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"zero is valid", Config{}, true},
		{"negative sweep cap", Config{MaxSweepPoints: -1}, false},
		{"sweep cap over ceiling", Config{MaxSweepPoints: 1 << 21}, false},
		{"negative retries", Config{PointRetries: -1}, false},
		{"negative quarantine threshold", Config{QuarantineAfter: -1}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if tc.ok && err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if !tc.ok && err == nil {
				t.Fatal("expected an error")
			}
		})
	}
	if _, err := New(Config{MaxSweepPoints: -5}); err == nil {
		t.Fatal("New should reject what Validate rejects")
	}
}

func TestSweepRejectedWhenOverCap(t *testing.T) {
	cfg := fastConfig()
	cfg.MaxSweepPoints = 4
	_, coordTS := newCoordinator(t, cfg)
	resp, body := postJSON(t, coordTS.URL+"/v1/sweeps", sweep64())
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversize sweep should 400, got %d: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "max 4") {
		t.Fatalf("error should name the cap: %s", body)
	}
}

func TestHealthzFleetRollup(t *testing.T) {
	workerTS, _ := newWorker(t)
	coord, coordTS := newCoordinator(t, fastConfig())
	if _, _, err := coord.RegisterWorker(context.Background(), workerTS.URL); err != nil {
		t.Fatalf("register: %v", err)
	}
	var h ClusterHealth
	getJSON(t, coordTS.URL+"/healthz", &h)
	if h.Status != "ok" || h.Workers != 1 || h.ActiveWorkers != 1 {
		t.Fatalf("unexpected healthz: %+v", h)
	}
}

func TestDrainStealsInflightPoints(t *testing.T) {
	// Two workers; drain one while a sweep is in flight. The sweep
	// must still complete, with any stolen points re-dispatched to the
	// survivor.
	w0, _ := newWorker(t)
	w1, _ := newWorker(t)
	coord, _ := newCoordinator(t, fastConfig())
	ctx := context.Background()
	if _, _, err := coord.RegisterWorker(ctx, w0.URL); err != nil {
		t.Fatalf("register w0: %v", err)
	}
	st1, _, err := coord.RegisterWorker(ctx, w1.URL)
	if err != nil {
		t.Fatalf("register w1: %v", err)
	}

	st, err := coord.StartSweep(context.Background(), server.SweepRequest{
		Template: server.JobRequest{Insts: 20_000},
		Axes: server.SweepAxes{
			Workloads:  []string{"gcc2k", "mcf", "sjeng", "povray"},
			Predictors: []string{"lvp", "cvp"},
			Seeds:      []uint64{11, 12},
		},
	})
	if err != nil {
		t.Fatalf("StartSweep: %v", err)
	}
	if _, ok := coord.DrainWorker(st1.ID); !ok {
		t.Fatalf("drain %s failed", st1.ID)
	}

	deadline := time.Now().Add(60 * time.Second)
	for {
		got, ok := coord.SweepStatusByID(st.ID, false)
		if !ok {
			t.Fatalf("sweep %s vanished", st.ID)
		}
		if got.State == "done" {
			if got.Failed != 0 || got.Done != got.Unique {
				t.Fatalf("sweep should survive a drain: %+v", got)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("sweep stuck after drain: %+v", got)
		}
		time.Sleep(5 * time.Millisecond)
	}

	for _, w := range coord.Workers() {
		if w.ID == st1.ID {
			if w.State != WorkerDrained {
				t.Fatalf("drained worker flipped to %q", w.State)
			}
			if w.Inflight != 0 {
				t.Fatalf("drained worker still holds %d in-flight points", w.Inflight)
			}
		}
	}
}
