package cluster

import (
	"context"
	"errors"
	"sync"

	"repro/internal/trace"
)

// shipTraces records each distinct (workload, insts) stream among the
// launched points once and uploads the resulting artifacts to every
// active worker (PUT /v1/traces/{hash}). It runs synchronously in
// StartSweep, before dispatch: artifacts are small (a gzip-compressed
// stream, a few bytes per instruction) and shipping them first means
// even the sweep's first point replays a recording.
//
// Everything here is best-effort. A worker that misses its upload —
// registered mid-sweep, transient network failure, artifact too large —
// simply generates the stream live when its first point arrives, which
// is exactly the pre-shipping behavior.
func (c *Coordinator) shipTraces(sw *sweep, launch []*point) {
	if len(launch) == 0 {
		return
	}
	type workloadSpec struct {
		name  string
		insts uint64
	}
	specs := make(map[workloadSpec]struct{})
	for _, pt := range launch {
		// Multi-context points replay one stream per hardware context;
		// single-context points reduce to the bare workload name.
		for _, stream := range pt.sim.ContextStreams() {
			specs[workloadSpec{stream, pt.sim.Workload.Insts}] = struct{}{}
		}
	}

	c.mu.Lock()
	var urls []string
	for _, w := range c.workers {
		if w.state == WorkerActive {
			urls = append(urls, w.url)
		}
	}
	c.mu.Unlock()
	if len(urls) == 0 {
		return
	}

	var wg sync.WaitGroup
	for ws := range specs {
		key, data, err := c.traces.Artifact(ws.name, ws.insts)
		if errors.Is(err, trace.ErrOversize) {
			continue // too big to record; every worker generates live
		}
		if err != nil {
			// Unknown workload or unreadable cache: dispatch validation
			// will surface the former; the latter only loses the reuse.
			c.log.Warn("trace artifact unavailable, workers will generate live",
				"sweep", sw.id, "workload", ws.name, "insts", ws.insts, "err", err)
			continue
		}
		for _, url := range urls {
			wg.Add(1)
			go func(url, key string, data []byte) {
				defer wg.Done()
				ctx, cancel := context.WithTimeout(c.lifeCtx, c.cfg.PointDeadline)
				defer cancel()
				if err := c.workerClient(url, nil).putTrace(ctx, key, data); err != nil {
					c.mTraceShipFailed.Inc()
					c.log.Warn("trace artifact ship failed, worker will generate live",
						"sweep", sw.id, "worker", url, "artifact", key, "err", err)
					return
				}
				c.mTraceShipped.Inc()
			}(url, key, data)
		}
	}
	wg.Wait()
}
