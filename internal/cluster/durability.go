package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"time"

	otrace "repro/internal/obs/trace"
	"repro/internal/server"
	"repro/internal/spec"
	"repro/internal/store"
	"repro/internal/tenant"
)

// errDurability marks a submit that failed because the WAL could not
// record it; the API maps it to 500 rather than blaming the request.
var errDurability = errors.New("durable store write failed")

// requestTenant resolves the tenant the auth middleware attached to
// ctx; calls that bypass Handler fall back to the default tenant.
func (c *Coordinator) requestTenant(ctx context.Context) *tenant.Tenant {
	if tn := tenant.FromContext(ctx); tn != nil {
		return tn
	}
	return c.tenants.Default()
}

// lookupResult answers a spec hash from the in-memory cache, falling
// back to the result warehouse (results survive coordinator restarts)
// and promoting warehouse hits back into the cache.
func (c *Coordinator) lookupResult(hash string) (server.RunResult, bool) {
	if res, ok := c.cache.Get(hash); ok {
		return res, true
	}
	if c.st == nil {
		return server.RunResult{}, false
	}
	rec, ok := c.st.Warehouse().Get(hash)
	if !ok {
		return server.RunResult{}, false
	}
	var res server.RunResult
	if err := json.Unmarshal(rec.Result, &res); err != nil {
		return server.RunResult{}, false
	}
	c.cache.Put(hash, res)
	return res, true
}

// persistSweepStarted records an accepted sweep and its unique points
// durably; points already answered from the cache at submit are
// settled in the same breath so a restart does not re-dispatch them.
// No-op without a data dir. The sweep is not yet published, so its
// fields are safe to read without the mutex.
func (c *Coordinator) persistSweepStarted(sw *sweep) error {
	if c.st == nil {
		return nil
	}
	pts := make([]store.SweepPoint, 0, len(sw.points))
	for _, pt := range sw.points {
		raw, err := json.Marshal(pt.sim)
		if err != nil {
			return err
		}
		pts = append(pts, store.SweepPoint{Hash: pt.hash, Spec: raw, Label: pt.label, Count: pt.count})
	}
	if err := c.st.AppendSweepStarted(sw.id, sw.tenant, sw.total, pts); err != nil {
		return err
	}
	for _, pt := range sw.points {
		if pt.state != PointDone {
			continue
		}
		if err := c.warehousePut(sw, pt); err != nil {
			c.log.Error("warehouse put failed", "sweep", sw.id, "spec", pt.hash, "err", err)
		}
		if err := c.st.AppendPointDone(sw.id, pt.hash); err != nil {
			return err
		}
	}
	return nil
}

// persistPoint records one point settlement (and, when it was the
// sweep's last, the sweep's completion). Persistence failures are
// logged, not fatal: the point already settled in memory, and the
// worst case after a crash is an idempotent re-dispatch.
func (c *Coordinator) persistPoint(sw *sweep, pt *point, res *server.RunResult, errMsg string, sweepDone bool) {
	if c.st == nil {
		return
	}
	var err error
	if res != nil {
		if werr := c.warehousePut(sw, pt); werr != nil {
			c.log.Error("warehouse put failed", "sweep", sw.id, "spec", pt.hash, "err", werr)
		}
		err = c.st.AppendPointDone(sw.id, pt.hash)
	} else {
		err = c.st.AppendPointFailed(sw.id, pt.hash, errMsg)
	}
	if err != nil {
		c.log.Error("wal append failed", "sweep", sw.id, "spec", pt.hash, "err", err)
		return
	}
	if sweepDone {
		c.persistSweepDone(sw)
	}
}

// persistSweepDone settles the sweep's WAL entry so a restart stops
// replaying it.
func (c *Coordinator) persistSweepDone(sw *sweep) {
	if c.st == nil {
		return
	}
	if err := c.st.AppendSweepDone(sw.id); err != nil {
		c.log.Error("wal append failed", "sweep", sw.id, "err", err)
	}
}

// warehousePut retains a settled point's result beyond the LRU cache,
// attributed to the sweep's tenant and linked to its trace.
func (c *Coordinator) warehousePut(sw *sweep, pt *point) error {
	if pt.result == nil {
		return nil
	}
	raw, err := json.Marshal(pt.result)
	if err != nil {
		return err
	}
	workload := pt.result.Workload // the mix label ("a+b") for SMT points
	if workload == "" {
		workload = pt.sim.Workload.Name
	}
	return c.st.Warehouse().Put(store.RunRecord{
		SpecHash:  pt.hash,
		Tenant:    sw.tenant,
		Workload:  workload,
		Predictor: pt.label,
		TraceID:   sw.span.TraceID,
		Time:      time.Now().UTC(),
		Result:    raw,
		Contexts:  pt.result.Contexts,
	})
}

// replaySweeps folds the WAL's pending sweeps back into live state at
// Open. Points the log already settled keep their outcome (done points
// recover their result from the warehouse); points it still owes are
// stashed on c.resume for Start to dispatch — or settled straight from
// the warehouse when an equivalent spec finished in the meantime.
// Points whose recorded spec no longer parses or validates are settled
// as failed rather than wedging the log forever. Runs before the
// coordinator serves requests, so no locking.
func (c *Coordinator) replaySweeps() error {
	st := c.st.State()
	if st.MaxSweepID > c.nextSweep {
		c.nextSweep = st.MaxSweepID
	}
	for _, ps := range st.PendingSweeps {
		sw := &sweep{
			id:      ps.ID,
			tenant:  ps.Tenant,
			created: ps.Started,
			total:   ps.Total,
		}
		if sw.tenant == "" {
			sw.tenant = c.tenants.Default().Name
		}
		// The old trace died with the old process; resumed dispatches
		// share a fresh root span instead.
		_, sw.span = c.tracer.StartSpan(context.Background(), "sweep",
			otrace.String("sweep_id", sw.id),
			otrace.String("tenant", sw.tenant),
			otrace.String("resumed", "true"))

		owed := 0
		for _, p := range ps.Points {
			count := p.Count
			if count <= 0 {
				count = 1
			}
			pt := &point{hash: p.Hash, label: p.Label, count: count, state: PointPending}
			var sim spec.Sim
			err := json.Unmarshal(p.Spec, &sim)
			if err == nil {
				err = sim.Validate()
			}
			pt.sim = sim
			outcome, settled := ps.Done[p.Hash]
			switch {
			case settled && outcome == "":
				pt.state = PointDone
				pt.finished = time.Now()
				if res, ok := c.lookupResult(pt.hash); ok {
					pt.result = &res
				}
			case settled:
				pt.state = PointFailed
				pt.errMsg = outcome
				pt.finished = time.Now()
			case err != nil:
				pt.state = PointFailed
				pt.errMsg = "replay: " + err.Error()
				pt.finished = time.Now()
				c.log.Warn("replay: settling unusable sweep point as failed",
					"sweep", sw.id, "spec", pt.hash, "err", err)
				if aerr := c.st.AppendPointFailed(sw.id, pt.hash, pt.errMsg); aerr != nil {
					return aerr
				}
			default:
				if res, ok := c.lookupResult(pt.hash); ok {
					pt.state = PointDone
					pt.cacheHit = true
					pt.result = &res
					pt.finished = time.Now()
					if aerr := c.st.AppendPointDone(sw.id, pt.hash); aerr != nil {
						return aerr
					}
				} else {
					owed++
					c.resume = append(c.resume, resumedPoint{sw: sw, pt: pt})
				}
			}
			sw.points = append(sw.points, pt)
		}
		c.sweeps[sw.id] = sw
		c.order = append(c.order, sw.id)
		if sw.terminalLocked() {
			sw.span.Finish()
			c.persistSweepDone(sw)
		}
		c.log.Info("replay: recovered sweep", "sweep", sw.id, "tenant", sw.tenant,
			"unique", len(sw.points), "owed", owed)
	}
	return nil
}
