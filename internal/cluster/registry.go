package cluster

import (
	"context"
	"fmt"
	"net/url"
	"sort"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/server"
)

// Worker states reported by WorkerStatus.State.
const (
	// WorkerActive: registered, passing health probes, dispatchable.
	WorkerActive = "active"

	// WorkerQuarantined: the circuit is open after consecutive
	// failures; not dispatchable until a half-open probe succeeds.
	WorkerQuarantined = "quarantined"

	// WorkerDrained: an operator removed the worker from service; its
	// in-flight points were re-dispatched. Re-registering the same URL
	// reactivates it.
	WorkerDrained = "drained"
)

// worker is one registered lvpd process. All fields are guarded by the
// coordinator's mutex; the obs instruments are internally atomic.
type worker struct {
	id  string
	url string

	state         string
	inflight      int
	consecFails   int
	cooldownUntil time.Time
	registered    time.Time
	lastSeen      time.Time
	health        server.Health

	// attempts tracks in-flight dispatches so quarantine and drain can
	// cancel (steal) them.
	attempts map[*attempt]struct{}

	mDispatched  *obs.Counter
	mRetried     *obs.Counter
	mStolen      *obs.Counter
	mQuarantine  *obs.Counter
	mInflight    *obs.Gauge
	mDispatchDur *obs.Histogram
}

// attempt is one dispatch of one point to one worker. stolen is set
// (under the coordinator mutex) before a coordinator-initiated cancel,
// so the dispatch loop can tell a stolen attempt from an ordinary
// failure.
type attempt struct {
	w      *worker
	ctx    context.Context
	cancel context.CancelFunc
	stolen bool
}

// WorkerStatus is the JSON view of a registered worker.
type WorkerStatus struct {
	ID                  string    `json:"id"`
	URL                 string    `json:"url"`
	State               string    `json:"state"`
	Inflight            int       `json:"inflight"`
	ConsecutiveFailures int       `json:"consecutive_failures,omitempty"`
	QueueDepth          int       `json:"queue_depth"`
	SimMIPS             float64   `json:"sim_mips,omitempty"`
	Registered          time.Time `json:"registered"`
	LastSeen            time.Time `json:"last_seen,omitempty"`
}

func (w *worker) status() WorkerStatus {
	return WorkerStatus{
		ID:                  w.id,
		URL:                 w.url,
		State:               w.state,
		Inflight:            w.inflight,
		ConsecutiveFailures: w.consecFails,
		QueueDepth:          w.health.QueueDepth,
		SimMIPS:             w.health.SimMIPS,
		Registered:          w.registered,
		LastSeen:            w.lastSeen,
	}
}

// RegisterWorker adds (or reactivates) the lvpd at rawURL after a
// synchronous health probe. It returns the worker's status and whether
// the registration created a new entry.
func (c *Coordinator) RegisterWorker(ctx context.Context, rawURL string) (WorkerStatus, bool, error) {
	u, err := url.Parse(strings.TrimSuffix(rawURL, "/"))
	if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		return WorkerStatus{}, false, fmt.Errorf("worker url must be absolute http(s), got %q", rawURL)
	}
	base := u.String()

	// Probe before admitting: a worker that cannot answer /healthz now
	// would only be quarantined moments later.
	probeCtx, cancel := context.WithTimeout(ctx, c.cfg.HealthTimeout)
	defer cancel()
	h, err := c.workerClient(base, nil).health(probeCtx)
	if err != nil {
		return WorkerStatus{}, false, fmt.Errorf("worker %s failed its registration health probe: %w", base, err)
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if w, ok := c.byURL[base]; ok {
		w.state = WorkerActive
		w.consecFails = 0
		w.health = h
		w.lastSeen = time.Now()
		return w.status(), false, nil
	}
	c.nextWorker++
	id := fmt.Sprintf("w-%03d", c.nextWorker)
	w := &worker{
		id:         id,
		url:        base,
		state:      WorkerActive,
		registered: time.Now(),
		lastSeen:   time.Now(),
		health:     h,
		attempts:   make(map[*attempt]struct{}),

		mDispatched:  c.reg.Counter("lvpc_worker_dispatched_total", "Dispatch attempts per worker.", "worker", id),
		mRetried:     c.reg.Counter("lvpc_worker_retried_total", "Retried dispatches per worker.", "worker", id),
		mStolen:      c.reg.Counter("lvpc_worker_stolen_total", "Points stolen off this worker.", "worker", id),
		mQuarantine:  c.reg.Counter("lvpc_worker_quarantined_total", "Circuit-open transitions per worker.", "worker", id),
		mInflight:    c.reg.Gauge("lvpc_worker_inflight", "In-flight dispatches per worker.", "worker", id),
		mDispatchDur: c.reg.Histogram("lvpc_worker_dispatch_seconds", "Wall time of one dispatch attempt, submit through final poll, per worker.", nil, "worker", id),
	}
	c.reg.GaugeFunc("lvpc_worker_sim_mips",
		"Worker-reported simulation throughput (millions of instructions per second).",
		func() float64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			return w.health.SimMIPS
		}, "worker", id)
	c.workers[id] = w
	c.byURL[base] = w
	c.log.Info("worker registered", "worker", id, "url", base)
	return w.status(), true, nil
}

// DrainWorker removes a worker from scheduling and steals its in-flight
// points for re-dispatch elsewhere. The worker stays listed as drained;
// re-registering its URL reactivates it.
func (c *Coordinator) DrainWorker(id string) (WorkerStatus, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	w, ok := c.workers[id]
	if !ok {
		return WorkerStatus{}, false
	}
	if w.state != WorkerDrained {
		w.state = WorkerDrained
		c.stealAttemptsLocked(w)
		c.log.Info("worker drained", "worker", id, "url", w.url)
	}
	return w.status(), true
}

// Workers lists registered workers, sorted by id.
func (c *Coordinator) Workers() []WorkerStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]WorkerStatus, 0, len(c.workers))
	for _, w := range c.workers {
		out = append(out, w.status())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// stealAttemptsLocked cancels every in-flight attempt on w so the
// dispatch loops re-dispatch those points elsewhere. Caller holds c.mu.
func (c *Coordinator) stealAttemptsLocked(w *worker) {
	for att := range w.attempts {
		att.stolen = true
		att.cancel()
	}
}

// noteWorkerFailureLocked advances the circuit breaker after a
// transport-level failure (probe or dispatch). Caller holds c.mu.
func (c *Coordinator) noteWorkerFailureLocked(w *worker, err error) {
	w.consecFails++
	if w.state == WorkerActive && w.consecFails >= c.cfg.QuarantineAfter {
		c.quarantineLocked(w, err)
	}
}

// quarantineLocked opens w's circuit: no dispatches until a half-open
// probe succeeds, and every in-flight attempt is stolen. Caller holds
// c.mu.
func (c *Coordinator) quarantineLocked(w *worker, cause error) {
	w.state = WorkerQuarantined
	w.cooldownUntil = time.Now().Add(c.cfg.QuarantineCooldown)
	w.mQuarantine.Inc()
	c.mQuarantined.Inc()
	c.stealAttemptsLocked(w)
	c.log.Warn("worker quarantined", "worker", w.id, "url", w.url,
		"consecutive_failures", w.consecFails, "cause", cause)
}

// noteWorkerSuccess resets the circuit after any successful exchange.
func (c *Coordinator) noteWorkerSuccess(w *worker, h *server.Health) {
	c.mu.Lock()
	defer c.mu.Unlock()
	w.consecFails = 0
	w.lastSeen = time.Now()
	if h != nil {
		w.health = *h
	}
	if w.state == WorkerQuarantined {
		w.state = WorkerActive
		c.log.Info("worker reactivated", "worker", w.id, "url", w.url)
	}
}

// noteWorkerFailure is noteWorkerFailureLocked for callers not holding
// the coordinator mutex.
func (c *Coordinator) noteWorkerFailure(w *worker, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if w.state == WorkerQuarantined {
		// Half-open probe (or a straggling dispatch) failed: keep the
		// circuit open for another cool-down.
		w.cooldownUntil = time.Now().Add(c.cfg.QuarantineCooldown)
		w.consecFails++
		return
	}
	if w.state == WorkerDrained {
		return
	}
	c.noteWorkerFailureLocked(w, err)
}

// prober periodically health-checks active workers and half-open-probes
// quarantined ones whose cool-down elapsed.
func (c *Coordinator) prober() {
	defer c.probeWG.Done()
	t := time.NewTicker(c.cfg.HealthInterval)
	defer t.Stop()
	for {
		select {
		case <-c.lifeCtx.Done():
			return
		case <-t.C:
		}
		c.probeAll()
	}
}

func (c *Coordinator) probeAll() {
	c.mu.Lock()
	targets := make([]*worker, 0, len(c.workers))
	now := time.Now()
	for _, w := range c.workers {
		switch w.state {
		case WorkerActive:
			targets = append(targets, w)
		case WorkerQuarantined:
			if now.After(w.cooldownUntil) {
				targets = append(targets, w)
			}
		}
	}
	c.mu.Unlock()

	for _, w := range targets {
		ctx, cancel := context.WithTimeout(c.lifeCtx, c.cfg.HealthTimeout)
		h, err := c.workerClient(w.url, nil).health(ctx)
		cancel()
		if err != nil {
			c.noteWorkerFailure(w, err)
			continue
		}
		c.noteWorkerSuccess(w, &h)
	}
}
