// Package cluster is the distributed sweep execution layer: a
// coordinator that fans the points of one design-space sweep out across
// a fleet of stock lvpd workers.
//
// The coordinator is deliberately thin. A worker is an unmodified lvpd
// daemon — the coordinator drives it entirely through the public
// /v1/jobs API and probes /healthz — so scaling out is "start more
// lvpd processes and register them". What makes the fan-out safe is the
// spec layer: every sweep point canonicalizes to a spec.Sim whose
// canonical hash is an idempotency key shared by every node. Dispatching
// a point twice (a retry after a timeout, a re-dispatch after a worker
// dies) can only ever produce the same cache entry, so the coordinator
// retries aggressively and dedups freely.
//
// Fault tolerance is a small state machine per dispatch attempt:
//
//   - Every attempt gets a deadline; failures retry on the (then)
//     least-loaded worker with exponential backoff plus jitter.
//   - Transport errors and 5xx responses count against the worker; after
//     QuarantineAfter consecutive failures the worker is quarantined
//     (circuit open) and its in-flight attempts are cancelled and
//     re-dispatched elsewhere ("stolen").
//   - A quarantined worker is re-probed after a cool-down (circuit
//     half-open) and reactivated on the first healthy response.
//   - Draining a worker (DELETE /v1/cluster/workers/{id}) steals its
//     in-flight points the same way without blaming it.
//
// Everything observable is exported through internal/obs: global and
// per-worker dispatched/retried/stolen/quarantined counters, in-flight
// gauges, and each worker's reported simulation throughput.
package cluster

import (
	"context"
	"fmt"
	"log/slog"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	otrace "repro/internal/obs/trace"
	"repro/internal/obs/tsdb"
	"repro/internal/server"
	"repro/internal/spec"
	"repro/internal/store"
	"repro/internal/tenant"
	"repro/internal/trace"
)

// Config tunes the coordinator. Zero values select the defaults noted
// per field.
type Config struct {
	// DefaultInsts is the instruction budget filled into sweep points
	// that leave it unset (default 200k). It MUST match the workers'
	// -insts default for spec hashes — and therefore result caches — to
	// agree across the fleet.
	DefaultInsts uint64

	// MaxInsts clamps per-point budgets (default 5M; -1 = unlimited),
	// mirroring the workers' -max-insts.
	MaxInsts int64

	// Seed fills Run.Seed when a sweep leaves it at 0 (default the
	// workers' default seed).
	Seed uint64

	// MaxSweepPoints caps one sweep's expansion (default 4096 — a
	// cluster exists to run sweeps too big for one box).
	MaxSweepPoints int

	// CacheSize is the coordinator's shared result cache capacity
	// (default 4096 entries). Points whose spec hash is already cached
	// are answered without dispatching.
	CacheSize int

	// RetainedSweeps bounds how many finished sweeps stay queryable
	// (default 64).
	RetainedSweeps int

	// WorkerSlots is the maximum concurrent dispatches per worker
	// (default 4). Keep it at or below a worker's queue depth so
	// dispatches do not bounce off worker backpressure.
	WorkerSlots int

	// PointDeadline bounds one dispatch attempt, submit through final
	// poll (default 5 minutes).
	PointDeadline time.Duration

	// PointRetries is how many failed attempts a point survives beyond
	// the first before the point is marked failed (default 5).
	// Re-dispatches stolen from a dying or draining worker do not
	// consume this budget; they have their own cap derived from it.
	PointRetries int

	// BackoffBase and BackoffMax shape the exponential backoff between
	// retries (defaults 100ms and 5s); each delay is jittered to
	// 50–150% to avoid thundering re-dispatch.
	BackoffBase time.Duration
	BackoffMax  time.Duration

	// PollInterval is how often a dispatched job is polled on its
	// worker (default 100ms).
	PollInterval time.Duration

	// HealthInterval is the worker health-probe period (default 2s);
	// HealthTimeout bounds each probe (default 1s).
	HealthInterval time.Duration
	HealthTimeout  time.Duration

	// QuarantineAfter is the consecutive-failure threshold that opens a
	// worker's circuit (default 3); QuarantineCooldown is how long the
	// circuit stays open before a half-open probe (default 30s).
	QuarantineAfter    int
	QuarantineCooldown time.Duration

	// DataDir enables sweep durability: every accepted sweep and point
	// settlement is WAL-logged under this directory, finished results
	// land in the result warehouse, and a restarted coordinator resumes
	// whatever points the log still owes. Empty disables persistence
	// (the pre-durability behavior).
	DataDir string

	// WorkerAPIKey is presented to workers as Authorization: Bearer on
	// every dispatch. Required when the fleet runs with -tenants-file;
	// list it there as a Proxy-flagged tenant so dispatched points keep
	// their submitting tenant's attribution (X-Lvpd-Tenant).
	WorkerAPIKey string

	// TraceCacheDir backs the coordinator's recorded-trace artifact
	// store with a content-addressed directory shared across restarts.
	// Empty keeps the store memory-only. Either way, the coordinator
	// records each sweep's workload streams once and pre-ships the
	// artifacts to its workers, so a sweep's fan-out replays shared
	// recordings instead of generating the stream once per worker.
	TraceCacheDir string

	// Tenants authenticates the coordinator's own API clients and
	// attributes sweeps. nil runs single-tenant (no key required).
	Tenants *tenant.Registry

	// ObsScrapeInterval is the federated collection period: every tick
	// the coordinator samples its own registry and every non-drained
	// worker's /metrics into the embedded time-series store (default
	// 5s). ObsRetention bounds how far back range queries reach
	// (default 15m).
	ObsScrapeInterval time.Duration
	ObsRetention      time.Duration

	// Alerts enables SLO alerting over the federated store. nil
	// disables evaluation; /v1/alerts then reports enabled=false.
	Alerts *tsdb.RuleSet

	// Logger receives structured coordinator logs (default
	// slog.Default).
	Logger *slog.Logger

	// ServiceName labels the coordinator's spans in trace exports
	// (default "lvpd-coordinator"), distinguishing its track from the
	// workers' in a merged Perfetto view.
	ServiceName string
}

// Validate rejects configurations the coordinator cannot honor.
func (c Config) Validate() error {
	if c.MaxSweepPoints < 0 {
		return fmt.Errorf("cluster: MaxSweepPoints must be >= 0 (0 = default), got %d", c.MaxSweepPoints)
	}
	if c.MaxSweepPoints > 1<<20 {
		return fmt.Errorf("cluster: MaxSweepPoints %d exceeds the %d ceiling", c.MaxSweepPoints, 1<<20)
	}
	if c.PointRetries < 0 {
		return fmt.Errorf("cluster: PointRetries must be >= 0, got %d", c.PointRetries)
	}
	if c.QuarantineAfter < 0 {
		return fmt.Errorf("cluster: QuarantineAfter must be >= 0 (0 = default), got %d", c.QuarantineAfter)
	}
	return nil
}

func (c *Config) applyDefaults() {
	if c.DefaultInsts == 0 {
		c.DefaultInsts = 200_000
	}
	if c.MaxInsts == 0 {
		c.MaxInsts = 5_000_000
	}
	if c.Seed == 0 {
		c.Seed = server.DefaultSeed
	}
	if c.MaxSweepPoints == 0 {
		c.MaxSweepPoints = 4096
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 4096
	}
	if c.RetainedSweeps <= 0 {
		c.RetainedSweeps = 64
	}
	if c.WorkerSlots <= 0 {
		c.WorkerSlots = 4
	}
	if c.PointDeadline <= 0 {
		c.PointDeadline = 5 * time.Minute
	}
	if c.PointRetries == 0 {
		c.PointRetries = 5
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 100 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 5 * time.Second
	}
	if c.PollInterval <= 0 {
		c.PollInterval = 100 * time.Millisecond
	}
	if c.HealthInterval <= 0 {
		c.HealthInterval = 2 * time.Second
	}
	if c.HealthTimeout <= 0 {
		c.HealthTimeout = time.Second
	}
	if c.QuarantineAfter == 0 {
		c.QuarantineAfter = 3
	}
	if c.QuarantineCooldown <= 0 {
		c.QuarantineCooldown = 30 * time.Second
	}
	if c.ObsScrapeInterval <= 0 {
		c.ObsScrapeInterval = 5 * time.Second
	}
	if c.ObsRetention <= 0 {
		c.ObsRetention = 15 * time.Minute
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	if c.ServiceName == "" {
		c.ServiceName = "lvpd-coordinator"
	}
}

// Coordinator owns the worker registry, the sweep state, and the
// dispatch machinery. Create with New, start the health prober with
// Start, mount Handler on an http.Server, and stop with Shutdown.
type Coordinator struct {
	cfg     Config
	log     *slog.Logger
	reg     *obs.Registry
	tracer  *otrace.Recorder
	mux     *http.ServeMux
	hc      *http.Client
	tenants *tenant.Registry

	// st is the durable sweep store (nil without DataDir). resume holds
	// the points the WAL still owed at Open; Start dispatches them.
	st     *store.Store
	resume []resumedPoint

	// lifeCtx parents every dispatch attempt and the health prober;
	// lifeStop is the shutdown hard stop.
	lifeCtx  context.Context
	lifeStop context.CancelFunc

	runners   sync.WaitGroup // per-point dispatch goroutines
	probeWG   sync.WaitGroup // the health prober
	obsWG     sync.WaitGroup // collector and alerter loops
	accepting atomic.Bool

	// Embedded observability plane: the federated time-series store,
	// the collector feeding it (self + every worker's /metrics), and
	// the optional SLO alerter over it.
	tsdb      *tsdb.DB
	collector *tsdb.Collector
	alerter   *tsdb.Alerter

	mu         sync.Mutex
	workers    map[string]*worker // by id
	byURL      map[string]*worker
	sweeps     map[string]*sweep
	order      []string // finished-sweep retention FIFO
	nextWorker uint64
	nextSweep  uint64

	// cache is the shared result cache keyed by canonical spec hash.
	// Retries and duplicate points across sweeps resolve here first.
	cache *server.ResultCache

	// traces records each sweep's workload streams once; StartSweep
	// ships the artifacts to active workers before dispatching.
	traces *trace.ArtifactStore

	mDispatched  *obs.Counter
	mRetried     *obs.Counter
	mStolen      *obs.Counter
	mQuarantined *obs.Counter
	mInflight    *obs.Gauge
	mPtsDone     *obs.Counter
	mPtsFailed   *obs.Counter
	mPtsCached   *obs.Counter
	mPtsDeduped  *obs.Counter
	mAuthFailed  *obs.Counter

	mTraceShipped    *obs.Counter
	mTraceShipFailed *obs.Counter
	mUploads         *obs.Counter
	mWALFsync        *obs.Histogram

	// Per-tenant fan-out attribution, keyed by tenant name.
	mTenantSweeps map[string]*obs.Counter
	mTenantPoints map[string]*obs.Counter
}

// resumedPoint is one owed point recovered from the WAL, waiting for
// Start to dispatch it.
type resumedPoint struct {
	sw *sweep
	pt *point
}

// New builds a coordinator from cfg, rejecting invalid configurations.
// Call Start before dispatching sweeps.
func New(cfg Config) (*Coordinator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg.applyDefaults()
	tenants := cfg.Tenants
	if tenants == nil {
		tenants = tenant.Single()
	}
	reg := obs.NewRegistry()
	c := &Coordinator{
		cfg:     cfg,
		log:     cfg.Logger,
		reg:     reg,
		tracer:  otrace.NewRecorder(cfg.ServiceName, 0),
		mux:     http.NewServeMux(),
		hc:      &http.Client{},
		tenants: tenants,
		workers: make(map[string]*worker),
		byURL:   make(map[string]*worker),
		sweeps:  make(map[string]*sweep),
		cache:   server.NewResultCache(cfg.CacheSize),

		mDispatched:  reg.Counter("lvpc_points_dispatched_total", "Dispatch attempts sent to workers."),
		mRetried:     reg.Counter("lvpc_points_retried_total", "Dispatch attempts retried after a failure."),
		mStolen:      reg.Counter("lvpc_points_stolen_total", "In-flight points re-dispatched off a quarantined, drained, or dead worker."),
		mQuarantined: reg.Counter("lvpc_workers_quarantined_total", "Worker circuit-open transitions."),
		mInflight:    reg.Gauge("lvpc_points_inflight", "Points currently dispatched to workers."),
		mPtsDone:     reg.Counter("lvpc_points_total", "Sweep points by outcome.", "state", "done"),
		mPtsFailed:   reg.Counter("lvpc_points_total", "Sweep points by outcome.", "state", "failed"),
		mPtsCached:   reg.Counter("lvpc_points_total", "Sweep points by outcome.", "state", "cached"),
		mPtsDeduped:  reg.Counter("lvpc_points_total", "Sweep points by outcome.", "state", "deduped"),
		mAuthFailed:  reg.Counter("lvpc_auth_failures_total", "Requests rejected for a missing or unknown API key."),
		mTraceShipped: reg.Counter("lvpc_trace_artifacts_shipped_total",
			"Trace artifacts successfully pre-shipped to workers (one per artifact per worker)."),
		mTraceShipFailed: reg.Counter("lvpc_trace_artifact_ship_failures_total",
			"Trace artifact uploads that failed (the worker falls back to live generation)."),
		mUploads: reg.Counter("lvpc_trace_uploads_total",
			"External trace files accepted via POST /v1/workloads."),
		mWALFsync: reg.Histogram("lvpc_wal_fsync_seconds",
			"Group-commit fsync latency on the sweep WAL append path.", fsyncBuckets),

		mTenantSweeps: make(map[string]*obs.Counter),
		mTenantPoints: make(map[string]*obs.Counter),
	}
	for _, tn := range tenants.Tenants() {
		name := tn.Name
		c.mTenantSweeps[name] = reg.Counter("lvpc_tenant_sweeps_total", "Sweeps accepted by tenant.", "tenant", name)
		c.mTenantPoints[name] = reg.Counter("lvpc_tenant_points_done_total", "Sweep points finished by tenant.", "tenant", name)
	}
	traces, err := trace.NewArtifactStore(cfg.TraceCacheDir, 0)
	if err != nil {
		return nil, err
	}
	traces.SetLogger(c.log)
	c.traces = traces
	if n, err := traces.RehydrateExternal(); err != nil {
		c.log.Warn("rehydrating external traces", "err", err)
	} else if n > 0 {
		c.log.Info("rehydrated external trace workloads from disk", "count", n)
	}
	// Rendered as a counter at scrape time: artifact generations only
	// ever accrue, and counter typing lets rate() work over them.
	reg.CounterFunc("lvpc_trace_artifacts_generated_total",
		"Workload streams the coordinator recorded for pre-shipping.",
		func() float64 { return float64(c.traces.Stats().Generated) })
	c.lifeCtx, c.lifeStop = context.WithCancel(context.Background())
	c.initObs()
	c.routes()
	if cfg.DataDir != "" {
		st, err := store.Open(cfg.DataDir, store.Options{
			WAL: store.WALOptions{FsyncObserver: c.mWALFsync.Observe},
		})
		if err != nil {
			return nil, err
		}
		c.st = st
		if err := c.replaySweeps(); err != nil {
			st.Close()
			return nil, err
		}
	}
	return c, nil
}

// Registry exposes the metrics registry (for tests and embedding).
func (c *Coordinator) Registry() *obs.Registry { return c.reg }

// Tracer exposes the coordinator's span recorder (for tests).
func (c *Coordinator) Tracer() *otrace.Recorder { return c.tracer }

// defaults returns the spec defaults sweep points normalize under.
// They must match the workers' defaults for hashes to agree fleet-wide.
func (c *Coordinator) defaults() spec.Defaults {
	var maxInsts uint64
	if c.cfg.MaxInsts > 0 {
		maxInsts = uint64(c.cfg.MaxInsts)
	}
	return spec.Defaults{Insts: c.cfg.DefaultInsts, MaxInsts: maxInsts, Seed: c.cfg.Seed}
}

// Start launches the health prober, dispatches whatever points the WAL
// still owed at Open, and opens the coordinator for sweeps.
func (c *Coordinator) Start() {
	c.accepting.Store(true)
	if n := len(c.resume); n > 0 {
		c.runners.Add(n)
		for _, rp := range c.resume {
			go c.runPoint(rp.sw, rp.pt)
		}
		c.log.Info("resuming owed sweep points from the WAL", "points", n)
		c.resume = nil
	}
	c.probeWG.Add(1)
	go c.prober()
	c.startObs()
}

// Shutdown stops accepting sweeps and gives in-flight points until
// ctx's deadline to finish before cancelling them. Blocks until every
// dispatch goroutine and the prober exit.
func (c *Coordinator) Shutdown(ctx context.Context) error {
	c.accepting.Store(false)
	done := make(chan struct{})
	go func() {
		c.runners.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
		c.log.Warn("shutdown deadline reached; cancelling in-flight points")
	}
	c.lifeStop()
	<-done
	c.probeWG.Wait()
	// The collector must stop before the store closes: a federated
	// scrape in flight may still be observing WAL fsyncs.
	c.obsWG.Wait()
	if c.st != nil {
		if cerr := c.st.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return err
}
