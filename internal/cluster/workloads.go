package cluster

import (
	"io"
	"net/http"

	"repro/internal/server"
	"repro/internal/tenant"
	"repro/internal/trace"
	"repro/internal/tracein"
)

// maxUploadBytes bounds POST /v1/workloads bodies on the coordinator —
// the same 64 MiB ceiling lvpd applies to trace artifacts, far above
// any recordable stream.
const maxUploadBytes = 64 << 20

// handleUploadWorkload implements POST /v1/workloads on the
// coordinator: the same conversion flow as lvpd's endpoint, landing in
// the coordinator's artifact store so StartSweep pre-ships the
// recording to every worker exactly like a recorded synthetic stream.
// Specs in subsequent sweeps reference the returned "ext:<hash>" name.
func (c *Coordinator) handleUploadWorkload(w http.ResponseWriter, r *http.Request) {
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxUploadBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading trace body: %v", err)
		return
	}
	name, rep, info, err := tracein.ConvertBytes(data, trace.DefaultArtifactBudget)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "converting trace: %v", err)
		return
	}
	if _, err := trace.RegisterExternal(name, rep, true); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	key, err := c.traces.PutRecording(name, rep)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "persisting trace: %v", err)
		return
	}
	var tn string
	if t := tenant.FromContext(r.Context()); t != nil {
		tn = t.Name
	}
	c.mUploads.Inc()
	c.log.Info("external trace uploaded",
		"workload", name, "insts", info.Insts, "artifact", key,
		"tenant", tn, "backfilled_bytes", info.BackfilledBytes,
		"inconsistent_loads", info.InconsistentLoads)
	writeJSON(w, http.StatusCreated, server.WorkloadUpload{
		Workload:          name,
		Insts:             info.Insts,
		Artifact:          key,
		BackfilledBytes:   info.BackfilledBytes,
		InconsistentLoads: info.InconsistentLoads,
		DroppedSrcRegs:    info.DroppedSrcRegs,
	})
}
