package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"time"

	otrace "repro/internal/obs/trace"
	"repro/internal/server"
	"repro/internal/tenant"
)

// Handler returns the coordinator's HTTP API:
//
//	POST   /v1/cluster/workers      register (or reactivate) a worker
//	GET    /v1/cluster/workers      list workers with state and load
//	DELETE /v1/cluster/workers/{id} drain a worker (steals its points)
//	POST   /v1/sweeps               submit a sweep for distributed execution
//	GET    /v1/sweeps               list retained sweeps (summaries)
//	GET    /v1/sweeps/{id}          aggregated sweep status with points
//	GET    /healthz                 coordinator liveness + fleet summary
//	GET    /readyz                  readiness: accepting and has active workers
//	GET    /debug/traces            recent coordinator-side traces
//	GET    /debug/traces/{id}       one trace, merged across coordinator and workers
//	GET    /metrics                 Prometheus-style metrics
//	GET    /v1/metrics/query        federated range/instant queries over the fleet
//	GET    /v1/alerts               SLO alert states (firing/pending/resolved)
//
// Trace propagation middleware wraps the tree, so a POST /v1/sweeps
// carrying a traceparent header ties the whole distributed execution
// into the submitter's trace. Tenant authentication guards the /v1/
// surface when the coordinator runs with a tenants file.
func (c *Coordinator) Handler() http.Handler {
	return c.tracer.Middleware(c.metricsMiddleware(c.authMiddleware(c.mux)))
}

// authMiddleware resolves the request's tenant and stores it in the
// context, mirroring the worker daemon's middleware: only /v1/ needs a
// key; health, metrics, and debug stay open. Worker self-registration
// (POST /v1/cluster/workers) therefore also needs a key in
// multi-tenant mode — workers pass it with -join-api-key.
func (c *Coordinator) authMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !strings.HasPrefix(r.URL.Path, "/v1/") {
			next.ServeHTTP(w, r)
			return
		}
		key := tenant.KeyFromAuth(r.Header.Get("Authorization"), r.Header.Get("X-API-Key"))
		tn, ok := c.tenants.Authenticate(key)
		if !ok {
			c.mAuthFailed.Inc()
			writeError(w, http.StatusUnauthorized, "missing or unknown API key")
			return
		}
		if name := r.Header.Get("X-Lvpd-Tenant"); name != "" && name != tn.Name {
			if !tn.Proxy {
				writeError(w, http.StatusForbidden, "tenant is not allowed to attribute work to others")
				return
			}
			attributed, ok := c.tenants.ByName(name)
			if !ok {
				writeError(w, http.StatusForbidden, "unknown tenant in X-Lvpd-Tenant")
				return
			}
			tn = attributed
		}
		next.ServeHTTP(w, r.WithContext(tenant.NewContext(r.Context(), tn)))
	})
}

// RegisterRequest is the POST /v1/cluster/workers body.
type RegisterRequest struct {
	URL string `json:"url"`
}

// ClusterHealth is the GET /healthz body: coordinator liveness plus a
// fleet roll-up.
type ClusterHealth struct {
	Status             string `json:"status"`
	Workers            int    `json:"workers"`
	ActiveWorkers      int    `json:"active_workers"`
	QuarantinedWorkers int    `json:"quarantined_workers,omitempty"`
	PointsInflight     int64  `json:"points_inflight"`
	Sweeps             int    `json:"sweeps"`
	CacheEntries       int    `json:"cache_entries"`
}

func (c *Coordinator) routes() {
	c.mux.HandleFunc("POST /v1/cluster/workers", c.handleRegisterWorker)
	c.mux.HandleFunc("GET /v1/cluster/workers", c.handleListWorkers)
	c.mux.HandleFunc("DELETE /v1/cluster/workers/{id}", c.handleDrainWorker)
	c.mux.HandleFunc("POST /v1/sweeps", c.handleStartSweep)
	c.mux.HandleFunc("POST /v1/workloads", c.handleUploadWorkload)
	c.mux.HandleFunc("GET /v1/sweeps", c.handleListSweeps)
	c.mux.HandleFunc("GET /v1/sweeps/{id}", c.handleSweepStatus)
	c.mux.HandleFunc("GET /healthz", c.handleHealthz)
	c.mux.HandleFunc("GET /readyz", c.handleReadyz)
	c.mux.Handle("GET /debug/traces", c.tracer.IndexHandler())
	c.mux.HandleFunc("GET /debug/traces/{id}", c.handleMergedTrace)
	c.mux.Handle("GET /metrics", c.reg.Handler())
	c.mux.HandleFunc("GET /v1/metrics/query", c.handleMetricsQuery)
	c.mux.HandleFunc("GET /v1/alerts", c.handleAlerts)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (c *Coordinator) handleRegisterWorker(w http.ResponseWriter, r *http.Request) {
	var req RegisterRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad register body: %v", err)
		return
	}
	if req.URL == "" {
		writeError(w, http.StatusBadRequest, "register body needs a url field")
		return
	}
	st, created, err := c.RegisterWorker(r.Context(), req.URL)
	if err != nil {
		var probeFailed bool
		var we *workerError
		if errors.As(err, &we) {
			probeFailed = true
		}
		if probeFailed || errors.Is(err, context.DeadlineExceeded) {
			writeError(w, http.StatusBadGateway, "%v", err)
		} else {
			writeError(w, http.StatusBadRequest, "%v", err)
		}
		return
	}
	code := http.StatusOK
	if created {
		code = http.StatusCreated
	}
	writeJSON(w, code, st)
}

func (c *Coordinator) handleListWorkers(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"workers": c.Workers()})
}

func (c *Coordinator) handleDrainWorker(w http.ResponseWriter, r *http.Request) {
	st, ok := c.DrainWorker(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no worker %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (c *Coordinator) handleStartSweep(w http.ResponseWriter, r *http.Request) {
	var req server.SweepRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad sweep body: %v", err)
		return
	}
	st, err := c.StartSweep(r.Context(), req)
	if err != nil {
		switch {
		case !c.accepting.Load():
			writeError(w, http.StatusServiceUnavailable, "%v", err)
		case errors.Is(err, errDurability):
			writeError(w, http.StatusInternalServerError, "%v", err)
		default:
			writeError(w, http.StatusBadRequest, "%v", err)
		}
		return
	}
	code := http.StatusAccepted
	if st.State == "done" { // every point cached at submit
		code = http.StatusOK
	}
	writeJSON(w, code, st)
}

func (c *Coordinator) handleListSweeps(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"sweeps": c.SweepStatuses()})
}

func (c *Coordinator) handleSweepStatus(w http.ResponseWriter, r *http.Request) {
	st, ok := c.SweepStatusByID(r.PathValue("id"), true)
	if !ok {
		writeError(w, http.StatusNotFound, "no sweep %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (c *Coordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	h := ClusterHealth{
		Status:       "ok",
		Workers:      len(c.workers),
		Sweeps:       len(c.sweeps),
		CacheEntries: c.cache.Len(),
	}
	for _, wk := range c.workers {
		switch wk.state {
		case WorkerActive:
			h.ActiveWorkers++
		case WorkerQuarantined:
			h.QuarantinedWorkers++
		}
	}
	c.mu.Unlock()
	h.PointsInflight = c.mInflight.Value()
	writeJSON(w, http.StatusOK, h)
}

// handleReadyz reports whether the coordinator can usefully accept a
// sweep right now: it is not draining and at least one worker is
// active. Liveness stays on /healthz, which answers 200 regardless.
func (c *Coordinator) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if !c.accepting.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	c.mu.Lock()
	active := 0
	for _, wk := range c.workers {
		if wk.state == WorkerActive {
			active++
		}
	}
	c.mu.Unlock()
	if active == 0 {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"status": "no active workers", "active_workers": 0,
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "ready", "active_workers": active})
}

// handleMergedTrace serves one trace as Chrome trace-event JSON with
// the coordinator's own spans merged with the matching spans fetched
// from every registered worker's /debug/traces/{id}. Workers that no
// longer remember the trace (ring eviction, restart) or fail the fetch
// are skipped — a partial trace beats none.
func (c *Coordinator) handleMergedTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	events := otrace.ChromeEvents(c.tracer.Service(), c.tracer.TraceSpans(id))

	c.mu.Lock()
	urls := make([]string, 0, len(c.workers))
	for _, wk := range c.workers {
		urls = append(urls, wk.url)
	}
	c.mu.Unlock()
	sort.Strings(urls)

	for _, u := range urls {
		ctx, cancel := context.WithTimeout(r.Context(), c.cfg.HealthTimeout)
		code, body, err := c.workerClient(u, nil).do(ctx, http.MethodGet, "/debug/traces/"+id, nil)
		cancel()
		if err != nil || code != http.StatusOK {
			continue
		}
		var part struct {
			TraceEvents []otrace.Event `json:"traceEvents"`
		}
		if json.Unmarshal(body, &part) != nil {
			continue
		}
		events = append(events, part.TraceEvents...)
	}

	if len(events) == 0 {
		writeError(w, http.StatusNotFound, "no trace %q", id)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = otrace.WriteChrome(w, events)
}

// LoggedHandler wraps the API with one structured access-log line per
// request.
func (c *Coordinator) LoggedHandler() http.Handler {
	authed := c.metricsMiddleware(c.authMiddleware(c.mux))
	return c.tracer.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		authed.ServeHTTP(w, r)
		c.log.DebugContext(r.Context(), "http", "method", r.Method, "path", r.URL.Path, "dur", time.Since(start))
	}))
}
