package cluster

import (
	"context"
	"fmt"
	"strconv"
	"time"

	otrace "repro/internal/obs/trace"
	"repro/internal/server"
	"repro/internal/spec"
)

// Point states reported by PointStatus.State.
const (
	PointPending = "pending"
	PointRunning = "running"
	PointDone    = "done"
	PointFailed  = "failed"
)

// sweep is one accepted POST /v1/sweeps: its unique points plus the
// expansion bookkeeping. Guarded by the coordinator mutex.
type sweep struct {
	id      string
	tenant  string // submitting tenant (attribution, WAL, worker proxying)
	created time.Time
	total   int // expanded points, duplicates included
	deduped int // expansions collapsed onto an earlier point
	cached  int // unique points answered from the shared cache at submit
	points  []*point

	// span is the sweep's root span, open from submit until the last
	// point settles; every dispatch attempt parents on it, so the whole
	// distributed execution shares one trace. Set once before the
	// dispatch goroutines launch, never reassigned (safe to read
	// without the mutex).
	span *otrace.Span
}

// point is one unique spec hash within a sweep. Guarded by the
// coordinator mutex.
type point struct {
	hash     string
	sim      spec.Sim
	label    string
	count    int // expansions sharing this hash
	state    string
	cacheHit bool
	attempts int
	steals   int
	workerID string
	errMsg   string
	result   *server.RunResult
	finished time.Time

	// progress is the latest ProgressView the dispatch poll observed on
	// the point's worker; re-exported through SweepStatus while the
	// point runs.
	progress *server.ProgressView
}

// PointStatus is the JSON view of one unique sweep point.
type PointStatus struct {
	SpecHash string     `json:"spec_hash"`
	Workload string     `json:"workload"`
	Label    string     `json:"predictor,omitempty"`
	Count    int        `json:"count"`
	State    string     `json:"state"`
	CacheHit bool       `json:"cache_hit,omitempty"`
	Attempts int        `json:"attempts,omitempty"`
	Steals   int        `json:"steals,omitempty"`
	Worker   string     `json:"worker,omitempty"`
	Error    string     `json:"error,omitempty"`
	Finished *time.Time `json:"finished,omitempty"`

	// Progress is the live view re-exported from the point's worker
	// (running points only).
	Progress *server.ProgressView `json:"progress,omitempty"`

	Result *server.RunResult `json:"result,omitempty"`
}

// SweepStatus is the aggregated view of a sweep: counts by point state
// plus (optionally) every unique point. Completions stream into it as
// workers finish, so polling GET /v1/sweeps/{id} follows the sweep
// live.
type SweepStatus struct {
	ID      string    `json:"id"`
	Tenant  string    `json:"tenant,omitempty"`
	State   string    `json:"state"` // running | done
	Created time.Time `json:"created"`

	// TraceID names the sweep's distributed trace: coordinator dispatch
	// spans plus (merged at GET /debug/traces/{id}) the workers' job
	// spans.
	TraceID string `json:"trace_id,omitempty"`

	Total   int `json:"total"`
	Unique  int `json:"unique"`
	Deduped int `json:"deduped,omitempty"`
	Cached  int `json:"cached,omitempty"`

	Pending int `json:"pending"`
	Running int `json:"running"`
	Done    int `json:"done"`
	Failed  int `json:"failed"`

	Points []PointStatus `json:"points,omitempty"`
}

// statusLocked snapshots the sweep. Caller holds c.mu.
func (sw *sweep) statusLocked(includePoints bool) SweepStatus {
	st := SweepStatus{
		ID:      sw.id,
		Tenant:  sw.tenant,
		Created: sw.created,
		Total:   sw.total,
		Unique:  len(sw.points),
		Deduped: sw.deduped,
		Cached:  sw.cached,
	}
	if sw.span != nil {
		st.TraceID = sw.span.TraceID
	}
	for _, pt := range sw.points {
		switch pt.state {
		case PointPending:
			st.Pending++
		case PointRunning:
			st.Running++
		case PointDone:
			st.Done++
		case PointFailed:
			st.Failed++
		}
		if includePoints {
			ps := PointStatus{
				SpecHash: pt.hash,
				Workload: pt.sim.Workload.Name,
				Label:    pt.label,
				Count:    pt.count,
				State:    pt.state,
				CacheHit: pt.cacheHit,
				Attempts: pt.attempts,
				Steals:   pt.steals,
				Worker:   pt.workerID,
				Error:    pt.errMsg,
				Result:   pt.result,
			}
			if pt.state == PointRunning {
				ps.Progress = pt.progress
			}
			if !pt.finished.IsZero() {
				t := pt.finished
				ps.Finished = &t
			}
			st.Points = append(st.Points, ps)
		}
	}
	if st.Pending+st.Running == 0 {
		st.State = "done"
	} else {
		st.State = "running"
	}
	return st
}

// terminalLocked reports whether every point reached a terminal state.
// Caller holds c.mu.
func (sw *sweep) terminalLocked() bool {
	for _, pt := range sw.points {
		if pt.state != PointDone && pt.state != PointFailed {
			return false
		}
	}
	return true
}

// StartSweep expands, dedups, and launches a sweep: points whose spec
// hash is already in the shared cache are answered immediately,
// duplicate hashes collapse onto one dispatch, and every remaining
// point gets a dispatch goroutine. The returned status is the submit-
// time snapshot (without per-point detail). ctx seeds the sweep's
// trace: when it carries a span (e.g. the submit request arrived with
// a traceparent header), the sweep joins that trace; otherwise the
// sweep roots a fresh one.
func (c *Coordinator) StartSweep(ctx context.Context, req server.SweepRequest) (SweepStatus, error) {
	if !c.accepting.Load() {
		return SweepStatus{}, fmt.Errorf("coordinator is shutting down")
	}
	tn := c.requestTenant(ctx)
	maxPoints := c.cfg.MaxSweepPoints
	if tn.MaxSweepPoints > 0 && tn.MaxSweepPoints < maxPoints {
		maxPoints = tn.MaxSweepPoints
	}
	points, err := req.Expand(c.defaults(), maxPoints)
	if err != nil {
		return SweepStatus{}, err
	}

	c.mu.Lock()
	c.nextSweep++
	id := fmt.Sprintf("s-%04d", c.nextSweep)
	c.mu.Unlock()

	// Expansion bookkeeping happens on locals: the sweep is invisible
	// until it is published below, after the WAL accepted it, so the
	// fsync never runs under the coordinator mutex.
	sw := &sweep{
		id:      id,
		tenant:  tn.Name,
		created: time.Now(),
		total:   len(points),
	}
	_, sw.span = c.tracer.StartSpan(ctx, "sweep",
		otrace.String("sweep_id", sw.id),
		otrace.String("tenant", sw.tenant),
		otrace.String("total", strconv.Itoa(len(points))))
	seen := make(map[string]*point, len(points))
	var launch []*point
	for _, p := range points {
		if pt, ok := seen[p.Hash]; ok {
			pt.count++
			sw.deduped++
			c.mPtsDeduped.Inc()
			continue
		}
		pt := &point{hash: p.Hash, sim: p.Sim, label: p.Label, count: 1, state: PointPending}
		if res, ok := c.lookupResult(p.Hash); ok {
			pt.state = PointDone
			pt.cacheHit = true
			pt.result = &res
			pt.finished = time.Now()
			sw.cached++
			c.mPtsCached.Inc()
		} else {
			launch = append(launch, pt)
		}
		seen[p.Hash] = pt
		sw.points = append(sw.points, pt)
	}

	// Durable before accepted: once the client sees the 202, a restart
	// owes the sweep.
	if err := c.persistSweepStarted(sw); err != nil {
		sw.span.Finish()
		c.log.Error("sweep rejected: wal append failed", "sweep", sw.id, "err", err)
		return SweepStatus{}, fmt.Errorf("%w: %v", errDurability, err)
	}

	c.mu.Lock()
	c.sweeps[sw.id] = sw
	c.order = append(c.order, sw.id)
	c.pruneSweepsLocked()
	status := sw.statusLocked(false)
	c.runners.Add(len(launch))
	done := sw.terminalLocked() // every point cached at submit
	c.mu.Unlock()
	if done {
		sw.span.Finish()
		c.persistSweepDone(sw)
	}
	if ctr := c.mTenantSweeps[sw.tenant]; ctr != nil {
		ctr.Inc()
	}

	// Pre-ship the sweep's recorded-trace artifacts before any point is
	// dispatched, so workers replay a stream the coordinator recorded
	// once instead of each generating it. Shipping failures only cost
	// the optimization: a worker without the artifact generates live.
	c.shipTraces(sw, launch)

	for _, pt := range launch {
		go c.runPoint(sw, pt)
	}
	c.log.Info("sweep accepted", "sweep", sw.id, "tenant", sw.tenant, "total", sw.total,
		"unique", len(sw.points), "cached", sw.cached, "deduped", sw.deduped)
	return status, nil
}

// pruneSweepsLocked forgets the oldest finished sweeps beyond the
// retention cap. Caller holds c.mu.
func (c *Coordinator) pruneSweepsLocked() {
	for len(c.order) > c.cfg.RetainedSweeps {
		old := c.sweeps[c.order[0]]
		if old != nil && !old.terminalLocked() {
			break
		}
		delete(c.sweeps, c.order[0])
		c.order = c.order[1:]
	}
}

// SweepStatusByID returns a sweep's aggregated status.
func (c *Coordinator) SweepStatusByID(id string, includePoints bool) (SweepStatus, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	sw, ok := c.sweeps[id]
	if !ok {
		return SweepStatus{}, false
	}
	return sw.statusLocked(includePoints), true
}

// SweepStatuses lists retained sweeps, oldest first, without per-point
// detail.
func (c *Coordinator) SweepStatuses() []SweepStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]SweepStatus, 0, len(c.order))
	for _, id := range c.order {
		if sw := c.sweeps[id]; sw != nil {
			out = append(out, sw.statusLocked(false))
		}
	}
	return out
}
