package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	otrace "repro/internal/obs/trace"
	"repro/internal/server"
)

// errShed marks a worker's 429: the worker is healthy but its queue is
// full, so the attempt is retryable without blaming the worker.
var errShed = errors.New("worker shed the job (queue full)")

// permanentError marks a failure no retry can fix (the worker rejected
// the spec as invalid); the point fails immediately.
type permanentError struct{ msg string }

func (e *permanentError) Error() string { return e.msg }

// workerError marks a transport-level or server-side failure that
// counts against the worker's circuit breaker.
type workerError struct{ err error }

func (e *workerError) Error() string { return e.err.Error() }
func (e *workerError) Unwrap() error { return e.err }

// apiClient drives one stock lvpd worker through its public HTTP API.
type apiClient struct {
	base string
	hc   *http.Client

	// apiKey, when set, authenticates every request (Authorization:
	// Bearer). tenantName, when set, attributes the work to that tenant
	// via X-Lvpd-Tenant — the worker honors it only for Proxy-flagged
	// keys.
	apiKey     string
	tenantName string
}

// workerClient builds the API client for one worker URL: the
// coordinator's worker credential plus, in multi-tenant mode, the
// sweep's tenant attribution (nil sw or single-tenant mode sends no
// attribution header, so open workers stay compatible).
func (c *Coordinator) workerClient(url string, sw *sweep) apiClient {
	cl := apiClient{base: url, hc: c.hc, apiKey: c.cfg.WorkerAPIKey}
	if sw != nil && !c.tenants.Open() {
		cl.tenantName = sw.tenant
	}
	return cl
}

// errorMessage extracts the {"error": ...} envelope, falling back to
// the raw body.
func errorMessage(body []byte) string {
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		return e.Error
	}
	return string(bytes.TrimSpace(body))
}

func (a apiClient) do(ctx context.Context, method, path string, body any) (int, []byte, error) {
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return 0, nil, err
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, a.base+path, rd)
	if err != nil {
		return 0, nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if a.apiKey != "" {
		req.Header.Set("Authorization", "Bearer "+a.apiKey)
	}
	if a.tenantName != "" {
		req.Header.Set("X-Lvpd-Tenant", a.tenantName)
	}
	// Propagate the caller's trace (a dispatch span, typically) so the
	// worker's spans join it; a no-op when ctx carries none.
	otrace.Inject(req)
	resp, err := a.hc.Do(req)
	if err != nil {
		return 0, nil, &workerError{err}
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(io.LimitReader(resp.Body, 1<<22))
	if err != nil {
		return resp.StatusCode, nil, &workerError{err}
	}
	return resp.StatusCode, b, nil
}

// putTrace uploads a recorded-trace artifact to the worker under its
// content address. Unlike the other calls, the body is the raw encoded
// artifact, not JSON.
func (a apiClient) putTrace(ctx context.Context, hash string, data []byte) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, a.base+"/v1/traces/"+hash, bytes.NewReader(data))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	if a.apiKey != "" {
		req.Header.Set("Authorization", "Bearer "+a.apiKey)
	}
	otrace.Inject(req)
	resp, err := a.hc.Do(req)
	if err != nil {
		return &workerError{err}
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if resp.StatusCode != http.StatusNoContent {
		return &workerError{fmt.Errorf("trace upload returned %d: %s", resp.StatusCode, errorMessage(body))}
	}
	return nil
}

// submitJob posts one canonical spec to the worker and returns the
// created (or cache-answered) job status.
func (a apiClient) submitJob(ctx context.Context, req server.JobRequest) (server.JobStatus, error) {
	var st server.JobStatus
	code, body, err := a.do(ctx, http.MethodPost, "/v1/jobs", req)
	if err != nil {
		return st, err
	}
	switch {
	case code == http.StatusOK || code == http.StatusAccepted:
		if err := json.Unmarshal(body, &st); err != nil {
			return st, &workerError{fmt.Errorf("undecodable submit response: %w", err)}
		}
		return st, nil
	case code == http.StatusTooManyRequests:
		return st, errShed
	case code == http.StatusBadRequest:
		// The worker rejected the spec itself; retrying elsewhere cannot
		// help (workers share the validation code).
		return st, &permanentError{fmt.Sprintf("worker rejected spec: %s", errorMessage(body))}
	default:
		return st, &workerError{fmt.Errorf("submit returned %d: %s", code, errorMessage(body))}
	}
}

// getJob fetches a job's status from the worker.
func (a apiClient) getJob(ctx context.Context, id string) (server.JobStatus, error) {
	var st server.JobStatus
	code, body, err := a.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil)
	if err != nil {
		return st, err
	}
	if code != http.StatusOK {
		// 404 included: a restarted worker forgot the job — re-dispatch.
		return st, &workerError{fmt.Errorf("job %s lookup returned %d: %s", id, code, errorMessage(body))}
	}
	if err := json.Unmarshal(body, &st); err != nil {
		return st, &workerError{fmt.Errorf("undecodable job status: %w", err)}
	}
	return st, nil
}

// cancelJob best-effort cancels a job the coordinator no longer wants
// (the attempt was stolen or timed out).
func (a apiClient) cancelJob(ctx context.Context, id string) error {
	_, _, err := a.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil)
	return err
}

// health probes the worker's /healthz.
func (a apiClient) health(ctx context.Context) (server.Health, error) {
	var h server.Health
	code, body, err := a.do(ctx, http.MethodGet, "/healthz", nil)
	if err != nil {
		return h, err
	}
	if code != http.StatusOK {
		return h, fmt.Errorf("healthz returned %d", code)
	}
	if err := json.Unmarshal(body, &h); err != nil {
		return h, fmt.Errorf("undecodable healthz: %w", err)
	}
	return h, nil
}
