package cluster

import (
	"bytes"
	"context"
	"strconv"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/tsdb"
	"repro/internal/server"
)

func mustExpr(t *testing.T, q string) tsdb.Expr {
	t.Helper()
	e, err := tsdb.ParseExpr(q)
	if err != nil {
		t.Fatalf("parse %q: %v", q, err)
	}
	return e
}

// TestFederationThreeWorkers scrapes a 3-worker fleet into the
// coordinator's embedded store, kills one worker, and verifies the
// dead worker goes stale (up=0, unhealthy target, stale annotation)
// without poisoning the merged series of the survivors.
func TestFederationThreeWorkers(t *testing.T) {
	cfg := fastConfig()
	cfg.ObsScrapeInterval = time.Hour // only explicit ScrapeObs passes
	coord, ts := newCoordinator(t, cfg)

	type wk struct {
		id string
		ts interface{ Close() }
	}
	var fleet []wk
	for i := 0; i < 3; i++ {
		wts, _ := newWorker(t)
		st, _, err := coord.RegisterWorker(context.Background(), wts.URL)
		if err != nil {
			t.Fatalf("register worker %d: %v", i, err)
		}
		fleet = append(fleet, wk{id: st.ID, ts: wts})
	}

	t0 := time.Now()
	coord.ScrapeObs(t0)

	// Every target answered: up{} for self plus up{worker=<id>} per
	// worker, all 1.
	ups := coord.TSDB().Eval(mustExpr(t, "up"), t0)
	if len(ups) != 4 {
		t.Fatalf("up series = %d, want 4 (self + 3 workers): %+v", len(ups), ups)
	}
	for _, r := range ups {
		if r.Value != 1 {
			t.Errorf("up%v = %v, want 1", r.Labels, r.Value)
		}
	}

	// Worker metrics federate under the worker label: each worker's
	// sim-throughput gauge becomes its own series in the merged store.
	mips := coord.TSDB().Eval(mustExpr(t, "lvpd_sim_mips"), t0)
	seen := map[string]bool{}
	for _, r := range mips {
		seen[r.Labels["worker"]] = true
	}
	for _, w := range fleet {
		if !seen[w.id] {
			t.Errorf("merged lvpd_sim_mips missing worker %s: have %v", w.id, seen)
		}
	}

	// Kill worker 0's HTTP front-end and scrape again: its target goes
	// stale instead of wedging or corrupting the pass.
	dead := fleet[0]
	dead.ts.Close()
	t1 := t0.Add(5 * time.Second)
	coord.ScrapeObs(t1)

	ups = coord.TSDB().Eval(mustExpr(t, "up"), t1)
	byWorker := map[string]float64{}
	for _, r := range ups {
		byWorker[r.Labels["worker"]] = r.Value
	}
	if byWorker[dead.id] != 0 {
		t.Errorf("up{worker=%s} = %v after kill, want 0", dead.id, byWorker[dead.id])
	}
	for _, w := range fleet[1:] {
		if byWorker[w.id] != 1 {
			t.Errorf("up{worker=%s} = %v, want 1 (survivor poisoned?)", w.id, byWorker[w.id])
		}
	}
	st, ok := coord.collector.StatusByKey(dead.id)
	if !ok || st.Healthy {
		t.Errorf("dead worker target status = %+v, want unhealthy", st)
	}

	// The HTTP endpoint annotates the stale target so a dashboard can
	// tell a merged series is missing fresh samples from that worker.
	var resp struct {
		Query   string           `json:"query"`
		Results []map[string]any `json:"results"`
		Stale   []string         `json:"stale_targets"`
	}
	getJSON(t, ts.URL+"/v1/metrics/query?q=up&time_ms="+
		strconv.FormatInt(t1.UnixMilli(), 10), &resp)
	if len(resp.Results) == 0 {
		t.Fatalf("query endpoint returned no results")
	}
	foundStale := false
	for _, k := range resp.Stale {
		if k == dead.id {
			foundStale = true
		}
	}
	if !foundStale {
		t.Errorf("stale_targets = %v, want to include %s", resp.Stale, dead.id)
	}

	// Alerts endpoint answers even with alerting disabled.
	var alerts struct {
		Enabled bool `json:"enabled"`
	}
	getJSON(t, ts.URL+"/v1/alerts", &alerts)
	if alerts.Enabled {
		t.Errorf("alerts enabled without a rule set")
	}
}

// TestCoordinatorRequestHistogram verifies the coordinator's HTTP
// middleware records normalized routes into its duration histogram.
func TestCoordinatorRequestHistogram(t *testing.T) {
	cfg := fastConfig()
	cfg.ObsScrapeInterval = time.Hour
	coord, ts := newCoordinator(t, cfg)

	var h ClusterHealth
	getJSON(t, ts.URL+"/healthz", &h)

	coord.ScrapeObs(time.Now())
	rs := coord.TSDB().Eval(mustExpr(t, "lvpc_http_request_duration_seconds_count"), time.Now())
	found := false
	for _, r := range rs {
		if r.Labels["route"] == "/healthz" && r.Labels["code"] == "200" && r.Value >= 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("no /healthz sample in request histogram: %+v", rs)
	}
}

// TestMetricsConventions lints every metric the worker daemon and the
// coordinator expose against the repo's naming rules: counters end in
// _total, histograms carry a unit suffix, every family has HELP, no
// duplicate series, bounded per-family cardinality — and the whole
// exposition round-trips through the tsdb parser.
func TestMetricsConventions(t *testing.T) {
	srv, err := server.New(server.Config{Workers: 1, Logger: quietLogger()})
	if err != nil {
		t.Fatal(err)
	}
	coord, errC := New(fastConfig())
	if errC != nil {
		t.Fatal(errC)
	}
	for _, tc := range []struct {
		name string
		reg  *obs.Registry
	}{
		{"lvpd", srv.Registry()},
		{"lvpc", coord.Registry()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			if _, err := tc.reg.WriteTo(&buf); err != nil {
				t.Fatalf("render: %v", err)
			}
			fams, err := tsdb.ParseExposition(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("exposition does not round-trip: %v", err)
			}
			if len(fams) == 0 {
				t.Fatal("registry rendered no families")
			}
			for _, issue := range tsdb.Lint(fams, tsdb.LintOptions{}) {
				t.Errorf("%s", issue)
			}
		})
	}
}
