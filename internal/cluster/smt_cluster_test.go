package cluster

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"

	"repro/internal/server"
	"repro/internal/store"
)

// TestSMTSweepAcrossCluster drives a contexts-axis sweep through the
// full distributed path: the coordinator expands gcc2k/composite over
// 1, 2, and 4 hardware contexts, records and ships every salted
// per-context stream to both workers before dispatch, the workers
// replay the shipped artifacts, per-context results land in the
// coordinator's warehouse under the contexts column, and every point
// is bit-identical to single-node execution of the same sweep.
func TestSMTSweepAcrossCluster(t *testing.T) {
	workers := make([]*httptest.Server, 2)
	for i := range workers {
		workers[i], _ = newWorker(t)
	}
	cfg := fastConfig()
	cfg.DataDir = t.TempDir()
	coord, coordTS := newCoordinator(t, cfg)
	for _, w := range workers {
		resp, body := postJSON(t, coordTS.URL+"/v1/cluster/workers", map[string]string{"url": w.URL})
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("register: %d: %s", resp.StatusCode, body)
		}
	}

	req := server.SweepRequest{
		Template: server.JobRequest{Workload: "gcc2k", Predictor: "composite", Insts: 20_000},
		Axes:     server.SweepAxes{Contexts: []int{1, 2, 4}},
	}
	resp, body := postJSON(t, coordTS.URL+"/v1/sweeps", req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("sweep submit: %d: %s", resp.StatusCode, body)
	}
	var submitted SweepStatus
	if err := json.Unmarshal(body, &submitted); err != nil {
		t.Fatal(err)
	}
	if submitted.Unique != 3 {
		t.Fatalf("contexts axis should expand to 3 unique points, got %+v", submitted)
	}
	final := waitSweepDone(t, coord, submitted.ID)
	if final.Done != 3 || final.Failed != 0 {
		t.Fatalf("sweep settled done=%d failed=%d", final.Done, final.Failed)
	}

	// One point per context count; single-context results leave the
	// contexts field at its omitted zero.
	byContexts := map[int]*server.RunResult{}
	for _, pt := range final.Points {
		if pt.Result == nil {
			t.Fatalf("point %s has no result", pt.SpecHash)
		}
		byContexts[pt.Result.Contexts] = pt.Result
	}
	if byContexts[0] == nil || byContexts[2] == nil || byContexts[4] == nil {
		t.Fatalf("expected context counts 0/2/4, got %v", byContexts)
	}
	four := byContexts[4]
	if len(four.PerContext) != 4 || four.Instructions != 80_000 || four.Workload != "gcc2k" {
		t.Fatalf("4-context point = %+v", four)
	}
	wantStreams := []string{"gcc2k", "gcc2k#1", "gcc2k#2", "gcc2k#3"}
	for i, cr := range four.PerContext {
		if cr.Stream != wantStreams[i] || cr.Instructions != 20_000 {
			t.Errorf("context %d = %s/%d insts, want %s/20000", i, cr.Stream, cr.Instructions, wantStreams[i])
		}
	}

	// The warehouse retained each point under its context count.
	wh := coord.st.Warehouse()
	ctx := func(n int) *int { return &n }
	recs := wh.List(store.Filter{Contexts: ctx(4)})
	if len(recs) != 1 || recs[0].Contexts != 4 || recs[0].Workload != "gcc2k" {
		t.Fatalf("warehouse contexts=4 = %+v", recs)
	}
	var retained server.RunResult
	if err := json.Unmarshal(recs[0].Result, &retained); err != nil {
		t.Fatal(err)
	}
	if len(retained.PerContext) != 4 {
		t.Fatalf("retained 4-context record lost its per-context rows: %+v", retained)
	}
	if recs := wh.List(store.Filter{Contexts: ctx(1)}); len(recs) != 1 {
		t.Fatalf("warehouse contexts=1 = %+v", recs)
	}

	// The coordinator recorded all four distinct salted streams once
	// each and shipped each to both workers; no worker generated any
	// stream live — every context of every point replayed a recording.
	coordText := metricsOf(t, coordTS.URL)
	if g := metricValue(t, coordText, "lvpc_trace_artifacts_generated_total"); g != 4 {
		t.Errorf("coordinator generated %v artifacts, want 4 (gcc2k + 3 salted streams)", g)
	}
	if s := metricValue(t, coordText, "lvpc_trace_artifacts_shipped_total"); s != 8 {
		t.Errorf("coordinator shipped %v artifacts, want 8 (4 streams x 2 workers)", s)
	}
	for i, w := range workers {
		text := metricsOf(t, w.URL)
		if g := metricValue(t, text, "lvpd_trace_artifact_generated_total"); g != 0 {
			t.Errorf("worker %d generated %v streams live, want 0", i, g)
		}
	}

	// Cluster execution over replayed artifacts must be bit-identical
	// to a fresh single node generating the streams live.
	single := singleNodeResults(t, req)
	for _, pt := range final.Points {
		want, ok := single[pt.SpecHash]
		if !ok {
			t.Fatalf("single-node run has no result for %s", pt.SpecHash)
		}
		got := stripNondeterminism(*pt.Result)
		if !reflect.DeepEqual(got, stripNondeterminism(want)) {
			t.Errorf("point %s diverged from single-node execution:\n cluster: %+v\n single:  %+v",
				pt.SpecHash, got, want)
		}
	}
}
