package cluster

import (
	"context"
	"net/http"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/tsdb"
)

// fsyncBuckets resolve sub-millisecond group-commit fsyncs; the default
// latency buckets start too coarse for a local disk's append path.
var fsyncBuckets = []float64{
	.0001, .00025, .0005, .001, .0025, .005, .01, .025, .05, .1, .25, .5, 1,
}

// initObs builds the coordinator's observability plane: an embedded
// time-series store fed by a collector that scrapes the coordinator's
// own registry plus every registered (non-drained) worker's /metrics.
// Worker samples are merged under a worker="<id>" label, so one
// federated query ranges over the whole fleet. Called from New.
func (c *Coordinator) initObs() {
	c.tsdb = tsdb.New(tsdb.Options{
		ScrapeInterval: c.cfg.ObsScrapeInterval,
		Retention:      c.cfg.ObsRetention,
	})
	c.collector = &tsdb.Collector{
		DB:       c.tsdb,
		Interval: c.cfg.ObsScrapeInterval,
		Targets:  c.scrapeTargets,
	}
	c.reg.GaugeFunc("lvpc_tsdb_series",
		"Time series held by the embedded metrics store.",
		func() float64 { return float64(c.tsdb.SeriesCount()) })
	c.reg.CounterFunc("lvpc_tsdb_dropped_series_total",
		"Series rejected by the embedded store's cardinality cap.",
		func() float64 { return float64(c.tsdb.DroppedSeries()) })
	for _, state := range []string{WorkerActive, WorkerQuarantined, WorkerDrained} {
		st := state
		c.reg.GaugeFunc("lvpc_workers", "Registered workers by state.",
			func() float64 {
				c.mu.Lock()
				defer c.mu.Unlock()
				n := 0
				for _, w := range c.workers {
					if w.state == st {
						n++
					}
				}
				return float64(n)
			}, "state", st)
	}

	if c.cfg.Alerts != nil {
		c.alerter = tsdb.NewAlerter(c.tsdb, c.cfg.Alerts, c.log, c.cfg.ServiceName)
	}
	c.reg.GaugeFunc("lvpc_alerts_firing",
		"SLO alert rules currently firing (0 when alerting is disabled).",
		func() float64 {
			if c.alerter == nil {
				return 0
			}
			return float64(c.alerter.FiringCount())
		})
}

// scrapeTargets is the collector's dynamic target set: the
// coordinator's own registry plus one /metrics scrape per non-drained
// worker. Re-evaluated every tick, so workers joining, draining, or
// being quarantined change the scrape set without restarts (a
// quarantined worker stays scraped: its metrics going stale versus
// its process being up is exactly what an operator wants to see).
func (c *Coordinator) scrapeTargets() []tsdb.Target {
	targets := []tsdb.Target{tsdb.RegistryTarget("self", c.reg)}
	c.mu.Lock()
	defer c.mu.Unlock()
	for id, w := range c.workers {
		if w.state == WorkerDrained {
			continue
		}
		targets = append(targets, tsdb.HTTPTarget(id, w.url+"/metrics",
			c.hc, c.cfg.HealthTimeout, "worker", id))
	}
	return targets
}

// startObs launches the collector and alerter loops on the lifecycle
// context; Shutdown's lifeStop ends them and obsWG.Wait reaps them.
func (c *Coordinator) startObs() {
	if c.collector != nil {
		c.obsWG.Add(1)
		go func() {
			defer c.obsWG.Done()
			c.collector.Run(c.lifeCtx)
		}()
	}
	if c.alerter != nil {
		c.obsWG.Add(1)
		go func() {
			defer c.obsWG.Done()
			c.alerter.Run(c.lifeCtx)
		}()
	}
}

// ScrapeObs runs one federated collection pass with an explicit clock
// (deterministic tests).
func (c *Coordinator) ScrapeObs(now time.Time) {
	c.collector.ScrapeOnce(context.Background(), now)
}

// EvaluateAlerts runs one alert evaluation pass with an explicit
// clock. No-op without configured rules.
func (c *Coordinator) EvaluateAlerts(now time.Time) {
	if c.alerter != nil {
		c.alerter.Evaluate(now)
	}
}

// TSDB exposes the embedded metrics store (for tests and embedding).
func (c *Coordinator) TSDB() *tsdb.DB { return c.tsdb }

// handleMetricsQuery implements GET /v1/metrics/query over the
// federated store. The response is annotated with per-target scrape
// health and the quarantined worker set, so a dashboard reading a
// merged series knows which workers' samples are stale rather than
// silently trusting the merge.
func (c *Coordinator) handleMetricsQuery(w http.ResponseWriter, r *http.Request) {
	statuses := c.collector.Statuses()
	var stale []string
	for _, st := range statuses {
		if !st.Healthy {
			stale = append(stale, st.Key)
		}
	}
	c.mu.Lock()
	var quarantined []string
	for id, wk := range c.workers {
		if wk.state == WorkerQuarantined {
			quarantined = append(quarantined, id)
		}
	}
	c.mu.Unlock()
	extra := map[string]any{"targets": statuses}
	if len(stale) > 0 {
		extra["stale_targets"] = stale
	}
	if len(quarantined) > 0 {
		extra["quarantined_workers"] = quarantined
	}
	tsdb.HandleQuery(c.tsdb, w, r, extra)
}

// handleAlerts implements GET /v1/alerts.
func (c *Coordinator) handleAlerts(w http.ResponseWriter, r *http.Request) {
	tsdb.HandleAlerts(c.alerter, w, r)
}

// codeRecorder captures the response status for metrics.
type codeRecorder struct {
	http.ResponseWriter
	code int
}

func (r *codeRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *codeRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// metricsMiddleware folds every request into the coordinator's HTTP
// duration histogram, labeled by normalized route and status code.
func (c *Coordinator) metricsMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &codeRecorder{ResponseWriter: w, code: http.StatusOK}
		next.ServeHTTP(rec, r)
		c.reg.Histogram("lvpc_http_request_duration_seconds",
			"HTTP request latency by route and status code.", obs.DefBuckets,
			"route", coordinatorRoute(r.URL.Path), "code", codeLabel(rec.code)).Observe(time.Since(start).Seconds())
	})
}

// coordinatorRoute normalizes a request path to its route pattern
// (bounded label cardinality; IDs collapse to placeholders).
func coordinatorRoute(path string) string {
	switch path {
	case "/v1/cluster/workers", "/v1/sweeps", "/v1/workloads",
		"/v1/alerts", "/v1/metrics/query", "/healthz", "/readyz", "/metrics":
		return path
	}
	switch {
	case strings.HasPrefix(path, "/v1/cluster/workers/"):
		return "/v1/cluster/workers/{id}"
	case strings.HasPrefix(path, "/v1/sweeps/"):
		return "/v1/sweeps/{id}"
	case strings.HasPrefix(path, "/debug/"):
		return "/debug"
	}
	return "other"
}

// codeLabel renders the status codes the coordinator API produces
// without a per-request allocation.
func codeLabel(code int) string {
	switch code {
	case 200:
		return "200"
	case 201:
		return "201"
	case 202:
		return "202"
	case 400:
		return "400"
	case 401:
		return "401"
	case 403:
		return "403"
	case 404:
		return "404"
	case 500:
		return "500"
	case 502:
		return "502"
	case 503:
		return "503"
	default:
		return "other"
	}
}
