package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"repro/internal/server"
	"repro/internal/tenant"
)

// waitSweepDone polls a coordinator until the sweep settles.
func waitSweepDone(t *testing.T, c *Coordinator, id string) SweepStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		st, ok := c.SweepStatusByID(id, true)
		if ok && st.State == "done" {
			return st
		}
		time.Sleep(10 * time.Millisecond)
	}
	st, _ := c.SweepStatusByID(id, true)
	t.Fatalf("sweep %s did not settle: %+v", id, st)
	return SweepStatus{}
}

// TestCoordinatorResumesOwedSweepAfterRestart is the coordinator
// durability acceptance: a sweep accepted with no workers available is
// abandoned by a hard shutdown, and a fresh coordinator on the same
// data dir owes it, re-dispatches it under the original sweep ID, and
// finishes it. A third generation then answers the same sweep entirely
// from the result warehouse without any worker at all.
func TestCoordinatorResumesOwedSweepAfterRestart(t *testing.T) {
	dir := t.TempDir()
	req := server.SweepRequest{
		Template: server.JobRequest{Insts: 20_000},
		Axes: server.SweepAxes{
			Workloads:  []string{"gcc2k"},
			Predictors: []string{"lvp", "sap"},
		},
	}
	cfg := fastConfig()
	cfg.DataDir = dir

	// Generation 1: accept the sweep with zero workers, then die before
	// any point dispatches.
	gen1, err := New(cfg)
	if err != nil {
		t.Fatalf("gen1: %v", err)
	}
	gen1.Start()
	st, err := gen1.StartSweep(context.Background(), req)
	if err != nil {
		t.Fatalf("gen1 sweep: %v", err)
	}
	if st.Pending != 2 {
		t.Fatalf("expected 2 pending points, got %+v", st)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	_ = gen1.Shutdown(ctx) // deadline forces abandonment of both points
	cancel()

	// Generation 2: same data dir, one live worker. The WAL must owe
	// the sweep under its original ID and finish it.
	wts, _ := newWorker(t)
	gen2, err := New(cfg)
	if err != nil {
		t.Fatalf("gen2: %v", err)
	}
	owed, ok := gen2.SweepStatusByID(st.ID, false)
	if !ok {
		t.Fatalf("gen2 does not remember sweep %s", st.ID)
	}
	if owed.Pending != 2 {
		t.Fatalf("gen2 should owe 2 points, got %+v", owed)
	}
	gen2.Start()
	if _, _, err := gen2.RegisterWorker(context.Background(), wts.URL); err != nil {
		t.Fatalf("register worker: %v", err)
	}
	final := waitSweepDone(t, gen2, st.ID)
	if final.Done != 2 || final.Failed != 0 {
		t.Fatalf("resumed sweep did not finish cleanly: %+v", final)
	}
	for _, pt := range final.Points {
		if pt.Result == nil {
			t.Fatalf("resumed point %s has no result", pt.SpecHash)
		}
	}
	ctx2, cancel2 := context.WithTimeout(context.Background(), 30*time.Second)
	if err := gen2.Shutdown(ctx2); err != nil {
		t.Fatalf("gen2 shutdown: %v", err)
	}
	cancel2()

	// Generation 3: no workers registered, yet the same sweep settles
	// at submit — every point comes out of the result warehouse.
	gen3, err := New(cfg)
	if err != nil {
		t.Fatalf("gen3: %v", err)
	}
	gen3.Start()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = gen3.Shutdown(ctx)
	})
	st3, err := gen3.StartSweep(context.Background(), req)
	if err != nil {
		t.Fatalf("gen3 sweep: %v", err)
	}
	if st3.State != "done" || st3.Cached != 2 {
		t.Fatalf("gen3 should answer wholly from the warehouse, got %+v", st3)
	}
	full, _ := gen3.SweepStatusByID(st3.ID, true)
	for i, pt := range full.Points {
		want := stripNondeterminism(*final.Points[i].Result)
		got := stripNondeterminism(*pt.Result)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("warehouse result for %s drifted:\n got %+v\nwant %+v", pt.SpecHash, got, want)
		}
	}
}

func authedPostJSON(t *testing.T, url, key string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(b))
	if err != nil {
		t.Fatalf("request: %v", err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-API-Key", key)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	return resp, out
}

// TestCoordinatorAuthAndTenantPropagation covers the multi-tenant
// cluster path: the coordinator's own API requires a key, per-tenant
// sweep caps apply, and dispatches reach a key-protected worker with
// the submitting tenant attributed via the proxy header.
func TestCoordinatorAuthAndTenantPropagation(t *testing.T) {
	wreg, err := tenant.New([]tenant.Tenant{
		{Name: "alice", APIKey: "alice-key"},
		{Name: "fleet", APIKey: "fleet-key", Proxy: true},
	})
	if err != nil {
		t.Fatalf("worker registry: %v", err)
	}
	wsrv, err := server.New(server.Config{
		Workers:      2,
		QueueDepth:   64,
		CacheSize:    256,
		DefaultInsts: 20_000,
		Tenants:      wreg,
		Logger:       quietLogger(),
	})
	if err != nil {
		t.Fatalf("worker: %v", err)
	}
	wsrv.Start()
	wts := httptest.NewServer(wsrv.Handler())
	t.Cleanup(func() {
		wts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = wsrv.Shutdown(ctx)
	})

	creg, err := tenant.New([]tenant.Tenant{
		{Name: "alice", APIKey: "alice-key", MaxSweepPoints: 4},
	})
	if err != nil {
		t.Fatalf("coordinator registry: %v", err)
	}
	cfg := fastConfig()
	cfg.Tenants = creg
	cfg.WorkerAPIKey = "fleet-key"
	coord, cts := newCoordinator(t, cfg)
	if _, _, err := coord.RegisterWorker(context.Background(), wts.URL); err != nil {
		t.Fatalf("register worker: %v", err)
	}

	req := server.SweepRequest{
		Template: server.JobRequest{Insts: 20_000},
		Axes: server.SweepAxes{
			Workloads:  []string{"gcc2k"},
			Predictors: []string{"lvp", "sap"},
		},
	}

	// No key: the coordinator API is closed.
	if resp, _ := postJSON(t, cts.URL+"/v1/sweeps", req); resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("keyless sweep: want 401, got %d", resp.StatusCode)
	}
	// Alice beyond her per-tenant expansion cap.
	if resp, body := authedPostJSON(t, cts.URL+"/v1/sweeps", "alice-key", sweep64()); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("over-cap sweep: want 400, got %d: %s", resp.StatusCode, body)
	}
	// Alice within her cap: accepted, attributed, and finished on a
	// worker that only admits authenticated, attributed work.
	resp, body := authedPostJSON(t, cts.URL+"/v1/sweeps", "alice-key", req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("sweep: want 202, got %d: %s", resp.StatusCode, body)
	}
	var st SweepStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("decode sweep status: %v", err)
	}
	if st.Tenant != "alice" {
		t.Fatalf("sweep tenant = %q, want alice", st.Tenant)
	}
	final := waitSweepDone(t, coord, st.ID)
	if final.Done != 2 || final.Failed != 0 {
		t.Fatalf("sweep did not finish cleanly: %+v", final)
	}

	// The worker attributed the dispatched jobs to alice, not to the
	// fleet credential.
	wreq, _ := http.NewRequest(http.MethodGet, wts.URL+"/v1/jobs?tenant=alice", nil)
	wreq.Header.Set("X-API-Key", "alice-key")
	wresp, err := http.DefaultClient.Do(wreq)
	if err != nil {
		t.Fatalf("worker job list: %v", err)
	}
	defer wresp.Body.Close()
	var list struct {
		Jobs []server.JobSummary `json:"jobs"`
	}
	if err := json.NewDecoder(wresp.Body).Decode(&list); err != nil {
		t.Fatalf("decode job list: %v", err)
	}
	if len(list.Jobs) != 2 {
		t.Fatalf("worker should hold 2 alice jobs, got %d", len(list.Jobs))
	}
	for _, j := range list.Jobs {
		if j.Tenant != "alice" {
			t.Fatalf("job %s attributed to %q, want alice", j.ID, j.Tenant)
		}
	}
}
