package cluster

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func metricsOf(t *testing.T, baseURL string) string {
	t.Helper()
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return string(b)
}

func wantMetricLine(t *testing.T, text, line, who string) {
	t.Helper()
	if !strings.Contains(text, line) {
		var got []string
		for _, l := range strings.Split(text, "\n") {
			if strings.Contains(l, "trace_artifact") {
				got = append(got, l)
			}
		}
		t.Fatalf("%s metrics missing %q; artifact lines:\n%s", who, line, strings.Join(got, "\n"))
	}
}

// TestSweepPreShipsTraceArtifacts pins the cluster's zero-regeneration
// property: for a sweep whose points share one workload spec, the
// coordinator records the stream exactly once, ships the artifact to
// every worker before dispatch, and no worker ever generates the
// stream live — every run on every worker replays the shipped
// recording.
func TestSweepPreShipsTraceArtifacts(t *testing.T) {
	workers := make([]*httptest.Server, 2)
	for i := range workers {
		workers[i], _ = newWorker(t)
	}
	_, coordTS := newCoordinator(t, fastConfig())
	for _, w := range workers {
		resp, body := postJSON(t, coordTS.URL+"/v1/cluster/workers", map[string]string{"url": w.URL})
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("register: %d: %s", resp.StatusCode, body)
		}
	}

	req := sweep64()
	req.Axes.Workloads = []string{"gcc2k"}
	req.Axes.Predictors = []string{"lvp", "sap", "cvp"}
	req.Axes.EntriesPer = nil
	req.Axes.Seeds = nil
	resp, body := postJSON(t, coordTS.URL+"/v1/sweeps", req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("sweep submit: %d: %s", resp.StatusCode, body)
	}
	var st SweepStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(120 * time.Second)
	for {
		var cur SweepStatus
		getJSON(t, coordTS.URL+"/v1/sweeps/"+st.ID, &cur)
		if cur.State == "done" {
			if cur.Failed != 0 || cur.Done != 3 {
				t.Fatalf("sweep finished with done=%d failed=%d", cur.Done, cur.Failed)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("sweep did not finish: %+v", cur)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The coordinator recorded the single distinct stream once and
	// shipped it to both workers.
	coordText := metricsOf(t, coordTS.URL)
	wantMetricLine(t, coordText, "lvpc_trace_artifacts_generated_total 1", "coordinator")
	wantMetricLine(t, coordText, "lvpc_trace_artifacts_shipped_total 2", "coordinator")

	// No worker generated the stream live; each received exactly the
	// shipped artifact. (Per-worker run counts depend on dispatch
	// placement, so only generation and receipt are pinned.)
	for i, w := range workers {
		text := metricsOf(t, w.URL)
		who := "worker " + strings.Repeat("I", i+1)
		wantMetricLine(t, text, "lvpd_trace_artifact_generated_total 0", who)
		wantMetricLine(t, text, "lvpd_trace_artifact_received_total 1", who)
	}
}
