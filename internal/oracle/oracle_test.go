package oracle

import (
	"testing"

	"repro/internal/trace"
)

func TestClassifySingleKernels(t *testing.T) {
	cases := []struct {
		kind string
		want Pattern
	}{
		{"const", Pattern1},    // PC → value
		{"stride", Pattern2},   // PC → address
		{"ctxvalue", Pattern3}, // context-dependent
		{"chase", Pattern3},
		{"random", Pattern3},
	}
	for _, tc := range cases {
		gen := trace.NewSingleKernel(tc.kind, 50_000, 7)
		c := Classify(gen, 0)
		if c.TotalLoads == 0 {
			t.Fatalf("%s: no loads", tc.kind)
		}
		if f := c.Fraction(tc.want); f < 0.5 {
			t.Errorf("%s: fraction in %v = %.2f, want >= 0.5 (got P1=%.2f P2=%.2f P3=%.2f)",
				tc.kind, tc.want, f, c.Fraction(Pattern1), c.Fraction(Pattern2), c.Fraction(Pattern3))
		}
	}
}

func TestClassifyExclusiveAndComplete(t *testing.T) {
	w, _ := trace.ByName("gcc2k")
	c := Classify(w.Build(50_000), 0)
	sum := c.Dynamic[Pattern1] + c.Dynamic[Pattern2] + c.Dynamic[Pattern3]
	if sum != c.TotalLoads {
		t.Errorf("patterns not exhaustive: %d classified of %d loads", sum, c.TotalLoads)
	}
	if c.StaticLoads == 0 {
		t.Error("no static loads recorded")
	}
}

func TestPriorityOrdering(t *testing.T) {
	// A load that is BOTH value-stable and address-stable must land in
	// Pattern-1 (the patterns are ordered and exclusive).
	gen := trace.NewSingleKernel("const", 20_000, 7)
	c := Classify(gen, 0)
	if c.Fraction(Pattern1) < 0.9 {
		t.Errorf("const loads: Pattern-1 fraction = %.2f, want >= 0.9", c.Fraction(Pattern1))
	}
	if c.Dynamic[Pattern2] > c.Dynamic[Pattern1]/10 {
		t.Error("value-stable loads leaked into Pattern-2 despite priority")
	}
}

func TestListing1IsPattern1(t *testing.T) {
	// Listing-1 inner loads always return 0: highest-priority pattern
	// even though the addresses also stride (Section IV-A).
	c := Classify(trace.NewListing1(30_000, 16), 0)
	if f := c.Fraction(Pattern1); f < 0.5 {
		t.Errorf("Listing-1 Pattern-1 fraction = %.2f (P2=%.2f P3=%.2f)",
			f, c.Fraction(Pattern2), c.Fraction(Pattern3))
	}
}

func TestAggregateBreakdownRoughlyEven(t *testing.T) {
	// Figure 2's headline: across the mix the three patterns are
	// "almost evenly split". Allow a generous band per pattern.
	var total [4]uint64
	var loads uint64
	for _, w := range trace.Workloads() {
		c := Classify(w.Build(20_000), 0)
		for p := Pattern1; p <= Pattern3; p++ {
			total[p] += c.Dynamic[p]
		}
		loads += c.TotalLoads
	}
	for p := Pattern1; p <= Pattern3; p++ {
		f := float64(total[p]) / float64(loads)
		if f < 0.10 || f > 0.65 {
			t.Errorf("%v aggregate fraction = %.2f, outside [0.10, 0.65]", p, f)
		}
	}
}

func TestPatternString(t *testing.T) {
	if Pattern1.String() == "" || Pattern2.String() == "" || Pattern3.String() == "" {
		t.Error("pattern names empty")
	}
	if Pattern(9).String() != "Pattern-?" {
		t.Error("unknown pattern should format as Pattern-?")
	}
}

func TestFractionEmpty(t *testing.T) {
	var c Classification
	if c.Fraction(Pattern1) != 0 {
		t.Error("empty classification fraction should be 0")
	}
}
