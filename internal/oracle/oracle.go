// Package oracle implements the paper's infinite-resource load
// classification (Section IV-A, Figure 2): every static load is placed
// in exactly one of three ordered, exclusive patterns using perfect
// memory of past values and addresses:
//
//	Pattern-1 (LVP proxy): the load PC highly correlates with the value
//	Pattern-2 (SAP proxy): the load PC highly correlates with the address
//	Pattern-3 (CVP/CAP proxy): everything else
//
// The ordering encodes the paper's preference: value prediction before
// address prediction (no cache access needed) and context-unaware
// before context-aware (better storage efficiency).
package oracle

import "repro/internal/trace"

// Pattern is the oracle class of a load.
type Pattern uint8

// The three patterns of Figure 2.
const (
	Pattern1 Pattern = iota + 1 // PC → value correlation (LVP proxy)
	Pattern2                    // PC → address correlation (SAP proxy)
	Pattern3                    // all other loads (CVP/CAP proxy)
)

// String implements fmt.Stringer.
func (p Pattern) String() string {
	switch p {
	case Pattern1:
		return "Pattern-1 (LVP)"
	case Pattern2:
		return "Pattern-2 (SAP)"
	case Pattern3:
		return "Pattern-3 (CVP/CAP)"
	}
	return "Pattern-?"
}

// DefaultThreshold is the correlation fraction above which a static
// load counts as "highly correlated".
const DefaultThreshold = 0.90

type pcState struct {
	count    uint64
	lastVal  uint64
	valHits  uint64
	lastAddr uint64
	stride   int64
	addrHits uint64
}

// Classification aggregates dynamic load counts per pattern.
type Classification struct {
	Dynamic     [4]uint64 // indexed by Pattern; [0] unused
	StaticLoads int
	TotalLoads  uint64
}

// Fraction returns the share of dynamic loads in pattern p.
func (c Classification) Fraction(p Pattern) float64 {
	if c.TotalLoads == 0 {
		return 0
	}
	return float64(c.Dynamic[p]) / float64(c.TotalLoads)
}

// Classify consumes gen and classifies every static load with perfect
// (infinite-resource) last-value and stride-address predictors, then
// attributes each static load's dynamic instances to its pattern.
// threshold ≤ 0 selects DefaultThreshold.
func Classify(gen trace.Generator, threshold float64) Classification {
	if threshold <= 0 {
		threshold = DefaultThreshold
	}
	states := make(map[uint64]*pcState)
	var in trace.Inst
	for gen.Next(&in) {
		if in.Op != trace.OpLoad {
			continue
		}
		st := states[in.PC]
		if st == nil {
			st = &pcState{}
			states[in.PC] = st
		}
		if st.count > 0 {
			if in.Value == st.lastVal {
				st.valHits++
			}
			newStride := int64(in.Addr) - int64(st.lastAddr)
			if st.count > 1 && newStride == st.stride {
				st.addrHits++
			}
			st.stride = newStride
		}
		st.lastVal = in.Value
		st.lastAddr = in.Addr
		st.count++
	}

	var c Classification
	c.StaticLoads = len(states)
	for _, st := range states {
		c.TotalLoads += st.count
		c.Dynamic[classify(st, threshold)] += st.count
	}
	return c
}

func classify(st *pcState, threshold float64) Pattern {
	if st.count < 2 {
		return Pattern3
	}
	denom := float64(st.count - 1)
	if float64(st.valHits)/denom >= threshold {
		return Pattern1
	}
	if st.count >= 3 && float64(st.addrHits)/float64(st.count-2) >= threshold {
		return Pattern2
	}
	return Pattern3
}
