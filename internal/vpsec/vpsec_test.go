package vpsec

import (
	"testing"

	"repro/internal/core"
)

func lookupWith(preds map[core.Component]core.Prediction) *core.Lookup {
	var lk core.Lookup
	for comp, pr := range preds {
		lk.Confident.Add(comp)
		lk.Preds[comp] = pr
	}
	return &lk
}

func val(v uint64) core.Prediction {
	return core.Prediction{Kind: core.KindValue, Value: v}
}

func addr(a uint64) core.Prediction {
	return core.Prediction{Kind: core.KindAddress, Addr: a, Size: 8}
}

func TestQuorumOverrulesFaultedValue(t *testing.T) {
	d := New(DefaultConfig())
	lk := lookupWith(map[core.Component]core.Prediction{
		core.CompLVP: val(100),
		core.CompCVP: val(100),
	})
	v := d.Check(lk, 100^(1<<17), 8, nil)
	if !v.Faulted || v.Corrected != 100 || v.Witnesses != 2 {
		t.Errorf("verdict = %+v, want faulted with correction 100", v)
	}
}

func TestSingleWitnessInsufficient(t *testing.T) {
	d := New(DefaultConfig())
	lk := lookupWith(map[core.Component]core.Prediction{core.CompLVP: val(100)})
	if v := d.Check(lk, 999, 8, nil); v.Faulted {
		t.Error("one witness overruled the datapath")
	}
}

func TestAgreementWithObservedIsClean(t *testing.T) {
	d := New(DefaultConfig())
	lk := lookupWith(map[core.Component]core.Prediction{
		core.CompLVP: val(100),
		core.CompCVP: val(100),
	})
	if v := d.Check(lk, 100, 8, nil); v.Faulted {
		t.Error("flagged a clean load")
	}
}

func TestDisagreeingWitnessesNoQuorum(t *testing.T) {
	d := New(DefaultConfig())
	lk := lookupWith(map[core.Component]core.Prediction{
		core.CompLVP: val(100),
		core.CompCVP: val(200),
	})
	if v := d.Check(lk, 300, 8, nil); v.Faulted {
		t.Error("disagreeing predictors formed a quorum")
	}
}

func TestAddressWitnessesVoteThroughCache(t *testing.T) {
	d := New(DefaultConfig())
	lk := lookupWith(map[core.Component]core.Prediction{
		core.CompSAP: addr(0x1000),
		core.CompCAP: addr(0x1000),
	})
	resolve := func(a uint64, size uint8) (uint64, bool) { return 777, true }
	v := d.Check(lk, 776, 8, resolve)
	if !v.Faulted || v.Corrected != 777 {
		t.Errorf("cache witnesses did not overrule: %+v", v)
	}
}

func TestNilLookupClean(t *testing.T) {
	d := New(DefaultConfig())
	if v := d.Check(nil, 1, 8, nil); v.Faulted {
		t.Error("nil lookup flagged")
	}
}

func TestInjectorRate(t *testing.T) {
	inj := NewInjector(10, 7)
	faults := 0
	for i := 0; i < 100000; i++ {
		v, hit := inj.Corrupt(42)
		if hit {
			faults++
			if v == 42 {
				t.Fatal("fault did not change the value")
			}
		} else if v != 42 {
			t.Fatal("clean path changed the value")
		}
	}
	if faults < 8000 || faults > 12000 {
		t.Errorf("fault count %d for 1-in-10 rate over 100k", faults)
	}
	clean := NewInjector(0, 7)
	if _, hit := clean.Corrupt(42); hit {
		t.Error("rate-0 injector faulted")
	}
}

func TestStatsScoring(t *testing.T) {
	d := New(DefaultConfig())
	lk := lookupWith(map[core.Component]core.Prediction{
		core.CompLVP: val(100),
		core.CompCVP: val(100),
	})
	// Detected + corrected fault.
	d.Record(d.Check(lk, 101, 8, nil), true, 100)
	// Missed fault (no quorum).
	single := lookupWith(map[core.Component]core.Prediction{core.CompLVP: val(100)})
	d.Record(d.Check(single, 101, 8, nil), true, 100)
	// Clean load, clean verdict.
	d.Record(d.Check(lk, 100, 8, nil), false, 100)
	// Clean load flagged: the predictors are stale, the load is right.
	stale := lookupWith(map[core.Component]core.Prediction{
		core.CompLVP: val(5),
		core.CompCVP: val(5),
	})
	d.Record(d.Check(stale, 6, 8, nil), false, 6)

	s := d.Stats()
	if s.Checked != 4 || s.FaultsInjected != 2 || s.Detected != 1 ||
		s.Corrected != 1 || s.Missed != 1 || s.FalsePositives != 1 {
		t.Errorf("stats = %+v", s)
	}
	if s.DetectionRate() != 0.5 {
		t.Errorf("detection rate = %v", s.DetectionRate())
	}
	if s.FalsePositiveRate() != 0.5 {
		t.Errorf("false positive rate = %v", s.FalsePositiveRate())
	}
}

// End-to-end: drive the composite over a predictable stream, inject
// faults, and require high detection with near-zero false positives.
func TestVPsecEndToEnd(t *testing.T) {
	comp := core.NewComposite(core.CompositeConfig{
		Entries: core.HomogeneousEntries(256), Seed: 1,
	})
	det := New(DefaultConfig())
	inj := NewInjector(20, 99)

	mem := map[uint64]uint64{}
	resolve := func(a uint64, size uint8) (uint64, bool) {
		v, ok := mem[a]
		return v, ok
	}
	// 16 stable loads (constant value at constant address).
	type ld struct{ pc, addrV, value uint64 }
	loads := make([]ld, 16)
	for i := range loads {
		loads[i] = ld{pc: 0x1000 + uint64(i)*4, addrV: 0x8000 + uint64(i)*64, value: 0xC0DE + uint64(i)}
		mem[loads[i].addrV] = loads[i].value
	}
	for round := 0; round < 400; round++ {
		for _, l := range loads {
			lk := comp.Probe(core.Probe{PC: l.pc})
			observed, injected := inj.Corrupt(l.value)
			if round > 200 {
				// Score only after the predictors are warm.
				det.Record(det.Check(&lk, observed, 8, resolve), injected, l.value)
			}
			// Train with the architecturally correct value (the fault
			// hits the consumer datapath, not the training path, in
			// this model).
			o := core.Outcome{PC: l.pc, Addr: l.addrV, Value: l.value, Size: 8}
			comp.Train(o, &lk, core.Validate(&lk, o, resolve))
		}
	}
	s := det.Stats()
	if s.FaultsInjected == 0 {
		t.Fatal("no faults injected")
	}
	if rate := s.DetectionRate(); rate < 0.95 {
		t.Errorf("detection rate %.3f, want >= 0.95 (stats %+v)", rate, s)
	}
	if fp := s.FalsePositiveRate(); fp > 0.001 {
		t.Errorf("false positive rate %.4f, want <= 0.1%%", fp)
	}
	if s.Corrected < s.Detected*9/10 {
		t.Errorf("corrections %d of %d detections", s.Corrected, s.Detected)
	}
}
