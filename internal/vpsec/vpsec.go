// Package vpsec implements the fault-attack countermeasure the paper
// cites in footnote 4 (Sheikh, Cammarota & Ruan, HOST 2018): when a
// load's value may have been corrupted by a hardware fault attack, the
// trust model can be *reversed* — a value on which multiple
// independently-trained, highly-confident predictors agree is trusted
// over the value the (possibly faulted) load returned.
//
// The detector consumes the composite predictor's per-load Lookup: if
// at least Quorum confident value predictions agree with each other but
// disagree with the loaded value, the load is flagged as faulted and
// the agreed value offered as the correction. Address predictions
// resolve through the cache probe, so a fault on the load's datapath
// (not the cache array) leaves them usable as independent witnesses.
package vpsec

import "repro/internal/core"

// Config parameterizes the detector.
type Config struct {
	// Quorum is the number of agreeing confident predictions required
	// to overrule a loaded value (2 in the VPsec design: a single
	// predictor is not trusted against the datapath).
	Quorum int
}

// DefaultConfig returns the VPsec quorum of two witnesses.
func DefaultConfig() Config { return Config{Quorum: 2} }

// Verdict is the detector's decision for one load.
type Verdict struct {
	// Faulted reports that the loaded value is untrusted: a quorum of
	// predictors agreed on a different value.
	Faulted bool

	// Corrected is the quorum's value, valid when Faulted.
	Corrected uint64

	// Witnesses is the number of confident predictions that voted for
	// Corrected.
	Witnesses int
}

// Detector accumulates detection statistics.
type Detector struct {
	cfg   Config
	stats Stats
}

// Stats counts detector outcomes against ground truth (the injector
// knows which loads it faulted).
type Stats struct {
	Checked        uint64 // loads examined
	FaultsInjected uint64
	Detected       uint64 // injected faults flagged
	Corrected      uint64 // detected faults whose correction was exact
	Missed         uint64 // injected faults not flagged
	FalsePositives uint64 // clean loads flagged
}

// DetectionRate returns detected/injected.
func (s Stats) DetectionRate() float64 {
	if s.FaultsInjected == 0 {
		return 1
	}
	return float64(s.Detected) / float64(s.FaultsInjected)
}

// FalsePositiveRate returns false positives per checked clean load.
func (s Stats) FalsePositiveRate() float64 {
	clean := s.Checked - s.FaultsInjected
	if clean == 0 {
		return 0
	}
	return float64(s.FalsePositives) / float64(clean)
}

// New builds a detector.
func New(cfg Config) *Detector {
	if cfg.Quorum < 2 {
		cfg.Quorum = 2
	}
	return &Detector{cfg: cfg}
}

// Check renders a verdict for one load: lk is the composite's lookup at
// fetch, observed the (possibly faulted) value the load returned, and
// resolve reads the cache for address predictions.
func (d *Detector) Check(lk *core.Lookup, observed uint64, size uint8, resolve core.AddrResolver) Verdict {
	if lk == nil {
		return Verdict{}
	}
	// Collect the speculative values of every confident component.
	votes := map[uint64]int{}
	for comp := core.Component(0); comp < core.NumComponents; comp++ {
		if !lk.Confident.Has(comp) {
			continue
		}
		pr := lk.Preds[comp]
		switch pr.Kind {
		case core.KindValue:
			votes[pr.Value]++
		case core.KindAddress:
			if resolve == nil {
				continue
			}
			if v, ok := resolve(pr.Addr, size); ok {
				votes[v]++
			}
		}
	}
	best, n := uint64(0), 0
	for v, c := range votes {
		if c > n {
			best, n = v, c
		}
	}
	if n >= d.cfg.Quorum && best != observed {
		return Verdict{Faulted: true, Corrected: best, Witnesses: n}
	}
	return Verdict{}
}

// Record scores a verdict against ground truth.
func (d *Detector) Record(v Verdict, injected bool, trueValue uint64) {
	d.stats.Checked++
	if injected {
		d.stats.FaultsInjected++
		if v.Faulted {
			d.stats.Detected++
			if v.Corrected == trueValue {
				d.stats.Corrected++
			}
		} else {
			d.stats.Missed++
		}
		return
	}
	if v.Faulted {
		d.stats.FalsePositives++
	}
}

// Stats returns a snapshot of the counters.
func (d *Detector) Stats() Stats { return d.stats }

// Injector flips bits in load values at a configured rate, providing
// the ground truth the detector is scored against. It models a
// fault-injection attack on the load datapath.
type Injector struct {
	rng  *core.XorShift64
	rate uint32 // 1-in-rate loads faulted; 0 disables
}

// NewInjector builds an injector faulting one in rate loads.
func NewInjector(rate uint32, seed uint64) *Injector {
	return &Injector{rng: core.NewXorShift64(seed | 1), rate: rate}
}

// Corrupt possibly flips a random bit of v, reporting whether it did.
func (i *Injector) Corrupt(v uint64) (uint64, bool) {
	if i.rate == 0 || !i.rng.Chance(i.rate) {
		return v, false
	}
	bit := uint(i.rng.Intn(64))
	return v ^ (1 << bit), true
}
