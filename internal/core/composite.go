package core

// Composite is the paper's composite load value predictor (Section V):
// all four component predictors train in parallel and any confident
// component may deliver a prediction, with a fixed priority when several
// are confident. Optional filters and optimizations — an accuracy
// monitor, smart training, and table fusion — refine the base design.
type Composite struct {
	comps [NumComponents]Predictor
	am    AccuracyMonitor
	smart bool
	fuse  *Fusion
	pool  *SharedPool

	stats CompositeStats
}

// CompositeConfig configures a composite predictor. A zero entry count
// omits that component entirely (used both by the heterogeneous sizing
// sweep of Table VI and to model single-component predictors for
// Figure 3).
type CompositeConfig struct {
	// Entries holds the table entry count per component, indexed by
	// Component. For CVP this is the sum across its three tables.
	Entries [NumComponents]int

	// Seed drives every probabilistic choice (FPC updates, victim
	// selection). Runs with equal seeds are bit-identical.
	Seed uint64

	// AM, when non-nil, squashes predictions from unreliable components
	// (Section V-B).
	AM AccuracyMonitor

	// SmartTraining enables the selective training policy of Section
	// V-D.
	SmartTraining bool

	// Fusion enables dynamic table fusion (Section V-E). It requires a
	// homogeneous Entries allocation.
	Fusion *FusionConfig

	// ValuePoolSlots, when positive, switches LVP and CVP to the
	// decoupled shared value array of Section III-B: their entries
	// store short slot indices into one pool of this many 64-bit
	// values. Shared-array mode is incompatible with table fusion
	// (fused ways would mix pooled and direct payload layouts).
	ValuePoolSlots int
}

// HomogeneousEntries returns a config helper: every component gets
// perComponent entries.
func HomogeneousEntries(perComponent int) [NumComponents]int {
	var e [NumComponents]int
	for i := range e {
		e[i] = perComponent
	}
	return e
}

// NewComposite builds a composite predictor from cfg.
func NewComposite(cfg CompositeConfig) *Composite {
	if cfg.ValuePoolSlots > 0 && cfg.Fusion != nil {
		panic("core: shared value arrays are incompatible with table fusion")
	}
	c := &Composite{am: cfg.AM, smart: cfg.SmartTraining}
	seed := cfg.Seed
	if cfg.ValuePoolSlots > 0 {
		c.pool = NewSharedPool(cfg.ValuePoolSlots)
	}
	if cfg.Entries[CompLVP] > 0 {
		if c.pool != nil {
			c.comps[CompLVP] = NewLVPPooled(cfg.Entries[CompLVP], SplitMix64(seed^0x11), c.pool)
		} else {
			c.comps[CompLVP] = NewLVP(cfg.Entries[CompLVP], SplitMix64(seed^0x11))
		}
	}
	if cfg.Entries[CompSAP] > 0 {
		c.comps[CompSAP] = NewSAP(cfg.Entries[CompSAP], SplitMix64(seed^0x22))
	}
	if cfg.Entries[CompCVP] > 0 {
		if c.pool != nil {
			c.comps[CompCVP] = NewCVPPooled(cfg.Entries[CompCVP], SplitMix64(seed^0x33), c.pool)
		} else {
			c.comps[CompCVP] = NewCVP(cfg.Entries[CompCVP], SplitMix64(seed^0x33))
		}
	}
	if cfg.Entries[CompCAP] > 0 {
		c.comps[CompCAP] = NewCAP(cfg.Entries[CompCAP], SplitMix64(seed^0x44))
	}
	if cfg.Fusion != nil {
		c.fuse = newFusion(*cfg.Fusion, c)
	}
	return c
}

// Pool returns the shared value array, or nil when the composite uses
// direct per-entry values.
func (c *Composite) Pool() *SharedPool { return c.pool }

// selectionOrder is the priority when multiple components are confident
// (Section V-A): value predictors before address predictors (no
// speculative cache access needed), and context-aware before
// context-agnostic within each group (for accuracy).
var selectionOrder = [NumComponents]Component{CompCVP, CompLVP, CompCAP, CompSAP}

// trainingOrder is smart training's cost heuristic (Section V-D): value
// before address, context-agnostic before context-aware.
var trainingOrder = [NumComponents]Component{CompLVP, CompCVP, CompSAP, CompCAP}

// Lookup is the result of probing all components for one fetched load.
// The pipeline carries it with the load and hands it back at validation
// and training time.
type Lookup struct {
	// Preds holds each confident component's prediction; only entries
	// for components in Confident are meaningful.
	Preds [NumComponents]Prediction

	// Confident is the set of components whose per-entry confidence
	// cleared their threshold, before any AM squash.
	Confident ComponentSet

	// Allowed is Confident minus components squashed by the accuracy
	// monitor or lent out by table fusion.
	Allowed ComponentSet

	// Chosen is the component whose prediction is delivered, valid only
	// when Used.
	Chosen Component

	// Used reports whether a prediction is delivered for this load.
	Used bool
}

// Prediction returns the delivered prediction, if any.
func (lk *Lookup) Prediction() (Prediction, bool) {
	if !lk.Used {
		return Prediction{}, false
	}
	return lk.Preds[lk.Chosen], true
}

// Probe consults every component and applies AM filtering and selection
// priority. Call it once per fetched load.
func (c *Composite) Probe(p Probe) Lookup {
	var lk Lookup
	for comp := Component(0); comp < NumComponents; comp++ {
		pred := c.comps[comp]
		if pred == nil || (c.fuse != nil && c.fuse.donated(comp)) {
			continue
		}
		pr, ok := pred.Predict(p)
		if !ok {
			continue
		}
		lk.Preds[comp] = pr
		lk.Confident.Add(comp)
		if c.am == nil || c.am.Allow(comp, p.PC) {
			lk.Allowed.Add(comp)
		}
	}
	for _, comp := range selectionOrder {
		if lk.Allowed.Has(comp) {
			lk.Chosen = comp
			lk.Used = true
			break
		}
	}
	c.stats.recordProbe(&lk)
	return lk
}

// ProbeBatch computes the Lookups that Probe would return for a batch
// of upcoming loads against the predictor's *current* state, without
// recording any probe statistics. Components are walked in the outer
// loop (component-major) so each predictor's tables and code stay hot
// across the batch — Predict is side-effect free for every component,
// so the reordering is unobservable.
//
// A batched Lookup is only valid while the predictor state is
// unchanged: any intervening Train or Instret may alter what Probe
// would return. The caller is responsible for discarding stale batches;
// CommitProbe turns a still-valid batched Lookup into the equivalent of
// a Probe call.
func (c *Composite) ProbeBatch(ps []Probe, out []Lookup) {
	for i := range out {
		out[i] = Lookup{}
	}
	for comp := Component(0); comp < NumComponents; comp++ {
		pred := c.comps[comp]
		if pred == nil || (c.fuse != nil && c.fuse.donated(comp)) {
			continue
		}
		for i := range ps {
			pr, ok := pred.Predict(ps[i])
			if !ok {
				continue
			}
			out[i].Preds[comp] = pr
			out[i].Confident.Add(comp)
			if c.am == nil || c.am.Allow(comp, ps[i].PC) {
				out[i].Allowed.Add(comp)
			}
		}
	}
	for i := range out {
		for _, comp := range selectionOrder {
			if out[i].Allowed.Has(comp) {
				out[i].Chosen = comp
				out[i].Used = true
				break
			}
		}
	}
}

// CommitProbe records a Lookup previously computed by ProbeBatch as
// this load's probe. Probe(p) and ProbeBatch(...)+CommitProbe produce
// bit-identical state when no Train or Instret intervened between the
// batch computation and the commit.
func (c *Composite) CommitProbe(lk *Lookup) {
	c.stats.recordProbe(lk)
}

// Train updates predictor state for an executed load. lk must be the
// Lookup captured at fetch (nil for loads with no lookup, treated as an
// empty lookup), and v the Validation of its confident predictions
// (see Validate).
func (c *Composite) Train(o Outcome, lk *Lookup, v Validation) {
	var empty Lookup
	if lk == nil {
		lk = &empty
	}

	// A flush happens when the *used* prediction delivered a value that
	// turned out wrong. A used address prediction whose probe missed
	// never speculated, so it cannot flush.
	flush := lk.Used && v.Valued.Has(lk.Chosen) && !v.Correct.Has(lk.Chosen)
	if c.am != nil && v.Valued != 0 {
		// Accuracy monitors track delivered speculative values only:
		// probe misses are non-events, not mispredictions.
		c.am.Record(o.PC, v.Valued, v.Correct, flush)
	}
	if c.fuse != nil {
		c.fuse.observe(lk)
	}
	c.stats.recordTrainOutcome(lk, v, flush)

	if !c.smart || lk.Confident == 0 {
		// Train-all policy: every component observes every executed
		// load, minimizing time to a confident prediction.
		n := 0
		for comp := Component(0); comp < NumComponents; comp++ {
			if c.trainable(comp) {
				c.comps[comp].Train(o)
				n++
			}
		}
		c.stats.recordTrained(n)
		return
	}

	// Smart training (Section V-D): train every component whose
	// prediction disagreed with the outcome (to encourage eviction of
	// the bad entry), plus the lowest-cost component among those that
	// predicted consistently. Consistent-but-unchosen SAP entries are
	// invalidated: without training, the stored stride is broken
	// anyway.
	var toTrain ComponentSet
	for comp := Component(0); comp < NumComponents; comp++ {
		if lk.Confident.Has(comp) && !v.Consistent.Has(comp) {
			toTrain.Add(comp)
		}
	}
	var best Component
	haveBest := false
	for _, comp := range trainingOrder {
		if lk.Confident.Has(comp) && v.Consistent.Has(comp) {
			best = comp
			haveBest = true
			break
		}
	}
	if haveBest {
		toTrain.Add(best)
		if best != CompSAP && lk.Confident.Has(CompSAP) && v.Consistent.Has(CompSAP) && c.trainable(CompSAP) {
			c.comps[CompSAP].Invalidate(o)
			c.stats.SAPInvalidations++
		}
	}
	n := 0
	for comp := Component(0); comp < NumComponents; comp++ {
		if toTrain.Has(comp) && c.trainable(comp) {
			c.comps[comp].Train(o)
			n++
		}
	}
	c.stats.recordTrained(n)
}

// trainable reports whether a component exists and currently owns its
// storage (not lent out by fusion).
func (c *Composite) trainable(comp Component) bool {
	return c.comps[comp] != nil && (c.fuse == nil || !c.fuse.donated(comp))
}

// Instret advances retired-instruction-driven epochs (AM and fusion).
func (c *Composite) Instret(n uint64) {
	if c.am != nil {
		c.am.Instret(n)
	}
	if c.fuse != nil {
		c.fuse.instret(n)
	}
}

// Component returns the underlying component predictor, or nil when the
// configuration omits it.
func (c *Composite) Component(comp Component) Predictor { return c.comps[comp] }

// Storage sums the storage of all present components.
func (c *Composite) Storage() Storage {
	bits, entries := 0, 0
	for _, p := range c.comps {
		if p == nil {
			continue
		}
		s := p.Storage()
		entries += s.Entries
		bits += s.Bits()
	}
	if entries == 0 {
		return Storage{}
	}
	return Storage{Entries: entries, BitsPerItem: bits / entries}
}

// StorageKB returns the exact total storage in kilobytes, including
// the shared value array when present.
func (c *Composite) StorageKB() float64 {
	bits := 0
	for _, p := range c.comps {
		if p != nil {
			bits += p.Storage().Bits()
		}
	}
	if c.pool != nil {
		bits += c.pool.StorageBits()
	}
	return float64(bits) / 8 / 1024
}

// Stats returns a snapshot of the composite's counters.
func (c *Composite) Stats() CompositeStats { return c.stats }

// AM returns the attached accuracy monitor, or nil (for telemetry;
// composite behaviour is only reachable through Probe/Train).
func (c *Composite) AM() AccuracyMonitor { return c.am }

// ResetState clears all dynamic predictor, AM, and fusion state.
func (c *Composite) ResetState() {
	for _, p := range c.comps {
		if p != nil {
			p.ResetState()
		}
	}
	if c.am != nil {
		c.am.Reset()
	}
	if c.fuse != nil {
		c.fuse.reset()
	}
	c.stats = CompositeStats{}
}

// AddrResolver resolves a predicted address to the speculative value the
// pipeline would obtain from the data cache, reporting ok=false when the
// probe misses (no speculative value is produced).
type AddrResolver func(addr uint64, size uint8) (uint64, bool)

// Validation classifies each confident component's prediction for an
// executed load. The three sets answer different questions:
//
//   - Consistent: did the prediction agree with the outcome (value
//     match for value predictors, address match for address
//     predictors)? Drives smart training.
//   - Valued: did the prediction deliver a speculative value (value
//     predictions always do; address predictions only when the data
//     cache probe hits)? Only valued predictions can speculate — and
//     only they are accountable to the accuracy monitors.
//   - Correct: valued and the speculative value matched the load's
//     value. A used-but-incorrect prediction triggers a flush. Note an
//     address can be Consistent yet not Correct when a conflicting
//     store changed the data (Section III-A: "checking the address is
//     insufficient").
type Validation struct {
	Consistent ComponentSet
	Valued     ComponentSet
	Correct    ComponentSet
}

// Validate computes the Validation of every confident component in lk
// against outcome o, resolving address predictions through resolve.
func Validate(lk *Lookup, o Outcome, resolve AddrResolver) Validation {
	var v Validation
	if lk == nil {
		return v
	}
	for comp := Component(0); comp < NumComponents; comp++ {
		if !lk.Confident.Has(comp) {
			continue
		}
		pr := lk.Preds[comp]
		switch pr.Kind {
		case KindValue:
			v.Valued.Add(comp)
			if pr.Value == o.Value {
				v.Consistent.Add(comp)
				v.Correct.Add(comp)
			}
		case KindAddress:
			if pr.Addr == o.Addr&vaMask {
				v.Consistent.Add(comp)
			}
			if resolve == nil {
				break
			}
			if sv, ok := resolve(pr.Addr, o.Size); ok {
				v.Valued.Add(comp)
				if pr.Addr == o.Addr&vaMask && sv == o.Value {
					v.Correct.Add(comp)
				}
			}
		}
	}
	return v
}

// CompositeStats aggregates the composite-level counters behind Figures
// 4, 6 and 7.
type CompositeStats struct {
	// Probes is the number of fetched loads presented to the composite.
	Probes uint64

	// PredictedLoads counts loads with at least one confident component.
	PredictedLoads uint64

	// UsedPredictions counts loads where a prediction was delivered
	// (confident and not AM-squashed).
	UsedPredictions uint64

	// ConfidentHistogram[k] counts predicted loads with exactly k
	// confident components (k in 1..4; index 0 unused).
	ConfidentHistogram [NumComponents + 1]uint64

	// SoleConfident[c] counts predicted loads where component c was the
	// only confident component.
	SoleConfident [NumComponents]uint64

	// UsedBy[c] counts delivered predictions chosen from component c.
	UsedBy [NumComponents]uint64

	// CorrectBy / IncorrectBy tally per-component validation results
	// over confident predictions that delivered a speculative value
	// (used or not).
	CorrectBy   [NumComponents]uint64
	IncorrectBy [NumComponents]uint64

	// UsedMispredictions counts delivered predictions that validated
	// incorrect and triggered a flush.
	UsedMispredictions uint64

	// TrainEvents and TrainedComponents measure training work: the
	// average number of predictors updated per executed load is
	// TrainedComponents / TrainEvents (Figure 7).
	TrainEvents       uint64
	TrainedComponents uint64

	// SAPInvalidations counts smart training's SAP entry invalidations.
	SAPInvalidations uint64
}

func (s *CompositeStats) recordProbe(lk *Lookup) {
	s.Probes++
	n := lk.Confident.Count()
	if n == 0 {
		return
	}
	s.PredictedLoads++
	s.ConfidentHistogram[n]++
	if n == 1 {
		for comp := Component(0); comp < NumComponents; comp++ {
			if lk.Confident.Has(comp) {
				s.SoleConfident[comp]++
			}
		}
	}
	if lk.Used {
		s.UsedPredictions++
		s.UsedBy[lk.Chosen]++
	}
}

func (s *CompositeStats) recordTrainOutcome(lk *Lookup, v Validation, flush bool) {
	for comp := Component(0); comp < NumComponents; comp++ {
		if !lk.Confident.Has(comp) || !v.Valued.Has(comp) {
			continue
		}
		if v.Correct.Has(comp) {
			s.CorrectBy[comp]++
		} else {
			s.IncorrectBy[comp]++
		}
	}
	if flush {
		s.UsedMispredictions++
	}
}

func (s *CompositeStats) recordTrained(n int) {
	s.TrainEvents++
	s.TrainedComponents += uint64(n)
}

// Accuracy returns the fraction of delivered predictions that validated
// correct, or 1 when none were delivered.
func (s *CompositeStats) Accuracy() float64 {
	if s.UsedPredictions == 0 {
		return 1
	}
	return 1 - float64(s.UsedMispredictions)/float64(s.UsedPredictions)
}

// FusionEventsOf reports how many times table fusion engaged in c's
// lifetime (zero when fusion is disabled).
func FusionEventsOf(c *Composite) int {
	if c.fuse == nil {
		return 0
	}
	return c.fuse.FusionEvents
}
