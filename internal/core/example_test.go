package core_test

import (
	"fmt"

	"repro/internal/core"
)

// ExampleComposite shows the probe → validate → train loop a core
// integrates with: probe at fetch, validate against the executed load,
// train at completion.
func ExampleComposite() {
	composite := core.NewComposite(core.CompositeConfig{
		Entries: core.HomogeneousEntries(256),
		Seed:    42,
		AM:      core.NewPCAM(64),
	})

	// A load at PC 0x1000 that always returns 7: train it to
	// confidence, then predict.
	outcome := core.Outcome{PC: 0x1000, Addr: 0x8000, Size: 8, Value: 7}
	resolve := func(addr uint64, size uint8) (uint64, bool) { return 7, true }
	for i := 0; i < 100; i++ {
		lk := composite.Probe(core.Probe{PC: outcome.PC})
		composite.Train(outcome, &lk, core.Validate(&lk, outcome, resolve))
	}

	lk := composite.Probe(core.Probe{PC: 0x1000})
	pred, ok := lk.Prediction()
	fmt.Println("predicted:", ok)
	fmt.Println("kind:", pred.Kind)
	fmt.Println("value:", pred.Value)
	// Output:
	// predicted: true
	// kind: value
	// value: 7
}

// ExampleLVP demonstrates a single component predictor in isolation.
func ExampleLVP() {
	lvp := core.NewLVP(64, 1)
	for i := 0; i < 200; i++ { // effective confidence is 64 observations
		lvp.Train(core.Outcome{PC: 0x40, Value: 123})
	}
	pred, ok := lvp.Predict(core.Probe{PC: 0x40})
	fmt.Println(ok, pred.Value)
	// Output: true 123
}

// ExampleTableIV prints the paper's predictor parameter table.
func ExampleTableIV() {
	for _, row := range core.TableIV() {
		fmt.Printf("%s: %d bits/entry, effective confidence %d\n",
			row.Component, row.BitsPerEntry, row.EffectiveConf)
	}
	// Output:
	// LVP: 81 bits/entry, effective confidence 64
	// SAP: 77 bits/entry, effective confidence 9
	// CVP: 81 bits/entry, effective confidence 16
	// CAP: 67 bits/entry, effective confidence 4
}
