package core

// LVP is the last value predictor (Lipasti et al., Section III-B-1):
// a PC-indexed, tagged table whose entries remember the last value a
// static load produced. A prediction is made only after the value has
// been observed unchanged for an effective confidence of 64 consecutive
// executions, which the paper found necessary for 99% accuracy.
//
// Entry layout (81 bits): 14-bit tag, 64-bit value, 3-bit confidence.
type LVP struct {
	tbl       *table[lvpPayload]
	fpc       *FPC
	threshold uint8
	pool      *SharedPool // non-nil in shared-array mode
}

type lvpPayload struct {
	value uint64 // direct mode
	slot  int32  // shared-array mode
}

// LVPBitsPerEntry is the paper's storage accounting for one LVP entry.
const LVPBitsPerEntry = 14 + 64 + 3

// LVPThreshold is the confidence a load must reach before LVP predicts.
const LVPThreshold = 7

// NewLVP builds a last value predictor with the given number of table
// entries (rounded up to a power of two).
func NewLVP(entries int, seed uint64) *LVP {
	return &LVP{
		tbl:       newTable[lvpPayload](entries, 14, SplitMix64(seed^1)),
		fpc:       NewFPC(FPCVectorLVP, SplitMix64(seed^2)),
		threshold: LVPThreshold,
	}
}

// NewLVPPooled builds a last value predictor whose entries reference a
// shared value array instead of storing 64-bit values (the decoupled-
// array optimization of Section III-B).
func NewLVPPooled(entries int, seed uint64, pool *SharedPool) *LVP {
	l := NewLVP(entries, seed)
	l.pool = pool
	l.tbl.onEvict = func(p *lvpPayload) { pool.Release(p.slot) }
	return l
}

// value resolves an entry's predicted value in either mode.
func (l *LVP) value(e *entry[lvpPayload]) uint64 {
	if l.pool != nil {
		return l.pool.Value(e.payload.slot)
	}
	return e.payload.value
}

// setValue installs a value into an entry, acquiring a pool slot in
// shared-array mode. It reports false (and kills the entry) when the
// pool is exhausted.
func (l *LVP) setValue(e *entry[lvpPayload], v uint64) bool {
	if l.pool == nil {
		e.payload.value = v
		return true
	}
	slot, ok := l.pool.Acquire(v)
	if !ok {
		*e = entry[lvpPayload]{payload: lvpPayload{slot: PoolInvalid}}
		return false
	}
	e.payload.slot = slot
	return true
}

// Component implements Predictor.
func (l *LVP) Component() Component { return CompLVP }

// Predict implements Predictor. LVP consults only the load PC.
func (l *LVP) Predict(p Probe) (Prediction, bool) {
	h := hashMix1(p.PC >> 2)
	e := l.tbl.lookup(l.tbl.index(h), l.tbl.tag(h))
	if e == nil || e.conf < l.threshold {
		return Prediction{}, false
	}
	return Prediction{
		Kind:   KindValue,
		Source: CompLVP,
		Value:  l.value(e),
	}, true
}

// Train implements Predictor: on a value match the confidence is
// probabilistically increased; otherwise the entry is overwritten with
// the new value and the confidence resets to zero.
func (l *LVP) Train(o Outcome) {
	h := hashMix1(o.PC >> 2)
	idx, tag := l.tbl.index(h), l.tbl.tag(h)
	e := l.tbl.lookup(idx, tag)
	if e == nil {
		e = l.tbl.allocate(idx, tag)
		e.payload = lvpPayload{slot: PoolInvalid}
		l.setValue(e, o.Value)
		e.conf = 0
		return
	}
	if l.value(e) == o.Value {
		e.conf = l.fpc.Bump(e.conf)
		return
	}
	if l.pool != nil {
		l.pool.Release(e.payload.slot)
		e.payload.slot = PoolInvalid
	}
	l.setValue(e, o.Value)
	e.conf = 0
}

// Invalidate implements Predictor.
func (l *LVP) Invalidate(o Outcome) {
	h := hashMix1(o.PC >> 2)
	l.tbl.invalidate(l.tbl.index(h), l.tbl.tag(h))
}

// Storage implements Predictor. In shared-array mode an entry holds a
// slot index instead of a 64-bit value (the pool's own storage is
// accounted by the composite, once).
func (l *LVP) Storage() Storage {
	bits := LVPBitsPerEntry
	if l.pool != nil {
		bits = 14 + 3 + l.pool.SlotBits()
	}
	return Storage{Entries: l.tbl.entries(), BitsPerItem: bits}
}

// ResetState implements Predictor.
func (l *LVP) ResetState() { l.tbl.flush(); l.fpc.Reset() }
