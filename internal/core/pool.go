package core

// SharedPool implements the storage optimization the paper points to at
// the end of Section III-B: decoupling the value arrays from the
// prediction tables and sharing them among predictors (as the enhanced
// VTAGE of EVES does). Table entries then store a short slot index
// instead of a full 64-bit value; identical values across entries and
// predictors share one slot.
//
// The pool is reference-counted: entries acquire a slot when trained
// and release it when overwritten, invalidated or evicted. When the
// pool is full and the value is not already interned, acquisition fails
// — the capacity pressure that trades storage for coverage, quantified
// by the sharedpool experiment.
type SharedPool struct {
	values   []uint64
	refs     []uint16
	index    map[uint64]int32
	free     []int32
	failures uint64
}

// PoolInvalid marks "no slot".
const PoolInvalid int32 = -1

// NewSharedPool builds a pool with n slots.
func NewSharedPool(n int) *SharedPool {
	if n < 1 {
		n = 1
	}
	p := &SharedPool{
		values: make([]uint64, n),
		refs:   make([]uint16, n),
		index:  make(map[uint64]int32, n),
		free:   make([]int32, 0, n),
	}
	for i := n - 1; i >= 0; i-- {
		p.free = append(p.free, int32(i))
	}
	return p
}

// Acquire interns v and returns its slot, incrementing the reference
// count. It fails (PoolInvalid, false) when the pool is full and v is
// not already present.
func (p *SharedPool) Acquire(v uint64) (int32, bool) {
	if s, ok := p.index[v]; ok {
		if p.refs[s] == ^uint16(0) {
			// Saturated refcount: refuse further sharing of this slot
			// rather than risking a miscount.
			p.failures++
			return PoolInvalid, false
		}
		p.refs[s]++
		return s, true
	}
	if len(p.free) == 0 {
		p.failures++
		return PoolInvalid, false
	}
	s := p.free[len(p.free)-1]
	p.free = p.free[:len(p.free)-1]
	p.values[s] = v
	p.refs[s] = 1
	p.index[v] = s
	return s, true
}

// Release decrements a slot's reference count, freeing it at zero.
// Releasing PoolInvalid is a no-op.
func (p *SharedPool) Release(s int32) {
	if s == PoolInvalid {
		return
	}
	if p.refs[s] == 0 {
		panic("core: SharedPool release of free slot")
	}
	p.refs[s]--
	if p.refs[s] == 0 {
		delete(p.index, p.values[s])
		p.free = append(p.free, s)
	}
}

// Value returns the interned value for slot s.
func (p *SharedPool) Value(s int32) uint64 { return p.values[s] }

// Live returns the number of occupied slots.
func (p *SharedPool) Live() int { return len(p.values) - len(p.free) }

// Failures returns how many acquisitions failed for lack of slots.
func (p *SharedPool) Failures() uint64 { return p.failures }

// StorageBits accounts the pool's hardware cost: 64 value bits plus an
// 8-bit reference counter per slot (the model uses wider counters in
// software for safety; hardware would saturate at 8 bits).
func (p *SharedPool) StorageBits() int { return len(p.values) * (64 + 8) }

// SlotBits returns the width of a slot index for this pool size — the
// field a table entry stores instead of a 64-bit value.
func (p *SharedPool) SlotBits() int {
	n := len(p.values)
	bits := 0
	for (1 << bits) < n {
		bits++
	}
	if bits == 0 {
		bits = 1
	}
	return bits
}
