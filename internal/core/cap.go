package core

// CAP is the context address predictor (Section III-B-2), modeled on
// the DLVP predictor of Sheikh, Cain & Damodaran: a single tagged table
// indexed by a hash of the load PC and the load path history. A
// confident hit yields a predicted address that the Predicted Address
// Queue uses to probe the data cache.
//
// Entry layout (67 bits): 14-bit tag, 49-bit virtual address, 2-bit
// confidence, 2-bit load size.
type CAP struct {
	tbl       *table[capPayload]
	fpc       *FPC
	threshold uint8
}

type capPayload struct {
	addr     uint64 // 49-bit virtual address
	sizeLog2 uint8  // 2-bit load size indicator
}

// CAPBitsPerEntry is the paper's storage accounting for one CAP entry.
const CAPBitsPerEntry = 14 + 49 + 2 + 2

// CAPThreshold is the (saturated) 2-bit confidence CAP requires; with
// FPCVectorCAP it corresponds to 4 consecutive observations of the same
// path/PC/address — the lowest threshold of the four predictors.
const CAPThreshold = 3

// NewCAP builds a context address predictor with the given number of
// table entries (rounded up to a power of two).
func NewCAP(entries int, seed uint64) *CAP {
	return &CAP{
		tbl:       newTable[capPayload](entries, 14, SplitMix64(seed^9)),
		fpc:       NewFPC(FPCVectorCAP, SplitMix64(seed^10)),
		threshold: CAPThreshold,
	}
}

// Component implements Predictor.
func (c *CAP) Component() Component { return CompCAP }

func (c *CAP) hash(pc, loadPath uint64) uint64 {
	return hashMix2(pc>>2, loadPath)
}

// Predict implements Predictor.
func (c *CAP) Predict(p Probe) (Prediction, bool) {
	h := c.hash(p.PC, p.LoadPath)
	e := c.tbl.lookup(c.tbl.index(h), c.tbl.tag(h))
	if e == nil || e.conf < c.threshold {
		return Prediction{}, false
	}
	return Prediction{
		Kind:   KindAddress,
		Source: CompCAP,
		Addr:   e.payload.addr,
		Size:   uint8(1) << e.payload.sizeLog2,
	}, true
}

// Train implements Predictor: a load that completes with the same
// address and size as the stored entry raises confidence; any change
// overwrites the entry and resets confidence (Section III-B-2).
func (c *CAP) Train(o Outcome) {
	h := c.hash(o.PC, o.LoadPath)
	idx, tag := c.tbl.index(h), c.tbl.tag(h)
	e := c.tbl.lookup(idx, tag)
	addr := o.Addr & vaMask
	size := sizeLog2(o.Size)
	if e == nil {
		e = c.tbl.allocate(idx, tag)
		e.payload = capPayload{addr: addr, sizeLog2: size}
		e.conf = 0
		return
	}
	if e.payload.addr == addr && e.payload.sizeLog2 == size {
		e.conf = c.fpc.Bump(e.conf)
		return
	}
	e.payload = capPayload{addr: addr, sizeLog2: size}
	e.conf = 0
}

// Invalidate implements Predictor.
func (c *CAP) Invalidate(o Outcome) {
	h := c.hash(o.PC, o.LoadPath)
	c.tbl.invalidate(c.tbl.index(h), c.tbl.tag(h))
}

// Storage implements Predictor.
func (c *CAP) Storage() Storage {
	return Storage{Entries: c.tbl.entries(), BitsPerItem: CAPBitsPerEntry}
}

// ResetState implements Predictor.
func (c *CAP) ResetState() { c.tbl.flush(); c.fpc.Reset() }
