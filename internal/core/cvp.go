package core

// CVP is the context value predictor (Section III-B-2), modeled on the
// VTAGE predictor of Perais & Seznec but without the untagged last-value
// base table (LVP already plays that role in the composite). It keeps
// three tagged tables indexed by a hash of the load PC and geometric
// samples of the global branch path history; a prediction comes from the
// longest-history table with a confident hit.
//
// Entry layout (81 bits, same as LVP): 14-bit tag, 64-bit value, 3-bit
// confidence.
type CVP struct {
	tables    []*table[cvpPayload]
	histLens  []uint
	fpc       *FPC
	threshold uint8
	pool      *SharedPool // non-nil in shared-array mode
}

type cvpPayload struct {
	value uint64 // direct mode
	slot  int32  // shared-array mode
}

// CVPBitsPerEntry is the paper's storage accounting for one CVP entry.
const CVPBitsPerEntry = 14 + 64 + 3

// CVPThreshold is the confidence a load must reach before CVP predicts;
// with FPCVectorCVP it corresponds to 16 consecutive observations.
const CVPThreshold = 4

// CVPHistoryLengths are the geometric branch-path-history sample lengths
// of the three tables, shortest first. The shortest length matches the
// paper's Listing-1 walkthrough ("the 5-bit history of the smallest CVP
// table").
var CVPHistoryLengths = []uint{5, 11, 24}

// NewCVP builds a context value predictor. Following the paper's
// footnote 3, entries is the *sum* of the three table sizes; it is split
// as half to the shortest-history table and a quarter to each of the
// others, each rounded to a power of two.
func NewCVP(entries int, seed uint64) *CVP {
	if entries < 4 {
		entries = 4
	}
	sizes := []int{entries / 2, entries / 4, entries / 4}
	c := &CVP{
		histLens:  CVPHistoryLengths,
		fpc:       NewFPC(FPCVectorCVP, SplitMix64(seed^5)),
		threshold: CVPThreshold,
	}
	for i := range c.histLens {
		c.tables = append(c.tables, newTable[cvpPayload](sizes[i], 14, SplitMix64(seed^uint64(6+i))))
	}
	return c
}

// NewCVPPooled builds a context value predictor whose entries reference
// a shared value array (the decoupled-array optimization of Section
// III-B); the pool is typically shared with LVP.
func NewCVPPooled(entries int, seed uint64, pool *SharedPool) *CVP {
	c := NewCVP(entries, seed)
	c.pool = pool
	for _, t := range c.tables {
		t.onEvict = func(p *cvpPayload) { pool.Release(p.slot) }
	}
	return c
}

func (c *CVP) value(e *entry[cvpPayload]) uint64 {
	if c.pool != nil {
		return c.pool.Value(e.payload.slot)
	}
	return e.payload.value
}

func (c *CVP) setValue(e *entry[cvpPayload], v uint64) bool {
	if c.pool == nil {
		e.payload.value = v
		return true
	}
	slot, ok := c.pool.Acquire(v)
	if !ok {
		*e = entry[cvpPayload]{payload: cvpPayload{slot: PoolInvalid}}
		return false
	}
	e.payload.slot = slot
	return true
}

// Component implements Predictor.
func (c *CVP) Component() Component { return CompCVP }

// hash combines a pre-absorbed load-PC chain state (hashMix1(pc>>2))
// with a geometric sample of the branch path history for table i.
// Equivalent to the historical hashMix(pc>>2, sample, i), with the pc
// round shared across the three tables.
func (c *CVP) hash(hPC, branchHist uint64, i int) uint64 {
	sample := branchHist & ((uint64(1) << c.histLens[i]) - 1)
	return hashWord(hashWord(hPC, sample), uint64(i))
}

// Predict implements Predictor: the longest-history confident hit wins.
func (c *CVP) Predict(p Probe) (Prediction, bool) {
	hPC := hashMix1(p.PC >> 2)
	for i := len(c.tables) - 1; i >= 0; i-- {
		t := c.tables[i]
		h := c.hash(hPC, p.BranchHist, i)
		e := t.lookup(t.index(h), t.tag(h))
		if e != nil && e.conf >= c.threshold {
			return Prediction{
				Kind:   KindValue,
				Source: CompCVP,
				Value:  c.value(e),
			}, true
		}
	}
	return Prediction{}, false
}

// Train implements Predictor: all three tables are updated in the same
// manner as LVP (Section III-B-2).
func (c *CVP) Train(o Outcome) {
	hPC := hashMix1(o.PC >> 2)
	for i, t := range c.tables {
		h := c.hash(hPC, o.BranchHist, i)
		idx, tag := t.index(h), t.tag(h)
		e := t.lookup(idx, tag)
		if e == nil {
			e = t.allocate(idx, tag)
			e.payload = cvpPayload{slot: PoolInvalid}
			c.setValue(e, o.Value)
			e.conf = 0
			continue
		}
		if c.value(e) == o.Value {
			e.conf = c.fpc.Bump(e.conf)
			continue
		}
		if c.pool != nil {
			c.pool.Release(e.payload.slot)
			e.payload.slot = PoolInvalid
		}
		c.setValue(e, o.Value)
		e.conf = 0
	}
}

// Invalidate implements Predictor.
func (c *CVP) Invalidate(o Outcome) {
	hPC := hashMix1(o.PC >> 2)
	for i, t := range c.tables {
		h := c.hash(hPC, o.BranchHist, i)
		t.invalidate(t.index(h), t.tag(h))
	}
}

// Storage implements Predictor. In shared-array mode an entry holds a
// slot index instead of a 64-bit value (the pool's own storage is
// accounted by the composite, once).
func (c *CVP) Storage() Storage {
	n := 0
	for _, t := range c.tables {
		n += t.entries()
	}
	bits := CVPBitsPerEntry
	if c.pool != nil {
		bits = 14 + 3 + c.pool.SlotBits()
	}
	return Storage{Entries: n, BitsPerItem: bits}
}

// ResetState implements Predictor.
func (c *CVP) ResetState() {
	for _, t := range c.tables {
		t.flush()
	}
	c.fpc.Reset()
}
