package core

import "testing"

// fusionHarness builds a composite with fast fusion epochs so tests can
// drive several classification cycles cheaply.
func fusionHarness(t *testing.T) (*Composite, *FusionConfig) {
	t.Helper()
	fc := &FusionConfig{
		EpochInstrs:    1000,
		UsedPerKilo:    20, // threshold: 20 used predictions per epoch
		ClassifyEpochs: 3,
		CycleEpochs:    9,
	}
	c := NewComposite(CompositeConfig{
		Entries: HomogeneousEntries(64),
		Seed:    7,
		Fusion:  fc,
	})
	return c, fc
}

// driveEpoch simulates one fusion epoch in which LVP delivers `lvpUsed`
// used predictions and the other components deliver none.
func driveEpoch(c *Composite, lvpUsed int, epochInstrs uint64) {
	var lk Lookup
	lk.Confident.Add(CompLVP)
	lk.Allowed.Add(CompLVP)
	lk.Chosen = CompLVP
	lk.Used = true
	lk.Preds[CompLVP] = Prediction{Kind: KindValue, Source: CompLVP, Value: 1}
	for i := 0; i < lvpUsed; i++ {
		c.fuse.observe(&lk)
	}
	c.Instret(epochInstrs)
}

func TestFusionClassifiesDonorsAndReceivers(t *testing.T) {
	c, fc := fusionHarness(t)
	// Three epochs where LVP is heavily used and others idle → LVP is
	// the sole receiver, SAP/CVP/CAP donate.
	for e := 0; e < fc.ClassifyEpochs; e++ {
		driveEpoch(c, 100, fc.EpochInstrs)
	}
	if !c.fuse.active {
		t.Fatal("fusion did not engage after the classify window")
	}
	for _, d := range []Component{CompSAP, CompCVP, CompCAP} {
		if !c.fuse.donated(d) {
			t.Errorf("%v should be a donor", d)
		}
	}
	if c.fuse.donated(CompLVP) {
		t.Error("LVP should be a receiver")
	}
	// LVP's table gained the three donor tables as extra ways.
	lvp := c.Component(CompLVP).(*LVP)
	if got := lvp.tbl.numWays(); got != 4 {
		t.Errorf("receiver ways = %d, want 4 (own + 3 donors)", got)
	}
	// Donors' storage is lent out: they must neither predict nor train.
	if c.trainable(CompSAP) {
		t.Error("donated SAP still trainable")
	}
}

func TestFusionDonorsAreFlushedAndSilent(t *testing.T) {
	c, fc := fusionHarness(t)
	// Give SAP a confident entry first.
	for i := 0; i < 50; i++ {
		c.Component(CompSAP).Train(Outcome{PC: 0x40, Addr: 0x8000 + uint64(i)*8, Size: 8})
	}
	if _, ok := c.Component(CompSAP).Predict(Probe{PC: 0x40}); !ok {
		t.Fatal("precondition: SAP confident")
	}
	for e := 0; e < fc.ClassifyEpochs; e++ {
		driveEpoch(c, 100, fc.EpochInstrs)
	}
	if !c.fuse.donated(CompSAP) {
		t.Fatal("SAP should be a donor")
	}
	// The composite must not return SAP predictions while donated.
	lk := c.Probe(Probe{PC: 0x40})
	if lk.Confident.Has(CompSAP) {
		t.Error("donated SAP produced a prediction through the composite")
	}
}

func TestFusionRevertsAfterCycle(t *testing.T) {
	c, fc := fusionHarness(t)
	for e := 0; e < fc.CycleEpochs-1; e++ {
		driveEpoch(c, 100, fc.EpochInstrs)
	}
	if !c.fuse.active {
		t.Fatal("fusion should be active mid-cycle")
	}
	driveEpoch(c, 100, fc.EpochInstrs) // crosses CycleEpochs → revert
	if c.fuse.active {
		t.Error("fusion still active after cycle end")
	}
	lvp := c.Component(CompLVP).(*LVP)
	if got := lvp.tbl.numWays(); got != 1 {
		t.Errorf("receiver ways after revert = %d, want 1", got)
	}
	for comp := Component(0); comp < NumComponents; comp++ {
		if c.fuse.donated(comp) {
			t.Errorf("%v still marked donor after revert", comp)
		}
	}
}

func TestFusionNoDonorsNoFusion(t *testing.T) {
	fc := &FusionConfig{EpochInstrs: 1000, UsedPerKilo: 1, ClassifyEpochs: 2, CycleEpochs: 6}
	c := NewComposite(CompositeConfig{Entries: HomogeneousEntries(64), Seed: 7, Fusion: fc})
	// Make every component useful every epoch.
	for e := 0; e < fc.ClassifyEpochs; e++ {
		for comp := Component(0); comp < NumComponents; comp++ {
			var lk Lookup
			lk.Confident.Add(comp)
			lk.Allowed.Add(comp)
			lk.Chosen = comp
			lk.Used = true
			for i := 0; i < 10; i++ {
				c.fuse.observe(&lk)
			}
		}
		c.Instret(fc.EpochInstrs)
	}
	if c.fuse.active {
		t.Error("fusion engaged with no donors")
	}
}

func TestFusionAllIdleNoFusion(t *testing.T) {
	c, fc := fusionHarness(t)
	for e := 0; e < fc.ClassifyEpochs; e++ {
		driveEpoch(c, 0, fc.EpochInstrs) // nobody useful
	}
	if c.fuse.active {
		t.Error("fusion engaged with no receivers")
	}
}

func TestFusionTwoDonorsTwoReceivers(t *testing.T) {
	c, fc := fusionHarness(t)
	// LVP and CVP are useful; SAP and CAP idle.
	for e := 0; e < fc.ClassifyEpochs; e++ {
		for _, comp := range []Component{CompLVP, CompCVP} {
			var lk Lookup
			lk.Confident.Add(comp)
			lk.Allowed.Add(comp)
			lk.Chosen = comp
			lk.Used = true
			for i := 0; i < 100; i++ {
				c.fuse.observe(&lk)
			}
		}
		c.Instret(fc.EpochInstrs)
	}
	if !c.fuse.active {
		t.Fatal("fusion did not engage")
	}
	lvp := c.Component(CompLVP).(*LVP)
	cvp := c.Component(CompCVP).(*CVP)
	if lvp.tbl.numWays() != 2 {
		t.Errorf("LVP ways = %d, want 2", lvp.tbl.numWays())
	}
	for _, tbl := range cvp.tables {
		if tbl.numWays() != 2 {
			t.Errorf("CVP table ways = %d, want 2", tbl.numWays())
		}
	}
}

func TestFusionReceiverKeepsContentsAcrossRevert(t *testing.T) {
	c, fc := fusionHarness(t)
	// Train LVP to confidence before fusion engages.
	o := Outcome{PC: 0x999, Value: 42}
	for i := 0; i < 300; i++ {
		c.Component(CompLVP).Train(o)
	}
	if _, ok := c.Component(CompLVP).Predict(Probe{PC: o.PC}); !ok {
		t.Fatal("precondition: LVP confident")
	}
	for e := 0; e < fc.CycleEpochs; e++ {
		driveEpoch(c, 100, fc.EpochInstrs)
	}
	// Cycle has reverted; receiver (LVP) data must survive.
	if pr, ok := c.Component(CompLVP).Predict(Probe{PC: o.PC}); !ok || pr.Value != 42 {
		t.Error("receiver lost way-0 contents across fuse/revert")
	}
}

func TestFusionEventsCounted(t *testing.T) {
	c, fc := fusionHarness(t)
	for cycle := 0; cycle < 2; cycle++ {
		for e := 0; e < fc.CycleEpochs; e++ {
			driveEpoch(c, 100, fc.EpochInstrs)
		}
	}
	if c.fuse.FusionEvents != 2 {
		t.Errorf("FusionEvents = %d, want 2 (one per cycle)", c.fuse.FusionEvents)
	}
}

func TestFusionDefaultsApplied(t *testing.T) {
	c := NewComposite(CompositeConfig{Entries: HomogeneousEntries(64), Seed: 1, Fusion: &FusionConfig{}})
	def := DefaultFusion()
	if c.fuse.cfg != *def {
		t.Errorf("zero FusionConfig not defaulted: %+v", c.fuse.cfg)
	}
}
