package core

import (
	"testing"
	"testing/quick"
)

func TestSharedPoolInterning(t *testing.T) {
	p := NewSharedPool(4)
	a, ok := p.Acquire(100)
	if !ok {
		t.Fatal("acquire failed on empty pool")
	}
	b, ok := p.Acquire(100)
	if !ok || b != a {
		t.Errorf("same value not interned: %d vs %d", a, b)
	}
	c, _ := p.Acquire(200)
	if c == a {
		t.Error("different values share a slot")
	}
	if p.Live() != 2 {
		t.Errorf("live = %d, want 2", p.Live())
	}
	if p.Value(a) != 100 || p.Value(c) != 200 {
		t.Error("values corrupted")
	}
}

func TestSharedPoolRefcounting(t *testing.T) {
	p := NewSharedPool(1)
	a, _ := p.Acquire(7)
	if _, ok := p.Acquire(8); ok {
		t.Fatal("full pool accepted a new value")
	}
	b, _ := p.Acquire(7) // still fits: same value
	p.Release(a)
	if p.Live() != 1 {
		t.Error("slot freed while referenced")
	}
	p.Release(b)
	if p.Live() != 0 {
		t.Error("slot not freed at refcount zero")
	}
	if _, ok := p.Acquire(8); !ok {
		t.Error("freed slot not reusable")
	}
}

func TestSharedPoolReleaseInvalidNoop(t *testing.T) {
	p := NewSharedPool(2)
	p.Release(PoolInvalid) // must not panic
}

func TestSharedPoolDoubleReleasePanics(t *testing.T) {
	p := NewSharedPool(2)
	s, _ := p.Acquire(1)
	p.Release(s)
	defer func() {
		if recover() == nil {
			t.Error("double release did not panic")
		}
	}()
	p.Release(s)
}

func TestSharedPoolFailureCounting(t *testing.T) {
	p := NewSharedPool(1)
	p.Acquire(1)
	p.Acquire(2)
	p.Acquire(3)
	if p.Failures() != 2 {
		t.Errorf("failures = %d, want 2", p.Failures())
	}
}

func TestSharedPoolSlotBits(t *testing.T) {
	cases := map[int]int{1: 1, 2: 1, 3: 2, 256: 8, 1024: 10, 1025: 11}
	for n, want := range cases {
		if got := NewSharedPool(n).SlotBits(); got != want {
			t.Errorf("SlotBits(%d) = %d, want %d", n, got, want)
		}
	}
}

// Property: acquire/release sequences never corrupt the value of a live
// slot, and Live() equals the count of distinct held values.
func TestSharedPoolProperty(t *testing.T) {
	err := quick.Check(func(ops []uint8) bool {
		p := NewSharedPool(8)
		type held struct {
			slot int32
			val  uint64
		}
		var live []held
		for _, op := range ops {
			if op%3 == 0 && len(live) > 0 {
				h := live[len(live)-1]
				live = live[:len(live)-1]
				if p.Value(h.slot) != h.val {
					return false
				}
				p.Release(h.slot)
				continue
			}
			v := uint64(op % 12)
			if s, ok := p.Acquire(v); ok {
				live = append(live, held{s, v})
			}
		}
		distinct := map[uint64]bool{}
		for _, h := range live {
			if p.Value(h.slot) != h.val {
				return false
			}
			distinct[h.val] = true
		}
		return p.Live() == len(distinct)
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Error(err)
	}
}

func TestPooledLVPBehavesLikeDirect(t *testing.T) {
	// With an ample pool, pooled LVP must predict identically to the
	// direct implementation.
	pool := NewSharedPool(256)
	pl := NewLVPPooled(64, 1, pool)
	dl := NewLVP(64, 1)
	o := Outcome{PC: 0x40, Value: 0xBEEF}
	for i := 0; i < 300; i++ {
		pl.Train(o)
		dl.Train(o)
	}
	pp, okP := pl.Predict(Probe{PC: o.PC})
	dp, okD := dl.Predict(Probe{PC: o.PC})
	if okP != okD || pp.Value != dp.Value {
		t.Errorf("pooled (%v,%v) != direct (%v,%v)", pp.Value, okP, dp.Value, okD)
	}
}

func TestPooledLVPReleasesOnValueChange(t *testing.T) {
	pool := NewSharedPool(4)
	l := NewLVPPooled(64, 1, pool)
	for v := uint64(0); v < 40; v++ {
		l.Train(Outcome{PC: 0x40, Value: v})
	}
	// One live value per entry (single PC): the pool must not leak.
	if pool.Live() != 1 {
		t.Errorf("pool live = %d after serial value changes, want 1", pool.Live())
	}
}

func TestPooledEvictionReleasesSlots(t *testing.T) {
	pool := NewSharedPool(512)
	l := NewLVPPooled(16, 1, pool) // tiny table: heavy eviction
	for pc := uint64(0); pc < 400; pc++ {
		l.Train(Outcome{PC: 0x1000 + pc*4, Value: pc + 1000})
	}
	if live := pool.Live(); live > 16 {
		t.Errorf("pool live = %d with a 16-entry table; evictions leak slots", live)
	}
	l.ResetState()
	if pool.Live() != 0 {
		t.Errorf("pool live = %d after flush, want 0", pool.Live())
	}
}

func TestPooledExhaustionDropsCoverageNotCorrectness(t *testing.T) {
	// A starving pool must reduce predictions, never produce wrong ones.
	pool := NewSharedPool(4)
	l := NewLVPPooled(256, 1, pool)
	outs := make([]Outcome, 32)
	for i := range outs {
		outs[i] = Outcome{PC: 0x1000 + uint64(i)*4, Value: uint64(0xA000 + i)}
	}
	for round := 0; round < 300; round++ {
		for _, o := range outs {
			l.Train(o)
		}
	}
	predicted, wrong := 0, 0
	for _, o := range outs {
		if pr, ok := l.Predict(Probe{PC: o.PC}); ok {
			predicted++
			if pr.Value != o.Value {
				wrong++
			}
		}
	}
	if wrong > 0 {
		t.Errorf("%d wrong predictions under pool pressure", wrong)
	}
	if predicted > 4 {
		t.Errorf("predicted %d loads with a 4-slot pool", predicted)
	}
	if pool.Failures() == 0 {
		t.Error("no pool pressure recorded")
	}
}

func TestCompositePooledStorageSavings(t *testing.T) {
	direct := NewComposite(CompositeConfig{Entries: HomogeneousEntries(1024), Seed: 1})
	pooled := NewComposite(CompositeConfig{
		Entries: HomogeneousEntries(1024), Seed: 1, ValuePoolSlots: 512,
	})
	if pooled.Pool() == nil {
		t.Fatal("pooled composite has no pool")
	}
	if pooled.StorageKB() >= direct.StorageKB() {
		t.Errorf("pooled %.2fKB >= direct %.2fKB", pooled.StorageKB(), direct.StorageKB())
	}
	// Saving should be substantial: 2048 entries shed (64-10) bits each,
	// minus the 512×72-bit pool.
	if saved := direct.StorageKB() - pooled.StorageKB(); saved < 6 {
		t.Errorf("only %.2fKB saved", saved)
	}
}

func TestCompositePooledStillPredicts(t *testing.T) {
	c := NewComposite(CompositeConfig{
		Entries: HomogeneousEntries(256), Seed: 1, ValuePoolSlots: 1024,
	})
	o := Outcome{PC: 0x100, BranchHist: 0x3, LoadPath: 0x9, Addr: 0x7000, Value: 55, Size: 8}
	trainComposite(c, o, 300)
	lk := c.Probe(Probe{PC: o.PC, BranchHist: o.BranchHist, LoadPath: o.LoadPath})
	if !lk.Used {
		t.Fatal("pooled composite never predicted")
	}
	if pr, _ := lk.Prediction(); pr.Kind == KindValue && pr.Value != o.Value {
		t.Errorf("pooled prediction value %d, want %d", pr.Value, o.Value)
	}
}

func TestPooledFusionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("pool + fusion must panic")
		}
	}()
	NewComposite(CompositeConfig{
		Entries: HomogeneousEntries(64), Seed: 1,
		ValuePoolSlots: 64, Fusion: DefaultFusion(),
	})
}
