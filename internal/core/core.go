// Package core implements the load value predictors studied in
// Sheikh & Hower, "Efficient Load Value Prediction using Multiple
// Predictors and Filters" (HPCA 2019): the four component predictors
// (LVP, SAP, CVP, CAP), the composite predictor that runs all four in
// parallel, and the paper's optimizations — accuracy monitors (M-AM and
// PC-AM), heterogeneous table sizing, smart training, and table fusion.
//
// All predictors are deterministic: probabilistic confidence updates use
// a seeded xorshift generator (see FPC), so repeated runs produce
// identical results.
package core

import "fmt"

// Component identifies one of the four component load value predictors.
type Component uint8

// The four component predictors, in the paper's Table I order.
const (
	CompLVP Component = iota // last value prediction (context-agnostic, value)
	CompSAP                  // stride address prediction (context-agnostic, address)
	CompCVP                  // context value prediction (context-aware, value)
	CompCAP                  // context address prediction (context-aware, address)
	NumComponents
)

// String returns the paper's name for the component.
func (c Component) String() string {
	switch c {
	case CompLVP:
		return "LVP"
	case CompSAP:
		return "SAP"
	case CompCVP:
		return "CVP"
	case CompCAP:
		return "CAP"
	}
	return fmt.Sprintf("Component(%d)", uint8(c))
}

// Kind distinguishes the two load value prediction approaches of
// Section III-A: directly predicting the value, or predicting the
// address and probing the data cache.
type Kind uint8

const (
	// KindValue predictions carry the speculative load value directly.
	KindValue Kind = iota
	// KindAddress predictions carry a predicted effective address; the
	// pipeline forwards it to the Predicted Address Queue (PAQ), which
	// probes the data cache for the speculative value.
	KindAddress
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	if k == KindValue {
		return "value"
	}
	return "address"
}

// Probe carries everything a predictor may consult when a load is
// fetched. Histories are snapshotted at fetch time; the identical
// snapshot must be presented again at training time so context-aware
// predictors index the same entries they predicted from.
type Probe struct {
	PC uint64

	// BranchHist is the global branch path history (newest outcome in
	// the least significant bit), maintained by the front end. CVP
	// hashes geometric samples of it.
	BranchHist uint64

	// LoadPath is the load path history: a running hash of the PCs of
	// recently fetched loads. CAP hashes it with the load PC.
	LoadPath uint64

	// Inflight is the number of dynamic instances of this static load
	// that have been fetched but not yet trained. Stride predictors
	// (SAP, E-Stride) advance their prediction by Inflight strides so
	// back-to-back instances of a loop load predict distinct addresses.
	Inflight int
}

// Outcome carries the architectural result of a load, presented to the
// predictors when the load executes.
type Outcome struct {
	PC         uint64
	BranchHist uint64 // snapshot taken at fetch of this load
	LoadPath   uint64 // snapshot taken at fetch of this load
	Addr       uint64 // effective virtual address
	Size       uint8  // access size in bytes (1, 2, 4, 8)
	Value      uint64 // loaded value (zero-extended)
}

// Prediction is a confident prediction produced by a component.
type Prediction struct {
	Kind   Kind
	Source Component
	Value  uint64 // valid when Kind == KindValue
	Addr   uint64 // valid when Kind == KindAddress
	Size   uint8  // access size hint for address predictions
}

// Predictor is the interface shared by the four component predictors.
// Implementations are not safe for concurrent use; the simulated core
// probes and trains them from a single goroutine, as hardware would.
type Predictor interface {
	// Predict returns a confident prediction for the load being
	// fetched, if the predictor has one.
	Predict(p Probe) (Prediction, bool)

	// Train observes an executed load and updates predictor state.
	Train(o Outcome)

	// Invalidate discards any entry the predictor holds for the load.
	// Smart training uses it to break SAP entries that were correct but
	// deliberately not trained (Section V-D).
	Invalidate(o Outcome)

	// Component reports which of the four components this is.
	Component() Component

	// Storage reports the hardware budget of the predictor.
	Storage() Storage

	// ResetState clears all dynamic state (tables and confidence) while
	// keeping the configuration.
	ResetState()
}

// Storage describes a predictor's hardware cost.
type Storage struct {
	Entries     int // total table entries across all tables
	BitsPerItem int // bits per entry (tag + payload + confidence)
}

// Bits returns the total number of storage bits.
func (s Storage) Bits() int { return s.Entries * s.BitsPerItem }

// KB returns the storage cost in kilobytes (1024 bytes).
func (s Storage) KB() float64 { return float64(s.Bits()) / 8 / 1024 }

// String implements fmt.Stringer.
func (s Storage) String() string {
	return fmt.Sprintf("%d entries × %d bits = %.2fKB", s.Entries, s.BitsPerItem, s.KB())
}
