package core

import (
	"testing"
	"testing/quick"
)

func TestTableRoundsToPowerOfTwo(t *testing.T) {
	cases := []struct{ in, want int }{
		{0, 1}, {1, 1}, {2, 2}, {3, 4}, {64, 64}, {100, 128}, {1024, 1024},
	}
	for _, tc := range cases {
		tbl := newTable[uint64](tc.in, 14, 1)
		if tbl.sets != tc.want {
			t.Errorf("newTable(%d): sets = %d, want %d", tc.in, tbl.sets, tc.want)
		}
	}
}

func TestTableLookupMiss(t *testing.T) {
	tbl := newTable[uint64](64, 14, 1)
	if e := tbl.lookup(3, 7); e != nil {
		t.Error("lookup on empty table returned an entry")
	}
}

func TestTableAllocateThenLookup(t *testing.T) {
	tbl := newTable[uint64](64, 14, 1)
	e := tbl.allocate(5, 99)
	e.payload = 1234
	e.conf = 3
	got := tbl.lookup(5, 99)
	if got == nil {
		t.Fatal("lookup after allocate missed")
	}
	if got.payload != 1234 || got.conf != 3 {
		t.Errorf("entry state lost: payload=%d conf=%d", got.payload, got.conf)
	}
}

func TestTableAllocateReusesMatch(t *testing.T) {
	tbl := newTable[uint64](64, 14, 1)
	a := tbl.allocate(5, 99)
	a.payload = 1
	b := tbl.allocate(5, 99)
	if a != b {
		t.Error("allocate with matching tag did not reuse the entry")
	}
	if b.payload != 1 {
		t.Error("allocate reset payload of matching entry")
	}
}

func TestTableConflictEvictsDirectMapped(t *testing.T) {
	tbl := newTable[uint64](64, 14, 1)
	tbl.allocate(5, 99).payload = 1
	e := tbl.allocate(5, 42) // same set, different tag
	if e.payload != 0 || e.conf != 0 {
		t.Error("conflict allocation did not clear the entry")
	}
	if tbl.lookup(5, 99) != nil {
		t.Error("old tag survived a direct-mapped conflict")
	}
	if tbl.lookup(5, 42) == nil {
		t.Error("new tag missing after conflict allocation")
	}
}

func TestTableExtraWaysAvoidConflict(t *testing.T) {
	tbl := newTable[uint64](64, 14, 1)
	tbl.setWays(2)
	tbl.allocate(5, 99).payload = 1
	tbl.allocate(5, 42).payload = 2
	if e := tbl.lookup(5, 99); e == nil || e.payload != 1 {
		t.Error("two-way table lost first entry on second allocation")
	}
	if e := tbl.lookup(5, 42); e == nil || e.payload != 2 {
		t.Error("two-way table missing second entry")
	}
}

func TestTableSetWaysShrinkKeepsWayZero(t *testing.T) {
	tbl := newTable[uint64](16, 14, 1)
	tbl.ways[0][3] = entry[uint64]{valid: true, tag: 9, payload: 7}
	tbl.setWays(3)
	tbl.ways[2][3] = entry[uint64]{valid: true, tag: 8, payload: 5}
	tbl.setWays(1)
	if tbl.numWays() != 1 {
		t.Fatalf("numWays = %d, want 1", tbl.numWays())
	}
	if e := tbl.lookup(3, 9); e == nil || e.payload != 7 {
		t.Error("way 0 contents lost on shrink")
	}
	if tbl.lookup(3, 8) != nil {
		t.Error("dropped-way contents still visible")
	}
}

func TestTableFlushExtraWays(t *testing.T) {
	tbl := newTable[uint64](16, 14, 1)
	tbl.setWays(2)
	tbl.ways[0][3] = entry[uint64]{valid: true, tag: 9, payload: 7}
	tbl.ways[1][3] = entry[uint64]{valid: true, tag: 8, payload: 5}
	tbl.flushExtraWays()
	if tbl.lookup(3, 9) == nil {
		t.Error("flushExtraWays cleared way 0")
	}
	if tbl.lookup(3, 8) != nil {
		t.Error("flushExtraWays left extra-way entry")
	}
}

func TestTableFlush(t *testing.T) {
	tbl := newTable[uint64](16, 14, 1)
	tbl.setWays(2)
	tbl.allocate(3, 9)
	tbl.allocate(3, 8)
	tbl.flush()
	if tbl.lookup(3, 9) != nil || tbl.lookup(3, 8) != nil {
		t.Error("flush left valid entries")
	}
}

func TestTableEntriesAccounting(t *testing.T) {
	tbl := newTable[uint64](64, 14, 1)
	if tbl.entries() != 64 {
		t.Errorf("entries = %d, want 64", tbl.entries())
	}
	tbl.setWays(3)
	if tbl.entries() != 192 {
		t.Errorf("entries after setWays(3) = %d, want 192", tbl.entries())
	}
}

// Property: index always falls within [0, sets) and tag within the tag
// width, for arbitrary hashes.
func TestTableIndexTagBounds(t *testing.T) {
	tbl := newTable[uint64](1024, 14, 1)
	err := quick.Check(func(h uint64) bool {
		idx := tbl.index(h)
		tag := tbl.tag(h)
		return idx >= 0 && idx < tbl.sets && tag < (1<<14)
	}, &quick.Config{MaxCount: 2000})
	if err != nil {
		t.Error(err)
	}
}

// Property: an allocated (index, tag) pair is always found by lookup
// afterwards, regardless of other allocations to different sets.
func TestTableAllocateLookupProperty(t *testing.T) {
	err := quick.Check(func(hashes []uint64) bool {
		tbl := newTable[uint64](256, 14, 1)
		for _, h := range hashes {
			idx, tag := tbl.index(h), tbl.tag(h)
			tbl.allocate(idx, tag)
			if tbl.lookup(idx, tag) == nil {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Error(err)
	}
}

func TestFold(t *testing.T) {
	if got := fold(0xFFFF, 8); got != 0 {
		t.Errorf("fold(0xFFFF, 8) = %#x, want 0 (xor of two 0xFF)", got)
	}
	if got := fold(0x1234, 64); got != 0x1234 {
		t.Errorf("fold(_, 64) must be identity, got %#x", got)
	}
	if got := fold(0xABCD, 0); got != 0xABCD {
		t.Errorf("fold(_, 0) must be identity, got %#x", got)
	}
}
