package core

// FPC implements forward probabilistic counters (Riley & Zilles, HPCA
// 2006), which the paper uses in all of the studied predictors to track
// confidence in fewer bits (Section III-B).
//
// A confidence counter at level c advances to c+1 with probability
// 1/Vector[c]. The expected number of consecutive correct observations
// needed to move from zero to a threshold t is therefore
// sum(Vector[0:t]) — the "effective" confidence — even though the
// counter itself needs only ceil(log2(len(Vector)+1)) bits.
type FPC struct {
	vector []uint32
	rng    *XorShift64
}

// NewFPC builds a forward probabilistic counter policy from the given
// vector of increment denominators and RNG seed. The maximum counter
// value is len(vector); entries must be ≥ 1.
func NewFPC(vector []uint32, seed uint64) *FPC {
	if len(vector) == 0 {
		panic("core: empty FPC vector")
	}
	for _, v := range vector {
		if v == 0 {
			panic("core: FPC vector entries must be >= 1")
		}
	}
	v := make([]uint32, len(vector))
	copy(v, vector)
	return &FPC{vector: v, rng: NewXorShift64(seed)}
}

// Max returns the saturating maximum counter value.
func (f *FPC) Max() uint8 { return uint8(len(f.vector)) }

// Reset rewinds the policy's RNG to its seed (part of a predictor's
// ResetState: probabilistic bumps must replay identically).
func (f *FPC) Reset() { f.rng.Reset() }

// Bump probabilistically advances a confidence counter and returns its
// new value. At saturation the counter is returned unchanged.
func (f *FPC) Bump(conf uint8) uint8 {
	if int(conf) >= len(f.vector) {
		return uint8(len(f.vector))
	}
	if f.rng.Chance(f.vector[conf]) {
		return conf + 1
	}
	return conf
}

// Effective returns the expected number of consecutive observations
// required to raise a counter from zero to threshold.
func (f *FPC) Effective(threshold uint8) int {
	n := 0
	for c := 0; c < int(threshold) && c < len(f.vector); c++ {
		n += int(f.vector[c])
	}
	return n
}

// Vector returns a copy of the increment-denominator vector.
func (f *FPC) Vector() []uint32 {
	v := make([]uint32, len(f.vector))
	copy(v, f.vector)
	return v
}

// The FPC vectors used by the four component predictors. The paper's
// Table IV specifies each predictor's counter width, threshold, and
// effective confidence; the exact vectors here follow the paper's
// construction method — pick the scalar confidence that delivers 99%
// accuracy, then choose an FPC vector whose expected observation count
// matches (see DESIGN.md §5).
var (
	// FPCVectorLVP drives LVP's 3-bit counter: threshold 7, effective
	// confidence 64 consecutive observations (1+1+2+4+8+16+32).
	FPCVectorLVP = []uint32{1, 1, 2, 4, 8, 16, 32}

	// FPCVectorSAP drives SAP's 2-bit counter: threshold 3, effective
	// confidence 9 consecutive observations (1+2+6).
	FPCVectorSAP = []uint32{1, 2, 6}

	// FPCVectorCVP drives CVP's 3-bit counter: threshold 4, effective
	// confidence 16 consecutive observations (1+2+4+9); levels above
	// the threshold add slow-saturating hysteresis.
	FPCVectorCVP = []uint32{1, 2, 4, 9, 16, 16, 16}

	// FPCVectorCAP drives CAP's 2-bit counter: threshold 3, effective
	// confidence 4 consecutive observations (1+1+2) — the lowest of the
	// four predictors.
	FPCVectorCAP = []uint32{1, 1, 2}
)
