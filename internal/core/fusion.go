package core

import "sort"

// FusionConfig parameterizes dynamic table fusion (Section V-E).
// The zero value is replaced by the paper's settings via DefaultFusion.
type FusionConfig struct {
	// EpochInstrs is the epoch length in retired instructions
	// (1 million in the paper).
	EpochInstrs uint64

	// UsedPerKilo is the used-predictions-per-kilo-instructions rate a
	// component must exceed in an epoch to be counted useful (20 in the
	// paper).
	UsedPerKilo float64

	// ClassifyEpochs (N) is the number of epochs observed before
	// donor/receiver classification (5 in the paper).
	ClassifyEpochs int

	// CycleEpochs (M >> N) is the number of epochs after which fusion
	// reverts and the cycle repeats (25 in the paper).
	CycleEpochs int
}

// DefaultFusion returns the paper's fusion parameters.
func DefaultFusion() *FusionConfig {
	return &FusionConfig{
		EpochInstrs:    1_000_000,
		UsedPerKilo:    20,
		ClassifyEpochs: 5,
		CycleEpochs:    25,
	}
}

// fusable is implemented by component predictors whose tables can accept
// donated ways. setTotalWays(1) restores the predictor's own storage
// only, keeping its contents.
type fusable interface {
	setTotalWays(n int)
}

func (l *LVP) setTotalWays(n int) { l.tbl.setWays(n) }
func (s *SAP) setTotalWays(n int) { s.tbl.setWays(n) }
func (c *CAP) setTotalWays(n int) { c.tbl.setWays(n) }
func (c *CVP) setTotalWays(n int) {
	for _, t := range c.tables {
		t.setWays(n)
	}
}

// Fusion implements the table fusion mechanism: component predictors
// that deliver few used predictions (donors) lend their entire tables to
// productive components (receivers) as extra associative ways. Donors
// are flushed when donated and again when fusion reverts; receivers keep
// their own way's contents throughout (Section V-E).
type Fusion struct {
	cfg FusionConfig
	c   *Composite

	sinceEpoch uint64
	epoch      int
	usedEpoch  [NumComponents]uint64
	usedCycle  [NumComponents]uint64
	usefulness [NumComponents]int
	active     bool
	isDonor    [NumComponents]bool

	// FusionEvents counts how many times fusion engaged.
	FusionEvents int
}

func newFusion(cfg FusionConfig, c *Composite) *Fusion {
	def := DefaultFusion()
	if cfg.EpochInstrs == 0 {
		cfg.EpochInstrs = def.EpochInstrs
	}
	if cfg.UsedPerKilo == 0 {
		cfg.UsedPerKilo = def.UsedPerKilo
	}
	if cfg.ClassifyEpochs == 0 {
		cfg.ClassifyEpochs = def.ClassifyEpochs
	}
	if cfg.CycleEpochs == 0 {
		cfg.CycleEpochs = def.CycleEpochs
	}
	return &Fusion{cfg: cfg, c: c}
}

// donated reports whether comp's storage is currently lent out.
func (f *Fusion) donated(comp Component) bool { return f.isDonor[comp] }

// observe records a delivered prediction for usefulness accounting.
func (f *Fusion) observe(lk *Lookup) {
	if lk.Used {
		f.usedEpoch[lk.Chosen]++
		f.usedCycle[lk.Chosen]++
	}
}

// instret advances the epoch clock.
func (f *Fusion) instret(n uint64) {
	f.sinceEpoch += n
	for f.sinceEpoch >= f.cfg.EpochInstrs {
		f.sinceEpoch -= f.cfg.EpochInstrs
		f.endEpoch()
	}
}

func (f *Fusion) endEpoch() {
	threshold := uint64(f.cfg.UsedPerKilo * float64(f.cfg.EpochInstrs) / 1000)
	for comp := Component(0); comp < NumComponents; comp++ {
		if f.c.comps[comp] == nil {
			continue
		}
		if f.usedEpoch[comp] >= threshold {
			f.usefulness[comp]++
		}
		f.usedEpoch[comp] = 0
	}
	f.epoch++
	if f.epoch >= f.cfg.ClassifyEpochs && !f.active {
		f.classify()
	}
	if f.epoch >= f.cfg.CycleEpochs {
		f.revert()
	}
}

// classify splits components into donors and receivers, then fuses
// donor tables into receivers. The paper marks a component a donor when
// it fell below the usefulness threshold in at least one of N
// million-instruction epochs; with epochs scaled down to short
// simulations (DESIGN.md §5), program phases are long relative to an
// epoch, so the classification instead compares each component's
// cumulative used predictions this cycle against the same
// per-kilo-instruction rate, and retries each epoch until fusion
// engages.
func (f *Fusion) classify() {
	need := uint64(f.cfg.UsedPerKilo*float64(f.cfg.EpochInstrs)/1000) * uint64(f.epoch)
	idle := need / 10
	var donors, receivers []Component
	for comp := Component(0); comp < NumComponents; comp++ {
		if f.c.comps[comp] == nil {
			continue
		}
		switch {
		case f.usedCycle[comp] <= idle:
			// Only near-idle predictors donate: misclassifying a
			// productive component silences it for the whole cycle,
			// which costs far more than a donated way gains.
			donors = append(donors, comp)
		case f.usedCycle[comp] >= need:
			receivers = append(receivers, comp)
		}
	}
	if len(donors) == 0 || len(receivers) == 0 {
		return
	}
	// Receivers ranked by used predictions over the classify window;
	// the busiest receiver gets the first donor table (Section V-E).
	sort.Slice(receivers, func(i, j int) bool {
		if f.usedCycle[receivers[i]] != f.usedCycle[receivers[j]] {
			return f.usedCycle[receivers[i]] > f.usedCycle[receivers[j]]
		}
		return receivers[i] < receivers[j]
	})
	extraWays := make(map[Component]int)
	if len(donors) >= len(receivers) {
		// Distribute donors round-robin starting at the busiest
		// receiver (3 donors / 1 receiver → receiver takes all three).
		for i, d := range donors {
			r := receivers[i%len(receivers)]
			extraWays[r]++
			f.donate(d)
		}
	} else {
		// More receivers than donors: the busiest receivers each take
		// one donor (1 donor / 3 receivers → top receiver only).
		for i, d := range donors {
			extraWays[receivers[i]]++
			f.donate(d)
		}
	}
	for r, extra := range extraWays {
		if fb, ok := f.c.comps[r].(fusable); ok {
			fb.setTotalWays(1 + extra)
		}
	}
	f.active = true
	f.FusionEvents++
}

// donate flushes a donor (its contents are invalid as receiver storage)
// and marks it inactive.
func (f *Fusion) donate(comp Component) {
	f.c.comps[comp].ResetState()
	f.isDonor[comp] = true
}

// revert ends the fusion cycle: receivers drop their borrowed ways
// (keeping their own way's contents) and donors restart from a flushed
// table.
func (f *Fusion) revert() {
	for comp := Component(0); comp < NumComponents; comp++ {
		p := f.c.comps[comp]
		if p == nil {
			continue
		}
		if fb, ok := p.(fusable); ok {
			fb.setTotalWays(1)
		}
		if f.isDonor[comp] {
			p.ResetState()
			f.isDonor[comp] = false
		}
		f.usefulness[comp] = 0
		f.usedCycle[comp] = 0
		f.usedEpoch[comp] = 0
	}
	f.epoch = 0
	f.active = false
}

// reset clears all fusion state including borrowed ways.
func (f *Fusion) reset() {
	f.revert()
	f.sinceEpoch = 0
	f.FusionEvents = 0
}
