package core

// ParamRow describes one row of the paper's Table IV: the tuned
// parameters of a component predictor.
type ParamRow struct {
	Component     Component
	BitsPerEntry  int      // tag + payload + confidence
	ConfBits      int      // width of the confidence counter
	ConfThreshold uint8    // absolute counter value required to predict
	EffectiveConf int      // expected consecutive observations (via FPC)
	FPCVector     []uint32 // increment denominators per confidence level
	HistoryLens   []uint   // branch path history sample lengths (CVP only)
	Tables        int      // number of tables
	Predicts      Kind     // value or address
	ContextAware  bool
}

// TableIV returns the tuned parameters of the four component predictors
// (paper Table IV). Vectors follow the paper's construction method; see
// DESIGN.md §5.
func TableIV() []ParamRow {
	lvp := NewFPC(FPCVectorLVP, 1)
	sap := NewFPC(FPCVectorSAP, 1)
	cvp := NewFPC(FPCVectorCVP, 1)
	cap := NewFPC(FPCVectorCAP, 1)
	return []ParamRow{
		{
			Component: CompLVP, BitsPerEntry: LVPBitsPerEntry,
			ConfBits: 3, ConfThreshold: LVPThreshold,
			EffectiveConf: lvp.Effective(LVPThreshold),
			FPCVector:     FPCVectorLVP, Tables: 1,
			Predicts: KindValue, ContextAware: false,
		},
		{
			Component: CompSAP, BitsPerEntry: SAPBitsPerEntry,
			ConfBits: 2, ConfThreshold: SAPThreshold,
			EffectiveConf: sap.Effective(SAPThreshold),
			FPCVector:     FPCVectorSAP, Tables: 1,
			Predicts: KindAddress, ContextAware: false,
		},
		{
			Component: CompCVP, BitsPerEntry: CVPBitsPerEntry,
			ConfBits: 3, ConfThreshold: CVPThreshold,
			EffectiveConf: cvp.Effective(CVPThreshold),
			FPCVector:     FPCVectorCVP, HistoryLens: CVPHistoryLengths,
			Tables: 3, Predicts: KindValue, ContextAware: true,
		},
		{
			Component: CompCAP, BitsPerEntry: CAPBitsPerEntry,
			ConfBits: 2, ConfThreshold: CAPThreshold,
			EffectiveConf: cap.Effective(CAPThreshold),
			FPCVector:     FPCVectorCAP, Tables: 1,
			Predicts: KindAddress, ContextAware: true,
		},
	}
}
