package core

import "math/bits"

// hashSeed is the initial state of the predictor-table hash chain. The
// historical variadic hash, hashMix(w0, w1, ...), unrolled to
// hashWord(hashWord(hashSeed, w0), w1)... — the fixed-arity helpers
// below produce bit-identical hashes without the variadic loop, and let
// hot paths absorb a shared prefix once (CVP's three tables all hash
// the same pc before their per-table words).
const hashSeed = uint64(0x9E3779B97F4A7C15)

// hashWord absorbs one word into a hash chain state.
func hashWord(h, w uint64) uint64 { return SplitMix64(h ^ w) }

// hashMix1 hashes a single word (≡ historical hashMix(a)).
func hashMix1(a uint64) uint64 { return hashWord(hashSeed, a) }

// hashMix2 hashes two words (≡ historical hashMix(a, b)).
func hashMix2(a, b uint64) uint64 { return hashWord(hashMix1(a), b) }

// fold compresses a 64-bit hash into width bits by XOR-folding: the
// result is the XOR of all width-bit chunks of h. Chunks are combined
// by shift doubling (h ^ h>>w covers chunks {0,1} of every position,
// then ^ h>>2w covers {0..3}, …), which is branch-free in the chunk
// count; since (a&m)^(b&m) == (a^b)&m this equals the original
// serial chunk loop bit for bit.
func fold(h uint64, width uint) uint64 {
	if width == 0 || width >= 64 {
		return h
	}
	for s := width; s < 64; s <<= 1 {
		h ^= h >> s
	}
	return h & ((uint64(1) << width) - 1)
}

// entry is one slot of a predictor table. The payload layout differs per
// predictor; valid/tag/conf are common to all four (Section III-B).
type entry[P any] struct {
	valid   bool
	tag     uint16
	conf    uint8
	payload P
}

// table is a tagged prediction table with power-of-two sets and a
// dynamic number of ways. Component predictors are direct-mapped
// (one way); table fusion (Section V-E) donates whole tables to a
// receiver as extra ways, so the way count can grow at run time.
type table[P any] struct {
	setBits uint
	sets    int
	tagBits uint
	ways    [][]entry[P]
	victim  *XorShift64

	// onEvict, when set, observes every payload that leaves the table
	// (replacement, invalidation, flush). Predictors whose payloads
	// hold shared-pool slots use it to release their references.
	onEvict func(p *P)
}

// newTable builds a direct-mapped table with the given number of
// entries (rounded up to a power of two, minimum 1) and tag width.
func newTable[P any](entries int, tagBits uint, seed uint64) *table[P] {
	if entries < 1 {
		entries = 1
	}
	setBits := uint(bits.Len(uint(entries - 1)))
	sets := 1 << setBits
	t := &table[P]{
		setBits: setBits,
		sets:    sets,
		tagBits: tagBits,
		victim:  NewXorShift64(seed),
	}
	t.ways = [][]entry[P]{make([]entry[P], sets)}
	return t
}

// index maps a hash to a set number.
func (t *table[P]) index(h uint64) int {
	return int(fold(h, t.setBits)) & (t.sets - 1)
}

// tag derives the partial tag for a hash, decorrelated from the index
// by a fixed salt.
func (t *table[P]) tag(h uint64) uint16 {
	return uint16(fold(SplitMix64(h^0xD6E8FEB86659FD93), t.tagBits))
}

// lookup returns the matching entry for (index, tag) across all ways,
// or nil when there is no hit.
func (t *table[P]) lookup(idx int, tag uint16) *entry[P] {
	for w := range t.ways {
		e := &t.ways[w][idx]
		if e.valid && e.tag == tag {
			return e
		}
	}
	return nil
}

// allocate returns the entry to (re)use for (index, tag): a tag match if
// present, else an invalid way, else a victim way. The returned entry is
// marked valid with the tag installed; the caller owns payload and conf.
func (t *table[P]) allocate(idx int, tag uint16) *entry[P] {
	if e := t.lookup(idx, tag); e != nil {
		return e
	}
	for w := range t.ways {
		e := &t.ways[w][idx]
		if !e.valid {
			e.valid = true
			e.tag = tag
			e.conf = 0
			return e
		}
	}
	w := 0
	if len(t.ways) > 1 {
		w = t.victim.Intn(len(t.ways))
	}
	e := &t.ways[w][idx]
	if e.valid && t.onEvict != nil {
		t.onEvict(&e.payload)
	}
	*e = entry[P]{valid: true, tag: tag}
	return e
}

// invalidate discards a matching entry if present.
func (t *table[P]) invalidate(idx int, tag uint16) {
	for w := range t.ways {
		e := &t.ways[w][idx]
		if e.valid && e.tag == tag {
			if t.onEvict != nil {
				t.onEvict(&e.payload)
			}
			*e = entry[P]{}
			return
		}
	}
}

// setWays grows or shrinks the table to n ways. Added ways start
// flushed; removed ways are discarded. Way 0 (the predictor's own
// storage) is always retained.
func (t *table[P]) setWays(n int) {
	if n < 1 {
		n = 1
	}
	for len(t.ways) > n {
		t.evictWay(len(t.ways) - 1)
		t.ways = t.ways[:len(t.ways)-1]
	}
	for len(t.ways) < n {
		t.ways = append(t.ways, make([]entry[P], t.sets))
	}
}

// numWays reports the current associativity.
func (t *table[P]) numWays() int { return len(t.ways) }

// evictWay runs the eviction hook over a way's live entries.
func (t *table[P]) evictWay(w int) {
	if t.onEvict == nil {
		return
	}
	for i := range t.ways[w] {
		if t.ways[w][i].valid {
			t.onEvict(&t.ways[w][i].payload)
		}
	}
}

// flush invalidates every entry in every way.
func (t *table[P]) flush() {
	for w := range t.ways {
		t.evictWay(w)
		clear(t.ways[w])
	}
	// flush only runs from ResetState (never mid-simulation), so the
	// victim RNG rewinds with the contents: a reset predictor must
	// replay a fresh predictor's replacement decisions exactly.
	t.victim.Reset()
}

// flushExtraWays invalidates every way except way 0. Used when fusion
// reverts: donated storage is flushed while the receiver's own table
// keeps its contents (Section V-E).
func (t *table[P]) flushExtraWays() {
	for w := 1; w < len(t.ways); w++ {
		t.evictWay(w)
		clear(t.ways[w])
	}
}

// entries reports the total entry count across ways.
func (t *table[P]) entries() int { return t.sets * len(t.ways) }
