package core

// SAP is the stride address predictor (González & González, Section
// III-B-1): a PC-indexed, tagged table that detects strided load
// addresses (stride possibly zero) and, once confident, emits a
// predicted address for the Predicted Address Queue to probe the data
// cache with. Like the enhanced stride predictor in EVES, SAP advances
// its prediction by the number of in-flight occurrences of the load so
// that overlapping loop iterations each predict a distinct address.
//
// Entry layout (77 bits): 14-bit tag, 49-bit last virtual address,
// 2-bit confidence, 10-bit stride, 2-bit load size (log2 of width).
type SAP struct {
	tbl       *table[sapPayload]
	fpc       *FPC
	threshold uint8
}

type sapPayload struct {
	lastAddr    uint64 // 49-bit virtual address
	stride      int16  // 10-bit signed stride
	strideValid bool   // false while the observed stride does not fit in 10 bits
	sizeLog2    uint8  // 2-bit load size indicator
}

// SAPBitsPerEntry is the paper's storage accounting for one SAP entry.
const SAPBitsPerEntry = 14 + 49 + 2 + 10 + 2

// SAPThreshold is the (saturated) 2-bit confidence SAP requires; with
// FPCVectorSAP it corresponds to 9 consecutive stride confirmations.
const SAPThreshold = 3

const (
	vaMask       = (uint64(1) << 49) - 1 // 49-bit virtual address space
	strideMax    = 511
	strideMin    = -512
	sapTagBits   = 14
	strideUnused = 0
)

// NewSAP builds a stride address predictor with the given number of
// table entries (rounded up to a power of two).
func NewSAP(entries int, seed uint64) *SAP {
	return &SAP{
		tbl:       newTable[sapPayload](entries, sapTagBits, SplitMix64(seed^3)),
		fpc:       NewFPC(FPCVectorSAP, SplitMix64(seed^4)),
		threshold: SAPThreshold,
	}
}

// Component implements Predictor.
func (s *SAP) Component() Component { return CompSAP }

// Predict implements Predictor. The predicted address is the last known
// address plus one stride per in-flight occurrence plus one, so the
// oldest in-flight instance lands on the next element and this fetch on
// its own slot.
func (s *SAP) Predict(p Probe) (Prediction, bool) {
	h := hashMix1(p.PC >> 2)
	e := s.tbl.lookup(s.tbl.index(h), s.tbl.tag(h))
	if e == nil || e.conf < s.threshold || !e.payload.strideValid {
		return Prediction{}, false
	}
	steps := int64(p.Inflight) + 1
	addr := (e.payload.lastAddr + uint64(steps*int64(e.payload.stride))) & vaMask
	return Prediction{
		Kind:   KindAddress,
		Source: CompSAP,
		Addr:   addr,
		Size:   uint8(1) << e.payload.sizeLog2,
	}, true
}

// Train implements Predictor: the observed stride is the delta between
// the executing load's address and the entry's last known address. A
// matching stride raises confidence; a changed stride (or one that does
// not fit the 10-bit field) resets it.
func (s *SAP) Train(o Outcome) {
	h := hashMix1(o.PC >> 2)
	idx, tag := s.tbl.index(h), s.tbl.tag(h)
	e := s.tbl.lookup(idx, tag)
	if e == nil {
		e = s.tbl.allocate(idx, tag)
		e.payload = sapPayload{
			lastAddr: o.Addr & vaMask,
			sizeLog2: sizeLog2(o.Size),
		}
		e.conf = 0
		return
	}
	delta := int64(o.Addr&vaMask) - int64(e.payload.lastAddr)
	fits := delta >= strideMin && delta <= strideMax
	switch {
	case fits && e.payload.strideValid && int16(delta) == e.payload.stride:
		e.conf = s.fpc.Bump(e.conf)
	case fits:
		e.payload.stride = int16(delta)
		e.payload.strideValid = true
		e.conf = 0
	default:
		e.payload.strideValid = false
		e.conf = 0
	}
	e.payload.lastAddr = o.Addr & vaMask
	e.payload.sizeLog2 = sizeLog2(o.Size)
}

// Invalidate implements Predictor. Smart training invalidates SAP
// entries that produced a correct prediction but were not chosen for
// training: skipping training would break the stored stride anyway, so
// the entry is rendered useless and is freed instead (Section V-D).
func (s *SAP) Invalidate(o Outcome) {
	h := hashMix1(o.PC >> 2)
	s.tbl.invalidate(s.tbl.index(h), s.tbl.tag(h))
}

// Storage implements Predictor.
func (s *SAP) Storage() Storage {
	return Storage{Entries: s.tbl.entries(), BitsPerItem: SAPBitsPerEntry}
}

// ResetState implements Predictor.
func (s *SAP) ResetState() { s.tbl.flush(); s.fpc.Reset() }

// sizeLog2 encodes an access size (1, 2, 4, 8 bytes) in two bits.
func sizeLog2(size uint8) uint8 {
	switch {
	case size >= 8:
		return 3
	case size >= 4:
		return 2
	case size >= 2:
		return 1
	default:
		return 0
	}
}
