package core

import (
	"testing"
	"testing/quick"
)

// trainN trains p with the same outcome n times.
func trainN(p Predictor, o Outcome, n int) {
	for i := 0; i < n; i++ {
		p.Train(o)
	}
}

func TestLVPPredictsStableValue(t *testing.T) {
	l := NewLVP(64, 1)
	o := Outcome{PC: 0x1000, Value: 0xDEADBEEF, Addr: 0x8000, Size: 8}
	if _, ok := l.Predict(Probe{PC: o.PC}); ok {
		t.Fatal("LVP predicted before any training")
	}
	trainN(l, o, 200) // effective confidence is 64; 200 >> 64
	pr, ok := l.Predict(Probe{PC: o.PC})
	if !ok {
		t.Fatal("LVP not confident after 200 stable observations")
	}
	if pr.Kind != KindValue || pr.Value != o.Value || pr.Source != CompLVP {
		t.Errorf("bad prediction: %+v", pr)
	}
}

func TestLVPValueChangeResetsConfidence(t *testing.T) {
	l := NewLVP(64, 1)
	o := Outcome{PC: 0x1000, Value: 5}
	trainN(l, o, 200)
	o.Value = 6
	l.Train(o)
	if _, ok := l.Predict(Probe{PC: o.PC}); ok {
		t.Error("LVP still confident immediately after a value change")
	}
	trainN(l, o, 200)
	pr, ok := l.Predict(Probe{PC: o.PC})
	if !ok || pr.Value != 6 {
		t.Error("LVP did not re-learn the new value")
	}
}

func TestLVPDistinctPCs(t *testing.T) {
	l := NewLVP(1024, 1)
	a := Outcome{PC: 0x1000, Value: 1}
	b := Outcome{PC: 0x2000, Value: 2}
	for i := 0; i < 200; i++ {
		l.Train(a)
		l.Train(b)
	}
	pa, okA := l.Predict(Probe{PC: a.PC})
	pb, okB := l.Predict(Probe{PC: b.PC})
	if !okA || !okB || pa.Value != 1 || pb.Value != 2 {
		t.Errorf("cross-PC interference: a=(%v,%v) b=(%v,%v)", pa.Value, okA, pb.Value, okB)
	}
}

func TestLVPInvalidate(t *testing.T) {
	l := NewLVP(64, 1)
	o := Outcome{PC: 0x1000, Value: 5}
	trainN(l, o, 200)
	l.Invalidate(o)
	if _, ok := l.Predict(Probe{PC: o.PC}); ok {
		t.Error("LVP predicted from an invalidated entry")
	}
}

func TestSAPPredictsStride(t *testing.T) {
	s := NewSAP(64, 1)
	base := uint64(0x10000)
	for i := 0; i < 50; i++ {
		s.Train(Outcome{PC: 0x40, Addr: base + uint64(i)*8, Size: 8})
	}
	pr, ok := s.Predict(Probe{PC: 0x40, Inflight: 0})
	if !ok {
		t.Fatal("SAP not confident after 50 constant-stride observations")
	}
	want := base + 50*8
	if pr.Kind != KindAddress || pr.Addr != want {
		t.Errorf("predicted addr %#x, want %#x", pr.Addr, want)
	}
	if pr.Size != 8 {
		t.Errorf("predicted size %d, want 8", pr.Size)
	}
}

func TestSAPInflightAdjustment(t *testing.T) {
	s := NewSAP(64, 1)
	base := uint64(0x10000)
	for i := 0; i < 50; i++ {
		s.Train(Outcome{PC: 0x40, Addr: base + uint64(i)*16, Size: 4})
	}
	pr, ok := s.Predict(Probe{PC: 0x40, Inflight: 3})
	if !ok {
		t.Fatal("SAP not confident")
	}
	want := base + 49*16 + 4*16 // last trained addr + (inflight+1) strides
	if pr.Addr != want {
		t.Errorf("inflight-adjusted addr %#x, want %#x", pr.Addr, want)
	}
}

func TestSAPZeroStride(t *testing.T) {
	s := NewSAP(64, 1)
	for i := 0; i < 50; i++ {
		s.Train(Outcome{PC: 0x40, Addr: 0x8000, Size: 8})
	}
	pr, ok := s.Predict(Probe{PC: 0x40})
	if !ok || pr.Addr != 0x8000 {
		t.Errorf("SAP zero-stride: ok=%v addr=%#x, want 0x8000", ok, pr.Addr)
	}
}

func TestSAPStrideChangeResets(t *testing.T) {
	s := NewSAP(64, 1)
	for i := 0; i < 50; i++ {
		s.Train(Outcome{PC: 0x40, Addr: 0x8000 + uint64(i)*8, Size: 8})
	}
	// Break the stride: jump far away.
	s.Train(Outcome{PC: 0x40, Addr: 0x90000, Size: 8})
	if _, ok := s.Predict(Probe{PC: 0x40}); ok {
		t.Error("SAP still confident after stride break")
	}
}

func TestSAPOverlongStrideNeverConfident(t *testing.T) {
	s := NewSAP(64, 1)
	// Stride 4096 does not fit the 10-bit field; SAP must not build
	// confidence (it would predict wrong addresses if it did).
	for i := 0; i < 200; i++ {
		s.Train(Outcome{PC: 0x40, Addr: 0x8000 + uint64(i)*4096, Size: 8})
	}
	if _, ok := s.Predict(Probe{PC: 0x40}); ok {
		t.Error("SAP confident on a stride that exceeds its stride field")
	}
}

func TestSAPNegativeStride(t *testing.T) {
	s := NewSAP(64, 1)
	base := uint64(0x20000)
	for i := 0; i < 50; i++ {
		s.Train(Outcome{PC: 0x40, Addr: base - uint64(i)*8, Size: 8})
	}
	pr, ok := s.Predict(Probe{PC: 0x40})
	if !ok {
		t.Fatal("SAP not confident on negative stride")
	}
	want := base - 50*8
	if pr.Addr != want {
		t.Errorf("negative-stride addr %#x, want %#x", pr.Addr, want)
	}
}

func TestCVPContextSeparation(t *testing.T) {
	c := NewCVP(256, 1)
	// Same PC, two different branch histories mapping to different
	// values: CVP must learn both.
	histA, histB := uint64(0b10101), uint64(0b01010)
	for i := 0; i < 100; i++ {
		c.Train(Outcome{PC: 0x40, BranchHist: histA, Value: 111})
		c.Train(Outcome{PC: 0x40, BranchHist: histB, Value: 222})
	}
	pa, okA := c.Predict(Probe{PC: 0x40, BranchHist: histA})
	pb, okB := c.Predict(Probe{PC: 0x40, BranchHist: histB})
	if !okA || pa.Value != 111 {
		t.Errorf("history A: ok=%v value=%d, want 111", okA, pa.Value)
	}
	if !okB || pb.Value != 222 {
		t.Errorf("history B: ok=%v value=%d, want 222", okB, pb.Value)
	}
}

func TestCVPNeedsFewerObservationsThanLVP(t *testing.T) {
	// CVP's effective confidence (16) is below LVP's (64): after 30
	// stable observations CVP should usually predict while LVP must not
	// have saturated its scalar threshold... LVP's counter can only
	// reach threshold 7 after at least 7 trainings, but its FPC makes 30
	// observations far short of effective confidence 64 in expectation.
	// Use determinism: with this seed CVP fires and LVP does not.
	c := NewCVP(256, 7)
	l := NewLVP(256, 7)
	o := Outcome{PC: 0x80, BranchHist: 0x15, Value: 9}
	for i := 0; i < 30; i++ {
		c.Train(o)
		l.Train(o)
	}
	if _, ok := c.Predict(Probe{PC: 0x80, BranchHist: 0x15}); !ok {
		t.Error("CVP not confident after 30 stable observations")
	}
}

func TestCVPStorageSplit(t *testing.T) {
	c := NewCVP(1024, 1)
	if got := c.Storage().Entries; got != 1024 {
		t.Errorf("CVP total entries = %d, want 1024", got)
	}
	if len(c.tables) != 3 {
		t.Fatalf("CVP tables = %d, want 3", len(c.tables))
	}
}

func TestCAPPredictsStableAddressPerContext(t *testing.T) {
	c := NewCAP(64, 1)
	o := Outcome{PC: 0x40, LoadPath: 0xABCD, Addr: 0x7000, Size: 4}
	trainN(c, o, 20) // effective confidence 4
	pr, ok := c.Predict(Probe{PC: 0x40, LoadPath: 0xABCD})
	if !ok {
		t.Fatal("CAP not confident after 20 stable observations")
	}
	if pr.Kind != KindAddress || pr.Addr != 0x7000 || pr.Size != 4 {
		t.Errorf("bad CAP prediction: %+v", pr)
	}
	if _, ok := c.Predict(Probe{PC: 0x40, LoadPath: 0x1234}); ok {
		t.Error("CAP predicted under a different load path history")
	}
}

func TestCAPAddressChangeResets(t *testing.T) {
	c := NewCAP(64, 1)
	o := Outcome{PC: 0x40, LoadPath: 0xABCD, Addr: 0x7000, Size: 4}
	trainN(c, o, 20)
	o.Addr = 0x9000
	c.Train(o)
	if _, ok := c.Predict(Probe{PC: 0x40, LoadPath: 0xABCD}); ok {
		t.Error("CAP confident immediately after address change")
	}
}

func TestCAPSizeChangeResets(t *testing.T) {
	c := NewCAP(64, 1)
	o := Outcome{PC: 0x40, LoadPath: 0xABCD, Addr: 0x7000, Size: 4}
	trainN(c, o, 20)
	o.Size = 8
	c.Train(o)
	if _, ok := c.Predict(Probe{PC: 0x40, LoadPath: 0xABCD}); ok {
		t.Error("CAP confident immediately after size change")
	}
}

func TestCAPHasLowestTrainingLatency(t *testing.T) {
	// The paper orders effective confidences CAP(4) < CVP(16) < LVP(64);
	// verify the predictors respect that ordering on a stable load.
	firstConfident := func(p Predictor, o Outcome, probe Probe) int {
		for i := 1; i <= 500; i++ {
			p.Train(o)
			if _, ok := p.Predict(probe); ok {
				return i
			}
		}
		return 501
	}
	o := Outcome{PC: 0x40, BranchHist: 5, LoadPath: 9, Addr: 0x7000, Value: 3, Size: 8}
	probe := Probe{PC: 0x40, BranchHist: 5, LoadPath: 9}
	nCAP := firstConfident(NewCAP(64, 3), o, probe)
	nCVP := firstConfident(NewCVP(64, 3), o, probe)
	nLVP := firstConfident(NewLVP(64, 3), o, probe)
	if !(nCAP < nCVP && nCVP < nLVP) {
		t.Errorf("training latencies CAP=%d CVP=%d LVP=%d, want CAP < CVP < LVP", nCAP, nCVP, nLVP)
	}
}

func TestPredictorStorageAccounting(t *testing.T) {
	cases := []struct {
		p    Predictor
		bits int
	}{
		{NewLVP(1024, 1), 81},
		{NewSAP(1024, 1), 77},
		{NewCVP(1024, 1), 81},
		{NewCAP(1024, 1), 67},
	}
	for _, tc := range cases {
		s := tc.p.Storage()
		if s.BitsPerItem != tc.bits {
			t.Errorf("%v: bits/entry = %d, want %d", tc.p.Component(), s.BitsPerItem, tc.bits)
		}
		if s.Entries != 1024 {
			t.Errorf("%v: entries = %d, want 1024", tc.p.Component(), s.Entries)
		}
	}
}

func TestResetStateClearsPredictions(t *testing.T) {
	ps := []Predictor{NewLVP(64, 1), NewSAP(64, 1), NewCVP(64, 1), NewCAP(64, 1)}
	o := Outcome{PC: 0x40, BranchHist: 5, LoadPath: 9, Addr: 0x7000, Value: 3, Size: 8}
	probe := Probe{PC: 0x40, BranchHist: 5, LoadPath: 9}
	for _, p := range ps {
		// SAP needs a stride, so train with advancing addresses for it.
		for i := 0; i < 300; i++ {
			oo := o
			if p.Component() == CompSAP {
				oo.Addr += uint64(i) * 8
			}
			p.Train(oo)
		}
		if _, ok := p.Predict(probe); !ok {
			t.Errorf("%v: not confident before reset", p.Component())
		}
		p.ResetState()
		if _, ok := p.Predict(probe); ok {
			t.Errorf("%v: still confident after ResetState", p.Component())
		}
	}
}

// Property: predictions, when produced, always carry the correct source
// component and a kind matching the predictor family.
func TestPredictionMetadataProperty(t *testing.T) {
	lvp, sap := NewLVP(64, 2), NewSAP(64, 2)
	cvp, cap := NewCVP(64, 2), NewCAP(64, 2)
	err := quick.Check(func(pc, hist, path, addr, val uint64) bool {
		o := Outcome{PC: pc, BranchHist: hist, LoadPath: path, Addr: addr, Value: val, Size: 8}
		probe := Probe{PC: pc, BranchHist: hist, LoadPath: path}
		for i := 0; i < 80; i++ {
			lvp.Train(o)
			sap.Train(o)
			cvp.Train(o)
			cap.Train(o)
		}
		if pr, ok := lvp.Predict(probe); ok && (pr.Source != CompLVP || pr.Kind != KindValue) {
			return false
		}
		if pr, ok := sap.Predict(probe); ok && (pr.Source != CompSAP || pr.Kind != KindAddress) {
			return false
		}
		if pr, ok := cvp.Predict(probe); ok && (pr.Source != CompCVP || pr.Kind != KindValue) {
			return false
		}
		if pr, ok := cap.Predict(probe); ok && (pr.Source != CompCAP || pr.Kind != KindAddress) {
			return false
		}
		return true
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Error(err)
	}
}

func TestSizeLog2(t *testing.T) {
	cases := []struct {
		in   uint8
		want uint8
	}{{1, 0}, {2, 1}, {4, 2}, {8, 3}, {0, 0}, {16, 3}}
	for _, tc := range cases {
		if got := sizeLog2(tc.in); got != tc.want {
			t.Errorf("sizeLog2(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
}
