package core

import (
	"testing"
	"testing/quick"
)

func allSet() ComponentSet {
	var s ComponentSet
	for c := Component(0); c < NumComponents; c++ {
		s.Add(c)
	}
	return s
}

func only(c Component) ComponentSet {
	var s ComponentSet
	s.Add(c)
	return s
}

func TestMAMSilencesHighMispredictionRate(t *testing.T) {
	m := NewMAM()
	// LVP: 1000 predictions, 10 mispredictions → 10 MPKP > 3 MPKP.
	for i := 0; i < 990; i++ {
		m.Record(0x100, only(CompLVP), only(CompLVP), false)
	}
	for i := 0; i < 10; i++ {
		m.Record(0x100, only(CompLVP), 0, true)
	}
	// CVP: 1000 predictions, 1 misprediction → 1 MPKP, stays enabled.
	for i := 0; i < 999; i++ {
		m.Record(0x100, only(CompCVP), only(CompCVP), false)
	}
	m.Record(0x100, only(CompCVP), 0, true)

	if !m.Allow(CompLVP, 0x100) {
		t.Error("M-AM silenced a component before the epoch boundary")
	}
	m.Instret(MAMEpoch)
	if m.Allow(CompLVP, 0x100) {
		t.Error("M-AM did not silence LVP at 10 MPKP")
	}
	if !m.Allow(CompCVP, 0x100) {
		t.Error("M-AM silenced CVP at 1 MPKP")
	}
	// A clean next epoch re-enables.
	for i := 0; i < 1000; i++ {
		m.Record(0x100, only(CompLVP), only(CompLVP), false)
	}
	m.Instret(MAMEpoch)
	if !m.Allow(CompLVP, 0x100) {
		t.Error("M-AM did not re-enable LVP after a clean epoch")
	}
}

func TestMAMZeroPredictionsStaysEnabled(t *testing.T) {
	m := NewMAM()
	m.Instret(MAMEpoch)
	for c := Component(0); c < NumComponents; c++ {
		if !m.Allow(c, 0) {
			t.Errorf("M-AM silenced %v with zero predictions", c)
		}
	}
}

func TestMAMReset(t *testing.T) {
	m := NewMAM()
	for i := 0; i < 100; i++ {
		m.Record(0, only(CompLVP), 0, true)
	}
	m.Instret(MAMEpoch)
	if m.Allow(CompLVP, 0) {
		t.Fatal("precondition: LVP should be silenced")
	}
	m.Reset()
	if !m.Allow(CompLVP, 0) {
		t.Error("Reset did not clear silencing")
	}
}

func TestPCAMAllocatesOnlyOnFlush(t *testing.T) {
	p := NewPCAM(64)
	// Correct predictions without an entry must not allocate.
	p.Record(0x400, only(CompLVP), only(CompLVP), false)
	if p.find(0x400) != nil {
		t.Error("PC-AM allocated without a flush")
	}
	p.Record(0x400, only(CompLVP), 0, true)
	if p.find(0x400) == nil {
		t.Error("PC-AM did not allocate on flush")
	}
}

func TestPCAMSilencesInaccuratePC(t *testing.T) {
	p := NewPCAM(64)
	pc := uint64(0x400)
	p.Record(pc, only(CompLVP), 0, true) // allocate
	// 10 wrong, 10 right → 50% < 95% floor.
	for i := 0; i < 9; i++ {
		p.Record(pc, only(CompLVP), 0, true)
	}
	for i := 0; i < 10; i++ {
		p.Record(pc, only(CompLVP), only(CompLVP), false)
	}
	if p.Allow(CompLVP, pc) {
		t.Error("PC-AM allowed a 50%-accurate PC")
	}
	// Other PCs unaffected.
	if !p.Allow(CompLVP, 0x89ABC) {
		t.Error("PC-AM silenced an untracked PC")
	}
	// Other components at this PC: no data recorded → allowed.
	if !p.Allow(CompCVP, pc) {
		t.Error("PC-AM silenced a component with no recorded predictions")
	}
}

func TestPCAMTargetedVsMAM(t *testing.T) {
	// The motivating difference (Section V-B): one bad PC should not
	// silence the whole component in PC-AM, but does push M-AM over its
	// epoch threshold when it dominates mispredictions.
	p := NewPCAM(64)
	bad, good := uint64(0x400), uint64(0x99000)
	p.Record(bad, only(CompLVP), 0, true)
	for i := 0; i < 20; i++ {
		p.Record(bad, only(CompLVP), 0, true)
	}
	if p.Allow(CompLVP, bad) {
		t.Error("bad PC not silenced")
	}
	if !p.Allow(CompLVP, good) {
		t.Error("good PC silenced by PC-AM")
	}
}

func TestPCAMCounterHalvingPreservesRatio(t *testing.T) {
	p := NewPCAM(64)
	pc := uint64(0x400)
	p.Record(pc, only(CompLVP), 0, true) // allocate
	// Push the correct counter to the MSB: all counters halve, and the
	// accuracy estimate must remain (roughly) the same.
	for i := 0; i < 300; i++ {
		p.Record(pc, only(CompLVP), only(CompLVP), false)
	}
	e := p.find(pc)
	if e == nil {
		t.Fatal("entry lost")
	}
	if e.correct[CompLVP] >= 0x80 || e.incorrect[CompLVP] >= 0x80 {
		t.Errorf("counters not halved: correct=%d incorrect=%d", e.correct[CompLVP], e.incorrect[CompLVP])
	}
	if !p.Allow(CompLVP, pc) {
		t.Error("a predominantly correct PC was silenced after halving")
	}
}

func TestPCAMConflictReplacement(t *testing.T) {
	p := NewPCAM(64)
	// Two PCs with the same index but different tags: the second flush
	// replaces the first entry.
	a := uint64(0x1000)
	var b uint64
	for cand := uint64(0x1004); ; cand += 4 {
		if p.index(cand) == p.index(a) && tagOf(cand) != tagOf(a) {
			b = cand
			break
		}
	}
	p.Record(a, only(CompLVP), 0, true)
	if p.find(a) == nil {
		t.Fatal("entry for a missing")
	}
	p.Record(b, only(CompLVP), 0, true)
	if p.find(a) != nil {
		t.Error("conflicting entry not replaced")
	}
	if p.find(b) == nil {
		t.Error("replacement entry missing")
	}
}

func TestPCAMInfinite(t *testing.T) {
	p := NewPCAM(0)
	if p.Name() != "PC-AM(inf)" {
		t.Errorf("name = %q", p.Name())
	}
	// Infinite variant has no conflicts: thousands of PCs tracked
	// independently.
	for i := uint64(0); i < 5000; i++ {
		pc := 0x1000 + i*4
		p.Record(pc, only(CompCAP), 0, true)
		p.Record(pc, only(CompCAP), 0, true)
	}
	for i := uint64(0); i < 5000; i++ {
		pc := 0x1000 + i*4
		if p.Allow(CompCAP, pc) {
			t.Fatalf("pc %#x not silenced in infinite PC-AM", pc)
		}
	}
}

func TestPCAMMonitorsUnusedConfidentComponents(t *testing.T) {
	// A load predicted by CVP but with SAP also confident: SAP's
	// counters must update even though its prediction was not used.
	p := NewPCAM(64)
	pc := uint64(0x400)
	var conf ComponentSet
	conf.Add(CompCVP)
	conf.Add(CompSAP)
	p.Record(pc, conf, only(CompCVP), true) // CVP correct, SAP wrong, flush allocates
	for i := 0; i < 20; i++ {
		p.Record(pc, conf, only(CompCVP), false)
	}
	if p.Allow(CompSAP, pc) {
		t.Error("PC-AM did not silence the always-wrong unused component")
	}
	if !p.Allow(CompCVP, pc) {
		t.Error("PC-AM silenced the always-correct component")
	}
}

func TestPCAMReset(t *testing.T) {
	for _, size := range []int{64, 0} {
		p := NewPCAM(size)
		p.Record(0x400, only(CompLVP), 0, true)
		for i := 0; i < 10; i++ {
			p.Record(0x400, only(CompLVP), 0, true)
		}
		if p.Allow(CompLVP, 0x400) {
			t.Fatal("precondition failed")
		}
		p.Reset()
		if !p.Allow(CompLVP, 0x400) {
			t.Errorf("Reset(size=%d) did not clear state", size)
		}
	}
}

// Property: PC-AM counters never exceed 8 bits regardless of the update
// sequence (the halving rule must keep them in range).
func TestPCAMCounterBoundsProperty(t *testing.T) {
	p := NewPCAM(16)
	err := quick.Check(func(pcSeed uint16, outcomes []bool) bool {
		pc := uint64(pcSeed) << 2
		p.Record(pc, allSet(), 0, true)
		for _, ok := range outcomes {
			var correct ComponentSet
			if ok {
				correct = allSet()
			}
			p.Record(pc, allSet(), correct, !ok)
		}
		e := p.find(pc)
		if e == nil {
			return true // replaced by another property iteration
		}
		for c := Component(0); c < NumComponents; c++ {
			if e.correct[c] > 0x80 || e.incorrect[c] > 0x80 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Error(err)
	}
}

func TestItoa(t *testing.T) {
	cases := map[int]string{0: "0", 5: "5", 64: "64", -3: "-3", 1234567: "1234567"}
	for in, want := range cases {
		if got := itoa(in); got != want {
			t.Errorf("itoa(%d) = %q, want %q", in, got, want)
		}
	}
}
