package core

import "testing"

// trainComposite drives the composite's full probe→validate→train loop
// with a memory resolver that echoes the outcome value for any correct
// address and a sentinel otherwise.
func trainComposite(c *Composite, o Outcome, n int) {
	resolve := func(addr uint64, size uint8) (uint64, bool) {
		if addr == o.Addr&vaMask {
			return o.Value, true
		}
		return ^uint64(0), true
	}
	for i := 0; i < n; i++ {
		lk := c.Probe(Probe{PC: o.PC, BranchHist: o.BranchHist, LoadPath: o.LoadPath})
		c.Train(o, &lk, Validate(&lk, o, resolve))
	}
}

func newTestComposite(opts CompositeConfig) *Composite {
	if opts.Entries == ([NumComponents]int{}) {
		opts.Entries = HomogeneousEntries(256)
	}
	if opts.Seed == 0 {
		opts.Seed = 42
	}
	return NewComposite(opts)
}

func TestCompositeSelectionPriority(t *testing.T) {
	c := newTestComposite(CompositeConfig{})
	o := Outcome{PC: 0x100, BranchHist: 0x3, LoadPath: 0x9, Addr: 0x7000, Value: 55, Size: 8}
	trainComposite(c, o, 300)
	lk := c.Probe(Probe{PC: o.PC, BranchHist: o.BranchHist, LoadPath: o.LoadPath})
	if !lk.Used {
		t.Fatal("no prediction after 300 stable observations")
	}
	// A stable load (same value, same address) makes all four confident
	// eventually; CVP must win the priority (value first, context-aware
	// first).
	if lk.Confident.Count() < 3 {
		t.Fatalf("expected broad confidence, got %d components", lk.Confident.Count())
	}
	if lk.Chosen != CompCVP {
		t.Errorf("chosen = %v, want CVP (selection priority)", lk.Chosen)
	}
}

func TestCompositeSelectionFallsBack(t *testing.T) {
	// With only SAP and CAP present, CAP (context-aware address) should
	// be preferred over SAP.
	var entries [NumComponents]int
	entries[CompSAP] = 64
	entries[CompCAP] = 64
	c := NewComposite(CompositeConfig{Entries: entries, Seed: 9})
	o := Outcome{PC: 0x100, LoadPath: 0x9, Addr: 0x7000, Value: 55, Size: 8}
	trainComposite(c, o, 100)
	lk := c.Probe(Probe{PC: o.PC, LoadPath: o.LoadPath})
	if !lk.Used || lk.Chosen != CompCAP {
		t.Errorf("used=%v chosen=%v, want CAP before SAP", lk.Used, lk.Chosen)
	}
}

func TestCompositeOmittedComponents(t *testing.T) {
	var entries [NumComponents]int
	entries[CompLVP] = 64
	c := NewComposite(CompositeConfig{Entries: entries, Seed: 9})
	if c.Component(CompSAP) != nil || c.Component(CompCVP) != nil || c.Component(CompCAP) != nil {
		t.Error("omitted components should be nil")
	}
	o := Outcome{PC: 0x100, Value: 55, Addr: 0x7000, Size: 8}
	trainComposite(c, o, 300)
	lk := c.Probe(Probe{PC: o.PC})
	if !lk.Used || lk.Chosen != CompLVP {
		t.Errorf("single-component composite: used=%v chosen=%v", lk.Used, lk.Chosen)
	}
}

func TestCompositeStorageAccounting(t *testing.T) {
	c := NewComposite(CompositeConfig{Entries: HomogeneousEntries(1024), Seed: 1})
	// 1024 × (81 + 77 + 81 + 67) bits = 38.25KB. The paper's Table VI
	// reports 38.21KB for this configuration (minor accounting
	// differences); require agreement within 1%.
	kb := c.StorageKB()
	if kb < 37.8 || kb > 38.7 {
		t.Errorf("homogeneous 1K composite storage = %.2fKB, want ≈ 38.25KB", kb)
	}
}

func TestCompositeTrainAllUpdatesEveryComponent(t *testing.T) {
	c := newTestComposite(CompositeConfig{})
	o := Outcome{PC: 0x100, Addr: 0x7000, Value: 1, Size: 8}
	lk := c.Probe(Probe{PC: o.PC})
	c.Train(o, &lk, Validation{})
	st := c.Stats()
	if st.TrainEvents != 1 || st.TrainedComponents != 4 {
		t.Errorf("train-all: events=%d components=%d, want 1/4", st.TrainEvents, st.TrainedComponents)
	}
}

func TestSmartTrainingTrainsOnlyBestWhenAllCorrect(t *testing.T) {
	c := newTestComposite(CompositeConfig{SmartTraining: true})
	o := Outcome{PC: 0x100, BranchHist: 0x3, LoadPath: 0x9, Addr: 0x7000, Value: 55, Size: 8}
	// Build up full confidence first (smart training trains all while
	// no prediction is made).
	trainComposite(c, o, 300)

	lk := c.Probe(Probe{PC: o.PC, BranchHist: o.BranchHist, LoadPath: o.LoadPath})
	if lk.Confident.Count() != 4 {
		t.Skipf("need all four confident, got %d", lk.Confident.Count())
	}
	before := c.Stats()
	all := allComponents()
	c.Train(o, &lk, Validation{Consistent: all, Valued: all, Correct: all})
	after := c.Stats()
	trained := after.TrainedComponents - before.TrainedComponents
	// All four correct: train LVP only (first in training order), and
	// invalidate SAP.
	if trained != 1 {
		t.Errorf("smart training updated %d components, want 1", trained)
	}
	if after.SAPInvalidations != before.SAPInvalidations+1 {
		t.Error("smart training did not invalidate the unchosen-but-correct SAP entry")
	}
	if _, ok := c.Component(CompSAP).Predict(Probe{PC: o.PC}); ok {
		t.Error("SAP entry survived smart-training invalidation")
	}
}

func TestSmartTrainingTrainsMispredictors(t *testing.T) {
	c := newTestComposite(CompositeConfig{SmartTraining: true})
	o := Outcome{PC: 0x100, BranchHist: 0x3, LoadPath: 0x9, Addr: 0x7000, Value: 55, Size: 8}
	trainComposite(c, o, 300)
	lk := c.Probe(Probe{PC: o.PC, BranchHist: o.BranchHist, LoadPath: o.LoadPath})
	if lk.Confident.Count() < 2 {
		t.Skip("need at least two confident components")
	}
	// Pretend the value changed: value predictors now mispredict, while
	// address predictors still point at the right location (their
	// resolved value would also change, so mark them incorrect too).
	o2 := o
	o2.Value = 77
	v := Validate(&lk, o2, func(addr uint64, size uint8) (uint64, bool) {
		return 77, true // memory already holds the new value
	})
	// Address predictions hit the right address and resolve the new
	// value → correct; value predictions stale → inconsistent.
	before := c.Stats()
	c.Train(o2, &lk, v)
	after := c.Stats()
	if after.TrainedComponents == before.TrainedComponents {
		t.Error("smart training trained nothing after mispredictions")
	}
	// The stale LVP entry must have been trained (reset) by the
	// misprediction rule.
	if pr, ok := c.Component(CompLVP).Predict(Probe{PC: o.PC}); ok && pr.Value == 55 {
		t.Error("mispredicting LVP entry was not retrained")
	}
}

func TestSmartTrainingTrainsAllWhenNoPrediction(t *testing.T) {
	c := newTestComposite(CompositeConfig{SmartTraining: true})
	o := Outcome{PC: 0x100, Addr: 0x7000, Value: 1, Size: 8}
	lk := c.Probe(Probe{PC: o.PC}) // nothing confident yet
	c.Train(o, &lk, Validation{})
	st := c.Stats()
	if st.TrainedComponents != 4 {
		t.Errorf("no-prediction case trained %d, want all 4", st.TrainedComponents)
	}
}

func TestCompositeNilLookupTrains(t *testing.T) {
	c := newTestComposite(CompositeConfig{})
	o := Outcome{PC: 0x100, Addr: 0x7000, Value: 1, Size: 8}
	c.Train(o, nil, Validation{}) // must not panic; treated as empty lookup
	if c.Stats().TrainEvents != 1 {
		t.Error("nil lookup did not train")
	}
}

func TestValidate(t *testing.T) {
	var lk Lookup
	lk.Confident.Add(CompLVP)
	lk.Preds[CompLVP] = Prediction{Kind: KindValue, Source: CompLVP, Value: 10}
	lk.Confident.Add(CompSAP)
	lk.Preds[CompSAP] = Prediction{Kind: KindAddress, Source: CompSAP, Addr: 0x7000, Size: 8}
	o := Outcome{PC: 1, Addr: 0x7000, Value: 10, Size: 8}

	resolveHit := func(addr uint64, size uint8) (uint64, bool) { return 10, true }
	v := Validate(&lk, o, resolveHit)
	if !v.Correct.Has(CompLVP) || !v.Correct.Has(CompSAP) {
		t.Errorf("Correct = %b, want LVP and SAP", v.Correct)
	}
	if !v.Consistent.Has(CompSAP) || !v.Valued.Has(CompSAP) {
		t.Error("hitting, matching address prediction must be consistent and valued")
	}

	// Address right but stale data: consistent, valued, NOT correct.
	resolveStale := func(addr uint64, size uint8) (uint64, bool) { return 99, true }
	v = Validate(&lk, o, resolveStale)
	if v.Correct.Has(CompSAP) {
		t.Error("address prediction counted correct despite changed data")
	}
	if !v.Consistent.Has(CompSAP) || !v.Valued.Has(CompSAP) {
		t.Error("stale-data case must stay consistent and valued")
	}
	if !v.Correct.Has(CompLVP) {
		t.Error("value prediction should remain correct")
	}

	// Cache miss: no speculative value — consistent but not valued and
	// not correct (a non-event for the accuracy monitors).
	resolveMiss := func(addr uint64, size uint8) (uint64, bool) { return 0, false }
	v = Validate(&lk, o, resolveMiss)
	if v.Correct.Has(CompSAP) || v.Valued.Has(CompSAP) {
		t.Error("probe miss must not be valued or correct")
	}
	if !v.Consistent.Has(CompSAP) {
		t.Error("probe miss with matching address must stay consistent")
	}

	// Wrong address with coincidentally matching data: valued (it
	// speculated!) but neither consistent nor correct.
	lk.Preds[CompSAP].Addr = 0x9000
	v = Validate(&lk, o, resolveHit)
	if v.Correct.Has(CompSAP) || v.Consistent.Has(CompSAP) {
		t.Error("wrong-address prediction counted correct/consistent")
	}
	if !v.Valued.Has(CompSAP) {
		t.Error("wrong-address hit still delivered a value")
	}

	if v := Validate(nil, o, resolveHit); v != (Validation{}) {
		t.Error("nil lookup must produce an empty validation")
	}
}

func allComponents() ComponentSet {
	var s ComponentSet
	for c := Component(0); c < NumComponents; c++ {
		s.Add(c)
	}
	return s
}

func TestCompositeStatsHistogram(t *testing.T) {
	c := newTestComposite(CompositeConfig{})
	o := Outcome{PC: 0x100, BranchHist: 0x3, LoadPath: 0x9, Addr: 0x7000, Value: 55, Size: 8}
	trainComposite(c, o, 400)
	st := c.Stats()
	if st.Probes != 400 {
		t.Errorf("probes = %d, want 400", st.Probes)
	}
	if st.PredictedLoads == 0 {
		t.Error("no predicted loads recorded")
	}
	var histTotal uint64
	for _, v := range st.ConfidentHistogram {
		histTotal += v
	}
	if histTotal != st.PredictedLoads {
		t.Errorf("histogram total %d != predicted loads %d", histTotal, st.PredictedLoads)
	}
	if st.UsedPredictions > st.PredictedLoads {
		t.Error("used predictions exceed predicted loads")
	}
}

func TestComponentSet(t *testing.T) {
	var s ComponentSet
	if s.Count() != 0 {
		t.Error("empty set count != 0")
	}
	s.Add(CompLVP)
	s.Add(CompCAP)
	s.Add(CompCAP) // idempotent
	if !s.Has(CompLVP) || !s.Has(CompCAP) || s.Has(CompSAP) || s.Has(CompCVP) {
		t.Errorf("set membership wrong: %b", s)
	}
	if s.Count() != 2 {
		t.Errorf("count = %d, want 2", s.Count())
	}
}

func TestComponentString(t *testing.T) {
	names := map[Component]string{CompLVP: "LVP", CompSAP: "SAP", CompCVP: "CVP", CompCAP: "CAP"}
	for c, want := range names {
		if c.String() != want {
			t.Errorf("%d.String() = %q, want %q", c, c.String(), want)
		}
	}
	if Component(9).String() == "" {
		t.Error("unknown component must still format")
	}
	if KindValue.String() != "value" || KindAddress.String() != "address" {
		t.Error("Kind.String wrong")
	}
}

func TestCompositeResetState(t *testing.T) {
	c := newTestComposite(CompositeConfig{})
	o := Outcome{PC: 0x100, BranchHist: 0x3, LoadPath: 0x9, Addr: 0x7000, Value: 55, Size: 8}
	trainComposite(c, o, 300)
	c.ResetState()
	lk := c.Probe(Probe{PC: o.PC, BranchHist: o.BranchHist, LoadPath: o.LoadPath})
	if lk.Confident != 0 {
		t.Error("confidence survived ResetState")
	}
	st := c.Stats()
	if st.Probes != 1 {
		t.Errorf("stats not reset: probes = %d", st.Probes)
	}
}

func TestLookupPrediction(t *testing.T) {
	var lk Lookup
	if _, ok := lk.Prediction(); ok {
		t.Error("unused lookup returned a prediction")
	}
	lk.Used = true
	lk.Chosen = CompLVP
	lk.Preds[CompLVP] = Prediction{Kind: KindValue, Value: 7}
	pr, ok := lk.Prediction()
	if !ok || pr.Value != 7 {
		t.Error("Prediction() lost the chosen prediction")
	}
}
