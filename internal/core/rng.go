package core

// XorShift64 is a tiny deterministic pseudo-random generator used for
// probabilistic confidence updates (FPC) and replacement decisions.
// It is the xorshift64* generator: fast, stateless beyond 8 bytes, and
// reproducible — important so that every simulation run is bit-identical
// for a given seed.
type XorShift64 struct {
	state uint64
	seed  uint64
}

// NewXorShift64 returns a generator seeded with seed. A zero seed is
// remapped to a fixed non-zero constant because the all-zero state is a
// fixed point of the xorshift recurrence.
func NewXorShift64(seed uint64) *XorShift64 {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &XorShift64{state: seed, seed: seed}
}

// Reset rewinds the generator to its initial seed, so a component that
// resets all of its dynamic state reproduces a fresh run bit for bit.
func (x *XorShift64) Reset() { x.state = x.seed }

// Next returns the next 64-bit pseudo-random value.
func (x *XorShift64) Next() uint64 {
	s := x.state
	s ^= s >> 12
	s ^= s << 25
	s ^= s >> 27
	x.state = s
	return s * 0x2545F4914F6CDD1D
}

// Chance returns true with probability 1/denom. Chance(1) is always
// true; Chance(0) is always false (a disabled probabilistic event).
func (x *XorShift64) Chance(denom uint32) bool {
	if denom == 0 {
		return false
	}
	if denom == 1 {
		return true
	}
	return x.Next()%uint64(denom) == 0
}

// Intn returns a pseudo-random integer in [0, n). n must be positive.
func (x *XorShift64) Intn(n int) int {
	if n <= 0 {
		panic("core: Intn with non-positive n")
	}
	return int(x.Next() % uint64(n))
}

// SplitMix64 advances a seed with the splitmix64 finalizer. It is used
// to derive independent sub-seeds (for example, one per predictor) from
// a single run seed.
func SplitMix64(seed uint64) uint64 {
	seed += 0x9E3779B97F4A7C15
	z := seed
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}
