package core

// This file implements the Accuracy Monitors of Section V-B. An AM
// throttles an entire component predictor (M-AM) or a component
// predictor for a particular load PC (PC-AM) when its observed accuracy
// drops, squashing confident predictions that the per-entry confidence
// mechanism alone would have allowed.

// ComponentSet is a bitset over the four component predictors.
type ComponentSet uint8

// Add includes a component in the set.
func (s *ComponentSet) Add(c Component) { *s |= 1 << c }

// Has reports whether the set includes c.
func (s ComponentSet) Has(c Component) bool { return s&(1<<c) != 0 }

// Count returns the number of components in the set.
func (s ComponentSet) Count() int {
	n := 0
	for c := Component(0); c < NumComponents; c++ {
		if s.Has(c) {
			n++
		}
	}
	return n
}

// AccuracyMonitor is the interface shared by the AM variants. The
// composite predictor consults Allow at prediction time (fetch) and
// reports validation results at execute time via Record.
type AccuracyMonitor interface {
	// Allow reports whether comp may deliver a confident prediction for
	// the load at pc.
	Allow(comp Component, pc uint64) bool

	// Record observes the validation of a value-predicted load:
	// confident is the set of components that had confident predictions
	// at fetch, correct the subset that validated correct, and flush
	// whether the used prediction was wrong and triggered recovery.
	Record(pc uint64, confident, correct ComponentSet, flush bool)

	// Instret advances the retired-instruction count, driving epoch
	// boundaries.
	Instret(n uint64)

	// Reset clears all monitor state.
	Reset()

	// Name identifies the variant ("M-AM", "PC-AM(64)", ...).
	Name() string
}

// MAMEpoch is the M-AM epoch length in retired instructions.
const MAMEpoch = 1_000_000

// MAMThresholdMPKP is the mispredictions-per-kilo-predictions rate above
// which M-AM silences a component for the next epoch.
const MAMThresholdMPKP = 3.0

// MAM is the epoch-based accuracy monitor: if a component's
// misprediction rate within an epoch exceeds 3 MPKP, the component is
// silenced for the following epoch. Silenced predictors continue to
// train (the composite always trains; only prediction delivery is
// squashed).
type MAM struct {
	preds    [NumComponents]uint64
	mispreds [NumComponents]uint64
	silenced [NumComponents]bool
	instret  uint64
	epoch    uint64
}

// NewMAM returns an M-AM with the paper's epoch of one million
// instructions.
func NewMAM() *MAM { return &MAM{epoch: MAMEpoch} }

// NewMAMEpoch returns an M-AM with a custom epoch length. Simulations
// far shorter than the paper's 100M-instruction simpoints scale the
// epoch down proportionally so throttling decisions still happen.
func NewMAMEpoch(epoch uint64) *MAM {
	if epoch == 0 {
		epoch = MAMEpoch
	}
	return &MAM{epoch: epoch}
}

// Name implements AccuracyMonitor.
func (m *MAM) Name() string { return "M-AM" }

// Allow implements AccuracyMonitor.
func (m *MAM) Allow(comp Component, _ uint64) bool { return !m.silenced[comp] }

// Record implements AccuracyMonitor.
func (m *MAM) Record(_ uint64, confident, correct ComponentSet, _ bool) {
	for c := Component(0); c < NumComponents; c++ {
		if !confident.Has(c) {
			continue
		}
		m.preds[c]++
		if !correct.Has(c) {
			m.mispreds[c]++
		}
	}
}

// Instret implements AccuracyMonitor: at each epoch boundary the
// counters are evaluated against the MPKP threshold and reset.
func (m *MAM) Instret(n uint64) {
	m.instret += n
	for m.instret >= m.epoch {
		m.instret -= m.epoch
		for c := Component(0); c < NumComponents; c++ {
			mpkp := 0.0
			if m.preds[c] > 0 {
				mpkp = float64(m.mispreds[c]) * 1000 / float64(m.preds[c])
			}
			m.silenced[c] = mpkp > MAMThresholdMPKP
			m.preds[c] = 0
			m.mispreds[c] = 0
		}
	}
}

// Reset implements AccuracyMonitor.
func (m *MAM) Reset() {
	*m = MAM{epoch: m.epoch}
}

// LiveMPKP returns the running mispredictions-per-kilo-predictions of
// the current (incomplete) epoch per component, plus the set of
// components currently silenced (decided at the previous epoch
// boundary). It allocates nothing and exists for live telemetry; the
// silencing decision itself only ever happens at epoch boundaries.
// Callers must run on the simulation goroutine (MAM is not locked).
func (m *MAM) LiveMPKP() (mpkp [NumComponents]float64, silenced ComponentSet) {
	for c := Component(0); c < NumComponents; c++ {
		if m.preds[c] > 0 {
			mpkp[c] = float64(m.mispreds[c]) * 1000 / float64(m.preds[c])
		}
		if m.silenced[c] {
			silenced.Add(c)
		}
	}
	return mpkp, silenced
}

// PCAMAccuracyFloor is the per-PC accuracy below which PC-AM silences a
// component for that PC.
const PCAMAccuracyFloor = 0.95

type pcamEntry struct {
	tag       uint16
	correct   [NumComponents]uint8
	incorrect [NumComponents]uint8
}

// PCAM is the per-PC accuracy monitor: a direct-mapped, PC-indexed,
// PC-tagged table allocated on value-misprediction flushes. Each entry
// keeps narrow correct/incorrect counters per component; when any
// counter's most significant bit sets, all eight shift right, preserving
// the correct-to-incorrect ratio in 8 bits (Section V-B-2).
type PCAM struct {
	entries  []pcamEntry
	valid    []bool
	infinite map[uint64]*pcamEntry
	size     int
}

// NewPCAM builds a PC-AM with the given number of entries. size <= 0
// builds the infinite variant used as a limit study in Figure 6.
func NewPCAM(size int) *PCAM {
	p := &PCAM{size: size}
	if size <= 0 {
		p.infinite = make(map[uint64]*pcamEntry)
		return p
	}
	p.entries = make([]pcamEntry, size)
	p.valid = make([]bool, size)
	return p
}

// Name implements AccuracyMonitor.
func (p *PCAM) Name() string {
	if p.infinite != nil {
		return "PC-AM(inf)"
	}
	return "PC-AM(" + itoa(p.size) + ")"
}

// index hashes the low-order PC bits, e.g. (PC>>2) ^ (PC>>8) for a
// 64-entry monitor.
func (p *PCAM) index(pc uint64) int {
	shift := uint(2)
	for (1 << shift) < p.size {
		shift++
	}
	return int(((pc >> 2) ^ (pc >> (2 + shift))) % uint64(p.size))
}

// tagOf folds low-order PC bits into a 10-bit partial tag,
// (PC>>2) ^ (PC>>12).
func tagOf(pc uint64) uint16 {
	return uint16(((pc >> 2) ^ (pc >> 12)) & 0x3FF)
}

// find returns the monitor entry for pc, or nil.
func (p *PCAM) find(pc uint64) *pcamEntry {
	if p.infinite != nil {
		return p.infinite[pc>>2]
	}
	i := p.index(pc)
	if p.valid[i] && p.entries[i].tag == tagOf(pc) {
		return &p.entries[i]
	}
	return nil
}

// Allow implements AccuracyMonitor: a component is silenced for a PC
// when the monitored accuracy for that PC falls below 95%.
func (p *PCAM) Allow(comp Component, pc uint64) bool {
	e := p.find(pc)
	if e == nil {
		return true
	}
	c := float64(e.correct[comp])
	i := float64(e.incorrect[comp])
	if c+i == 0 {
		return true
	}
	return c/(c+i) >= PCAMAccuracyFloor
}

// Record implements AccuracyMonitor. A misprediction flush allocates an
// entry (possibly replacing the existing one at that index); a predicted
// load that has an entry updates the counters of every confident
// component, monitoring even the predictors whose prediction was not
// used.
func (p *PCAM) Record(pc uint64, confident, correct ComponentSet, flush bool) {
	e := p.find(pc)
	if e == nil {
		if !flush {
			return
		}
		if p.infinite != nil {
			e = &pcamEntry{}
			p.infinite[pc>>2] = e
		} else {
			i := p.index(pc)
			p.entries[i] = pcamEntry{tag: tagOf(pc)}
			p.valid[i] = true
			e = &p.entries[i]
		}
	}
	for c := Component(0); c < NumComponents; c++ {
		if !confident.Has(c) {
			continue
		}
		if correct.Has(c) {
			e.correct[c]++
		} else {
			e.incorrect[c]++
		}
	}
	// Preserve relative ratios within 8-bit counters: if any counter's
	// MSB sets, shift all eight right.
	msb := false
	for c := Component(0); c < NumComponents; c++ {
		if e.correct[c] >= 0x80 || e.incorrect[c] >= 0x80 {
			msb = true
			break
		}
	}
	if msb {
		for c := Component(0); c < NumComponents; c++ {
			e.correct[c] >>= 1
			e.incorrect[c] >>= 1
		}
	}
}

// Instret implements AccuracyMonitor (PC-AM has no epochs).
func (p *PCAM) Instret(uint64) {}

// Reset implements AccuracyMonitor.
func (p *PCAM) Reset() {
	if p.infinite != nil {
		p.infinite = make(map[uint64]*pcamEntry)
		return
	}
	clear(p.entries)
	for i := range p.valid {
		p.valid[i] = false
	}
}

// itoa is a minimal integer formatter that avoids pulling fmt into hot
// paths.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
