package core

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFPCEffective(t *testing.T) {
	cases := []struct {
		name      string
		vector    []uint32
		threshold uint8
		want      int
	}{
		{"LVP", FPCVectorLVP, LVPThreshold, 64},
		{"SAP", FPCVectorSAP, SAPThreshold, 9},
		{"CVP", FPCVectorCVP, CVPThreshold, 16},
		{"CAP", FPCVectorCAP, CAPThreshold, 4},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := NewFPC(tc.vector, 1)
			if got := f.Effective(tc.threshold); got != tc.want {
				t.Errorf("Effective(%d) = %d, want %d", tc.threshold, got, tc.want)
			}
		})
	}
}

func TestFPCBumpNeverDecreases(t *testing.T) {
	f := NewFPC(FPCVectorLVP, 42)
	conf := uint8(0)
	for i := 0; i < 10000; i++ {
		next := f.Bump(conf)
		if next < conf {
			t.Fatalf("Bump decreased confidence: %d -> %d", conf, next)
		}
		if next > conf+1 {
			t.Fatalf("Bump advanced by more than one: %d -> %d", conf, next)
		}
		conf = next
	}
	if conf != f.Max() {
		t.Errorf("after 10000 bumps confidence = %d, want saturated %d", conf, f.Max())
	}
}

func TestFPCSaturates(t *testing.T) {
	f := NewFPC([]uint32{1, 1}, 7)
	if got := f.Bump(2); got != 2 {
		t.Errorf("Bump at max = %d, want 2", got)
	}
	if got := f.Bump(200); got != 2 {
		t.Errorf("Bump beyond max = %d, want clamp to 2", got)
	}
}

// TestFPCExpectedObservations checks the statistical contract: raising a
// counter from zero to the threshold takes, on average, Effective()
// observations.
func TestFPCExpectedObservations(t *testing.T) {
	const trials = 4000
	f := NewFPC(FPCVectorCVP, 99)
	total := 0
	for trial := 0; trial < trials; trial++ {
		conf := uint8(0)
		for conf < CVPThreshold {
			conf = f.Bump(conf)
			total++
		}
	}
	mean := float64(total) / trials
	want := float64(f.Effective(CVPThreshold))
	if math.Abs(mean-want) > want*0.1 {
		t.Errorf("mean observations to threshold = %.2f, want ≈ %.0f", mean, want)
	}
}

func TestFPCDeterminism(t *testing.T) {
	a := NewFPC(FPCVectorLVP, 7)
	b := NewFPC(FPCVectorLVP, 7)
	conf1, conf2 := uint8(0), uint8(0)
	for i := 0; i < 1000; i++ {
		conf1 = a.Bump(conf1)
		conf2 = b.Bump(conf2)
		if conf1 != conf2 {
			t.Fatalf("same-seed FPCs diverged at step %d: %d vs %d", i, conf1, conf2)
		}
	}
}

func TestFPCPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("empty vector", func() { NewFPC(nil, 1) })
	mustPanic("zero entry", func() { NewFPC([]uint32{1, 0}, 1) })
}

func TestFPCVectorIsCopied(t *testing.T) {
	v := []uint32{1, 2, 3}
	f := NewFPC(v, 1)
	v[0] = 99
	if got := f.Vector()[0]; got != 1 {
		t.Errorf("FPC shares caller's vector: got %d, want 1", got)
	}
	out := f.Vector()
	out[1] = 77
	if got := f.Vector()[1]; got != 2 {
		t.Errorf("Vector() exposes internal state: got %d, want 2", got)
	}
}

func TestXorShiftChance(t *testing.T) {
	x := NewXorShift64(3)
	if x.Chance(0) {
		t.Error("Chance(0) must be false")
	}
	if !x.Chance(1) {
		t.Error("Chance(1) must be true")
	}
	const n = 200000
	hits := 0
	for i := 0; i < n; i++ {
		if x.Chance(8) {
			hits++
		}
	}
	rate := float64(hits) / n
	if math.Abs(rate-0.125) > 0.01 {
		t.Errorf("Chance(8) rate = %.4f, want ≈ 0.125", rate)
	}
}

func TestXorShiftZeroSeed(t *testing.T) {
	x := NewXorShift64(0)
	if x.Next() == 0 && x.Next() == 0 {
		t.Error("zero seed produced a stuck generator")
	}
}

func TestSplitMixDistinct(t *testing.T) {
	seen := make(map[uint64]bool)
	s := uint64(0)
	for i := 0; i < 1000; i++ {
		s = SplitMix64(s)
		if seen[s] {
			t.Fatalf("SplitMix64 repeated value after %d steps", i)
		}
		seen[s] = true
	}
}

func TestIntnRange(t *testing.T) {
	x := NewXorShift64(5)
	err := quick.Check(func(n uint8) bool {
		m := int(n%63) + 1
		v := x.Intn(m)
		return v >= 0 && v < m
	}, nil)
	if err != nil {
		t.Error(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	x.Intn(0)
}
