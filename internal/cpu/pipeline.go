package cpu

import (
	"context"
	"time"

	"repro/internal/branch"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/memdep"
	"repro/internal/stats"
	"repro/internal/trace"
)

// timingRingSize returns how far back per-instruction timing records
// are kept: the next power of two past twice the largest window
// resource (ROB, IQ). The ROB/IQ backpressure probes look back exactly
// ROB and IQ slots; the memory-dependence probe (ringAt(depSeq)) can
// ask about arbitrarily old stores, but a record with seq <= cur-ROB
// can never satisfy its `execDone > rdy` test — in-order commit makes
// commitC monotone in seq and execDone <= commitC, so such a record's
// execDone <= commitC(cur-ROB) <= windowReady <= rdy — making a ring
// just past the ROB indistinguishable from an unbounded history. Twice
// the window keeps the ring small enough to stay cache-resident (the
// former fixed 8192-slot ring streamed 320KB through the cache every
// 8K instructions).
func timingRingSize(cfg Config) int {
	n := cfg.ROB
	if cfg.IQ > n {
		n = cfg.IQ
	}
	size := 256
	for size < 2*n {
		size <<= 1
	}
	return size
}

// slotTiming is one per-instruction timing record. A record is live only
// when both seq and run match the query: tagging each record with the
// run generation lets Reset retire the whole 256KB ring by bumping a
// counter instead of clearing it (a stale record and an absent one are
// indistinguishable to every ringAt consumer).
type slotTiming struct {
	seq      uint64
	run      uint64
	issueC   uint64
	execDone uint64
	commitC  uint64
}

type loadStoreTiming struct {
	seq     uint64
	commitC uint64
}

// storeRecord remembers the most recent store to an 8-byte word: who it
// was, when it executed, and the word's prior contents — enough to model
// a PAQ probe reading stale data ahead of an in-flight conflicting
// store (the hazard DLVP's value check exists for).
type storeRecord struct {
	seq      uint64
	pc       uint64
	execDone uint64
	prevWord uint64
}

// pendingTrain defers predictor training to the load's completion,
// modeling the prediction-to-update latency that produces the paper's
// training-time effects (Table V). Trainings are applied in program
// order (commit order): a load's update becomes visible once it and
// every older load have executed, keeping stride/context state coherent
// under out-of-order completion.
type pendingTrain struct {
	trainC  uint64
	outcome core.Outcome
	rec     uint64 // engine record handle from Probe
	probeC  uint64 // PAQ probe cycle for address resolution
	specSeq uint64 // the load's sequence number
	fcAt    uint64 // fetch cycle when queued (a lower bound on probeC)
}

// instretEvery is the cadence, in retired instructions, at which the
// pipeline flushes the batched Instret count to the engine.
const instretEvery = 4096

// trainQueue is a FIFO of pending trainings in program order.
type trainQueue struct {
	q    []pendingTrain
	head int
}

func (t *trainQueue) push(p pendingTrain) {
	// In-order application: a training never becomes visible before an
	// older one, so carry the running maximum completion cycle.
	if n := len(t.q); n > t.head && t.q[n-1].trainC > p.trainC {
		p.trainC = t.q[n-1].trainC
	}
	t.q = append(t.q, p)
}

func (t *trainQueue) peek() (pendingTrain, bool) {
	if t.head >= len(t.q) {
		return pendingTrain{}, false
	}
	return t.q[t.head], true
}

func (t *trainQueue) pop() pendingTrain {
	p := t.q[t.head]
	t.q[t.head] = pendingTrain{}
	t.head++
	if t.head == len(t.q) {
		t.q = t.q[:0]
		t.head = 0
	}
	return p
}

// Pipeline is the trace-driven core model. A pipeline serves one run at
// a time; Reset (or the package's Acquire/Release pool) recycles it for
// the next run without re-allocating the hierarchy, predictors, or
// rings. The steady-state per-instruction path performs no map
// operations and no heap allocations.
type Pipeline struct {
	cfg    Config
	hier   *mem.Hierarchy
	tage   *branch.TAGE
	ittage *branch.ITTAGE
	ras    *branch.RAS
	mdp    *memdep.Predictor
	engine Engine

	// Probe batching (see batch.go). batchEng is the engine's
	// BatchEngine refinement (nil when unsupported), lookahead the
	// in-memory remainder of the instruction stream during slice-fast-
	// path runs, engineGen a counter bumped on every engine mutation so
	// stale batches are discarded.
	batchEng  BatchEngine
	lookahead []trace.Inst
	engineGen uint64
	batch     probeBatch
	batchCool uint64 // no batch fills until this sequence number

	hist     branch.History
	loadPath uint64

	simMem *mem.Backing

	// Fetch bandwidth accounting.
	fetchCycle uint64
	fetchUsed  int
	redirectC  uint64

	// Commit bandwidth accounting.
	commitCycle uint64
	commitUsed  int

	regReady [trace.NumRegs]uint64

	ring      []slotTiming
	ringMask  uint64
	runGen    uint64 // current run generation; ring records from other runs are dead
	loadRing  []loadStoreTiming
	storeRing []loadStoreTiming
	nLoads    uint64
	nStores   uint64

	// Per-cycle resource claims (issue bandwidth, load/store lanes, PAQ
	// probe ports), formerly cycle-keyed maps.
	laneUse cycleRing
	lsUse   cycleRing
	paqUse  cycleRing

	pending  trainQueue
	paqQueue []uint64 // completion cycles of recent PAQ probes
	paqHead  int

	// Bounded open-addressing tables, formerly maps (see rings.go).
	inflight  countTable // pc → in-flight probed loads
	lastStore storeTable // word → most recent store
	lineFill  fillTable  // 64B line → cycle its PAQ prefetch completes

	// Reusable address resolver: trainOne parameterizes the closure via
	// these fields instead of allocating a fresh closure per training.
	trainSeq    uint64
	trainProbeC uint64
	resolve     core.AddrResolver

	instretBatch uint64
	run          stats.Run

	// Scratch instruction slot for the run loop. A local would escape
	// to the heap through the gen.Next interface call, costing one
	// allocation per run.
	in trace.Inst

	// Progress probe (see progress.go). progLeft counts down to the
	// next publication; zero cadence means no probe attached.
	progress  *Progress
	progEvery uint64
	progLeft  uint64
	progStart int64
}

// New builds a pipeline with the given configuration and value
// prediction engine (nil = baseline, no value prediction).
func New(cfg Config, engine Engine) *Pipeline {
	p := &Pipeline{}
	p.build(cfg, engine)
	return p
}

// build (re)constructs every config-sized structure.
func (p *Pipeline) build(cfg Config, engine Engine) {
	p.cfg = cfg
	p.hier = mem.NewHierarchy(cfg.Hierarchy)
	p.tage = branch.NewTAGE(cfg.TAGE)
	p.ittage = branch.NewITTAGE(cfg.ITTAGE)
	p.ras = branch.NewRAS(cfg.RASSize)
	p.mdp = memdep.New(cfg.MemDep)
	p.engine = engine
	p.batchEng = nil
	if cfg.BatchProbes {
		p.batchEng, _ = engine.(BatchEngine)
	}
	p.loadRing = make([]loadStoreTiming, cfg.LDQ+1)
	p.storeRing = make([]loadStoreTiming, cfg.STQ+1)
	p.ring = make([]slotTiming, timingRingSize(cfg))
	p.ringMask = uint64(len(p.ring) - 1)
	n := cycleRingSize(cfg)
	p.laneUse = newCycleRing(n)
	p.lsUse = newCycleRing(n)
	p.paqUse = newCycleRing(n)
	p.lastStore = newStoreTable(4096)
	p.lineFill = newFillTable(16384)
	p.inflight = newCountTable(4096)
	p.simMem = nil
	if p.resolve == nil {
		p.resolve = func(addr uint64, size uint8) (uint64, bool) {
			if !p.hier.L1D.Peek(addr) {
				return 0, false
			}
			return p.probeRead(addr, size, p.trainSeq, p.trainProbeC), true
		}
	}
}

// configEqual compares configurations field by field. Hand-rolled
// rather than reflect.DeepEqual so the pooled steady state (Reset with
// an identical Config every run) allocates nothing; the branch
// predictor sub-configs carry history-length slices, which rule out
// plain ==. TestConfigEqualCoversEveryField perturbs each field via
// reflection, so a new Config field that this function ignores fails
// the suite rather than silently aliasing distinct configurations.
func configEqual(a, b Config) bool {
	return a.FetchWidth == b.FetchWidth &&
		a.FetchToExec == b.FetchToExec &&
		a.IssueWidth == b.IssueWidth &&
		a.CommitWidth == b.CommitWidth &&
		a.LSLanes == b.LSLanes &&
		a.ROB == b.ROB &&
		a.IQ == b.IQ &&
		a.LDQ == b.LDQ &&
		a.STQ == b.STQ &&
		a.StoreForwardLat == b.StoreForwardLat &&
		a.Hierarchy == b.Hierarchy &&
		a.TAGE.Equal(b.TAGE) &&
		a.ITTAGE.Equal(b.ITTAGE) &&
		a.RASSize == b.RASSize &&
		a.MemDep == b.MemDep &&
		a.PAQDepth == b.PAQDepth &&
		a.PAQPrefetchOnMiss == b.PAQPrefetchOnMiss &&
		a.SuppressStoreConflicts == b.SuppressStoreConflicts &&
		a.ReplayRecovery == b.ReplayRecovery &&
		a.ReplayPenalty == b.ReplayPenalty &&
		a.BatchProbes == b.BatchProbes
}

// Reset prepares the pipeline for a fresh run with cfg and engine,
// reusing every allocation when cfg matches the previous run's
// configuration. A reset pipeline behaves bit-identically to a newly
// constructed one.
func (p *Pipeline) Reset(cfg Config, engine Engine) {
	if p.hier == nil || !configEqual(cfg, p.cfg) {
		p.build(cfg, engine)
	} else {
		p.hier.Reset()
		p.tage.Reset()
		p.ittage.Reset()
		p.ras.Reset()
		p.mdp.Reset()
		p.laneUse.reset()
		p.lsUse.reset()
		p.paqUse.reset()
		p.lastStore.reset()
		p.lineFill.reset()
		p.inflight.reset()
		p.engine = engine
		p.batchEng = nil
		if cfg.BatchProbes {
			p.batchEng, _ = engine.(BatchEngine)
		}
	}
	p.batch.n, p.batch.pos = 0, 0
	p.hist = branch.History{}
	p.loadPath = 0
	p.fetchCycle, p.fetchUsed, p.redirectC = 0, 0, 0
	p.commitCycle, p.commitUsed = 0, 0
	p.regReady = [trace.NumRegs]uint64{}
	p.runGen++ // retire all ring records without clearing 256KB
	p.nLoads, p.nStores = 0, 0
	p.pending.q = p.pending.q[:0]
	p.pending.head = 0
	p.paqQueue = p.paqQueue[:0]
	p.paqHead = 0
	p.trainSeq, p.trainProbeC = 0, 0
	p.instretBatch = 0
	p.run = stats.Run{}
	p.progress, p.progEvery, p.progLeft, p.progStart = nil, 0, 0, 0
}

// SetProgress attaches a progress slot the next run publishes live
// snapshots into, every `every` instructions (<= 0 means
// DefaultProgressInterval). Call after Reset/Acquire and before Run;
// Reset detaches the slot so pooled pipelines never publish into a
// previous owner's slot. The probe costs one counter decrement per
// instruction plus a fixed set of atomic stores per publication, and
// allocates nothing.
func (p *Pipeline) SetProgress(pr *Progress, every int) {
	p.progress = pr
	if every <= 0 {
		every = DefaultProgressInterval
	}
	p.progEvery = uint64(every)
}

// publishProgress snapshots the run so far into the attached slot.
func (p *Pipeline) publishProgress(insts, cycles uint64) {
	s := ProgressSnapshot{
		Instructions:     insts,
		Cycles:           cycles,
		Loads:            p.run.Loads,
		PredictedLoads:   p.run.PredictedLoads,
		CorrectPredicted: p.run.CorrectPredicted,
		VPFlushes:        p.run.VPFlushes,
		StartedNano:      p.progStart,
		UpdatedNano:      time.Now().UnixNano(),
	}
	if ts, ok := p.engine.(TelemetrySource); ok {
		t := ts.Telemetry()
		s.Used, s.Correct, s.Incorrect = t.Used, t.Correct, t.Incorrect
		s.MPKP, s.Silenced = t.MPKP, t.Silenced
	}
	p.progress.publish(&s)
}

// Hierarchy exposes the memory system (for inspection in tests and
// experiments).
func (p *Pipeline) Hierarchy() *mem.Hierarchy { return p.hier }

// resourceClobbers reports how often a cycle ring overwrote a live
// future claim — always zero when the rings are sized correctly (the
// golden test asserts this).
func (p *Pipeline) resourceClobbers() uint64 {
	return p.laneUse.clobbers + p.lsUse.clobbers + p.paqUse.clobbers
}

// cancelCheckInterval is how many instructions run between context
// cancellation checks in RunCtx. It bounds how long a cancelled
// simulation keeps running: one check interval at most.
const cancelCheckInterval = 8192

// instSlicer is the optional Generator refinement the run loop uses to
// walk an in-memory instruction stream in place (implemented by
// trace.Replay and artifact cursors). The returned slice is read-only:
// step never writes through its *trace.Inst, so one recording can feed
// many concurrent pipelines.
type instSlicer interface {
	Remaining() []trace.Inst
	Advance(n int)
}

// Run simulates gen to completion and returns the collected metrics.
func (p *Pipeline) Run(gen trace.Generator, workload, config string) stats.Run {
	return p.RunCtx(context.Background(), gen, workload, config)
}

// RunCtx simulates gen to completion or until ctx is cancelled,
// whichever comes first, and returns the collected metrics.
// Cancellation is checked every cancelCheckInterval instructions (and
// once before the first), so a cancelled run returns within one
// interval with Aborted set and metrics covering the simulated prefix.
func (p *Pipeline) RunCtx(ctx context.Context, gen trace.Generator, workload, config string) stats.Run {
	// The simulator's memory image starts equal to the workload's: the
	// backing fill function is shared via Clone, and stores are applied
	// as they execute. A reused pipeline copies into its existing image
	// instead of allocating a new one.
	if p.simMem == nil {
		p.simMem = gen.Mem().Clone()
	} else {
		p.simMem.CopyFrom(gen.Mem())
	}

	p.run = stats.Run{Workload: workload, Config: config}
	if p.progress != nil {
		p.progStart = time.Now().UnixNano()
		p.progLeft = p.progEvery
	}
	done := ctx.Done()
	var seq uint64
	var lastCommit uint64
	if sl, ok := gen.(instSlicer); ok {
		// Slice fast path: generators whose remaining stream is already
		// in memory (Replay, artifact cursors) are walked in place — no
		// per-instruction interface dispatch, no 64-byte copy into the
		// scratch slot. Identical control flow to the generic loop below.
		insts := sl.Remaining()
		p.lookahead = insts
		p.batch.n, p.batch.pos = 0, 0
		p.batchCool = 0
		for seq < uint64(len(insts)) {
			if done != nil && seq%cancelCheckInterval == 0 {
				select {
				case <-done:
					p.run.Aborted = true
				default:
				}
				if p.run.Aborted {
					break
				}
			}
			lastCommit = p.step(seq, &insts[seq])
			seq++
			if seq%4096 == 0 {
				p.prune()
			}
			if p.progress != nil {
				p.progLeft--
				if p.progLeft == 0 {
					p.progLeft = p.progEvery
					p.publishProgress(seq, lastCommit)
				}
			}
		}
		sl.Advance(int(seq))
		p.lookahead = nil
	} else {
		for {
			if done != nil && seq%cancelCheckInterval == 0 {
				select {
				case <-done:
					p.run.Aborted = true
				default:
				}
				if p.run.Aborted {
					break
				}
			}
			if !gen.Next(&p.in) {
				break
			}
			lastCommit = p.step(seq, &p.in)
			seq++
			if seq%4096 == 0 {
				p.prune()
			}
			if p.progress != nil {
				p.progLeft--
				if p.progLeft == 0 {
					p.progLeft = p.progEvery
					p.publishProgress(seq, lastCommit)
				}
			}
		}
	}
	p.run.Instructions = seq
	p.run.Cycles = lastCommit
	if p.engine != nil && p.instretBatch > 0 {
		p.engine.Instret(p.instretBatch)
		p.instretBatch = 0
		p.engineGen++
	}
	if p.progress != nil {
		p.publishProgress(seq, lastCommit)
	}
	return p.run
}

// step processes one instruction through every pipeline stage and
// returns its commit cycle.
func (p *Pipeline) step(seq uint64, in *trace.Inst) uint64 {
	// ---- Window backpressure ----
	// An instruction cannot dispatch until the ROB/IQ/LDQ/STQ have
	// space; a stalled rename stage backpressures fetch, so the stall
	// is computed first and fed to the fetch stage as a floor. Without
	// this feedback, fetch (and the value predictor probes that happen
	// there) would run unboundedly ahead of execution.
	var windowReady uint64
	if seq >= uint64(p.cfg.ROB) {
		if c := p.ringAt(seq - uint64(p.cfg.ROB)); c != nil && c.commitC > windowReady {
			windowReady = c.commitC
		}
	}
	if seq >= uint64(p.cfg.IQ) {
		if c := p.ringAt(seq - uint64(p.cfg.IQ)); c != nil && c.issueC > windowReady {
			windowReady = c.issueC
		}
	}
	switch in.Op {
	case trace.OpLoad:
		if p.nLoads >= uint64(p.cfg.LDQ) {
			old := p.loadRing[(p.nLoads-uint64(p.cfg.LDQ))%uint64(len(p.loadRing))]
			if old.commitC > windowReady {
				windowReady = old.commitC
			}
		}
	case trace.OpStore:
		if p.nStores >= uint64(p.cfg.STQ) {
			old := p.storeRing[(p.nStores-uint64(p.cfg.STQ))%uint64(len(p.storeRing))]
			if old.commitC > windowReady {
				windowReady = old.commitC
			}
		}
	}
	var fetchFloor uint64
	if windowReady > uint64(p.cfg.FetchToExec) {
		fetchFloor = windowReady - uint64(p.cfg.FetchToExec)
	}

	// ---- Fetch ----
	fc := p.fetch(in.PC, fetchFloor)

	// ---- Rename/dispatch ----
	dC := fc + uint64(p.cfg.FetchToExec)
	if windowReady > dC {
		dC = windowReady
	}

	// ---- Branch prediction (front end) ----
	brMispred := false
	if in.IsBranch() {
		brMispred = p.predictBranch(in)
	}

	// ---- Value prediction probe (fetch stage, Figure 1 step 1) ----
	var (
		rec       uint64
		pred      core.Prediction
		delivered bool
		specOK    bool
		specValue uint64
		specReady uint64
		probeC    uint64
		probe     core.Probe
	)
	isPredictableLoad := in.Op == trace.OpLoad && !in.Flags.NoPredict() && p.engine != nil
	if in.Op == trace.OpLoad {
		p.run.Loads++
	}
	if isPredictableLoad {
		p.applyTrains(fc)
		probe = core.Probe{
			PC:         in.PC,
			BranchHist: p.hist.Global,
			LoadPath:   p.loadPath,
			Inflight:   p.inflight.get(in.PC),
		}
		rec, pred, delivered = p.probeLoad(seq, fc, probe)
		p.inflight.inc(in.PC)
		// Even when no prediction is delivered, validation of the
		// squashed/unchosen components resolves addresses as a probe
		// issued shortly after fetch would have.
		probeC = fc + 2
		if delivered {
			switch pred.Kind {
			case core.KindValue:
				// Forwarded to the VPE: consumers can read it from
				// rename onward — effectively available at dispatch.
				specOK = true
				specValue = pred.Value
				specReady = dC
				probeC = fc
			case core.KindAddress:
				// Loads the store-set predictor knows to conflict with
				// in-flight stores are not speculated through the data
				// cache: the probe would race the store's data (the
				// conflicting-store hazard DLVP mitigates).
				conflict := false
				if p.cfg.SuppressStoreConflicts {
					_, conflict = p.mdp.LoadDependence(in.PC)
				}
				if !conflict && p.paqAdmit(fc) {
					// Enters the PAQ; waits for a load-pipe bubble,
					// then probes the L1D (steps 2-4 of Figure 1).
					probeC = p.allocLSLane(fc + 2)
					lat, hit := p.hier.ProbeD(pred.Addr)
					p.paqRecord(probeC + uint64(lat))
					if hit {
						specOK = true
						specValue = p.probeRead(pred.Addr, pred.Size, seq, probeC)
						specReady = probeC + uint64(lat)
					} else if p.cfg.PAQPrefetchOnMiss {
						// Probe miss: no speculative value, but the
						// miss generates a data prefetch (Figure 1
						// step 5) that accelerates the load itself.
						fillLat := p.hier.PrefetchAccess(pred.Addr)
						p.lineFill.putMin(pred.Addr>>6, probeC+uint64(fillLat))
					}
				}
			}
		}
	}
	if in.Op == trace.OpLoad {
		// The load path history shifts in each fetched load's PC,
		// after the probe (CAP predicts from the path *leading to* the
		// load).
		p.loadPath = (p.loadPath << 6) ^ ((in.PC >> 2) & 0xFFF)
	}

	// ---- Source readiness ----
	rdy := dC
	if in.Src1 != 0 && p.regReady[in.Src1] > rdy {
		rdy = p.regReady[in.Src1]
	}
	if in.Src2 != 0 && p.regReady[in.Src2] > rdy {
		rdy = p.regReady[in.Src2]
	}

	// Store-set dependence: a load predicted to conflict waits for the
	// flagged store's execution.
	if in.Op == trace.OpLoad {
		if depSeq, ok := p.mdp.LoadDependence(in.PC); ok {
			if c := p.ringAt(depSeq); c != nil && c.execDone > rdy {
				rdy = c.execDone
			}
		}
	}
	if in.Op == trace.OpStore {
		p.mdp.StoreFetched(in.PC, seq)
	}

	// ---- Issue ----
	isLS := in.Op == trace.OpLoad || in.Op == trace.OpStore
	issueC := p.allocIssue(rdy, isLS)

	// ---- Execute ----
	var execDone uint64
	flush := false
	switch in.Op {
	case trace.OpLoad:
		execDone, flush = p.executeLoad(seq, in, issueC)
	case trace.OpStore:
		p.executeStore(seq, in, issueC)
		execDone = issueC + 1
	default:
		lat := uint64(in.Lat)
		if lat == 0 {
			lat = 1
		}
		execDone = issueC + lat
	}

	// ---- Validate value prediction ----
	vpCorrect := false
	if delivered {
		vpCorrect = specOK && specValue == in.Value
		if specOK {
			p.run.PredictedLoads++
			if vpCorrect {
				p.run.CorrectPredicted++
			}
		}
		if specOK && !vpCorrect {
			p.run.VPFlushes++
			if p.cfg.ReplayRecovery {
				// Selective replay: consumers of the load re-execute
				// with the correct value after a replay penalty; the
				// front end is not redirected.
				execDone += uint64(p.cfg.ReplayPenalty)
			} else {
				// Flush-based recovery: refetch younger instructions
				// (Figure 1 step 6), as the paper assumes.
				flush = true
			}
		}
	}

	// ---- Writeback ----
	if in.Dst != 0 {
		ready := execDone
		if vpCorrect && specReady < ready {
			ready = specReady
		}
		p.regReady[in.Dst] = ready
	}

	// ---- Redirects ----
	if brMispred {
		p.run.BranchFlushes++
		flush = true
	}
	if flush && execDone+1 > p.redirectC {
		p.redirectC = execDone + 1
	}

	// ---- Train the value predictor at execute ----
	if isPredictableLoad {
		p.pending.push(pendingTrain{
			trainC: execDone,
			outcome: core.Outcome{
				PC:         in.PC,
				BranchHist: probe.BranchHist,
				LoadPath:   probe.LoadPath,
				Addr:       in.Addr,
				Size:       in.Size,
				Value:      in.Value,
			},
			rec:     rec,
			probeC:  probeC,
			specSeq: seq,
			fcAt:    fc,
		})
	}

	// ---- Commit (in order, width-limited) ----
	cc := execDone + 1
	if cc < p.commitCycle {
		cc = p.commitCycle
	}
	if cc == p.commitCycle && p.commitUsed >= p.cfg.CommitWidth {
		cc++
	}
	if cc != p.commitCycle {
		p.commitCycle = cc
		p.commitUsed = 0
	}
	p.commitUsed++

	p.ring[seq&p.ringMask] = slotTiming{seq: seq, run: p.runGen, issueC: issueC, execDone: execDone, commitC: cc}
	switch in.Op {
	case trace.OpLoad:
		p.loadRing[p.nLoads%uint64(len(p.loadRing))] = loadStoreTiming{seq: seq, commitC: cc}
		p.nLoads++
	case trace.OpStore:
		p.storeRing[p.nStores%uint64(len(p.storeRing))] = loadStoreTiming{seq: seq, commitC: cc}
		p.nStores++
	}

	if p.engine != nil {
		p.instretBatch++
		if p.instretBatch >= instretEvery {
			p.engine.Instret(p.instretBatch)
			p.instretBatch = 0
			p.engineGen++
		}
	}
	return cc
}

// fetch returns this instruction's fetch cycle, honoring redirects,
// window backpressure (floor), fetch width, and instruction cache
// misses.
func (p *Pipeline) fetch(pc uint64, floor uint64) uint64 {
	start := p.fetchCycle
	if p.redirectC > start {
		start = p.redirectC
	}
	if floor > start {
		start = floor
	}
	iLat := p.hier.InstAccess(pc)
	if base := p.cfg.Hierarchy.L1I.Latency; iLat > base {
		// I-cache miss: front-end bubble for the extra latency.
		start += uint64(iLat - base)
	}
	if start != p.fetchCycle {
		p.fetchCycle = start
		p.fetchUsed = 0
	}
	if p.fetchUsed >= p.cfg.FetchWidth {
		p.fetchCycle++
		p.fetchUsed = 0
	}
	p.fetchUsed++
	return p.fetchCycle
}

// executeLoad computes a load's completion, modeling store forwarding,
// memory-ordering violations, and the data cache.
func (p *Pipeline) executeLoad(seq uint64, in *trace.Inst, issueC uint64) (execDone uint64, flush bool) {
	word := in.Addr >> 3
	ls, haveStore := p.lastStore.get(word)
	if haveStore && ls.seq < seq {
		if issueC < ls.execDone {
			// The load issued before an older conflicting store
			// executed: memory-ordering violation. Flush, replay after
			// the store, and train the store-set predictor.
			p.run.MemOrderFlushes++
			p.mdp.Violation(in.PC, ls.pc)
			execDone = ls.execDone + uint64(p.cfg.StoreForwardLat)
			return execDone, true
		}
		if recent := p.nStores > 0 && seq-ls.seq <= uint64(p.cfg.STQ)*4; recent {
			// Store-to-load forwarding from the STQ.
			return issueC + uint64(p.cfg.StoreForwardLat), false
		}
	}
	lat := p.hier.DataAccess(in.PC, in.Addr)
	done := issueC + uint64(lat)
	// A PAQ prefetch in flight for this line bounds the completion: the
	// demand access cannot finish before the fill arrives, but benefits
	// from it afterwards.
	if fd, ok := p.lineFill.get(in.Addr >> 6); ok {
		earliest := fd
		if hitDone := issueC + uint64(p.cfg.Hierarchy.L1D.Latency); hitDone > earliest {
			earliest = hitDone
		}
		if earliest < done {
			done = earliest
		}
	}
	return done, false
}

// storeFloor returns a cycle every future lastStore comparison happens
// at or after: the fetch cycle is monotonic and bounds future loads'
// issue/probe cycles, and queued trainings' probe cycles are bounded
// below by the oldest queued training's fetch cycle (trainings drain in
// FIFO order and each probeC is >= its own fetch cycle).
func (p *Pipeline) storeFloor() uint64 {
	floor := p.fetchCycle
	if t, ok := p.pending.peek(); ok && t.fcAt < floor {
		floor = t.fcAt
	}
	return floor
}

// executeStore applies the store's memory effects and bookkeeping.
func (p *Pipeline) executeStore(seq uint64, in *trace.Inst, issueC uint64) {
	if p.lastStore.crowded() {
		// Evict records no future read can observe: the store executed
		// at or before every future comparison cycle (no violation, no
		// stale-probe window) and is too old to forward from the STQ.
		floor := p.storeFloor()
		stq4 := uint64(p.cfg.STQ) * 4
		p.lastStore.compact(func(r storeRecord) bool {
			return r.execDone > floor || seq-r.seq <= stq4
		})
	}
	word := in.Addr >> 3
	p.lastStore.put(word, storeRecord{
		seq:      seq,
		pc:       in.PC,
		execDone: issueC + 1,
		prevWord: p.simMem.Read(in.Addr&^uint64(7), 8),
	})
	p.simMem.Write(in.Addr, in.Size, in.Value)
	// The store's cache access shapes hierarchy state (write-allocate).
	p.hier.DataAccess(in.PC, in.Addr)
}

// probeRead models what the PAQ's data-cache probe returns at probeC
// for the load at loadSeq: normally the current memory image, but if an
// older conflicting store executes only after the probe, the probe saw
// the word's previous contents.
func (p *Pipeline) probeRead(addr uint64, size uint8, loadSeq, probeC uint64) uint64 {
	word := addr >> 3
	if ls, ok := p.lastStore.get(word); ok && ls.seq < loadSeq && ls.execDone > probeC {
		off := addr & 7
		if size == 0 || size > 8 {
			size = 8
		}
		if off+uint64(size) <= 8 {
			v := ls.prevWord >> (off * 8)
			if size < 8 {
				v &= (uint64(1) << (size * 8)) - 1
			}
			return v
		}
	}
	return p.simMem.Read(addr, size)
}

// predictBranch runs the front-end predictors and returns whether the
// branch was mispredicted. Histories advance with the actual outcome.
func (p *Pipeline) predictBranch(in *trace.Inst) bool {
	mispred := false
	switch in.Op {
	case trace.OpBranch:
		predTaken := p.tage.Predict(in.PC, p.hist.Global)
		p.tage.Update(in.PC, p.hist.Global, in.Taken)
		mispred = predTaken != in.Taken
		p.hist.Update(in.PC, in.Taken)
	case trace.OpJump:
		p.hist.Update(in.PC, true)
	case trace.OpCall:
		p.ras.Push(in.PC + 4)
		p.hist.Update(in.PC, true)
	case trace.OpRet:
		mispred = p.ras.Pop() != in.Target
		p.hist.Update(in.PC, true)
	case trace.OpIndirect:
		predTarget := p.ittage.Predict(in.PC, p.hist.Global)
		p.ittage.Update(in.PC, p.hist.Global, in.Target)
		mispred = predTarget != in.Target
		p.hist.Update(in.PC, true)
	}
	return mispred
}

// applyTrains delivers pending predictor trainings, in program order,
// whose loads have completed by cycle c — the prediction-to-update
// latency model.
func (p *Pipeline) applyTrains(c uint64) {
	for {
		t, ok := p.pending.peek()
		if !ok || t.trainC > c {
			return
		}
		p.trainOne(p.pending.pop())
	}
}

func (p *Pipeline) trainOne(t pendingTrain) {
	p.inflight.dec(t.outcome.PC)
	p.trainSeq, p.trainProbeC = t.specSeq, t.probeC
	p.engine.Train(t.outcome, t.rec, p.resolve)
	p.engineGen++
}

// paqAdmit reports whether the Predicted Address Queue has room for a
// new probe at fetch cycle fc: probes whose completion is still in the
// future occupy entries.
func (p *Pipeline) paqAdmit(fc uint64) bool {
	if p.cfg.PAQDepth <= 0 {
		return true
	}
	// Drain completed probes.
	for p.paqHead < len(p.paqQueue) && p.paqQueue[p.paqHead] <= fc {
		p.paqHead++
	}
	if p.paqHead == len(p.paqQueue) {
		p.paqQueue = p.paqQueue[:0]
		p.paqHead = 0
	}
	return len(p.paqQueue)-p.paqHead < p.cfg.PAQDepth
}

// paqRecord notes an admitted probe's completion cycle.
func (p *Pipeline) paqRecord(done uint64) {
	if p.cfg.PAQDepth <= 0 {
		return
	}
	if n := len(p.paqQueue); n > p.paqHead && p.paqQueue[n-1] > done {
		done = p.paqQueue[n-1] // keep the queue monotonic
	}
	p.paqQueue = append(p.paqQueue, done)
}

// allocIssue finds the first cycle at or after start with issue
// bandwidth (and a load/store lane when needed) and claims it.
func (p *Pipeline) allocIssue(start uint64, isLS bool) uint64 {
	for c := start; ; c++ {
		if p.laneUse.get(c) >= p.cfg.IssueWidth {
			continue
		}
		if isLS && p.lsUse.get(c) >= p.cfg.LSLanes {
			continue
		}
		p.laneUse.inc(c)
		if isLS {
			p.lsUse.inc(c)
		}
		return c
	}
}

// allocLSLane schedules a PAQ probe. Probes fill load-pipe bubbles and
// never displace demand accesses (the PAQ "waits for bubbles in the
// load pipeline", Section III-A); we model that as a separate probe
// port budget of LSLanes per cycle, queued behind earlier probes.
func (p *Pipeline) allocLSLane(start uint64) uint64 {
	for c := start; ; c++ {
		if p.paqUse.get(c) < p.cfg.LSLanes {
			p.paqUse.inc(c)
			return c
		}
	}
}

// ringAt returns the timing record for seq if it is still in the ring.
func (p *Pipeline) ringAt(seq uint64) *slotTiming {
	s := &p.ring[seq&p.ringMask]
	if s.seq != seq || s.run != p.runGen {
		return nil
	}
	return s
}

// prune runs on the historical 4096-instruction cadence. The cycle
// rings and the store/inflight tables reclaim space on their own; only
// the line-fill table must evict here, because its stale entries are
// architecturally visible and the map implementation dropped them
// exactly at this cadence.
func (p *Pipeline) prune() {
	p.lineFill.compactBelow(p.fetchCycle)
}
