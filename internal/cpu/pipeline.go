package cpu

import (
	"context"
	"fmt"
	"time"

	"repro/internal/branch"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/memdep"
	"repro/internal/stats"
	"repro/internal/trace"
)

// timingRingSize returns how far back per-instruction timing records
// are kept: the next power of two past twice the largest window
// resource (ROB, IQ). The ROB/IQ backpressure probes look back exactly
// ROB and IQ slots; the memory-dependence probe (ringAt(depSeq)) can
// ask about arbitrarily old stores, but a record with seq <= cur-ROB
// can never satisfy its `execDone > rdy` test — in-order commit makes
// commitC monotone in seq and execDone <= commitC, so such a record's
// execDone <= commitC(cur-ROB) <= windowReady <= rdy — making a ring
// just past the ROB indistinguishable from an unbounded history. Twice
// the window keeps the ring small enough to stay cache-resident (the
// former fixed 8192-slot ring streamed 320KB through the cache every
// 8K instructions).
func timingRingSize(cfg Config) int {
	n := cfg.ROB
	if cfg.IQ > n {
		n = cfg.IQ
	}
	size := 256
	for size < 2*n {
		size <<= 1
	}
	return size
}

// slotTiming is one per-instruction timing record. A record is live only
// when both seq and run match the query: tagging each record with the
// run generation lets Reset retire the whole 256KB ring by bumping a
// counter instead of clearing it (a stale record and an absent one are
// indistinguishable to every ringAt consumer).
type slotTiming struct {
	seq      uint64
	run      uint64
	issueC   uint64
	execDone uint64
	commitC  uint64
}

type loadStoreTiming struct {
	seq     uint64
	commitC uint64
}

// storeRecord remembers the most recent store to an 8-byte word: who it
// was, when it executed, and the word's prior contents — enough to model
// a PAQ probe reading stale data ahead of an in-flight conflicting
// store (the hazard DLVP's value check exists for).
type storeRecord struct {
	seq      uint64
	pc       uint64
	execDone uint64
	prevWord uint64
}

// pendingTrain defers predictor training to the load's completion,
// modeling the prediction-to-update latency that produces the paper's
// training-time effects (Table V). Trainings are applied in program
// order (commit order): a load's update becomes visible once it and
// every older load have executed, keeping stride/context state coherent
// under out-of-order completion.
type pendingTrain struct {
	trainC  uint64
	outcome core.Outcome
	rec     uint64 // engine record handle from Probe
	probeC  uint64 // PAQ probe cycle for address resolution
	specSeq uint64 // the load's sequence number
	fcAt    uint64 // fetch cycle when queued (a lower bound on probeC)
}

// instretEvery is the cadence, in retired instructions, at which the
// pipeline flushes the batched Instret count to the engine.
const instretEvery = 4096

// trainQueue is a FIFO of pending trainings in program order.
type trainQueue struct {
	q    []pendingTrain
	head int
}

func (t *trainQueue) push(p pendingTrain) {
	// In-order application: a training never becomes visible before an
	// older one, so carry the running maximum completion cycle.
	if n := len(t.q); n > t.head && t.q[n-1].trainC > p.trainC {
		p.trainC = t.q[n-1].trainC
	}
	t.q = append(t.q, p)
}

func (t *trainQueue) peek() (pendingTrain, bool) {
	if t.head >= len(t.q) {
		return pendingTrain{}, false
	}
	return t.q[t.head], true
}

func (t *trainQueue) pop() pendingTrain {
	p := t.q[t.head]
	t.q[t.head] = pendingTrain{}
	t.head++
	if t.head == len(t.q) {
		t.q = t.q[:0]
		t.head = 0
	}
	return p
}

// ctxAddrShift positions a hardware context's address-space tag above
// every address the synthetic workloads (and recorded traces) touch:
// data regions sit at 0x1000_0000+ spaced 16MB apart and PCs below
// 0x100_0000, all far under 2^44. OR-ing `ctx << ctxAddrShift` into the
// addresses a context sends to the shared memory hierarchy keeps the
// contexts' working sets disjoint in the caches and TLB — they contend
// for capacity, as distinct programs on an SMT core do, instead of
// constructively sharing lines because every synthetic workload reuses
// the same virtual layout. Context 0's tag is zero, so the
// single-context path issues bit-identical addresses to the
// pre-refactor pipeline.
const ctxAddrShift = 44

// ctxSlice is the replicable per-context state of the pipeline: one
// hardware context's front-end cursors, window/timing rings, in-flight
// tables, deferred-training queue, architectural memory image, and run
// statistics. Everything a second SMT context needs its own copy of
// lives here; everything the contexts share — the value-prediction
// engine, the branch predictors, the memory hierarchy, the TLB — stays
// on Pipeline. The store-set memory-dependence predictor is per-context
// (its state is keyed by instruction sequence numbers, which are
// per-context streams), as are the branch histories feeding the shared
// TAGE/ITTAGE tables.
type ctxSlice struct {
	id   int
	asid uint64 // id << ctxAddrShift; OR'd into shared-hierarchy addresses

	mdp *memdep.Predictor

	hist     branch.History
	loadPath uint64

	simMem *mem.Backing

	// Fetch bandwidth accounting.
	fetchCycle uint64
	fetchUsed  int
	redirectC  uint64

	// Commit bandwidth accounting.
	commitCycle uint64
	commitUsed  int

	regReady [trace.NumRegs]uint64

	ring      []slotTiming
	ringMask  uint64
	loadRing  []loadStoreTiming
	storeRing []loadStoreTiming
	nLoads    uint64
	nStores   uint64

	// Per-cycle resource claims (issue bandwidth, load/store lanes, PAQ
	// probe ports), formerly cycle-keyed maps.
	laneUse cycleRing
	lsUse   cycleRing
	paqUse  cycleRing

	pending  trainQueue
	paqQueue []uint64 // completion cycles of recent PAQ probes
	paqHead  int

	// Bounded open-addressing tables, formerly maps (see rings.go).
	inflight  countTable // pc → in-flight probed loads
	lastStore storeTable // word → most recent store
	lineFill  fillTable  // 64B line → cycle its PAQ prefetch completes

	// Reusable address resolver parameters: trainOne parameterizes the
	// pipeline's shared closure via these fields instead of allocating a
	// fresh closure per training.
	trainSeq    uint64
	trainProbeC uint64

	run stats.Run

	// Scratch instruction slot for the run loop. A local would escape
	// to the heap through the gen.Next interface call, costing one
	// allocation per run.
	in trace.Inst

	// Interleaved-run cursor state (RunSMT).
	seq        uint64
	lastCommit uint64
	done       bool

	// Per-context progress row (see SetProgressRows). progLeft counts
	// down to the next publication.
	progress *Progress
	progLeft uint64
}

// build (re)constructs the slice's config-sized structures.
func (s *ctxSlice) build(cfg Config, id int) {
	s.id = id
	s.asid = uint64(id) << ctxAddrShift
	s.mdp = memdep.New(cfg.MemDep)
	s.loadRing = make([]loadStoreTiming, cfg.LDQ+1)
	s.storeRing = make([]loadStoreTiming, cfg.STQ+1)
	s.ring = make([]slotTiming, timingRingSize(cfg))
	s.ringMask = uint64(len(s.ring) - 1)
	n := cycleRingSize(cfg)
	s.laneUse = newCycleRing(n)
	s.lsUse = newCycleRing(n)
	s.paqUse = newCycleRing(n)
	s.lastStore = newStoreTable(4096)
	s.lineFill = newFillTable(16384)
	s.inflight = newCountTable(4096)
	s.simMem = nil
	s.resetRun()
}

// reset recycles the slice's allocations for a fresh run.
func (s *ctxSlice) reset() {
	s.mdp.Reset()
	s.laneUse.reset()
	s.lsUse.reset()
	s.paqUse.reset()
	s.lastStore.reset()
	s.lineFill.reset()
	s.inflight.reset()
	s.resetRun()
}

// resetRun clears the per-run scalar state (shared by build and reset).
func (s *ctxSlice) resetRun() {
	s.hist = branch.History{}
	s.loadPath = 0
	s.fetchCycle, s.fetchUsed, s.redirectC = 0, 0, 0
	s.commitCycle, s.commitUsed = 0, 0
	s.regReady = [trace.NumRegs]uint64{}
	s.nLoads, s.nStores = 0, 0
	s.pending.q = s.pending.q[:0]
	s.pending.head = 0
	s.paqQueue = s.paqQueue[:0]
	s.paqHead = 0
	s.trainSeq, s.trainProbeC = 0, 0
	s.run = stats.Run{}
	s.seq, s.lastCommit, s.done = 0, 0, false
	s.progress, s.progLeft = nil, 0
}

// Pipeline is the trace-driven core model. A pipeline serves one run at
// a time; Reset (or the package's Acquire/Release pool) recycles it for
// the next run without re-allocating the hierarchy, predictors, or
// rings. The steady-state per-instruction path performs no map
// operations and no heap allocations.
//
// The pipeline is split into a shared machine core (this struct: the
// value-prediction engine, TAGE/ITTAGE/RAS, the memory hierarchy and
// its TLB) and cfg.Contexts replicable per-context slices (ctxSlice:
// fetch/replay state, rings, in-flight tables, per-context stats.Run).
// Run/RunCtx simulate context 0 alone — the single-context model,
// bit-identical to the pre-split pipeline; RunSMT interleaves all
// contexts over independent instruction streams, contending for the
// shared predictor tables, caches, and TLB (see DESIGN.md §14).
type Pipeline struct {
	cfg    Config
	hier   *mem.Hierarchy
	tage   *branch.TAGE
	ittage *branch.ITTAGE
	ras    *branch.RAS
	engine Engine

	// Probe batching (see batch.go). batchEng is the engine's
	// BatchEngine refinement (nil when unsupported), lookahead the
	// in-memory remainder of the instruction stream during slice-fast-
	// path runs, engineGen a counter bumped on every engine mutation so
	// stale batches are discarded. Batching only engages on the
	// single-context fast path (lookahead is never set by RunSMT:
	// interleaved contexts mutate the shared engine between any two of
	// one context's probes, so a batch would never survive adoption).
	batchEng  BatchEngine
	lookahead []trace.Inst
	engineGen uint64
	batch     probeBatch
	batchCool uint64 // no batch fills until this sequence number

	// one is context 0, embedded so the single-context path keeps its
	// state inline with the pipeline (and so a fresh Pipeline is usable
	// without a slice allocation); ctxs lists every context, ctxs[0] ==
	// &one, with extra providing the backing for contexts 1..N-1.
	one   ctxSlice
	extra []ctxSlice
	ctxs  []*ctxSlice

	// cur is the context whose instruction is mid-step: the shared
	// address resolver closure dispatches through it.
	cur *ctxSlice

	runGen uint64 // current run generation; ring records from other runs are dead

	// Reusable address resolver: trainOne parameterizes the closure via
	// cur's trainSeq/trainProbeC fields instead of allocating a fresh
	// closure per training.
	resolve core.AddrResolver

	// instretBatch counts retirements across all contexts: the engine's
	// epoch machinery advances on machine-wide retirement, exactly as a
	// shared physical predictor would.
	instretBatch uint64

	// Aggregate progress probe (see progress.go). progLeft counts down
	// to the next publication; zero cadence means no probe attached.
	progress  *Progress
	progEvery uint64
	progLeft  uint64
	progStart int64
}

// New builds a pipeline with the given configuration and value
// prediction engine (nil = baseline, no value prediction).
func New(cfg Config, engine Engine) *Pipeline {
	p := &Pipeline{}
	p.build(cfg, engine)
	return p
}

// contextCount normalizes cfg.Contexts: 0 and 1 both mean one context.
func contextCount(cfg Config) int {
	if cfg.Contexts > 1 {
		return cfg.Contexts
	}
	return 1
}

// build (re)constructs every config-sized structure.
func (p *Pipeline) build(cfg Config, engine Engine) {
	p.cfg = cfg
	p.hier = mem.NewHierarchy(cfg.Hierarchy)
	p.tage = branch.NewTAGE(cfg.TAGE)
	p.ittage = branch.NewITTAGE(cfg.ITTAGE)
	p.ras = branch.NewRAS(cfg.RASSize)
	p.engine = engine
	p.batchEng = nil
	if cfg.BatchProbes {
		p.batchEng, _ = engine.(BatchEngine)
	}
	n := contextCount(cfg)
	p.one.build(cfg, 0)
	p.extra = make([]ctxSlice, n-1)
	p.ctxs = make([]*ctxSlice, n)
	p.ctxs[0] = &p.one
	for i := range p.extra {
		p.extra[i].build(cfg, i+1)
		p.ctxs[i+1] = &p.extra[i]
	}
	p.cur = &p.one
	if p.resolve == nil {
		p.resolve = func(addr uint64, size uint8) (uint64, bool) {
			s := p.cur
			if !p.hier.L1D.Peek(addr | s.asid) {
				return 0, false
			}
			return p.probeRead(s, addr, size, s.trainSeq, s.trainProbeC), true
		}
	}
}

// configEqual compares configurations field by field. Hand-rolled
// rather than reflect.DeepEqual so the pooled steady state (Reset with
// an identical Config every run) allocates nothing; the branch
// predictor sub-configs carry history-length slices, which rule out
// plain ==. TestConfigEqualCoversEveryField perturbs each field via
// reflection, so a new Config field that this function ignores fails
// the suite rather than silently aliasing distinct configurations.
func configEqual(a, b Config) bool {
	return a.FetchWidth == b.FetchWidth &&
		a.FetchToExec == b.FetchToExec &&
		a.IssueWidth == b.IssueWidth &&
		a.CommitWidth == b.CommitWidth &&
		a.LSLanes == b.LSLanes &&
		a.ROB == b.ROB &&
		a.IQ == b.IQ &&
		a.LDQ == b.LDQ &&
		a.STQ == b.STQ &&
		a.StoreForwardLat == b.StoreForwardLat &&
		a.Hierarchy == b.Hierarchy &&
		a.TAGE.Equal(b.TAGE) &&
		a.ITTAGE.Equal(b.ITTAGE) &&
		a.RASSize == b.RASSize &&
		a.MemDep == b.MemDep &&
		a.PAQDepth == b.PAQDepth &&
		a.PAQPrefetchOnMiss == b.PAQPrefetchOnMiss &&
		a.SuppressStoreConflicts == b.SuppressStoreConflicts &&
		a.ReplayRecovery == b.ReplayRecovery &&
		a.ReplayPenalty == b.ReplayPenalty &&
		a.BatchProbes == b.BatchProbes &&
		a.Contexts == b.Contexts &&
		a.SMTQuantum == b.SMTQuantum
}

// Reset prepares the pipeline for a fresh run with cfg and engine,
// reusing every allocation when cfg matches the previous run's
// configuration. A reset pipeline behaves bit-identically to a newly
// constructed one.
func (p *Pipeline) Reset(cfg Config, engine Engine) {
	if p.hier == nil || !configEqual(cfg, p.cfg) {
		p.build(cfg, engine)
	} else {
		p.hier.Reset()
		p.tage.Reset()
		p.ittage.Reset()
		p.ras.Reset()
		for _, s := range p.ctxs {
			s.reset()
		}
		p.engine = engine
		p.batchEng = nil
		if cfg.BatchProbes {
			p.batchEng, _ = engine.(BatchEngine)
		}
	}
	p.batch.n, p.batch.pos = 0, 0
	p.cur = &p.one
	p.runGen++ // retire all ring records without clearing 256KB
	p.instretBatch = 0
	p.progress, p.progEvery, p.progLeft, p.progStart = nil, 0, 0, 0
}

// NumContexts returns how many hardware contexts the pipeline was built
// with (always at least 1).
func (p *Pipeline) NumContexts() int { return len(p.ctxs) }

// ContextRun returns context i's statistics for the most recent run.
// After Run/RunCtx only context 0 carries a run; after RunSMT every
// context does.
func (p *Pipeline) ContextRun(i int) stats.Run { return p.ctxs[i].run }

// SetProgress attaches a progress slot the next run publishes live
// snapshots into, every `every` instructions (<= 0 means
// DefaultProgressInterval). Call after Reset/Acquire and before Run;
// Reset detaches the slot so pooled pipelines never publish into a
// previous owner's slot. The probe costs one counter decrement per
// instruction plus a fixed set of atomic stores per publication, and
// allocates nothing. Under RunSMT the slot receives machine-wide
// aggregates; SetProgressRows adds per-context rows.
func (p *Pipeline) SetProgress(pr *Progress, every int) {
	p.progress = pr
	if every <= 0 {
		every = DefaultProgressInterval
	}
	p.progEvery = uint64(every)
}

// SetProgressRows attaches one progress row per hardware context:
// rows[i] receives context i's live snapshot on the same cadence as the
// aggregate slot (rows beyond the context count are ignored, contexts
// beyond len(rows) publish no row). Component telemetry in a row
// reflects the shared engine, not the single context. Call after
// Reset/Acquire and before the run, alongside SetProgress.
func (p *Pipeline) SetProgressRows(rows []*Progress, every int) {
	if every <= 0 {
		every = DefaultProgressInterval
	}
	for i, s := range p.ctxs {
		if i >= len(rows) {
			break
		}
		s.progress = rows[i]
		s.progLeft = uint64(every)
	}
	if p.progEvery == 0 {
		p.progEvery = uint64(every)
	}
}

// publishProgress snapshots a run's counters into pr.
func (p *Pipeline) publishProgress(pr *Progress, r *stats.Run, insts, cycles uint64) {
	s := ProgressSnapshot{
		Instructions:     insts,
		Cycles:           cycles,
		Loads:            r.Loads,
		PredictedLoads:   r.PredictedLoads,
		CorrectPredicted: r.CorrectPredicted,
		VPFlushes:        r.VPFlushes,
		StartedNano:      p.progStart,
		UpdatedNano:      time.Now().UnixNano(),
	}
	if ts, ok := p.engine.(TelemetrySource); ok {
		t := ts.Telemetry()
		s.Used, s.Correct, s.Incorrect = t.Used, t.Correct, t.Incorrect
		s.MPKP, s.Silenced = t.MPKP, t.Silenced
	}
	pr.publish(&s)
}

// publishSMTProgress publishes the machine-wide aggregate of an
// interleaved run: summed counters, the maximum per-context commit
// cycle.
func (p *Pipeline) publishSMTProgress() {
	var agg stats.Run
	var insts, cycles uint64
	for _, s := range p.ctxs {
		insts += s.seq
		if s.lastCommit > cycles {
			cycles = s.lastCommit
		}
		agg.Loads += s.run.Loads
		agg.PredictedLoads += s.run.PredictedLoads
		agg.CorrectPredicted += s.run.CorrectPredicted
		agg.VPFlushes += s.run.VPFlushes
	}
	p.publishProgress(p.progress, &agg, insts, cycles)
}

// Hierarchy exposes the memory system (for inspection in tests and
// experiments).
func (p *Pipeline) Hierarchy() *mem.Hierarchy { return p.hier }

// resourceClobbers reports how often a cycle ring overwrote a live
// future claim — always zero when the rings are sized correctly (the
// golden test asserts this).
func (p *Pipeline) resourceClobbers() uint64 {
	var n uint64
	for _, s := range p.ctxs {
		n += s.laneUse.clobbers + s.lsUse.clobbers + s.paqUse.clobbers
	}
	return n
}

// cancelCheckInterval is how many instructions run between context
// cancellation checks in RunCtx. It bounds how long a cancelled
// simulation keeps running: one check interval at most.
const cancelCheckInterval = 8192

// instSlicer is the optional Generator refinement the run loop uses to
// walk an in-memory instruction stream in place (implemented by
// trace.Replay and artifact cursors). The returned slice is read-only:
// step never writes through its *trace.Inst, so one recording can feed
// many concurrent pipelines.
type instSlicer interface {
	Remaining() []trace.Inst
	Advance(n int)
}

// Run simulates gen to completion and returns the collected metrics.
func (p *Pipeline) Run(gen trace.Generator, workload, config string) stats.Run {
	return p.RunCtx(context.Background(), gen, workload, config)
}

// RunCtx simulates gen to completion or until ctx is cancelled,
// whichever comes first, and returns the collected metrics.
// Cancellation is checked every cancelCheckInterval instructions (and
// once before the first), so a cancelled run returns within one
// interval with Aborted set and metrics covering the simulated prefix.
// RunCtx always simulates context 0, regardless of cfg.Contexts — use
// RunSMT to drive every context.
func (p *Pipeline) RunCtx(ctx context.Context, gen trace.Generator, workload, config string) stats.Run {
	s := &p.one
	p.cur = s
	// The simulator's memory image starts equal to the workload's: the
	// backing fill function is shared via Clone, and stores are applied
	// as they execute. A reused pipeline copies into its existing image
	// instead of allocating a new one.
	if s.simMem == nil {
		s.simMem = gen.Mem().Clone()
	} else {
		s.simMem.CopyFrom(gen.Mem())
	}

	s.run = stats.Run{Workload: workload, Config: config}
	if p.progress != nil {
		p.progStart = time.Now().UnixNano()
		p.progLeft = p.progEvery
	}
	done := ctx.Done()
	var seq uint64
	var lastCommit uint64
	if sl, ok := gen.(instSlicer); ok {
		// Slice fast path: generators whose remaining stream is already
		// in memory (Replay, artifact cursors) are walked in place — no
		// per-instruction interface dispatch, no 64-byte copy into the
		// scratch slot. Identical control flow to the generic loop below.
		insts := sl.Remaining()
		p.lookahead = insts
		p.batch.n, p.batch.pos = 0, 0
		p.batchCool = 0
		for seq < uint64(len(insts)) {
			if done != nil && seq%cancelCheckInterval == 0 {
				select {
				case <-done:
					s.run.Aborted = true
				default:
				}
				if s.run.Aborted {
					break
				}
			}
			lastCommit = p.step(s, seq, &insts[seq])
			seq++
			if seq%4096 == 0 {
				p.prune(s)
			}
			if p.progress != nil {
				p.progLeft--
				if p.progLeft == 0 {
					p.progLeft = p.progEvery
					p.publishProgress(p.progress, &s.run, seq, lastCommit)
				}
			}
		}
		sl.Advance(int(seq))
		p.lookahead = nil
	} else {
		for {
			if done != nil && seq%cancelCheckInterval == 0 {
				select {
				case <-done:
					s.run.Aborted = true
				default:
				}
				if s.run.Aborted {
					break
				}
			}
			if !gen.Next(&s.in) {
				break
			}
			lastCommit = p.step(s, seq, &s.in)
			seq++
			if seq%4096 == 0 {
				p.prune(s)
			}
			if p.progress != nil {
				p.progLeft--
				if p.progLeft == 0 {
					p.progLeft = p.progEvery
					p.publishProgress(p.progress, &s.run, seq, lastCommit)
				}
			}
		}
	}
	s.run.Instructions = seq
	s.run.Cycles = lastCommit
	if p.engine != nil && p.instretBatch > 0 {
		p.engine.Instret(p.instretBatch)
		p.instretBatch = 0
		p.engineGen++
	}
	if p.progress != nil {
		p.publishProgress(p.progress, &s.run, seq, lastCommit)
	}
	return s.run
}

// RunSMT simulates one generator per hardware context to completion,
// interleaving the contexts round-robin with cfg.SMTQuantum
// instructions per turn (<= 0 means one — per-instruction round-robin).
// See RunSMTCtx.
func (p *Pipeline) RunSMT(gens []trace.Generator, workloads []string, label, config string) stats.Run {
	return p.RunSMTCtx(context.Background(), gens, workloads, label, config)
}

// RunSMTCtx simulates len(gens) == NumContexts() instruction streams,
// one per hardware context, until every stream is exhausted or ctx is
// cancelled. The contexts share the value-prediction engine, the branch
// predictor tables and the RAS (each context keeps its own history
// registers; cross-context call/return interleaving corrupts the shared
// RAS exactly as on a real shared-RAS SMT core), the cache hierarchy,
// and the TLB; each context's addresses are tagged
// with its context ID above the workloads' address space, so contexts
// contend for cache and TLB capacity instead of constructively sharing
// the synthetic workloads' identical virtual layout.
//
// workloads[i] labels context i's stats.Run (retrieve them with
// ContextRun); the returned Run is the machine-wide merge — summed
// counters, Cycles the maximum per-context commit cycle — labeled with
// label. Cancellation marks every unfinished context's run (and the
// merged run) Aborted.
func (p *Pipeline) RunSMTCtx(ctx context.Context, gens []trace.Generator, workloads []string, label, config string) stats.Run {
	if len(gens) != len(p.ctxs) {
		panic(fmt.Sprintf("cpu: RunSMT: %d generators for a %d-context pipeline", len(gens), len(p.ctxs)))
	}
	for i, s := range p.ctxs {
		if s.simMem == nil {
			s.simMem = gens[i].Mem().Clone()
		} else {
			s.simMem.CopyFrom(gens[i].Mem())
		}
		s.run = stats.Run{Workload: workloads[i], Config: config}
	}
	if p.progress != nil {
		p.progStart = time.Now().UnixNano()
		p.progLeft = p.progEvery
	}
	quantum := p.cfg.SMTQuantum
	if quantum <= 0 {
		quantum = 1
	}
	done := ctx.Done()
	var total, checkAt uint64
	aborted := false
	active := len(p.ctxs)
	for active > 0 && !aborted {
		for i, s := range p.ctxs {
			if s.done {
				continue
			}
			if done != nil && total >= checkAt {
				select {
				case <-done:
					aborted = true
				default:
				}
				checkAt = total + cancelCheckInterval
				if aborted {
					break
				}
			}
			p.cur = s
			gen := gens[i]
			for q := 0; q < quantum; q++ {
				if !gen.Next(&s.in) {
					s.done = true
					active--
					break
				}
				s.lastCommit = p.step(s, s.seq, &s.in)
				s.seq++
				total++
				if s.seq%4096 == 0 {
					p.prune(s)
				}
				if s.progress != nil {
					s.progLeft--
					if s.progLeft == 0 {
						s.progLeft = p.progEvery
						p.publishProgress(s.progress, &s.run, s.seq, s.lastCommit)
					}
				}
				if p.progress != nil {
					p.progLeft--
					if p.progLeft == 0 {
						p.progLeft = p.progEvery
						p.publishSMTProgress()
					}
				}
			}
		}
	}
	merged := stats.Run{Workload: label, Config: config, Aborted: aborted}
	for _, s := range p.ctxs {
		s.run.Instructions = s.seq
		s.run.Cycles = s.lastCommit
		s.run.Aborted = aborted && !s.done
		stats.Accumulate(&merged, s.run)
	}
	if p.engine != nil && p.instretBatch > 0 {
		p.engine.Instret(p.instretBatch)
		p.instretBatch = 0
		p.engineGen++
	}
	for _, s := range p.ctxs {
		if s.progress != nil {
			p.publishProgress(s.progress, &s.run, s.seq, s.lastCommit)
		}
	}
	if p.progress != nil {
		p.publishSMTProgress()
	}
	return merged
}

// step processes one of context s's instructions through every pipeline
// stage and returns its commit cycle.
func (p *Pipeline) step(s *ctxSlice, seq uint64, in *trace.Inst) uint64 {
	// ---- Window backpressure ----
	// An instruction cannot dispatch until the ROB/IQ/LDQ/STQ have
	// space; a stalled rename stage backpressures fetch, so the stall
	// is computed first and fed to the fetch stage as a floor. Without
	// this feedback, fetch (and the value predictor probes that happen
	// there) would run unboundedly ahead of execution.
	var windowReady uint64
	if seq >= uint64(p.cfg.ROB) {
		if c := p.ringAt(s, seq-uint64(p.cfg.ROB)); c != nil && c.commitC > windowReady {
			windowReady = c.commitC
		}
	}
	if seq >= uint64(p.cfg.IQ) {
		if c := p.ringAt(s, seq-uint64(p.cfg.IQ)); c != nil && c.issueC > windowReady {
			windowReady = c.issueC
		}
	}
	switch in.Op {
	case trace.OpLoad:
		if s.nLoads >= uint64(p.cfg.LDQ) {
			old := s.loadRing[(s.nLoads-uint64(p.cfg.LDQ))%uint64(len(s.loadRing))]
			if old.commitC > windowReady {
				windowReady = old.commitC
			}
		}
	case trace.OpStore:
		if s.nStores >= uint64(p.cfg.STQ) {
			old := s.storeRing[(s.nStores-uint64(p.cfg.STQ))%uint64(len(s.storeRing))]
			if old.commitC > windowReady {
				windowReady = old.commitC
			}
		}
	}
	var fetchFloor uint64
	if windowReady > uint64(p.cfg.FetchToExec) {
		fetchFloor = windowReady - uint64(p.cfg.FetchToExec)
	}

	// ---- Fetch ----
	fc := p.fetch(s, in.PC, fetchFloor)

	// ---- Rename/dispatch ----
	dC := fc + uint64(p.cfg.FetchToExec)
	if windowReady > dC {
		dC = windowReady
	}

	// ---- Branch prediction (front end) ----
	brMispred := false
	if in.IsBranch() {
		brMispred = p.predictBranch(s, in)
	}

	// ---- Value prediction probe (fetch stage, Figure 1 step 1) ----
	var (
		rec       uint64
		pred      core.Prediction
		delivered bool
		specOK    bool
		specValue uint64
		specReady uint64
		probeC    uint64
		probe     core.Probe
	)
	isPredictableLoad := in.Op == trace.OpLoad && !in.Flags.NoPredict() && p.engine != nil
	if in.Op == trace.OpLoad {
		s.run.Loads++
	}
	if isPredictableLoad {
		p.applyTrains(s, fc)
		probe = core.Probe{
			PC:         in.PC,
			BranchHist: s.hist.Global,
			LoadPath:   s.loadPath,
			Inflight:   s.inflight.get(in.PC),
		}
		rec, pred, delivered = p.probeLoad(s, seq, fc, probe)
		s.inflight.inc(in.PC)
		// Even when no prediction is delivered, validation of the
		// squashed/unchosen components resolves addresses as a probe
		// issued shortly after fetch would have.
		probeC = fc + 2
		if delivered {
			switch pred.Kind {
			case core.KindValue:
				// Forwarded to the VPE: consumers can read it from
				// rename onward — effectively available at dispatch.
				specOK = true
				specValue = pred.Value
				specReady = dC
				probeC = fc
			case core.KindAddress:
				// Loads the store-set predictor knows to conflict with
				// in-flight stores are not speculated through the data
				// cache: the probe would race the store's data (the
				// conflicting-store hazard DLVP mitigates).
				conflict := false
				if p.cfg.SuppressStoreConflicts {
					_, conflict = s.mdp.LoadDependence(in.PC)
				}
				if !conflict && p.paqAdmit(s, fc) {
					// Enters the PAQ; waits for a load-pipe bubble,
					// then probes the L1D (steps 2-4 of Figure 1).
					probeC = p.allocLSLane(s, fc+2)
					lat, hit := p.hier.ProbeD(pred.Addr | s.asid)
					p.paqRecord(s, probeC+uint64(lat))
					if hit {
						specOK = true
						specValue = p.probeRead(s, pred.Addr, pred.Size, seq, probeC)
						specReady = probeC + uint64(lat)
					} else if p.cfg.PAQPrefetchOnMiss {
						// Probe miss: no speculative value, but the
						// miss generates a data prefetch (Figure 1
						// step 5) that accelerates the load itself.
						fillLat := p.hier.PrefetchAccess(pred.Addr | s.asid)
						s.lineFill.putMin(pred.Addr>>6, probeC+uint64(fillLat))
					}
				}
			}
		}
	}
	if in.Op == trace.OpLoad {
		// The load path history shifts in each fetched load's PC,
		// after the probe (CAP predicts from the path *leading to* the
		// load).
		s.loadPath = (s.loadPath << 6) ^ ((in.PC >> 2) & 0xFFF)
	}

	// ---- Source readiness ----
	rdy := dC
	if in.Src1 != 0 && s.regReady[in.Src1] > rdy {
		rdy = s.regReady[in.Src1]
	}
	if in.Src2 != 0 && s.regReady[in.Src2] > rdy {
		rdy = s.regReady[in.Src2]
	}

	// Store-set dependence: a load predicted to conflict waits for the
	// flagged store's execution.
	if in.Op == trace.OpLoad {
		if depSeq, ok := s.mdp.LoadDependence(in.PC); ok {
			if c := p.ringAt(s, depSeq); c != nil && c.execDone > rdy {
				rdy = c.execDone
			}
		}
	}
	if in.Op == trace.OpStore {
		s.mdp.StoreFetched(in.PC, seq)
	}

	// ---- Issue ----
	isLS := in.Op == trace.OpLoad || in.Op == trace.OpStore
	issueC := p.allocIssue(s, rdy, isLS)

	// ---- Execute ----
	var execDone uint64
	flush := false
	switch in.Op {
	case trace.OpLoad:
		execDone, flush = p.executeLoad(s, seq, in, issueC)
	case trace.OpStore:
		p.executeStore(s, seq, in, issueC)
		execDone = issueC + 1
	default:
		lat := uint64(in.Lat)
		if lat == 0 {
			lat = 1
		}
		execDone = issueC + lat
	}

	// ---- Validate value prediction ----
	vpCorrect := false
	if delivered {
		vpCorrect = specOK && specValue == in.Value
		if specOK {
			s.run.PredictedLoads++
			if vpCorrect {
				s.run.CorrectPredicted++
			}
		}
		if specOK && !vpCorrect {
			s.run.VPFlushes++
			if p.cfg.ReplayRecovery {
				// Selective replay: consumers of the load re-execute
				// with the correct value after a replay penalty; the
				// front end is not redirected.
				execDone += uint64(p.cfg.ReplayPenalty)
			} else {
				// Flush-based recovery: refetch younger instructions
				// (Figure 1 step 6), as the paper assumes.
				flush = true
			}
		}
	}

	// ---- Writeback ----
	if in.Dst != 0 {
		ready := execDone
		if vpCorrect && specReady < ready {
			ready = specReady
		}
		s.regReady[in.Dst] = ready
	}

	// ---- Redirects ----
	if brMispred {
		s.run.BranchFlushes++
		flush = true
	}
	if flush && execDone+1 > s.redirectC {
		s.redirectC = execDone + 1
	}

	// ---- Train the value predictor at execute ----
	if isPredictableLoad {
		s.pending.push(pendingTrain{
			trainC: execDone,
			outcome: core.Outcome{
				PC:         in.PC,
				BranchHist: probe.BranchHist,
				LoadPath:   probe.LoadPath,
				Addr:       in.Addr,
				Size:       in.Size,
				Value:      in.Value,
			},
			rec:     rec,
			probeC:  probeC,
			specSeq: seq,
			fcAt:    fc,
		})
	}

	// ---- Commit (in order, width-limited) ----
	cc := execDone + 1
	if cc < s.commitCycle {
		cc = s.commitCycle
	}
	if cc == s.commitCycle && s.commitUsed >= p.cfg.CommitWidth {
		cc++
	}
	if cc != s.commitCycle {
		s.commitCycle = cc
		s.commitUsed = 0
	}
	s.commitUsed++

	s.ring[seq&s.ringMask] = slotTiming{seq: seq, run: p.runGen, issueC: issueC, execDone: execDone, commitC: cc}
	switch in.Op {
	case trace.OpLoad:
		s.loadRing[s.nLoads%uint64(len(s.loadRing))] = loadStoreTiming{seq: seq, commitC: cc}
		s.nLoads++
	case trace.OpStore:
		s.storeRing[s.nStores%uint64(len(s.storeRing))] = loadStoreTiming{seq: seq, commitC: cc}
		s.nStores++
	}

	if p.engine != nil {
		p.instretBatch++
		if p.instretBatch >= instretEvery {
			p.engine.Instret(p.instretBatch)
			p.instretBatch = 0
			p.engineGen++
		}
	}
	return cc
}

// fetch returns this instruction's fetch cycle, honoring redirects,
// window backpressure (floor), fetch width, and instruction cache
// misses.
func (p *Pipeline) fetch(s *ctxSlice, pc uint64, floor uint64) uint64 {
	start := s.fetchCycle
	if s.redirectC > start {
		start = s.redirectC
	}
	if floor > start {
		start = floor
	}
	iLat := p.hier.InstAccess(pc | s.asid)
	if base := p.cfg.Hierarchy.L1I.Latency; iLat > base {
		// I-cache miss: front-end bubble for the extra latency.
		start += uint64(iLat - base)
	}
	if start != s.fetchCycle {
		s.fetchCycle = start
		s.fetchUsed = 0
	}
	if s.fetchUsed >= p.cfg.FetchWidth {
		s.fetchCycle++
		s.fetchUsed = 0
	}
	s.fetchUsed++
	return s.fetchCycle
}

// executeLoad computes a load's completion, modeling store forwarding,
// memory-ordering violations, and the data cache.
func (p *Pipeline) executeLoad(s *ctxSlice, seq uint64, in *trace.Inst, issueC uint64) (execDone uint64, flush bool) {
	word := in.Addr >> 3
	ls, haveStore := s.lastStore.get(word)
	if haveStore && ls.seq < seq {
		if issueC < ls.execDone {
			// The load issued before an older conflicting store
			// executed: memory-ordering violation. Flush, replay after
			// the store, and train the store-set predictor.
			s.run.MemOrderFlushes++
			s.mdp.Violation(in.PC, ls.pc)
			execDone = ls.execDone + uint64(p.cfg.StoreForwardLat)
			return execDone, true
		}
		if recent := s.nStores > 0 && seq-ls.seq <= uint64(p.cfg.STQ)*4; recent {
			// Store-to-load forwarding from the STQ.
			return issueC + uint64(p.cfg.StoreForwardLat), false
		}
	}
	lat := p.hier.DataAccess(in.PC, in.Addr|s.asid)
	done := issueC + uint64(lat)
	// A PAQ prefetch in flight for this line bounds the completion: the
	// demand access cannot finish before the fill arrives, but benefits
	// from it afterwards.
	if fd, ok := s.lineFill.get(in.Addr >> 6); ok {
		earliest := fd
		if hitDone := issueC + uint64(p.cfg.Hierarchy.L1D.Latency); hitDone > earliest {
			earliest = hitDone
		}
		if earliest < done {
			done = earliest
		}
	}
	return done, false
}

// storeFloor returns a cycle every future lastStore comparison happens
// at or after: the fetch cycle is monotonic and bounds future loads'
// issue/probe cycles, and queued trainings' probe cycles are bounded
// below by the oldest queued training's fetch cycle (trainings drain in
// FIFO order and each probeC is >= its own fetch cycle).
func (p *Pipeline) storeFloor(s *ctxSlice) uint64 {
	floor := s.fetchCycle
	if t, ok := s.pending.peek(); ok && t.fcAt < floor {
		floor = t.fcAt
	}
	return floor
}

// executeStore applies the store's memory effects and bookkeeping.
func (p *Pipeline) executeStore(s *ctxSlice, seq uint64, in *trace.Inst, issueC uint64) {
	if s.lastStore.crowded() {
		// Evict records no future read can observe: the store executed
		// at or before every future comparison cycle (no violation, no
		// stale-probe window) and is too old to forward from the STQ.
		floor := p.storeFloor(s)
		stq4 := uint64(p.cfg.STQ) * 4
		s.lastStore.compact(func(r storeRecord) bool {
			return r.execDone > floor || seq-r.seq <= stq4
		})
	}
	word := in.Addr >> 3
	s.lastStore.put(word, storeRecord{
		seq:      seq,
		pc:       in.PC,
		execDone: issueC + 1,
		prevWord: s.simMem.Read(in.Addr&^uint64(7), 8),
	})
	s.simMem.Write(in.Addr, in.Size, in.Value)
	// The store's cache access shapes hierarchy state (write-allocate).
	p.hier.DataAccess(in.PC, in.Addr|s.asid)
}

// probeRead models what the PAQ's data-cache probe returns at probeC
// for the load at loadSeq: normally the current memory image, but if an
// older conflicting store executes only after the probe, the probe saw
// the word's previous contents.
func (p *Pipeline) probeRead(s *ctxSlice, addr uint64, size uint8, loadSeq, probeC uint64) uint64 {
	word := addr >> 3
	if ls, ok := s.lastStore.get(word); ok && ls.seq < loadSeq && ls.execDone > probeC {
		off := addr & 7
		if size == 0 || size > 8 {
			size = 8
		}
		if off+uint64(size) <= 8 {
			v := ls.prevWord >> (off * 8)
			if size < 8 {
				v &= (uint64(1) << (size * 8)) - 1
			}
			return v
		}
	}
	return s.simMem.Read(addr, size)
}

// predictBranch runs the front-end predictors and returns whether the
// branch was mispredicted. Histories advance with the actual outcome.
// The TAGE/ITTAGE tables and the RAS are shared across contexts (each
// context keeps its own history registers): cross-context aliasing in
// the tables — and RAS corruption under interleaved call/return streams
// — is part of the SMT contention model.
func (p *Pipeline) predictBranch(s *ctxSlice, in *trace.Inst) bool {
	mispred := false
	switch in.Op {
	case trace.OpBranch:
		predTaken := p.tage.Predict(in.PC, s.hist.Global)
		p.tage.Update(in.PC, s.hist.Global, in.Taken)
		mispred = predTaken != in.Taken
		s.hist.Update(in.PC, in.Taken)
	case trace.OpJump:
		s.hist.Update(in.PC, true)
	case trace.OpCall:
		p.ras.Push(in.PC + 4)
		s.hist.Update(in.PC, true)
	case trace.OpRet:
		mispred = p.ras.Pop() != in.Target
		s.hist.Update(in.PC, true)
	case trace.OpIndirect:
		predTarget := p.ittage.Predict(in.PC, s.hist.Global)
		p.ittage.Update(in.PC, s.hist.Global, in.Target)
		mispred = predTarget != in.Target
		s.hist.Update(in.PC, true)
	}
	return mispred
}

// applyTrains delivers context s's pending predictor trainings, in
// program order, whose loads have completed by cycle c — the
// prediction-to-update latency model.
func (p *Pipeline) applyTrains(s *ctxSlice, c uint64) {
	for {
		t, ok := s.pending.peek()
		if !ok || t.trainC > c {
			return
		}
		p.trainOne(s, s.pending.pop())
	}
}

func (p *Pipeline) trainOne(s *ctxSlice, t pendingTrain) {
	s.inflight.dec(t.outcome.PC)
	p.cur = s
	s.trainSeq, s.trainProbeC = t.specSeq, t.probeC
	p.engine.Train(t.outcome, t.rec, p.resolve)
	p.engineGen++
}

// paqAdmit reports whether the Predicted Address Queue has room for a
// new probe at fetch cycle fc: probes whose completion is still in the
// future occupy entries.
func (p *Pipeline) paqAdmit(s *ctxSlice, fc uint64) bool {
	if p.cfg.PAQDepth <= 0 {
		return true
	}
	// Drain completed probes.
	for s.paqHead < len(s.paqQueue) && s.paqQueue[s.paqHead] <= fc {
		s.paqHead++
	}
	if s.paqHead == len(s.paqQueue) {
		s.paqQueue = s.paqQueue[:0]
		s.paqHead = 0
	}
	return len(s.paqQueue)-s.paqHead < p.cfg.PAQDepth
}

// paqRecord notes an admitted probe's completion cycle.
func (p *Pipeline) paqRecord(s *ctxSlice, done uint64) {
	if p.cfg.PAQDepth <= 0 {
		return
	}
	if n := len(s.paqQueue); n > s.paqHead && s.paqQueue[n-1] > done {
		done = s.paqQueue[n-1] // keep the queue monotonic
	}
	s.paqQueue = append(s.paqQueue, done)
}

// allocIssue finds the first cycle at or after start with issue
// bandwidth (and a load/store lane when needed) and claims it.
func (p *Pipeline) allocIssue(s *ctxSlice, start uint64, isLS bool) uint64 {
	for c := start; ; c++ {
		if s.laneUse.get(c) >= p.cfg.IssueWidth {
			continue
		}
		if isLS && s.lsUse.get(c) >= p.cfg.LSLanes {
			continue
		}
		s.laneUse.inc(c)
		if isLS {
			s.lsUse.inc(c)
		}
		return c
	}
}

// allocLSLane schedules a PAQ probe. Probes fill load-pipe bubbles and
// never displace demand accesses (the PAQ "waits for bubbles in the
// load pipeline", Section III-A); we model that as a separate probe
// port budget of LSLanes per cycle, queued behind earlier probes.
func (p *Pipeline) allocLSLane(s *ctxSlice, start uint64) uint64 {
	for c := start; ; c++ {
		if s.paqUse.get(c) < p.cfg.LSLanes {
			s.paqUse.inc(c)
			return c
		}
	}
}

// ringAt returns the timing record for seq if it is still in the ring.
func (p *Pipeline) ringAt(s *ctxSlice, seq uint64) *slotTiming {
	r := &s.ring[seq&s.ringMask]
	if r.seq != seq || r.run != p.runGen {
		return nil
	}
	return r
}

// prune runs on the historical 4096-instruction cadence. The cycle
// rings and the store/inflight tables reclaim space on their own; only
// the line-fill table must evict here, because its stale entries are
// architecturally visible and the map implementation dropped them
// exactly at this cadence.
func (p *Pipeline) prune(s *ctxSlice) {
	s.lineFill.compactBelow(s.fetchCycle)
}
