// Package cpu models the paper's baseline out-of-order core (Table III)
// as a trace-driven, cycle-level timing model: a Skylake-class window
// (ROB 224, IQ 97, LDQ 72, STQ 56), 4-wide fetch-through-rename, 8-wide
// issue-through-commit with two load/store lanes, a 13-cycle
// fetch-to-execute depth, TAGE/ITTAGE branch prediction, store-set
// memory dependence prediction, and the Table III cache hierarchy.
//
// Value prediction is integrated exactly as in the paper's Figure 1:
// predictors are probed at fetch; value predictions are forwarded to
// the Value Prediction Engine so consumers see a zero-cycle load-to-use
// latency; address predictions enter the Predicted Address Queue, wait
// for a load-pipe bubble, and probe the L1 data cache for a speculative
// value. All predictions are validated when the load executes, and a
// wrong speculative value triggers a flush-based recovery.
package cpu

import (
	"repro/internal/branch"
	"repro/internal/mem"
	"repro/internal/memdep"
)

// Config describes the simulated core.
type Config struct {
	// Front end.
	FetchWidth  int // instructions fetched/renamed per cycle (4)
	FetchToExec int // fetch-to-execute depth in cycles (13)

	// Back end.
	IssueWidth  int // instructions issued per cycle (8)
	CommitWidth int // instructions committed per cycle (8)
	LSLanes     int // execution lanes supporting loads/stores (2)

	// Window sizes.
	ROB int // 224
	IQ  int // 97
	LDQ int // 72
	STQ int // 56

	// Store-to-load forwarding latency when an older in-window store
	// has already executed.
	StoreForwardLat int

	Hierarchy mem.HierarchyConfig
	TAGE      branch.TAGEConfig
	ITTAGE    branch.ITTAGEConfig
	RASSize   int
	MemDep    memdep.Config

	// PAQDepth bounds the Predicted Address Queue: address predictions
	// beyond this many in-flight probes are dropped (no speculation).
	// <= 0 means unbounded.
	PAQDepth int

	// PAQPrefetchOnMiss enables the optional data prefetch when a PAQ
	// probe misses the L1 (paper Figure 1 step 5 — disabled in the
	// paper, enabled here; see DESIGN.md §5a.1). The ablation bench
	// quantifies it.
	PAQPrefetchOnMiss bool

	// SuppressStoreConflicts withholds address-prediction speculation
	// for loads the store-set predictor links to in-flight stores
	// (DESIGN.md §5a.2).
	SuppressStoreConflicts bool

	// ReplayRecovery models value-misprediction recovery as a
	// selective replay of the mispredicted load's consumers instead of
	// a full front-end flush: the pipeline charges ReplayPenalty cycles
	// on the load's completion but does not redirect fetch. The paper
	// assumes flush-based recovery (Section III-A); this switch exists
	// for the recovery-cost ablation.
	ReplayRecovery bool
	ReplayPenalty  int

	// Contexts is the number of SMT hardware contexts the pipeline
	// replicates per-context state for (fetch/replay cursors, window
	// rings, in-flight tables — see ctxSlice). The contexts share the
	// value-prediction engine, the branch predictor tables and RAS, the
	// cache hierarchy, and the TLB. 0 and 1 both mean a single context;
	// the single-context model is bit-identical to the pre-SMT pipeline.
	Contexts int

	// SMTQuantum is the interleave policy of RunSMT: how many
	// instructions one context runs before the round-robin moves to the
	// next. <= 0 means 1 (per-instruction round-robin); larger quanta
	// (e.g. 64, the "block" policy) give each context bursts of
	// exclusive access to the shared predictor and cache state.
	SMTQuantum int

	// BatchProbes probes upcoming predictable loads in groups through
	// the engine's BatchEngine interface when the instruction stream is
	// replayed from memory (see batch.go). Results are bit-identical to
	// serial probing — adoption is guarded by an engine-generation
	// check and an input comparison — so this is purely a performance
	// knob. It defaults off: on the measured workloads the horizon
	// prediction and lookup double-buffering cost about as much as the
	// batched dispatch saves (DESIGN.md §13.3 has the numbers).
	BatchProbes bool
}

// DefaultConfig returns the paper's Table III baseline configuration.
func DefaultConfig() Config {
	return Config{
		FetchWidth:             4,
		FetchToExec:            13,
		IssueWidth:             8,
		CommitWidth:            8,
		LSLanes:                2,
		ROB:                    224,
		IQ:                     97,
		LDQ:                    72,
		STQ:                    56,
		StoreForwardLat:        4,
		Hierarchy:              mem.DefaultHierarchyConfig(),
		TAGE:                   branch.DefaultTAGEConfig(),
		ITTAGE:                 branch.DefaultITTAGEConfig(),
		RASSize:                16,
		MemDep:                 memdep.DefaultConfig(),
		PAQDepth:               24,
		PAQPrefetchOnMiss:      true,
		SuppressStoreConflicts: true,
		ReplayPenalty:          12,
	}
}
