package cpu

import (
	"testing"

	"repro/internal/core"
	"repro/internal/eves"
	"repro/internal/trace"
)

// batchCfg returns the default configuration with probe batching on.
func batchCfg() Config {
	cfg := DefaultConfig()
	cfg.BatchProbes = true
	return cfg
}

// TestBatchedProbesBitIdentical pins Config.BatchProbes as a pure
// performance knob: for every workload, a recorded-trace run with
// batched probes must produce run statistics and composite predictor
// statistics bit-identical to the serial-probe run. Recordings are used
// (not live generators) because batching only engages on the slice fast
// path, where the lookahead window exists.
func TestBatchedProbesBitIdentical(t *testing.T) {
	pool := trace.Workloads()
	if testing.Short() {
		pool = pool[:10]
	}
	mk := func(seed uint64) (*core.Composite, Engine) {
		c := core.NewComposite(core.CompositeConfig{
			Entries: core.HomogeneousEntries(256),
			Seed:    seed,
			AM:      core.NewPCAM(64),
		})
		return c, NewCompositeEngine(c)
	}
	for _, w := range pool {
		seed := goldenSeed(w.Name)
		rep := trace.Record(w.Build(goldenInsts), trace.FillSeed(w.Name))

		compWant, engWant := mk(seed)
		want := New(DefaultConfig(), engWant).Run(rep, w.Name, "x")

		rep.Rewind()
		compGot, engGot := mk(seed)
		p := Acquire(batchCfg(), engGot)
		got := p.Run(rep, w.Name, "x")
		Release(p)

		if got != want {
			t.Fatalf("%s: batched run diverged\n got: %+v\nwant: %+v", w.Name, got, want)
		}
		if sg, sw := compGot.Stats(), compWant.Stats(); sg != sw {
			t.Fatalf("%s: batched composite stats diverged\n got: %+v\nwant: %+v", w.Name, sg, sw)
		}
	}
}

// TestBatchedProbesLongRun crosses several instret epochs and pooled
// resets, so batch invalidation by the epoch flush and batch state
// recycling through Reset are both exercised.
func TestBatchedProbesLongRun(t *testing.T) {
	const insts = 30000
	w, ok := trace.ByName("gcc2k")
	if !ok {
		t.Fatal("unknown workload gcc2k")
	}
	seed := goldenSeed(w.Name)
	rep := trace.Record(w.Build(insts), trace.FillSeed(w.Name))

	mk := func() Engine {
		return NewCompositeEngine(core.NewComposite(core.CompositeConfig{
			Entries: core.HomogeneousEntries(256),
			Seed:    seed,
			AM:      core.NewMAMEpoch(10_000),
		}))
	}
	want := New(DefaultConfig(), mk()).Run(rep, w.Name, "x")
	want.Config = ""

	cfg := batchCfg()
	p := Acquire(cfg, mk())
	defer Release(p)
	for i := 0; i < 3; i++ {
		rep.Rewind()
		eng := mk()
		p.Reset(cfg, eng)
		got := p.Run(rep, w.Name, "x")
		got.Config = ""
		if got != want {
			t.Fatalf("pass %d: batched run diverged\n got: %+v\nwant: %+v", i, got, want)
		}
	}
}

// TestBatchProbesNonBatchingEngine covers the fallback: an engine
// without the BatchEngine refinement (EVES) must run unchanged under
// Config.BatchProbes.
func TestBatchProbesNonBatchingEngine(t *testing.T) {
	w, _ := trace.ByName("mcf")
	seed := goldenSeed(w.Name)
	rep := trace.Record(w.Build(goldenInsts), trace.FillSeed(w.Name))

	want := New(DefaultConfig(), eves.New(eves.Config{BudgetKB: 32, Seed: seed})).
		Run(rep, w.Name, "x")
	want.Config = ""

	rep.Rewind()
	got := New(batchCfg(), eves.New(eves.Config{BudgetKB: 32, Seed: seed})).
		Run(rep, w.Name, "x")
	got.Config = ""
	if got != want {
		t.Fatalf("EVES under BatchProbes diverged\n got: %+v\nwant: %+v", got, want)
	}
}
