package cpu

import (
	"math"
	"sync/atomic"

	"repro/internal/core"
)

// EngineTelemetry is a live counter snapshot a value prediction engine
// can expose mid-run: per-component predictions used, validation
// results, and the accuracy monitor's current-epoch view. All fields
// are value arrays so taking a snapshot allocates nothing.
type EngineTelemetry struct {
	Used      [core.NumComponents]uint64
	Correct   [core.NumComponents]uint64
	Incorrect [core.NumComponents]uint64
	MPKP      [core.NumComponents]float64
	Silenced  core.ComponentSet
}

// TelemetrySource is implemented by engines that can report live
// telemetry. The pipeline's progress probe consults it on the
// simulation goroutine only; implementations need no locking beyond
// what Probe/Train already require.
type TelemetrySource interface {
	Telemetry() EngineTelemetry
}

// Telemetry implements TelemetrySource.
func (e *CompositeEngine) Telemetry() EngineTelemetry {
	st := e.C.Stats()
	t := EngineTelemetry{Used: st.UsedBy, Correct: st.CorrectBy, Incorrect: st.IncorrectBy}
	if m, ok := e.C.AM().(*core.MAM); ok {
		t.MPKP, t.Silenced = m.LiveMPKP()
	}
	return t
}

// ProgressSnapshot is one consistent mid-run observation of a pipeline.
type ProgressSnapshot struct {
	Instructions     uint64
	Cycles           uint64
	Loads            uint64
	PredictedLoads   uint64
	CorrectPredicted uint64
	VPFlushes        uint64
	StartedNano      int64 // run start, UnixNano
	UpdatedNano      int64 // snapshot publication time, UnixNano

	Used      [core.NumComponents]uint64
	Correct   [core.NumComponents]uint64
	Incorrect [core.NumComponents]uint64
	MPKP      [core.NumComponents]float64
	Silenced  core.ComponentSet
}

// SimMIPS returns the simulation rate in millions of simulated
// instructions per wall-clock second, over the run so far.
func (s ProgressSnapshot) SimMIPS() float64 {
	el := s.UpdatedNano - s.StartedNano
	if el <= 0 {
		return 0
	}
	return float64(s.Instructions) / 1e6 / (float64(el) / 1e9)
}

// Word layout of the seqlock slot. Scalars first, then the
// per-component blocks, then the silenced bitset.
const (
	pwInstructions = iota
	pwCycles
	pwLoads
	pwPredicted
	pwCorrectPred
	pwVPFlushes
	pwStartedNano
	pwUpdatedNano
	pwUsed     // 4 words
	pwCorrect  = pwUsed + int(core.NumComponents)
	pwIncorr   = pwCorrect + int(core.NumComponents)
	pwMPKP     = pwIncorr + int(core.NumComponents)
	pwSilenced = pwMPKP + int(core.NumComponents)

	progressWords = pwSilenced + 1
)

// Progress is a single-writer seqlock slot the pipeline publishes
// snapshots into and any number of goroutines read from without
// blocking the writer. The words are individually atomic (so the race
// detector is satisfied) and the sequence counter makes the set of
// words consistent: the writer bumps it to odd, stores every word,
// bumps it to even; a reader retries until it sees the same even
// sequence on both sides of its copy. Publishing performs a fixed
// number of atomic stores and no allocation.
type Progress struct {
	seq   atomic.Uint64
	words [progressWords]atomic.Uint64
}

// publish stores a snapshot. Single writer only (the simulation
// goroutine).
func (p *Progress) publish(s *ProgressSnapshot) {
	p.seq.Add(1) // odd: readers back off
	p.words[pwInstructions].Store(s.Instructions)
	p.words[pwCycles].Store(s.Cycles)
	p.words[pwLoads].Store(s.Loads)
	p.words[pwPredicted].Store(s.PredictedLoads)
	p.words[pwCorrectPred].Store(s.CorrectPredicted)
	p.words[pwVPFlushes].Store(s.VPFlushes)
	p.words[pwStartedNano].Store(uint64(s.StartedNano))
	p.words[pwUpdatedNano].Store(uint64(s.UpdatedNano))
	for c := 0; c < int(core.NumComponents); c++ {
		p.words[pwUsed+c].Store(s.Used[c])
		p.words[pwCorrect+c].Store(s.Correct[c])
		p.words[pwIncorr+c].Store(s.Incorrect[c])
		p.words[pwMPKP+c].Store(math.Float64bits(s.MPKP[c]))
	}
	p.words[pwSilenced].Store(uint64(s.Silenced))
	p.seq.Add(1) // even: snapshot visible
}

// Clear empties the slot: Load reports no snapshot until the next
// publication. Like publish it is single-writer — call it only when no
// run is publishing into the slot (e.g. between the phases of a job
// that reuses one slot for its baseline and configured runs).
func (p *Progress) Clear() {
	p.seq.Add(1) // odd: invalidate reads that raced the clear
	for i := range p.words {
		p.words[i].Store(0)
	}
	p.seq.Store(0) // "never published"
}

// Load returns the latest published snapshot. ok is false when nothing
// has been published yet.
func (p *Progress) Load() (s ProgressSnapshot, ok bool) {
	for {
		s1 := p.seq.Load()
		if s1 == 0 {
			return ProgressSnapshot{}, false
		}
		if s1&1 == 1 {
			continue // writer mid-publish
		}
		s.Instructions = p.words[pwInstructions].Load()
		s.Cycles = p.words[pwCycles].Load()
		s.Loads = p.words[pwLoads].Load()
		s.PredictedLoads = p.words[pwPredicted].Load()
		s.CorrectPredicted = p.words[pwCorrectPred].Load()
		s.VPFlushes = p.words[pwVPFlushes].Load()
		s.StartedNano = int64(p.words[pwStartedNano].Load())
		s.UpdatedNano = int64(p.words[pwUpdatedNano].Load())
		for c := 0; c < int(core.NumComponents); c++ {
			s.Used[c] = p.words[pwUsed+c].Load()
			s.Correct[c] = p.words[pwCorrect+c].Load()
			s.Incorrect[c] = p.words[pwIncorr+c].Load()
			s.MPKP[c] = math.Float64frombits(p.words[pwMPKP+c].Load())
		}
		s.Silenced = core.ComponentSet(p.words[pwSilenced].Load())
		if p.seq.Load() == s1 {
			return s, true
		}
	}
}

// DefaultProgressInterval is the publication cadence SetProgress uses
// for every <= 0: frequent enough for sub-second liveness at typical
// simulation rates, rare enough to be invisible in profiles.
const DefaultProgressInterval = 32768
