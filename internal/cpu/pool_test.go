package cpu

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/trace"
)

func compositeForTest(seed uint64) Engine {
	return NewCompositeEngine(core.NewComposite(core.CompositeConfig{
		Entries: core.HomogeneousEntries(256),
		Seed:    seed,
		AM:      core.NewPCAM(64),
	}))
}

// TestPipelineDeterminism: same seed + workload → bit-identical
// stats.Run across two independently constructed pipelines.
func TestPipelineDeterminism(t *testing.T) {
	w, _ := trace.ByName("gcc2k")
	a := New(DefaultConfig(), compositeForTest(7)).Run(w.Build(goldenInsts), w.Name, "det")
	b := New(DefaultConfig(), compositeForTest(7)).Run(w.Build(goldenInsts), w.Name, "det")
	if a != b {
		t.Fatalf("two fresh pipelines diverged:\n a: %+v\n b: %+v", a, b)
	}
}

// TestResetReuseBitIdentical: a pipeline reused via Reset — including
// after a run under a different configuration — must reproduce a fresh
// pipeline's results exactly.
func TestResetReuseBitIdentical(t *testing.T) {
	w, _ := trace.ByName("mcf")
	cfg := DefaultConfig()
	fresh := New(cfg, compositeForTest(7)).Run(w.Build(goldenInsts), w.Name, "fresh")

	p := New(cfg, compositeForTest(7))
	p.Run(w.Build(goldenInsts), w.Name, "first")

	// Same config: everything is reused in place.
	p.Reset(cfg, compositeForTest(7))
	if got := p.Run(w.Build(goldenInsts), w.Name, "fresh"); got != fresh {
		t.Fatalf("same-config Reset diverged:\n got: %+v\nwant: %+v", got, fresh)
	}

	// Different config in between: Reset rebuilds, then a reset back to
	// cfg must still match.
	small := cfg
	small.ROB, small.IQ, small.LDQ, small.STQ = 16, 8, 8, 8
	p.Reset(small, nil)
	p.Run(w.Build(goldenInsts), w.Name, "small")
	p.Reset(cfg, compositeForTest(7))
	if got := p.Run(w.Build(goldenInsts), w.Name, "fresh"); got != fresh {
		t.Fatalf("cross-config Reset diverged:\n got: %+v\nwant: %+v", got, fresh)
	}
}

// TestPoolConcurrentReuse hammers Acquire/Release from many goroutines
// (run under -race in CI): every rerun of the same workload+seed must
// stay bit-identical while pipelines migrate between goroutines.
func TestPoolConcurrentReuse(t *testing.T) {
	workloads := []string{"gcc2k", "mcf", "linpack", "coremark"}
	want := make(map[string]any)
	for _, name := range workloads {
		w, _ := trace.ByName(name)
		want[name] = New(DefaultConfig(), compositeForTest(goldenSeed(name))).
			Run(w.Build(goldenInsts), name, "pool")
	}

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		name := workloads[i%len(workloads)]
		wg.Add(1)
		go func() {
			defer wg.Done()
			w, _ := trace.ByName(name)
			for j := 0; j < 3; j++ {
				p := Acquire(DefaultConfig(), compositeForTest(goldenSeed(name)))
				got := p.Run(w.Build(goldenInsts), name, "pool")
				Release(p)
				if got != want[name] {
					t.Errorf("%s: pooled run diverged:\n got: %+v\nwant: %+v", name, got, want[name])
					return
				}
			}
		}()
	}
	wg.Wait()
}
