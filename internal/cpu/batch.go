package cpu

import (
	"repro/internal/core"
	"repro/internal/trace"
)

// Probe batching (see DESIGN.md §13.3). When the instruction stream is
// already in memory (the slice fast path of RunCtx) and the engine
// implements BatchEngine, the pipeline probes a group of upcoming
// predictable loads in a single ProbeBatch call instead of one virtual
// Probe dispatch per load. The batched lookups are computed against the
// engine's state at batch time and adopted one by one as their loads
// reach the probe stage.
//
// A batched lookup is only valid while the engine state is unchanged,
// and the engine mutates often: every predictable load enqueues one
// training, delivered by applyTrains immediately before a later probe
// once the fetch cycle reaches the training's cycle. Batching blindly
// across that boundary thrashes — in steady state roughly one train
// matures per fetch group, so a fixed lookahead is nearly always stale
// by its second entry. fillBatch therefore predicts how far the batch
// can safely reach: trains pop in FIFO order and only once the fetch
// cycle reaches the queue *head's* train cycle, so the head at fill
// time bounds every batched probe; the batch extends while the
// predicted fetch cycle of the next load stays below that bound (and
// below fc+FetchToExec, which keeps the loads probed by this batch —
// whose own trainings mature at execDone > fc+FetchToExec — from
// maturing inside the batch either). Future fetch cycles are replayed
// from the same timing-ring state the real steps will read, assuming
// instruction-cache hits and no intervening redirect.
//
// Two guards keep adoption bit-identical to serial probing even when
// that prediction is wrong (an icache miss or redirect stalling a load
// past the train horizon, or the 4096-instret epoch flush landing
// mid-batch):
//
//  1. Engine generation: p.engineGen is bumped after every engine
//     mutation (Train, Instret). A batch from an older generation is
//     discarded — the engine's answer could have changed.
//  2. Input equality: the probe inputs predicted at batch time (branch
//     history, load path, in-flight count replayed from the trace) are
//     compared against the real inputs at adoption time.
//
// A failed guard costs only the wasted lookups; the load falls back to
// a fresh batch or a serial probe.
const (
	// probeBatchMax is the number of upcoming predictable loads
	// gathered into one ProbeBatch call.
	probeBatchMax = 8

	// probeBatchScan bounds how far ahead of the current instruction
	// the trace is examined while gathering a batch.
	probeBatchScan = 48

	// probeBatchCooldown is how many instructions batching is suspended
	// after a failed fill or an invalidated batch: both mean trains are
	// maturing densely, and scanning again right away mostly re-buys
	// the same failure.
	probeBatchCooldown = 24
)

// probeBatch holds lookups precomputed by BatchEngine.ProbeBatch for
// upcoming predictable loads, plus the probe inputs they were computed
// from. Entries are consumed in order.
type probeBatch struct {
	probes [probeBatchMax]core.Probe
	lks    [probeBatchMax]core.Lookup
	seqs   [probeBatchMax]uint64
	n, pos int
	gen    uint64 // p.engineGen the batch was computed under
}

// probeLoad delivers the engine probe for one predictable load, serving
// it from the pending batch when one is still valid, and starting a new
// batch (or degrading to a serial probe) otherwise.
func (p *Pipeline) probeLoad(s *ctxSlice, seq, fc uint64, probe core.Probe) (uint64, core.Prediction, bool) {
	if p.batchEng == nil || p.lookahead == nil {
		return p.engine.Probe(probe)
	}
	b := &p.batch
	if b.pos < b.n && b.gen == p.engineGen && b.seqs[b.pos] == seq && b.probes[b.pos] == probe {
		lk := &b.lks[b.pos]
		b.pos++
		return p.batchEng.AdoptProbe(lk)
	}
	if b.pos < b.n {
		// An invalidated batch means the horizon prediction missed;
		// hold off batching briefly rather than refilling into the
		// same conditions.
		b.n, b.pos = 0, 0
		p.batchCool = seq + probeBatchCooldown
	}
	if seq < p.batchCool {
		return p.engine.Probe(probe)
	}
	if p.fillBatch(s, seq, fc, probe) {
		b.pos = 1
		return p.batchEng.AdoptProbe(&b.lks[0])
	}
	b.n, b.pos = 0, 0
	p.batchCool = seq + probeBatchCooldown
	return p.engine.Probe(probe)
}

// fillBatch gathers the current predictable load (whose real probe is
// given) and the predictable loads expected to probe before the next
// pending training matures into one ProbeBatch call. It reports false —
// leaving the batch empty — when no further load fits, in which case a
// serial probe is cheaper.
//
// Future probe inputs are replayed from the trace exactly as the front
// end will compute them: the global branch history shifts on every
// branch (the recorded outcome for conditionals, taken for the
// unconditional kinds — mirroring predictBranch), the load path shifts
// on every load after that load's own probe, and the in-flight count is
// the live table's value plus the same-PC loads probed earlier in the
// batch (each will inc before the later load probes; decs only happen
// in trainOne, which kills the batch via the generation guard). Future
// fetch cycles replay step's window-backpressure and fetch-bandwidth
// arithmetic against ring entries that are already written (the scan
// horizon is far smaller than the ROB/IQ/LDQ/STQ windows in any
// realistic configuration; a mispredicted cycle in a tiny-window sweep
// config only wastes the batch, it cannot corrupt it).
func (p *Pipeline) fillBatch(s *ctxSlice, seq, fc uint64, probe core.Probe) bool {
	// No batched probe may reach the fetch cycle where the oldest
	// pending training matures, nor cross the fc+FetchToExec horizon
	// that keeps this batch's own trainings out of reach.
	limitC := fc + uint64(p.cfg.FetchToExec)
	if t, ok := s.pending.peek(); ok && t.trainC <= limitC {
		if t.trainC <= fc {
			// Cannot happen (applyTrains ran at fc just before this
			// call), but guard the subtraction below.
			return false
		}
		limitC = t.trainC - 1
	}
	insts := p.lookahead
	end := seq + probeBatchScan
	// Stop before the 4096-instret epoch flush fires mid-batch.
	if left := instretEvery - p.instretBatch; seq+left < end {
		end = seq + left
	}
	if end > uint64(len(insts)) {
		end = uint64(len(insts))
	}

	b := &p.batch
	b.probes[0], b.seqs[0] = probe, seq
	n := 1
	hist, path := probe.BranchHist, probe.LoadPath
	// Predicted front-end state after the current instruction.
	simFC, simUsed := fc, s.fetchUsed
	simNL, simNS := s.nLoads, s.nStores

	for j := seq; n < probeBatchMax && j+1 < end; j++ {
		// Apply inst j's front-end updates, then consider inst j+1.
		in := &insts[j]
		switch in.Op {
		case trace.OpLoad:
			path = (path << 6) ^ ((in.PC >> 2) & 0xFFF)
			simNL++
		case trace.OpStore:
			simNS++
		case trace.OpBranch:
			hist <<= 1
			if in.Taken {
				hist |= 1
			}
		case trace.OpJump, trace.OpCall, trace.OpRet, trace.OpIndirect:
			hist = hist<<1 | 1
		}

		// Replay step's window backpressure and fetch placement for
		// inst j+1 (assuming an icache hit and no redirect).
		next := &insts[j+1]
		ns := j + 1
		var wr uint64
		if ns >= uint64(p.cfg.ROB) {
			if c := p.ringAt(s, ns-uint64(p.cfg.ROB)); c != nil && c.commitC > wr {
				wr = c.commitC
			}
		}
		if ns >= uint64(p.cfg.IQ) {
			if c := p.ringAt(s, ns-uint64(p.cfg.IQ)); c != nil && c.issueC > wr {
				wr = c.issueC
			}
		}
		switch next.Op {
		case trace.OpLoad:
			if simNL >= uint64(p.cfg.LDQ) {
				if old := s.loadRing[(simNL-uint64(p.cfg.LDQ))%uint64(len(s.loadRing))]; old.commitC > wr {
					wr = old.commitC
				}
			}
		case trace.OpStore:
			if simNS >= uint64(p.cfg.STQ) {
				if old := s.storeRing[(simNS-uint64(p.cfg.STQ))%uint64(len(s.storeRing))]; old.commitC > wr {
					wr = old.commitC
				}
			}
		}
		var floor uint64
		if wr > uint64(p.cfg.FetchToExec) {
			floor = wr - uint64(p.cfg.FetchToExec)
		}
		if floor > simFC {
			simFC = floor
			simUsed = 0
		}
		if simUsed >= p.cfg.FetchWidth {
			simFC++
			simUsed = 0
		}
		simUsed++
		if simFC > limitC {
			break
		}

		if next.Op != trace.OpLoad || next.Flags.NoPredict() {
			continue
		}
		inflight := s.inflight.get(next.PC)
		for k := 0; k < n; k++ {
			if b.probes[k].PC == next.PC {
				inflight++
			}
		}
		b.probes[n] = core.Probe{
			PC:         next.PC,
			BranchHist: hist,
			LoadPath:   path,
			Inflight:   inflight,
		}
		b.seqs[n] = ns
		n++
	}
	if n < 2 {
		return false
	}
	b.n = n
	b.gen = p.engineGen
	p.batchEng.ProbeBatch(b.probes[:n], b.lks[:n])
	return true
}
