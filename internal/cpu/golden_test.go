package cpu

import (
	"testing"

	"repro/internal/core"
	"repro/internal/eves"
	"repro/internal/stats"
	"repro/internal/trace"
)

// goldenInsts is the per-run budget of the differential test. It spans
// many prune periods (4096) and table compactions, so the ring/table
// replacements are exercised through their reclamation paths.
const goldenInsts = 6000

// goldenSeed derives the per-workload predictor seed.
func goldenSeed(name string) uint64 {
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 0x100000001b3
	}
	return core.SplitMix64(0xC0FFEE ^ h)
}

// goldenEngines returns matched engine factories: index 0 feeds the
// reference pipeline, index 1 the refactored one. Both must be freshly
// built per run with the same seed so predictor state evolves
// identically.
var goldenEngines = []struct {
	name string
	mk   func(seed uint64) Engine
}{
	{"baseline", func(uint64) Engine { return nil }},
	{"composite", func(seed uint64) Engine {
		return NewCompositeEngine(core.NewComposite(core.CompositeConfig{
			Entries: core.HomogeneousEntries(256),
			Seed:    seed,
			AM:      core.NewPCAM(64),
		}))
	}},
	{"eves", func(seed uint64) Engine {
		return eves.New(eves.Config{BudgetKB: 32, Seed: seed})
	}},
}

// TestGoldenDifferential pins the refactored (ring-buffer, pooled)
// pipeline bit-identical to the frozen map-based reference for every
// workload under baseline, composite, and EVES engines. The refactored
// side runs through Acquire/Release, so pipeline reuse across
// heterogeneous workloads is covered by the same oracle.
func TestGoldenDifferential(t *testing.T) {
	pool := trace.Workloads()
	if testing.Short() {
		pool = pool[:10]
	}
	cfg := DefaultConfig()
	for _, eng := range goldenEngines {
		eng := eng
		t.Run(eng.name, func(t *testing.T) {
			for _, w := range pool {
				seed := goldenSeed(w.Name)
				want := newRefPipeline(cfg, eng.mk(seed)).
					Run(w.Build(goldenInsts), w.Name, eng.name)

				p := Acquire(cfg, eng.mk(seed))
				got := p.Run(w.Build(goldenInsts), w.Name, eng.name)
				clobbers := p.resourceClobbers()
				Release(p)

				if got != want {
					t.Fatalf("%s/%s: refactored run diverged\n got: %+v\nwant: %+v",
						eng.name, w.Name, got, want)
				}
				if clobbers != 0 {
					t.Fatalf("%s/%s: %d cycle-ring clobbers (ring undersized)",
						eng.name, w.Name, clobbers)
				}
			}
		})
	}
}

// TestGoldenDifferentialWideWindow repeats the differential check under
// the largest window-sweep configuration (4x the Skylake-class window),
// which stresses the cycle rings' horizon sizing the hardest.
func TestGoldenDifferentialWideWindow(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ROB, cfg.IQ, cfg.LDQ, cfg.STQ = 896, 388, 288, 224
	for _, name := range []string{"gcc2k", "mcf", "linpack"} {
		w, ok := trace.ByName(name)
		if !ok {
			t.Fatalf("unknown workload %q", name)
		}
		seed := goldenSeed(w.Name)
		mk := goldenEngines[1].mk // composite exercises every table
		want := newRefPipeline(cfg, mk(seed)).Run(w.Build(goldenInsts), w.Name, "wide")

		p := Acquire(cfg, mk(seed))
		got := p.Run(w.Build(goldenInsts), w.Name, "wide")
		clobbers := p.resourceClobbers()
		Release(p)

		if got != want {
			t.Fatalf("%s: wide-window run diverged\n got: %+v\nwant: %+v", w.Name, got, want)
		}
		if clobbers != 0 {
			t.Fatalf("%s: %d cycle-ring clobbers under wide window", w.Name, clobbers)
		}
	}
}

// TestRefPipelineMatchesKnownAccounting sanity-checks the frozen
// reference itself: its accounting identity must hold, so a bug pasted
// into the oracle cannot silently validate the refactor.
func TestRefPipelineMatchesKnownAccounting(t *testing.T) {
	w, _ := trace.ByName("gcc2k")
	seed := goldenSeed(w.Name)
	run := newRefPipeline(DefaultConfig(), goldenEngines[1].mk(seed)).
		Run(w.Build(goldenInsts), w.Name, "ref")
	if run.Instructions != goldenInsts {
		t.Fatalf("ref simulated %d instructions, want %d", run.Instructions, goldenInsts)
	}
	if run.CorrectPredicted+run.VPFlushes != run.PredictedLoads {
		t.Fatalf("ref accounting inconsistent: %+v", run)
	}
	if run.IPC() <= 0 || run.IPC() > float64(DefaultConfig().IssueWidth) {
		t.Fatalf("ref IPC %.3f out of range", run.IPC())
	}
	var _ stats.Run = run
}
