package cpu

import "sync"

// pipelinePool recycles pipelines across runs. A pipeline owns several
// megabytes of hierarchy, predictor, and ring state whose construction
// dominated short runs before pooling; Reset reuses all of it when the
// configuration matches (and rebuilds in place when it does not).
var pipelinePool = sync.Pool{New: func() any { return &Pipeline{} }}

// Acquire returns a reset pipeline for cfg and engine, recycling a
// pooled one when available. The caller must Release it after the run.
func Acquire(cfg Config, engine Engine) *Pipeline {
	p := pipelinePool.Get().(*Pipeline)
	p.Reset(cfg, engine)
	return p
}

// Release returns p to the pool. The pipeline must not be used after
// release. The engine reference is dropped so pooled pipelines never
// retain predictors; the simulated memory image is kept for reuse.
func Release(p *Pipeline) {
	if p == nil {
		return
	}
	p.engine = nil
	pipelinePool.Put(p)
}
