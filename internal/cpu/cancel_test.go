package cpu

import (
	"context"
	"testing"

	"repro/internal/trace"
)

// cancellingGen wraps a generator and fires cancel after n instructions
// have been produced, making the mid-run cancellation point
// deterministic.
type cancellingGen struct {
	trace.Generator
	n      uint64
	seen   uint64
	cancel context.CancelFunc
}

func (g *cancellingGen) Next(in *trace.Inst) bool {
	if g.seen == g.n {
		g.cancel()
	}
	g.seen++
	return g.Generator.Next(in)
}

func TestRunCtxAlreadyCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	w, _ := trace.ByName("gcc2k")
	r := New(DefaultConfig(), nil).RunCtx(ctx, w.Build(1_000_000), w.Name, "base")
	if !r.Aborted {
		t.Fatal("run under a cancelled context not marked Aborted")
	}
	if r.Instructions != 0 {
		t.Fatalf("cancelled-before-start run simulated %d instructions, want 0", r.Instructions)
	}
}

func TestRunCtxCancelsWithinOneInterval(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	w, _ := trace.ByName("gcc2k")
	const at = 20_000
	gen := &cancellingGen{Generator: w.Build(10_000_000), n: at, cancel: cancel}
	r := New(DefaultConfig(), nil).RunCtx(ctx, gen, w.Name, "base")
	if !r.Aborted {
		t.Fatal("cancelled run not marked Aborted")
	}
	if r.Instructions < at {
		t.Fatalf("run stopped at %d instructions, before the cancellation point %d", r.Instructions, at)
	}
	if r.Instructions > at+cancelCheckInterval {
		t.Fatalf("run continued %d instructions past cancellation, want <= one check interval (%d)",
			r.Instructions-at, cancelCheckInterval)
	}
}

func TestRunCtxCompleteRunNotAborted(t *testing.T) {
	w, _ := trace.ByName("gcc2k")
	r := New(DefaultConfig(), nil).RunCtx(context.Background(), w.Build(30_000), w.Name, "base")
	if r.Aborted {
		t.Fatal("uncancelled run marked Aborted")
	}
	if r.Instructions != 30_000 {
		t.Fatalf("instructions = %d, want 30000", r.Instructions)
	}
}
