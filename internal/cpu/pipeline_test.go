package cpu

import (
	"testing"

	"repro/internal/core"
	"repro/internal/eves"
	"repro/internal/stats"
	"repro/internal/trace"
)

const testInsts = 60_000

func baselineRun(t *testing.T, workload string, n uint64) stats.Run {
	t.Helper()
	w, ok := trace.ByName(workload)
	if !ok {
		t.Fatalf("unknown workload %s", workload)
	}
	return New(DefaultConfig(), nil).Run(w.Build(n), workload, "base")
}

func compositeRun(t *testing.T, workload string, n uint64, cfg core.CompositeConfig) (stats.Run, *core.Composite) {
	t.Helper()
	w, ok := trace.ByName(workload)
	if !ok {
		t.Fatalf("unknown workload %s", workload)
	}
	c := core.NewComposite(cfg)
	run := New(DefaultConfig(), NewCompositeEngine(c)).Run(w.Build(n), workload, "composite")
	return run, c
}

func defaultCompositeConfig() core.CompositeConfig {
	return core.CompositeConfig{
		Entries: core.HomogeneousEntries(1024),
		Seed:    1,
		AM:      core.NewPCAM(64),
	}
}

func TestBaselineProducesSaneIPC(t *testing.T) {
	r := baselineRun(t, "coremark", testInsts)
	ipc := r.IPC()
	if ipc < 0.3 || ipc > 8 {
		t.Errorf("baseline IPC = %.2f, outside sane range", ipc)
	}
	if r.Instructions != testInsts {
		t.Errorf("instructions = %d", r.Instructions)
	}
	if r.Loads == 0 {
		t.Error("no loads observed")
	}
}

func TestBaselineDeterminism(t *testing.T) {
	a := baselineRun(t, "gcc2k", 30_000)
	b := baselineRun(t, "gcc2k", 30_000)
	if a != b {
		t.Errorf("baseline runs differ:\n%+v\n%+v", a, b)
	}
}

func TestCompositeDeterminism(t *testing.T) {
	a, _ := compositeRun(t, "gcc2k", 30_000, defaultCompositeConfig())
	b, _ := compositeRun(t, "gcc2k", 30_000, defaultCompositeConfig())
	if a != b {
		t.Errorf("composite runs differ:\n%+v\n%+v", a, b)
	}
}

func TestValuePredictionSpeedsUpPredictableWorkload(t *testing.T) {
	// An embedded workload (tight, predictable loops) must benefit from
	// load value prediction.
	base := baselineRun(t, "coremark", testInsts)
	vp, _ := compositeRun(t, "coremark", testInsts, defaultCompositeConfig())
	if sp := stats.Speedup(vp, base); sp <= 0 {
		t.Errorf("composite speedup on coremark = %.2f%%, want > 0", sp)
	}
	if vp.Coverage() <= 5 {
		t.Errorf("coverage = %.1f%%, suspiciously low", vp.Coverage())
	}
}

func TestPredictionAccuracyNearTarget(t *testing.T) {
	// All predictors are tuned for 99% accuracy; on the workload mix
	// the delivered accuracy should be close to that.
	for _, wl := range []string{"coremark", "gcc2k", "linpack", "v8"} {
		vp, _ := compositeRun(t, wl, testInsts, defaultCompositeConfig())
		if acc := vp.Accuracy(); vp.PredictedLoads > 500 && acc < 0.95 {
			t.Errorf("%s: accuracy %.4f < 0.95", wl, acc)
		}
	}
}

func TestCompositeCoverageExceedsSingleComponent(t *testing.T) {
	base := baselineRun(t, "gcc2k", testInsts)
	_ = base
	single := core.CompositeConfig{Seed: 1}
	single.Entries[core.CompLVP] = 1024
	lvpRun, _ := compositeRun(t, "gcc2k", testInsts, single)
	full, _ := compositeRun(t, "gcc2k", testInsts, core.CompositeConfig{
		Entries: core.HomogeneousEntries(1024), Seed: 1,
	})
	if full.Coverage() <= lvpRun.Coverage() {
		t.Errorf("composite coverage %.1f%% <= LVP-only %.1f%%", full.Coverage(), lvpRun.Coverage())
	}
}

func TestVPFlushesAreCounted(t *testing.T) {
	// Workloads with flaky strides must generate at least some value
	// misprediction flushes when no AM protects the composite.
	cfg := core.CompositeConfig{Entries: core.HomogeneousEntries(1024), Seed: 1}
	run, _ := compositeRun(t, "bzip2k", 120_000, cfg)
	if run.PredictedLoads == 0 {
		t.Fatal("no predictions delivered")
	}
	if run.VPFlushes == 0 {
		t.Log("note: no VP flushes on bzip2k (acceptable but unusual)")
	}
	if run.CorrectPredicted+run.VPFlushes != run.PredictedLoads {
		t.Errorf("predicted=%d correct=%d flushes=%d: inconsistent accounting",
			run.PredictedLoads, run.CorrectPredicted, run.VPFlushes)
	}
}

func TestBranchFlushesOccur(t *testing.T) {
	r := baselineRun(t, "gcc2k", testInsts)
	if r.BranchFlushes == 0 {
		t.Error("no branch mispredictions on a branchy integer workload")
	}
	// But the TAGE predictor should keep the rate modest.
	if rate := float64(r.BranchFlushes) / float64(r.Instructions) * 1000; rate > 30 {
		t.Errorf("branch MPKI = %.1f, implausibly high", rate)
	}
}

func TestMemoryOrderingViolationsTrainStoreSets(t *testing.T) {
	// The store-update kernel (in int/js profiles) creates store→load
	// conflicts; the first violation trains the store set, so
	// violations must be rare relative to the conflicting pairs.
	r := baselineRun(t, "perlbench", 120_000)
	if r.MemOrderFlushes == 0 {
		t.Skip("no ordering violations observed (timing-dependent)")
	}
	if r.MemOrderFlushes > r.Instructions/100 {
		t.Errorf("ordering violations = %d, store sets not learning", r.MemOrderFlushes)
	}
}

func TestAtomicLoadsNeverPredicted(t *testing.T) {
	// Engines are not probed for flagged loads; verify by running a
	// counting engine.
	w, _ := trace.ByName("coremark")
	ce := &countingEngine{}
	New(DefaultConfig(), ce).Run(w.Build(testInsts), "coremark", "count")

	// Independently count predictable loads in the same trace.
	gen := w.Build(testInsts)
	var in trace.Inst
	predictable := 0
	for gen.Next(&in) {
		if in.Op == trace.OpLoad && !in.Flags.NoPredict() {
			predictable++
		}
	}
	if ce.probes != predictable {
		t.Errorf("engine probed %d loads, want %d (flagged loads excluded)", ce.probes, predictable)
	}
}

type countingEngine struct {
	probes int
	trains int
}

func (c *countingEngine) Probe(core.Probe) (uint64, core.Prediction, bool) {
	c.probes++
	return 0, core.Prediction{}, false
}
func (c *countingEngine) Train(core.Outcome, uint64, core.AddrResolver) { c.trains++ }
func (c *countingEngine) Instret(uint64)                                {}

func TestEveryProbedLoadEventuallyTrains(t *testing.T) {
	w, _ := trace.ByName("linpack")
	ce := &countingEngine{}
	p := New(DefaultConfig(), ce)
	p.Run(w.Build(testInsts), "linpack", "count")
	p.applyTrains(&p.one, ^uint64(0)) // drain
	if ce.trains != ce.probes {
		t.Errorf("probes=%d trains=%d: trainings lost", ce.probes, ce.trains)
	}
}

func TestTrainingLagsBehindProbes(t *testing.T) {
	// The prediction-to-update latency: by end of run some loads are
	// typically still awaiting training (in flight).
	w, _ := trace.ByName("linpack")
	ce := &countingEngine{}
	New(DefaultConfig(), ce).Run(w.Build(testInsts), "linpack", "count")
	if ce.trains > ce.probes {
		t.Errorf("more trainings (%d) than probes (%d)", ce.trains, ce.probes)
	}
}

func TestPerfectEngineNeverFlushes(t *testing.T) {
	// An oracle engine that predicts every load's exact value must
	// produce zero VP flushes and a speedup.
	w, _ := trace.ByName("mcf")
	base := baselineRun(t, "mcf", testInsts)
	oracle := &oracleEngine{gen: w.Build(testInsts)}
	run := New(DefaultConfig(), oracle).Run(w.Build(testInsts), "mcf", "oracle")
	if run.VPFlushes != 0 {
		t.Errorf("oracle engine caused %d flushes", run.VPFlushes)
	}
	if sp := stats.Speedup(run, base); sp <= 0 {
		t.Errorf("oracle speedup = %.2f%%, want > 0", sp)
	}
	if cov := run.Coverage(); cov < 90 {
		t.Errorf("oracle coverage = %.1f%%", cov)
	}
}

// oracleEngine cheats by replaying a second copy of the (deterministic)
// workload in lockstep: each Probe call corresponds to exactly one
// predictable load in trace order, so it can emit the load's true value
// as a "prediction". It bounds the pipeline's VP plumbing from above.
type oracleEngine struct{ gen trace.Generator }

func (o *oracleEngine) Probe(core.Probe) (uint64, core.Prediction, bool) {
	var in trace.Inst
	for o.gen.Next(&in) {
		if in.Op == trace.OpLoad && !in.Flags.NoPredict() {
			return 0, core.Prediction{Kind: core.KindValue, Source: core.CompLVP, Value: in.Value}, true
		}
	}
	return 0, core.Prediction{}, false
}
func (o *oracleEngine) Train(core.Outcome, uint64, core.AddrResolver) {}
func (o *oracleEngine) Instret(uint64)                                {}

func TestROBLimitsIPC(t *testing.T) {
	// A tiny window must lose IPC versus the Skylake-class window.
	w, _ := trace.ByName("mcf")
	small := DefaultConfig()
	small.ROB, small.IQ, small.LDQ, small.STQ = 16, 8, 8, 8
	smallRun := New(small, nil).Run(w.Build(testInsts), "mcf", "small")
	big := baselineRun(t, "mcf", testInsts)
	if smallRun.IPC() >= big.IPC() {
		t.Errorf("ROB=16 IPC %.2f >= ROB=224 IPC %.2f", smallRun.IPC(), big.IPC())
	}
}

func TestIssueWidthLimitsIPC(t *testing.T) {
	w, _ := trace.ByName("coremark")
	narrow := DefaultConfig()
	narrow.IssueWidth, narrow.FetchWidth, narrow.CommitWidth = 1, 1, 1
	nRun := New(narrow, nil).Run(w.Build(testInsts), "coremark", "narrow")
	if nRun.IPC() > 1.01 {
		t.Errorf("1-wide core IPC = %.2f > 1", nRun.IPC())
	}
	wide := baselineRun(t, "coremark", testInsts)
	if wide.IPC() <= nRun.IPC() {
		t.Errorf("wide core (%.2f) not faster than 1-wide (%.2f)", wide.IPC(), nRun.IPC())
	}
}

func TestCommitCyclesMonotonic(t *testing.T) {
	// Commit is in-order: cycles must never decrease across a run.
	w, _ := trace.ByName("gzip")
	p := New(DefaultConfig(), nil)
	gen := w.Build(20_000)
	p.one.simMem = gen.Mem().Clone()
	p.one.run = stats.Run{}
	var in trace.Inst
	var seq, prev uint64
	for gen.Next(&in) {
		cc := p.step(&p.one, seq, &in)
		if cc < prev {
			t.Fatalf("commit cycle regressed at seq %d: %d < %d", seq, cc, prev)
		}
		prev = cc
		seq++
	}
}

func TestSlowMemoryHurtsIPC(t *testing.T) {
	w, _ := trace.ByName("mcf")
	slow := DefaultConfig()
	slow.Hierarchy.MemLatency = 800
	slowRun := New(slow, nil).Run(w.Build(testInsts), "mcf", "slowmem")
	fast := baselineRun(t, "mcf", testInsts)
	if slowRun.IPC() >= fast.IPC() {
		t.Errorf("800-cycle memory IPC %.3f >= 200-cycle IPC %.3f", slowRun.IPC(), fast.IPC())
	}
}

func evesEngine() Engine {
	return eves.New(eves.Config{BudgetKB: 32, Seed: 1})
}
