package cpu

import (
	"testing"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/trace"
)

// kernelSpeedup runs one isolated load-pattern kernel with and without
// the composite predictor and returns (speedup%, vp run, composite).
func kernelSpeedup(t *testing.T, kind string, n uint64) (float64, stats.Run, *core.Composite) {
	t.Helper()
	gen := trace.NewSingleKernel(kind, n, 7)
	if gen == nil {
		t.Fatalf("unknown kernel %q", kind)
	}
	base := New(DefaultConfig(), nil).Run(gen, kind, "base")
	c := core.NewComposite(core.CompositeConfig{
		Entries: core.HomogeneousEntries(1024),
		Seed:    1,
		AM:      core.NewPCAM(64),
	})
	vp := New(DefaultConfig(), NewCompositeEngine(c)).Run(trace.NewSingleKernel(kind, n, 7), kind, "vp")
	return stats.Speedup(vp, base), vp, c
}

func TestSerializedPredictableKernelsSpeedUp(t *testing.T) {
	// The kernels with predictable loads on serialized dependence
	// chains are where value prediction pays: require substantial
	// speedups.
	for _, tc := range []struct {
		kind string
		min  float64
	}{
		{"seqchase", 10},
		{"ctxvalue", 25},
		{"callsite", 25},
	} {
		sp, run, _ := kernelSpeedup(t, tc.kind, 100_000)
		if sp < tc.min {
			t.Errorf("%s speedup = %.2f%%, want >= %.0f%%", tc.kind, sp, tc.min)
		}
		if run.Accuracy() < 0.97 {
			t.Errorf("%s accuracy = %.4f", tc.kind, run.Accuracy())
		}
	}
}

func TestUnpredictableKernelsUnharmed(t *testing.T) {
	// Kernels the predictors cannot capture must not be slowed down
	// materially (confidence + AMs keep predictions quiet).
	for _, kind := range []string{"chase", "random", "storeupdate", "flaky"} {
		sp, _, _ := kernelSpeedup(t, kind, 100_000)
		if sp < -1.5 {
			t.Errorf("%s speedup = %.2f%%, want > -1.5%% (throttling failed)", kind, sp)
		}
	}
}

func TestCoverageKernels(t *testing.T) {
	// Pattern-1/2 kernels are highly covered even where the win is
	// small (their loads are not on serialized paths).
	for _, tc := range []struct {
		kind   string
		minCov float64
	}{
		{"const", 90},
		{"stride", 90},
		{"listing1", 90},
	} {
		sp, run, _ := kernelSpeedup(t, tc.kind, 100_000)
		if cov := run.Coverage(); cov < tc.minCov {
			t.Errorf("%s coverage = %.1f%%, want >= %.0f%%", tc.kind, cov, tc.minCov)
		}
		if sp < -1.5 {
			t.Errorf("%s speedup = %.2f%%, want non-harmful", tc.kind, sp)
		}
	}
}

func TestComponentSpecialization(t *testing.T) {
	// Each pattern kernel must be served predominantly by its proxy
	// component (Section IV-A) under the composite's selection rule.
	cases := []struct {
		kind string
		want core.Component
	}{
		{"stride", core.CompSAP},
		{"ctxvalue", core.CompCVP},
	}
	for _, tc := range cases {
		_, _, c := kernelSpeedup(t, tc.kind, 100_000)
		st := c.Stats()
		var total uint64
		for comp := core.Component(0); comp < core.NumComponents; comp++ {
			total += st.UsedBy[comp]
		}
		if total == 0 {
			t.Errorf("%s: no predictions used", tc.kind)
			continue
		}
		if frac := float64(st.UsedBy[tc.want]) / float64(total); frac < 0.8 {
			t.Errorf("%s: %v served %.0f%% of predictions, want >= 80%%", tc.kind, tc.want, 100*frac)
		}
	}
}

func TestCAPCoversCallsiteWithoutCVP(t *testing.T) {
	// With the value predictors absent, the call-site kernel must be
	// picked up by CAP via the load path history (the DLVP pattern).
	var entries [core.NumComponents]int
	entries[core.CompCAP] = 1024
	entries[core.CompSAP] = 1024
	c := core.NewComposite(core.CompositeConfig{Entries: entries, Seed: 1})
	run := New(DefaultConfig(), NewCompositeEngine(c)).Run(
		trace.NewSingleKernel("callsite", 100_000, 7), "callsite", "cap-only")
	st := c.Stats()
	if st.UsedBy[core.CompCAP] < st.UsedBy[core.CompSAP] {
		t.Errorf("CAP used %d <= SAP %d on the call-site pattern", st.UsedBy[core.CompCAP], st.UsedBy[core.CompSAP])
	}
	if run.Coverage() < 30 {
		t.Errorf("address-only coverage on callsite = %.1f%%", run.Coverage())
	}
}

func TestRingbufAddressPredictorsOnly(t *testing.T) {
	// The ring buffer's values are fresh every lap: value predictors
	// must stay quiet while SAP covers the consumer loads through the
	// cache probe.
	base := New(DefaultConfig(), nil).Run(trace.NewSingleKernel("ringbuf", 120_000, 7), "rb", "base")
	c := core.NewComposite(core.CompositeConfig{Entries: core.HomogeneousEntries(1024), Seed: 1, AM: core.NewPCAM(64)})
	vp := New(DefaultConfig(), NewCompositeEngine(c)).Run(trace.NewSingleKernel("ringbuf", 120_000, 7), "rb", "vp")
	if sp := stats.Speedup(vp, base); sp < 3 {
		t.Errorf("ringbuf speedup = %.2f%%, want >= 3%%", sp)
	}
	st := c.Stats()
	valueUsed := st.UsedBy[core.CompLVP] + st.UsedBy[core.CompCVP]
	addrUsed := st.UsedBy[core.CompSAP] + st.UsedBy[core.CompCAP]
	if valueUsed*5 > addrUsed {
		t.Errorf("value predictors used %d vs address %d; fresh data should defeat them", valueUsed, addrUsed)
	}
	if vp.Accuracy() < 0.99 {
		t.Errorf("ringbuf accuracy %.4f", vp.Accuracy())
	}
}

func TestEVESCannotLearnRingbuf(t *testing.T) {
	// The same pattern through EVES: almost no coverage (its components
	// are value-only), little speedup. This is the structural gap the
	// composite exploits in Figure 11.
	base := New(DefaultConfig(), nil).Run(trace.NewSingleKernel("ringbuf", 120_000, 7), "rb", "base")
	ev := evesEngine()
	run := New(DefaultConfig(), ev).Run(trace.NewSingleKernel("ringbuf", 120_000, 7), "rb", "eves")
	if cov := run.Coverage(); cov > 20 {
		t.Errorf("EVES coverage on fresh-data ring = %.1f%%, want < 20%%", cov)
	}
	_ = base
}
