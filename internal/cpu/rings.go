package cpu

// This file holds the fixed-size structures that replaced the pipeline's
// cycle-keyed and resource-keyed maps (see DESIGN.md, "Hot-path data
// structures"). They are semantically equivalent to the maps they
// replaced — the differential golden test in refpipe_test.go pins the
// refactored pipeline bit-identical to the map-based reference — but
// keep the per-instruction path free of map operations and allocations.

// mix64 is SplitMix64's finalizer, used to hash open-addressing keys.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// cycleRing counts resource claims per cycle over a sliding window of
// future cycles. A slot is valid for cycle c only when its tag matches
// c's high bits and the current run epoch; a stale tag reads as zero,
// exactly like a pruned map entry. Correctness needs the window (the
// ring size) to exceed the farthest distance between two live claimed
// cycles — cycleRingSize derives that bound from the core
// configuration. inc records a clobber when it ever overwrites a slot
// tagged for a *future* cycle of the same run, so undersizing is
// detectable rather than silent. reset bumps the epoch (folded into the
// tag's high bits) instead of clearing the arrays — the three pipeline
// rings together span megabytes, and epoch tagging makes a pooled reset
// constant-time.
type cycleRing struct {
	tags     []uint64 // (epoch << 32) | (cycle >> shift)
	counts   []uint16
	mask     uint64
	shift    uint
	epoch    uint64
	clobbers uint64
}

func newCycleRing(size int) cycleRing {
	shift := uint(0)
	for 1<<shift < size {
		shift++
	}
	return cycleRing{
		tags:   make([]uint64, size),
		counts: make([]uint16, size),
		mask:   uint64(size - 1),
		shift:  shift,
		epoch:  1, // zero-valued slots never match
	}
}

func (r *cycleRing) get(c uint64) int {
	i := c & r.mask
	if r.tags[i] != r.epoch<<32|c>>r.shift {
		return 0
	}
	return int(r.counts[i])
}

func (r *cycleRing) inc(c uint64) {
	i := c & r.mask
	t := r.epoch<<32 | c>>r.shift
	if r.tags[i] != t {
		if r.tags[i] > t {
			r.clobbers++
		}
		r.tags[i] = t
		r.counts[i] = 1
		return
	}
	r.counts[i]++
}

func (r *cycleRing) reset() {
	r.epoch++
}

// cycleRingSize returns the claim window for cfg: the farthest a claimed
// cycle can sit ahead of the current fetch cycle is bounded by a full
// window of maximum-latency instructions (every hop in a dependence
// chain that advances readiness must come from an instruction still in
// the ROB; older producers are capped by commit-driven fetch
// backpressure to within FetchToExec of fetch).
func cycleRingSize(cfg Config) int {
	h := cfg.Hierarchy
	// Worst-case single-instruction latency: a demand miss walking the
	// TLB and every cache level to memory, plus replay/forwarding
	// charges; +128 covers TLB walk and redirect slack.
	lat := h.MemLatency + h.L3.Latency + h.L2.Latency + h.L1D.Latency +
		cfg.ReplayPenalty + cfg.StoreForwardLat + 128
	span := cfg.ROB*(lat+1) + cfg.FetchToExec + 8192
	size := 1 << 12
	for size < span {
		size <<= 1
	}
	return size
}

// storeTable is a bounded open-addressing map word→storeRecord standing
// in for the lastStore map. Entries are removed only by compact, which
// rebuilds every probe chain, so linear probing stays correct between
// compactions. The pipeline compacts with a liveness predicate under
// which dropped entries are unobservable (see storeFloor).
type storeTable struct {
	keys []uint64
	live []bool
	vals []storeRecord
	mask uint64
	n    int

	scratchK []uint64
	scratchV []storeRecord
}

func newStoreTable(size int) storeTable {
	return storeTable{
		keys:     make([]uint64, size),
		live:     make([]bool, size),
		vals:     make([]storeRecord, size),
		mask:     uint64(size - 1),
		scratchK: make([]uint64, 0, size/2),
		scratchV: make([]storeRecord, 0, size/2),
	}
}

func (t *storeTable) get(key uint64) (storeRecord, bool) {
	i := mix64(key) & t.mask
	for {
		if !t.live[i] {
			return storeRecord{}, false
		}
		if t.keys[i] == key {
			return t.vals[i], true
		}
		i = (i + 1) & t.mask
	}
}

func (t *storeTable) put(key uint64, v storeRecord) {
	i := mix64(key) & t.mask
	for {
		if !t.live[i] {
			t.live[i] = true
			t.keys[i] = key
			t.vals[i] = v
			t.n++
			return
		}
		if t.keys[i] == key {
			t.vals[i] = v
			return
		}
		i = (i + 1) & t.mask
	}
}

// crowded reports whether the table is at least half full; the caller
// must compact (and the table then grows itself if compaction did not
// help) before inserting more.
func (t *storeTable) crowded() bool { return 2*t.n >= len(t.keys) }

// compact rebuilds the table keeping only entries keep accepts, doubling
// the arrays while the survivors alone would keep it crowded (a safety
// valve — with window-bounded liveness the default sizing never grows).
func (t *storeTable) compact(keep func(storeRecord) bool) {
	t.scratchK = t.scratchK[:0]
	t.scratchV = t.scratchV[:0]
	for i, lv := range t.live {
		if lv && keep(t.vals[i]) {
			t.scratchK = append(t.scratchK, t.keys[i])
			t.scratchV = append(t.scratchV, t.vals[i])
		}
	}
	size := len(t.keys)
	for 2*len(t.scratchK) >= size {
		size *= 2
	}
	if size != len(t.keys) {
		t.keys = make([]uint64, size)
		t.live = make([]bool, size)
		t.vals = make([]storeRecord, size)
		t.mask = uint64(size - 1)
	} else {
		clear(t.live)
	}
	t.n = 0
	for j, k := range t.scratchK {
		t.put(k, t.scratchV[j])
	}
}

func (t *storeTable) reset() {
	clear(t.live)
	t.n = 0
}

// fillTable is a bounded open-addressing map line→fill-completion-cycle
// standing in for the lineFill map. Stale entries are architecturally
// visible (they bound a demand load's completion), so — unlike
// storeTable — entries are dropped only on the prune cadence with the
// same `fd < fetchCycle` predicate the map used, keeping eviction timing
// bit-identical.
type fillTable struct {
	keys []uint64
	live []bool
	vals []uint64
	mask uint64
	n    int

	scratchK []uint64
	scratchV []uint64
}

func newFillTable(size int) fillTable {
	return fillTable{
		keys:     make([]uint64, size),
		live:     make([]bool, size),
		vals:     make([]uint64, size),
		mask:     uint64(size - 1),
		scratchK: make([]uint64, 0, size/2),
		scratchV: make([]uint64, 0, size/2),
	}
}

func (t *fillTable) get(key uint64) (uint64, bool) {
	i := mix64(key) & t.mask
	for {
		if !t.live[i] {
			return 0, false
		}
		if t.keys[i] == key {
			return t.vals[i], true
		}
		i = (i + 1) & t.mask
	}
}

// putMin inserts key→done, keeping the earlier completion when the line
// already has a pending fill. Between prunes insertions may only grow
// the table (never evict), preserving map semantics.
func (t *fillTable) putMin(key, done uint64) {
	if 2*(t.n+1) >= len(t.keys) {
		t.grow()
	}
	i := mix64(key) & t.mask
	for {
		if !t.live[i] {
			t.live[i] = true
			t.keys[i] = key
			t.vals[i] = done
			t.n++
			return
		}
		if t.keys[i] == key {
			if done < t.vals[i] {
				t.vals[i] = done
			}
			return
		}
		i = (i + 1) & t.mask
	}
}

func (t *fillTable) grow() {
	oldK, oldL, oldV := t.keys, t.live, t.vals
	size := len(oldK) * 2
	t.keys = make([]uint64, size)
	t.live = make([]bool, size)
	t.vals = make([]uint64, size)
	t.mask = uint64(size - 1)
	t.n = 0
	for i, lv := range oldL {
		if lv {
			t.putMin(oldK[i], oldV[i])
		}
	}
}

// compactBelow drops entries whose fill completes before limit — the
// prune() predicate.
func (t *fillTable) compactBelow(limit uint64) {
	t.scratchK = t.scratchK[:0]
	t.scratchV = t.scratchV[:0]
	for i, lv := range t.live {
		if lv && t.vals[i] >= limit {
			t.scratchK = append(t.scratchK, t.keys[i])
			t.scratchV = append(t.scratchV, t.vals[i])
		}
	}
	clear(t.live)
	t.n = 0
	for j, k := range t.scratchK {
		t.putMin(k, t.scratchV[j])
	}
}

func (t *fillTable) reset() {
	clear(t.live)
	t.n = 0
}

// countTable is a bounded open-addressing map pc→count standing in for
// the inflightPC map. A count that reaches zero is indistinguishable
// from an absent entry (get returns 0 either way), so zero-count slots
// can be reclaimed at any compaction without observable effect; they
// stay in place between compactions to keep probe chains intact.
type countTable struct {
	keys   []uint64
	used   []bool
	counts []int32
	mask   uint64
	n      int

	scratchK []uint64
	scratchC []int32
}

func newCountTable(size int) countTable {
	return countTable{
		keys:     make([]uint64, size),
		used:     make([]bool, size),
		counts:   make([]int32, size),
		mask:     uint64(size - 1),
		scratchK: make([]uint64, 0, size/2),
		scratchC: make([]int32, 0, size/2),
	}
}

func (t *countTable) get(key uint64) int {
	i := mix64(key) & t.mask
	for {
		if !t.used[i] {
			return 0
		}
		if t.keys[i] == key {
			return int(t.counts[i])
		}
		i = (i + 1) & t.mask
	}
}

func (t *countTable) inc(key uint64) {
	if 2*(t.n+1) >= len(t.keys) {
		t.compact()
	}
	i := mix64(key) & t.mask
	for {
		if !t.used[i] {
			t.used[i] = true
			t.keys[i] = key
			t.counts[i] = 1
			t.n++
			return
		}
		if t.keys[i] == key {
			t.counts[i]++
			return
		}
		i = (i + 1) & t.mask
	}
}

func (t *countTable) dec(key uint64) {
	i := mix64(key) & t.mask
	for {
		if !t.used[i] {
			return
		}
		if t.keys[i] == key {
			if t.counts[i] > 0 {
				t.counts[i]--
			}
			return
		}
		i = (i + 1) & t.mask
	}
}

// compact reclaims zero-count slots, doubling if the live entries alone
// would keep the table crowded.
func (t *countTable) compact() {
	t.scratchK = t.scratchK[:0]
	t.scratchC = t.scratchC[:0]
	for i, u := range t.used {
		if u && t.counts[i] > 0 {
			t.scratchK = append(t.scratchK, t.keys[i])
			t.scratchC = append(t.scratchC, t.counts[i])
		}
	}
	size := len(t.keys)
	for 2*(len(t.scratchK)+1) >= size {
		size *= 2
	}
	if size != len(t.keys) {
		t.keys = make([]uint64, size)
		t.used = make([]bool, size)
		t.counts = make([]int32, size)
		t.mask = uint64(size - 1)
	} else {
		clear(t.used)
	}
	t.n = 0
	for j, k := range t.scratchK {
		i := mix64(k) & t.mask
		for t.used[i] {
			i = (i + 1) & t.mask
		}
		t.used[i] = true
		t.keys[i] = k
		t.counts[i] = t.scratchC[j]
		t.n++
	}
}

func (t *countTable) reset() {
	clear(t.used)
	t.n = 0
}
