package cpu

import "repro/internal/core"

// Engine is the value prediction engine plugged into the core: the
// composite predictor, a single component, EVES, or nothing. The
// pipeline calls Probe when a load is fetched and Train when it
// executes, handing back the opaque record from Probe so the engine can
// match training to the prediction it made.
type Engine interface {
	// Probe is called at fetch for every predictable load. It returns
	// an opaque per-load record (replayed to Train), the delivered
	// prediction, and whether one was delivered.
	Probe(p core.Probe) (rec any, pred core.Prediction, used bool)

	// Train is called when the load executes. resolve reads the
	// simulated memory image as the PAQ probe would have seen it, for
	// validating address predictions.
	Train(o core.Outcome, rec any, resolve core.AddrResolver)

	// Instret advances epoch-based machinery (accuracy monitors, table
	// fusion) by n retired instructions.
	Instret(n uint64)
}

// CompositeEngine adapts core.Composite to the Engine interface.
type CompositeEngine struct {
	C *core.Composite
}

// NewCompositeEngine wraps a composite predictor as a pipeline engine.
func NewCompositeEngine(c *core.Composite) *CompositeEngine {
	return &CompositeEngine{C: c}
}

// Probe implements Engine.
func (e *CompositeEngine) Probe(p core.Probe) (any, core.Prediction, bool) {
	lk := e.C.Probe(p)
	pred, used := lk.Prediction()
	return &lk, pred, used
}

// Train implements Engine.
func (e *CompositeEngine) Train(o core.Outcome, rec any, resolve core.AddrResolver) {
	var lk *core.Lookup
	if rec != nil {
		lk = rec.(*core.Lookup)
	}
	e.C.Train(o, lk, core.Validate(lk, o, resolve))
}

// Instret implements Engine.
func (e *CompositeEngine) Instret(n uint64) { e.C.Instret(n) }
