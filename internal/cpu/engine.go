package cpu

import "repro/internal/core"

// Engine is the value prediction engine plugged into the core: the
// composite predictor, a single component, EVES, or nothing. The
// pipeline calls Probe when a load is fetched and Train when it
// executes, handing back the record handle from Probe so the engine can
// match training to the prediction it made.
//
// Handles are engine-owned: an engine keeps its per-load records in a
// ring indexed by the handle, sized so a record lives at least as long
// as its load can stay in flight (the pipeline trains loads in program
// order and never keeps more than a ROB's worth pending, far below
// RecRingSize). This replaces the former `rec any` plumbing, whose
// interface boxing allocated on every probed load.
type Engine interface {
	// Probe is called at fetch for every predictable load. It returns
	// a per-load record handle (replayed to Train), the delivered
	// prediction, and whether one was delivered.
	Probe(p core.Probe) (rec uint64, pred core.Prediction, used bool)

	// Train is called when the load executes. resolve reads the
	// simulated memory image as the PAQ probe would have seen it, for
	// validating address predictions.
	Train(o core.Outcome, rec uint64, resolve core.AddrResolver)

	// Instret advances epoch-based machinery (accuracy monitors, table
	// fusion) by n retired instructions.
	Instret(n uint64)
}

// BatchEngine is an optional Engine refinement for engines whose probe
// computation is side-effect free until committed. The pipeline uses it
// to probe a whole fetch group of upcoming predictable loads in one
// call (amortizing dispatch and keeping predictor tables hot), then
// commits each precomputed lookup as its load reaches the probe stage.
//
// The contract mirrors Composite.ProbeBatch: batched lookups reflect
// engine state at ProbeBatch time, so the caller must discard the batch
// whenever Train or Instret runs before a lookup is adopted. Engines
// that cannot separate computation from recording simply don't
// implement the interface and are probed one load at a time.
type BatchEngine interface {
	Engine

	// ProbeBatch fills out[i] with the lookup Probe would compute for
	// probe ps[i], recording nothing and allocating no handles.
	ProbeBatch(ps []core.Probe, out []core.Lookup)

	// AdoptProbe installs one batched lookup as the probe record for a
	// fetched load, with the same result and side effects Probe would
	// have had (handle allocation, statistics).
	AdoptProbe(lk *core.Lookup) (rec uint64, pred core.Prediction, used bool)
}

// RecRingSize is the number of in-flight per-load records an engine
// must retain between Probe and its matching Train. Must be a power of
// two and exceed the pipeline's maximum training backlog (bounded by
// the ROB plus fetch-to-execute slack — a few hundred).
const RecRingSize = 4096

// CompositeEngine adapts core.Composite to the Engine interface.
type CompositeEngine struct {
	C *core.Composite

	recs []core.Lookup // per-load record ring, indexed by handle
	next uint64
}

// NewCompositeEngine wraps a composite predictor as a pipeline engine.
func NewCompositeEngine(c *core.Composite) *CompositeEngine {
	return &CompositeEngine{C: c, recs: make([]core.Lookup, RecRingSize)}
}

// Probe implements Engine.
func (e *CompositeEngine) Probe(p core.Probe) (uint64, core.Prediction, bool) {
	h := e.next
	e.next++
	lk := &e.recs[h&(RecRingSize-1)]
	*lk = e.C.Probe(p)
	pred, used := lk.Prediction()
	return h, pred, used
}

// ProbeBatch implements BatchEngine.
func (e *CompositeEngine) ProbeBatch(ps []core.Probe, out []core.Lookup) {
	e.C.ProbeBatch(ps, out)
}

// AdoptProbe implements BatchEngine.
func (e *CompositeEngine) AdoptProbe(lk *core.Lookup) (uint64, core.Prediction, bool) {
	h := e.next
	e.next++
	dst := &e.recs[h&(RecRingSize-1)]
	*dst = *lk
	e.C.CommitProbe(dst)
	pred, used := dst.Prediction()
	return h, pred, used
}

// Train implements Engine.
func (e *CompositeEngine) Train(o core.Outcome, rec uint64, resolve core.AddrResolver) {
	lk := &e.recs[rec&(RecRingSize-1)]
	e.C.Train(o, lk, core.Validate(lk, o, resolve))
}

// Instret implements Engine.
func (e *CompositeEngine) Instret(n uint64) { e.C.Instret(n) }
