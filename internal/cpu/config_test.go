package cpu

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/trace"
)

func TestDefaultConfigMatchesTableIII(t *testing.T) {
	cfg := DefaultConfig()
	cases := []struct {
		name string
		got  int
		want int
	}{
		{"FetchWidth", cfg.FetchWidth, 4},
		{"IssueWidth", cfg.IssueWidth, 8},
		{"CommitWidth", cfg.CommitWidth, 8},
		{"LSLanes", cfg.LSLanes, 2},
		{"ROB", cfg.ROB, 224},
		{"IQ", cfg.IQ, 97},
		{"LDQ", cfg.LDQ, 72},
		{"STQ", cfg.STQ, 56},
		{"FetchToExec", cfg.FetchToExec, 13},
		{"RAS", cfg.RASSize, 16},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("%s = %d, want %d (Table III)", c.name, c.got, c.want)
		}
	}
	h := cfg.Hierarchy
	if h.L1D.SizeBytes != 64<<10 || h.L1D.Latency != 2 {
		t.Error("L1D config departs from Table III")
	}
	if h.L2.SizeBytes != 512<<10 || h.L2.Latency != 16 {
		t.Error("L2 config departs from Table III")
	}
	if h.L3.SizeBytes != 8<<20 || h.L3.Latency != 32 {
		t.Error("L3 config departs from Table III")
	}
	if h.MemLatency != 200 {
		t.Error("memory latency departs from Table III")
	}
	if h.TLB.Entries != 512 || h.TLB.Ways != 8 {
		t.Error("TLB config departs from Table III")
	}
}

func TestDeeperFrontEndHurts(t *testing.T) {
	w, _ := trace.ByName("gcc2k")
	deep := DefaultConfig()
	deep.FetchToExec = 40
	deepRun := New(deep, nil).Run(w.Build(60_000), "gcc2k", "deep")
	base := New(DefaultConfig(), nil).Run(w.Build(60_000), "gcc2k", "base")
	if deepRun.IPC() >= base.IPC() {
		t.Errorf("40-deep front end IPC %.3f >= 13-deep %.3f (branch penalty lost)", deepRun.IPC(), base.IPC())
	}
}

func TestPrefetcherHelpsBaseline(t *testing.T) {
	w, _ := trace.ByName("linpack") // stride-dominated
	off := DefaultConfig()
	off.Hierarchy.PrefetchEnabled = false
	offRun := New(off, nil).Run(w.Build(60_000), "linpack", "nopf")
	on := New(DefaultConfig(), nil).Run(w.Build(60_000), "linpack", "pf")
	if on.IPC() <= offRun.IPC() {
		t.Errorf("prefetcher off IPC %.3f >= on %.3f", offRun.IPC(), on.IPC())
	}
}

func TestStoreForwardingFasterThanCache(t *testing.T) {
	// storeupdate traffic forwards from the STQ; making forwarding
	// slower than the L2 should visibly hurt.
	gen := func() trace.Generator { return trace.NewSingleKernel("storeupdate", 40_000, 7) }
	fast := New(DefaultConfig(), nil).Run(gen(), "su", "fwd4")
	slow := DefaultConfig()
	slow.StoreForwardLat = 40
	slowRun := New(slow, nil).Run(gen(), "su", "fwd40")
	if slowRun.IPC() >= fast.IPC() {
		t.Errorf("slow forwarding IPC %.3f >= fast %.3f", slowRun.IPC(), fast.IPC())
	}
}

func TestMoreLSLanesHelpLoadHeavyCode(t *testing.T) {
	w, _ := trace.ByName("linpack")
	one := DefaultConfig()
	one.LSLanes = 1
	oneRun := New(one, nil).Run(w.Build(60_000), "linpack", "1ls")
	two := New(DefaultConfig(), nil).Run(w.Build(60_000), "linpack", "2ls")
	if oneRun.IPC() > two.IPC() {
		t.Errorf("1 LS lane IPC %.3f > 2 lanes %.3f", oneRun.IPC(), two.IPC())
	}
}

func TestSpeedupMetricPlumbing(t *testing.T) {
	a := stats.Run{Instructions: 100, Cycles: 50}
	b := stats.Run{Instructions: 100, Cycles: 100}
	if stats.Speedup(a, b) != 100 {
		t.Error("stats plumbing broken")
	}
}

func TestReplayRecoveryModel(t *testing.T) {
	// Replay-based recovery charges a per-misprediction penalty without
	// redirecting fetch. On a mispredict-heavy stream it therefore sees
	// MORE delivered (and wrong) predictions than flush-based recovery:
	// a flush lets the in-flight window retrain before the younger
	// probes fire, while replay keeps consuming stale confidence — the
	// replay-storm effect that motivates the paper's flush assumption
	// (Section III-A).
	gen := func() trace.Generator { return trace.NewSingleKernel("flaky", 60_000, 7) }
	mk := func() Engine {
		var e [core.NumComponents]int
		e[core.CompSAP] = 1024
		return NewCompositeEngine(core.NewComposite(core.CompositeConfig{Entries: e, Seed: 1}))
	}
	flushRun := New(DefaultConfig(), mk()).Run(gen(), "flaky", "flush")
	replayCfg := DefaultConfig()
	replayCfg.ReplayRecovery = true
	replayRun := New(replayCfg, mk()).Run(gen(), "flaky", "replay")
	if flushRun.VPFlushes == 0 {
		t.Skip("no mispredictions to compare recovery models on")
	}
	if replayRun.VPFlushes <= flushRun.VPFlushes {
		t.Errorf("replay saw %d mispredictions, flush %d; replay must not squash in-flight predictions",
			replayRun.VPFlushes, flushRun.VPFlushes)
	}
	if replayRun.IPC() == flushRun.IPC() {
		t.Error("recovery model had no effect at all")
	}

	// On an accurate stream the two models should be near-identical.
	genOK := func() trace.Generator { return trace.NewSingleKernel("ctxvalue", 60_000, 7) }
	mkOK := func() Engine {
		return NewCompositeEngine(core.NewComposite(core.CompositeConfig{Entries: core.HomogeneousEntries(1024), Seed: 1}))
	}
	f := New(DefaultConfig(), mkOK()).Run(genOK(), "ctx", "flush")
	r := New(replayCfg, mkOK()).Run(genOK(), "ctx", "replay")
	if d := f.IPC() - r.IPC(); d > 0.05*f.IPC() || d < -0.05*f.IPC() {
		t.Errorf("accurate stream: flush %.3f vs replay %.3f IPC differ by >5%%", f.IPC(), r.IPC())
	}
}

func TestPAQPrefetchOnMissHelps(t *testing.T) {
	// Disabling the probe-miss prefetch must not make things faster.
	gen := func() trace.Generator { return trace.NewSingleKernel("ringbuf", 100_000, 7) }
	mk := func() Engine {
		var e [core.NumComponents]int
		e[core.CompSAP] = 1024
		return NewCompositeEngine(core.NewComposite(core.CompositeConfig{Entries: e, Seed: 1}))
	}
	on := New(DefaultConfig(), mk()).Run(gen(), "rb", "pf-on")
	cfg := DefaultConfig()
	cfg.PAQPrefetchOnMiss = false
	off := New(cfg, mk()).Run(gen(), "rb", "pf-off")
	if off.IPC() > on.IPC()*1.001 {
		t.Errorf("prefetch-off IPC %.3f > prefetch-on %.3f", off.IPC(), on.IPC())
	}
}

func TestStoreConflictSuppressionCutsFlushes(t *testing.T) {
	gen := func() trace.Generator { return trace.NewSingleKernel("storeupdate", 60_000, 7) }
	mk := func() Engine {
		var e [core.NumComponents]int
		e[core.CompSAP] = 1024
		return NewCompositeEngine(core.NewComposite(core.CompositeConfig{Entries: e, Seed: 1}))
	}
	onRun := New(DefaultConfig(), mk()).Run(gen(), "su", "supp-on")
	cfg := DefaultConfig()
	cfg.SuppressStoreConflicts = false
	offRun := New(cfg, mk()).Run(gen(), "su", "supp-off")
	if onRun.VPFlushes >= offRun.VPFlushes && offRun.VPFlushes > 0 {
		t.Errorf("suppression on: %d flushes, off: %d — suppression ineffective",
			onRun.VPFlushes, offRun.VPFlushes)
	}
}

func TestPAQDepthOneThrottlesCoverage(t *testing.T) {
	gen := func() trace.Generator { return trace.NewSingleKernel("stride", 60_000, 7) }
	mk := func() Engine {
		var e [core.NumComponents]int
		e[core.CompSAP] = 1024
		return NewCompositeEngine(core.NewComposite(core.CompositeConfig{Entries: e, Seed: 1}))
	}
	deep := New(DefaultConfig(), mk()).Run(gen(), "st", "deep")
	cfg := DefaultConfig()
	cfg.PAQDepth = 1
	shallow := New(cfg, mk()).Run(gen(), "st", "shallow")
	if shallow.PredictedLoads > deep.PredictedLoads {
		t.Errorf("depth-1 PAQ delivered more (%d) than depth-24 (%d)",
			shallow.PredictedLoads, deep.PredictedLoads)
	}
}

// TestConfigEqualCoversEveryField perturbs each Config field (including
// nested struct fields and slice elements) via reflection and asserts
// configEqual notices. This is the drift guard for the hand-rolled
// comparison in pipeline.go: a new field that configEqual ignores fails
// here.
func TestConfigEqualCoversEveryField(t *testing.T) {
	base := DefaultConfig()
	if !configEqual(base, DefaultConfig()) {
		t.Fatal("default configs compare unequal")
	}

	var perturb func(v reflect.Value, path string)
	perturb = func(v reflect.Value, path string) {
		switch v.Kind() {
		case reflect.Struct:
			for i := 0; i < v.NumField(); i++ {
				perturb(v.Field(i), path+"."+v.Type().Field(i).Name)
			}
		case reflect.Slice:
			for i := 0; i < v.Len(); i++ {
				perturb(v.Index(i), fmt.Sprintf("%s[%d]", path, i))
			}
		case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
			old := v.Int()
			v.SetInt(old + 1)
			defer v.SetInt(old)
		case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
			old := v.Uint()
			v.SetUint(old + 1)
			defer v.SetUint(old)
		case reflect.Bool:
			old := v.Bool()
			v.SetBool(!old)
			defer v.SetBool(old)
		case reflect.String:
			old := v.String()
			v.SetString(old + "x")
			defer v.SetString(old)
		case reflect.Float32, reflect.Float64:
			old := v.Float()
			v.SetFloat(old + 1)
			defer v.SetFloat(old)
		default:
			t.Fatalf("field %s has unsupported kind %s; teach the test and configEqual about it", path, v.Kind())
			return
		}
		if v.Kind() != reflect.Struct && v.Kind() != reflect.Slice {
			if configEqual(base, DefaultConfig()) {
				t.Errorf("configEqual missed a change to %s", path)
			}
		}
	}
	perturb(reflect.ValueOf(&base).Elem(), "Config")
}
