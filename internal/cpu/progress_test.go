package cpu

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/trace"
)

func TestProgressSnapshotMatchesFinalRun(t *testing.T) {
	w, _ := trace.ByName("gcc2k")
	c := core.NewComposite(core.CompositeConfig{
		Entries: core.HomogeneousEntries(256), Seed: 1, AM: core.NewMAMEpoch(10_000),
	})
	eng := NewCompositeEngine(c)
	p := New(DefaultConfig(), eng)
	var pr Progress
	p.SetProgress(&pr, 1000)
	run := p.Run(w.Build(testInsts), "gcc2k", "probe")

	s, ok := pr.Load()
	if !ok {
		t.Fatal("no snapshot published")
	}
	// The final publication covers the whole run.
	if s.Instructions != run.Instructions {
		t.Errorf("snapshot instructions = %d, run = %d", s.Instructions, run.Instructions)
	}
	if s.Cycles != run.Cycles {
		t.Errorf("snapshot cycles = %d, run = %d", s.Cycles, run.Cycles)
	}
	if s.Loads != run.Loads || s.PredictedLoads != run.PredictedLoads ||
		s.CorrectPredicted != run.CorrectPredicted || s.VPFlushes != run.VPFlushes {
		t.Errorf("snapshot counters %+v do not match run %+v", s, run)
	}
	st := c.Stats()
	if s.Used != st.UsedBy || s.Correct != st.CorrectBy || s.Incorrect != st.IncorrectBy {
		t.Errorf("snapshot components %+v do not match composite stats", s)
	}
	if s.UpdatedNano < s.StartedNano || s.StartedNano == 0 {
		t.Errorf("bad timestamps: started %d updated %d", s.StartedNano, s.UpdatedNano)
	}
	if s.SimMIPS() <= 0 {
		t.Errorf("SimMIPS = %g, want > 0", s.SimMIPS())
	}
}

// samplingGen wraps a generator and reads the progress slot on every
// Next call — the deterministic equivalent of a concurrent observer
// (the slot is also read concurrently in TestProgressSeqlockConsistency).
type samplingGen struct {
	trace.Generator
	pr     *Progress
	total  uint64
	midRun bool
}

func (g *samplingGen) Next(in *trace.Inst) bool {
	if s, ok := g.pr.Load(); ok && s.Instructions > 0 && s.Instructions < g.total {
		g.midRun = true
	}
	return g.Generator.Next(in)
}

func TestProgressPublishesMidRun(t *testing.T) {
	w, _ := trace.ByName("gcc2k")
	p := New(DefaultConfig(), nil)
	var pr Progress
	p.SetProgress(&pr, 1000)

	gen := &samplingGen{Generator: w.Build(testInsts), pr: &pr, total: testInsts}
	p.Run(gen, "gcc2k", "probe")
	if !gen.midRun {
		t.Error("no mid-run snapshot observed (cadence 1000 over 60k instructions)")
	}
}

func TestProgressSeqlockConsistency(t *testing.T) {
	// Hammer one slot from a writer and several readers; every
	// successful Load must be internally consistent (the writer
	// publishes snapshots whose fields are all equal to the sequence
	// number, so any mix of two publications is detectable).
	var pr Progress
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s, ok := pr.Load()
				if !ok {
					continue
				}
				if s.Cycles != s.Instructions || s.Loads != s.Instructions ||
					s.Used[0] != s.Instructions || s.MPKP[3] != float64(s.Instructions) {
					panic("torn snapshot")
				}
			}
		}()
	}
	for i := uint64(1); i <= 200_000; i++ {
		s := ProgressSnapshot{Instructions: i, Cycles: i, Loads: i}
		s.Used[0] = i
		s.MPKP[3] = float64(i)
		pr.publish(&s)
	}
	close(stop)
	wg.Wait()
}

func TestProgressClear(t *testing.T) {
	var pr Progress
	pr.publish(&ProgressSnapshot{Instructions: 42})
	if _, ok := pr.Load(); !ok {
		t.Fatal("published snapshot not loadable")
	}
	pr.Clear()
	if s, ok := pr.Load(); ok {
		t.Fatalf("cleared slot still loads %+v", s)
	}
	pr.publish(&ProgressSnapshot{Instructions: 7})
	if s, ok := pr.Load(); !ok || s.Instructions != 7 {
		t.Fatalf("slot unusable after clear: %+v ok=%v", s, ok)
	}
}

func TestResetDetachesProgress(t *testing.T) {
	w, _ := trace.ByName("gcc2k")
	p := New(DefaultConfig(), nil)
	var pr Progress
	p.SetProgress(&pr, 1000)
	p.Run(w.Build(5_000), "gcc2k", "probe")
	s1, _ := pr.Load()

	p.Reset(DefaultConfig(), nil)
	p.Run(w.Build(5_000), "gcc2k", "probe")
	s2, ok := pr.Load()
	if !ok || s2 != s1 {
		t.Error("reset pipeline still published into the detached slot")
	}
}

// TestProgressProbeZeroAlloc is the hard form of the bench gate: a
// steady-state run with the probe attached and a tight publication
// cadence must allocate nothing, same as a run without it.
func TestProgressProbeZeroAlloc(t *testing.T) {
	w, _ := trace.ByName("gcc2k")
	const n = 20_000
	rep := trace.Record(w.Build(n), 0)
	c := core.NewComposite(core.CompositeConfig{
		Entries: core.HomogeneousEntries(256), Seed: 1, AM: core.NewMAMEpoch(5_000),
	})
	eng := NewCompositeEngine(c)
	cfg := DefaultConfig()
	p := Acquire(cfg, eng)
	defer Release(p)
	var pr Progress

	run := func() {
		rep.Rewind()
		c.ResetState()
		p.Reset(cfg, eng)
		p.SetProgress(&pr, 512)
		if r := p.Run(rep, "gcc2k", "bench"); r.Instructions != n {
			t.Fatalf("short run: %+v", r)
		}
	}
	run() // warm the pooled pipeline's simulated memory image
	if allocs := testing.AllocsPerRun(3, run); allocs != 0 {
		t.Fatalf("probed steady-state run allocates %g objects/run, want 0", allocs)
	}
}
