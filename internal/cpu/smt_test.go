package cpu

import (
	"testing"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/trace"
)

func smtEngine(seed uint64) Engine {
	return NewCompositeEngine(core.NewComposite(core.CompositeConfig{
		Entries: core.HomogeneousEntries(256),
		Seed:    seed,
		AM:      core.NewPCAM(64),
	}))
}

func smtConfig(contexts, quantum int) Config {
	cfg := DefaultConfig()
	cfg.Contexts = contexts
	cfg.SMTQuantum = quantum
	return cfg
}

// smtGens builds one independently-seeded stream per context of the
// named workloads (workloads[i] runs on context i with salt i).
func smtGens(t *testing.T, workloads []string, insts uint64) []trace.Generator {
	t.Helper()
	gens := make([]trace.Generator, len(workloads))
	for i, name := range workloads {
		g, ok := trace.BuildStream(trace.StreamName(name, i), insts)
		if !ok {
			t.Fatalf("unknown workload %q", name)
		}
		gens[i] = g
	}
	return gens
}

// TestSMT1MatchesSingle pins the N=1 interleaved path to the plain
// single-context path: a 1-context RunSMT must produce exactly the run
// Run produces, merged and per-context, for both the baseline and a
// composite engine.
func TestSMT1MatchesSingle(t *testing.T) {
	const insts = 20_000
	for _, eng := range []struct {
		name string
		mk   func(seed uint64) Engine
	}{
		{"baseline", func(uint64) Engine { return nil }},
		{"composite", smtEngine},
	} {
		for _, name := range []string{"gcc2k", "mcf"} {
			w, _ := trace.ByName(name)
			want := New(DefaultConfig(), eng.mk(1)).Run(w.Build(insts), name, "cfg")

			p := New(smtConfig(1, 0), eng.mk(1))
			got := p.RunSMT([]trace.Generator{w.Build(insts)}, []string{name}, name, "cfg")
			if got != want {
				t.Fatalf("%s/%s: 1-context RunSMT diverged from Run\n got: %+v\nwant: %+v",
					eng.name, name, got, want)
			}
			if pc := p.ContextRun(0); pc != want {
				t.Fatalf("%s/%s: per-context run diverged\n got: %+v\nwant: %+v",
					eng.name, name, pc, want)
			}
		}
	}
}

// TestSMTDeterministic pins a 4-context interleaved run: two fresh
// simulations of the same spec must agree bit-for-bit, per context and
// merged, for both interleave quanta.
func TestSMTDeterministic(t *testing.T) {
	const insts = 10_000
	workloads := []string{"gcc2k", "mcf", "linpack", "gcc2k"}
	for _, quantum := range []int{0, 64} {
		run := func() (stats.Run, [4]stats.Run) {
			p := New(smtConfig(4, quantum), smtEngine(1))
			merged := p.RunSMT(smtGens(t, workloads, insts), workloads, "smt4", "cfg")
			var per [4]stats.Run
			for i := range per {
				per[i] = p.ContextRun(i)
			}
			return merged, per
		}
		m1, p1 := run()
		m2, p2 := run()
		if m1 != m2 {
			t.Fatalf("quantum %d: merged runs diverged\n got: %+v\nwant: %+v", quantum, m2, m1)
		}
		if p1 != p2 {
			t.Fatalf("quantum %d: per-context runs diverged\n got: %+v\nwant: %+v", quantum, p2, p1)
		}
		var sum uint64
		for _, r := range p1 {
			sum += r.Instructions
			if r.Instructions != insts {
				t.Fatalf("quantum %d: context ran %d instructions, want %d", quantum, r.Instructions, insts)
			}
		}
		if m1.Instructions != sum {
			t.Fatalf("quantum %d: merged instructions %d != per-context sum %d", quantum, m1.Instructions, sum)
		}
	}
}

// TestSMTReplaysFromArtifacts is the recorded-trace determinism pin: a
// 4-context run driven by recorded artifact cursors (the path sweep
// workers take) must be bit-identical to the same run driven by live
// generators, across pooled reuse.
func TestSMTReplaysFromArtifacts(t *testing.T) {
	const insts = 10_000
	workloads := []string{"mcf", "mcf", "gzip", "v8"}
	cfg := smtConfig(4, 0)

	live := New(cfg, smtEngine(7)).RunSMT(smtGens(t, workloads, insts), workloads, "smt4", "cfg")

	store, err := trace.NewArtifactStore(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	p := Acquire(cfg, smtEngine(7))
	defer Release(p)
	for round := 0; round < 2; round++ {
		gens := make([]trace.Generator, len(workloads))
		for i, name := range workloads {
			cur, err := store.Cursor(trace.StreamName(name, i), insts)
			if err != nil {
				t.Fatal(err)
			}
			gens[i] = cur
		}
		p.Reset(cfg, smtEngine(7))
		got := p.RunSMT(gens, workloads, "smt4", "cfg")
		if got != live {
			t.Fatalf("round %d: artifact-replayed SMT run diverged from live generation\n got: %+v\nwant: %+v",
				round, got, live)
		}
		if c := p.resourceClobbers(); c != 0 {
			t.Fatalf("round %d: %d cycle-ring clobbers", round, c)
		}
	}
}

// TestSMTSaltedStreamsDiverge checks that two contexts running "the
// same" workload do not execute lockstep-identical streams: the salt-1
// stream must differ from the canonical stream.
func TestSMTSaltedStreamsDiverge(t *testing.T) {
	g0, _ := trace.BuildStream("gcc2k", 2000)
	g1, ok := trace.BuildStream(trace.StreamName("gcc2k", 1), 2000)
	if !ok {
		t.Fatal("salted stream did not build")
	}
	var a, b trace.Inst
	same := true
	for g0.Next(&a) && g1.Next(&b) {
		if a != b {
			same = false
			break
		}
	}
	if same {
		t.Fatal("salt-1 stream is identical to the canonical stream")
	}
	if name, salt := trace.SplitStreamName("gcc2k#3"); name != "gcc2k" || salt != 3 {
		t.Fatalf("SplitStreamName = %q,%d", name, salt)
	}
}

// TestSMTSharesPredictorAndCaches is the structural pin of the split:
// contexts must observe each other through the shared tables. A
// 2-context run of the same workload must not behave as two isolated
// single-context runs — the shared engine's probe stream interleaves
// both contexts, and the shared caches see both working sets.
func TestSMTSharesPredictorAndCaches(t *testing.T) {
	const insts = 20_000
	w, _ := trace.ByName("mcf")

	solo := New(DefaultConfig(), smtEngine(1)).Run(w.Build(insts), "mcf", "cfg")

	p := New(smtConfig(2, 0), smtEngine(1))
	p.RunSMT(smtGens(t, []string{"mcf", "mcf"}, insts), []string{"mcf", "mcf"}, "smt2", "cfg")
	ctx0 := p.ContextRun(0)

	// Context 0 runs the identical canonical stream the solo run did; if
	// the contexts were fully isolated its counters would match the solo
	// run exactly. Sharing must perturb them.
	if ctx0.Cycles == solo.Cycles && ctx0.CorrectPredicted == solo.CorrectPredicted {
		t.Fatalf("context 0 under SMT is bit-identical to the solo run — contexts are not sharing state: %+v", ctx0)
	}

	// And the shared L2 must have seen more demand than either context
	// alone would generate: both contexts' tagged working sets flow
	// through one hierarchy.
	st := p.Hierarchy().L2.Stats()
	if st.Hits+st.Misses == 0 {
		t.Fatal("shared L2 saw no traffic")
	}
}

// TestSMTProgressRows checks per-context progress rows publish each
// context's own counters alongside the machine-wide aggregate slot.
func TestSMTProgressRows(t *testing.T) {
	const insts = 20_000
	workloads := []string{"gcc2k", "mcf"}
	p := New(smtConfig(2, 0), smtEngine(1))
	var agg Progress
	rows := [2]Progress{}
	p.SetProgress(&agg, 4096)
	p.SetProgressRows([]*Progress{&rows[0], &rows[1]}, 4096)
	merged := p.RunSMT(smtGens(t, workloads, insts), workloads, "smt2", "cfg")

	as, ok := agg.Load()
	if !ok {
		t.Fatal("aggregate slot never published")
	}
	if as.Instructions != merged.Instructions {
		t.Fatalf("aggregate snapshot %d instructions, merged run %d", as.Instructions, merged.Instructions)
	}
	for i := range rows {
		rs, ok := rows[i].Load()
		if !ok {
			t.Fatalf("context %d row never published", i)
		}
		want := p.ContextRun(i)
		if rs.Instructions != want.Instructions || rs.Loads != want.Loads {
			t.Fatalf("context %d row %+v disagrees with its run %+v", i, rs, want)
		}
	}
}

// TestSMTPooledResetMatchesFresh extends the pooling guarantee to the
// interleaved path: Reset on a pooled multi-context pipeline must
// reproduce a fresh pipeline's run bit-for-bit.
func TestSMTPooledResetMatchesFresh(t *testing.T) {
	const insts = 10_000
	workloads := []string{"gcc2k", "linpack", "mcf", "v8"}
	cfg := smtConfig(4, 64)
	fresh := New(cfg, smtEngine(3)).RunSMT(smtGens(t, workloads, insts), workloads, "smt4", "cfg")

	p := Acquire(cfg, smtEngine(3))
	defer Release(p)
	for i := 0; i < 3; i++ {
		p.Reset(cfg, smtEngine(3))
		got := p.RunSMT(smtGens(t, workloads, insts), workloads, "smt4", "cfg")
		if got != fresh {
			t.Fatalf("iteration %d diverged from fresh run\n got: %+v\nwant: %+v", i, got, fresh)
		}
	}
}

// TestSMTSteadyStateZeroAlloc is the hard allocation gate for the
// interleaved hot path (BenchmarkPipelineSMT4 is the benchgate-side
// twin): after warmup, a pooled 4-context run from recorded cursors
// must allocate nothing.
func TestSMTSteadyStateZeroAlloc(t *testing.T) {
	const insts = 5_000
	workloads := []string{"gcc2k", "gcc2k", "mcf", "linpack"}
	cfg := smtConfig(4, 0)
	reps := make([]*trace.Replay, len(workloads))
	for i, name := range workloads {
		g, _ := trace.BuildStream(trace.StreamName(name, i), insts)
		reps[i] = trace.Record(g, 0)
	}
	comp := core.NewComposite(core.CompositeConfig{
		Entries: core.HomogeneousEntries(256), Seed: 1, AM: core.NewPCAM(64),
	})
	eng := NewCompositeEngine(comp)
	p := Acquire(cfg, eng)
	defer Release(p)
	gens := make([]trace.Generator, len(reps))
	iter := func() {
		for i, r := range reps {
			r.Rewind()
			gens[i] = r
		}
		comp.ResetState()
		p.Reset(cfg, eng)
		if r := p.RunSMT(gens, workloads, "smt4", "bench"); r.Instructions != insts*uint64(len(workloads)) {
			t.Fatalf("short run: %+v", r)
		}
	}
	iter() // warmup: clone the four memory images outside the measurement
	if allocs := testing.AllocsPerRun(3, iter); allocs != 0 {
		t.Fatalf("steady-state SMT run allocated %.1f times per run, want 0", allocs)
	}
}
