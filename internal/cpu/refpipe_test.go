package cpu

import (
	"repro/internal/branch"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/memdep"
	"repro/internal/stats"
	"repro/internal/trace"
)

// refPipeline is a frozen copy of the map-based pipeline this package
// shipped before the allocation-free refactor. It is the oracle for the
// differential golden test (golden_test.go): the ring-buffer pipeline
// must produce bit-identical stats.Run results. Apart from renames, the
// only delta from the historical code is the Engine record type (the
// `rec any` boxing became a uint64 handle — pure plumbing that cannot
// affect results, since records flow opaquely from Probe to Train in
// the same order in both implementations).
// refRingSize is the historical fixed timing-ring size. The production
// pipeline now derives a much smaller, cache-resident ring from the
// window configuration (see timingRingSize); the golden differential
// proves the two sizes indistinguishable.
const refRingSize = 8192

type refPipeline struct {
	cfg    Config
	hier   *mem.Hierarchy
	tage   *branch.TAGE
	ittage *branch.ITTAGE
	ras    *branch.RAS
	mdp    *memdep.Predictor
	engine Engine

	hist     branch.History
	loadPath uint64

	simMem *mem.Backing

	fetchCycle uint64
	fetchUsed  int
	redirectC  uint64

	commitCycle uint64
	commitUsed  int

	regReady [trace.NumRegs]uint64

	ring      [refRingSize]slotTiming
	loadRing  []loadStoreTiming
	storeRing []loadStoreTiming
	nLoads    uint64
	nStores   uint64

	laneUse map[uint64]int
	lsUse   map[uint64]int
	paqUse  map[uint64]int

	pending    trainQueue
	paqQueue   []uint64
	paqHead    int
	inflightPC map[uint64]int
	lastStore  map[uint64]storeRecord
	lineFill   map[uint64]uint64

	instretBatch uint64
	run          stats.Run
}

func newRefPipeline(cfg Config, engine Engine) *refPipeline {
	return &refPipeline{
		cfg:        cfg,
		hier:       mem.NewHierarchy(cfg.Hierarchy),
		tage:       branch.NewTAGE(cfg.TAGE),
		ittage:     branch.NewITTAGE(cfg.ITTAGE),
		ras:        branch.NewRAS(cfg.RASSize),
		mdp:        memdep.New(cfg.MemDep),
		engine:     engine,
		loadRing:   make([]loadStoreTiming, cfg.LDQ+1),
		storeRing:  make([]loadStoreTiming, cfg.STQ+1),
		laneUse:    make(map[uint64]int),
		lsUse:      make(map[uint64]int),
		paqUse:     make(map[uint64]int),
		inflightPC: make(map[uint64]int),
		lastStore:  make(map[uint64]storeRecord),
		lineFill:   make(map[uint64]uint64),
	}
}

func (p *refPipeline) Run(gen trace.Generator, workload, config string) stats.Run {
	p.simMem = gen.Mem().Clone()

	p.run = stats.Run{Workload: workload, Config: config}
	var in trace.Inst
	var seq uint64
	var lastCommit uint64
	for gen.Next(&in) {
		lastCommit = p.step(seq, &in)
		seq++
		if seq%4096 == 0 {
			p.prune()
		}
	}
	p.run.Instructions = seq
	p.run.Cycles = lastCommit
	if p.engine != nil && p.instretBatch > 0 {
		p.engine.Instret(p.instretBatch)
		p.instretBatch = 0
	}
	return p.run
}

func (p *refPipeline) step(seq uint64, in *trace.Inst) uint64 {
	var windowReady uint64
	if seq >= uint64(p.cfg.ROB) {
		if c := p.ringAt(seq - uint64(p.cfg.ROB)); c != nil && c.commitC > windowReady {
			windowReady = c.commitC
		}
	}
	if seq >= uint64(p.cfg.IQ) {
		if c := p.ringAt(seq - uint64(p.cfg.IQ)); c != nil && c.issueC > windowReady {
			windowReady = c.issueC
		}
	}
	switch in.Op {
	case trace.OpLoad:
		if p.nLoads >= uint64(p.cfg.LDQ) {
			old := p.loadRing[(p.nLoads-uint64(p.cfg.LDQ))%uint64(len(p.loadRing))]
			if old.commitC > windowReady {
				windowReady = old.commitC
			}
		}
	case trace.OpStore:
		if p.nStores >= uint64(p.cfg.STQ) {
			old := p.storeRing[(p.nStores-uint64(p.cfg.STQ))%uint64(len(p.storeRing))]
			if old.commitC > windowReady {
				windowReady = old.commitC
			}
		}
	}
	var fetchFloor uint64
	if windowReady > uint64(p.cfg.FetchToExec) {
		fetchFloor = windowReady - uint64(p.cfg.FetchToExec)
	}

	fc := p.fetch(in.PC, fetchFloor)

	dC := fc + uint64(p.cfg.FetchToExec)
	if windowReady > dC {
		dC = windowReady
	}

	brMispred := false
	if in.IsBranch() {
		brMispred = p.predictBranch(in)
	}

	var (
		rec       uint64
		pred      core.Prediction
		delivered bool
		specOK    bool
		specValue uint64
		specReady uint64
		probeC    uint64
		probe     core.Probe
	)
	isPredictableLoad := in.Op == trace.OpLoad && !in.Flags.NoPredict() && p.engine != nil
	if in.Op == trace.OpLoad {
		p.run.Loads++
	}
	if isPredictableLoad {
		p.applyTrains(fc)
		probe = core.Probe{
			PC:         in.PC,
			BranchHist: p.hist.Global,
			LoadPath:   p.loadPath,
			Inflight:   p.inflightPC[in.PC],
		}
		rec, pred, delivered = p.engine.Probe(probe)
		p.inflightPC[in.PC]++
		probeC = fc + 2
		if delivered {
			switch pred.Kind {
			case core.KindValue:
				specOK = true
				specValue = pred.Value
				specReady = dC
				probeC = fc
			case core.KindAddress:
				conflict := false
				if p.cfg.SuppressStoreConflicts {
					_, conflict = p.mdp.LoadDependence(in.PC)
				}
				if !conflict && p.paqAdmit(fc) {
					probeC = p.allocLSLane(fc + 2)
					lat, hit := p.hier.ProbeD(pred.Addr)
					p.paqRecord(probeC + uint64(lat))
					if hit {
						specOK = true
						specValue = p.probeRead(pred.Addr, pred.Size, seq, probeC)
						specReady = probeC + uint64(lat)
					} else if p.cfg.PAQPrefetchOnMiss {
						fillLat := p.hier.PrefetchAccess(pred.Addr)
						line := pred.Addr >> 6
						done := probeC + uint64(fillLat)
						if cur, ok := p.lineFill[line]; !ok || done < cur {
							p.lineFill[line] = done
						}
					}
				}
			}
		}
	}
	if in.Op == trace.OpLoad {
		p.loadPath = (p.loadPath << 6) ^ ((in.PC >> 2) & 0xFFF)
	}

	rdy := dC
	if in.Src1 != 0 && p.regReady[in.Src1] > rdy {
		rdy = p.regReady[in.Src1]
	}
	if in.Src2 != 0 && p.regReady[in.Src2] > rdy {
		rdy = p.regReady[in.Src2]
	}

	if in.Op == trace.OpLoad {
		if depSeq, ok := p.mdp.LoadDependence(in.PC); ok {
			if c := p.ringAt(depSeq); c != nil && c.execDone > rdy {
				rdy = c.execDone
			}
		}
	}
	if in.Op == trace.OpStore {
		p.mdp.StoreFetched(in.PC, seq)
	}

	isLS := in.Op == trace.OpLoad || in.Op == trace.OpStore
	issueC := p.allocIssue(rdy, isLS)

	var execDone uint64
	flush := false
	switch in.Op {
	case trace.OpLoad:
		execDone, flush = p.executeLoad(seq, in, issueC)
	case trace.OpStore:
		p.executeStore(seq, in, issueC)
		execDone = issueC + 1
	default:
		lat := uint64(in.Lat)
		if lat == 0 {
			lat = 1
		}
		execDone = issueC + lat
	}

	vpCorrect := false
	if delivered {
		vpCorrect = specOK && specValue == in.Value
		if specOK {
			p.run.PredictedLoads++
			if vpCorrect {
				p.run.CorrectPredicted++
			}
		}
		if specOK && !vpCorrect {
			p.run.VPFlushes++
			if p.cfg.ReplayRecovery {
				execDone += uint64(p.cfg.ReplayPenalty)
			} else {
				flush = true
			}
		}
	}

	if in.Dst != 0 {
		ready := execDone
		if vpCorrect && specReady < ready {
			ready = specReady
		}
		p.regReady[in.Dst] = ready
	}

	if brMispred {
		p.run.BranchFlushes++
		flush = true
	}
	if flush && execDone+1 > p.redirectC {
		p.redirectC = execDone + 1
	}

	if isPredictableLoad {
		p.pending.push(pendingTrain{
			trainC: execDone,
			outcome: core.Outcome{
				PC:         in.PC,
				BranchHist: probe.BranchHist,
				LoadPath:   probe.LoadPath,
				Addr:       in.Addr,
				Size:       in.Size,
				Value:      in.Value,
			},
			rec:     rec,
			probeC:  probeC,
			specSeq: seq,
		})
	}

	cc := execDone + 1
	if cc < p.commitCycle {
		cc = p.commitCycle
	}
	if cc == p.commitCycle && p.commitUsed >= p.cfg.CommitWidth {
		cc++
	}
	if cc != p.commitCycle {
		p.commitCycle = cc
		p.commitUsed = 0
	}
	p.commitUsed++

	p.ring[seq%refRingSize] = slotTiming{seq: seq, issueC: issueC, execDone: execDone, commitC: cc}
	switch in.Op {
	case trace.OpLoad:
		p.loadRing[p.nLoads%uint64(len(p.loadRing))] = loadStoreTiming{seq: seq, commitC: cc}
		p.nLoads++
	case trace.OpStore:
		p.storeRing[p.nStores%uint64(len(p.storeRing))] = loadStoreTiming{seq: seq, commitC: cc}
		p.nStores++
	}

	if p.engine != nil {
		p.instretBatch++
		if p.instretBatch >= 4096 {
			p.engine.Instret(p.instretBatch)
			p.instretBatch = 0
		}
	}
	return cc
}

func (p *refPipeline) fetch(pc uint64, floor uint64) uint64 {
	start := p.fetchCycle
	if p.redirectC > start {
		start = p.redirectC
	}
	if floor > start {
		start = floor
	}
	iLat := p.hier.InstAccess(pc)
	if base := p.cfg.Hierarchy.L1I.Latency; iLat > base {
		start += uint64(iLat - base)
	}
	if start != p.fetchCycle {
		p.fetchCycle = start
		p.fetchUsed = 0
	}
	if p.fetchUsed >= p.cfg.FetchWidth {
		p.fetchCycle++
		p.fetchUsed = 0
	}
	p.fetchUsed++
	return p.fetchCycle
}

func (p *refPipeline) executeLoad(seq uint64, in *trace.Inst, issueC uint64) (execDone uint64, flush bool) {
	word := in.Addr >> 3
	ls, haveStore := p.lastStore[word]
	if haveStore && ls.seq < seq {
		if issueC < ls.execDone {
			p.run.MemOrderFlushes++
			p.mdp.Violation(in.PC, ls.pc)
			execDone = ls.execDone + uint64(p.cfg.StoreForwardLat)
			return execDone, true
		}
		if recent := p.nStores > 0 && seq-ls.seq <= uint64(p.cfg.STQ)*4; recent {
			return issueC + uint64(p.cfg.StoreForwardLat), false
		}
	}
	lat := p.hier.DataAccess(in.PC, in.Addr)
	done := issueC + uint64(lat)
	if fd, ok := p.lineFill[in.Addr>>6]; ok {
		earliest := fd
		if hitDone := issueC + uint64(p.cfg.Hierarchy.L1D.Latency); hitDone > earliest {
			earliest = hitDone
		}
		if earliest < done {
			done = earliest
		}
	}
	return done, false
}

func (p *refPipeline) executeStore(seq uint64, in *trace.Inst, issueC uint64) {
	word := in.Addr >> 3
	p.lastStore[word] = storeRecord{
		seq:      seq,
		pc:       in.PC,
		execDone: issueC + 1,
		prevWord: p.simMem.Read(in.Addr&^uint64(7), 8),
	}
	p.simMem.Write(in.Addr, in.Size, in.Value)
	p.hier.DataAccess(in.PC, in.Addr)
}

func (p *refPipeline) probeRead(addr uint64, size uint8, loadSeq, probeC uint64) uint64 {
	word := addr >> 3
	if ls, ok := p.lastStore[word]; ok && ls.seq < loadSeq && ls.execDone > probeC {
		off := addr & 7
		if size == 0 || size > 8 {
			size = 8
		}
		if off+uint64(size) <= 8 {
			v := ls.prevWord >> (off * 8)
			if size < 8 {
				v &= (uint64(1) << (size * 8)) - 1
			}
			return v
		}
	}
	return p.simMem.Read(addr, size)
}

func (p *refPipeline) predictBranch(in *trace.Inst) bool {
	mispred := false
	switch in.Op {
	case trace.OpBranch:
		predTaken := p.tage.Predict(in.PC, p.hist.Global)
		p.tage.Update(in.PC, p.hist.Global, in.Taken)
		mispred = predTaken != in.Taken
		p.hist.Update(in.PC, in.Taken)
	case trace.OpJump:
		p.hist.Update(in.PC, true)
	case trace.OpCall:
		p.ras.Push(in.PC + 4)
		p.hist.Update(in.PC, true)
	case trace.OpRet:
		mispred = p.ras.Pop() != in.Target
		p.hist.Update(in.PC, true)
	case trace.OpIndirect:
		predTarget := p.ittage.Predict(in.PC, p.hist.Global)
		p.ittage.Update(in.PC, p.hist.Global, in.Target)
		mispred = predTarget != in.Target
		p.hist.Update(in.PC, true)
	}
	return mispred
}

func (p *refPipeline) applyTrains(c uint64) {
	for {
		t, ok := p.pending.peek()
		if !ok || t.trainC > c {
			return
		}
		p.trainOne(p.pending.pop())
	}
}

func (p *refPipeline) trainOne(t pendingTrain) {
	if n := p.inflightPC[t.outcome.PC]; n <= 1 {
		delete(p.inflightPC, t.outcome.PC)
	} else {
		p.inflightPC[t.outcome.PC] = n - 1
	}
	resolve := func(addr uint64, size uint8) (uint64, bool) {
		if !p.hier.L1D.Peek(addr) {
			return 0, false
		}
		return p.probeRead(addr, size, t.specSeq, t.probeC), true
	}
	p.engine.Train(t.outcome, t.rec, resolve)
}

func (p *refPipeline) paqAdmit(fc uint64) bool {
	if p.cfg.PAQDepth <= 0 {
		return true
	}
	for p.paqHead < len(p.paqQueue) && p.paqQueue[p.paqHead] <= fc {
		p.paqHead++
	}
	if p.paqHead == len(p.paqQueue) {
		p.paqQueue = p.paqQueue[:0]
		p.paqHead = 0
	}
	return len(p.paqQueue)-p.paqHead < p.cfg.PAQDepth
}

func (p *refPipeline) paqRecord(done uint64) {
	if p.cfg.PAQDepth <= 0 {
		return
	}
	if n := len(p.paqQueue); n > p.paqHead && p.paqQueue[n-1] > done {
		done = p.paqQueue[n-1]
	}
	p.paqQueue = append(p.paqQueue, done)
}

func (p *refPipeline) allocIssue(start uint64, isLS bool) uint64 {
	for c := start; ; c++ {
		if p.laneUse[c] >= p.cfg.IssueWidth {
			continue
		}
		if isLS && p.lsUse[c] >= p.cfg.LSLanes {
			continue
		}
		p.laneUse[c]++
		if isLS {
			p.lsUse[c]++
		}
		return c
	}
}

func (p *refPipeline) allocLSLane(start uint64) uint64 {
	for c := start; ; c++ {
		if p.paqUse[c] < p.cfg.LSLanes {
			p.paqUse[c]++
			return c
		}
	}
}

func (p *refPipeline) ringAt(seq uint64) *slotTiming {
	s := &p.ring[seq%refRingSize]
	if s.seq != seq {
		return nil
	}
	return s
}

func (p *refPipeline) prune() {
	limit := p.fetchCycle
	for c := range p.laneUse {
		if c < limit {
			delete(p.laneUse, c)
		}
	}
	for c := range p.lsUse {
		if c < limit {
			delete(p.lsUse, c)
		}
	}
	for c := range p.paqUse {
		if c < limit {
			delete(p.paqUse, c)
		}
	}
	for line, fd := range p.lineFill {
		if fd < limit {
			delete(p.lineFill, line)
		}
	}
}
