package store

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// RunRecord is one finished simulation retained by the warehouse: the
// canonical spec hash it is interchangeable under, attribution and
// trace linkage, and the result payload. The payload is kept as raw
// JSON so the store does not depend on the server's response schema —
// callers that need fields (diffing, filtering beyond the indexed
// columns) decode it themselves.
type RunRecord struct {
	SpecHash  string          `json:"spec_hash"`
	Tenant    string          `json:"tenant,omitempty"`
	Workload  string          `json:"workload,omitempty"`
	Predictor string          `json:"predictor,omitempty"`
	TraceID   string          `json:"trace_id,omitempty"`
	Time      time.Time       `json:"time"`
	Result    json.RawMessage `json:"result"`

	// Contexts is the simulated hardware context count; 0 on
	// single-context records (including every record written before the
	// column existed, which decode with the same meaning).
	Contexts int `json:"contexts,omitempty"`
}

// Warehouse retains finished run results beyond any in-memory cache,
// keyed by canonical spec hash, backed by a CRC-framed append-only
// file. One record per hash is live (the latest); opening compacts the
// file when superseded records dominate. Safe for concurrent use.
type Warehouse struct {
	mu    sync.Mutex
	f     *os.File
	bw    *bufio.Writer
	path  string
	index map[string]RunRecord
	order []string // insertion order of live hashes, oldest first
	dead  int      // superseded records currently on disk
}

const warehouseFile = "warehouse.log"

// OpenWarehouse opens (creating if needed) the warehouse in dir and
// loads its index. A torn tail record from a crashed append is
// truncated away. When more than half the on-disk records are
// superseded duplicates, the file is rewritten compacted.
func OpenWarehouse(dir string) (*Warehouse, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating warehouse dir: %w", err)
	}
	path := filepath.Join(dir, warehouseFile)
	w := &Warehouse{path: path, index: make(map[string]RunRecord)}
	total, good, err := w.load()
	if err != nil {
		return nil, err
	}
	if _, statErr := os.Stat(path); statErr == nil {
		if err := truncateTo(path, good); err != nil {
			return nil, err
		}
	}
	if w.dead = total - len(w.index); w.dead > len(w.index) {
		if err := w.compact(); err != nil {
			return nil, err
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: opening warehouse: %w", err)
	}
	w.f = f
	w.bw = bufio.NewWriterSize(f, 64<<10)
	return w, nil
}

// load scans the file into the index, returning the record count and
// the offset of the end of the last intact record.
func (w *Warehouse) load() (total int, good int64, err error) {
	f, err := os.Open(w.path)
	if os.IsNotExist(err) {
		return 0, 0, nil
	}
	if err != nil {
		return 0, 0, fmt.Errorf("store: opening warehouse: %w", err)
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 64<<10)
	var hdr [frameHeader]byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			break
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if n == 0 || n > maxRecordBytes {
			break
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			break
		}
		if crc32.Checksum(payload, crcTable) != sum {
			break
		}
		var rec RunRecord
		if err := json.Unmarshal(payload, &rec); err != nil || rec.SpecHash == "" {
			break
		}
		w.insert(rec)
		total++
		good += frameHeader + int64(n)
	}
	return total, good, nil
}

// insert places rec in the index, tracking insertion order.
func (w *Warehouse) insert(rec RunRecord) {
	if _, ok := w.index[rec.SpecHash]; !ok {
		w.order = append(w.order, rec.SpecHash)
	}
	w.index[rec.SpecHash] = rec
}

// compact rewrites the file with only the live records. Crash-safe:
// the rewrite goes to a temp file that is renamed over the original.
func (w *Warehouse) compact() error {
	tmp := w.path + ".compact"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: creating warehouse compaction file: %w", err)
	}
	bw := bufio.NewWriterSize(f, 64<<10)
	for _, hash := range w.order {
		if err := writeFramed(bw, w.index[hash]); err != nil {
			f.Close()
			return err
		}
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("store: flushing warehouse compaction: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("store: syncing warehouse compaction: %w", err)
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, w.path); err != nil {
		return fmt.Errorf("store: installing compacted warehouse: %w", err)
	}
	w.dead = 0
	return nil
}

func writeFramed(bw *bufio.Writer, rec RunRecord) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("store: encoding warehouse record: %w", err)
	}
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
	if _, err := bw.Write(hdr[:]); err != nil {
		return fmt.Errorf("store: warehouse write: %w", err)
	}
	if _, err := bw.Write(payload); err != nil {
		return fmt.Errorf("store: warehouse write: %w", err)
	}
	return nil
}

// Put stores rec as the live result for its spec hash, durably
// (flushed and fsynced) before returning. Re-putting a hash supersedes
// the previous record.
func (w *Warehouse) Put(rec RunRecord) error {
	if rec.SpecHash == "" {
		return fmt.Errorf("store: warehouse record needs a spec hash")
	}
	if rec.Time.IsZero() {
		rec.Time = time.Now().UTC()
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return fmt.Errorf("store: warehouse is closed")
	}
	if _, existed := w.index[rec.SpecHash]; existed {
		w.dead++
	}
	if err := writeFramed(w.bw, rec); err != nil {
		return err
	}
	if err := w.bw.Flush(); err != nil {
		return fmt.Errorf("store: warehouse flush: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("store: warehouse fsync: %w", err)
	}
	w.insert(rec)
	return nil
}

// Get returns the live record for a spec hash.
func (w *Warehouse) Get(hash string) (RunRecord, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	rec, ok := w.index[hash]
	return rec, ok
}

// Filter selects warehouse records; zero fields match everything.
type Filter struct {
	SpecHash  string
	Tenant    string
	Workload  string
	Predictor string

	// Source selects by workload provenance: "external" matches records
	// whose workload is an uploaded trace (an "ext:" content address,
	// possibly salted), "synthetic" matches everything else. Empty
	// matches both.
	Source string

	// Contexts, when non-nil, selects by hardware context count. Values
	// <= 1 select single-context records — including records written
	// before the contexts column existed, which carry 0.
	Contexts *int

	Limit int // 0 = no limit
}

// matchSource reports whether a record's workload provenance satisfies
// the filter. Salted stream names ("ext:<hash>#2") count as external:
// the salt varies the replay offset, not where the instructions came
// from.
func matchSource(want, workload string) bool {
	external := strings.HasPrefix(workload, "ext:")
	switch want {
	case "external":
		return external
	case "synthetic":
		return !external
	default:
		return false
	}
}

// matchContexts reports whether a record's context count satisfies the
// filter, treating 0 and 1 as the same single-context class on both
// sides.
func matchContexts(want, got int) bool {
	if want <= 1 {
		return got <= 1
	}
	return got == want
}

// List returns matching records, most recently inserted first.
func (w *Warehouse) List(f Filter) []RunRecord {
	w.mu.Lock()
	defer w.mu.Unlock()
	var out []RunRecord
	for i := len(w.order) - 1; i >= 0; i-- {
		rec := w.index[w.order[i]]
		if f.SpecHash != "" && rec.SpecHash != f.SpecHash {
			continue
		}
		if f.Tenant != "" && rec.Tenant != f.Tenant {
			continue
		}
		if f.Workload != "" && rec.Workload != f.Workload {
			continue
		}
		if f.Predictor != "" && rec.Predictor != f.Predictor {
			continue
		}
		if f.Source != "" && !matchSource(f.Source, rec.Workload) {
			continue
		}
		if f.Contexts != nil && !matchContexts(*f.Contexts, rec.Contexts) {
			continue
		}
		out = append(out, rec)
		if f.Limit > 0 && len(out) >= f.Limit {
			break
		}
	}
	return out
}

// Hashes returns every live spec hash, sorted (for tests and
// diagnostics).
func (w *Warehouse) Hashes() []string {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]string, 0, len(w.index))
	for h := range w.index {
		out = append(out, h)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of live records.
func (w *Warehouse) Len() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.index)
}

// Close flushes and closes the backing file. Further puts fail.
func (w *Warehouse) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	var firstErr error
	if err := w.bw.Flush(); err != nil {
		firstErr = err
	}
	if err := w.f.Sync(); err != nil && firstErr == nil {
		firstErr = err
	}
	if err := w.f.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	w.f = nil
	return firstErr
}
