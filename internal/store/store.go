package store

import (
	"encoding/json"
	"fmt"
	"path/filepath"
	"time"
)

// Store bundles the WAL, the result warehouse, and the flight-record
// store under one data directory:
//
//	<dir>/wal/wal-XXXXXXXX.log   lifecycle events (jobs, sweeps)
//	<dir>/warehouse.log          finished run results by spec hash
//	<dir>/flights.log            job flight records (post-mortem black boxes)
//
// Open replays the log, folds it to the pending State, and compacts
// the history down to the live records. The owner reads State once at
// startup to re-enqueue owed work, then appends lifecycle events as
// they happen. All append methods are durable on return and safe for
// concurrent use.
type Store struct {
	wal     *WAL
	wh      *Warehouse
	flights *FlightStore
	state   State
}

// Options tunes Open. Zero values select defaults.
type Options struct {
	WAL WALOptions

	// FlightCap bounds retained flight records (<= 0 = default 1024).
	FlightCap int
}

// Open opens (creating if needed) the store rooted at dir.
func Open(dir string, opts Options) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: data directory must not be empty")
	}
	wal, events, err := OpenWAL(filepath.Join(dir, "wal"), opts.WAL)
	if err != nil {
		return nil, err
	}
	st := Fold(events)
	// Compact whenever history would otherwise accumulate: the folded
	// live set is the whole truth, so everything else is dead weight a
	// restart should not pay to replay again.
	if len(events) > len(st.PendingJobs)+len(st.PendingSweeps) {
		if err := wal.Compact(st.Live()); err != nil {
			wal.Close()
			return nil, err
		}
	}
	wh, err := OpenWarehouse(dir)
	if err != nil {
		wal.Close()
		return nil, err
	}
	flights, err := OpenFlightStore(dir, opts.FlightCap)
	if err != nil {
		wal.Close()
		wh.Close()
		return nil, err
	}
	return &Store{wal: wal, wh: wh, flights: flights, state: st}, nil
}

// State returns the fold of the log as it stood at Open: the work a
// restarted owner owes. Events appended since Open are not reflected.
func (s *Store) State() State { return s.state }

// Warehouse exposes the result warehouse.
func (s *Store) Warehouse() *Warehouse { return s.wh }

// Flights exposes the flight-record store.
func (s *Store) Flights() *FlightStore { return s.flights }

// Close closes the WAL, warehouse, and flight store.
func (s *Store) Close() error {
	err := s.wal.Close()
	if werr := s.wh.Close(); err == nil {
		err = werr
	}
	if ferr := s.flights.Close(); err == nil {
		err = ferr
	}
	return err
}

// AppendJobAccepted records an admitted job durably; until a terminal
// event follows, a restart re-enqueues it.
func (s *Store) AppendJobAccepted(id, tenant, specHash string, spec json.RawMessage, label string, timeoutMS int64) error {
	return s.wal.Append(Event{Type: EvJobAccepted, Time: time.Now().UTC(), Job: &JobEvent{
		ID: id, Tenant: tenant, SpecHash: specHash, Spec: spec, Label: label, TimeoutMS: timeoutMS,
	}})
}

// AppendJobDone records a job's successful completion.
func (s *Store) AppendJobDone(id, specHash string) error {
	return s.wal.Append(Event{Type: EvJobDone, Time: time.Now().UTC(),
		Job: &JobEvent{ID: id, SpecHash: specHash}})
}

// AppendJobFailed records a job's terminal failure.
func (s *Store) AppendJobFailed(id, specHash, errMsg string) error {
	return s.wal.Append(Event{Type: EvJobFailed, Time: time.Now().UTC(),
		Job: &JobEvent{ID: id, SpecHash: specHash, Error: errMsg}})
}

// AppendJobCanceled records a client cancellation.
func (s *Store) AppendJobCanceled(id, specHash string) error {
	return s.wal.Append(Event{Type: EvJobCanceled, Time: time.Now().UTC(),
		Job: &JobEvent{ID: id, SpecHash: specHash}})
}

// AppendSweepStarted records an accepted sweep and its unique points.
func (s *Store) AppendSweepStarted(id, tenant string, total int, points []SweepPoint) error {
	return s.wal.Append(Event{Type: EvSweepStarted, Time: time.Now().UTC(),
		Sweep: &SweepEvent{ID: id, Tenant: tenant, Total: total, Points: points}})
}

// AppendPointDone records one sweep point's completion.
func (s *Store) AppendPointDone(sweepID, hash string) error {
	return s.wal.Append(Event{Type: EvPointDone, Time: time.Now().UTC(),
		Sweep: &SweepEvent{ID: sweepID, Hash: hash}})
}

// AppendPointFailed records one sweep point's terminal failure.
func (s *Store) AppendPointFailed(sweepID, hash, errMsg string) error {
	return s.wal.Append(Event{Type: EvPointFailed, Time: time.Now().UTC(),
		Sweep: &SweepEvent{ID: sweepID, Hash: hash, Error: errMsg}})
}

// AppendSweepDone records that every point of a sweep settled.
func (s *Store) AppendSweepDone(id string) error {
	return s.wal.Append(Event{Type: EvSweepDone, Time: time.Now().UTC(),
		Sweep: &SweepEvent{ID: id}})
}
