package store

import (
	"encoding/json"
	"sort"
	"time"
)

// Event types. Job events cover the daemon's work queue; sweep events
// cover the cluster coordinator's fan-out bookkeeping. Both are keyed
// by the canonical spec hash, the system-wide idempotency key.
const (
	EvJobAccepted  = "job_accepted"
	EvJobDone      = "job_done"
	EvJobFailed    = "job_failed"
	EvJobCanceled  = "job_canceled"
	EvSweepStarted = "sweep_started"
	EvPointDone    = "point_done"
	EvPointFailed  = "point_failed"
	EvSweepDone    = "sweep_done"
)

// Event is one WAL record. Exactly one of Job / Sweep is set,
// according to Type.
type Event struct {
	Type string    `json:"type"`
	Time time.Time `json:"time"`

	Job   *JobEvent   `json:"job,omitempty"`
	Sweep *SweepEvent `json:"sweep,omitempty"`
}

// JobEvent carries a job lifecycle transition. Accept events carry the
// full canonical spec (so replay can re-enqueue without any other
// source of truth); terminal events carry only the identifiers.
type JobEvent struct {
	ID        string          `json:"id"`
	Tenant    string          `json:"tenant,omitempty"`
	SpecHash  string          `json:"spec_hash"`
	Spec      json.RawMessage `json:"spec,omitempty"`
	Label     string          `json:"label,omitempty"`
	TimeoutMS int64           `json:"timeout_ms,omitempty"`
	Error     string          `json:"error,omitempty"`
}

// SweepEvent carries a coordinator sweep transition. The started event
// carries every unique point; point events carry the settled hash.
type SweepEvent struct {
	ID     string       `json:"id"`
	Tenant string       `json:"tenant,omitempty"`
	Total  int          `json:"total,omitempty"`
	Points []SweepPoint `json:"points,omitempty"`
	Hash   string       `json:"hash,omitempty"`
	Error  string       `json:"error,omitempty"`
}

// SweepPoint is one unique point recorded with a sweep's start event.
type SweepPoint struct {
	Hash  string          `json:"hash"`
	Spec  json.RawMessage `json:"spec"`
	Label string          `json:"label,omitempty"`
	Count int             `json:"count,omitempty"`
}

// PendingJob is an accepted job the log holds no terminal event for:
// work a restarted daemon owes its clients.
type PendingJob struct {
	JobEvent
	Accepted time.Time
}

// PendingSweep is a started sweep the log holds no sweep_done for,
// with the per-point settlement state folded in.
type PendingSweep struct {
	SweepEvent
	Started time.Time

	// Done maps settled point hashes to "" (done) or the failure
	// message (failed). Points absent from the map are still owed.
	Done map[string]string
}

// State is the fold of a replayed log: everything a restarted process
// must pick back up, plus the ID high-water marks so fresh IDs do not
// collide with replayed ones.
type State struct {
	PendingJobs   []PendingJob
	PendingSweeps []PendingSweep
	MaxJobID      uint64
	MaxSweepID    uint64
}

// Fold reduces a replayed event stream to the live State. Duplicated
// events (possible after an interrupted compaction) and terminal events
// for unknown IDs (possible after a compaction dropped the accept) are
// tolerated: the fold is idempotent and last-writer-wins.
func Fold(events []Event) State {
	jobs := make(map[string]*PendingJob)
	var jobOrder []string
	sweeps := make(map[string]*PendingSweep)
	var sweepOrder []string
	var st State
	for _, ev := range events {
		switch ev.Type {
		case EvJobAccepted:
			if ev.Job == nil {
				continue
			}
			if n := trailingID(ev.Job.ID); n > st.MaxJobID {
				st.MaxJobID = n
			}
			if _, ok := jobs[ev.Job.ID]; !ok {
				jobOrder = append(jobOrder, ev.Job.ID)
			}
			jobs[ev.Job.ID] = &PendingJob{JobEvent: *ev.Job, Accepted: ev.Time}
		case EvJobDone, EvJobFailed, EvJobCanceled:
			if ev.Job == nil {
				continue
			}
			if n := trailingID(ev.Job.ID); n > st.MaxJobID {
				st.MaxJobID = n
			}
			delete(jobs, ev.Job.ID)
		case EvSweepStarted:
			if ev.Sweep == nil {
				continue
			}
			if n := trailingID(ev.Sweep.ID); n > st.MaxSweepID {
				st.MaxSweepID = n
			}
			if _, ok := sweeps[ev.Sweep.ID]; !ok {
				sweepOrder = append(sweepOrder, ev.Sweep.ID)
			}
			sweeps[ev.Sweep.ID] = &PendingSweep{
				SweepEvent: *ev.Sweep,
				Started:    ev.Time,
				Done:       make(map[string]string),
			}
		case EvPointDone:
			if ev.Sweep == nil {
				continue
			}
			if sw := sweeps[ev.Sweep.ID]; sw != nil {
				sw.Done[ev.Sweep.Hash] = ""
			}
		case EvPointFailed:
			if ev.Sweep == nil {
				continue
			}
			if sw := sweeps[ev.Sweep.ID]; sw != nil {
				msg := ev.Sweep.Error
				if msg == "" {
					msg = "failed"
				}
				sw.Done[ev.Sweep.Hash] = msg
			}
		case EvSweepDone:
			if ev.Sweep == nil {
				continue
			}
			if n := trailingID(ev.Sweep.ID); n > st.MaxSweepID {
				st.MaxSweepID = n
			}
			delete(sweeps, ev.Sweep.ID)
		}
	}
	for _, id := range jobOrder {
		if j := jobs[id]; j != nil {
			st.PendingJobs = append(st.PendingJobs, *j)
		}
	}
	for _, id := range sweepOrder {
		if sw := sweeps[id]; sw != nil {
			st.PendingSweeps = append(st.PendingSweeps, *sw)
		}
	}
	return st
}

// Live re-encodes a folded State as the minimal event stream that folds
// back to it — the input to WAL.Compact.
func (st State) Live() []Event {
	var live []Event
	for _, j := range st.PendingJobs {
		je := j.JobEvent
		live = append(live, Event{Type: EvJobAccepted, Time: j.Accepted, Job: &je})
	}
	for _, sw := range st.PendingSweeps {
		se := sw.SweepEvent
		live = append(live, Event{Type: EvSweepStarted, Time: sw.Started, Sweep: &se})
		for _, hash := range sortedKeys(sw.Done) {
			msg := sw.Done[hash]
			typ := EvPointDone
			if msg != "" {
				typ = EvPointFailed
			}
			live = append(live, Event{Type: typ, Time: sw.Started,
				Sweep: &SweepEvent{ID: sw.ID, Hash: hash, Error: msg}})
		}
	}
	return live
}

// sortedKeys returns m's keys in ascending order so compaction output
// is deterministic.
func sortedKeys(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// trailingID extracts the numeric suffix of IDs like "j-000042" or
// "s-0007"; 0 when there is none.
func trailingID(id string) uint64 {
	var n uint64
	seen := false
	for i := len(id) - 1; i >= 0; i-- {
		c := id[i]
		if c < '0' || c > '9' {
			break
		}
		seen = true
	}
	if !seen {
		return 0
	}
	start := len(id)
	for start > 0 && id[start-1] >= '0' && id[start-1] <= '9' {
		start--
	}
	for _, c := range id[start:] {
		n = n*10 + uint64(c-'0')
	}
	return n
}
