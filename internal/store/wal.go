// Package store is the durability layer of the job platform: an
// append-only write-ahead log of job and sweep lifecycle events plus a
// result warehouse, both keyed by the canonical spec hash of
// internal/spec. A daemon (or cluster coordinator) opened on the same
// data directory after a crash replays the log, re-enqueues every
// accepted-but-unfinished piece of work, and serves every finished
// result it ever produced — the spec-hash idempotency that makes
// cluster retries safe is exactly what makes replayed re-execution
// safe here.
//
// Everything is stdlib-only and crash-oriented: records are
// length+CRC framed so a torn tail write is detected and discarded,
// appends are fsynced in group-commit batches before the caller is
// told the record is durable, segments rotate at a size threshold, and
// opening a directory compacts the history down to the records that
// still matter.
package store

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Frame layout: 4-byte little-endian payload length, 4-byte CRC-32C of
// the payload, then the payload itself. A record whose length runs past
// the end of the file or whose CRC does not match marks the torn tail
// of a crashed write; replay stops there and Open truncates the rest.
const frameHeader = 8

// maxRecordBytes rejects absurd frames during replay: a length field
// beyond this is corruption, not a record.
const maxRecordBytes = 16 << 20

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// WAL is the append-only log. Append is safe for concurrent use;
// records are durable (written and fsynced) when Append returns.
// Concurrent appenders share fsyncs: whichever appender reaches the
// sync path first syncs every record written so far and the rest
// return without their own disk round trip (group commit).
type WAL struct {
	dir         string
	maxSegBytes int64
	observe     func(seconds float64) // fsync latency hook, may be nil

	mu       sync.Mutex
	cond     *sync.Cond // broadcast when syncedSeq advances
	f        *os.File
	bw       *bufio.Writer
	seg      int   // current segment number
	segBytes int64 // bytes written to the current segment
	nextSeq  uint64
	synced   uint64 // all seqs <= synced are on disk
	syncing  bool   // an appender is currently inside Sync
	err      error  // sticky: a failed write or sync poisons the log
	closed   bool
}

// WALOptions tunes OpenWAL. Zero values select defaults.
type WALOptions struct {
	// SegmentBytes rotates the log to a fresh segment file once the
	// current one exceeds this size (default 8 MiB).
	SegmentBytes int64

	// FsyncObserver, when set, receives the duration in seconds of
	// every group-commit fsync on the append path — the latency every
	// durable accept pays. Must be safe for concurrent use; it is
	// called outside the WAL lock.
	FsyncObserver func(seconds float64)
}

func (o *WALOptions) applyDefaults() {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 8 << 20
	}
}

func segmentName(n int) string { return fmt.Sprintf("wal-%08d.log", n) }

// segmentNumber parses a segment file name, returning -1 for files that
// are not WAL segments.
func segmentNumber(name string) int {
	if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".log") {
		return -1
	}
	n, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".log"))
	if err != nil || n < 0 {
		return -1
	}
	return n
}

// listSegments returns the segment numbers present in dir, ascending.
func listSegments(dir string) ([]int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []int
	for _, e := range entries {
		if n := segmentNumber(e.Name()); n >= 0 {
			segs = append(segs, n)
		}
	}
	sort.Ints(segs)
	return segs, nil
}

// OpenWAL opens (creating if needed) the log in dir and replays every
// record into events, oldest first. A torn tail — a record cut short or
// CRC-corrupted by a crash mid-write — ends the replay of its segment;
// the segment is truncated to the last good record so the log is clean
// for appending.
func OpenWAL(dir string, opts WALOptions) (*WAL, []Event, error) {
	opts.applyDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("store: creating wal dir: %w", err)
	}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("store: listing wal segments: %w", err)
	}
	var events []Event
	for _, n := range segs {
		path := filepath.Join(dir, segmentName(n))
		evs, good, err := replaySegment(path)
		if err != nil {
			return nil, nil, err
		}
		events = append(events, evs...)
		// Only the last segment may legitimately carry a torn tail;
		// truncate it away so appends continue from a clean frame edge.
		if n == segs[len(segs)-1] {
			if err := truncateTo(path, good); err != nil {
				return nil, nil, err
			}
		}
	}
	w := &WAL{dir: dir, maxSegBytes: opts.SegmentBytes, observe: opts.FsyncObserver}
	w.cond = sync.NewCond(&w.mu)
	w.seg = 1
	if len(segs) > 0 {
		w.seg = segs[len(segs)-1]
	}
	if err := w.openSegment(w.seg, true); err != nil {
		return nil, nil, err
	}
	return w, events, nil
}

// openSegment opens segment n for appending (append = continue an
// existing file, otherwise create fresh) and makes it current.
func (w *WAL) openSegment(n int, appendTo bool) error {
	flags := os.O_CREATE | os.O_WRONLY | os.O_APPEND
	if !appendTo {
		flags |= os.O_EXCL
	}
	f, err := os.OpenFile(filepath.Join(w.dir, segmentName(n)), flags, 0o644)
	if err != nil {
		return fmt.Errorf("store: opening wal segment: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("store: stat wal segment: %w", err)
	}
	w.f = f
	w.bw = bufio.NewWriterSize(f, 64<<10)
	w.seg = n
	w.segBytes = st.Size()
	return nil
}

// replaySegment decodes one segment, returning its events and the byte
// offset of the end of the last intact record.
func replaySegment(path string) ([]Event, int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, fmt.Errorf("store: opening wal segment: %w", err)
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 64<<10)
	var events []Event
	var good int64
	var hdr [frameHeader]byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			break // EOF or torn header
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if n == 0 || n > maxRecordBytes {
			break // corrupt length
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			break // torn payload
		}
		if crc32.Checksum(payload, crcTable) != sum {
			break // corrupt payload
		}
		var ev Event
		if err := json.Unmarshal(payload, &ev); err != nil {
			break // framed but undecodable: treat as tail corruption
		}
		events = append(events, ev)
		good += frameHeader + int64(n)
	}
	return events, good, nil
}

// truncateTo clips a segment to size when it carries bytes past the
// last intact record.
func truncateTo(path string, size int64) error {
	st, err := os.Stat(path)
	if err != nil {
		return err
	}
	if st.Size() == size {
		return nil
	}
	if err := os.Truncate(path, size); err != nil {
		return fmt.Errorf("store: truncating torn wal tail: %w", err)
	}
	return nil
}

// frame encodes one event as a CRC-framed record.
func frame(ev Event) ([]byte, error) {
	payload, err := json.Marshal(ev)
	if err != nil {
		return nil, fmt.Errorf("store: encoding wal event: %w", err)
	}
	buf := make([]byte, frameHeader+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.Checksum(payload, crcTable))
	copy(buf[frameHeader:], payload)
	return buf, nil
}

// Append writes ev and returns once it is durable (flushed and fsynced).
// Batches form naturally under concurrency: every appender that arrives
// while one fsync is in flight is covered by the next, so N concurrent
// appends cost far fewer than N disk syncs.
func (w *WAL) Append(ev Event) error {
	buf, err := frame(ev)
	if err != nil {
		return err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return fmt.Errorf("store: wal is closed")
	}
	if w.err != nil {
		return w.err
	}
	if w.segBytes > 0 && w.segBytes+int64(len(buf)) > w.maxSegBytes {
		// Rotation closes the current file; wait out any fsync in
		// flight on it first (syncs drop w.mu around the disk call).
		for w.syncing && w.err == nil {
			w.cond.Wait()
		}
		if w.closed {
			return fmt.Errorf("store: wal is closed")
		}
		if w.err != nil {
			return w.err
		}
		if err := w.rotateLocked(); err != nil {
			w.err = err
			return err
		}
	}
	if _, err := w.bw.Write(buf); err != nil {
		w.err = fmt.Errorf("store: wal write: %w", err)
		return w.err
	}
	w.segBytes += int64(len(buf))
	w.nextSeq++
	seq := w.nextSeq
	return w.syncToLocked(seq)
}

// syncToLocked blocks until seq is durable, performing the flush+fsync
// itself if no other appender is already doing one that will cover seq.
// Caller holds w.mu; it is released during the fsync.
func (w *WAL) syncToLocked(seq uint64) error {
	for w.synced < seq && w.err == nil {
		if w.syncing {
			// Another appender's fsync is in flight; it may have started
			// before our record hit the buffer, so re-check on wake.
			w.cond.Wait()
			continue
		}
		w.syncing = true
		if err := w.bw.Flush(); err != nil {
			w.err = fmt.Errorf("store: wal flush: %w", err)
			break
		}
		target := w.nextSeq // everything buffered so far
		f := w.f
		w.mu.Unlock()
		start := time.Now()
		err := f.Sync()
		if w.observe != nil {
			w.observe(time.Since(start).Seconds())
		}
		w.mu.Lock()
		if err != nil && w.err == nil {
			w.err = fmt.Errorf("store: wal fsync: %w", err)
		}
		if w.err == nil && target > w.synced {
			w.synced = target
		}
		w.syncing = false
		w.cond.Broadcast()
	}
	if w.err != nil {
		w.syncing = false
		w.cond.Broadcast()
		return w.err
	}
	return nil
}

// rotateLocked seals the current segment (flush + fsync) and starts the
// next one. Caller holds w.mu.
func (w *WAL) rotateLocked() error {
	if err := w.bw.Flush(); err != nil {
		return fmt.Errorf("store: wal flush at rotation: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("store: wal fsync at rotation: %w", err)
	}
	w.synced = w.nextSeq
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("store: closing sealed wal segment: %w", err)
	}
	return w.openSegment(w.seg+1, false)
}

// Compact rewrites the log so it contains exactly live, discarding the
// full history. Called at open time, after the owner has folded the
// replayed events down to the records that still matter (pending jobs,
// unfinished sweeps); the settled majority of the history is dropped.
// Not safe concurrently with Append — compaction happens before the
// log's owner starts serving.
func (w *WAL) Compact(live []Event) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return fmt.Errorf("store: wal is closed")
	}
	// Write the survivors into a fresh segment beyond every existing
	// one, fsync it, then delete the history. A crash between those
	// steps leaves both the old segments and the new one; replay folds
	// the duplicated events idempotently, so recovery is unharmed.
	if err := w.bw.Flush(); err != nil {
		return fmt.Errorf("store: wal flush before compaction: %w", err)
	}
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("store: closing wal segment before compaction: %w", err)
	}
	oldSegs, err := listSegments(w.dir)
	if err != nil {
		return err
	}
	next := 1
	if len(oldSegs) > 0 {
		next = oldSegs[len(oldSegs)-1] + 1
	}
	if err := w.openSegment(next, false); err != nil {
		return err
	}
	for _, ev := range live {
		buf, err := frame(ev)
		if err != nil {
			return err
		}
		if _, err := w.bw.Write(buf); err != nil {
			return fmt.Errorf("store: wal write during compaction: %w", err)
		}
		w.segBytes += int64(len(buf))
	}
	if err := w.bw.Flush(); err != nil {
		return fmt.Errorf("store: wal flush during compaction: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("store: wal fsync during compaction: %w", err)
	}
	for _, n := range oldSegs {
		if n == next {
			continue
		}
		if err := os.Remove(filepath.Join(w.dir, segmentName(n))); err != nil {
			return fmt.Errorf("store: removing compacted segment: %w", err)
		}
	}
	return nil
}

// Close flushes, fsyncs, and closes the log. Further appends fail.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	var firstErr error
	if err := w.bw.Flush(); err != nil {
		firstErr = err
	}
	if err := w.f.Sync(); err != nil && firstErr == nil {
		firstErr = err
	}
	if err := w.f.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	w.cond.Broadcast()
	return firstErr
}
