package store

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func testFlight(id string) FlightRecord {
	return FlightRecord{
		JobID:    id,
		SpecHash: "abc123",
		Tenant:   "acme",
		State:    "failed",
		Error:    "deadline exceeded",
		Trigger:  "failed",
		Created:  time.Now().UTC().Truncate(time.Millisecond),
		Events: []FlightEvent{
			{Time: time.Now().UTC(), Msg: "accepted"},
			{Time: time.Now().UTC(), Msg: "running"},
		},
		Snapshots: []FlightSnapshot{
			{Time: time.Now().UTC(), Phase: "run", Instructions: 12345, SimMIPS: 2.5,
				Components: []FlightComponent{{Name: "lvp", Used: 10, Correct: 9}}},
		},
	}
}

func TestFlightStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	fs, err := OpenFlightStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := testFlight("j-001")
	if err := fs.Put(want); err != nil {
		t.Fatal(err)
	}
	// Supersede with a later dump (more events).
	want.Events = append(want.Events, FlightEvent{Time: time.Now().UTC(), Msg: "dumped"})
	if err := fs.Put(want); err != nil {
		t.Fatal(err)
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}

	fs2, err := OpenFlightStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer fs2.Close()
	got, ok := fs2.Get("j-001")
	if !ok {
		t.Fatal("record lost across reopen")
	}
	if got.State != "failed" || got.Error != "deadline exceeded" || len(got.Events) != 3 {
		t.Fatalf("got %+v", got)
	}
	if len(got.Snapshots) != 1 || got.Snapshots[0].Components[0].Name != "lvp" {
		t.Fatalf("snapshots = %+v", got.Snapshots)
	}
	if fs2.Len() != 1 {
		t.Fatalf("len = %d", fs2.Len())
	}
}

func TestFlightStoreCapEvictsOldest(t *testing.T) {
	dir := t.TempDir()
	fs, err := OpenFlightStore(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := fs.Put(testFlight(fmt.Sprintf("j-%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if fs.Len() != 3 {
		t.Fatalf("len = %d, want 3", fs.Len())
	}
	if _, ok := fs.Get("j-000"); ok {
		t.Fatal("oldest record survived past the cap")
	}
	if _, ok := fs.Get("j-009"); !ok {
		t.Fatal("newest record evicted")
	}
	fs.Close()

	// The cap holds across reopen too (and triggers compaction, since
	// 7 of 10 on-disk records are dead).
	fs2, err := OpenFlightStore(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer fs2.Close()
	if fs2.Len() != 3 {
		t.Fatalf("reopened len = %d, want 3", fs2.Len())
	}
	if _, ok := fs2.Get("j-009"); !ok {
		t.Fatal("newest record lost in compaction")
	}
}

func TestFlightStoreTornTail(t *testing.T) {
	dir := t.TempDir()
	fs, err := OpenFlightStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Put(testFlight("j-001")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Put(testFlight("j-002")); err != nil {
		t.Fatal(err)
	}
	fs.Close()

	// Tear the tail: chop bytes off the last record.
	path := filepath.Join(dir, flightFile)
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, st.Size()-7); err != nil {
		t.Fatal(err)
	}

	fs2, err := OpenFlightStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer fs2.Close()
	if _, ok := fs2.Get("j-001"); !ok {
		t.Fatal("intact record lost to torn tail")
	}
	if _, ok := fs2.Get("j-002"); ok {
		t.Fatal("torn record resurrected")
	}
	// Appending after the truncation still works.
	if err := fs2.Put(testFlight("j-003")); err != nil {
		t.Fatal(err)
	}
}

func TestWALFsyncObserver(t *testing.T) {
	var observed int
	s, err := Open(t.TempDir(), Options{WAL: WALOptions{FsyncObserver: func(sec float64) {
		if sec < 0 {
			t.Errorf("negative fsync duration %g", sec)
		}
		observed++
	}}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.AppendJobAccepted("j-1", "", "hash1", nil, "", 0); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendJobDone("j-1", "hash1"); err != nil {
		t.Fatal(err)
	}
	if observed == 0 {
		t.Fatal("fsync observer never called on the append path")
	}
}
