package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func jobAccepted(id, hash string) Event {
	return Event{Type: EvJobAccepted, Job: &JobEvent{
		ID: id, Tenant: "default", SpecHash: hash,
		Spec: json.RawMessage(`{"workload":{"name":"gcc2k"}}`), Label: "composite",
	}}
}

func TestWALRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, events, err := OpenWAL(dir, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 0 {
		t.Fatalf("fresh wal replayed %d events", len(events))
	}
	for i := 0; i < 10; i++ {
		if err := w.Append(jobAccepted(fmt.Sprintf("j-%06d", i+1), fmt.Sprintf("h%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	_, events, err = OpenWAL(dir, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 10 {
		t.Fatalf("replayed %d events, want 10", len(events))
	}
	if events[3].Job.ID != "j-000004" || events[3].Job.SpecHash != "h3" {
		t.Fatalf("event 3 = %+v", events[3].Job)
	}
}

func TestWALTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	w, _, err := OpenWAL(dir, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := w.Append(jobAccepted(fmt.Sprintf("j-%06d", i+1), "h")); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()

	// Simulate a crash mid-write: append garbage that parses as a frame
	// header pointing past EOF.
	segs, _ := listSegments(dir)
	path := filepath.Join(dir, segmentName(segs[len(segs)-1]))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xFF, 0x00, 0x00, 0x00, 0xde, 0xad, 0xbe, 0xef, 0x01, 0x02}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	w2, events, err := OpenWAL(dir, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 5 {
		t.Fatalf("replayed %d events after torn tail, want 5", len(events))
	}
	// The torn bytes must be gone: appending and replaying again stays
	// intact.
	if err := w2.Append(jobAccepted("j-000006", "h6")); err != nil {
		t.Fatal(err)
	}
	w2.Close()
	_, events, err = OpenWAL(dir, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 6 || events[5].Job.ID != "j-000006" {
		t.Fatalf("after truncation + append: %d events", len(events))
	}
}

func TestWALSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	w, _, err := OpenWAL(dir, WALOptions{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := w.Append(jobAccepted(fmt.Sprintf("j-%06d", i+1), "hash-of-some-length")); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	segs, _ := listSegments(dir)
	if len(segs) < 2 {
		t.Fatalf("expected rotation to produce multiple segments, got %v", segs)
	}
	_, events, err := OpenWAL(dir, WALOptions{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 20 {
		t.Fatalf("replayed %d events across segments, want 20", len(events))
	}
}

func TestWALConcurrentAppends(t *testing.T) {
	dir := t.TempDir()
	w, _, err := OpenWAL(dir, WALOptions{SegmentBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	const n = 200
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs <- w.Append(jobAccepted(fmt.Sprintf("j-%06d", i+1), "h"))
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	_, events, err := OpenWAL(dir, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != n {
		t.Fatalf("replayed %d events, want %d", len(events), n)
	}
}

func TestFoldAndCompaction(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Three jobs: one finishes, one fails, one stays pending.
	for i, id := range []string{"j-000001", "j-000002", "j-000003"} {
		if err := st.AppendJobAccepted(id, "default", fmt.Sprintf("h%d", i),
			json.RawMessage(`{}`), "lvp", 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.AppendJobDone("j-000001", "h0"); err != nil {
		t.Fatal(err)
	}
	if err := st.AppendJobFailed("j-000002", "h1", "deadline"); err != nil {
		t.Fatal(err)
	}
	// A sweep with one of two points settled.
	if err := st.AppendSweepStarted("s-0001", "default", 2, []SweepPoint{
		{Hash: "ha", Spec: json.RawMessage(`{}`)},
		{Hash: "hb", Spec: json.RawMessage(`{}`)},
	}); err != nil {
		t.Fatal(err)
	}
	if err := st.AppendPointDone("s-0001", "ha"); err != nil {
		t.Fatal(err)
	}
	st.Close()

	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	state := st2.State()
	if len(state.PendingJobs) != 1 || state.PendingJobs[0].ID != "j-000003" {
		t.Fatalf("pending jobs = %+v, want just j-000003", state.PendingJobs)
	}
	if state.MaxJobID != 3 {
		t.Fatalf("MaxJobID = %d, want 3", state.MaxJobID)
	}
	if len(state.PendingSweeps) != 1 {
		t.Fatalf("pending sweeps = %+v", state.PendingSweeps)
	}
	sw := state.PendingSweeps[0]
	if sw.ID != "s-0001" || sw.Done["ha"] != "" || len(sw.Done) != 1 {
		t.Fatalf("sweep fold = %+v", sw)
	}
	if state.MaxSweepID != 1 {
		t.Fatalf("MaxSweepID = %d, want 1", state.MaxSweepID)
	}

	// Open compacted the log: a third open must fold identically from
	// the rewritten segments.
	st2.Close()
	st3, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st3.Close()
	s3 := st3.State()
	if len(s3.PendingJobs) != 1 || s3.PendingJobs[0].ID != "j-000003" ||
		len(s3.PendingSweeps) != 1 || len(s3.PendingSweeps[0].Done) != 1 {
		t.Fatalf("state after compaction = %+v", s3)
	}
}

func TestWarehousePersistsAndSupersedes(t *testing.T) {
	dir := t.TempDir()
	wh, err := OpenWarehouse(dir)
	if err != nil {
		t.Fatal(err)
	}
	put := func(hash, workload string, ipc float64) {
		t.Helper()
		res, _ := json.Marshal(map[string]any{"workload": workload, "ipc": ipc})
		if err := wh.Put(RunRecord{SpecHash: hash, Tenant: "default",
			Workload: workload, Predictor: "composite", Result: res}); err != nil {
			t.Fatal(err)
		}
	}
	put("aaa", "gcc2k", 1.0)
	put("bbb", "mcf2k", 2.0)
	put("aaa", "gcc2k", 1.5) // supersedes
	if wh.Len() != 2 {
		t.Fatalf("Len = %d, want 2", wh.Len())
	}
	wh.Close()

	wh2, err := OpenWarehouse(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer wh2.Close()
	rec, ok := wh2.Get("aaa")
	if !ok {
		t.Fatal("aaa missing after reopen")
	}
	var got map[string]any
	json.Unmarshal(rec.Result, &got)
	if got["ipc"].(float64) != 1.5 {
		t.Fatalf("superseded record survived: %v", got)
	}
	if l := wh2.List(Filter{Workload: "mcf2k"}); len(l) != 1 || l[0].SpecHash != "bbb" {
		t.Fatalf("List(workload=mcf2k) = %+v", l)
	}
	if l := wh2.List(Filter{Limit: 1}); len(l) != 1 {
		t.Fatalf("List(limit=1) = %+v", l)
	}
}

func TestWarehouseContextsFilter(t *testing.T) {
	dir := t.TempDir()
	wh, err := OpenWarehouse(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer wh.Close()
	res, _ := json.Marshal(map[string]any{"ipc": 1.0})
	put := func(hash string, contexts int) {
		t.Helper()
		if err := wh.Put(RunRecord{SpecHash: hash, Result: res, Contexts: contexts}); err != nil {
			t.Fatal(err)
		}
	}
	put("old", 0) // record from before the contexts column existed
	put("one", 1)
	put("smt2", 2)
	put("smt4", 4)

	want := func(f Filter, hashes ...string) {
		t.Helper()
		got := wh.List(f)
		if len(got) != len(hashes) {
			t.Fatalf("List(%+v) returned %d records, want %d", f, len(got), len(hashes))
		}
		for i, h := range hashes {
			if got[i].SpecHash != h {
				t.Fatalf("List(%+v)[%d] = %s, want %s", f, i, got[i].SpecHash, h)
			}
		}
	}
	ctx := func(n int) *int { return &n }
	// Single-context is one class: 0 and 1 select pre-column records too.
	want(Filter{Contexts: ctx(1)}, "one", "old")
	want(Filter{Contexts: ctx(0)}, "one", "old")
	want(Filter{Contexts: ctx(2)}, "smt2")
	want(Filter{Contexts: ctx(4)}, "smt4")
	want(Filter{Contexts: ctx(3)})
	want(Filter{}, "smt4", "smt2", "one", "old")
}

func TestWarehouseSourceFilter(t *testing.T) {
	dir := t.TempDir()
	wh, err := OpenWarehouse(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer wh.Close()
	res, _ := json.Marshal(map[string]any{"ipc": 1.0})
	put := func(hash, workload string) {
		t.Helper()
		if err := wh.Put(RunRecord{SpecHash: hash, Workload: workload, Result: res}); err != nil {
			t.Fatal(err)
		}
	}
	put("syn", "gcc2k")
	put("synsalt", "gcc2k#3")
	put("ext", "ext:0123456789abcdef")
	put("extsalt", "ext:0123456789abcdef#2")

	want := func(f Filter, hashes ...string) {
		t.Helper()
		got := wh.List(f)
		if len(got) != len(hashes) {
			t.Fatalf("List(%+v) returned %d records, want %d", f, len(got), len(hashes))
		}
		for i, h := range hashes {
			if got[i].SpecHash != h {
				t.Fatalf("List(%+v)[%d] = %s, want %s", f, i, got[i].SpecHash, h)
			}
		}
	}
	// Salted external streams are still external: the salt changes the
	// replay offset, not the provenance.
	want(Filter{Source: "external"}, "extsalt", "ext")
	want(Filter{Source: "synthetic"}, "synsalt", "syn")
	want(Filter{}, "extsalt", "ext", "synsalt", "syn")
	// Source composes with the other columns.
	want(Filter{Source: "external", SpecHash: "ext"}, "ext")
	want(Filter{Source: "synthetic", SpecHash: "ext"})
}

func TestWarehouseTornTail(t *testing.T) {
	dir := t.TempDir()
	wh, err := OpenWarehouse(dir)
	if err != nil {
		t.Fatal(err)
	}
	res, _ := json.Marshal(map[string]any{"ipc": 1.0})
	if err := wh.Put(RunRecord{SpecHash: "aaa", Result: res}); err != nil {
		t.Fatal(err)
	}
	wh.Close()
	f, err := os.OpenFile(filepath.Join(dir, warehouseFile), os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0x40, 0x00, 0x00, 0x00, 0x01, 0x02, 0x03}) // torn frame
	f.Close()

	wh2, err := OpenWarehouse(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer wh2.Close()
	if wh2.Len() != 1 {
		t.Fatalf("Len after torn tail = %d, want 1", wh2.Len())
	}
	if _, ok := wh2.Get("aaa"); !ok {
		t.Fatal("record lost to torn tail truncation")
	}
}

func TestTrailingID(t *testing.T) {
	cases := map[string]uint64{
		"j-000042": 42, "s-0007": 7, "j-": 0, "": 0, "plain": 0, "j-9": 9,
	}
	for in, want := range cases {
		if got := trailingID(in); got != want {
			t.Errorf("trailingID(%q) = %d, want %d", in, got, want)
		}
	}
}
