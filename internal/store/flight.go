package store

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// FlightEvent is one timestamped line in a job's black box: lifecycle
// transitions, phase changes, stream drops, alert dumps.
type FlightEvent struct {
	Time time.Time `json:"time"`
	Msg  string    `json:"msg"`
}

// FlightComponent is one predictor component's telemetry at a snapshot.
type FlightComponent struct {
	Name      string  `json:"name"`
	Used      uint64  `json:"used"`
	Correct   uint64  `json:"correct"`
	Incorrect uint64  `json:"incorrect"`
	MPKP      float64 `json:"mpkp"`
	Silenced  bool    `json:"silenced,omitempty"`
}

// FlightSnapshot is one progress sample from the pipeline's seqlock
// probe, taken by the observability collector on its scrape tick.
type FlightSnapshot struct {
	Time         time.Time         `json:"time"`
	Phase        string            `json:"phase,omitempty"`
	Instructions uint64            `json:"instructions"`
	Cycles       uint64            `json:"cycles"`
	SimMIPS      float64           `json:"sim_mips"`
	Components   []FlightComponent `json:"components,omitempty"`
}

// FlightRecord is a job's complete black box: identity and attribution,
// the trigger that caused the dump, the last N lifecycle events, and
// the last N progress snapshots. Dumped into the durable flight store
// when a job fails, is canceled, or is in flight when an SLO alert
// fires — the inputs to a post-mortem.
type FlightRecord struct {
	JobID     string    `json:"job_id"`
	SpecHash  string    `json:"spec_hash,omitempty"`
	Tenant    string    `json:"tenant,omitempty"`
	Workload  string    `json:"workload,omitempty"`
	Predictor string    `json:"predictor,omitempty"`
	State     string    `json:"state"`
	Error     string    `json:"error,omitempty"`
	TraceID   string    `json:"trace_id,omitempty"`
	Trigger   string    `json:"trigger,omitempty"` // "failed", "canceled", "alert:<rule>", "" = live view
	Created   time.Time `json:"created"`
	Started   time.Time `json:"started,omitempty"`
	Finished  time.Time `json:"finished,omitempty"`

	Events    []FlightEvent    `json:"events,omitempty"`
	Snapshots []FlightSnapshot `json:"snapshots,omitempty"`
}

// FlightStore retains flight records keyed by job ID in a CRC-framed
// append-only file (the warehouse's format), bounded to the most
// recent maxLive records. Re-putting a job ID supersedes the earlier
// record; opening truncates a torn tail and compacts when dead records
// dominate. Safe for concurrent use.
type FlightStore struct {
	mu      sync.Mutex
	f       *os.File
	bw      *bufio.Writer
	path    string
	index   map[string]FlightRecord
	order   []string // insertion order of live job IDs, oldest first
	dead    int
	maxLive int
}

const (
	flightFile      = "flights.log"
	defaultMaxLive  = 1024
	maxFlightEvents = 256 // defensive cap applied on Put
)

// OpenFlightStore opens (creating if needed) the flight store in dir.
// maxLive <= 0 selects the default cap.
func OpenFlightStore(dir string, maxLive int) (*FlightStore, error) {
	if maxLive <= 0 {
		maxLive = defaultMaxLive
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating flight dir: %w", err)
	}
	path := filepath.Join(dir, flightFile)
	fs := &FlightStore{path: path, index: make(map[string]FlightRecord), maxLive: maxLive}
	total, good, err := fs.load()
	if err != nil {
		return nil, err
	}
	if _, statErr := os.Stat(path); statErr == nil {
		if err := truncateTo(path, good); err != nil {
			return nil, err
		}
	}
	fs.evictLocked()
	if fs.dead = total - len(fs.index); fs.dead > len(fs.index) {
		if err := fs.compact(); err != nil {
			return nil, err
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: opening flight store: %w", err)
	}
	fs.f = f
	fs.bw = bufio.NewWriterSize(f, 64<<10)
	return fs, nil
}

func (fs *FlightStore) load() (total int, good int64, err error) {
	f, err := os.Open(fs.path)
	if os.IsNotExist(err) {
		return 0, 0, nil
	}
	if err != nil {
		return 0, 0, fmt.Errorf("store: opening flight store: %w", err)
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 64<<10)
	var hdr [frameHeader]byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			break
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if n == 0 || n > maxRecordBytes {
			break
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			break
		}
		if crc32.Checksum(payload, crcTable) != sum {
			break
		}
		var rec FlightRecord
		if err := json.Unmarshal(payload, &rec); err != nil || rec.JobID == "" {
			break
		}
		fs.insert(rec)
		total++
		good += frameHeader + int64(n)
	}
	return total, good, nil
}

func (fs *FlightStore) insert(rec FlightRecord) {
	if _, ok := fs.index[rec.JobID]; !ok {
		fs.order = append(fs.order, rec.JobID)
	}
	fs.index[rec.JobID] = rec
}

// evictLocked drops the oldest live records past the cap.
func (fs *FlightStore) evictLocked() {
	for len(fs.order) > fs.maxLive {
		delete(fs.index, fs.order[0])
		fs.order = fs.order[1:]
		fs.dead++
	}
}

func (fs *FlightStore) compact() error {
	tmp := fs.path + ".compact"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: creating flight compaction file: %w", err)
	}
	bw := bufio.NewWriterSize(f, 64<<10)
	for _, id := range fs.order {
		if err := writeFlightFramed(bw, fs.index[id]); err != nil {
			f.Close()
			return err
		}
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("store: flushing flight compaction: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("store: syncing flight compaction: %w", err)
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, fs.path); err != nil {
		return fmt.Errorf("store: installing compacted flight store: %w", err)
	}
	fs.dead = 0
	return nil
}

func writeFlightFramed(bw *bufio.Writer, rec FlightRecord) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("store: encoding flight record: %w", err)
	}
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
	if _, err := bw.Write(hdr[:]); err != nil {
		return fmt.Errorf("store: flight write: %w", err)
	}
	if _, err := bw.Write(payload); err != nil {
		return fmt.Errorf("store: flight write: %w", err)
	}
	return nil
}

// Put stores rec as the live flight record for its job ID, durably
// before returning. Oversized event/snapshot rings are clipped to the
// most recent entries.
func (fs *FlightStore) Put(rec FlightRecord) error {
	if rec.JobID == "" {
		return fmt.Errorf("store: flight record needs a job id")
	}
	if len(rec.Events) > maxFlightEvents {
		rec.Events = rec.Events[len(rec.Events)-maxFlightEvents:]
	}
	if len(rec.Snapshots) > maxFlightEvents {
		rec.Snapshots = rec.Snapshots[len(rec.Snapshots)-maxFlightEvents:]
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.f == nil {
		return fmt.Errorf("store: flight store is closed")
	}
	if _, existed := fs.index[rec.JobID]; existed {
		fs.dead++
	}
	if err := writeFlightFramed(fs.bw, rec); err != nil {
		return err
	}
	if err := fs.bw.Flush(); err != nil {
		return fmt.Errorf("store: flight flush: %w", err)
	}
	if err := fs.f.Sync(); err != nil {
		return fmt.Errorf("store: flight fsync: %w", err)
	}
	fs.insert(rec)
	fs.evictLocked()
	return nil
}

// Get returns the live flight record for a job ID.
func (fs *FlightStore) Get(jobID string) (FlightRecord, bool) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	rec, ok := fs.index[jobID]
	return rec, ok
}

// Len returns the number of live flight records.
func (fs *FlightStore) Len() int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return len(fs.index)
}

// Close flushes and closes the backing file. Further puts fail.
func (fs *FlightStore) Close() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.f == nil {
		return nil
	}
	var firstErr error
	if err := fs.bw.Flush(); err != nil {
		firstErr = err
	}
	if err := fs.f.Sync(); err != nil && firstErr == nil {
		firstErr = err
	}
	if err := fs.f.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	fs.f = nil
	return firstErr
}
