package tenant

import (
	"errors"
	"sync"
	"time"
)

// Enqueue errors. ErrTenantFull is the per-tenant share bound (the
// global queue may have room that belongs to other tenants); ErrClosed
// means the scheduler was shut down.
var (
	ErrTenantFull = errors.New("tenant queue share is full")
	ErrClosed     = errors.New("scheduler is closed")
)

// WFQ is a virtual-time weighted fair queueing scheduler over
// per-tenant FIFO queues. Each enqueued item carries a cost (simulated
// instructions, here) and receives a virtual finish time
//
//	finish = max(V, lastFinish[tenant]) + cost/weight
//
// where V is the scheduler's virtual clock — the finish tag of the
// last dequeued item. Dequeue always pops the item with the smallest
// finish tag, which serves tenants in proportion to their weights
// whenever they are backlogged and gives idle tenants immediate
// service when they return (their lastFinish snaps forward to V, so an
// idle period earns no credit and costs no penalty).
//
// Safe for concurrent use. Dequeue blocks until an item is available
// or the scheduler is closed.
type WFQ struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queues map[string]*wfqQueue
	vtime  float64
	size   int
	closed bool
}

type wfqQueue struct {
	weight     float64
	items      []wfqItem // FIFO; finish tags are non-decreasing
	lastFinish float64
}

type wfqItem struct {
	payload  any
	finish   float64
	enqueued time.Time
}

// NewWFQ returns an empty scheduler.
func NewWFQ() *WFQ {
	w := &WFQ{queues: make(map[string]*wfqQueue)}
	w.cond = sync.NewCond(&w.mu)
	return w
}

// Enqueue adds payload to tenant t's queue with the given cost,
// honoring maxQueued as the tenant's share bound (<= 0 means
// unbounded). Cost must be positive; zero-cost items are given cost 1
// so they still advance the virtual clock.
func (w *WFQ) Enqueue(t *Tenant, payload any, cost float64, maxQueued int) error {
	if cost <= 0 {
		cost = 1
	}
	name := DefaultName
	weight := 1.0
	if t != nil {
		name = t.Name
		weight = float64(t.EffectiveWeight())
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	q, ok := w.queues[name]
	if !ok {
		q = &wfqQueue{weight: weight}
		w.queues[name] = q
	}
	q.weight = weight // track config changes across reloads
	if maxQueued > 0 && len(q.items) >= maxQueued {
		return ErrTenantFull
	}
	start := w.vtime
	if q.lastFinish > start {
		start = q.lastFinish
	}
	finish := start + cost/weight
	q.lastFinish = finish
	q.items = append(q.items, wfqItem{payload: payload, finish: finish, enqueued: time.Now()})
	w.size++
	w.cond.Signal()
	return nil
}

// Dequeue removes and returns the item with the smallest virtual
// finish tag, blocking until one is available. ok is false once the
// scheduler is closed and drained of nothing — close wakes all
// waiters; items enqueued before Close are still returned.
func (w *WFQ) Dequeue() (payload any, ok bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	for {
		if w.size > 0 {
			var best *wfqQueue
			var bestName string
			for name, q := range w.queues {
				if len(q.items) == 0 {
					continue
				}
				if best == nil || q.items[0].finish < best.items[0].finish ||
					(q.items[0].finish == best.items[0].finish && name < bestName) {
					best = q
					bestName = name
				}
			}
			it := best.items[0]
			best.items = best.items[1:]
			w.size--
			if it.finish > w.vtime {
				w.vtime = it.finish
			}
			return it.payload, true
		}
		if w.closed {
			return nil, false
		}
		w.cond.Wait()
	}
}

// Close wakes every blocked Dequeue. Items already queued are still
// handed out; once the scheduler is empty Dequeue returns ok=false.
func (w *WFQ) Close() {
	w.mu.Lock()
	w.closed = true
	w.cond.Broadcast()
	w.mu.Unlock()
}

// Len returns the total queued items.
func (w *WFQ) Len() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.size
}

// TenantLen returns one tenant's queued items.
func (w *WFQ) TenantLen(name string) int {
	w.mu.Lock()
	defer w.mu.Unlock()
	if q, ok := w.queues[name]; ok {
		return len(q.items)
	}
	return 0
}

// Depths snapshots every tenant's queue depth.
func (w *WFQ) Depths() map[string]int {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make(map[string]int, len(w.queues))
	for name, q := range w.queues {
		out[name] = len(q.items)
	}
	return out
}

// OldestWait returns how long tenant name's head-of-line item has been
// queued as of now — the starvation signal: under fair weighted service
// it stays bounded by the tenant's share of drain capacity, and grows
// without bound only when the tenant is starved or the pool is wedged.
// Zero when the tenant has nothing queued.
func (w *WFQ) OldestWait(name string, now time.Time) time.Duration {
	w.mu.Lock()
	defer w.mu.Unlock()
	q, ok := w.queues[name]
	if !ok || len(q.items) == 0 {
		return 0
	}
	d := now.Sub(q.items[0].enqueued)
	if d < 0 {
		return 0
	}
	return d
}

// Remove deletes the first queued item for which match returns true,
// returning whether one was found (for cancellation of queued jobs).
func (w *WFQ) Remove(match func(payload any) bool) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	for _, q := range w.queues {
		for i, it := range q.items {
			if match(it.payload) {
				q.items = append(q.items[:i], q.items[i+1:]...)
				w.size--
				return true
			}
		}
	}
	return false
}
