package tenant

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func TestLoadAndAuthenticate(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tenants.json")
	if err := os.WriteFile(path, []byte(`{
		"tenants": [
			{"name": "alice", "api_key": "ka", "weight": 3, "insts_per_sec": 1000000},
			{"name": "bob", "api_key": "kb"}
		]
	}`), 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if r.Open() {
		t.Fatal("loaded registry should require keys")
	}
	if tn, ok := r.Authenticate("ka"); !ok || tn.Name != "alice" {
		t.Fatalf("Authenticate(ka) = %v, %v", tn, ok)
	}
	if _, ok := r.Authenticate("nope"); ok {
		t.Fatal("unknown key authenticated")
	}
	if tn, ok := r.ByName("bob"); !ok || tn.EffectiveWeight() != 1 {
		t.Fatalf("ByName(bob) = %v, %v", tn, ok)
	}
	if w := r.TotalWeight(); w != 4 {
		t.Fatalf("TotalWeight = %d, want 4", w)
	}
}

func TestLoadRejectsBadConfigs(t *testing.T) {
	cases := []string{
		`{"tenants": []}`,
		`{"tenants": [{"name": "", "api_key": "k"}]}`,
		`{"tenants": [{"name": "a", "api_key": ""}]}`,
		`{"tenants": [{"name": "a", "api_key": "k"}, {"name": "a", "api_key": "k2"}]}`,
		`{"tenants": [{"name": "a", "api_key": "k"}, {"name": "b", "api_key": "k"}]}`,
		`{"tenants": [{"name": "a", "api_key": "k", "weight": -1}]}`,
	}
	for i, body := range cases {
		path := filepath.Join(t.TempDir(), "tenants.json")
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Load(path); err == nil {
			t.Errorf("case %d: bad config loaded without error", i)
		}
	}
}

func TestSingleMode(t *testing.T) {
	r := Single()
	if !r.Open() {
		t.Fatal("Single registry should be open")
	}
	tn, ok := r.Authenticate("")
	if !ok || tn.Name != DefaultName {
		t.Fatalf("Authenticate(\"\") = %v, %v", tn, ok)
	}
	if cap := r.QueueCap(tn, 64); cap != 64 {
		t.Fatalf("single-tenant QueueCap = %d, want the whole queue", cap)
	}
}

func TestQueueCapSharesGlobalDepth(t *testing.T) {
	r, err := New([]Tenant{
		{Name: "big", APIKey: "k1", Weight: 3},
		{Name: "small", APIKey: "k2", Weight: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	big, _ := r.ByName("big")
	small, _ := r.ByName("small")
	if cap := r.QueueCap(big, 64); cap != 48 {
		t.Fatalf("big cap = %d, want 48", cap)
	}
	if cap := r.QueueCap(small, 64); cap != 16 {
		t.Fatalf("small cap = %d, want 16", cap)
	}
	small.MaxQueued = 5
	if cap := r.QueueCap(small, 64); cap != 5 {
		t.Fatalf("explicit cap = %d, want 5", cap)
	}
}

func TestChargeInstsBudget(t *testing.T) {
	r, err := New([]Tenant{{Name: "a", APIKey: "k", InstsPerSec: 1000}})
	if err != nil {
		t.Fatal(err)
	}
	tn, _ := r.ByName("a")
	now := time.Now()
	// Burst = 10s of rate = 10_000 insts.
	if ra := r.ChargeInsts(tn, 10_000, now); ra != 0 {
		t.Fatalf("burst submission shed with retry %d", ra)
	}
	// Bucket empty: next charge must shed with a deficit-derived hint.
	ra := r.ChargeInsts(tn, 2_000, now)
	if ra < 2 || ra > 3 {
		t.Fatalf("retry hint = %d, want ~2s for a 2000-inst deficit at 1000/s", ra)
	}
	// After 5 simulated seconds, 5000 tokens accrued.
	if ra := r.ChargeInsts(tn, 5_000, now.Add(5*time.Second)); ra != 0 {
		t.Fatalf("refilled bucket shed with retry %d", ra)
	}
	// Unlimited tenants never shed.
	r2, _ := New([]Tenant{{Name: "b", APIKey: "k2"}})
	tb, _ := r2.ByName("b")
	if ra := r2.ChargeInsts(tb, 1<<40, now); ra != 0 {
		t.Fatalf("unlimited tenant shed with retry %d", ra)
	}
}

func TestKeyFromAuth(t *testing.T) {
	if k := KeyFromAuth("Bearer abc", ""); k != "abc" {
		t.Fatalf("bearer key = %q", k)
	}
	if k := KeyFromAuth("", "xyz"); k != "xyz" {
		t.Fatalf("header key = %q", k)
	}
	if k := KeyFromAuth("Basic abc", ""); k != "" {
		t.Fatalf("basic auth parsed as key: %q", k)
	}
}

func TestWFQOrderRespectsWeights(t *testing.T) {
	w := NewWFQ()
	heavy := &Tenant{Name: "heavy", APIKey: "k1", Weight: 3}
	light := &Tenant{Name: "light", APIKey: "k2", Weight: 1}
	// Both backlogged with equal-cost items: dequeue order must serve
	// heavy ~3x per light.
	for i := 0; i < 40; i++ {
		if err := w.Enqueue(heavy, "H", 100, 0); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 40; i++ {
		if err := w.Enqueue(light, "L", 100, 0); err != nil {
			t.Fatal(err)
		}
	}
	heavyServed, lightServed := 0, 0
	for i := 0; i < 16; i++ {
		p, ok := w.Dequeue()
		if !ok {
			t.Fatal("dequeue failed")
		}
		if p == "H" {
			heavyServed++
		} else {
			lightServed++
		}
	}
	if heavyServed != 12 || lightServed != 4 {
		t.Fatalf("first 16 dequeues served heavy=%d light=%d, want 12/4 for 3:1 weights",
			heavyServed, lightServed)
	}
}

// TestWFQStarvationBound is the platform's isolation guarantee: a
// greedy tenant with an unbounded backlog cannot push a competing
// tenant's dispatch share below its weight fraction.
func TestWFQStarvationBound(t *testing.T) {
	w := NewWFQ()
	greedy := &Tenant{Name: "greedy", APIKey: "k1", Weight: 1}
	victim := &Tenant{Name: "victim", APIKey: "k2", Weight: 1}
	for i := 0; i < 1000; i++ {
		if err := w.Enqueue(greedy, "G", 50, 0); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ {
		if err := w.Enqueue(victim, "V", 50, 0); err != nil {
			t.Fatal(err)
		}
	}
	victimServed := 0
	for i := 0; i < 200; i++ {
		p, ok := w.Dequeue()
		if !ok {
			t.Fatal("dequeue failed")
		}
		if p == "V" {
			victimServed++
		}
	}
	// Equal weights: the victim's 100 items must all be served within
	// the first 200 dequeues (its share is 1/2), despite the greedy
	// tenant's 10x backlog.
	if victimServed != 100 {
		t.Fatalf("victim served %d of first 200 dequeues, want its full 100 (half share)", victimServed)
	}
}

func TestWFQIdleTenantGetsImmediateService(t *testing.T) {
	w := NewWFQ()
	busy := &Tenant{Name: "busy", APIKey: "k1"}
	idler := &Tenant{Name: "idler", APIKey: "k2"}
	for i := 0; i < 100; i++ {
		w.Enqueue(busy, "B", 100, 0)
	}
	// Drain half the backlog: the virtual clock advances far past zero.
	for i := 0; i < 50; i++ {
		w.Dequeue()
	}
	// A tenant arriving now must not owe the elapsed virtual time: its
	// first item's finish tag starts at V, so it is served within the
	// next two dequeues (it can tie the busy tenant's head-of-line item
	// exactly, in which case the tie-break may serve that one first) —
	// not after the 50-item backlog.
	w.Enqueue(idler, "I", 100, 0)
	p1, _ := w.Dequeue()
	p2, _ := w.Dequeue()
	if p1 != "I" && p2 != "I" {
		t.Fatalf("idle tenant's first item not in the next two dequeues (%v, %v)", p1, p2)
	}
}

func TestWFQTenantShareBound(t *testing.T) {
	w := NewWFQ()
	tn := &Tenant{Name: "a", APIKey: "k"}
	for i := 0; i < 4; i++ {
		if err := w.Enqueue(tn, i, 1, 4); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Enqueue(tn, 99, 1, 4); err != ErrTenantFull {
		t.Fatalf("over-share enqueue error = %v, want ErrTenantFull", err)
	}
	if w.TenantLen("a") != 4 {
		t.Fatalf("TenantLen = %d", w.TenantLen("a"))
	}
}

func TestWFQCloseDrains(t *testing.T) {
	w := NewWFQ()
	tn := &Tenant{Name: "a", APIKey: "k"}
	w.Enqueue(tn, 1, 1, 0)
	w.Enqueue(tn, 2, 1, 0)
	w.Close()
	if err := w.Enqueue(tn, 3, 1, 0); err != ErrClosed {
		t.Fatalf("enqueue after close = %v, want ErrClosed", err)
	}
	if p, ok := w.Dequeue(); !ok || p != 1 {
		t.Fatalf("first drain = %v, %v", p, ok)
	}
	if p, ok := w.Dequeue(); !ok || p != 2 {
		t.Fatalf("second drain = %v, %v", p, ok)
	}
	if _, ok := w.Dequeue(); ok {
		t.Fatal("dequeue on empty closed queue reported ok")
	}
}

func TestWFQConcurrent(t *testing.T) {
	w := NewWFQ()
	tenants := []*Tenant{
		{Name: "a", APIKey: "k1", Weight: 1},
		{Name: "b", APIKey: "k2", Weight: 2},
		{Name: "c", APIKey: "k3", Weight: 3},
	}
	const perTenant = 100
	var wg sync.WaitGroup
	for _, tn := range tenants {
		wg.Add(1)
		go func(tn *Tenant) {
			defer wg.Done()
			for i := 0; i < perTenant; i++ {
				if err := w.Enqueue(tn, tn.Name, 10, 0); err != nil {
					t.Errorf("enqueue: %v", err)
					return
				}
			}
		}(tn)
	}
	got := make(chan any, len(tenants)*perTenant)
	var dq sync.WaitGroup
	for i := 0; i < 4; i++ {
		dq.Add(1)
		go func() {
			defer dq.Done()
			for {
				p, ok := w.Dequeue()
				if !ok {
					return
				}
				got <- p
			}
		}()
	}
	wg.Wait()
	for w.Len() > 0 {
		time.Sleep(time.Millisecond)
	}
	w.Close()
	dq.Wait()
	close(got)
	counts := map[any]int{}
	for p := range got {
		counts[p]++
	}
	for _, tn := range tenants {
		if counts[tn.Name] != perTenant {
			t.Fatalf("tenant %s: dequeued %d, want %d", tn.Name, counts[tn.Name], perTenant)
		}
	}
}

func TestWFQRemove(t *testing.T) {
	w := NewWFQ()
	tn := &Tenant{Name: "a", APIKey: "k"}
	w.Enqueue(tn, "x", 1, 0)
	w.Enqueue(tn, "y", 1, 0)
	if !w.Remove(func(p any) bool { return p == "x" }) {
		t.Fatal("Remove did not find x")
	}
	if w.Remove(func(p any) bool { return p == "x" }) {
		t.Fatal("Remove found x twice")
	}
	if p, _ := w.Dequeue(); p != "y" {
		t.Fatalf("dequeue after remove = %v", p)
	}
}

func TestWFQOldestWait(t *testing.T) {
	w := NewWFQ()
	tn := &Tenant{Name: "a", APIKey: "k"}
	now := time.Now()
	if d := w.OldestWait("a", now); d != 0 {
		t.Fatalf("empty queue wait = %v, want 0", d)
	}
	w.Enqueue(tn, "first", 1, 0)
	time.Sleep(5 * time.Millisecond)
	w.Enqueue(tn, "second", 1, 0)

	// The head-of-line item sets the wait: strictly older than the
	// second enqueue, and measured against the caller's clock.
	d1 := w.OldestWait("a", time.Now())
	if d1 < 5*time.Millisecond {
		t.Fatalf("head-of-line wait = %v, want >= 5ms", d1)
	}
	if future := w.OldestWait("a", time.Now().Add(time.Hour)); future <= d1 {
		t.Fatalf("explicit clock ignored: %v <= %v", future, d1)
	}

	// Draining the head shortens the wait to the newer item's age.
	w.Dequeue()
	if d2 := w.OldestWait("a", time.Now()); d2 >= d1 {
		t.Fatalf("wait after dequeue = %v, want < %v", d2, d1)
	}
	w.Dequeue()
	if d := w.OldestWait("a", time.Now()); d != 0 {
		t.Fatalf("drained queue wait = %v, want 0", d)
	}
	if d := w.OldestWait("missing", time.Now()); d != 0 {
		t.Fatalf("unknown tenant wait = %v, want 0", d)
	}
}
