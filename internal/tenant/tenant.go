// Package tenant is the multi-tenant isolation layer of the job
// platform: API-key authentication, per-tenant quotas (queue share,
// sweep expansion caps, a simulated-instructions-per-second admission
// budget), and a weighted fair queueing scheduler that replaces the
// single global FIFO between the HTTP handlers and the simulation
// worker pool. One greedy tenant can fill its own queue share and burn
// its own instruction budget; it cannot push another tenant's dispatch
// share below that tenant's configured weight.
package tenant

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
	"time"
)

// DefaultName is the tenant every request maps to when the platform
// runs without a tenants file (single-tenant mode, the pre-platform
// behavior).
const DefaultName = "default"

// Tenant is one configured API client of the platform.
type Tenant struct {
	// Name identifies the tenant in metrics, job listings, and the WAL.
	Name string `json:"name"`

	// APIKey authenticates the tenant (Authorization: Bearer <key> or
	// X-API-Key). Required when loaded from a tenants file.
	APIKey string `json:"api_key"`

	// Weight is the tenant's fair-queueing weight (default 1). A tenant
	// with weight 3 gets 3× the dispatch share of a weight-1 tenant
	// while both have work queued.
	Weight int `json:"weight,omitempty"`

	// MaxQueued caps the tenant's accepted-but-unstarted jobs. 0
	// derives the cap from the tenant's weight share of the global
	// queue depth.
	MaxQueued int `json:"max_queued,omitempty"`

	// MaxSweepPoints caps one sweep's expansion for this tenant. 0
	// falls back to the server-wide cap.
	MaxSweepPoints int `json:"max_sweep_points,omitempty"`

	// InstsPerSec is the tenant's admission budget in simulated
	// instructions per second (token bucket, burst = 10 seconds of
	// rate). 0 = unlimited. Submissions beyond the budget are shed with
	// 429 + Retry-After rather than queued.
	InstsPerSec int64 `json:"insts_per_sec,omitempty"`

	// Proxy marks a tenant trusted to submit work on behalf of other
	// tenants (the cluster coordinator's worker credential): requests
	// it authenticates may carry an X-Lvpd-Tenant header naming the
	// tenant to attribute the work to.
	Proxy bool `json:"proxy,omitempty"`
}

// EffectiveWeight returns the tenant's WFQ weight, defaulting to 1.
func (t *Tenant) EffectiveWeight() int {
	if t == nil || t.Weight <= 0 {
		return 1
	}
	return t.Weight
}

// Registry resolves API keys to tenants. Immutable after load, so
// lookups need no locking.
type Registry struct {
	byKey  map[string]*Tenant
	byName map[string]*Tenant
	list   []*Tenant
	open   bool // single-tenant mode: no key required

	mu      sync.Mutex
	buckets map[string]*bucket
}

// Single returns the single-tenant registry used when no tenants file
// is configured: every request, authenticated or not, is the default
// tenant with weight 1 and no quotas.
func Single() *Registry {
	def := &Tenant{Name: DefaultName, Weight: 1}
	return &Registry{
		byKey:   map[string]*Tenant{},
		byName:  map[string]*Tenant{DefaultName: def},
		list:    []*Tenant{def},
		open:    true,
		buckets: map[string]*bucket{},
	}
}

// New builds a registry from an explicit tenant list (for tests and
// embedding). Validation matches Load.
func New(tenants []Tenant) (*Registry, error) {
	if len(tenants) == 0 {
		return nil, fmt.Errorf("tenant: registry needs at least one tenant")
	}
	r := &Registry{
		byKey:   make(map[string]*Tenant, len(tenants)),
		byName:  make(map[string]*Tenant, len(tenants)),
		buckets: map[string]*bucket{},
	}
	for i := range tenants {
		t := tenants[i]
		if t.Name == "" {
			return nil, fmt.Errorf("tenant: tenant %d has no name", i)
		}
		if t.APIKey == "" {
			return nil, fmt.Errorf("tenant: tenant %q has no api_key", t.Name)
		}
		if t.Weight < 0 || t.MaxQueued < 0 || t.MaxSweepPoints < 0 || t.InstsPerSec < 0 {
			return nil, fmt.Errorf("tenant: tenant %q has a negative quota", t.Name)
		}
		if _, dup := r.byName[t.Name]; dup {
			return nil, fmt.Errorf("tenant: duplicate tenant name %q", t.Name)
		}
		if _, dup := r.byKey[t.APIKey]; dup {
			return nil, fmt.Errorf("tenant: tenants %q shares an api_key with an earlier tenant", t.Name)
		}
		r.byName[t.Name] = &t
		r.byKey[t.APIKey] = &t
		r.list = append(r.list, &t)
	}
	return r, nil
}

// tenantsFile is the on-disk schema of -tenants-file.
type tenantsFile struct {
	Tenants []Tenant `json:"tenants"`
}

// Load reads a tenants file: {"tenants": [{"name": ..., "api_key":
// ..., "weight": ..., ...}]}.
func Load(path string) (*Registry, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("tenant: reading tenants file: %w", err)
	}
	var tf tenantsFile
	if err := json.Unmarshal(b, &tf); err != nil {
		return nil, fmt.Errorf("tenant: parsing tenants file %s: %w", path, err)
	}
	r, err := New(tf.Tenants)
	if err != nil {
		return nil, fmt.Errorf("tenant: %s: %w", path, err)
	}
	return r, nil
}

// Open reports whether the registry runs in single-tenant mode (no
// authentication required).
func (r *Registry) Open() bool { return r.open }

// Authenticate resolves an API key. In single-tenant mode every key
// (including none) resolves to the default tenant.
func (r *Registry) Authenticate(apiKey string) (*Tenant, bool) {
	if r.open {
		return r.byName[DefaultName], true
	}
	t, ok := r.byKey[apiKey]
	return t, ok
}

// ByName resolves a tenant name (for WAL replay and proxy
// attribution).
func (r *Registry) ByName(name string) (*Tenant, bool) {
	t, ok := r.byName[name]
	return t, ok
}

// Default returns the tenant replayed or proxied work falls back to
// when its recorded tenant no longer exists: the default tenant if
// configured, else the first tenant.
func (r *Registry) Default() *Tenant {
	if t, ok := r.byName[DefaultName]; ok {
		return t
	}
	return r.list[0]
}

// Tenants lists every tenant, sorted by name.
func (r *Registry) Tenants() []*Tenant {
	out := make([]*Tenant, len(r.list))
	copy(out, r.list)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// TotalWeight sums every tenant's effective weight.
func (r *Registry) TotalWeight() int {
	sum := 0
	for _, t := range r.list {
		sum += t.EffectiveWeight()
	}
	return sum
}

// QueueCap returns the tenant's queued-job cap given the global queue
// depth: MaxQueued when set, otherwise the tenant's weight share of
// the global depth (minimum 1). In single-tenant mode the sole tenant
// owns the whole queue.
func (r *Registry) QueueCap(t *Tenant, globalDepth int) int {
	if t.MaxQueued > 0 {
		return t.MaxQueued
	}
	total := r.TotalWeight()
	if total <= 0 {
		total = 1
	}
	cap := globalDepth * t.EffectiveWeight() / total
	if cap < 1 {
		cap = 1
	}
	return cap
}

// bucket is a token bucket in simulated instructions.
type bucket struct {
	tokens float64
	last   time.Time
}

// instsBurstSeconds sizes a tenant's token bucket: a fresh (or idle)
// tenant can submit this many seconds of its rate at once before the
// budget gates it to the steady rate.
const instsBurstSeconds = 10

// ChargeInsts debits a job's instruction budget against the tenant's
// insts/sec token bucket. It returns 0 when admitted, or the number of
// seconds until enough budget accrues (the Retry-After hint) when the
// tenant is over its rate. Unlimited tenants always admit.
func (r *Registry) ChargeInsts(t *Tenant, insts uint64, now time.Time) (retryAfter int) {
	if t == nil || t.InstsPerSec <= 0 {
		return 0
	}
	rate := float64(t.InstsPerSec)
	burst := rate * instsBurstSeconds
	r.mu.Lock()
	defer r.mu.Unlock()
	b, ok := r.buckets[t.Name]
	if !ok {
		b = &bucket{tokens: burst, last: now}
		r.buckets[t.Name] = b
	}
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens += dt * rate
		if b.tokens > burst {
			b.tokens = burst
		}
	}
	b.last = now
	cost := float64(insts)
	if b.tokens < cost {
		deficit := cost - b.tokens
		secs := int(deficit/rate) + 1
		if secs > 3600 {
			secs = 3600
		}
		return secs
	}
	b.tokens -= cost
	return 0
}

// KeyFromAuth extracts the API key from Authorization ("Bearer <key>")
// or X-API-Key header values; empty when neither is present.
func KeyFromAuth(authorization, xAPIKey string) string {
	if xAPIKey != "" {
		return xAPIKey
	}
	const prefix = "Bearer "
	if strings.HasPrefix(authorization, prefix) {
		return strings.TrimSpace(authorization[len(prefix):])
	}
	return ""
}
