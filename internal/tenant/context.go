package tenant

import "context"

type ctxKey struct{}

// NewContext attaches the authenticated tenant to a request context.
func NewContext(ctx context.Context, t *Tenant) context.Context {
	return context.WithValue(ctx, ctxKey{}, t)
}

// FromContext returns the tenant attached by NewContext, or nil.
func FromContext(ctx context.Context) *Tenant {
	t, _ := ctx.Value(ctxKey{}).(*Tenant)
	return t
}
