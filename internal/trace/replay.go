package trace

import "repro/internal/mem"

// Replay is an in-memory recording of a generator's instruction stream
// that can be rewound and consumed again without re-running the
// kernels. It exists for steady-state benchmarking and repeated-run
// tooling: generation costs both time and allocations (the emitter's
// buffers, the kernels' working state), and a Replay moves all of that
// out of the measured region — Rewind and every Next are allocation
// free.
type Replay struct {
	insts []Inst
	mem   *mem.Backing
	pos   int
}

// Record drains gen (up to max instructions; 0 means the generator's
// own end of stream) into a replayable trace. The architectural memory
// image is snapshotted before the first instruction is generated, so a
// replayed run observes the same Run-start image a fresh generator
// would present.
func Record(gen Generator, max uint64) *Replay {
	r := &Replay{mem: gen.Mem().Clone()}
	var in Inst
	for (max == 0 || uint64(len(r.insts)) < max) && gen.Next(&in) {
		r.insts = append(r.insts, in)
	}
	return r
}

// Mem implements Generator. Unlike a live generator, the image is the
// Run-start snapshot and does not advance with the stream; consumers
// that apply stores must do so on their own copy (the pipeline does).
// The image is shared across rewinds, so callers must not mutate it.
func (r *Replay) Mem() *mem.Backing { return r.mem }

// Next implements Generator.
func (r *Replay) Next(in *Inst) bool {
	if r.pos >= len(r.insts) {
		return false
	}
	*in = r.insts[r.pos]
	r.pos++
	return true
}

// Rewind restarts the stream from the first instruction.
func (r *Replay) Rewind() { r.pos = 0 }

// Len returns the number of recorded instructions.
func (r *Replay) Len() int { return len(r.insts) }
