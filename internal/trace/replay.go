package trace

import "repro/internal/mem"

// Replay is an in-memory recording of a generator's instruction stream
// that can be rewound and consumed again without re-running the
// kernels. It exists for steady-state benchmarking and repeated-run
// tooling: generation costs both time and allocations (the emitter's
// buffers, the kernels' working state), and a Replay moves all of that
// out of the measured region — Rewind and every Next are allocation
// free.
type Replay struct {
	insts []Inst
	mem   *mem.Backing
	pos   int
}

// Record drains gen (up to max instructions; 0 means the generator's
// own end of stream) into a replayable trace. The architectural memory
// image is snapshotted before the first instruction is generated, so a
// replayed run observes the same Run-start image a fresh generator
// would present.
func Record(gen Generator, max uint64) *Replay {
	r := &Replay{mem: gen.Mem().Clone()}
	var in Inst
	for (max == 0 || uint64(len(r.insts)) < max) && gen.Next(&in) {
		r.insts = append(r.insts, in)
	}
	return r
}

// Mem implements Generator. Unlike a live generator, the image is the
// Run-start snapshot and does not advance with the stream; consumers
// that apply stores must do so on their own copy (the pipeline does).
// The image is shared across rewinds, so callers must not mutate it.
func (r *Replay) Mem() *mem.Backing { return r.mem }

// Next implements Generator.
func (r *Replay) Next(in *Inst) bool {
	if r.pos >= len(r.insts) {
		return false
	}
	*in = r.insts[r.pos]
	r.pos++
	return true
}

// Rewind restarts the stream from the first instruction.
func (r *Replay) Rewind() { r.pos = 0 }

// NewReplay wraps an already-materialized instruction stream and its
// start-of-run memory image as a Replay. It is the constructor trace
// ingestion uses: a converter that decoded an external trace hands the
// finished instruction slice and the reconstructed pre-image straight
// to the replay machinery instead of re-recording through a Generator.
// Both arguments are captured, not copied — the caller must not mutate
// them afterwards (the same read-only contract Cursor documents).
func NewReplay(insts []Inst, image *mem.Backing) *Replay {
	return &Replay{insts: insts, mem: image}
}

// Cursor returns an independent read position over the same recording.
// The instruction slice and the Run-start memory image are shared, not
// copied, so cursors are cheap enough to hand one to every run. Sharing
// is safe for concurrent replays because both shared structures are
// read-only by contract: the slice is never written after Record, and
// consumers that apply stores do so on their own copy of the image (the
// pipeline clones or CopyFroms it at Run start; Backing.CopyFrom reads
// only the source's pages, never its internal read memo).
func (r *Replay) Cursor() *Replay {
	return &Replay{insts: r.insts, mem: r.mem}
}

// CursorN returns an independent cursor bounded to the first n
// instructions of the recording (0 or past-the-end means the whole
// recording). External workloads resolve Build(n) through this: the
// registered trace is recorded once and every budget replays a prefix.
func (r *Replay) CursorN(n uint64) *Replay {
	insts := r.insts
	if n > 0 && n < uint64(len(insts)) {
		insts = insts[:n]
	}
	return &Replay{insts: insts, mem: r.mem}
}

// Len returns the number of recorded instructions.
func (r *Replay) Len() int { return len(r.insts) }

// Remaining exposes the not-yet-consumed tail of the recording as a
// slice, letting batch consumers (the pipeline run loop) walk the
// instructions in place instead of copying each through Next. Callers
// must treat the slice as read-only — it is shared across rewinds and,
// for artifact-backed replays, across concurrent cursors — and must
// report consumption via Advance to keep Next/Remaining coherent.
func (r *Replay) Remaining() []Inst { return r.insts[r.pos:] }

// Advance consumes n instructions from the stream, as if Next had been
// called n times. n past the end clamps to the end.
func (r *Replay) Advance(n int) {
	r.pos += n
	if r.pos > len(r.insts) {
		r.pos = len(r.insts)
	}
}
