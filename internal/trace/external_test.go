package trace

import (
	"bytes"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/mem"
)

func TestSplitStreamNameMalformed(t *testing.T) {
	cases := []struct {
		stream string
		name   string
		salt   int
	}{
		{"gcc2k", "gcc2k", 0},
		{"gcc2k#3", "gcc2k", 3},
		{"gcc2k#0", "gcc2k", 0},
		{"a#b#2", "a#b", 2},
		{"ext:abc123#4", "ext:abc123", 4},
		// Malformed suffixes are literal workload names, never a salted
		// stream of workload "" (or of a truncated name).
		{"#3", "#3", 0},
		{"#", "#", 0},
		{"name#", "name#", 0},
		{"name#-1", "name#-1", 0},
		{"name#x", "name#x", 0},
		{"name#3x", "name#3x", 0},
		{"name#+3", "name#+3", 0},
		{"", "", 0},
	}
	for _, tc := range cases {
		name, salt := SplitStreamName(tc.stream)
		if name != tc.name || salt != tc.salt {
			t.Errorf("SplitStreamName(%q) = (%q, %d), want (%q, %d)",
				tc.stream, name, salt, tc.name, tc.salt)
		}
		// Well-formed results must round-trip through StreamName.
		if salt > 0 {
			if rt := StreamName(name, salt); rt != tc.stream {
				t.Errorf("StreamName(%q, %d) = %q, want %q", name, salt, rt, tc.stream)
			}
		}
	}
}

// extReplay builds a small recording to register as an external trace.
func extReplay(n int, seed uint64) *Replay {
	insts := make([]Inst, n)
	for i := range insts {
		insts[i] = Inst{PC: uint64(0x1000 + 4*i), Op: OpALU, Dst: 1, Src1: 2, Lat: 1}
	}
	return NewReplay(insts, mem.NewBacking(seed))
}

func TestExternalRegistryValidation(t *testing.T) {
	rep := extReplay(4, 0)
	cases := []struct {
		name string
		rep  *Replay
	}{
		{"gcc2k", rep},                           // no prefix
		{"ext:", rep},                            // empty hash
		{"ext:abc#1", rep},                       // reserved salt separator
		{"ext:" + strings.Repeat("a", 200), rep}, // too long
		{"ext:abc", nil},                         // nil recording
		{"ext:abc", NewReplay(nil, mem.NewBacking(0))}, // empty recording
	}
	for _, tc := range cases {
		if ok, err := RegisterExternal(tc.name, tc.rep, true); err == nil || ok {
			t.Errorf("RegisterExternal(%q) accepted invalid registration", tc.name)
		}
	}
}

func TestExternalRegistryReplaceRules(t *testing.T) {
	const name = "ext:replacerules"
	t.Cleanup(func() { UnregisterExternal(name) })

	register := func(n int, complete bool) bool {
		t.Helper()
		ok, err := RegisterExternal(name, extReplay(n, 0), complete)
		if err != nil {
			t.Fatal(err)
		}
		return ok
	}
	length := func() uint64 {
		n, _, ok := ExternalLen(name)
		if !ok {
			t.Fatal("not registered")
		}
		return n
	}

	if !register(10, false) {
		t.Fatal("first registration rejected")
	}
	// A longer incomplete recording supersedes a shorter one.
	if !register(20, false) || length() != 20 {
		t.Fatalf("longer incomplete recording did not supersede; len=%d", length())
	}
	// A shorter incomplete recording never downgrades.
	if register(5, false) || length() != 20 {
		t.Fatalf("shorter incomplete recording superseded; len=%d", length())
	}
	// A complete recording is authoritative even when shorter: the
	// stream genuinely ends there.
	if !register(15, true) || length() != 15 {
		t.Fatalf("complete recording did not supersede; len=%d", length())
	}
	// Nothing supersedes a complete recording.
	if register(100, false) || length() != 15 {
		t.Fatalf("incomplete recording superseded a complete one; len=%d", length())
	}
	if n, complete, ok := ExternalLen(name); !ok || !complete || n != 15 {
		t.Fatalf("ExternalLen = (%d, %v, %v), want (15, true, true)", n, complete, ok)
	}

	found := false
	for _, n := range ExternalNames() {
		if n == name {
			found = true
		}
	}
	if !found {
		t.Error("ExternalNames omits the registration")
	}

	UnregisterExternal(name)
	if _, ok := ByName(name); ok {
		t.Error("ByName resolves after UnregisterExternal")
	}
}

func TestExternalStreamResolution(t *testing.T) {
	const name = "ext:resolution"
	t.Cleanup(func() { UnregisterExternal(name) })
	if _, err := RegisterExternal(name, extReplay(8, 0), true); err != nil {
		t.Fatal(err)
	}

	w, ok := ByName(name)
	if !ok || w.Profile != ProfileExternal || w.Name != name {
		t.Fatalf("ByName = %+v, %v", w, ok)
	}
	count := func(g Generator) int {
		var in Inst
		n := 0
		for g.Next(&in) {
			n++
		}
		return n
	}
	if n := count(w.Build(3)); n != 3 {
		t.Errorf("Build(3) replayed %d instructions", n)
	}
	if n := count(w.Build(0)); n != 8 {
		t.Errorf("Build(0) replayed %d instructions, want the whole recording", n)
	}
	if n := count(w.Build(100)); n != 8 {
		t.Errorf("Build(100) replayed %d instructions, want 8", n)
	}
	// Salted streams of an external trace replay the same recording:
	// there is no recipe to re-seed.
	g, ok := BuildStream(name+"#2", 5)
	if !ok {
		t.Fatal("BuildStream rejected a salted external stream")
	}
	if n := count(g); n != 5 {
		t.Errorf("salted external stream replayed %d instructions, want 5", n)
	}
}

// TestTraceFileV2RoundTrip covers the explicit pre-image header: a
// recording whose memory image already holds written words must survive
// WriteTrace/NewTraceReader with the image intact.
func TestTraceFileV2RoundTrip(t *testing.T) {
	img := mem.NewBacking(99)
	img.Write(0x8000, 8, 0xDEADBEEFCAFEF00D)
	img.Write(0x8010, 8, 42)
	img.Write(0x20000, 4, 0x1234) // second page
	insts := []Inst{
		{PC: 1, Op: OpLoad, Dst: 1, Addr: 0x8000, Size: 8, Value: 0xDEADBEEFCAFEF00D, Lat: 1},
		{PC: 2, Op: OpStore, Src1: 1, Addr: 0x8018, Size: 8, Value: 7, Lat: 1},
	}
	rep := NewReplay(insts, img)

	var buf bytes.Buffer
	n, err := WriteTrace(&buf, rep.Cursor())
	if err != nil {
		t.Fatal(err)
	}
	if n != uint64(len(insts)) {
		t.Fatalf("wrote %d instructions, want %d", n, len(insts))
	}
	// Version byte: uvarint right after the 4-byte magic.
	if v := buf.Bytes()[4]; v != traceVersionImage {
		t.Fatalf("pre-image recording wrote version %d, want %d", v, traceVersionImage)
	}

	rd, err := NewTraceReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got := rd.Mem().Footprint(); got != img.Footprint() {
		t.Errorf("reconstructed footprint %d, want %d", got, img.Footprint())
	}
	for _, addr := range []uint64{0x8000, 0x8010, 0x20000, 0x9999} {
		if got, want := rd.Mem().Read(addr, 8), img.Read(addr, 8); got != want {
			t.Errorf("image[%#x] = %#x, want %#x", addr, got, want)
		}
	}
	var in Inst
	for i := range insts {
		if !rd.Next(&in) {
			t.Fatalf("stream ended at %d: %v", i, rd.Err())
		}
		if in != insts[i] {
			t.Errorf("instruction %d: got %+v, want %+v", i, in, insts[i])
		}
	}
	if rd.Next(&in) || rd.Err() != nil {
		t.Fatalf("expected clean end of stream, err=%v", rd.Err())
	}

	// Synthetic generators (empty start-of-stream footprint) must keep
	// producing version 1 — byte-identical artifacts across releases.
	w, _ := ByName("gcc2k")
	var sbuf bytes.Buffer
	if _, err := WriteTrace(&sbuf, w.Build(500)); err != nil {
		t.Fatal(err)
	}
	if v := sbuf.Bytes()[4]; v != traceVersion {
		t.Fatalf("synthetic recording wrote version %d, want %d", v, traceVersion)
	}
}

func TestArtifactStoreCorruptRegen(t *testing.T) {
	dir := t.TempDir()
	quiet := slog.New(slog.NewTextHandler(io.Discard, nil))

	s, err := NewArtifactStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	s.SetLogger(quiet)
	const name, insts = "gcc2k", 2_000
	if _, err := s.Cursor(name, insts); err != nil {
		t.Fatal(err)
	}
	key := ArtifactKey(name, insts)
	path := filepath.Join(dir, key+artifactFileSuffix)
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("artifact not persisted: %v", err)
	}
	// Corrupt the cache file in place.
	if err := os.WriteFile(path, []byte("not a gzip artifact"), 0o644); err != nil {
		t.Fatal(err)
	}

	// A fresh store (cold memory) must detect the corruption, count it,
	// and regenerate.
	s2, err := NewArtifactStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	s2.SetLogger(quiet)
	cur, err := s2.Cursor(name, insts)
	if err != nil {
		t.Fatalf("regeneration failed: %v", err)
	}
	if cur.Len() != insts {
		t.Fatalf("regenerated recording has %d insts, want %d", cur.Len(), insts)
	}
	st := s2.Stats()
	if st.CorruptRegens != 1 {
		t.Errorf("CorruptRegens = %d, want 1", st.CorruptRegens)
	}
	if st.Generated != 1 || st.DiskHits != 0 {
		t.Errorf("stats = %+v, want one generation and no disk hits", st)
	}
	// The regenerated artifact must be valid again for the next store.
	s3, err := NewArtifactStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	s3.SetLogger(quiet)
	if _, err := s3.Cursor(name, insts); err != nil {
		t.Fatal(err)
	}
	if st := s3.Stats(); st.DiskHits != 1 || st.CorruptRegens != 0 {
		t.Errorf("stats after regeneration = %+v, want one clean disk hit", st)
	}
}

func TestPutRecordingAndRehydrate(t *testing.T) {
	const name = "ext:rehydrate"
	t.Cleanup(func() { UnregisterExternal(name) })
	dir := t.TempDir()
	quiet := slog.New(slog.NewTextHandler(io.Discard, nil))

	// A recording with a reconstructed pre-image (written words), so the
	// persisted artifact exercises the version-2 trace path end to end.
	img := mem.NewBacking(7)
	img.Write(0x4000, 8, 0xFEEDFACE)
	insts := []Inst{
		{PC: 1, Op: OpLoad, Dst: 1, Addr: 0x4000, Size: 8, Value: 0xFEEDFACE, Lat: 1},
		{PC: 2, Op: OpALU, Dst: 2, Src1: 1, Lat: 1},
	}
	rep := NewReplay(insts, img)

	s, err := NewArtifactStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	s.SetLogger(quiet)
	key, err := s.PutRecording(name, rep)
	if err != nil {
		t.Fatal(err)
	}
	if key != ArtifactKey(name, uint64(len(insts))) {
		t.Fatalf("PutRecording key %q, want content address", key)
	}
	if st := s.Stats(); st.Received != 1 {
		t.Errorf("Received = %d, want 1", st.Received)
	}

	// Simulate a restart: registry empty, fresh store over the same dir.
	UnregisterExternal(name)
	s2, err := NewArtifactStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	s2.SetLogger(quiet)
	n, err := s2.RehydrateExternal()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("RehydrateExternal registered %d names, want 1", n)
	}
	w, ok := ByName(name)
	if !ok {
		t.Fatal("rehydrated name does not resolve")
	}
	g := w.Build(0)
	if got := g.Mem().Read(0x4000, 8); got != 0xFEEDFACE {
		t.Errorf("rehydrated pre-image[0x4000] = %#x, want 0xFEEDFACE", got)
	}
	var in Inst
	for i := range insts {
		if !g.Next(&in) || in != insts[i] {
			t.Fatalf("rehydrated instruction %d = %+v, want %+v", i, in, insts[i])
		}
	}

	// A corrupted external artifact is counted, not registered.
	UnregisterExternal(name)
	path := filepath.Join(dir, key+artifactFileSuffix)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Truncate mid-stream: the embedded trace can no longer reach its
	// terminator, which ReadArtifact must report.
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	s3, err := NewArtifactStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	s3.SetLogger(quiet)
	if n, err := s3.RehydrateExternal(); err != nil || n != 0 {
		t.Fatalf("RehydrateExternal on corrupt artifact = (%d, %v), want (0, nil)", n, err)
	}
	if st := s3.Stats(); st.CorruptRegens != 1 {
		t.Errorf("CorruptRegens = %d, want 1", st.CorruptRegens)
	}
	if _, ok := ByName(name); ok {
		t.Error("corrupt artifact registered an external name")
	}
}
