package trace

import (
	"fmt"
	"sort"

	"repro/internal/mem"
)

// Workload is a named synthetic benchmark standing in for one of the
// paper's 85 workloads (Table II / Figure 12). Build constructs a fresh
// deterministic generator producing at most n instructions.
type Workload struct {
	Name    string
	Profile string
	Build   func(n uint64) Generator
}

// profile names group workloads by the behaviour class of their source
// suite, mirroring the paper's benchmark pool.
const (
	profMedia    = "media"    // streaming codecs: strided + constant tables
	profFP       = "fp"       // SPEC FP: long strided sweeps, mul/div chains
	profInt      = "int"      // SPEC INT: branchy, mixed predictability
	profPointer  = "pointer"  // pointer chasing, graph/sparse codes
	profJS       = "js"       // browser/JS: polymorphic call sites, objects
	profEmbedded = "embedded" // EEMBC: small tight loops, very regular
)

// workloadTable maps every workload name from the paper's Figure 12 to
// a behaviour profile.
var workloadTable = []struct {
	name    string
	profile string
}{
	{"a2time", profEmbedded}, {"aifirf", profEmbedded}, {"apsi", profFP},
	{"astar", profPointer}, {"avmshell", profJS}, {"basefp", profEmbedded},
	{"bezier", profMedia}, {"browsermark", profJS}, {"bzip2k", profInt},
	{"bzip2k6", profInt}, {"calculix", profFP}, {"canrdr", profEmbedded},
	{"cjpeg", profMedia}, {"codeload", profPointer}, {"coremark", profEmbedded},
	{"crafty", profInt}, {"dealII", profFP}, {"dither", profMedia},
	{"djpeg", profMedia}, {"dromaeo", profJS}, {"earleyboyer", profJS},
	{"eon", profInt}, {"equake", profFP}, {"facerec", profFP},
	{"fbital", profEmbedded}, {"filecycler", profPointer}, {"fma3d", profFP},
	{"gamess", profFP}, {"gap", profInt}, {"gbemu", profJS},
	{"gcc2k", profInt}, {"gcc2k6", profInt}, {"gobmk", profInt},
	{"gromacs", profFP}, {"gzip", profInt}, {"h264ref", profMedia},
	{"hmmer", profInt}, {"huffde", profMedia}, {"ibench", profJS},
	{"iirflt", profEmbedded}, {"leslie3d", profFP}, {"linpack", profFP},
	{"lucas", profFP}, {"mandreel", profJS}, {"matrix", profFP},
	{"mcf", profPointer}, {"mesa", profFP}, {"mp3player", profMedia},
	{"mp4dec", profMedia}, {"mp4enc", profMedia}, {"mpeg2dec", profMedia},
	{"mpeg2enc", profMedia}, {"mplayer", profMedia}, {"namd", profFP},
	{"nat", profPointer}, {"omnetpp", profPointer}, {"parser", profInt},
	{"pdfjs", profJS}, {"perlbench", profInt}, {"perlbmk", profInt},
	{"pktcheck", profEmbedded}, {"pntrch", profPointer}, {"povray", profFP},
	{"regexp", profJS}, {"rotate", profMedia}, {"routelookup", profPointer},
	{"rspeed", profEmbedded}, {"scimark", profFP}, {"sjeng", profInt},
	{"soplex", profPointer}, {"sphinx3", profFP}, {"splay", profPointer},
	{"sunspider", profJS}, {"tonto", profFP}, {"twolf", profInt},
	{"typescript", profJS}, {"v8", profJS}, {"v8shell", profJS},
	{"vortex", profInt}, {"vpr", profInt}, {"wrf", profFP},
	{"wupwise", profFP}, {"xalancbmk", profPointer}, {"zeusmp", profFP},
	{"zlib", profInt},
}

// fnv1a hashes a workload name into its jitter seed.
func fnv1a(s string) uint64 {
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	return h
}

// Workloads returns the full benchmark pool, sorted by name.
func Workloads() []Workload {
	out := make([]Workload, 0, len(workloadTable))
	for _, row := range workloadTable {
		out = append(out, newWorkload(row.name, row.profile))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ByName returns the named workload: one of the 85 synthetic recipes,
// or a registered external (uploaded) trace under its "ext:<hash>"
// name.
func ByName(name string) (Workload, bool) {
	if IsExternalName(name) {
		return externalByName(name)
	}
	for _, row := range workloadTable {
		if row.name == name {
			return newWorkload(row.name, row.profile), true
		}
	}
	return Workload{}, false
}

// Names returns all workload names, sorted.
func Names() []string {
	ws := Workloads()
	names := make([]string, len(ws))
	for i, w := range ws {
		names[i] = w.Name
	}
	return names
}

func newWorkload(name, profile string) Workload {
	return Workload{
		Name:    name,
		Profile: profile,
		Build: func(n uint64) Generator {
			return buildProfile(name, profile, 0, n)
		},
	}
}

// region returns the base address of a kernel's private memory region.
// Regions are 16MB apart, comfortably exceeding any working set.
func region(i int) uint64 { return 0x1000_0000 + uint64(i)*(16<<20) }

// saltMix finalizes a salted seed (SplitMix64's finalizer): every bit
// of the salt perturbs every bit of the seed, so salted streams share
// nothing with the base stream beyond the kernel-mix recipe.
func saltMix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// streamSeed derives the construction seed of a workload's salt-k
// stream. It seeds everything the stream touches — kernel jitter,
// value sequences, AND the backing memory's fill image — so it is also
// what FillSeed must return for the stream's name: a trace artifact
// records this seed, and replay reconstructs the same memory image a
// live generator would present.
func streamSeed(name string, salt int) uint64 {
	seed := fnv1a(name)
	if salt != 0 {
		seed = saltMix(seed ^ uint64(salt)*0x9E3779B97F4A7C15)
	}
	return seed
}

// buildProfile instantiates the kernel mix for a workload. The name
// hash jitters working-set sizes, trip counts and weights so the 85
// workloads form a spread of behaviours rather than six identical
// clones — matching the per-workload variance in the paper's Figure 12.
// A non-zero salt re-seeds the whole construction (kernel jitter,
// memory contents, value sequences), producing an independent stream of
// the same behaviour class — SMT contexts running "the same" workload
// each get their own salt so they are not lockstep clones. Salt 0 is
// the canonical stream, bit-identical to what Build always produced.
func buildProfile(name, profile string, salt int, n uint64) Generator {
	seed := streamSeed(name, salt)
	r := xs(seed | 1)
	jit := func(lo, hi int) int { return lo + r.intn(hi-lo+1) }

	memory := mem.NewBacking(seed)
	var slots []kernelSlot
	ki := 0
	add := func(weight int, mk func(pc uint64, rw regWindow, reg uint64) kernel) {
		pc := 0x40_0000 + uint64(ki)*0x1_0000
		rw := regWindow{base: Reg(1 + (ki*3)%28)}
		if weight > 0 {
			slots = append(slots, kernelSlot{k: mk(pc, rw, region(ki)), weight: weight})
		}
		ki++
	}
	// addN instantiates several copies of a kernel family with
	// independent PCs, registers and memory regions — real programs
	// have many loop nests of each flavour, which is what pressures
	// finite predictor tables and produces the capacity knees of
	// Figure 3.
	addN := func(copies, weight int, mk func(pc uint64, rw regWindow, reg uint64) kernel) {
		for c := 0; c < copies; c++ {
			add(weight, mk)
		}
	}

	stride := func(length, strideLo, strideHi int, size uint8) func(uint64, regWindow, uint64) kernel {
		return func(pc uint64, rw regWindow, reg uint64) kernel {
			return newStrideKernel(pc, rw, reg, jit(length/2, length), uint64(jit(strideLo, strideHi)), size)
		}
	}
	indirect := func(n int) func(uint64, regWindow, uint64) kernel {
		return func(pc uint64, rw regWindow, reg uint64) kernel {
			return newIndirectKernel(pc, rw, reg, jit(n/2, n), seed^pc)
		}
	}
	consts := func(lo, hi int) func(uint64, regWindow, uint64) kernel {
		return func(pc uint64, rw regWindow, reg uint64) kernel {
			return newConstKernel(pc, rw, reg, jit(lo, hi))
		}
	}
	listing1 := func() func(uint64, regWindow, uint64) kernel {
		return func(pc uint64, rw regWindow, reg uint64) kernel {
			return newListing1Kernel(pc, rw, reg, jit(64, 128))
		}
	}
	ctxval := func(lo, hi int) func(uint64, regWindow, uint64) kernel {
		return func(pc uint64, rw regWindow, reg uint64) kernel {
			return newCtxValueKernel(pc, rw, reg, jit(lo, hi))
		}
	}
	seqchase := func(lo, hi int) func(uint64, regWindow, uint64) kernel {
		return func(pc uint64, rw regWindow, reg uint64) kernel {
			return newSeqChaseKernel(pc, rw, reg, jit(lo, hi), 64)
		}
	}
	chase := func(lo, hi int) func(uint64, regWindow, uint64) kernel {
		return func(pc uint64, rw regWindow, reg uint64) kernel {
			return newChaseKernel(pc, rw, reg, jit(lo, hi), seed^pc)
		}
	}
	callsite := func(sitesHi int) func(uint64, regWindow, uint64) kernel {
		return func(pc uint64, rw regWindow, reg uint64) kernel {
			return newCallsiteKernel(pc, rw, reg, jit(2, sitesHi), jit(24, 64))
		}
	}
	ringbuf := func(lo, hi int) func(uint64, regWindow, uint64) kernel {
		return func(pc uint64, rw regWindow, reg uint64) kernel {
			return newRingbufKernel(pc, rw, reg, jit(lo, hi), seed^pc)
		}
	}
	flaky := func() func(uint64, regWindow, uint64) kernel {
		return func(pc uint64, rw regWindow, reg uint64) kernel {
			return newFlakyKernel(pc, rw, reg, jit(30, 60), seed^pc)
		}
	}
	random := func(span uint64) func(uint64, regWindow, uint64) kernel {
		return func(pc uint64, rw regWindow, reg uint64) kernel {
			return newRandomKernel(pc, rw, reg, span, seed^pc)
		}
	}
	alu := func() func(uint64, regWindow, uint64) kernel {
		return func(pc uint64, rw regWindow, reg uint64) kernel {
			return newALUKernel(pc, rw)
		}
	}
	storeupd := func() func(uint64, regWindow, uint64) kernel {
		return func(pc uint64, rw regWindow, reg uint64) kernel {
			return newStoreUpdateKernel(pc, rw, reg)
		}
	}

	switch profile {
	case profMedia:
		addN(4, jit(2, 3), stride(16384, 2, 8, 4))
		addN(2, 2, indirect(1024))
		addN(2, 2, consts(8, 16))
		addN(2, 2, listing1())
		addN(2, jit(1, 2), ctxval(8, 16))
		addN(2, 2, alu())
		addN(1, 1, flaky())
	case profFP:
		addN(5, jit(2, 3), stride(65536, 8, 8, 8))
		addN(3, 2, indirect(1536))
		addN(1, 2, ringbuf(1024, 2048))
		addN(2, 2, consts(8, 20))
		addN(3, 2, alu())
		addN(2, 1, ctxval(6, 12))
		addN(1, 1, random(1<<19))
	case profInt:
		addN(3, 2, consts(10, 20))
		addN(3, 2, ctxval(8, 16))
		addN(1, 3, seqchase(160, 288))
		addN(3, 3, ringbuf(1024, 2048))
		addN(1, 1, flaky())
		addN(1, 1, random(1<<19))
		addN(2, 2, stride(2048, 1, 4, 4))
		addN(2, 2, alu())
		addN(1, 1, storeupd())
	case profPointer:
		addN(2, 3, seqchase(160, 288))
		addN(1, 2, ringbuf(1024, 2048))
		addN(3, 2, chase(256, 512))
		addN(2, 2, indirect(1024))
		addN(1, 1, random(1<<19))
		addN(2, 2, callsite(4))
		addN(1, 1, consts(4, 10))
		addN(1, 1, alu())
	case profJS:
		addN(4, jit(2, 3), callsite(6))
		addN(3, 2, ctxval(8, 16))
		addN(2, 2, consts(8, 20))
		addN(1, 3, seqchase(160, 288))
		addN(2, 2, ringbuf(512, 1536))
		addN(1, 1, storeupd())
		addN(1, 1, chase(96, 256))
		addN(1, 1, random(1<<19))
		addN(1, 1, alu())
	case profEmbedded:
		addN(3, 2, listing1())
		addN(3, 2, stride(2048, 2, 4, 4))
		addN(1, 3, seqchase(160, 256))
		addN(2, 2, ringbuf(512, 1024))
		addN(2, 2, consts(4, 12))
		addN(2, 2, ctxval(6, 12))
		addN(1, 1, alu())
	default:
		panic(fmt.Sprintf("trace: unknown profile %q", profile))
	}
	// Every workload carries a sliver of atomic/exclusive accesses:
	// the VP engine must leave them unpredicted (Section III-A).
	add(1, func(pc uint64, rw regWindow, reg uint64) kernel {
		return newAtomicKernel(pc, rw, reg)
	})

	return newGen(memory, n, 1200, slots)
}

// NewListing1 builds a standalone Listing-1 generator (outer loop over
// memset + N-element inner sweep), used by the Table V analysis.
func NewListing1(n uint64, innerN int) Generator {
	memory := mem.NewBacking(0x11571)
	k := newListing1Kernel(0x40_0000, regWindow{base: 1}, 0x1000_0000, innerN)
	return newGen(memory, n, 1<<30, []kernelSlot{{k: k, weight: 1}})
}
