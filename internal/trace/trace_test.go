package trace

import (
	"testing"

	"repro/internal/mem"
)

func TestWorkloadCount(t *testing.T) {
	if got := len(Workloads()); got != 85 {
		t.Errorf("workload count = %d, want 85 (paper Figure 12)", got)
	}
}

func TestWorkloadNamesUniqueAndSorted(t *testing.T) {
	names := Names()
	seen := map[string]bool{}
	for i, n := range names {
		if seen[n] {
			t.Errorf("duplicate workload %q", n)
		}
		seen[n] = true
		if i > 0 && names[i-1] >= n {
			t.Errorf("names not sorted at %q", n)
		}
	}
}

func TestByName(t *testing.T) {
	w, ok := ByName("mcf")
	if !ok || w.Name != "mcf" || w.Profile != "pointer" {
		t.Errorf("ByName(mcf) = %+v, %v", w, ok)
	}
	if _, ok := ByName("nope"); ok {
		t.Error("ByName accepted an unknown workload")
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	w, _ := ByName("gcc2k")
	a := Collect(w.Build(5000), 5000)
	b := Collect(w.Build(5000), 5000)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("instruction %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestGeneratorRespectsLimit(t *testing.T) {
	w, _ := ByName("gzip")
	gen := w.Build(1234)
	count := 0
	var in Inst
	for gen.Next(&in) {
		count++
		if count > 1234 {
			t.Fatal("generator exceeded its instruction limit")
		}
	}
	if count != 1234 {
		t.Errorf("generated %d instructions, want 1234", count)
	}
}

func TestAllWorkloadsProduceSaneStreams(t *testing.T) {
	for _, w := range Workloads() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			gen := w.Build(20000)
			loads, stores, branches, total := 0, 0, 0, 0
			var in Inst
			for gen.Next(&in) {
				total++
				switch in.Op {
				case OpLoad:
					loads++
					if in.Size == 0 {
						t.Fatal("load with zero size")
					}
				case OpStore:
					stores++
				}
				if in.IsBranch() {
					branches++
				}
			}
			if total != 20000 {
				t.Fatalf("produced %d instructions", total)
			}
			if f := float64(loads) / float64(total); f < 0.10 || f > 0.45 {
				t.Errorf("load fraction %.2f outside [0.10, 0.45]", f)
			}
			if branches == 0 {
				t.Error("no branches")
			}
		})
	}
}

func TestLoadValuesMatchMemoryImage(t *testing.T) {
	// The architectural invariant behind address prediction: replaying
	// the stream against a copy of memory (applying stores in order)
	// must reproduce every load value.
	w, _ := ByName("v8")
	gen := w.Build(20000)
	shadow := mem.NewBacking(fnv1a("v8"))
	var in Inst
	for gen.Next(&in) {
		switch in.Op {
		case OpLoad:
			if got := shadow.Read(in.Addr, in.Size); got != in.Value {
				t.Fatalf("load at %#x: trace value %#x, shadow memory %#x", in.Addr, in.Value, got)
			}
		case OpStore:
			shadow.Write(in.Addr, in.Size, in.Value)
		}
	}
}

func TestWorkloadsContainPredictionExemptAccesses(t *testing.T) {
	w, _ := ByName("perlbench")
	gen := w.Build(100000)
	flagged := 0
	var in Inst
	for gen.Next(&in) {
		if in.Op == OpLoad && in.Flags.NoPredict() {
			flagged++
		}
	}
	if flagged == 0 {
		t.Error("no atomic/exclusive loads in the stream; Section III-A exclusion untested")
	}
}

func TestListing1Shape(t *testing.T) {
	const innerN = 16
	gen := NewListing1(100000, innerN)
	var in Inst
	storeRun, loadRun := 0, 0
	loadAddrs := []uint64{}
	for gen.Next(&in) {
		switch in.Op {
		case OpStore:
			storeRun++
			if in.Value != 0 {
				t.Fatal("memset stored non-zero")
			}
		case OpLoad:
			loadRun++
			loadAddrs = append(loadAddrs, in.Addr)
			if in.Value != 0 {
				t.Fatal("inner-loop load read non-zero after memset")
			}
		}
		if loadRun == innerN {
			break
		}
	}
	if storeRun < innerN {
		t.Errorf("memset emitted %d stores, want >= %d", storeRun, innerN)
	}
	for i := 1; i < len(loadAddrs); i++ {
		if loadAddrs[i]-loadAddrs[i-1] != 4 {
			t.Errorf("inner loads not strided by element size: %#x -> %#x", loadAddrs[i-1], loadAddrs[i])
		}
	}
}

func TestListing1InnerBranchPattern(t *testing.T) {
	const innerN = 8
	gen := NewListing1(100000, innerN)
	var in Inst
	// Collect inner-loop branch outcomes: N-1 taken then 1 not-taken.
	pattern := []bool{}
	for gen.Next(&in) && len(pattern) < innerN*3 {
		if in.Op == OpBranch && in.PC > 0x40_0040 { // inner loop branch PC
			pattern = append(pattern, in.Taken)
		}
	}
	for i, taken := range pattern {
		want := (i%innerN != innerN-1)
		if taken != want {
			t.Fatalf("inner branch %d: taken=%v, want %v", i, taken, want)
		}
	}
}

func TestChaseKernelFollowsPointers(t *testing.T) {
	memory := mem.NewBacking(1)
	k := newChaseKernel(0x40_0000, regWindow{base: 1}, 0x2000_0000, 64, 99)
	g := newGen(memory, 4000, 1<<30, []kernelSlot{{k: k, weight: 1}})
	var in Inst
	var prevVal uint64
	first := true
	seen := map[uint64]bool{}
	for g.Next(&in) {
		if in.Op != OpLoad {
			continue
		}
		if !first && in.Addr != prevVal {
			t.Fatalf("chase broke: next addr %#x, previous value %#x", in.Addr, prevVal)
		}
		first = false
		prevVal = in.Value
		seen[in.Addr] = true
	}
	if len(seen) != 64 {
		t.Errorf("chase visited %d distinct slots, want 64 (full ring)", len(seen))
	}
}

func TestConstKernelStableValues(t *testing.T) {
	memory := mem.NewBacking(1)
	k := newConstKernel(0x40_0000, regWindow{base: 1}, 0x2000_0000, 3)
	g := newGen(memory, 2000, 1<<30, []kernelSlot{{k: k, weight: 1}})
	vals := map[uint64]uint64{} // PC → value
	var in Inst
	for g.Next(&in) {
		if in.Op != OpLoad {
			continue
		}
		if v, ok := vals[in.PC]; ok && v != in.Value {
			t.Fatalf("constant load at %#x changed value", in.PC)
		}
		vals[in.PC] = in.Value
	}
	// Three pointer slots, each with a pointer reload and a dependent
	// field load: six static load PCs, all with stable values.
	if len(vals) != 6 {
		t.Errorf("distinct const load PCs = %d, want 6", len(vals))
	}
}

func TestStrideKernelAddressPattern(t *testing.T) {
	memory := mem.NewBacking(1)
	k := newStrideKernel(0x40_0000, regWindow{base: 1}, 0x2000_0000, 1000, 8, 8)
	g := newGen(memory, 5000, 1<<30, []kernelSlot{{k: k, weight: 1}})
	var prev uint64
	first := true
	var in Inst
	for g.Next(&in) {
		if in.Op != OpLoad {
			continue
		}
		if !first && in.Addr != prev+8 && in.Addr != 0x2000_0000 {
			t.Fatalf("stride broke: %#x after %#x", in.Addr, prev)
		}
		first = false
		prev = in.Addr
	}
}

func TestStoreUpdateKernelValuesTrackStores(t *testing.T) {
	memory := mem.NewBacking(1)
	k := newStoreUpdateKernel(0x40_0000, regWindow{base: 1}, 0x2000_0000)
	g := newGen(memory, 600, 1<<30, []kernelSlot{{k: k, weight: 1}})
	var lastStore uint64
	var in Inst
	for g.Next(&in) {
		switch in.Op {
		case OpStore:
			lastStore = in.Value
		case OpLoad:
			if in.Value != lastStore {
				t.Fatalf("load value %d != last stored %d", in.Value, lastStore)
			}
		}
	}
	if lastStore == 0 {
		t.Error("no stores emitted")
	}
}

func TestCallsiteKernelSharedLoadAlternates(t *testing.T) {
	memory := mem.NewBacking(1)
	k := newCallsiteKernel(0x40_0000, regWindow{base: 1}, 0x2000_0000, 2, 1000)
	g := newGen(memory, 4000, 1<<30, []kernelSlot{{k: k, weight: 1}})
	sharedPC := uint64(0x40_0200)
	addrs := map[uint64]bool{}
	var in Inst
	calls, rets := 0, 0
	var prevField uint64
	haveField := false
	for g.Next(&in) {
		switch {
		case in.Op == OpLoad && in.PC == sharedPC:
			addrs[in.Addr] = true
		case in.Op == OpLoad && in.PC == sharedPC+4:
			prevField = in.Value
			haveField = true
		case in.Op == OpLoad && in.PC < sharedPC && in.PC >= 0x40_0000 && haveField:
			// Site-local load of the next iteration: the site must be
			// the one selected by the previous field value (the
			// data-dependent dispatch).
			wantSite := prevField % 2
			gotSite := (in.PC - 0x40_0000) / 0x40
			if uint64(gotSite) != wantSite {
				t.Fatalf("dispatched to site %d, field selected %d", gotSite, wantSite)
			}
		}
		if in.Op == OpCall {
			calls++
		}
		if in.Op == OpRet {
			rets++
		}
	}
	if len(addrs) == 0 {
		t.Error("shared load never executed")
	}
	if calls == 0 || rets == 0 {
		t.Error("no call/return traffic")
	}
}

func TestCollectHonorsShortStreams(t *testing.T) {
	w, _ := ByName("mcf")
	out := Collect(w.Build(100), 500)
	if len(out) != 100 {
		t.Errorf("Collect = %d instructions, want 100 (stream end)", len(out))
	}
}

func TestOpString(t *testing.T) {
	ops := map[Op]string{
		OpALU: "alu", OpLoad: "load", OpStore: "store", OpBranch: "branch",
		OpJump: "jump", OpCall: "call", OpRet: "ret", OpIndirect: "indirect",
	}
	for op, want := range ops {
		if op.String() != want {
			t.Errorf("%d.String() = %q", op, op.String())
		}
	}
	if Op(200).String() != "op?" {
		t.Error("unknown op must format as op?")
	}
}

func TestRegionsDisjoint(t *testing.T) {
	if region(1)-region(0) < 8<<20 {
		t.Error("kernel regions too close; working sets may collide")
	}
}

func TestProfilesCovered(t *testing.T) {
	byProfile := map[string]int{}
	for _, w := range Workloads() {
		byProfile[w.Profile]++
	}
	for _, p := range []string{profMedia, profFP, profInt, profPointer, profJS, profEmbedded} {
		if byProfile[p] < 5 {
			t.Errorf("profile %s has only %d workloads", p, byProfile[p])
		}
	}
}

func TestRingbufConsumerSeesFreshValues(t *testing.T) {
	memory := mem.NewBacking(1)
	k := newRingbufKernel(0x40_0000, regWindow{base: 1}, 0x2000_0000, 64, 9)
	g := newGen(memory, 6000, 1<<30, []kernelSlot{{k: k, weight: 1}})
	produced := map[uint64]uint64{}
	consumerPC := uint64(0x40_0100)
	var in Inst
	consumed := 0
	for g.Next(&in) {
		switch {
		case in.Op == OpStore && in.PC == 0x40_0004:
			produced[in.Addr] = in.Value
		case in.Op == OpLoad && in.PC == consumerPC:
			consumed++
			if want, ok := produced[in.Addr]; !ok || in.Value != want {
				t.Fatalf("consumer read %#x from %#x, producer wrote %#x", in.Value, in.Addr, want)
			}
		}
	}
	if consumed == 0 {
		t.Fatal("no consumer loads")
	}
}

func TestRingbufValuesChangeEveryLap(t *testing.T) {
	memory := mem.NewBacking(1)
	k := newRingbufKernel(0x40_0000, regWindow{base: 1}, 0x2000_0000, 32, 9)
	g := newGen(memory, 8000, 1<<30, []kernelSlot{{k: k, weight: 1}})
	seen := map[uint64]map[uint64]bool{} // addr -> set of values
	var in Inst
	for g.Next(&in) {
		if in.Op == OpLoad && in.PC == 0x40_0100 {
			if seen[in.Addr] == nil {
				seen[in.Addr] = map[uint64]bool{}
			}
			seen[in.Addr][in.Value] = true
		}
	}
	multi := 0
	for _, vals := range seen {
		if len(vals) > 1 {
			multi++
		}
	}
	if multi < len(seen)/2 {
		t.Errorf("only %d/%d ring slots changed values across laps; values must be fresh", multi, len(seen))
	}
}

func TestSeqChaseValuesAreStridedAddresses(t *testing.T) {
	// Documents the kernel's known property: a sequentially allocated
	// list has stride-predictable values (so stride *value* predictors
	// can also capture it — see DESIGN.md §5 on workload balance).
	memory := mem.NewBacking(1)
	k := newSeqChaseKernel(0x40_0000, regWindow{base: 1}, 0x2000_0000, 128, 64)
	g := newGen(memory, 4000, 1<<30, []kernelSlot{{k: k, weight: 1}})
	var in Inst
	var prev uint64
	first := true
	for g.Next(&in) {
		if in.Op != OpLoad {
			continue
		}
		if !first && in.Value != prev+64 && in.Value != 0x2000_0000 {
			t.Fatalf("chain value %#x not prev+64 (%#x)", in.Value, prev)
		}
		first = false
		prev = in.Value
	}
}

// Property: Collect is deterministic and a prefix of a longer run for
// every workload (streaming generators must not depend on read size).
func TestCollectPrefixProperty(t *testing.T) {
	for _, name := range []string{"gcc2k", "mcf", "v8", "coremark"} {
		w, _ := ByName(name)
		short := Collect(w.Build(3000), 3000)
		long := Collect(w.Build(6000), 6000)
		for i := range short {
			if short[i] != long[i] {
				t.Fatalf("%s: instruction %d differs between run lengths", name, i)
			}
		}
	}
}
