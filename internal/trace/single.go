package trace

import "repro/internal/mem"

// KernelGen builds single-kernel generators for white-box testing from
// other packages' test suites via the exported helpers below.
func kernelGen(seed uint64, limit uint64, build func(rw regWindow) kernel) Generator {
	memory := mem.NewBacking(seed)
	k := build(regWindow{base: 1})
	return newGen(memory, limit, 1<<30, []kernelSlot{{k: k, weight: 1}})
}

// NewSingleKernel exposes named single-kernel workloads for tests and
// experiments that need isolated load patterns.
func NewSingleKernel(kind string, limit uint64, seed uint64) Generator {
	switch kind {
	case "const":
		return kernelGen(seed, limit, func(rw regWindow) kernel { return newConstKernel(0x40_0000, rw, 0x1000_0000, 4) })
	case "stride":
		return kernelGen(seed, limit, func(rw regWindow) kernel { return newStrideKernel(0x40_0000, rw, 0x1000_0000, 8192, 8, 8) })
	case "seqchase":
		return kernelGen(seed, limit, func(rw regWindow) kernel { return newSeqChaseKernel(0x40_0000, rw, 0x1000_0000, 256, 64) })
	case "chase":
		return kernelGen(seed, limit, func(rw regWindow) kernel { return newChaseKernel(0x40_0000, rw, 0x1000_0000, 2048, seed) })
	case "indirect":
		return kernelGen(seed, limit, func(rw regWindow) kernel { return newIndirectKernel(0x40_0000, rw, 0x1000_0000, 1024, seed) })
	case "ctxvalue":
		return kernelGen(seed, limit, func(rw regWindow) kernel { return newCtxValueKernel(0x40_0000, rw, 0x1000_0000, 12) })
	case "callsite":
		return kernelGen(seed, limit, func(rw regWindow) kernel { return newCallsiteKernel(0x40_0000, rw, 0x1000_0000, 3, 200) })
	case "listing1":
		return kernelGen(seed, limit, func(rw regWindow) kernel { return newListing1Kernel(0x40_0000, rw, 0x1000_0000, 16) })
	case "flaky":
		return kernelGen(seed, limit, func(rw regWindow) kernel { return newFlakyKernel(0x40_0000, rw, 0x1000_0000, 14, seed) })
	case "ringbuf":
		return kernelGen(seed, limit, func(rw regWindow) kernel { return newRingbufKernel(0x40_0000, rw, 0x1000_0000, 2048, seed) })
	case "storeupdate":
		return kernelGen(seed, limit, func(rw regWindow) kernel { return newStoreUpdateKernel(0x40_0000, rw, 0x1000_0000) })
	case "random":
		return kernelGen(seed, limit, func(rw regWindow) kernel { return newRandomKernel(0x40_0000, rw, 0x1000_0000, 1<<21, seed) })
	}
	return nil
}
