package trace

import (
	"bytes"
	"errors"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

const artTestInsts = 4000

// drain consumes a generator and returns its instructions.
func drain(g Generator) []Inst {
	var out []Inst
	var in Inst
	for g.Next(&in) {
		out = append(out, in)
	}
	return out
}

func sameStream(t *testing.T, label string, got, want []Inst) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d instructions, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: instruction %d differs:\n  got: %+v\n want: %+v", label, i, got[i], want[i])
		}
	}
}

func TestArtifactRoundTrip(t *testing.T) {
	for _, name := range []string{"gcc2k", "mcf"} {
		w, ok := ByName(name)
		if !ok {
			t.Fatalf("unknown workload %q", name)
		}
		want := Record(w.Build(artTestInsts), 0)

		var buf bytes.Buffer
		n, err := WriteArtifact(&buf, name, artTestInsts, w.Build(artTestInsts))
		if err != nil {
			t.Fatalf("%s: WriteArtifact: %v", name, err)
		}
		if n != artTestInsts {
			t.Fatalf("%s: wrote %d instructions, want %d", name, n, artTestInsts)
		}

		gotName, gotInsts, rep, err := ReadArtifact(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%s: ReadArtifact: %v", name, err)
		}
		if gotName != name || gotInsts != artTestInsts {
			t.Fatalf("%s: decoded identity %q/%d, want %q/%d", name, gotName, gotInsts, name, artTestInsts)
		}
		sameStream(t, name, drain(rep.Cursor()), want.Remaining())

		// The decoded Run-start memory image must match a fresh
		// generator's, or replayed runs would diverge from live ones.
		fresh := w.Build(artTestInsts)
		for _, addr := range []uint64{0, 64, 4096, 1 << 20} {
			if got, want := rep.Mem().Read(addr, 8), fresh.Mem().Read(addr, 8); got != want {
				t.Fatalf("%s: Mem[%#x] = %#x, want %#x", name, addr, got, want)
			}
		}
	}
}

// TestSaltedArtifactRoundTrip pins the salted-stream codec contract:
// an encode/decode round trip of a "name#salt" stream reproduces both
// the instruction sequence and the Run-start memory image of the live
// salted generator. The memory image is the regression surface — load
// values come from the backing image, so a fill seed derived from the
// bare name instead of the salted construction seed replays the wrong
// values while leaving the instruction sequence (and thus baselines)
// intact.
func TestSaltedArtifactRoundTrip(t *testing.T) {
	for _, stream := range []string{"gcc2k#1", "mcf#3"} {
		gen, ok := BuildStream(stream, artTestInsts)
		if !ok {
			t.Fatalf("unknown stream %q", stream)
		}
		want := Record(gen, 0)

		live, _ := BuildStream(stream, artTestInsts)
		var buf bytes.Buffer
		if _, err := WriteArtifact(&buf, stream, artTestInsts, live); err != nil {
			t.Fatalf("%s: WriteArtifact: %v", stream, err)
		}
		gotName, _, rep, err := ReadArtifact(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%s: ReadArtifact: %v", stream, err)
		}
		if gotName != stream {
			t.Fatalf("decoded identity %q, want %q", gotName, stream)
		}
		sameStream(t, stream, drain(rep.Cursor()), want.Remaining())

		fresh, _ := BuildStream(stream, artTestInsts)
		for _, addr := range []uint64{0, 64, 4096, 1 << 20} {
			if got, want := rep.Mem().Read(addr, 8), fresh.Mem().Read(addr, 8); got != want {
				t.Fatalf("%s: Mem[%#x] = %#x, want %#x (fill seed ignores the salt?)", stream, addr, got, want)
			}
		}

		// Distinct salts are distinct artifacts: content addresses must
		// not collide with the canonical stream's.
		if ArtifactKey(stream, artTestInsts) == ArtifactKey("gcc2k", artTestInsts) &&
			stream != "gcc2k" {
			t.Fatalf("salted stream %q shares the canonical artifact key", stream)
		}
	}
}

func TestArtifactRejectsCorruption(t *testing.T) {
	w, _ := ByName("gcc2k")
	var buf bytes.Buffer
	if _, err := WriteArtifact(&buf, w.Name, artTestInsts, w.Build(artTestInsts)); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	if _, _, _, err := ReadArtifact(bytes.NewReader(data[:len(data)/2])); err == nil {
		t.Error("truncated artifact decoded without error")
	}
	if _, _, _, err := ReadArtifact(bytes.NewReader([]byte("not an artifact"))); err == nil {
		t.Error("garbage decoded without error")
	}
}

func TestArtifactKeyStable(t *testing.T) {
	// The content address is a wire format shared across processes and
	// releases; pin it so an accidental change (which would orphan every
	// existing cache) fails loudly.
	k := ArtifactKey("gcc2k", 20000)
	if len(k) != 16 || strings.ToLower(k) != k {
		t.Fatalf("ArtifactKey shape changed: %q", k)
	}
	if k2 := ArtifactKey("gcc2k", 20000); k2 != k {
		t.Fatalf("ArtifactKey not deterministic: %q vs %q", k, k2)
	}
	for _, other := range []string{ArtifactKey("mcf", 20000), ArtifactKey("gcc2k", 20001)} {
		if other == k {
			t.Fatalf("distinct specs share key %q", k)
		}
	}
}

func TestArtifactStoreMemoryReuse(t *testing.T) {
	s, err := NewArtifactStore("", 0)
	if err != nil {
		t.Fatal(err)
	}
	w, _ := ByName("gcc2k")
	want := Record(w.Build(artTestInsts), 0)

	c1, err := s.Cursor(w.Name, artTestInsts)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := s.Cursor(w.Name, artTestInsts)
	if err != nil {
		t.Fatal(err)
	}
	sameStream(t, "cursor1", drain(c1), want.Remaining())
	sameStream(t, "cursor2", drain(c2), want.Remaining())

	if st := s.Stats(); st.Generated != 1 || st.MemoryHits != 1 || st.DiskHits != 0 {
		t.Fatalf("stats after two cursors: %+v", st)
	}
}

func TestArtifactStoreConcurrentCursors(t *testing.T) {
	// Cursors share one recording (instruction slice and Run-start
	// image); replaying them concurrently must be race-free (this test
	// matters under -race) and produce identical streams.
	s, _ := NewArtifactStore("", 0)
	w, _ := ByName("mcf")
	want := Record(w.Build(artTestInsts), 0)

	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cur, err := s.Cursor(w.Name, artTestInsts)
			if err != nil {
				errs <- err.Error()
				return
			}
			got := drain(cur)
			if len(got) != want.Len() {
				errs <- "short stream"
				return
			}
			for j, in := range got {
				if in != want.Remaining()[j] {
					errs <- "stream diverged"
					return
				}
			}
			// Concurrent reads of the shared Run-start image go through
			// each consumer's own copy, as the pipeline does.
			if img := cur.Mem().Clone(); img.Read(64, 8) != want.Mem().Read(64, 8) {
				errs <- "memory image diverged"
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
	if st := s.Stats(); st.Generated != 1 {
		t.Fatalf("singleflight failed: %+v", st)
	}
}

func TestArtifactStoreDiskReuse(t *testing.T) {
	dir := t.TempDir()
	w, _ := ByName("gcc2k")
	want := Record(w.Build(artTestInsts), 0)

	s1, err := NewArtifactStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s1.Cursor(w.Name, artTestInsts); err != nil {
		t.Fatal(err)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "*.lvpt.gz"))
	if len(files) != 1 {
		t.Fatalf("cache dir holds %d artifacts, want 1", len(files))
	}

	// A second store over the same directory (a later process) must
	// load from disk, not regenerate.
	s2, err := NewArtifactStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	cur, err := s2.Cursor(w.Name, artTestInsts)
	if err != nil {
		t.Fatal(err)
	}
	sameStream(t, "disk cursor", drain(cur), want.Remaining())
	if st := s2.Stats(); st.Generated != 0 || st.DiskHits != 1 {
		t.Fatalf("second store stats: %+v", st)
	}

	// A corrupt cache file is regenerated over, not trusted.
	if err := os.WriteFile(files[0], []byte("corrupt"), 0o644); err != nil {
		t.Fatal(err)
	}
	s3, _ := NewArtifactStore(dir, 0)
	s3.SetLogger(slog.New(slog.NewTextHandler(io.Discard, nil)))
	cur, err = s3.Cursor(w.Name, artTestInsts)
	if err != nil {
		t.Fatal(err)
	}
	sameStream(t, "regenerated cursor", drain(cur), want.Remaining())
	if st := s3.Stats(); st.Generated != 1 || st.DiskHits != 0 {
		t.Fatalf("corrupt-file store stats: %+v", st)
	}
}

func TestArtifactStorePutExport(t *testing.T) {
	src, _ := NewArtifactStore("", 0)
	w, _ := ByName("mcf")
	key, data, err := src.Artifact(w.Name, artTestInsts)
	if err != nil {
		t.Fatal(err)
	}
	if key != ArtifactKey(w.Name, artTestInsts) {
		t.Fatalf("Artifact returned key %q, want %q", key, ArtifactKey(w.Name, artTestInsts))
	}

	dst, _ := NewArtifactStore("", 0)
	if err := dst.Put(key, data); err != nil {
		t.Fatalf("Put: %v", err)
	}
	cur, err := dst.Cursor(w.Name, artTestInsts)
	if err != nil {
		t.Fatal(err)
	}
	want := Record(w.Build(artTestInsts), 0)
	sameStream(t, "received cursor", drain(cur), want.Remaining())
	if st := dst.Stats(); st.Generated != 0 || st.Received != 1 || st.MemoryHits != 1 {
		t.Fatalf("receiver stats: %+v", st)
	}

	if got, ok := dst.Export(key); !ok || len(got) == 0 {
		t.Fatal("Export of resident artifact failed")
	}
	if _, ok := dst.Export("0000000000000000"); ok {
		t.Fatal("Export of unknown key succeeded")
	}

	// A blob stored under the wrong address must be rejected.
	if err := dst.Put(ArtifactKey(w.Name, artTestInsts+1), data); err == nil {
		t.Fatal("Put accepted content under a mismatched key")
	}
	if err := dst.Put(key, []byte("garbage")); err == nil {
		t.Fatal("Put accepted undecodable content")
	}
}

func TestArtifactStoreEviction(t *testing.T) {
	// Budget fits two recordings; the third evicts the least recently
	// used, and re-requesting it regenerates.
	s, err := NewArtifactStore("", 2*artTestInsts)
	if err != nil {
		t.Fatal(err)
	}
	names := []string{"gcc2k", "mcf", "xalancbmk"}
	for _, n := range names {
		if _, ok := ByName(n); !ok {
			t.Fatalf("unknown workload %q", n)
		}
		if _, err := s.Cursor(n, artTestInsts); err != nil {
			t.Fatal(err)
		}
	}
	if st := s.Stats(); st.Generated != 3 {
		t.Fatalf("stats after three distinct cursors: %+v", st)
	}
	if _, err := s.Cursor(names[0], artTestInsts); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Generated != 4 || st.MemoryHits != 0 {
		t.Fatalf("evicted recording not regenerated: %+v", st)
	}
	// The two resident recordings are still served from memory.
	if _, err := s.Cursor(names[2], artTestInsts); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.MemoryHits != 1 {
		t.Fatalf("resident recording not reused: %+v", st)
	}
}

func TestArtifactStoreOversizeRefused(t *testing.T) {
	// Recording is eager and not cancellable, so a workload whose
	// instruction budget exceeds the resident budget must be refused
	// up front (callers fall back to the lazy live generator) rather
	// than materialized.
	s, err := NewArtifactStore("", artTestInsts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Cursor("gcc2k", artTestInsts+1); !errors.Is(err, ErrOversize) {
		t.Fatalf("Cursor(insts > budget) err = %v, want ErrOversize", err)
	}
	if _, _, err := s.Artifact("gcc2k", artTestInsts+1); !errors.Is(err, ErrOversize) {
		t.Fatalf("Artifact(insts > budget) err = %v, want ErrOversize", err)
	}
	if st := s.Stats(); st.Generated != 0 {
		t.Fatalf("oversize request generated anyway: %+v", st)
	}
	// A shipped artifact past the budget is refused for the same
	// reason a generated one is never produced.
	small, err := NewArtifactStore("", DefaultArtifactBudget)
	if err != nil {
		t.Fatal(err)
	}
	key, data, err := small.Artifact("gcc2k", artTestInsts)
	if err != nil {
		t.Fatal(err)
	}
	tight, err := NewArtifactStore("", artTestInsts-1)
	if err != nil {
		t.Fatal(err)
	}
	if err := tight.Put(key, data); !errors.Is(err, ErrOversize) {
		t.Fatalf("Put(insts > budget) err = %v, want ErrOversize", err)
	}
}
