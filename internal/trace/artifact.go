package trace

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
)

// Trace artifacts are the content-addressed, compressed form of a
// recorded workload stream (see DESIGN.md §13.1). An artifact is
// addressed by the hash of the workload-spec fields that fully
// determine the stream — the workload name and the instruction budget —
// so any two processes that agree on those fields agree on the address,
// and a stream generated once can be reused by every later run, server
// job, or sweep worker that asks for the same spec.
//
// On-disk layout, everything inside a single gzip stream:
//
//	"LVPA" | uvarint version (1) | uvarint insts |
//	uvarint len(name) | name bytes | LVPT trace stream (tracefile.go)
//
// The header repeats the addressed fields so an artifact is
// self-describing: a receiver can verify that a blob's content matches
// the address it was stored under without trusting the sender. The
// insts field is the addressed budget, not a length claim — a workload
// whose stream legitimately ends early records fewer instructions, and
// stream-length integrity comes from the LVPT framing's terminator.
const (
	artifactMagic   = "LVPA"
	artifactVersion = 1

	// maxArtifactNameLen bounds the embedded workload name; real
	// workload names are a handful of bytes, so anything larger is a
	// corrupt or hostile header.
	maxArtifactNameLen = 256

	// artifactFileSuffix is the cache-directory filename suffix:
	// "<content address>" + suffix.
	artifactFileSuffix = ".lvpt.gz"
)

// ArtifactKey returns the content address for the recorded stream of
// the named workload at the given instruction budget: the first eight
// bytes, hex encoded, of the SHA-256 of the canonical JSON encoding of
// the determining fields. The encoding mirrors the canonical-spec
// hashing in internal/spec (sorted keys, no insignificant whitespace)
// so the address is stable across processes and releases.
func ArtifactKey(name string, insts uint64) string {
	sum := sha256.Sum256([]byte(fmt.Sprintf(`{"insts":%d,"workload":%q}`, insts, name)))
	return hex.EncodeToString(sum[:8])
}

// WriteArtifact drains gen into w as a compressed artifact for the
// named workload and returns the number of instructions written. The
// embedded LVPT stream records the generator's own memory image — seed
// only for synthetic streams (whose Run-start footprint is empty), seed
// plus explicit pre-image words for external traces — so the reader's
// reconstructed Run-start image matches the generator's exactly.
func WriteArtifact(w io.Writer, name string, insts uint64, gen Generator) (uint64, error) {
	if len(name) == 0 || len(name) > maxArtifactNameLen {
		return 0, fmt.Errorf("trace: artifact name %q out of range", name)
	}
	zw := gzip.NewWriter(w)
	hdr := make([]byte, 0, 4+binary.MaxVarintLen64*3+len(name))
	hdr = append(hdr, artifactMagic...)
	hdr = binary.AppendUvarint(hdr, artifactVersion)
	hdr = binary.AppendUvarint(hdr, insts)
	hdr = binary.AppendUvarint(hdr, uint64(len(name)))
	hdr = append(hdr, name...)
	if _, err := zw.Write(hdr); err != nil {
		return 0, err
	}
	n, err := WriteTrace(zw, gen)
	if err != nil {
		return 0, err
	}
	return n, zw.Close()
}

// ReadArtifact decodes an artifact into its workload identity and a
// fully materialized recording. Any truncation or corruption — in the
// gzip framing, the artifact header, or the embedded trace stream — is
// reported as an error rather than a silently short recording.
func ReadArtifact(r io.Reader) (name string, insts uint64, rep *Replay, err error) {
	zr, err := gzip.NewReader(r)
	if err != nil {
		return "", 0, nil, fmt.Errorf("trace: artifact gzip: %w", err)
	}
	defer zr.Close()
	br := bufio.NewReader(zr)

	magic := make([]byte, len(artifactMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return "", 0, nil, fmt.Errorf("trace: artifact magic: %w", err)
	}
	if string(magic) != artifactMagic {
		return "", 0, nil, errors.New("trace: bad artifact magic")
	}
	version, err := binary.ReadUvarint(br)
	if err != nil {
		return "", 0, nil, fmt.Errorf("trace: artifact version: %w", err)
	}
	if version != artifactVersion {
		return "", 0, nil, fmt.Errorf("trace: unsupported artifact version %d", version)
	}
	if insts, err = binary.ReadUvarint(br); err != nil {
		return "", 0, nil, fmt.Errorf("trace: artifact insts: %w", err)
	}
	nameLen, err := binary.ReadUvarint(br)
	if err != nil {
		return "", 0, nil, fmt.Errorf("trace: artifact name length: %w", err)
	}
	if nameLen == 0 || nameLen > maxArtifactNameLen {
		return "", 0, nil, fmt.Errorf("trace: artifact name length %d out of range", nameLen)
	}
	nameBytes := make([]byte, nameLen)
	if _, err := io.ReadFull(br, nameBytes); err != nil {
		return "", 0, nil, fmt.Errorf("trace: artifact name: %w", err)
	}
	name = string(nameBytes)

	tr, err := NewTraceReader(br)
	if err != nil {
		return "", 0, nil, err
	}
	rep = Record(tr, 0)
	if err := tr.Err(); err != nil {
		return "", 0, nil, err
	}
	return name, insts, rep, nil
}

// peekArtifactName decodes just far enough of an artifact to return the
// embedded workload name, without materializing the recording. Used to
// cheaply filter a cache directory for external traces at startup.
func peekArtifactName(r io.Reader) (string, error) {
	zr, err := gzip.NewReader(r)
	if err != nil {
		return "", err
	}
	defer zr.Close()
	br := bufio.NewReader(zr)
	magic := make([]byte, len(artifactMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return "", err
	}
	if string(magic) != artifactMagic {
		return "", errors.New("trace: bad artifact magic")
	}
	if _, err := binary.ReadUvarint(br); err != nil { // version
		return "", err
	}
	if _, err := binary.ReadUvarint(br); err != nil { // insts
		return "", err
	}
	nameLen, err := binary.ReadUvarint(br)
	if err != nil {
		return "", err
	}
	if nameLen == 0 || nameLen > maxArtifactNameLen {
		return "", fmt.Errorf("trace: artifact name length %d out of range", nameLen)
	}
	nameBytes := make([]byte, nameLen)
	if _, err := io.ReadFull(br, nameBytes); err != nil {
		return "", err
	}
	return string(nameBytes), nil
}

// encodeArtifact serializes a recording back to artifact bytes. Used
// when a store needs to ship or persist a recording it only holds in
// memory.
func encodeArtifact(name string, insts uint64, rep *Replay) ([]byte, error) {
	var buf bytes.Buffer
	if _, err := WriteArtifact(&buf, name, insts, rep.Cursor()); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
