package trace

import "repro/internal/mem"

// kernelSlot pairs a kernel with its scheduling weight.
type kernelSlot struct {
	k      kernel
	weight int
}

// Gen interleaves a set of kernels into one deterministic instruction
// stream. Kernels run in weighted bursts (a loop nest executes for a
// while, then control moves on), which is how real programs interleave
// their inner loops.
type Gen struct {
	memory *mem.Backing
	em     *emitter
	slots  []kernelSlot

	cur       int
	burstLeft int
	burstUnit int

	buf    []Inst
	bufPos int

	emitted uint64
	limit   uint64
}

// newGen builds a generator producing at most limit instructions.
func newGen(memory *mem.Backing, limit uint64, burstUnit int, slots []kernelSlot) *Gen {
	if burstUnit <= 0 {
		burstUnit = 200
	}
	g := &Gen{memory: memory, em: newEmitter(memory), slots: slots, limit: limit, burstUnit: burstUnit}
	if len(slots) == 0 {
		panic("trace: generator needs at least one kernel")
	}
	g.burstLeft = slots[0].weight * burstUnit
	return g
}

// Mem implements Generator.
func (g *Gen) Mem() *mem.Backing { return g.memory }

// Next implements Generator.
func (g *Gen) Next(inst *Inst) bool {
	if g.emitted >= g.limit {
		return false
	}
	for g.bufPos >= len(g.buf) {
		g.refill()
	}
	*inst = g.buf[g.bufPos]
	g.bufPos++
	g.emitted++
	return true
}

func (g *Gen) refill() {
	g.em.buf = g.em.buf[:0]
	g.bufPos = 0
	slot := &g.slots[g.cur]
	slot.k.emit(g.em)
	g.buf = g.em.buf
	g.burstLeft -= len(g.buf)
	if g.burstLeft <= 0 {
		g.cur = (g.cur + 1) % len(g.slots)
		g.burstLeft = g.slots[g.cur].weight * g.burstUnit
	}
}

// Collect drains up to n instructions from gen into a slice (testing
// and analysis helper).
func Collect(gen Generator, n int) []Inst {
	out := make([]Inst, 0, n)
	var in Inst
	for len(out) < n && gen.Next(&in) {
		out = append(out, in)
	}
	return out
}
